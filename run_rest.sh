#!/bin/bash
# Wait for table1 to finish, then run the remaining harnesses sequentially.
cd /root/repo
while pgrep -x table1 > /dev/null; do sleep 10; done
export TCL_SCALE=standard
for bin in figure1 latency_curve reset_mode energy lambda_decay lambda_init; do
  echo "=== starting $bin ===" 
  ./target/release/$bin > logs/$bin.log 2>&1
  echo "=== $bin exit $? ==="
done
echo "ALL_HARNESSES_DONE"
