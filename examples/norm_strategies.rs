//! Comparing norm-factor strategies on the same task — the paper's core
//! argument in miniature.
//!
//! ```text
//! cargo run --release -p tcl-core --example norm_strategies
//! ```
//!
//! Trains two copies of the "4Conv, 2Linear" network on an
//! imagenet-like synthetic set (wide activation distributions with
//! outliers): one with trainable clipping layers, one without. Converts:
//!
//! * the TCL network with its trained λ (ours);
//! * the baseline with the max-activation norm-factor (Diehl et al. 2015);
//! * the baseline with the 99.9th percentile (Rueckauer et al. 2017);
//!
//! and prints accuracy-vs-latency side by side. Expect max-norm to need
//! far more timesteps and the percentile baseline to lose accuracy on this
//! wide-distribution data, while TCL is both fast and accurate.

use tcl_core::{convert_and_evaluate, Converter, NormStrategy};
use tcl_data::{SynthSpec, SynthVision};
use tcl_models::{Architecture, ModelConfig};
use tcl_nn::{train, Network, TrainConfig};
use tcl_snn::{Readout, SimConfig};
use tcl_tensor::SeededRng;

fn train_net(
    data: &SynthVision,
    clip: Option<f32>,
    seed: u64,
) -> Result<Network, Box<dyn std::error::Error>> {
    let (c, h, w) = data.train.image_shape();
    let cfg = ModelConfig::new((c, h, w), data.train.classes())
        .with_base_width(8)
        .with_clip_lambda(clip);
    let mut rng = SeededRng::new(seed);
    let mut net = Architecture::Cnn6.build(&cfg, &mut rng)?;
    let train_cfg = TrainConfig::standard(18, 32, 0.05, &[12])?;
    train(
        &mut net,
        data.train.images(),
        data.train.labels(),
        None,
        &train_cfg,
    )?;
    Ok(net)
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 7;
    // The imagenet-like preset has frequent outlier gains — the regime
    // where the paper shows percentile clipping failing (Section 3.2).
    let spec = SynthSpec::imagenet_like().scaled(0.6);
    let data = SynthVision::generate(&spec, seed)?;
    println!(
        "dataset: imagenet-like, {} train / {} test, {} classes\n",
        data.train.len(),
        data.test.len(),
        data.train.classes()
    );

    println!("training TCL network (λ₀ = 4.0, the paper's Imagenet setting)…");
    let tcl_net = train_net(&data, Some(4.0), seed)?;
    println!("training unconstrained baseline network…\n");
    let base_net = train_net(&data, None, seed)?;

    let calibration = data.train.take(150);
    let checkpoints = vec![10, 25, 50, 100, 200];
    let sim = SimConfig::new(checkpoints.clone(), 50, Readout::SpikeCount)?;
    println!("{:<22} {:>8} {}", "method", "ANN", {
        let mut s = String::new();
        for t in &checkpoints {
            s.push_str(&format!("{:>9}", format!("T={t}")));
        }
        s
    });
    for (label, strategy, source) in [
        ("TCL (ours)", NormStrategy::TrainedClip, &tcl_net),
        (
            "max-norm (Diehl'15)",
            NormStrategy::MaxActivation,
            &base_net,
        ),
        (
            "p99.9 (Rueckauer'17)",
            NormStrategy::percentile_999(),
            &base_net,
        ),
    ] {
        let mut net = source.clone();
        let report = convert_and_evaluate(
            &mut net,
            calibration.images(),
            data.test.images(),
            data.test.labels(),
            &Converter::new(strategy),
            &sim,
        )?;
        print!("{:<22} {:>7.2}%", label, report.ann_accuracy * 100.0);
        for (_, acc) in &report.sweep.accuracies {
            print!("  {:>6.2}%", acc * 100.0);
        }
        println!();
    }
    println!(
        "\nTCL's trained λ per layer: {:?}",
        tcl_net
            .clip_lambdas()
            .iter()
            .map(|l| (l * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    Ok(())
}
