//! Watching the spike wavefront — why SNNs need latency at all.
//!
//! ```text
//! cargo run --release -p tcl-core --example spike_wavefront
//! ```
//!
//! Converts a small TCL network and traces each layer's firing rate over
//! time for one stimulus. Deep layers are silent until spikes propagate to
//! them; TCL's tight norm-factors shorten that transient relative to
//! max-activation normalization, which is exactly the latency win the
//! paper reports.

use tcl_core::{Converter, NormStrategy};
use tcl_data::{SynthSpec, SynthVision};
use tcl_models::{Architecture, ModelConfig};
use tcl_nn::{train, TrainConfig};
use tcl_snn::trace_activity;
use tcl_tensor::SeededRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 9;
    let data = SynthVision::generate(&SynthSpec::cifar10_like().scaled(0.35), seed)?;
    let (c, h, w) = data.train.image_shape();

    // Train one TCL network and one unconstrained baseline.
    let mut nets = Vec::new();
    for clip in [Some(2.0f32), None] {
        let cfg = ModelConfig::new((c, h, w), data.train.classes())
            .with_base_width(8)
            .with_clip_lambda(clip);
        let mut rng = SeededRng::new(seed);
        let mut net = Architecture::Cnn6.build(&cfg, &mut rng)?;
        let train_cfg = TrainConfig::standard(12, 32, 0.05, &[8])?;
        train(
            &mut net,
            data.train.images(),
            data.train.labels(),
            None,
            &train_cfg,
        )?;
        nets.push(net);
    }
    let (tcl_net, base_net) = (nets.remove(0), nets.remove(0));

    let calibration = data.train.take(100);
    let stimulus = data.test.images().batch_item(0);
    let steps = 40;

    for (label, net, strategy) in [
        ("TCL (trained λ)", &tcl_net, NormStrategy::TrainedClip),
        ("max-norm", &base_net, NormStrategy::MaxActivation),
    ] {
        let conversion = Converter::new(strategy).convert(net, calibration.images())?;
        let mut snn = conversion.snn;
        let trace = trace_activity(&mut snn, &stimulus, steps)?;
        println!("== {label} ==");
        println!("per-layer firing rates over the first {steps} timesteps:");
        let spiking_nodes: Vec<usize> = trace
            .node_kinds
            .iter()
            .enumerate()
            .filter(|(_, k)| *k == "spiking" || *k == "residual")
            .map(|(i, _)| i)
            .collect();
        for &n in &spiking_nodes {
            let first = trace
                .first_spike_step(n)
                .map(|t| t.to_string())
                .unwrap_or_else(|| "-".to_string());
            let bars: String = trace
                .rates
                .iter()
                .map(|step| {
                    let r = step[n];
                    match (r * 5.0) as usize {
                        0 if r == 0.0 => '·',
                        0 => '▁',
                        1 => '▂',
                        2 => '▄',
                        3 => '▆',
                        _ => '█',
                    }
                })
                .collect();
            println!(
                "  node {n:2} ({:<8}) first spike @t={first:<3} {bars}  mean {:.3}",
                trace.node_kinds[n],
                trace.mean_rate(n).unwrap_or(0.0)
            );
        }
        println!();
    }
    println!(
        "note how every layer under max-norm fires far more sparsely (tiny\n\
         rates) and later — the classifier sees almost no evidence until\n\
         late timesteps, which is the latency cost TCL removes."
    );
    Ok(())
}
