//! Telemetry smoke check for CI: runs a tiny conversion + SNN evaluation
//! with whatever `TCL_TRACE`/`TCL_METRICS` the environment provides, then —
//! when `TCL_TRACE` names a file — reads the JSONL stream back and verifies
//! it is well-formed and contains the spans and gauges the instrumentation
//! promises.
//!
//! ```text
//! TCL_TRACE=target/telemetry_smoke.jsonl TCL_METRICS=1 \
//!   cargo run --release -p tcl-core --example telemetry_smoke
//! ```
//!
//! Exits non-zero (panics) if the stream is malformed or a required record
//! is missing, so `ci.sh` can gate on it.

use tcl_core::{diagnose_conversion, Converter, NormStrategy};
use tcl_models::{Architecture, ModelConfig};
use tcl_snn::{evaluate, Readout, SimConfig};
use tcl_tensor::SeededRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let mut rng = SeededRng::new(0x51301);
    let cfg = ModelConfig::new((3, 8, 8), 4)
        .with_base_width(2)
        .with_clip_lambda(Some(2.0));
    let net = Architecture::Cnn6.build(&cfg, &mut rng)?;
    let calibration = rng.uniform_tensor([8, 3, 8, 8], -1.0, 1.0);
    let conversion = Converter::new(NormStrategy::TrainedClip).convert(&net, &calibration)?;

    // A short evaluation drives every instrumented path: conv/matmul
    // kernels, IF neuron steps, spike/synop counters, firing-rate
    // histograms.
    let stimulus = rng.uniform_tensor([4, 3, 8, 8], -1.0, 1.0);
    let labels = vec![0usize, 1, 2, 3];
    let sim = SimConfig::new(vec![4, 16], 2, Readout::SpikeCount)?;
    let sweep = evaluate(&conversion.snn, &stimulus, &labels, &sim)?;
    println!(
        "smoke evaluation ran: {} checkpoints, mean firing rate {:.4}",
        sweep.accuracies.len(),
        sweep.mean_firing_rate
    );

    // Per-layer conversion diagnostics (residual must shrink with T).
    let diag = diagnose_conversion(&net, &conversion, &stimulus, &[8, 64])?;
    let (short, long) = (
        diag.mean_residual(0).expect("window 0"),
        diag.mean_residual(1).expect("window 1"),
    );
    println!("diagnostics: mean residual {short:.4} @T=8 -> {long:.4} @T=64");
    assert!(
        long <= short,
        "rate-coding residual grew with T: {short:.4} -> {long:.4}"
    );

    tcl_telemetry::emit_summary();

    // When TCL_TRACE names a file, read the stream back and verify it.
    let trace = std::env::var("TCL_TRACE").unwrap_or_default();
    if tcl_telemetry::trace_enabled() && !matches!(trace.as_str(), "" | "1" | "true" | "on") {
        let text = std::fs::read_to_string(&trace)?;
        let lines: Vec<&str> = text.lines().collect();
        assert!(!lines.is_empty(), "trace file {trace} is empty");
        for line in &lines {
            tcl_telemetry::json::validate_line(line)
                .map_err(|e| format!("malformed JSONL {line:?}: {e}"))?;
        }
        for required in [
            "\"name\":\"convert\"",
            "\"name\":\"conv2d\"",
            "\"name\":\"matmul\"",
            "\"name\":\"neuron.step\"",
            "\"name\":\"snn.evaluate\"",
            "\"name\":\"diagnose\"",
        ] {
            assert!(
                lines.iter().any(|l| l.contains(required)),
                "no span {required} in {trace}"
            );
        }
        if tcl_telemetry::metrics_enabled() {
            for required in [
                "\"name\":\"convert.lambda[0]\"",
                "\"name\":\"snn.spikes\"",
                "\"name\":\"snn.firing_rate\"",
                "\"name\":\"diag.residual[0]\"",
            ] {
                assert!(
                    lines.iter().any(|l| l.contains(required)),
                    "no metric {required} in {trace}"
                );
            }
        }
        println!("validated {} JSONL telemetry lines in {trace}", lines.len());
    } else {
        println!("TCL_TRACE not set to a file; skipped stream validation");
    }
    Ok(())
}
