//! Converting residual networks — a walk through Section 5 of the paper.
//!
//! ```text
//! cargo run --release -p tcl-core --example residual_conversion
//! ```
//!
//! Trains a ResNet-18 with trainable clipping layers, folds its
//! batch-norms, converts it — type-A blocks get the *virtual identity
//! convolution* so they share the type-B NS/OS algebra — and prints the
//! spiking network's structure and accuracy-vs-latency curve.

use tcl_core::{convert_and_evaluate, Converter, NormStrategy};
use tcl_data::{SynthSpec, SynthVision};
use tcl_models::{Architecture, ModelConfig};
use tcl_nn::layers::Shortcut;
use tcl_nn::{train, Layer, TrainConfig};
use tcl_snn::{Readout, SimConfig};
use tcl_tensor::SeededRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 3;
    let spec = SynthSpec::cifar10_like().scaled(0.5);
    let data = SynthVision::generate(&spec, seed)?;
    let (c, h, w) = data.train.image_shape();
    let cfg = ModelConfig::new((c, h, w), data.train.classes())
        .with_base_width(8)
        .with_clip_lambda(Some(2.0));
    let mut rng = SeededRng::new(seed);
    let mut net = Architecture::ResNet18.build(&cfg, &mut rng)?;

    // Describe the ANN's residual structure.
    let mut type_a = 0;
    let mut type_b = 0;
    for layer in net.layers() {
        if let Layer::Residual(block) = layer {
            match block.shortcut {
                Shortcut::Identity => type_a += 1,
                Shortcut::Projection { .. } => type_b += 1,
            }
        }
    }
    println!(
        "ResNet-18: {type_a} type-A blocks (identity shortcut), \
         {type_b} type-B blocks (projection shortcut)"
    );
    println!(
        "type-A blocks will be converted through a virtual 1x1 identity \
         convolution (Section 5)\n"
    );

    println!("training ({} images)…", data.train.len());
    let train_cfg = TrainConfig {
        verbose: true,
        ..TrainConfig::standard(15, 32, 0.05, &[10])?
    };
    let report = train(
        &mut net,
        data.train.images(),
        data.train.labels(),
        Some((data.test.images(), data.test.labels())),
        &train_cfg,
    )?;
    println!(
        "\nANN accuracy: {:.2}%",
        report.final_eval_accuracy().unwrap_or(0.0) * 100.0
    );

    // Convert and inspect the spiking structure.
    let calibration = data.train.take(150);
    let conversion =
        Converter::new(NormStrategy::TrainedClip).convert(&net, calibration.images())?;
    let kinds: Vec<&str> = conversion
        .snn
        .nodes()
        .iter()
        .map(|n| n.kind_name())
        .collect();
    println!("\nspiking network nodes: {kinds:?}");
    println!(
        "norm-factors (λ̂ per site, output last): {:?}",
        conversion
            .lambdas
            .iter()
            .map(|l| (l * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );

    // Latency sweep.
    let sim = SimConfig::new(vec![25, 50, 100, 150, 200], 50, Readout::SpikeCount)?;
    let full = convert_and_evaluate(
        &mut net,
        calibration.images(),
        data.test.images(),
        data.test.labels(),
        &Converter::new(NormStrategy::TrainedClip),
        &sim,
    )?;
    println!("\nSNN accuracy by latency:");
    for (t, acc) in &full.sweep.accuracies {
        println!(
            "  T = {t:4}  {:6.2}%   (gap to ANN: {:+.2}%)",
            acc * 100.0,
            (full.ann_accuracy - acc) * 100.0
        );
    }
    Ok(())
}
