//! Activation-distribution analysis — the experiment behind the paper's
//! Figure 1 and Section 3.2, runnable on a freshly trained small network.
//!
//! ```text
//! cargo run --release -p tcl-core --example activation_analysis
//! ```
//!
//! Trains the "4Conv, 2Linear" network with and without clipping layers,
//! then prints per-site statistics (max, 99.0/99.9 percentiles, trained λ)
//! and an ASCII log-scale histogram of the second layer's activations for
//! both variants. The takeaway mirrors the paper: almost all activation
//! mass sits far below the maximum, the 99.9th percentile is still above
//! the trained λ, and clipping barely changes ANN accuracy.

use tcl_core::{collect_activation_stats, collect_site_histogram, fold_batch_norm};
use tcl_data::{SynthSpec, SynthVision};
use tcl_models::{Architecture, ModelConfig};
use tcl_nn::{evaluate, train, Network, TrainConfig};
use tcl_tensor::{Histogram, SeededRng};

fn train_cnn(
    data: &SynthVision,
    clip: Option<f32>,
    seed: u64,
) -> Result<Network, Box<dyn std::error::Error>> {
    let (c, h, w) = data.train.image_shape();
    let cfg = ModelConfig::new((c, h, w), data.train.classes())
        .with_base_width(8)
        .with_clip_lambda(clip);
    let mut rng = SeededRng::new(seed);
    let mut net = Architecture::Cnn6.build(&cfg, &mut rng)?;
    let train_cfg = TrainConfig::standard(15, 32, 0.05, &[10])?;
    train(
        &mut net,
        data.train.images(),
        data.train.labels(),
        None,
        &train_cfg,
    )?;
    Ok(net)
}

fn plot(hist: &Histogram) {
    let max_log = hist
        .counts()
        .iter()
        .map(|&c| (c as f64 + 1.0).ln())
        .fold(0.0f64, f64::max);
    for (i, &c) in hist.counts().iter().enumerate() {
        let log = (c as f64 + 1.0).ln();
        let width = if max_log > 0.0 {
            ((log / max_log) * 50.0).round() as usize
        } else {
            0
        };
        println!("  {:>6.3} | {}", hist.bin_center(i), "#".repeat(width));
    }
}

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 5;
    let data = SynthVision::generate(&SynthSpec::cifar10_like().scaled(0.5), seed)?;
    println!("training original (unclipped) network…");
    let original = train_cnn(&data, None, seed)?;
    println!("training clipped network (λ₀ = 2.0)…\n");
    let clipped = train_cnn(&data, Some(2.0), seed)?;

    let acc_o = evaluate(&original, data.test.images(), data.test.labels(), 50)?;
    let acc_c = evaluate(&clipped, data.test.images(), data.test.labels(), 50)?;
    println!(
        "ANN accuracy: original {:.2}% | clipped {:.2}%  — clipping barely hurts\n",
        acc_o * 100.0,
        acc_c * 100.0
    );

    // Per-site statistics of the original network over the test set.
    let mut folded = fold_batch_norm(&original)?;
    let mut stats = collect_activation_stats(&mut folded, data.test.images(), 50)?;
    let lambdas = clipped.clip_lambdas();
    println!("per-site statistics (original network) vs trained λ (clipped network):");
    println!(
        "  {:<6} {:>9} {:>9} {:>9} {:>10}",
        "site", "max", "p99.0", "p99.9", "trained λ"
    );
    let hidden = stats.len() - 1;
    for (i, s) in stats.iter_mut().take(hidden).enumerate() {
        println!(
            "  {:<6} {:>9.3} {:>9.3} {:>9.3} {:>10.3}",
            i,
            s.max(),
            s.quantile(0.99),
            s.quantile(0.999),
            lambdas.get(i).copied().unwrap_or(f32::NAN)
        );
    }

    // Second-layer histograms (the paper's Figure 1 layer).
    let site = 1;
    let hist_o = collect_site_histogram(&mut folded, data.test.images(), 50, site, 32)?;
    let mut folded_c = fold_batch_norm(&clipped)?;
    let hist_c = collect_site_histogram(&mut folded_c, data.test.images(), 50, site, 32)?;
    println!("\nsite {site} activation distribution, original (log scale):");
    plot(&hist_o);
    println!("\nsite {site} activation distribution, clipped (log scale):");
    plot(&hist_c);
    Ok(())
}
