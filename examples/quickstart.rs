//! Quickstart: train a small TCL network on synthetic data, convert it to a
//! spiking network, and sweep the SNN over a latency grid.
//!
//! ```text
//! cargo run --release -p tcl-core --example quickstart
//! ```
//!
//! This walks the paper's whole pipeline on the smallest model
//! ("4Conv, 2Linear") and a scaled-down cifar10-like dataset. Expect the
//! SNN to approach the ANN accuracy as the latency budget grows.

use tcl_core::{convert_and_evaluate, Converter, NormStrategy};
use tcl_data::{SynthSpec, SynthVision};
use tcl_models::{Architecture, ModelConfig};
use tcl_nn::{train, TrainConfig};
use tcl_snn::{Readout, SimConfig};
use tcl_tensor::SeededRng;

fn main() -> Result<(), Box<dyn std::error::Error>> {
    let seed = 42;
    println!("== TCL quickstart (seed {seed}) ==\n");

    // 1. Synthetic CIFAR-10 stand-in (see DESIGN.md for the substitution).
    let spec = SynthSpec::cifar10_like().scaled(0.5);
    let data = SynthVision::generate(&spec, seed)?;
    println!(
        "dataset: {} train / {} test images, {} classes, {:?} pixels",
        data.train.len(),
        data.test.len(),
        data.train.classes(),
        data.train.image_shape()
    );

    // 2. Build the paper's "4Conv, 2Linear" network with trainable clipping
    //    layers after every ReLU (λ₀ = 2.0, the paper's Cifar-10 setting).
    let (c, h, w) = data.train.image_shape();
    let cfg = ModelConfig::new((c, h, w), data.train.classes())
        .with_base_width(8)
        .with_clip_lambda(Some(2.0));
    let mut rng = SeededRng::new(seed);
    let mut net = Architecture::Cnn6.build(&cfg, &mut rng)?;
    println!(
        "model: {} ({} parameters)\n",
        Architecture::Cnn6,
        net.num_parameters()
    );

    // 3. Train with SGD + momentum and a step learning-rate schedule.
    let train_cfg = TrainConfig {
        verbose: true,
        ..TrainConfig::standard(15, 32, 0.05, &[10])?
    };
    let report = train(
        &mut net,
        data.train.images(),
        data.train.labels(),
        Some((data.test.images(), data.test.labels())),
        &train_cfg,
    )?;
    println!(
        "\ntrained λ per clipping layer: {:?}",
        net.clip_lambdas()
            .iter()
            .map(|l| (l * 100.0).round() / 100.0)
            .collect::<Vec<_>>()
    );
    println!(
        "final ANN accuracy: {:.2}%\n",
        report.final_eval_accuracy().unwrap_or(0.0) * 100.0
    );

    // 4. Convert with the trained clipping bounds and sweep latencies.
    let calibration = data.train.take(128);
    let sim = SimConfig::new(vec![10, 25, 50, 100, 200], 50, Readout::SpikeCount)?;
    let conv_report = convert_and_evaluate(
        &mut net,
        calibration.images(),
        data.test.images(),
        data.test.labels(),
        &Converter::new(NormStrategy::TrainedClip),
        &sim,
    )?;
    println!(
        "ANN accuracy (eval): {:.2}%",
        conv_report.ann_accuracy * 100.0
    );
    println!("SNN accuracy by latency (spike-count readout):");
    for (t, acc) in &conv_report.sweep.accuracies {
        println!("  T = {t:4}  {:6.2}%", acc * 100.0);
    }
    println!(
        "mean firing rate: {:.4} spikes/neuron/step",
        conv_report.sweep.mean_firing_rate
    );
    Ok(())
}
