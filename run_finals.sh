#!/bin/bash
cd /root/repo
until grep -q TEST_RUN_DONE logs/finals.log 2>/dev/null; do sleep 10; done
# Wait for the latency rerun too so the bench numbers aren't skewed by contention.
while pgrep -x latency_curve > /dev/null; do sleep 10; done
cargo bench --workspace 2>&1 | tee /root/repo/bench_output.txt > /dev/null
echo BENCH_RUN_DONE >> /root/repo/logs/finals.log
