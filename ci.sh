#!/usr/bin/env bash
# Repo CI gate: formatting, lints, release build, full test suite.
# Run from the repo root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test"
cargo test --workspace -q

echo "==> telemetry smoke (traced mini conversion + JSONL validation)"
rm -f target/telemetry_smoke.jsonl
TCL_TRACE=target/telemetry_smoke.jsonl TCL_METRICS=1 \
  cargo run --release -q -p tcl-core --example telemetry_smoke
test -s target/telemetry_smoke.jsonl

echo "==> bench binaries answer --help"
for bin in table1 figure1 latency_curve lambda_init reset_mode energy lambda_decay; do
  cargo run --release -q -p tcl-bench --bin "$bin" -- --help | grep -q TCL_TRACE
done

echo "CI OK"
