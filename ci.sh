#!/usr/bin/env bash
# Repo CI gate: formatting, lints, release build, full test suite.
# Run from the repo root. Fails fast on the first broken stage.
set -euo pipefail
cd "$(dirname "$0")"

echo "==> cargo fmt --check"
cargo fmt --all -- --check

echo "==> cargo clippy (warnings are errors)"
cargo clippy --workspace --all-targets -- -D warnings

echo "==> tcl-lint (determinism / panic-policy / concurrency / gating invariants)"
cargo build --release -q -p tcl-lint
lint_start_ms=$(( $(date +%s%N) / 1000000 ))
cargo run --release -q -p tcl-lint -- --format json
cargo run --release -q -p tcl-lint -- --self-check
lint_ms=$(( $(date +%s%N) / 1000000 - lint_start_ms ))
if [ "$lint_ms" -gt 5000 ]; then
  echo "FAIL: tcl-lint took ${lint_ms}ms, over the 5s budget" >&2
  exit 1
fi
echo "tcl-lint clean in ${lint_ms}ms"

# Negative control: a seeded determinism violation must fail the stage with
# the correct file:line [RULE] diagnostic.
lint_probe=crates/tensor/src/ci_lint_probe.rs
printf 'pub fn probe() { let _ = std::time::Instant::now(); }\n' > "$lint_probe"
if lint_out=$(cargo run --release -q -p tcl-lint 2>/dev/null); then
  rm -f "$lint_probe"
  echo "FAIL: tcl-lint exited 0 despite a seeded Instant::now violation" >&2
  exit 1
fi
rm -f "$lint_probe"
if ! printf '%s\n' "$lint_out" | grep -q 'crates/tensor/src/ci_lint_probe.rs:1:[0-9]* \[D1\]'; then
  echo "FAIL: tcl-lint missed the seeded violation's file:line [D1] diagnostic" >&2
  printf '%s\n' "$lint_out" >&2
  exit 1
fi
echo "tcl-lint negative control OK (seeded violation caught)"

# Second negative control: intrinsics outside crates/simd must trip S1 —
# the rule that keeps the unsafe surface confined to the tcl-simd island.
s1_probe=crates/tensor/src/ci_s1_probe.rs
printf 'pub use std::arch::x86_64::_mm256_setzero_ps;\n' > "$s1_probe"
if s1_out=$(cargo run --release -q -p tcl-lint 2>/dev/null); then
  rm -f "$s1_probe"
  echo "FAIL: tcl-lint exited 0 despite a seeded intrinsic outside crates/simd" >&2
  exit 1
fi
rm -f "$s1_probe"
if ! printf '%s\n' "$s1_out" | grep -q 'crates/tensor/src/ci_s1_probe.rs:1:[0-9]* \[S1\]'; then
  echo "FAIL: tcl-lint missed the seeded intrinsic's file:line [S1] diagnostic" >&2
  printf '%s\n' "$s1_out" >&2
  exit 1
fi
echo "tcl-lint S1 negative control OK (seeded intrinsic caught)"

# Third negative control: a layering violation (tensor importing a crate
# above it in the DAG) must trip A1 even though cargo would also reject
# it — the lint catches the `use` before a Cargo.toml edit legitimises it.
a1_probe=crates/tensor/src/ci_a1_probe.rs
printf 'pub use tcl_core::Pipeline;\n' > "$a1_probe"
if a1_out=$(cargo run --release -q -p tcl-lint 2>/dev/null); then
  rm -f "$a1_probe"
  echo "FAIL: tcl-lint exited 0 despite a seeded layering violation" >&2
  exit 1
fi
rm -f "$a1_probe"
if ! printf '%s\n' "$a1_out" | grep -q 'crates/tensor/src/ci_a1_probe.rs:1:[0-9]* \[A1\]'; then
  echo "FAIL: tcl-lint missed the seeded layering violation's file:line [A1] diagnostic" >&2
  printf '%s\n' "$a1_out" >&2
  exit 1
fi
echo "tcl-lint A1 negative control OK (seeded layering violation caught)"

# Fourth negative control: a NaN-unsound float comparator must trip F1.
f1_probe=crates/tensor/src/ci_f1_probe.rs
printf 'pub fn probe(v: &mut [f32]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap_or(std::cmp::Ordering::Equal)); }\n' > "$f1_probe"
if f1_out=$(cargo run --release -q -p tcl-lint 2>/dev/null); then
  rm -f "$f1_probe"
  echo "FAIL: tcl-lint exited 0 despite a seeded partial_cmp violation" >&2
  exit 1
fi
rm -f "$f1_probe"
if ! printf '%s\n' "$f1_out" | grep -q 'crates/tensor/src/ci_f1_probe.rs:1:[0-9]* \[F1\]'; then
  echo "FAIL: tcl-lint missed the seeded partial_cmp's file:line [F1] diagnostic" >&2
  printf '%s\n' "$f1_out" >&2
  exit 1
fi
echo "tcl-lint F1 negative control OK (seeded partial_cmp caught)"

# Crate-dependency graph artifact: the DOT render doubles as the A1/A2
# check (rendering loads every manifest through the same model) and is
# published for docs/review.
cargo run --release -q -p tcl-lint -- --deps --format dot > target/deps.dot
if ! grep -q '"tcl-tensor" -> "tcl-simd"' target/deps.dot; then
  echo "FAIL: target/deps.dot missing the tensor -> simd edge" >&2
  cat target/deps.dot >&2
  exit 1
fi
echo "tcl-lint deps graph OK (target/deps.dot published)"

echo "==> cargo build --release"
cargo build --release --workspace

echo "==> cargo test (budget: ${TCL_TEST_BUDGET_S:-1200}s, incl. thread matrix)"
test_start=$(date +%s)
cargo test --workspace -q

# Determinism matrix: the kernels, engine, and golden snapshots must produce
# identical results for every worker count at every SIMD dispatch level.
# `scalar` pins the reference numerics; `native` resolves the widest ISA the
# host offers (AVX2+FMA where available, the portable wide path otherwise).
for isa in scalar native; do
  for t in 1 4; do
    echo "==> cargo test -p tcl-tensor -p tcl-snn --tests (TCL_SIMD=$isa TCL_THREADS=$t)"
    TCL_SIMD=$isa TCL_THREADS=$t cargo test -q -p tcl-tensor -p tcl-snn --tests
  done
done

elapsed=$(( $(date +%s) - test_start ))
budget="${TCL_TEST_BUDGET_S:-1200}"
if [ "$elapsed" -gt "$budget" ]; then
  echo "FAIL: test suite took ${elapsed}s, over the ${budget}s budget" >&2
  exit 1
fi
echo "tests finished in ${elapsed}s (budget ${budget}s)"

echo "==> telemetry smoke (traced mini conversion + JSONL validation)"
rm -f target/telemetry_smoke.jsonl
TCL_TRACE=target/telemetry_smoke.jsonl TCL_METRICS=1 \
  cargo run --release -q -p tcl-core --example telemetry_smoke
test -s target/telemetry_smoke.jsonl

echo "==> observability toolkit (tcl-trace over the smoke trace + negative control)"
./target/release/tcl-trace --help | grep -q critical-path
smoke=target/telemetry_smoke.jsonl
./target/release/tcl-trace summary "$smoke" | grep -q 'self%'
./target/release/tcl-trace flame "$smoke" > target/telemetry_smoke.folded
test -s target/telemetry_smoke.folded
./target/release/tcl-trace flame --svg "$smoke" | grep -q '<svg'
./target/release/tcl-trace critical-path "$smoke" | grep -q 'critical path:'
# A trace diffed against itself has no regressions and exits 0.
./target/release/tcl-trace diff "$smoke" "$smoke" > /dev/null
# Negative control: a trace cut off mid-line must produce a clean parse
# error naming the bad line (exit 2), not a panic.
{ head -n 3 "$smoke"; printf '{"type":"span","id":'; } > target/telemetry_smoke_truncated.jsonl
set +e
trace_err=$(./target/release/tcl-trace summary target/telemetry_smoke_truncated.jsonl 2>&1)
trace_rc=$?
set -e
if [ "$trace_rc" -ne 2 ]; then
  echo "FAIL: tcl-trace exited $trace_rc on a truncated trace (want 2)" >&2
  printf '%s\n' "$trace_err" >&2
  exit 1
fi
if ! printf '%s\n' "$trace_err" | grep -q 'trace line 4'; then
  echo "FAIL: tcl-trace did not name the corrupt trace line" >&2
  printf '%s\n' "$trace_err" >&2
  exit 1
fi
rm -f target/telemetry_smoke.folded target/telemetry_smoke_truncated.jsonl
echo "tcl-trace OK (summary/flame/critical-path/diff + truncation caught)"

echo "==> bench binaries answer --help (incl. --resume pass-through)"
for bin in table1 figure1 latency_curve lambda_init reset_mode energy lambda_decay engine_bench obs_bench serve_bench; do
  cargo run --release -q -p tcl-bench --bin "$bin" -- --help | grep -q TCL_TRACE
  cargo run --release -q -p tcl-bench --bin "$bin" -- --resume --help | grep -q TCL_CKPT_EVERY
done

echo "==> checkpoint/resume crash-safety suite (bit-exact kill-and-resume)"
cargo test --release -q -p tcl-nn --test checkpoint_resume

echo "==> tcl-serve: load-simulation + fault-injection suites (thread matrix)"
# The serving core is virtual-clock deterministic: the sim-load suite pins
# completion-order fingerprints that must be byte-identical across worker
# counts, so the whole suite runs as separate processes at each setting.
for t in 1 4; do
  echo "==> cargo test -p tcl-serve --tests (TCL_THREADS=$t)"
  TCL_THREADS=$t cargo test -q -p tcl-serve --tests
done
./target/release/tcl_serve --help | grep -q TCL_SERVE_ADDR
# Negative control: a request body cut off mid-transfer must resolve to a
# timely 4xx (slow-loris timeout), never a hang or a served answer.
serve_out=$(cargo test -q -p tcl-serve --test faults   truncated_body_answers_4xx_within_timeout -- --exact 2>&1)
if ! printf '%s\n' "$serve_out" | grep -q '1 passed'; then
  echo "FAIL: truncated-body negative control did not run/pass" >&2
  printf '%s\n' "$serve_out" >&2
  exit 1
fi
echo "tcl-serve OK (deterministic across TCL_THREADS={1,4} + truncated-body control)"

echo "==> tcl-serve: loopback soak (real sockets, reused connections)"
# Drives the real tcl_serve binary over loopback TCP with kept-alive
# connections, asserting zero parse errors and sheds-within-deadline, and
# comparing p50/p99/shed against the virtual-clock prediction. Includes
# the duplicate-Content-Length negative control (smuggling shape -> 400)
# and an in-order pipelining probe.
soak_out=$(TCL_SCALE=quick cargo run --release -q -p tcl-bench --bin serve_bench -- --soak 2>&1)
for want in 'parse_errors=0' 'sheds-within-deadline held' \
    'duplicate-Content-Length probe -> 400' 'pipelined burst answered in order' 'soak OK'; do
  if ! printf '%s\n' "$soak_out" | grep -q "$want"; then
    echo "FAIL: soak missing \"$want\"" >&2
    printf '%s\n' "$soak_out" >&2
    exit 1
  fi
done
echo "tcl-serve soak OK (keep-alive over real sockets + duplicate-Content-Length control)"

echo "CI OK"
