//! Invariants of the data-normalization (Eq. 5) and batch-norm folding
//! (Eq. 7) passes, checked across crate boundaries.

use tcl_core::{collect_activation_stats, count_sites, fold_batch_norm, Converter, NormStrategy};
use tcl_models::{Architecture, ModelConfig};
use tcl_nn::{Mode, Network};
use tcl_tensor::{SeededRng, Tensor};

fn trained_stats_net(arch: Architecture, clip: Option<f32>, seed: u64) -> (Network, Tensor) {
    let mut rng = SeededRng::new(seed);
    let cfg = ModelConfig::new((3, 8, 8), 4)
        .with_base_width(3)
        .with_clip_lambda(clip);
    let mut net = arch.build(&cfg, &mut rng).unwrap();
    // Warm BN running statistics with a few training-mode passes so folding
    // is non-trivial.
    let warm = rng.uniform_tensor([16, 3, 8, 8], -1.0, 1.0);
    for _ in 0..4 {
        net.forward(&warm, Mode::Train).unwrap();
    }
    let calibration = rng.uniform_tensor([24, 3, 8, 8], -1.0, 1.0);
    (net, calibration)
}

#[test]
fn folding_preserves_every_architecture_output() {
    for (i, arch) in [
        Architecture::Cnn6,
        Architecture::Vgg16,
        Architecture::ResNet18,
        Architecture::ResNet20,
        Architecture::ResNet34,
    ]
    .into_iter()
    .enumerate()
    {
        let (net, _) = trained_stats_net(arch, Some(2.0), 40 + i as u64);
        let mut original = net.clone();
        let mut folded = fold_batch_norm(&net).unwrap();
        let mut rng = SeededRng::new(90 + i as u64);
        let x = rng.uniform_tensor([3, 3, 8, 8], -1.0, 1.0);
        let a = original.forward(&x, Mode::Eval).unwrap();
        let b = folded.forward(&x, Mode::Eval).unwrap();
        let diff = a.max_abs_diff(&b).unwrap();
        assert!(diff < 2e-3, "{arch}: fold changed outputs by {diff}");
    }
}

#[test]
fn site_counts_are_consistent_between_stats_and_conversion() {
    for arch in [
        Architecture::Cnn6,
        Architecture::Vgg16,
        Architecture::ResNet18,
    ] {
        let (net, calibration) = trained_stats_net(arch, Some(2.0), 55);
        let folded = fold_batch_norm(&net).unwrap();
        let sites = count_sites(&folded);
        let mut stats_net = folded.clone();
        let stats = collect_activation_stats(&mut stats_net, &calibration, 8).unwrap();
        assert_eq!(stats.len(), sites, "{arch}");
        let conversion = Converter::new(NormStrategy::TrainedClip)
            .convert(&net, &calibration)
            .unwrap();
        assert_eq!(conversion.lambdas.len(), sites, "{arch}");
    }
}

#[test]
fn percentile_and_max_norm_work_on_unclipped_networks() {
    let (net, calibration) = trained_stats_net(Architecture::Vgg16, None, 60);
    for strategy in [
        NormStrategy::MaxActivation,
        NormStrategy::percentile_999(),
        NormStrategy::Percentile(0.9),
    ] {
        let conversion = Converter::new(strategy)
            .convert(&net, &calibration)
            .unwrap();
        assert!(
            conversion.lambdas.iter().all(|&l| l > 0.0),
            "{strategy:?} produced non-positive λ"
        );
    }
}

#[test]
fn lower_percentile_gives_smaller_norm_factors() {
    let (net, calibration) = trained_stats_net(Architecture::Cnn6, None, 61);
    let p90 = Converter::new(NormStrategy::Percentile(0.90))
        .convert(&net, &calibration)
        .unwrap();
    let p999 = Converter::new(NormStrategy::Percentile(0.999))
        .convert(&net, &calibration)
        .unwrap();
    let hidden = p90.lambdas.len() - 1;
    for site in 0..hidden {
        assert!(
            p90.lambdas[site] <= p999.lambdas[site] + 1e-5,
            "site {site}: p90 {} > p99.9 {}",
            p90.lambdas[site],
            p999.lambdas[site]
        );
    }
}

#[test]
fn conversion_is_deterministic() {
    let (net, calibration) = trained_stats_net(Architecture::Cnn6, Some(2.0), 62);
    let a = Converter::new(NormStrategy::TrainedClip)
        .convert(&net, &calibration)
        .unwrap();
    let b = Converter::new(NormStrategy::TrainedClip)
        .convert(&net, &calibration)
        .unwrap();
    assert_eq!(a.lambdas, b.lambdas);
    // Identical SNN behaviour on a fixed stimulus.
    let mut rng = SeededRng::new(63);
    let x = rng.uniform_tensor([2, 3, 8, 8], -1.0, 1.0);
    let (mut sa, mut sb) = (a.snn, b.snn);
    sa.reset();
    sb.reset();
    for _ in 0..20 {
        let ya = sa.step(&x).unwrap();
        let yb = sb.step(&x).unwrap();
        assert_eq!(ya, yb);
    }
}

#[test]
fn scaling_input_statistics_scales_stat_norm_factors() {
    // Eq. 5 self-consistency: feeding 2× larger inputs to the same network
    // scales first-site max-activation norm-factors (ReLU networks are
    // positively homogeneous in their first layer pre-activation).
    let mut rng = SeededRng::new(70);
    let cfg = ModelConfig::new((3, 8, 8), 4)
        .with_base_width(3)
        .with_batch_norm(false);
    let net = Architecture::Cnn6.build(&cfg, &mut rng).unwrap();
    let calibration = rng.uniform_tensor([16, 3, 8, 8], -1.0, 1.0);
    let doubled = calibration.scale(2.0);
    let a = Converter::new(NormStrategy::MaxActivation)
        .convert(&net, &calibration)
        .unwrap();
    let b = Converter::new(NormStrategy::MaxActivation)
        .convert(&net, &doubled)
        .unwrap();
    // First site: pre-activation is linear in the input (bias is zero at
    // init for convs built without BN? convs keep bias; bias is zero-initialized).
    let ratio = b.lambdas[0] / a.lambdas[0];
    assert!(
        (ratio - 2.0).abs() < 0.2,
        "first-site λ should roughly double, ratio {ratio}"
    );
}
