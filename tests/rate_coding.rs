//! Rate-coding fidelity: the converted SNN's spike rates must converge to
//! the (normalized) ANN activations as the latency budget grows — the
//! foundational premise of ANN-to-SNN conversion (Cao et al. 2015) that
//! TCL's norm-factor choice optimizes.

use tcl_core::{Converter, NormStrategy};
use tcl_nn::layers::{Clip, Linear, Relu};
use tcl_nn::{Layer, Mode, Network};
use tcl_tensor::{SeededRng, Tensor};

/// Builds a two-layer clipped MLP and returns it with its calibration set.
fn clipped_mlp(seed: u64) -> (Network, Tensor) {
    let mut rng = SeededRng::new(seed);
    let net = Network::new(vec![
        Layer::Linear(Linear::new(6, 10, true, &mut rng).unwrap()),
        Layer::Relu(Relu::new()),
        Layer::Clip(Clip::new(1.2)),
        Layer::Linear(Linear::new(10, 4, true, &mut rng).unwrap()),
    ]);
    let calibration = rng.uniform_tensor([64, 6], -1.0, 1.0);
    (net, calibration)
}

/// Measures the hidden-layer firing rate of the converted SNN and the
/// corresponding normalized ANN activation for the same stimuli.
fn rate_vs_activation(t_steps: usize, seed: u64) -> (Vec<f32>, Vec<f32>) {
    let (net, calibration) = clipped_mlp(seed);
    let mut ann = net.clone();
    let mut rng = SeededRng::new(seed ^ 0xABCD);
    let x = rng.uniform_tensor([5, 6], -1.0, 1.0);

    // ANN hidden activation after relu+clip, normalized by λ = 1.2.
    let mut hidden = None;
    ann.forward_observed(&x, Mode::Eval, |i, _layer, out| {
        if i == 2 {
            hidden = Some(out.clone());
        }
    })
    .unwrap();
    let expected: Vec<f32> = hidden.unwrap().data().iter().map(|v| v / 1.2).collect();

    // Observe the hidden layer by running the first spiking node alone:
    // its spike rate is the quantity rate coding promises to converge.
    let mut hidden_counts = vec![0.0f32; expected.len()];
    let first = conversion_first_node(&net, &calibration);
    let mut first_net = tcl_snn::SpikingNetwork::new(vec![first]);
    first_net.reset();
    for _ in 0..t_steps {
        let spikes = first_net.step(&x).unwrap();
        for (c, s) in hidden_counts.iter_mut().zip(spikes.data()) {
            *c += s;
        }
    }
    let rates: Vec<f32> = hidden_counts.iter().map(|c| c / t_steps as f32).collect();
    (rates, expected)
}

/// Re-runs conversion and extracts the first spiking node.
fn conversion_first_node(net: &Network, calibration: &Tensor) -> tcl_snn::SpikingNode {
    let conversion = Converter::new(NormStrategy::TrainedClip)
        .convert(net, calibration)
        .unwrap();
    conversion
        .snn
        .nodes()
        .first()
        .expect("network has nodes")
        .clone()
}

#[test]
fn hidden_rates_converge_to_normalized_activations() {
    let (rates, expected) = rate_vs_activation(400, 21);
    let max_err = rates
        .iter()
        .zip(&expected)
        .map(|(r, e)| (r - e).abs())
        .fold(0.0f32, f32::max);
    // Reset-by-subtraction rate coding has O(1/T) error.
    assert!(max_err < 0.02, "rate error {max_err} too large at T=400");
}

#[test]
fn rate_error_shrinks_with_latency() {
    let err_at = |t: usize| -> f32 {
        let (rates, expected) = rate_vs_activation(t, 23);
        rates
            .iter()
            .zip(&expected)
            .map(|(r, e)| (r - e).abs())
            .sum::<f32>()
            / rates.len() as f32
    };
    let short = err_at(20);
    let long = err_at(320);
    assert!(
        long < short,
        "mean rate error should shrink with T: {short} -> {long}"
    );
}

#[test]
fn rates_never_exceed_one() {
    let (rates, _) = rate_vs_activation(100, 29);
    assert!(rates.iter().all(|&r| (0.0..=1.0).contains(&r)));
}

#[test]
fn snn_decisions_match_ann_decisions_at_long_latency() {
    let (net, calibration) = clipped_mlp(31);
    let mut ann = net.clone();
    let mut rng = SeededRng::new(32);
    let x = rng.uniform_tensor([10, 6], -1.0, 1.0);
    let logits = ann.forward(&x, Mode::Eval).unwrap();
    let ann_preds = tcl_tensor::ops::argmax_rows(&logits).unwrap();
    let snn = Converter::new(NormStrategy::TrainedClip)
        .convert(&net, &calibration)
        .unwrap()
        .snn;
    let cfg = tcl_snn::SimConfig::new(vec![500], 10, tcl_snn::Readout::Membrane).unwrap();
    let sweep = tcl_snn::evaluate(&snn, &x, &ann_preds, &cfg).unwrap();
    assert!(
        sweep.final_accuracy() >= 0.9,
        "long-T SNN should match ANN decisions, got {}",
        sweep.final_accuracy()
    );
}
