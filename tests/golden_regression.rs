//! Golden-file regression suite for the mini Table-1 pipeline.
//!
//! Trains one small TCL network on deterministic synthetic data, converts it
//! with both norm strategies, sweeps the SNN through the engine, and renders
//! the numbers that define the reproduction — per-layer λ, ANN accuracy, and
//! SNN accuracy at each checkpoint — into a canonical text form compared
//! byte-for-byte against `tests/golden/*.json`.
//!
//! Everything in the pipeline is deterministic (seeded data generation,
//! seeded init, bitwise thread-count-invariant kernels), so any drift in
//! these files is a *behaviour change* — intended or not — and the diff
//! printed on failure shows exactly which quantity moved. To accept an
//! intended change, re-bless the snapshots:
//!
//! ```text
//! TCL_BLESS=1 cargo test -p tcl-core --test golden_regression
//! ```
//!
//! The snapshots record **scalar** kernel numerics: the test pins the
//! process SIMD level to `Scalar` before anything dispatches, so the bytes
//! stay stable on any host and under any `TCL_SIMD` value. (AVX2 fuses
//! multiply-adds and would shift low-order float digits.)

use std::fmt::Write as _;
use std::path::{Path, PathBuf};
use tcl_core::{convert_and_evaluate_with, Converter, EngineReport, NormStrategy};
use tcl_data::{SynthSpec, SynthVision};
use tcl_models::{Architecture, ModelConfig};
use tcl_nn::{train, TrainConfig};
use tcl_snn::{Engine, ExitPolicy, Readout, SimConfig};
use tcl_tensor::SeededRng;

const SEED: u64 = 23;
const CHECKPOINTS: [usize; 2] = [8, 32];

fn golden_dir() -> PathBuf {
    Path::new(env!("CARGO_MANIFEST_DIR")).join("../../tests/golden")
}

/// The mini Table-1 workload: train once, convert with each strategy.
fn mini_pipeline() -> Vec<(&'static str, EngineReport)> {
    let spec = SynthSpec::cifar10_like().scaled(0.2);
    let data = SynthVision::generate(&spec, SEED).expect("generate data");
    let (c, h, w) = data.train.image_shape();
    let cfg = ModelConfig::new((c, h, w), data.train.classes())
        .with_base_width(4)
        .with_clip_lambda(Some(2.0));
    let mut rng = SeededRng::new(SEED);
    let mut net = Architecture::Cnn6.build(&cfg, &mut rng).expect("build");
    let train_cfg = TrainConfig::standard(6, 32, 0.05, &[4]).expect("config");
    train(
        &mut net,
        data.train.images(),
        data.train.labels(),
        None,
        &train_cfg,
    )
    .expect("train");
    let sim = SimConfig::new(CHECKPOINTS.to_vec(), 50, Readout::SpikeCount).unwrap();
    let calibration = data.train.take(100);
    let mut engine = Engine::new();
    let mut reports = Vec::new();
    for (name, strategy) in [
        ("tcl", NormStrategy::TrainedClip),
        ("max_norm", NormStrategy::MaxActivation),
    ] {
        let report = convert_and_evaluate_with(
            &mut engine,
            &mut net,
            calibration.images(),
            data.test.images(),
            data.test.labels(),
            &Converter::new(strategy),
            &sim,
            ExitPolicy::Off,
        )
        .expect("pipeline");
        reports.push((name, report));
    }
    reports
}

/// Canonical rendering: one JSON document, one scalar per line, all floats
/// at fixed 6-decimal precision so diffs read as "which number moved".
fn canonical(name: &str, report: &EngineReport) -> String {
    let mut s = String::new();
    let _ = writeln!(s, "{{");
    let _ = writeln!(s, "  \"workload\": \"cnn6-w4-synth0.2-seed{SEED}\",");
    let _ = writeln!(s, "  \"strategy\": \"{name}\",");
    let _ = writeln!(s, "  \"ann_accuracy\": {:.6},", report.ann_accuracy);
    let _ = writeln!(s, "  \"lambdas\": [");
    for (i, l) in report.lambdas.iter().enumerate() {
        let comma = if i + 1 < report.lambdas.len() {
            ","
        } else {
            ""
        };
        let _ = writeln!(s, "    {l:.6}{comma}");
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(s, "  \"snn_accuracy\": [");
    let accs = &report.result.sweep.accuracies;
    for (i, (t, a)) in accs.iter().enumerate() {
        let comma = if i + 1 < accs.len() { "," } else { "" };
        let _ = writeln!(s, "    {{ \"t\": {t}, \"accuracy\": {a:.6} }}{comma}");
    }
    let _ = writeln!(s, "  ],");
    let _ = writeln!(
        s,
        "  \"mean_firing_rate\": {:.6}",
        report.result.sweep.mean_firing_rate
    );
    let _ = writeln!(s, "}}");
    s
}

/// Line-by-line readable diff of a drifted snapshot.
fn render_diff(file: &str, expected: &str, actual: &str) -> String {
    let mut out = format!("golden snapshot drift in {file}:\n");
    let exp: Vec<&str> = expected.lines().collect();
    let act: Vec<&str> = actual.lines().collect();
    for i in 0..exp.len().max(act.len()) {
        match (exp.get(i), act.get(i)) {
            (Some(e), Some(a)) if e == a => {}
            (e, a) => {
                let _ = writeln!(out, "  line {}:", i + 1);
                if let Some(e) = e {
                    let _ = writeln!(out, "    - {e}");
                }
                if let Some(a) = a {
                    let _ = writeln!(out, "    + {a}");
                }
            }
        }
    }
    let _ = writeln!(
        out,
        "  (intended change? re-bless with TCL_BLESS=1 cargo test -p tcl-core --test golden_regression)"
    );
    out
}

#[test]
fn mini_table1_matches_golden_snapshots() {
    // Golden numerics are scalar; the pin must win (first resolution does),
    // so assert nothing resolved the process level ahead of us.
    let effective = tcl_tensor::simd::pin(tcl_tensor::simd::Level::Scalar);
    assert_eq!(
        effective,
        tcl_tensor::simd::Level::Scalar,
        "golden suite requires the scalar SIMD level but the process level \
         was already resolved to {}",
        effective.name()
    );
    let bless = std::env::var("TCL_BLESS").is_ok_and(|v| v == "1");
    let dir = golden_dir();
    let mut drift = String::new();
    for (name, report) in mini_pipeline() {
        // Basic sanity before trusting the snapshot at all: the TCL
        // conversion must actually work on this workload.
        if name == "tcl" {
            assert!(
                report.ann_accuracy > 0.5,
                "mini workload failed to train: {}",
                report.ann_accuracy
            );
            let final_acc = report.result.sweep.final_accuracy();
            assert!(
                report.ann_accuracy - final_acc < 0.1,
                "conversion gap blew up: ANN {} vs SNN {final_acc}",
                report.ann_accuracy
            );
        }
        let rendered = canonical(name, &report);
        let file = format!("table1_{name}.json");
        let path = dir.join(&file);
        if bless {
            std::fs::create_dir_all(&dir).expect("create golden dir");
            std::fs::write(&path, &rendered).expect("write golden");
            continue;
        }
        let expected = std::fs::read_to_string(&path).unwrap_or_else(|e| {
            panic!(
                "missing golden snapshot {}: {e}\n  generate it with TCL_BLESS=1 \
                 cargo test -p tcl-core --test golden_regression",
                path.display()
            )
        });
        if expected != rendered {
            drift.push_str(&render_diff(&file, &expected, &rendered));
        }
    }
    assert!(drift.is_empty(), "{drift}");
}
