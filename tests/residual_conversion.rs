//! Integration tests for the residual-block conversion of Section 5:
//! NS/OS splitting, the virtual identity convolution for type-A blocks, and
//! rate-coding fidelity through deep residual stacks.

use tcl_core::{Converter, NormStrategy};
use tcl_nn::layers::{Clip, Conv2d, Flatten, GlobalAvgPool, Linear, Relu, ResidualBlock, Shortcut};
use tcl_nn::{Layer, Mode, Network};
use tcl_snn::{evaluate, Readout, SimConfig};
use tcl_tensor::{ops::ConvGeometry, SeededRng, Tensor};

/// A tiny residual classifier: stem conv → one residual block → GAP →
/// linear. `projection` forces a type-B block even when shapes admit
/// identity.
fn residual_net(projection: bool, seed: u64) -> Network {
    let mut rng = SeededRng::new(seed);
    let channels = 4;
    let stem = Conv2d::new(2, channels, 3, 1, 1, true, &mut rng).unwrap();
    let mut block = ResidualBlock::new(channels, channels, 1, false, Some(1.5), &mut rng).unwrap();
    if projection {
        // Replace the identity shortcut with an explicit identity 1×1
        // projection — mathematically the same function as type A.
        let mut w = Tensor::zeros([channels, channels, 1, 1]);
        for c in 0..channels {
            w.data_mut()[c * channels + c] = 1.0;
        }
        let conv = Conv2d::from_parts(
            w,
            Some(Tensor::zeros([channels])),
            ConvGeometry::square(1, 1, 0).unwrap(),
        )
        .unwrap();
        block.shortcut = Shortcut::Projection { conv, bn: None };
    }
    Network::new(vec![
        Layer::Conv2d(stem),
        Layer::Relu(Relu::new()),
        Layer::Clip(Clip::new(1.5)),
        Layer::Residual(block),
        Layer::GlobalAvgPool(GlobalAvgPool::new()),
        Layer::Flatten(Flatten::new()),
        Layer::Linear(Linear::new(4, 3, true, &mut rng).unwrap()),
    ])
}

/// Copies trained parameters from net `a` into net `b` so that a type-A and
/// a type-B network compute the identical function.
fn clone_with_projection(net: &Network, seed: u64) -> Network {
    let mut with_proj = residual_net(true, seed);
    // Copy stem, block convs, clips, and classifier verbatim.
    for (dst, src) in with_proj.layers_mut().iter_mut().zip(net.layers().iter()) {
        match (dst, src) {
            (Layer::Conv2d(d), Layer::Conv2d(s)) => {
                d.weight.value = s.weight.value.clone();
                if let (Some(db), Some(sb)) = (&mut d.bias, &s.bias) {
                    db.value = sb.value.clone();
                }
            }
            (Layer::Linear(d), Layer::Linear(s)) => {
                d.weight.value = s.weight.value.clone();
                if let (Some(db), Some(sb)) = (&mut d.bias, &s.bias) {
                    db.value = sb.value.clone();
                }
            }
            (Layer::Clip(d), Layer::Clip(s)) => {
                d.lambda.value = s.lambda.value.clone();
            }
            (Layer::Residual(d), Layer::Residual(s)) => {
                d.conv1.weight.value = s.conv1.weight.value.clone();
                if let (Some(db), Some(sb)) = (&mut d.conv1.bias, &s.conv1.bias) {
                    db.value = sb.value.clone();
                }
                d.conv2.weight.value = s.conv2.weight.value.clone();
                if let (Some(db), Some(sb)) = (&mut d.conv2.bias, &s.conv2.bias) {
                    db.value = sb.value.clone();
                }
                if let (Some(dc), Some(sc)) = (&mut d.clip1, &s.clip1) {
                    dc.lambda.value = sc.lambda.value.clone();
                }
                if let (Some(dc), Some(sc)) = (&mut d.clip_out, &s.clip_out) {
                    dc.lambda.value = sc.lambda.value.clone();
                }
            }
            _ => {}
        }
    }
    with_proj
}

#[test]
fn type_a_and_explicit_identity_projection_are_equivalent_anns() {
    let type_a = residual_net(false, 3);
    let type_b = clone_with_projection(&type_a, 3);
    let mut a = type_a.clone();
    let mut b = type_b.clone();
    let mut rng = SeededRng::new(4);
    let x = rng.uniform_tensor([3, 2, 6, 6], -1.0, 1.0);
    let ya = a.forward(&x, Mode::Eval).unwrap();
    let yb = b.forward(&x, Mode::Eval).unwrap();
    assert!(
        ya.max_abs_diff(&yb).unwrap() < 1e-5,
        "identity projection must match identity shortcut"
    );
}

#[test]
fn virtual_conv_makes_type_a_convert_like_type_b() {
    // Section 5's claim: with the virtual 1×1 unit convolution, type-A
    // blocks convert through the same OS algebra as type-B. Converting the
    // two equivalent networks must produce SNNs with identical behaviour.
    let type_a = residual_net(false, 5);
    let type_b = clone_with_projection(&type_a, 5);
    let mut rng = SeededRng::new(6);
    let calibration = rng.uniform_tensor([16, 2, 6, 6], -1.0, 1.0);
    let converter = Converter::new(NormStrategy::TrainedClip);
    let mut snn_a = converter.convert(&type_a, &calibration).unwrap().snn;
    let mut snn_b = converter.convert(&type_b, &calibration).unwrap().snn;
    let x = rng.uniform_tensor([2, 2, 6, 6], -1.0, 1.0);
    snn_a.reset();
    snn_b.reset();
    let mut count_a = Tensor::zeros([2, 3]);
    let mut count_b = Tensor::zeros([2, 3]);
    for _ in 0..60 {
        count_a.add_assign(&snn_a.step(&x).unwrap()).unwrap();
        count_b.add_assign(&snn_b.step(&x).unwrap()).unwrap();
    }
    assert!(
        count_a.max_abs_diff(&count_b).unwrap() < 1e-6,
        "type-A and equivalent type-B conversions diverged: {count_a} vs {count_b}"
    );
}

#[test]
fn residual_snn_rate_codes_the_ann_function() {
    // The OS layer output rate should approximate the clipped ANN
    // activation scaled by λ_out; here we check at the classification level
    // with a membrane readout: long-T SNN predictions match ANN argmaxes.
    let net = residual_net(false, 9);
    let mut ann = net.clone();
    let mut rng = SeededRng::new(10);
    let calibration = rng.uniform_tensor([24, 2, 6, 6], -1.0, 1.0);
    let x = rng.uniform_tensor([8, 2, 6, 6], -1.0, 1.0);
    let logits = ann.forward(&x, Mode::Eval).unwrap();
    let ann_preds = tcl_tensor::ops::argmax_rows(&logits).unwrap();
    let snn = Converter::new(NormStrategy::TrainedClip)
        .convert(&net, &calibration)
        .unwrap()
        .snn;
    let cfg = SimConfig::new(vec![300], 8, Readout::Membrane).unwrap();
    let sweep = evaluate(&snn, &x, &ann_preds, &cfg).unwrap();
    assert!(
        sweep.final_accuracy() >= 0.75,
        "SNN should reproduce most ANN decisions, got {}",
        sweep.final_accuracy()
    );
}

#[test]
fn strided_projection_blocks_convert_and_run() {
    let mut rng = SeededRng::new(12);
    let block = ResidualBlock::new(2, 6, 2, false, Some(1.0), &mut rng).unwrap();
    assert!(!block.shortcut.is_identity());
    let net = Network::new(vec![
        Layer::Conv2d(Conv2d::new(2, 2, 3, 1, 1, true, &mut rng).unwrap()),
        Layer::Relu(Relu::new()),
        Layer::Clip(Clip::new(1.0)),
        Layer::Residual(block),
        Layer::GlobalAvgPool(GlobalAvgPool::new()),
        Layer::Flatten(Flatten::new()),
        Layer::Linear(Linear::new(6, 2, true, &mut rng).unwrap()),
    ]);
    let calibration = rng.uniform_tensor([8, 2, 8, 8], -1.0, 1.0);
    let mut snn = Converter::new(NormStrategy::TrainedClip)
        .convert(&net, &calibration)
        .unwrap()
        .snn;
    let x = rng.uniform_tensor([2, 2, 8, 8], -1.0, 1.0);
    snn.reset();
    for _ in 0..10 {
        let out = snn.step(&x).unwrap();
        assert_eq!(out.dims(), &[2, 2]);
    }
    assert!(snn.total_spikes() > 0);
}
