//! End-to-end integration: train → convert → simulate, asserting the
//! paper's qualitative results on a scaled-down workload.

use tcl_core::{convert_and_evaluate, Converter, NormStrategy};
use tcl_data::{SynthSpec, SynthVision};
use tcl_models::{Architecture, ModelConfig};
use tcl_nn::{train, TrainConfig};
use tcl_snn::{Readout, SimConfig};
use tcl_tensor::SeededRng;

/// Shared scaled-down training setup: 10-class cifar-like data, "4Conv,
/// 2Linear" at width 6, a dozen epochs.
fn train_cnn6(clip: Option<f32>, seed: u64) -> (tcl_nn::Network, SynthVision) {
    let spec = SynthSpec::cifar10_like().scaled(0.35);
    let data = SynthVision::generate(&spec, seed).expect("generate data");
    let (c, h, w) = data.train.image_shape();
    let cfg = ModelConfig::new((c, h, w), data.train.classes())
        .with_base_width(6)
        .with_clip_lambda(clip);
    let mut rng = SeededRng::new(seed);
    let mut net = Architecture::Cnn6.build(&cfg, &mut rng).expect("build");
    let train_cfg = TrainConfig::standard(12, 32, 0.05, &[8]).expect("config");
    train(
        &mut net,
        data.train.images(),
        data.train.labels(),
        None,
        &train_cfg,
    )
    .expect("train");
    (net, data)
}

#[test]
fn tcl_snn_tracks_its_ann_at_moderate_latency() {
    let (mut net, data) = train_cnn6(Some(2.0), 7);
    let sim = SimConfig::new(vec![25, 100, 200], 50, Readout::SpikeCount).unwrap();
    let report = convert_and_evaluate(
        &mut net,
        data.train.take(100).images(),
        data.test.images(),
        data.test.labels(),
        &Converter::new(NormStrategy::TrainedClip),
        &sim,
    )
    .unwrap();
    let ann = report.ann_accuracy;
    assert!(ann > 0.6, "ANN should learn the task, got {ann}");
    let at_200 = report.sweep.accuracy_at(200).unwrap();
    // Paper's headline: near-zero conversion loss at moderate latency.
    assert!(
        ann - at_200 < 0.05,
        "TCL conversion gap too large: ANN {ann} vs SNN@200 {at_200}"
    );
    // Accuracy must grow (or hold) with latency overall.
    let at_25 = report.sweep.accuracy_at(25).unwrap();
    assert!(
        at_200 >= at_25 - 0.02,
        "latency curve regressed: {report:?}"
    );
}

#[test]
fn max_norm_needs_more_latency_than_tcl() {
    // The paper's motivation (Section 3.2): max-activation norm-factors
    // starve the network of spikes, so at small T the TCL conversion is
    // far more accurate.
    let (mut tcl_net, data) = train_cnn6(Some(2.0), 11);
    let (mut base_net, _) = train_cnn6(None, 11);
    let sim = SimConfig::new(vec![5, 10], 50, Readout::SpikeCount).unwrap();
    let calibration = data.train.take(100);
    let tcl = convert_and_evaluate(
        &mut tcl_net,
        calibration.images(),
        data.test.images(),
        data.test.labels(),
        &Converter::new(NormStrategy::TrainedClip),
        &sim,
    )
    .unwrap();
    let max_norm = convert_and_evaluate(
        &mut base_net,
        calibration.images(),
        data.test.images(),
        data.test.labels(),
        &Converter::new(NormStrategy::MaxActivation),
        &sim,
    )
    .unwrap();
    // Aggregate over the low-latency checkpoints: max-norm rates are scaled
    // down by the (much larger) maximum activations, so spikes barely reach
    // the classifier this early while TCL is already accurate.
    let tcl_low: f32 = tcl.sweep.accuracies.iter().map(|(_, a)| a).sum();
    let max_low: f32 = max_norm.sweep.accuracies.iter().map(|(_, a)| a).sum();
    assert!(
        tcl_low > max_low + 0.1,
        "at T≤10, TCL ({tcl_low}) should clearly beat max-norm ({max_low})"
    );
}

#[test]
fn trained_lambdas_are_tighter_than_percentile_factors() {
    // Section 4: "the λ trained in our TCL tends to be lower compared to
    // that of 99.9% used in Rueckauer et al." — compare per-site factors on
    // the *baseline* network (percentile) vs the trained clips.
    let (base_net, data) = train_cnn6(None, 13);
    let (tcl_net, _) = train_cnn6(Some(2.0), 13);
    let calibration = data.train.take(100);
    let pct = Converter::new(NormStrategy::percentile_999())
        .convert(&base_net, calibration.images())
        .unwrap();
    let lambdas_tcl = tcl_net.clip_lambdas();
    // Compare the mean hidden-site norm-factor.
    let hidden = pct.lambdas.len() - 1;
    let mean_pct: f32 = pct.lambdas[..hidden].iter().sum::<f32>() / hidden as f32;
    let mean_tcl: f32 = lambdas_tcl.iter().sum::<f32>() / lambdas_tcl.len() as f32;
    assert!(
        mean_tcl < mean_pct * 1.5,
        "trained λ ({mean_tcl}) should be in the same range or tighter than \
         percentile factors ({mean_pct})"
    );
}

#[test]
fn membrane_readout_converges_faster_than_spike_count() {
    let (mut net, data) = train_cnn6(Some(2.0), 17);
    let calibration = data.train.take(100);
    let t_small = 15;
    let spike_cfg = SimConfig::new(vec![t_small], 50, Readout::SpikeCount).unwrap();
    let membrane_cfg = SimConfig::new(vec![t_small], 50, Readout::Membrane).unwrap();
    let spike = convert_and_evaluate(
        &mut net,
        calibration.images(),
        data.test.images(),
        data.test.labels(),
        &Converter::new(NormStrategy::TrainedClip),
        &spike_cfg,
    )
    .unwrap();
    let membrane = convert_and_evaluate(
        &mut net,
        calibration.images(),
        data.test.images(),
        data.test.labels(),
        &Converter::new(NormStrategy::TrainedClip),
        &membrane_cfg,
    )
    .unwrap();
    let s = spike.sweep.accuracy_at(t_small).unwrap();
    let m = membrane.sweep.accuracy_at(t_small).unwrap();
    assert!(
        m >= s - 0.02,
        "membrane readout ({m}) should not trail spike counting ({s}) at tiny T"
    );
}

#[test]
fn firing_rates_are_plausible() {
    let (mut net, data) = train_cnn6(Some(2.0), 19);
    let sim = SimConfig::new(vec![50], 50, Readout::SpikeCount).unwrap();
    let report = convert_and_evaluate(
        &mut net,
        data.train.take(100).images(),
        data.test.images(),
        data.test.labels(),
        &Converter::new(NormStrategy::TrainedClip),
        &sim,
    )
    .unwrap();
    let rate = report.sweep.mean_firing_rate;
    assert!(rate > 0.0 && rate < 1.0, "firing rate {rate} out of range");
    assert!(report.sweep.total_spikes > 0);
}
