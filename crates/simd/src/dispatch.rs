//! Level selection: scoped override → process pin → `TCL_SIMD` → detection.

use std::cell::Cell;
use std::sync::OnceLock;

/// An instruction-set level the kernels can run at.
///
/// Ordering of the variants is widest-last; [`detect_widest`] returns the
/// widest level the host supports. See the crate docs for the numerics
/// contract of each level.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord)]
pub enum Level {
    /// Plain scalar loops — the reference numerics golden suites pin.
    Scalar,
    /// Portable 8-lane `[f32; 8]` vectors, unfused, bitwise == `Scalar`.
    Wide,
    /// AVX2 + FMA intrinsics (x86-64 with runtime support only).
    Avx2,
}

impl Level {
    /// Stable lowercase name, as accepted by `TCL_SIMD`.
    pub fn name(self) -> &'static str {
        match self {
            Level::Scalar => "scalar",
            Level::Wide => "wide",
            Level::Avx2 => "avx2",
        }
    }

    /// Parses a `TCL_SIMD`-style name (`"native"` is handled by the
    /// resolver, not here).
    pub fn parse(name: &str) -> Option<Level> {
        match name {
            "scalar" => Some(Level::Scalar),
            "wide" | "portable" => Some(Level::Wide),
            "avx2" => Some(Level::Avx2),
            _ => None,
        }
    }

    /// Whether this host can execute the level.
    pub fn is_available(self) -> bool {
        match self {
            Level::Scalar | Level::Wide => true,
            Level::Avx2 => avx2_supported(),
        }
    }

    /// Every level the host supports, narrowest first. Per-ISA equivalence
    /// tests and benches iterate this.
    pub fn available() -> Vec<Level> {
        [Level::Scalar, Level::Wide, Level::Avx2]
            .into_iter()
            .filter(|l| l.is_available())
            .collect()
    }
}

fn avx2_supported() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        std::arch::is_x86_feature_detected!("avx2") && std::arch::is_x86_feature_detected!("fma")
    }
    #[cfg(not(target_arch = "x86_64"))]
    {
        false
    }
}

/// The widest level the host supports ([`Level::Avx2`] on an AVX2+FMA
/// x86-64, otherwise [`Level::Wide`]).
pub fn detect_widest() -> Level {
    if avx2_supported() {
        Level::Avx2
    } else {
        Level::Wide
    }
}

/// `TCL_SIMD` parsed once; `None` means unset/`native` (detect).
///
/// # Panics
///
/// Asserts the value names a known level and that the host supports it —
/// silently falling back would un-pin a run that asked to be pinned.
fn env_level() -> Option<Level> {
    let raw = std::env::var("TCL_SIMD").ok()?;
    let value = raw.trim().to_ascii_lowercase();
    if value.is_empty() || value == "native" {
        return None;
    }
    let level = Level::parse(&value);
    assert!(
        level.is_some(),
        "unrecognized TCL_SIMD value {raw:?}; expected scalar|wide|avx2|native"
    );
    let level = level?;
    assert!(
        level.is_available(),
        "TCL_SIMD={raw} requested but this host does not support it"
    );
    Some(level)
}

/// Process-wide level, latched at first resolution (see [`current`]).
static PROCESS: OnceLock<Level> = OnceLock::new();

thread_local! {
    /// Thread-scoped override installed by [`with_level`].
    static OVERRIDE: Cell<Option<Level>> = const { Cell::new(None) };
}

/// The level kernels dispatch to on this thread, resolved as: scoped
/// [`with_level`] override → process [`pin`] → `TCL_SIMD` → detection.
/// The process-wide component is resolved once and latched.
pub fn current() -> Level {
    if let Some(level) = OVERRIDE.with(Cell::get) {
        return level;
    }
    *PROCESS.get_or_init(|| env_level().unwrap_or_else(detect_widest))
}

/// Pins the process-wide level, winning over `TCL_SIMD` and detection if —
/// and only if — nothing has resolved the process level yet. Returns the
/// effective process level so callers can assert the pin took effect.
/// Intended for golden test binaries that must replay one fixed numerics
/// regardless of host or environment.
///
/// # Panics
///
/// Asserts the host supports `level`.
pub fn pin(level: Level) -> Level {
    assert!(
        level.is_available(),
        "cannot pin unavailable SIMD level {}",
        level.name()
    );
    *PROCESS.get_or_init(|| level)
}

/// Runs `f` with kernels on this thread dispatched at `level`, restoring
/// the previous override afterwards (panic-safe). Fork-join helpers in
/// `tcl-tensor::par` and the `tcl-snn` engine propagate the caller's level
/// to their workers, so kernels parallelized under an override still run at
/// the overridden level.
///
/// # Panics
///
/// Asserts the host supports `level`.
pub fn with_level<T>(level: Level, f: impl FnOnce() -> T) -> T {
    assert!(
        level.is_available(),
        "cannot select unavailable SIMD level {}",
        level.name()
    );
    struct Restore(Option<Level>);
    impl Drop for Restore {
        fn drop(&mut self) {
            OVERRIDE.with(|c| c.set(self.0));
        }
    }
    let _restore = Restore(OVERRIDE.with(|c| c.replace(Some(level))));
    f()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn names_round_trip() {
        for level in [Level::Scalar, Level::Wide, Level::Avx2] {
            assert_eq!(Level::parse(level.name()), Some(level));
        }
        assert_eq!(Level::parse("portable"), Some(Level::Wide));
        assert_eq!(Level::parse("native"), None);
        assert_eq!(Level::parse("sse9"), None);
    }

    #[test]
    fn scalar_and_wide_are_always_available() {
        assert!(Level::Scalar.is_available());
        assert!(Level::Wide.is_available());
        let avail = Level::available();
        assert!(avail.starts_with(&[Level::Scalar, Level::Wide]));
        assert!(avail.len() >= 2);
    }

    #[test]
    fn with_level_overrides_and_restores() {
        let outer = current();
        with_level(Level::Scalar, || {
            assert_eq!(current(), Level::Scalar);
            with_level(Level::Wide, || assert_eq!(current(), Level::Wide));
            assert_eq!(current(), Level::Scalar);
        });
        assert_eq!(current(), outer);
    }

    #[test]
    fn with_level_restores_on_unwind() {
        let res = std::panic::catch_unwind(|| with_level(Level::Scalar, || panic!("boom")));
        assert!(res.is_err());
        assert_ne!(OVERRIDE.with(Cell::get), Some(Level::Scalar));
    }

    #[test]
    fn detection_yields_an_available_level() {
        assert!(detect_widest().is_available());
        assert!(detect_widest() >= Level::Wide);
        assert!(current().is_available());
    }
}
