//! AVX2 + FMA implementation of [`SimdF32`] (x86-64 only).
//!
//! The only file in the workspace that touches `core::arch` intrinsics.
//! Methods are `#[inline(always)]` so they flatten into the
//! `#[target_feature(enable = "avx2,fma")]` kernel wrappers in
//! [`crate::kernels`]; dispatch guarantees those wrappers only run after
//! runtime detection confirmed AVX2+FMA support.

use core::arch::x86_64::{
    __m256, _mm256_add_ps, _mm256_blendv_ps, _mm256_cmp_ps, _mm256_fmadd_ps, _mm256_loadu_ps,
    _mm256_set1_ps, _mm256_storeu_ps, _mm256_sub_ps, _CMP_GE_OQ,
};

use crate::vec::SimdF32;

/// Eight `f32` lanes in one AVX YMM register.
#[derive(Clone, Copy)]
#[repr(transparent)]
pub(crate) struct A8(__m256);

impl SimdF32 for A8 {
    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        // SAFETY: caller contract — AVX2 confirmed by runtime detection.
        A8(unsafe { _mm256_set1_ps(v) })
    }

    #[inline(always)]
    unsafe fn load(src: *const f32) -> Self {
        // SAFETY: caller contract — AVX2 available and `src` addresses 8
        // readable f32s; loadu has no alignment requirement.
        A8(unsafe { _mm256_loadu_ps(src) })
    }

    #[inline(always)]
    unsafe fn store(self, dst: *mut f32) {
        // SAFETY: caller contract — AVX2 available and `dst` addresses 8
        // writable f32s; storeu has no alignment requirement.
        unsafe { _mm256_storeu_ps(dst, self.0) }
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        // SAFETY: caller contract — AVX2 confirmed by runtime detection.
        A8(unsafe { _mm256_add_ps(self.0, o.0) })
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        // SAFETY: caller contract — AVX2 confirmed by runtime detection.
        A8(unsafe { _mm256_sub_ps(self.0, o.0) })
    }

    #[inline(always)]
    unsafe fn mul_add(self, m: Self, a: Self) -> Self {
        // Fused: one rounding per step — the level's numeric signature.
        // SAFETY: caller contract — FMA confirmed by runtime detection.
        A8(unsafe { _mm256_fmadd_ps(self.0, m.0, a.0) })
    }

    #[inline(always)]
    unsafe fn ge(self, o: Self) -> Self {
        // Ordered-quiet >=: NaN lanes compare false, like scalar `>=`.
        // SAFETY: caller contract — AVX2 confirmed by runtime detection.
        A8(unsafe { _mm256_cmp_ps::<_CMP_GE_OQ>(self.0, o.0) })
    }

    #[inline(always)]
    unsafe fn select(mask: Self, t: Self, f: Self) -> Self {
        // blendv picks by each lane's sign bit; cmp masks are all-ones or
        // all-zeros so this is the exact bit-select the trait specifies.
        // SAFETY: caller contract — AVX2 confirmed by runtime detection.
        A8(unsafe { _mm256_blendv_ps(f.0, t.0, mask.0) })
    }
}
