//! # tcl-simd
//!
//! Runtime-dispatched SIMD kernels for the TCL ANN-to-SNN stack, modeled on
//! rten's `rten-simd` design: a small vector-operation trait
//! ([`vec::SimdF32`]), one implementation per instruction-set level, and
//! generic kernels monomorphized per level behind a safe dispatch surface.
//!
//! This crate is the workspace's **only unsafe island**. Every other crate
//! keeps `#![forbid(unsafe_code)]` and reaches vectors exclusively through
//! the safe entry points in [`kernels`] (`gebp_4x16`, `axpy`, `if_step`,
//! `gather_rows`), passing the [`Level`] returned by [`current`]. The
//! `tcl-lint` rule **S1** enforces that raw intrinsics (`core::arch`,
//! `_mm*`) and `unsafe` never appear outside `crates/simd`.
//!
//! ## Dispatch levels
//!
//! * [`Level::Scalar`] — plain `f32` loops, bit-for-bit the pre-SIMD
//!   kernels. Golden suites pin this level.
//! * [`Level::Wide`] — a portable 8-lane `[f32; 8]` struct. No intrinsics:
//!   the compiler autovectorizes it (NEON on aarch64, SSE/AVX on x86).
//!   Multiplies and adds stay **unfused**, so this level is bitwise
//!   identical to `Scalar` — it is a faster spelling of the same floats.
//! * [`Level::Avx2`] — AVX2 + FMA intrinsics (x86-64 only). Fused
//!   multiply-adds skip one rounding per accumulation step, so dot-product
//!   kernels differ from `Scalar` within an accumulated-rounding bound
//!   (≈ half an ulp per fused step); elementwise kernels (`if_step`,
//!   `gather_rows`) perform no reassociation or fusion and remain bitwise
//!   identical across *all* levels.
//!
//! ## Resolution order and determinism
//!
//! [`current`] resolves, in order: a thread-scoped [`with_level`] override →
//! the process-wide [`pin`] (first resolution wins) → the `TCL_SIMD`
//! environment variable (`scalar` / `wide` / `avx2` / `native`) → runtime
//! detection of the widest supported level. The result is latched for the
//! process, so a run never migrates between levels mid-flight.
//!
//! Within any fixed level the kernels keep the workspace determinism
//! contract: identical per-element operation order regardless of threading,
//! so serial == parallel bitwise at every level. `tcl-tensor`'s fork-join
//! helpers and the `tcl-snn` engine capture the caller's level and re-apply
//! it on their workers, which makes the contract hold even under scoped
//! overrides.

#![warn(missing_docs)]
#![deny(unsafe_op_in_unsafe_fn)]

mod dispatch;
pub mod kernels;
pub(crate) mod vec;

#[cfg(target_arch = "x86_64")]
pub(crate) mod avx2;

pub use dispatch::{current, detect_widest, pin, with_level, Level};
pub use kernels::{axpy, gather_rows, gebp_4x16, if_step};
