//! The SIMD operation trait and the portable 8-lane implementation.
//!
//! [`SimdF32`] is the dispatch trait the generic kernels in
//! [`crate::kernels`] are written against: 8 lanes of `f32` with the
//! handful of operations the TCL hot paths need. Implementations exist for
//! the portable [`W8`] struct (safe Rust the compiler autovectorizes —
//! NEON on aarch64, SSE/AVX on x86) and, on x86-64, for AVX2+FMA
//! (`crate::avx2::A8`).
//!
//! All methods are `unsafe fn`s with a uniform contract: the caller must
//! ensure (a) the host supports the implementation's instruction set and
//! (b) every pointer passed to `load`/`store` addresses at least
//! [`LANES`] readable/writable `f32`s. The public kernels validate slice
//! geometry up front and only then enter the vector loops.

/// Lanes per vector. Fixed at 8 so a 4×16 GEBP tile is exactly 4×2
/// vectors; both implementations use this width.
pub const LANES: usize = 8;

/// Eight lanes of `f32`: the operation set the generic kernels need.
///
/// `mul_add(m, a)` computes `self * m + a`. Whether the multiply-add is
/// *fused* is implementation-defined: [`W8`] rounds twice (bitwise equal
/// to scalar code), AVX2 fuses (one rounding). Kernels that must stay
/// bitwise identical across levels (`if_step`, `gather_rows`) therefore
/// avoid `mul_add`.
pub trait SimdF32: Copy {
    /// Broadcasts one value to all lanes.
    ///
    /// # Safety
    ///
    /// Caller must ensure the host supports this implementation's ISA.
    unsafe fn splat(v: f32) -> Self;

    /// Loads [`LANES`] consecutive values (unaligned).
    ///
    /// # Safety
    ///
    /// ISA support, and `src` must address at least [`LANES`] readable
    /// `f32`s.
    unsafe fn load(src: *const f32) -> Self;

    /// Stores [`LANES`] consecutive values (unaligned).
    ///
    /// # Safety
    ///
    /// ISA support, and `dst` must address at least [`LANES`] writable
    /// `f32`s.
    unsafe fn store(self, dst: *mut f32);

    /// Lanewise `self + o`.
    ///
    /// # Safety
    ///
    /// Caller must ensure the host supports this implementation's ISA.
    unsafe fn add(self, o: Self) -> Self;

    /// Lanewise `self - o`.
    ///
    /// # Safety
    ///
    /// Caller must ensure the host supports this implementation's ISA.
    unsafe fn sub(self, o: Self) -> Self;

    /// Lanewise `self * m + a` (fusion implementation-defined, see trait
    /// docs).
    ///
    /// # Safety
    ///
    /// Caller must ensure the host supports this implementation's ISA.
    unsafe fn mul_add(self, m: Self, a: Self) -> Self;

    /// Lanewise ordered `self >= o`, as an all-ones/all-zeros bitmask per
    /// lane (NaN compares false, matching scalar `>=`).
    ///
    /// # Safety
    ///
    /// Caller must ensure the host supports this implementation's ISA.
    unsafe fn ge(self, o: Self) -> Self;

    /// Lanewise bit-select: `t` where `mask` lanes are all-ones, `f`
    /// elsewhere. Exact bit copy — never rounds.
    ///
    /// # Safety
    ///
    /// Caller must ensure the host supports this implementation's ISA.
    unsafe fn select(mask: Self, t: Self, f: Self) -> Self;
}

/// Portable 8-wide vector: safe elementwise Rust over `[f32; 8]`.
///
/// Every operation maps to a fixed-bound lane loop the compiler
/// autovectorizes for whatever the build target offers. Multiplies and
/// adds are separate rounded operations, so results are bitwise identical
/// to the scalar kernels.
#[derive(Debug, Clone, Copy)]
#[repr(transparent)]
pub struct W8([f32; LANES]);

impl SimdF32 for W8 {
    #[inline(always)]
    unsafe fn splat(v: f32) -> Self {
        W8([v; LANES])
    }

    #[inline(always)]
    unsafe fn load(src: *const f32) -> Self {
        // SAFETY: caller guarantees LANES readable f32s at `src`.
        W8(unsafe { std::ptr::read_unaligned(src.cast::<[f32; LANES]>()) })
    }

    #[inline(always)]
    unsafe fn store(self, dst: *mut f32) {
        // SAFETY: caller guarantees LANES writable f32s at `dst`.
        unsafe { std::ptr::write_unaligned(dst.cast::<[f32; LANES]>(), self.0) }
    }

    #[inline(always)]
    unsafe fn add(self, o: Self) -> Self {
        W8(std::array::from_fn(|i| self.0[i] + o.0[i]))
    }

    #[inline(always)]
    unsafe fn sub(self, o: Self) -> Self {
        W8(std::array::from_fn(|i| self.0[i] - o.0[i]))
    }

    #[inline(always)]
    unsafe fn mul_add(self, m: Self, a: Self) -> Self {
        // Deliberately unfused (`*` then `+`): rustc performs no floating
        // contraction, so this is bitwise the scalar accumulation.
        W8(std::array::from_fn(|i| self.0[i] * m.0[i] + a.0[i]))
    }

    #[inline(always)]
    unsafe fn ge(self, o: Self) -> Self {
        W8(std::array::from_fn(|i| {
            f32::from_bits(if self.0[i] >= o.0[i] { u32::MAX } else { 0 })
        }))
    }

    #[inline(always)]
    unsafe fn select(mask: Self, t: Self, f: Self) -> Self {
        W8(std::array::from_fn(|i| {
            let m = mask.0[i].to_bits();
            f32::from_bits((t.0[i].to_bits() & m) | (f.0[i].to_bits() & !m))
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn wide_lane_ops_match_scalar() {
        let a: [f32; LANES] = std::array::from_fn(|i| i as f32 - 3.5);
        let b: [f32; LANES] = std::array::from_fn(|i| 0.25 * i as f32 + 0.1);
        // SAFETY: W8 is plain safe Rust; pointers cover LANES elements.
        unsafe {
            let va = W8::load(a.as_ptr());
            let vb = W8::load(b.as_ptr());
            let mut out = [0.0f32; LANES];
            va.add(vb).store(out.as_mut_ptr());
            for i in 0..LANES {
                assert_eq!(out[i].to_bits(), (a[i] + b[i]).to_bits());
            }
            va.mul_add(vb, W8::splat(1.0)).store(out.as_mut_ptr());
            for i in 0..LANES {
                assert_eq!(out[i].to_bits(), (a[i] * b[i] + 1.0).to_bits());
            }
        }
    }

    #[test]
    fn ge_select_is_exact_and_nan_safe() {
        let v = [1.0, f32::NAN, -0.0, 2.5, -1.0, 0.0, 3.0, 1.5];
        let thr = [1.0f32; LANES];
        // SAFETY: portable impl, lengths are LANES.
        unsafe {
            let mask = W8::load(v.as_ptr()).ge(W8::load(thr.as_ptr()));
            let mut picked = [0.0f32; LANES];
            W8::select(mask, W8::splat(1.0), W8::splat(0.0)).store(picked.as_mut_ptr());
            let expect = [1.0, 0.0, 0.0, 1.0, 0.0, 0.0, 1.0, 1.0];
            assert_eq!(picked, expect, "NaN must compare false like scalar >=");
        }
    }
}
