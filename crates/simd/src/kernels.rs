//! The four TCL hot-path kernels, one implementation per dispatch level.
//!
//! Each public entry point validates slice geometry with real assertions,
//! then dispatches on [`Level`]: the scalar path is plain safe Rust
//! (bit-for-bit the pre-SIMD kernels), the `Wide`/`Avx2` paths run one
//! generic vector implementation monomorphized per [`SimdF32`] impl. The
//! AVX2 instantiations sit behind `#[target_feature(enable = "avx2,fma")]`
//! wrappers so the whole inlined loop is compiled with those features,
//! and are only reachable after runtime detection (the [`Level`]
//! availability assert).
//!
//! Numerics per kernel:
//!
//! * [`gebp_4x16`] / [`axpy`] accumulate in ascending-`k` order at every
//!   level; `Wide` is bitwise equal to `Scalar` (unfused), `Avx2` fuses
//!   multiply-adds and differs by at most the accumulated-rounding drift.
//! * [`if_step`] and [`gather_rows`] are elementwise (no reassociation,
//!   no fusion) and produce bitwise identical results at **every** level.

use crate::dispatch::Level;
use crate::vec::{SimdF32, LANES, W8};

/// Rows per GEBP register tile (matches `tcl-tensor`'s packing).
pub const MR: usize = 4;
/// Columns per GEBP register tile: two 8-lane vectors.
pub const NR: usize = 16;

// ---------------------------------------------------------------------------
// GEBP 4×16 micro-kernel
// ---------------------------------------------------------------------------

/// Accumulates one full `MR`×`NR` output tile from packed operands.
///
/// `a_band` is one `p`-major `MR`-row band (`a_band[p·MR + r]`), `b_pack`
/// one contiguous `k`×`NR` column tile; the tile `out[i0.., j0..]` of the
/// row-major `[.., n]` output is accumulated in ascending-`p` order.
///
/// # Panics
///
/// Asserts `level` is available on this host and that the slices cover the
/// stated geometry (`a_band ≥ k·MR`, `b_pack ≥ k·NR`, the tile inside
/// `out`).
#[allow(clippy::too_many_arguments)] // micro-kernel: all args are tile geometry
#[inline]
pub fn gebp_4x16(
    level: Level,
    a_band: &[f32],
    b_pack: &[f32],
    k: usize,
    out: &mut [f32],
    i0: usize,
    j0: usize,
    n: usize,
) {
    assert!(
        level.is_available(),
        "SIMD level {} unavailable",
        level.name()
    );
    assert!(a_band.len() >= k * MR, "a_band too short for k={k}");
    assert!(b_pack.len() >= k * NR, "b_pack too short for k={k}");
    assert!(j0 + NR <= n, "tile columns {j0}..{} exceed n={n}", j0 + NR);
    assert!(
        (i0 + MR - 1) * n + j0 + NR <= out.len(),
        "tile rows {i0}..{} exceed out",
        i0 + MR
    );
    match level {
        Level::Scalar => gebp_4x16_scalar(a_band, b_pack, k, out, i0, j0, n),
        // SAFETY: geometry validated above; W8 is portable safe Rust, so
        // the ISA half of the contract is vacuous.
        Level::Wide => unsafe { gebp_4x16_v::<W8>(a_band, b_pack, k, out, i0, j0, n) },
        Level::Avx2 => gebp_4x16_avx2_entry(a_band, b_pack, k, out, i0, j0, n),
    }
}

/// Scalar GEBP tile — bit-for-bit the blocked kernel this crate replaced
/// in `tcl-tensor`: `NR`-wide accumulator rows updated in ascending `p`
/// with separate multiply and add.
fn gebp_4x16_scalar(
    a_band: &[f32],
    b_pack: &[f32],
    k: usize,
    out: &mut [f32],
    i0: usize,
    j0: usize,
    n: usize,
) {
    let mut acc0 = [0.0f32; NR];
    let mut acc1 = [0.0f32; NR];
    let mut acc2 = [0.0f32; NR];
    let mut acc3 = [0.0f32; NR];
    for (ap, bp) in a_band[..k * MR]
        .chunks_exact(MR)
        .zip(b_pack[..k * NR].chunks_exact(NR))
    {
        let b_row: &[f32; NR] = bp.try_into().unwrap_or(&[0.0; NR]);
        let (a0, a1, a2, a3) = (ap[0], ap[1], ap[2], ap[3]);
        for c in 0..NR {
            acc0[c] += a0 * b_row[c];
            acc1[c] += a1 * b_row[c];
            acc2[c] += a2 * b_row[c];
            acc3[c] += a3 * b_row[c];
        }
    }
    for (r, acc) in [acc0, acc1, acc2, acc3].iter().enumerate() {
        let o_row = &mut out[(i0 + r) * n + j0..(i0 + r) * n + j0 + NR];
        for (o, &acc_v) in o_row.iter_mut().zip(acc) {
            *o += acc_v;
        }
    }
}

/// Generic vector GEBP tile: 8 accumulator vectors (4 rows × 2), one
/// broadcast + two multiply-adds per row per `p` step, same ascending-`p`
/// per-element order as the scalar tile.
///
/// # Safety
///
/// Caller must guarantee the ISA behind `V` is supported and that the
/// slices cover the geometry (validated by [`gebp_4x16`]).
#[inline(always)]
unsafe fn gebp_4x16_v<V: SimdF32>(
    a_band: &[f32],
    b_pack: &[f32],
    k: usize,
    out: &mut [f32],
    i0: usize,
    j0: usize,
    n: usize,
) {
    // SAFETY: pointer arithmetic stays inside the ranges asserted by the
    // public entry point; V's ISA is supported per the caller contract.
    unsafe {
        let mut acc = [[V::splat(0.0); 2]; MR];
        let mut ap = a_band.as_ptr();
        let mut bp = b_pack.as_ptr();
        for _ in 0..k {
            let b0 = V::load(bp);
            let b1 = V::load(bp.add(LANES));
            for (r, row_acc) in acc.iter_mut().enumerate() {
                let a = V::splat(*ap.add(r));
                row_acc[0] = a.mul_add(b0, row_acc[0]);
                row_acc[1] = a.mul_add(b1, row_acc[1]);
            }
            ap = ap.add(MR);
            bp = bp.add(NR);
        }
        let out_ptr = out.as_mut_ptr();
        for (r, row_acc) in acc.iter().enumerate() {
            let o = out_ptr.add((i0 + r) * n + j0);
            V::load(o).add(row_acc[0]).store(o);
            V::load(o.add(LANES)).add(row_acc[1]).store(o.add(LANES));
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gebp_4x16_avx2(
    a_band: &[f32],
    b_pack: &[f32],
    k: usize,
    out: &mut [f32],
    i0: usize,
    j0: usize,
    n: usize,
) {
    // SAFETY: forwarded caller contract; AVX2+FMA enabled on this fn.
    unsafe { gebp_4x16_v::<crate::avx2::A8>(a_band, b_pack, k, out, i0, j0, n) }
}

fn gebp_4x16_avx2_entry(
    a_band: &[f32],
    b_pack: &[f32],
    k: usize,
    out: &mut [f32],
    i0: usize,
    j0: usize,
    n: usize,
) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: Level::Avx2 passed the availability assert (runtime
    // detection of avx2+fma) and geometry was validated by the caller.
    unsafe {
        gebp_4x16_avx2(a_band, b_pack, k, out, i0, j0, n);
    }
    #[cfg(not(target_arch = "x86_64"))]
    // Unreachable in practice (Avx2 is never available off x86-64); the
    // portable path keeps this arm total without a panic.
    // SAFETY: W8 is portable; geometry validated by the caller.
    unsafe {
        gebp_4x16_v::<W8>(a_band, b_pack, k, out, i0, j0, n);
    }
}

// ---------------------------------------------------------------------------
// axpy — the sparse zero-skip matmul's inner row update
// ---------------------------------------------------------------------------

/// `y[i] += alpha · x[i]` over matching slices, ascending `i`.
///
/// # Panics
///
/// Asserts `level` is available and `x.len() == y.len()`.
#[inline]
pub fn axpy(level: Level, alpha: f32, x: &[f32], y: &mut [f32]) {
    assert!(
        level.is_available(),
        "SIMD level {} unavailable",
        level.name()
    );
    assert_eq!(x.len(), y.len(), "axpy length mismatch");
    match level {
        Level::Scalar => axpy_scalar(alpha, x, y),
        // SAFETY: lengths validated above; W8 is portable safe Rust.
        Level::Wide => unsafe { axpy_v::<W8>(alpha, x, y) },
        Level::Avx2 => axpy_avx2_entry(alpha, x, y),
    }
}

fn axpy_scalar(alpha: f32, x: &[f32], y: &mut [f32]) {
    for (o, &v) in y.iter_mut().zip(x) {
        *o += alpha * v;
    }
}

/// # Safety
///
/// Caller must guarantee the ISA behind `V` is supported and
/// `x.len() == y.len()`.
#[inline(always)]
unsafe fn axpy_v<V: SimdF32>(alpha: f32, x: &[f32], y: &mut [f32]) {
    let n = x.len();
    let main = n - n % LANES;
    // SAFETY: indices stay below `main ≤ n == x.len() == y.len()`.
    unsafe {
        let a = V::splat(alpha);
        let xp = x.as_ptr();
        let yp = y.as_mut_ptr();
        let mut i = 0;
        while i < main {
            V::load(xp.add(i))
                .mul_add(a, V::load(yp.add(i)))
                .store(yp.add(i));
            i += LANES;
        }
    }
    axpy_scalar(alpha, &x[main..], &mut y[main..]);
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn axpy_avx2(alpha: f32, x: &[f32], y: &mut [f32]) {
    // SAFETY: forwarded caller contract; AVX2+FMA enabled on this fn.
    unsafe { axpy_v::<crate::avx2::A8>(alpha, x, y) }
}

fn axpy_avx2_entry(alpha: f32, x: &[f32], y: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: availability asserted by the caller; lengths validated.
    unsafe {
        axpy_avx2(alpha, x, y);
    }
    #[cfg(not(target_arch = "x86_64"))]
    // SAFETY: W8 is portable; lengths validated by the caller.
    unsafe {
        axpy_v::<W8>(alpha, x, y);
    }
}

// ---------------------------------------------------------------------------
// Integrate-and-fire step
// ---------------------------------------------------------------------------

/// One IF-neuron timestep over a bank: `V += z`; lanes with `V ≥ thr` emit
/// a unit spike and reset (subtract the threshold, or clamp to zero).
///
/// Elementwise adds/subtracts/compares only — no fusion, no reassociation
/// — so the result is **bitwise identical at every level**, which is what
/// lets the golden SNN trajectories survive dispatch. NaN potentials never
/// spike (ordered compare), matching scalar `>=`.
///
/// # Panics
///
/// Asserts `level` is available and all three slices have equal length.
#[inline]
pub fn if_step(
    level: Level,
    potential: &mut [f32],
    input: &[f32],
    spikes: &mut [f32],
    threshold: f32,
    subtract: bool,
) {
    assert!(
        level.is_available(),
        "SIMD level {} unavailable",
        level.name()
    );
    assert_eq!(potential.len(), input.len(), "if_step length mismatch");
    assert_eq!(potential.len(), spikes.len(), "if_step length mismatch");
    match level {
        Level::Scalar => if_step_scalar(potential, input, spikes, threshold, subtract),
        // SAFETY: lengths validated above; W8 is portable safe Rust.
        Level::Wide => unsafe { if_step_v::<W8>(potential, input, spikes, threshold, subtract) },
        Level::Avx2 => if_step_avx2_entry(potential, input, spikes, threshold, subtract),
    }
}

fn if_step_scalar(
    potential: &mut [f32],
    input: &[f32],
    spikes: &mut [f32],
    thr: f32,
    subtract: bool,
) {
    for ((v, s), &z) in potential.iter_mut().zip(spikes.iter_mut()).zip(input) {
        *v += z;
        if *v >= thr {
            *s = 1.0;
            *v = if subtract { *v - thr } else { 0.0 };
        } else {
            *s = 0.0;
        }
    }
}

/// # Safety
///
/// Caller must guarantee the ISA behind `V` is supported and the slices
/// have equal length.
#[inline(always)]
unsafe fn if_step_v<V: SimdF32>(
    potential: &mut [f32],
    input: &[f32],
    spikes: &mut [f32],
    thr: f32,
    subtract: bool,
) {
    let n = potential.len();
    let main = n - n % LANES;
    // SAFETY: indices stay below `main ≤ n`, the common slice length.
    unsafe {
        let thrv = V::splat(thr);
        let one = V::splat(1.0);
        let zero = V::splat(0.0);
        let vp = potential.as_mut_ptr();
        let zp = input.as_ptr();
        let sp = spikes.as_mut_ptr();
        let mut i = 0;
        while i < main {
            let vv = V::load(vp.add(i)).add(V::load(zp.add(i)));
            let mask = vv.ge(thrv);
            V::select(mask, one, zero).store(sp.add(i));
            let reset = if subtract { vv.sub(thrv) } else { zero };
            V::select(mask, reset, vv).store(vp.add(i));
            i += LANES;
        }
    }
    if_step_scalar(
        &mut potential[main..],
        &input[main..],
        &mut spikes[main..],
        thr,
        subtract,
    );
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn if_step_avx2(
    potential: &mut [f32],
    input: &[f32],
    spikes: &mut [f32],
    thr: f32,
    subtract: bool,
) {
    // SAFETY: forwarded caller contract; AVX2 enabled on this fn.
    unsafe { if_step_v::<crate::avx2::A8>(potential, input, spikes, thr, subtract) }
}

fn if_step_avx2_entry(
    potential: &mut [f32],
    input: &[f32],
    spikes: &mut [f32],
    thr: f32,
    subtract: bool,
) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: availability asserted by the caller; lengths validated.
    unsafe {
        if_step_avx2(potential, input, spikes, thr, subtract);
    }
    #[cfg(not(target_arch = "x86_64"))]
    // SAFETY: W8 is portable; lengths validated by the caller.
    unsafe {
        if_step_v::<W8>(potential, input, spikes, thr, subtract);
    }
}

// ---------------------------------------------------------------------------
// Spike-lane gather (engine compaction / retain_rows)
// ---------------------------------------------------------------------------

/// Copies the rows listed in `lanes` (each `row_len` long, indices into
/// `src`'s leading dimension) into `dst`, in order. A straight bit copy —
/// identical output at every level; the vector path moves 8 lanes per
/// step, which beats per-row `memcpy` dispatch for the short rows the
/// engine compacts.
///
/// # Panics
///
/// Asserts `level` is available, `dst.len() == lanes.len() · row_len`, and
/// every lane index is in range.
#[inline]
pub fn gather_rows(level: Level, src: &[f32], row_len: usize, lanes: &[usize], dst: &mut [f32]) {
    assert!(
        level.is_available(),
        "SIMD level {} unavailable",
        level.name()
    );
    assert_eq!(dst.len(), lanes.len() * row_len, "gather_rows dst length");
    if row_len == 0 {
        return;
    }
    let rows = src.len() / row_len;
    for &lane in lanes {
        assert!(
            lane < rows,
            "gather_rows: lane {lane} out of range for {rows} rows"
        );
    }
    match level {
        Level::Scalar => {
            for (d, &lane) in dst.chunks_exact_mut(row_len).zip(lanes) {
                d.copy_from_slice(&src[lane * row_len..(lane + 1) * row_len]);
            }
        }
        // SAFETY: geometry validated above; W8 is portable safe Rust.
        Level::Wide => unsafe { gather_rows_v::<W8>(src, row_len, lanes, dst) },
        Level::Avx2 => gather_rows_avx2_entry(src, row_len, lanes, dst),
    }
}

/// # Safety
///
/// Caller must guarantee the ISA behind `V` is supported, every lane row
/// lies inside `src`, and `dst` holds `lanes.len() · row_len` elements.
#[inline(always)]
unsafe fn gather_rows_v<V: SimdF32>(src: &[f32], row_len: usize, lanes: &[usize], dst: &mut [f32]) {
    let main = row_len - row_len % LANES;
    // SAFETY: per the caller contract each source row `lane·row_len +
    // row_len` is inside `src` and the j-th destination row inside `dst`.
    unsafe {
        for (j, &lane) in lanes.iter().enumerate() {
            let sp = src.as_ptr().add(lane * row_len);
            let dp = dst.as_mut_ptr().add(j * row_len);
            let mut i = 0;
            while i < main {
                V::load(sp.add(i)).store(dp.add(i));
                i += LANES;
            }
            for t in main..row_len {
                *dp.add(t) = *sp.add(t);
            }
        }
    }
}

#[cfg(target_arch = "x86_64")]
#[target_feature(enable = "avx2,fma")]
unsafe fn gather_rows_avx2(src: &[f32], row_len: usize, lanes: &[usize], dst: &mut [f32]) {
    // SAFETY: forwarded caller contract; AVX2 enabled on this fn.
    unsafe { gather_rows_v::<crate::avx2::A8>(src, row_len, lanes, dst) }
}

fn gather_rows_avx2_entry(src: &[f32], row_len: usize, lanes: &[usize], dst: &mut [f32]) {
    #[cfg(target_arch = "x86_64")]
    // SAFETY: availability asserted by the caller; geometry validated.
    unsafe {
        gather_rows_avx2(src, row_len, lanes, dst);
    }
    #[cfg(not(target_arch = "x86_64"))]
    // SAFETY: W8 is portable; geometry validated by the caller.
    unsafe {
        gather_rows_v::<W8>(src, row_len, lanes, dst);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// Deterministic pseudo-random fill (xorshift*), no external deps.
    fn fill(len: usize, seed: u64, lo: f32, hi: f32) -> Vec<f32> {
        let mut s = seed.wrapping_mul(0x9E37_79B9_7F4A_7C15) | 1;
        (0..len)
            .map(|_| {
                s ^= s << 13;
                s ^= s >> 7;
                s ^= s << 17;
                let u = (s >> 40) as f32 / (1u32 << 24) as f32;
                lo + (hi - lo) * u
            })
            .collect()
    }

    #[test]
    fn gebp_levels_match_scalar() {
        for k in [1usize, 2, 7, 64, 200] {
            let (i0, j0, n) = (1usize, 3, 24);
            let a_band = fill(k * MR, 11 + k as u64, -1.0, 1.0);
            let b_pack = fill(k * NR, 29 + k as u64, -1.0, 1.0);
            let base = fill((i0 + MR) * n, 3, -1.0, 1.0);
            let mut reference = base.clone();
            gebp_4x16(
                Level::Scalar,
                &a_band,
                &b_pack,
                k,
                &mut reference,
                i0,
                j0,
                n,
            );
            for level in Level::available() {
                let mut out = base.clone();
                gebp_4x16(level, &a_band, &b_pack, k, &mut out, i0, j0, n);
                for (c, (&got, &want)) in out.iter().zip(&reference).enumerate() {
                    match level {
                        // Unfused paths replay the scalar bits exactly.
                        Level::Scalar | Level::Wide => assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "{} k={k} elem {c}: {got} vs {want}",
                            level.name()
                        ),
                        // FMA saves one rounding per step; with |a·b| ≤ 1
                        // the two accumulations drift apart by at most a
                        // few roundings of the running sum per step.
                        Level::Avx2 => assert!(
                            (got - want).abs() <= k as f32 * 1e-5,
                            "avx2 k={k} elem {c}: {got} vs {want}"
                        ),
                    }
                }
            }
        }
    }

    #[test]
    fn gebp_untouched_outside_tile() {
        let k = 5;
        let (i0, j0, n) = (0usize, 0, 20);
        let a_band = fill(k * MR, 1, -1.0, 1.0);
        let b_pack = fill(k * NR, 2, -1.0, 1.0);
        for level in Level::available() {
            let mut out = vec![7.0f32; MR * n];
            gebp_4x16(level, &a_band, &b_pack, k, &mut out, i0, j0, n);
            for r in 0..MR {
                for c in NR..n {
                    assert_eq!(out[r * n + c], 7.0, "{} leaked", level.name());
                }
            }
        }
    }

    #[test]
    fn axpy_levels_match_scalar() {
        for len in [0usize, 1, 7, 8, 9, 63, 250] {
            let x = fill(len, 5, -2.0, 2.0);
            let base = fill(len, 6, -2.0, 2.0);
            let mut reference = base.clone();
            axpy(Level::Scalar, 0.37, &x, &mut reference);
            for level in Level::available() {
                let mut y = base.clone();
                axpy(level, 0.37, &x, &mut y);
                for (i, (&got, &want)) in y.iter().zip(&reference).enumerate() {
                    if level == Level::Avx2 {
                        // One fused step per element: the only divergence
                        // is the skipped product rounding.
                        assert!(
                            (got - want).abs() <= 1e-6,
                            "avx2 len={len} elem {i}: {got} vs {want}"
                        );
                    } else {
                        assert_eq!(
                            got.to_bits(),
                            want.to_bits(),
                            "{} len={len} elem {i}: {got} vs {want}",
                            level.name()
                        );
                    }
                }
            }
        }
    }

    #[test]
    fn if_step_is_bitwise_across_levels() {
        for len in [1usize, 8, 13, 70] {
            for subtract in [true, false] {
                let mut z = fill(len, 7 + len as u64, -0.5, 1.5);
                if len > 2 {
                    z[2] = f32::NAN; // NaN potential must never spike
                }
                let base_v = fill(len, 8, 0.0, 0.9);
                let mut ref_v = base_v.clone();
                let mut ref_s = vec![0.0f32; len];
                if_step(Level::Scalar, &mut ref_v, &z, &mut ref_s, 1.0, subtract);
                for level in Level::available() {
                    let mut v = base_v.clone();
                    let mut s = vec![0.0f32; len];
                    if_step(level, &mut v, &z, &mut s, 1.0, subtract);
                    let bits = |xs: &[f32]| xs.iter().map(|x| x.to_bits()).collect::<Vec<_>>();
                    assert_eq!(bits(&v), bits(&ref_v), "{} potentials", level.name());
                    assert_eq!(bits(&s), bits(&ref_s), "{} spikes", level.name());
                }
            }
        }
    }

    #[test]
    fn gather_rows_is_bitwise_across_levels() {
        for row_len in [0usize, 1, 5, 8, 19, 40] {
            let rows = 6;
            let src = fill(rows * row_len, 9, -3.0, 3.0);
            let lanes = [4usize, 0, 0, 5, 2];
            let mut reference = vec![0.0f32; lanes.len() * row_len];
            gather_rows(Level::Scalar, &src, row_len, &lanes, &mut reference);
            for (j, &lane) in lanes.iter().enumerate() {
                assert_eq!(
                    reference[j * row_len..(j + 1) * row_len],
                    src[lane * row_len..(lane + 1) * row_len]
                );
            }
            for level in Level::available() {
                let mut dst = vec![0.0f32; lanes.len() * row_len];
                gather_rows(level, &src, row_len, &lanes, &mut dst);
                assert_eq!(dst, reference, "{} row_len={row_len}", level.name());
            }
        }
    }

    #[test]
    #[should_panic(expected = "length mismatch")]
    fn axpy_rejects_mismatched_lengths() {
        axpy(Level::Scalar, 1.0, &[1.0, 2.0], &mut [0.0]);
    }

    #[test]
    #[should_panic(expected = "out of range")]
    fn gather_rejects_out_of_range_lane() {
        let src = [0.0f32; 8];
        let mut dst = [0.0f32; 4];
        gather_rows(Level::Scalar, &src, 4, &[2], &mut dst);
    }
}
