//! Live HTTP metrics exporter: a zero-dependency TCP server publishing
//! the `tcl-telemetry` registry.
//!
//! Opt-in via `TCL_OBS_ADDR=host:port` (see [`serve_from_env`]); when the
//! variable is unset nothing binds and the process is byte-for-byte
//! identical to a build without the exporter. One accept thread serves
//! requests sequentially — scrape traffic is one Prometheus poll every few
//! seconds, not a web workload — and every scrape reads a point-in-time
//! [`tcl_telemetry::metrics_snapshot`], so rendering happens outside the
//! registry lock and never touches engine or trainer state.
//!
//! Endpoints:
//!
//! * `GET /metrics` — Prometheus text format (the contract the planned
//!   `tcl-serve` service inherits; see DESIGN.md).
//! * `GET /healthz` — `ok`, for liveness probes.
//! * `GET /summary` — the same snapshot as JSON.
//!
//! The server is deliberately minimal: HTTP/1.0-style one-request
//! connections (`Connection: close`), GET only, no TLS, no keep-alive.
//! Bind to loopback unless you know the network.

use std::io::{Read, Write};
use std::net::{SocketAddr, TcpListener, TcpStream};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::Arc;
use std::time::Duration;

use tcl_telemetry::{events_dropped, json, metrics_snapshot, MetricSnapshot};

/// Environment variable naming the exporter bind address.
pub const ADDR_ENV: &str = "TCL_OBS_ADDR";

/// A running exporter. Dropping it (or calling [`Exporter::shutdown`])
/// stops the accept thread and closes the listener.
pub struct Exporter {
    addr: SocketAddr,
    stop: Arc<AtomicBool>,
    handle: Option<std::thread::JoinHandle<()>>,
}

impl Exporter {
    /// The bound address (useful with port 0: the OS-assigned port).
    pub fn addr(&self) -> SocketAddr {
        self.addr
    }

    /// Stops the accept thread and joins it.
    pub fn shutdown(mut self) {
        self.stop_and_join();
    }

    fn stop_and_join(&mut self) {
        // ordering: Release pairs with the Acquire load in the accept
        // loop; the self-connect below guarantees the loop observes it.
        self.stop.store(true, Ordering::Release);
        // accept() has no timeout; a throwaway connection unblocks it so
        // the loop can re-check the stop flag.
        if let Ok(conn) = TcpStream::connect(self.addr) {
            drop(conn);
        }
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

impl Drop for Exporter {
    fn drop(&mut self) {
        if self.handle.is_some() {
            self.stop_and_join();
        }
    }
}

/// Binds `addr` (e.g. `127.0.0.1:9464`, or port 0 for OS-assigned) and
/// starts the accept thread.
///
/// # Errors
///
/// Fails if the address cannot be bound or the thread cannot spawn.
pub fn serve(addr: &str) -> crate::Result<Exporter> {
    let listener = TcpListener::bind(addr)?;
    let addr = listener.local_addr()?;
    let stop = Arc::new(AtomicBool::new(false));
    let thread_stop = Arc::clone(&stop);
    let handle = std::thread::Builder::new()
        .name("tcl-obs-export".to_string())
        .spawn(move || accept_loop(&listener, &thread_stop))?;
    Ok(Exporter {
        addr,
        stop,
        handle: Some(handle),
    })
}

/// Starts the exporter if `TCL_OBS_ADDR` is set (and non-empty).
///
/// A bind failure is reported on stderr and returns `None` rather than
/// propagating: observability must never take down a training run.
pub fn serve_from_env() -> Option<Exporter> {
    let addr = std::env::var(ADDR_ENV).ok()?;
    if addr.trim().is_empty() {
        return None;
    }
    match serve(addr.trim()) {
        Ok(exporter) => {
            eprintln!(
                "[tcl-obs] metrics exporter listening on http://{}/metrics",
                exporter.addr()
            );
            Some(exporter)
        }
        Err(e) => {
            eprintln!("[tcl-obs] {ADDR_ENV}={addr}: exporter disabled: {e}");
            None
        }
    }
}

fn accept_loop(listener: &TcpListener, stop: &AtomicBool) {
    loop {
        // ordering: Acquire pairs with the Release store in stop_and_join.
        if stop.load(Ordering::Acquire) {
            break;
        }
        let stream = match listener.accept() {
            Ok((stream, _)) => stream,
            Err(_) => continue,
        };
        // ordering: Acquire pairs with the Release store in stop_and_join;
        // re-check so the shutdown self-connect is not served.
        if stop.load(Ordering::Acquire) {
            break;
        }
        // Errors on individual connections (slow clients, disconnects) are
        // the client's problem; the exporter just moves on.
        let _ = handle_connection(stream);
    }
}

fn handle_connection(mut stream: TcpStream) -> std::io::Result<()> {
    stream.set_read_timeout(Some(Duration::from_millis(500)))?;
    stream.set_write_timeout(Some(Duration::from_millis(500)))?;
    let mut buf = [0u8; 2048];
    let mut used = 0usize;
    // Read until the end of the request line; drop oversized or stalled
    // requests on the floor.
    while !buf[..used].contains(&b'\n') {
        if used == buf.len() {
            return respond(
                &mut stream,
                400,
                "text/plain; charset=utf-8",
                "bad request\n",
            );
        }
        match stream.read(&mut buf[used..]) {
            Ok(0) => return Ok(()),
            Ok(n) => used += n,
            Err(e) => return Err(e),
        }
    }
    let request_line = String::from_utf8_lossy(&buf[..used]);
    let request_line = request_line.lines().next().unwrap_or("");
    let mut parts = request_line.split_whitespace();
    let method = parts.next().unwrap_or("");
    let path = parts.next().unwrap_or("");
    if method != "GET" {
        return respond(
            &mut stream,
            405,
            "text/plain; charset=utf-8",
            "method not allowed\n",
        );
    }
    // Strip any query string; none of the endpoints take parameters.
    let path = path.split('?').next().unwrap_or(path);
    match path {
        "/metrics" => {
            let body = render_prometheus(&metrics_snapshot());
            respond(
                &mut stream,
                200,
                "text/plain; version=0.0.4; charset=utf-8",
                &body,
            )
        }
        "/healthz" => respond(&mut stream, 200, "text/plain; charset=utf-8", "ok\n"),
        "/summary" => {
            let body = render_summary_json(&metrics_snapshot());
            respond(&mut stream, 200, "application/json; charset=utf-8", &body)
        }
        _ => respond(&mut stream, 404, "text/plain; charset=utf-8", "not found\n"),
    }
}

fn respond(
    stream: &mut TcpStream,
    status: u16,
    content_type: &str,
    body: &str,
) -> std::io::Result<()> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        _ => "Error",
    };
    let header = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n\r\n",
        body.len(),
    );
    stream.write_all(header.as_bytes())?;
    stream.write_all(body.as_bytes())?;
    stream.flush()
}

/// Sanitizes a telemetry metric name into a Prometheus family name plus an
/// optional `index` label (from the `name[i]` indexed-gauge convention):
/// `convert.lambda[3]` → (`tcl_convert_lambda`, `Some("3")`).
fn family_of(name: &str) -> (String, Option<String>) {
    let (base, index) = match (name.strip_suffix(']'), name.find('[')) {
        (Some(stripped), Some(open)) if open < stripped.len() => {
            (&name[..open], Some(stripped[open + 1..].to_string()))
        }
        _ => (name, None),
    };
    let mut family = String::with_capacity(base.len() + 4);
    family.push_str("tcl_");
    for c in base.chars() {
        if c.is_ascii_alphanumeric() {
            family.push(c);
        } else {
            family.push('_');
        }
    }
    (family, index)
}

fn sample(family: &str, suffix: &str, labels: &[(&str, &str)], value: &str, out: &mut String) {
    out.push_str(family);
    out.push_str(suffix);
    if !labels.is_empty() {
        out.push('{');
        for (i, (k, v)) in labels.iter().enumerate() {
            if i > 0 {
                out.push(',');
            }
            out.push_str(k);
            out.push_str("=\"");
            out.push_str(v);
            out.push('"');
        }
        out.push('}');
    }
    out.push(' ');
    out.push_str(value);
    out.push('\n');
}

/// Formats an f64 for the Prometheus exposition format.
fn prom_f64(v: f64) -> String {
    if v.is_nan() {
        "NaN".to_string()
    } else if v == f64::INFINITY {
        "+Inf".to_string()
    } else if v == f64::NEG_INFINITY {
        "-Inf".to_string()
    } else {
        format!("{v}")
    }
}

/// Renders a metrics snapshot in Prometheus text exposition format
/// (version 0.0.4).
///
/// Conventions: every family is prefixed `tcl_`, non-alphanumeric name
/// characters become `_`, indexed gauges (`name[i]`) become an
/// `{index="i"}` label on one family, gauges additionally export their
/// run min/max as `<family>_min` / `<family>_max`, and histograms export
/// cumulative `le` buckets plus `_sum` and `_count`. Output is sorted by
/// family name — deterministic for a given snapshot.
pub fn render_prometheus(snaps: &[MetricSnapshot]) -> String {
    use std::collections::BTreeMap;
    // family -> (TYPE, sample lines). Collecting first keeps each family's
    // samples contiguous even when indexed gauges interleave with their
    // min/max companion families in snapshot order.
    let mut families: BTreeMap<String, (&'static str, String)> = BTreeMap::new();
    let mut push = |family: &str, kind: &'static str, line_fn: &dyn Fn(&mut String)| {
        let entry = families
            .entry(family.to_string())
            .or_insert((kind, String::new()));
        line_fn(&mut entry.1);
    };
    for snap in snaps {
        let (family, index) = family_of(snap.name());
        let labels: Vec<(&str, &str)> = match &index {
            Some(i) => vec![("index", i.as_str())],
            None => Vec::new(),
        };
        match snap {
            MetricSnapshot::Counter { value, .. } => {
                let value = value.to_string();
                push(&family, "counter", &|out| {
                    sample(&family, "", &labels, &value, out)
                });
            }
            MetricSnapshot::Gauge { last, min, max, .. } => {
                let (last, min, max) = (prom_f64(*last), prom_f64(*min), prom_f64(*max));
                push(&family, "gauge", &|out| {
                    sample(&family, "", &labels, &last, out)
                });
                let min_family = format!("{family}_min");
                push(&min_family, "gauge", &|out| {
                    sample(&family, "_min", &labels, &min, out)
                });
                let max_family = format!("{family}_max");
                push(&max_family, "gauge", &|out| {
                    sample(&family, "_max", &labels, &max, out)
                });
            }
            MetricSnapshot::Hist { hist, .. } => {
                push(&family, "histogram", &|out| {
                    let width = hist.upper() / hist.counts().len() as f64;
                    let mut cumulative = 0u64;
                    for (i, c) in hist.counts().iter().enumerate() {
                        cumulative += c;
                        let le = prom_f64(width * (i + 1) as f64);
                        sample(
                            &family,
                            "_bucket",
                            &[("le", &le)],
                            &cumulative.to_string(),
                            out,
                        );
                    }
                    sample(
                        &family,
                        "_bucket",
                        &[("le", "+Inf")],
                        &hist.total().to_string(),
                        out,
                    );
                    sample(&family, "_sum", &labels, &prom_f64(hist.sum()), out);
                    sample(&family, "_count", &labels, &hist.total().to_string(), out);
                });
            }
        }
    }
    let dropped = events_dropped();
    push("tcl_trace_events_dropped", "counter", &|out| {
        sample(
            "tcl_trace_events_dropped",
            "",
            &[],
            &dropped.to_string(),
            out,
        );
    });
    let mut out = String::new();
    for (family, (kind, lines)) in &families {
        out.push_str(&format!("# TYPE {family} {kind}\n"));
        out.push_str(lines);
    }
    out
}

/// Renders a metrics snapshot as one JSON object (the `/summary` body).
pub fn render_summary_json(snaps: &[MetricSnapshot]) -> String {
    let mut out = String::from("{\"metrics\":[");
    for (i, snap) in snaps.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        match snap {
            MetricSnapshot::Counter { name, value } => {
                out.push_str("{\"kind\":\"counter\",\"name\":\"");
                json::escape_into(name, &mut out);
                out.push_str("\",\"value\":");
                out.push_str(&value.to_string());
                out.push('}');
            }
            MetricSnapshot::Gauge {
                name,
                last,
                min,
                max,
            } => {
                out.push_str("{\"kind\":\"gauge\",\"name\":\"");
                json::escape_into(name, &mut out);
                out.push_str("\",\"last\":");
                json::number_into(*last, &mut out);
                out.push_str(",\"min\":");
                json::number_into(*min, &mut out);
                out.push_str(",\"max\":");
                json::number_into(*max, &mut out);
                out.push('}');
            }
            MetricSnapshot::Hist { name, hist } => {
                out.push_str("{\"kind\":\"hist\",\"name\":\"");
                json::escape_into(name, &mut out);
                out.push_str("\",\"total\":");
                out.push_str(&hist.total().to_string());
                out.push_str(",\"mean\":");
                json::number_into(hist.mean(), &mut out);
                out.push_str(",\"p50\":");
                json::number_into(hist.p50(), &mut out);
                out.push_str(",\"p99\":");
                json::number_into(hist.p99(), &mut out);
                out.push_str(",\"max\":");
                json::number_into(hist.max(), &mut out);
                out.push('}');
            }
        }
    }
    out.push_str("],\"trace_events_dropped\":");
    out.push_str(&events_dropped().to_string());
    out.push_str("}\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcl_telemetry::FixedHistogram;

    fn gauge(name: &str, last: f64, min: f64, max: f64) -> MetricSnapshot {
        MetricSnapshot::Gauge {
            name: name.to_string(),
            last,
            min,
            max,
        }
    }

    #[test]
    fn prometheus_rendering_sanitizes_and_groups_families() {
        let mut h = FixedHistogram::new(1.0, 2);
        h.record(0.2);
        h.record(0.9);
        h.record(7.0); // clamps into the last bucket
        let snaps = vec![
            MetricSnapshot::Counter {
                name: "snn.spikes".to_string(),
                value: 42,
            },
            gauge("convert.lambda[0]", 2.0, 1.0, 3.0),
            gauge("convert.lambda[1]", 4.0, 4.0, 4.0),
            MetricSnapshot::Hist {
                name: "snn.firing_rate".to_string(),
                hist: h,
            },
        ];
        let text = render_prometheus(&snaps);
        assert!(text.contains("# TYPE tcl_snn_spikes counter\ntcl_snn_spikes 42\n"));
        // Indexed gauges fold into one family with index labels, grouped
        // under a single TYPE header.
        assert!(text.contains(
            "# TYPE tcl_convert_lambda gauge\ntcl_convert_lambda{index=\"0\"} 2\ntcl_convert_lambda{index=\"1\"} 4\n"
        ));
        assert!(text.contains("tcl_convert_lambda_min{index=\"0\"} 1\n"));
        assert!(text.contains("tcl_convert_lambda_max{index=\"1\"} 4\n"));
        // Histogram: cumulative buckets, +Inf, sum, count.
        assert!(text.contains("# TYPE tcl_snn_firing_rate histogram"));
        assert!(text.contains("tcl_snn_firing_rate_bucket{le=\"0.5\"} 1\n"));
        assert!(text.contains("tcl_snn_firing_rate_bucket{le=\"1\"} 3\n"));
        assert!(text.contains("tcl_snn_firing_rate_bucket{le=\"+Inf\"} 3\n"));
        assert!(text.contains("tcl_snn_firing_rate_count 3\n"));
        assert!(text.contains("tcl_snn_firing_rate_sum 8.1"));
        // The cap counter is always present.
        assert!(text.contains("# TYPE tcl_trace_events_dropped counter"));
        // Every TYPE header appears exactly once.
        let type_lines: Vec<&str> = text.lines().filter(|l| l.starts_with("# TYPE")).collect();
        let mut unique = type_lines.clone();
        unique.dedup();
        assert_eq!(type_lines.len(), unique.len());
    }

    #[test]
    fn summary_json_is_parseable() {
        let snaps = vec![
            MetricSnapshot::Counter {
                name: "engine.samples".to_string(),
                value: 7,
            },
            gauge("engine.steps_per_sec", 123.5, 100.0, 130.0),
        ];
        let body = render_summary_json(&snaps);
        let value = json::parse_line(body.trim()).expect("valid json");
        let metrics = value
            .get("metrics")
            .and_then(|m| m.as_array())
            .expect("metrics array");
        assert_eq!(metrics.len(), 2);
        assert_eq!(
            metrics[1].get("name").and_then(|v| v.as_str()),
            Some("engine.steps_per_sec")
        );
        assert!(value.get("trace_events_dropped").is_some());
    }

    #[test]
    fn exporter_serves_and_shuts_down() {
        let exporter = serve("127.0.0.1:0").expect("bind loopback");
        let addr = exporter.addr();
        let fetch = |path: &str| -> String {
            let mut conn = TcpStream::connect(addr).expect("connect");
            conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: x\r\n\r\n").as_bytes())
                .expect("write");
            let mut body = String::new();
            conn.read_to_string(&mut body).expect("read");
            body
        };
        let health = fetch("/healthz");
        assert!(health.starts_with("HTTP/1.1 200"), "{health}");
        assert!(health.ends_with("ok\n"));
        let metrics = fetch("/metrics");
        assert!(metrics.contains("text/plain; version=0.0.4"));
        assert!(metrics.contains("tcl_trace_events_dropped"));
        let missing = fetch("/nope");
        assert!(missing.starts_with("HTTP/1.1 404"));
        // POST is rejected.
        let mut conn = TcpStream::connect(addr).expect("connect");
        conn.write_all(b"POST /metrics HTTP/1.1\r\n\r\n")
            .expect("write");
        let mut body = String::new();
        conn.read_to_string(&mut body).expect("read");
        assert!(body.starts_with("HTTP/1.1 405"));
        exporter.shutdown();
        // The port is released: rebinding the same address succeeds.
        let again = TcpListener::bind(addr);
        assert!(again.is_ok());
    }
}
