//! # tcl-obs
//!
//! The read side of the TCL telemetry stack. `tcl-telemetry` (PR 2) made
//! the pipeline *emit* spans, metrics, and JSONL events; this crate makes
//! them *legible*, in two halves:
//!
//! **Post-hoc trace analysis.** [`load`] parses a JSONL trace back into
//! typed events (reusing `tcl_telemetry::json`, so the emitter and parser
//! are the same grammar), [`tree`] reconstructs the per-thread span forest
//! across `thread::scope` parent propagation, and on top of that sit
//! [`summary`] (per-span-name count / total / self time / p50 / p99),
//! [`flame`] (folded stacks and a self-contained SVG flamegraph),
//! [`critical`] (the longest self-time chain through a run), and [`diff`]
//! (two runs → per-span-name deltas with a regression threshold). The
//! `tcl-trace` binary exposes all of it as subcommands, so "where do the
//! timesteps and synops actually go" — the latency/energy tradeoff that is
//! TCL's whole pitch — is one command against a trace file instead of an
//! evening with raw JSONL.
//!
//! **Live export.** [`export`] is a hand-rolled, zero-dependency TCP/HTTP
//! exporter (opt-in via `TCL_OBS_ADDR=host:port`): a single accept thread
//! serving `/metrics` in Prometheus text format straight from the
//! `tcl-telemetry` registry snapshot, `/healthz`, and `/summary` JSON.
//! It is strictly off the compute path — scrapes read a snapshot under the
//! registry mutex and never touch engine or trainer state — and it is the
//! surface the planned `tcl-serve` continuous-batching service will
//! inherit.
//!
//! Everything here is deterministic for a given trace: analysis output is
//! a pure function of the input JSONL, so flamegraphs and critical paths
//! are golden-testable.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

pub mod critical;
pub mod diff;
pub mod export;
pub mod flame;
pub mod load;
pub mod summary;
pub mod tree;

pub use critical::{critical_path, CriticalPath, CriticalStep};
pub use diff::{diff_summaries, DiffReport, DiffRow};
pub use export::{serve, serve_from_env, Exporter};
pub use flame::{folded, svg};
pub use load::{SpanEvent, Trace, TraceEvent};
pub use summary::{summarize, NameStats};
pub use tree::{SpanNode, SpanTree};

/// Errors from trace loading, analysis, and the exporter.
#[derive(Debug)]
pub enum ObsError {
    /// A JSONL line failed to parse or was missing a required field.
    Parse {
        /// 1-based line number in the trace file.
        line: usize,
        /// What went wrong.
        detail: String,
    },
    /// The trace parsed but cannot be analyzed as requested.
    Trace(String),
    /// Filesystem or socket failure.
    Io(std::io::Error),
}

impl std::fmt::Display for ObsError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        match self {
            ObsError::Parse { line, detail } => {
                write!(f, "trace line {line}: {detail}")
            }
            ObsError::Trace(detail) => write!(f, "trace: {detail}"),
            ObsError::Io(e) => write!(f, "i/o: {e}"),
        }
    }
}

impl std::error::Error for ObsError {
    fn source(&self) -> Option<&(dyn std::error::Error + 'static)> {
        match self {
            ObsError::Io(e) => Some(e),
            _ => None,
        }
    }
}

impl From<std::io::Error> for ObsError {
    fn from(e: std::io::Error) -> Self {
        ObsError::Io(e)
    }
}

/// Crate-wide result alias.
pub type Result<T> = std::result::Result<T, ObsError>;
