//! Span-forest reconstruction: JSONL span records → parent-linked trees
//! with per-node self time.
//!
//! The emitter writes one record per span at *close* time, so a trace is a
//! post-order stream. Parent linkage is by span id, which works across
//! threads: `tcl_telemetry::propagate_parent` carries the spawning span's
//! id into `thread::scope` workers, so a `par.worker` span on thread 3
//! parents under the kernel span on thread 0 that fanned it out.
//!
//! **Self time** is a span's duration minus the duration of its children
//! *on the same thread* (clamped at zero against clock jitter). Children
//! on other threads run concurrently with their parent — subtracting them
//! would double-count wall time the parent was genuinely executing — so
//! cross-thread children contribute to the tree shape but not to the
//! parent's self-time deduction. A capped trace (`TCL_TRACE_MAX_MB`) can
//! reference parents whose close record was suppressed; such orphans
//! become roots.

use crate::load::{SpanEvent, Trace};
use std::collections::BTreeMap;

/// One node of the reconstructed forest.
#[derive(Debug, Clone)]
pub struct SpanNode {
    /// The span record.
    pub span: SpanEvent,
    /// Indices (into [`SpanTree::nodes`]) of this span's children, sorted
    /// by start offset then id.
    pub children: Vec<usize>,
    /// Duration minus same-thread child durations, clamped ≥ 0 (µs).
    pub self_us: u64,
}

/// The reconstructed span forest of one trace.
#[derive(Debug, Clone, Default)]
pub struct SpanTree {
    /// All span nodes, in trace (close) order.
    pub nodes: Vec<SpanNode>,
    /// Indices of root spans (no parent, or parent missing from the
    /// trace), sorted by start offset then id.
    pub roots: Vec<usize>,
}

impl SpanTree {
    /// Builds the forest from a parsed trace.
    pub fn build(trace: &Trace) -> SpanTree {
        let mut nodes: Vec<SpanNode> = trace
            .spans()
            .map(|span| SpanNode {
                span: span.clone(),
                children: Vec::new(),
                self_us: span.dur_us,
            })
            .collect();
        // First close wins on (pathological) duplicate ids; later spans
        // with a duplicated id still appear as nodes, just unlinkable.
        let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, node) in nodes.iter().enumerate() {
            by_id.entry(node.span.id).or_insert(i);
        }
        let mut roots = Vec::new();
        for i in 0..nodes.len() {
            let parent_idx = nodes[i]
                .span
                .parent
                .and_then(|pid| by_id.get(&pid).copied())
                .filter(|&p| p != i);
            match parent_idx {
                Some(p) => nodes[p].children.push(i),
                None => roots.push(i),
            }
        }
        // Deterministic ordering + self-time deduction.
        let key = |nodes: &[SpanNode], i: usize| (nodes[i].span.start_us, nodes[i].span.id);
        for i in 0..nodes.len() {
            let mut children = std::mem::take(&mut nodes[i].children);
            children.sort_by_key(|&c| key(&nodes, c));
            let same_thread_child_us: u64 = children
                .iter()
                .filter(|&&c| nodes[c].span.thread == nodes[i].span.thread)
                .map(|&c| nodes[c].span.dur_us)
                .sum();
            nodes[i].self_us = nodes[i].span.dur_us.saturating_sub(same_thread_child_us);
            nodes[i].children = children;
        }
        roots.sort_by_key(|&r| key(&nodes, r));
        SpanTree { nodes, roots }
    }

    /// Total self time over all nodes (µs) — equals total traced wall
    /// time per thread, summed over threads.
    pub fn total_self_us(&self) -> u64 {
        self.nodes.iter().map(|n| n.self_us).sum()
    }

    /// The name path from a root down to `idx` (inclusive), following
    /// parent links. `idx` must be a valid node index.
    pub fn stack_of(&self, idx: usize) -> Vec<&str> {
        // Parent pointers are implicit; rebuild by id lookup.
        let mut by_id: BTreeMap<u64, usize> = BTreeMap::new();
        for (i, node) in self.nodes.iter().enumerate() {
            by_id.entry(node.span.id).or_insert(i);
        }
        let mut stack = Vec::new();
        let mut cursor = Some(idx);
        let mut hops = 0usize;
        while let Some(i) = cursor {
            stack.push(self.nodes[i].span.name.as_str());
            hops += 1;
            if hops > self.nodes.len() {
                break; // corrupt parent cycle; bail deterministically
            }
            cursor = self.nodes[i]
                .span
                .parent
                .and_then(|pid| by_id.get(&pid).copied())
                .filter(|&p| p != i);
        }
        stack.reverse();
        stack
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::Trace;

    fn span_line(
        name: &str,
        id: u64,
        parent: Option<u64>,
        thread: u64,
        start: u64,
        dur: u64,
    ) -> String {
        format!(
            "{{\"type\":\"span\",\"name\":\"{name}\",\"id\":{id},\"parent\":{},\"thread\":{thread},\"start_us\":{start},\"dur_us\":{dur}}}",
            parent.map_or("null".to_string(), |p| p.to_string()),
        )
    }

    fn build(lines: &[String]) -> SpanTree {
        SpanTree::build(&Trace::parse(&lines.join("\n")).expect("parse"))
    }

    #[test]
    fn reconstructs_nesting_and_self_time() {
        // close order: children first (RAII drop order).
        let tree = build(&[
            span_line("inner_a", 2, Some(1), 0, 10, 30),
            span_line("inner_b", 3, Some(1), 0, 50, 20),
            span_line("outer", 1, None, 0, 0, 100),
        ]);
        assert_eq!(tree.roots.len(), 1);
        let root = &tree.nodes[tree.roots[0]];
        assert_eq!(root.span.name, "outer");
        assert_eq!(root.children.len(), 2);
        // children sorted by start
        assert_eq!(tree.nodes[root.children[0]].span.name, "inner_a");
        assert_eq!(root.self_us, 100 - 30 - 20);
        assert_eq!(tree.total_self_us(), 50 + 30 + 20);
        assert_eq!(tree.stack_of(root.children[1]), vec!["outer", "inner_b"]);
    }

    #[test]
    fn cross_thread_children_nest_but_do_not_eat_self_time() {
        let tree = build(&[
            span_line("worker", 2, Some(1), 1, 5, 90),
            span_line("worker", 3, Some(1), 2, 5, 80),
            span_line("kernel", 1, None, 0, 0, 100),
        ]);
        let root = &tree.nodes[tree.roots[0]];
        assert_eq!(root.children.len(), 2);
        // Concurrent workers don't reduce the kernel's self time.
        assert_eq!(root.self_us, 100);
        assert_eq!(tree.total_self_us(), 100 + 90 + 80);
    }

    #[test]
    fn missing_parents_become_roots() {
        // Parent id 99's close record was suppressed by the size cap.
        let tree = build(&[
            span_line("orphan", 5, Some(99), 0, 10, 20),
            span_line("whole", 6, None, 0, 0, 50),
        ]);
        assert_eq!(tree.roots.len(), 2);
        assert_eq!(tree.stack_of(tree.roots[1]), vec!["orphan"]);
    }

    #[test]
    fn clock_jitter_clamps_self_time_at_zero() {
        let tree = build(&[
            span_line("child", 2, Some(1), 0, 0, 120),
            span_line("parent", 1, None, 0, 0, 100),
        ]);
        assert_eq!(tree.nodes[tree.roots[0]].self_us, 0);
    }
}
