//! Flamegraphs: folded-stack text (Brendan Gregg's `stackcollapse`
//! format, consumable by any external flamegraph tool) and a
//! self-contained SVG renderer with zero dependencies.
//!
//! Stacks are aggregated by *name path*: every span contributes its self
//! time to the frame `root;child;...;name`, merging repeated instances of
//! the same call path (100 `train.step` spans under `train.epoch` become
//! one wide frame, not 100 slivers). Output is deterministic — frames are
//! laid out in lexicographic path order and colors are an FNV-1a hash of
//! the frame name — so both renderings are golden-testable.

use crate::tree::SpanTree;
use std::collections::BTreeMap;

/// Aggregates a span forest into folded-stack lines:
/// `root;child;leaf <self_us>` per unique path, lexicographically sorted,
/// zero-self paths omitted.
pub fn folded(tree: &SpanTree) -> String {
    let mut agg: BTreeMap<String, u64> = BTreeMap::new();
    // Walk each root iteratively, carrying the path.
    let mut work: Vec<(usize, String)> = tree
        .roots
        .iter()
        .map(|&r| (r, tree.nodes[r].span.name.clone()))
        .collect();
    // LIFO traversal order doesn't matter — the BTreeMap sorts output.
    while let Some((i, path)) = work.pop() {
        let node = &tree.nodes[i];
        if node.self_us > 0 {
            *agg.entry(path.clone()).or_default() += node.self_us;
        }
        for &c in &node.children {
            let mut child_path =
                String::with_capacity(path.len() + 1 + tree.nodes[c].span.name.len());
            child_path.push_str(&path);
            child_path.push(';');
            child_path.push_str(&tree.nodes[c].span.name);
            work.push((c, child_path));
        }
    }
    let mut out = String::new();
    for (path, us) in &agg {
        out.push_str(path);
        out.push(' ');
        out.push_str(&us.to_string());
        out.push('\n');
    }
    out
}

/// One merged frame in the layout: a unique call path.
struct Frame {
    /// Frame name (last path segment).
    name: String,
    /// Depth (root = 0).
    depth: usize,
    /// Total time in this frame including descendants (µs).
    total_us: u64,
    /// Self time (µs).
    self_us: u64,
    /// Left edge in µs, in merged-layout coordinates.
    x_us: u64,
}

/// Merges folded paths into a frame layout. Children at each level are
/// placed in lexicographic name order.
fn layout(folded_text: &str) -> (Vec<Frame>, u64) {
    // Rebuild a path trie from folded lines: path -> self_us.
    let mut selfs: BTreeMap<Vec<&str>, u64> = BTreeMap::new();
    for line in folded_text.lines() {
        let Some((path, us)) = line.rsplit_once(' ') else {
            continue;
        };
        let Ok(us) = us.parse::<u64>() else { continue };
        selfs.insert(path.split(';').collect(), us);
    }
    // total(path) = self(path) + Σ total(children) — compute by adding
    // each leaf's self time to every prefix.
    let mut totals: BTreeMap<Vec<&str>, u64> = BTreeMap::new();
    for (path, us) in &selfs {
        for depth in 1..=path.len() {
            *totals.entry(path[..depth].to_vec()).or_default() += us;
        }
    }
    // BTreeMap iterates prefixes before extensions and siblings in name
    // order, which is exactly the x-layout order. Track a running right
    // edge per depth.
    let mut frames = Vec::with_capacity(totals.len());
    let mut edge: Vec<u64> = Vec::new(); // next free x per depth
    for (path, &total_us) in &totals {
        let depth = path.len() - 1;
        // Prefixes iterate before extensions, so depth grows by at most 1
        // per step; entering a new subtree resets deeper edges.
        edge.truncate(depth + 1);
        while edge.len() <= depth {
            edge.push(0);
        }
        let parent_left = if depth == 0 {
            edge[0]
        } else {
            edge[depth - 1].saturating_sub(totals[&path[..depth].to_vec()])
        };
        let x_us = parent_left.max(*edge.get(depth).unwrap_or(&0));
        frames.push(Frame {
            name: (*path.last().unwrap_or(&"?")).to_string(),
            depth,
            total_us,
            self_us: selfs.get(path).copied().unwrap_or(0),
            x_us,
        });
        edge[depth] = x_us + total_us;
    }
    let width_us = frames
        .iter()
        .filter(|f| f.depth == 0)
        .map(|f| f.total_us)
        .sum();
    (frames, width_us)
}

/// FNV-1a hash of a frame name, used to pick a stable warm color.
fn fnv1a(name: &str) -> u64 {
    let mut hash: u64 = 0xcbf2_9ce4_8422_2325;
    for b in name.bytes() {
        hash ^= u64::from(b);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    hash
}

/// Warm flame palette: hue from red to yellow keyed on the name hash.
fn color(name: &str) -> String {
    let h = fnv1a(name);
    let r = 205 + (h % 50) as u32; // 205..=254
    let g = 80 + ((h >> 8) % 130) as u32; // 80..=209
    let b = ((h >> 16) % 55) as u32; // 0..=54
    format!("rgb({r},{g},{b})")
}

const IMAGE_W: f64 = 1200.0;
const ROW_H: f64 = 18.0;
const PAD: f64 = 10.0;

fn xml_escape(s: &str) -> String {
    let mut out = String::with_capacity(s.len());
    for c in s.chars() {
        match c {
            '&' => out.push_str("&amp;"),
            '<' => out.push_str("&lt;"),
            '>' => out.push_str("&gt;"),
            '"' => out.push_str("&quot;"),
            c => out.push(c),
        }
    }
    out
}

/// Renders a self-contained SVG flamegraph from a span forest.
///
/// Deterministic: layout order and colors depend only on the trace.
/// Every frame carries a `<title>` tooltip with its name, total time, and
/// share of the run, so the SVG is explorable in any browser with no
/// scripts.
pub fn svg(tree: &SpanTree) -> String {
    let (frames, width_us) = layout(&folded(tree));
    let max_depth = frames.iter().map(|f| f.depth).max().unwrap_or(0);
    let height = PAD * 2.0 + ROW_H * (max_depth + 1) as f64 + 24.0;
    let scale = if width_us == 0 {
        0.0
    } else {
        (IMAGE_W - 2.0 * PAD) / width_us as f64
    };
    let mut out = String::new();
    out.push_str(&format!(
        "<svg xmlns=\"http://www.w3.org/2000/svg\" width=\"{IMAGE_W}\" height=\"{height}\" \
         font-family=\"monospace\" font-size=\"11\">\n"
    ));
    out.push_str(&format!(
        "<text x=\"{PAD}\" y=\"{}\">tcl-trace flame: {} us total, {} frame(s)</text>\n",
        height - PAD,
        width_us,
        frames.len(),
    ));
    for f in &frames {
        let x = PAD + f.x_us as f64 * scale;
        let w = (f.total_us as f64 * scale).max(0.5);
        // Flames grow upward: depth 0 at the bottom.
        let y = PAD + ROW_H * (max_depth - f.depth) as f64;
        let pct = if width_us == 0 {
            0.0
        } else {
            100.0 * f.total_us as f64 / width_us as f64
        };
        let title = format!(
            "{} ({} us total, {} us self, {:.2}%)",
            f.name, f.total_us, f.self_us, pct
        );
        out.push_str(&format!(
            "<g><title>{}</title><rect x=\"{:.2}\" y=\"{:.2}\" width=\"{:.2}\" height=\"{:.2}\" \
             fill=\"{}\" stroke=\"white\" stroke-width=\"0.5\"/>",
            xml_escape(&title),
            x,
            y,
            w,
            ROW_H - 1.0,
            color(&f.name),
        ));
        // Label only frames wide enough to hold text (~6.6 px/char).
        let label_chars = (w / 6.6) as usize;
        if label_chars >= 3 {
            let label: String = f.name.chars().take(label_chars).collect();
            out.push_str(&format!(
                "<text x=\"{:.2}\" y=\"{:.2}\" fill=\"black\">{}</text>",
                x + 2.0,
                y + ROW_H - 5.0,
                xml_escape(&label),
            ));
        }
        out.push_str("</g>\n");
    }
    out.push_str("</svg>\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::Trace;
    use crate::tree::SpanTree;

    fn tree_of(lines: &str) -> SpanTree {
        SpanTree::build(&Trace::parse(lines).expect("parse"))
    }

    const TRACE: &str = concat!(
        "{\"type\":\"span\",\"name\":\"step\",\"id\":2,\"parent\":1,\"thread\":0,\"start_us\":0,\"dur_us\":30}\n",
        "{\"type\":\"span\",\"name\":\"step\",\"id\":3,\"parent\":1,\"thread\":0,\"start_us\":30,\"dur_us\":50}\n",
        "{\"type\":\"span\",\"name\":\"epoch\",\"id\":1,\"parent\":null,\"thread\":0,\"start_us\":0,\"dur_us\":100}\n",
    );

    #[test]
    fn folded_merges_repeated_paths() {
        let text = folded(&tree_of(TRACE));
        assert_eq!(text, "epoch 20\nepoch;step 80\n");
    }

    #[test]
    fn folded_omits_zero_self_frames() {
        let text = folded(&tree_of(concat!(
            "{\"type\":\"span\",\"name\":\"inner\",\"id\":2,\"parent\":1,\"thread\":0,\"start_us\":0,\"dur_us\":40}\n",
            "{\"type\":\"span\",\"name\":\"outer\",\"id\":1,\"parent\":null,\"thread\":0,\"start_us\":0,\"dur_us\":40}\n",
        )));
        // outer's self time is 0; only the path through inner appears.
        assert_eq!(text, "outer;inner 40\n");
    }

    #[test]
    fn svg_is_self_contained_and_deterministic() {
        let tree = tree_of(TRACE);
        let a = svg(&tree);
        let b = svg(&tree);
        assert_eq!(a, b);
        assert!(a.starts_with("<svg"));
        assert!(a.trim_end().ends_with("</svg>"));
        // Both frames render with tooltips; root is full width.
        assert!(a.contains("<title>epoch (100 us total, 20 us self, 100.00%)</title>"));
        assert!(a.contains("<title>step (80 us total, 80 us self, 80.00%)</title>"));
        // No scripts, no external refs.
        assert!(!a.contains("<script"));
        assert!(!a.contains("http://") || a.contains("xmlns=\"http://www.w3.org/2000/svg\""));
    }

    #[test]
    fn svg_escapes_names() {
        let tree = tree_of(
            "{\"type\":\"span\",\"name\":\"a<b>&\\\"c\\\"\",\"id\":1,\"parent\":null,\"thread\":0,\"start_us\":0,\"dur_us\":10}\n",
        );
        let s = svg(&tree);
        assert!(s.contains("a&lt;b&gt;&amp;&quot;c&quot;"));
        assert!(!s.contains("a<b>"));
    }
}
