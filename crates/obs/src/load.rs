//! JSONL trace loader: parses a `TCL_TRACE` file back into typed events.
//!
//! The parser is `tcl_telemetry::json::parse_line` — the same hand-rolled
//! grammar the emitter is tested against — so a trace either loads exactly
//! or fails with the offending line number. A truncated or corrupted line
//! is a clean [`ObsError::Parse`], never a panic: `ci.sh` feeds the loader
//! deliberately truncated traces as a negative control.
//!
//! Unknown `"type"` discriminators are tolerated (counted, not errored) so
//! older `tcl-trace` builds keep working when the emitter grows new event
//! kinds — the schema is append-only by convention.

use crate::{ObsError, Result};
use tcl_telemetry::json::{parse_line, JsonValue};

/// One span record from the trace: a completed `tcl_telemetry::span`.
#[derive(Debug, Clone, PartialEq)]
pub struct SpanEvent {
    /// Span name (static in the emitter, owned here).
    pub name: String,
    /// Process-unique span id (ids start at 1).
    pub id: u64,
    /// Parent span id, if the span had one (possibly on another thread,
    /// via `propagate_parent`).
    pub parent: Option<u64>,
    /// Telemetry thread id (dense, process-local).
    pub thread: u64,
    /// Start offset from the process trace epoch, microseconds.
    pub start_us: u64,
    /// Wall-clock duration, microseconds.
    pub dur_us: u64,
    /// Numeric attributes attached at open time.
    pub attrs: Vec<(String, f64)>,
}

/// One parsed JSONL trace event.
#[derive(Debug, Clone, PartialEq)]
pub enum TraceEvent {
    /// `{"type":"span",...}` — see [`SpanEvent`].
    Span(SpanEvent),
    /// `{"type":"log",...}` — a mirrored progress line.
    Log {
        /// Component tag.
        component: String,
        /// Message text.
        message: String,
    },
    /// `{"type":"counter",...}` — registry counter snapshot.
    Counter {
        /// Metric name.
        name: String,
        /// Counter value.
        value: u64,
    },
    /// `{"type":"gauge",...}` — registry gauge snapshot.
    Gauge {
        /// Metric name.
        name: String,
        /// Most recent value.
        last: f64,
        /// Run minimum.
        min: f64,
        /// Run maximum.
        max: f64,
    },
    /// `{"type":"hist",...}` — registry histogram snapshot.
    Hist {
        /// Metric name.
        name: String,
        /// Sample count.
        total: u64,
        /// Exact mean.
        mean: f64,
        /// Exact max.
        max: f64,
        /// Bucket range upper bound.
        upper: f64,
        /// Per-bucket counts.
        counts: Vec<u64>,
    },
    /// `{"type":"dropped",...}` — the `TCL_TRACE_MAX_MB` cap marker: this
    /// trace is a prefix of the run, `count` events were suppressed.
    Dropped {
        /// Number of suppressed events.
        count: u64,
    },
}

/// A parsed trace: every event in file order.
#[derive(Debug, Clone, Default)]
pub struct Trace {
    /// Events in file order.
    pub events: Vec<TraceEvent>,
    /// Lines with a well-formed but unrecognized `"type"` (skipped).
    pub unknown_types: usize,
}

impl Trace {
    /// Parses a full JSONL trace text.
    ///
    /// # Errors
    ///
    /// Returns [`ObsError::Parse`] with a 1-based line number on the first
    /// malformed line or missing/ill-typed field. Blank lines are allowed
    /// (and skipped) so `head`-truncation at a line boundary still loads.
    pub fn parse(text: &str) -> Result<Trace> {
        let mut trace = Trace::default();
        for (idx, line) in text.lines().enumerate() {
            let lineno = idx + 1;
            if line.trim().is_empty() {
                continue;
            }
            let value = parse_line(line).map_err(|detail| ObsError::Parse {
                line: lineno,
                detail,
            })?;
            match parse_event(&value) {
                Ok(Some(event)) => trace.events.push(event),
                Ok(None) => trace.unknown_types += 1,
                Err(detail) => {
                    return Err(ObsError::Parse {
                        line: lineno,
                        detail,
                    })
                }
            }
        }
        Ok(trace)
    }

    /// Loads and parses a trace file.
    ///
    /// # Errors
    ///
    /// Propagates I/O failures and [`Trace::parse`] errors.
    pub fn load(path: &std::path::Path) -> Result<Trace> {
        let text = std::fs::read_to_string(path)?;
        Trace::parse(&text)
    }

    /// The span events, in file order (i.e. span *close* order).
    pub fn spans(&self) -> impl Iterator<Item = &SpanEvent> {
        self.events.iter().filter_map(|e| match e {
            TraceEvent::Span(s) => Some(s),
            _ => None,
        })
    }

    /// Total events suppressed by the emitter's size cap, if the trace
    /// carries a `dropped` marker (0 otherwise).
    pub fn dropped(&self) -> u64 {
        self.events
            .iter()
            .filter_map(|e| match e {
                TraceEvent::Dropped { count } => Some(*count),
                _ => None,
            })
            .max()
            .unwrap_or(0)
    }
}

fn field<'a>(obj: &'a JsonValue, key: &str) -> std::result::Result<&'a JsonValue, String> {
    obj.get(key).ok_or_else(|| format!("missing field {key:?}"))
}

fn str_field(obj: &JsonValue, key: &str) -> std::result::Result<String, String> {
    field(obj, key)?
        .as_str()
        .map(str::to_owned)
        .ok_or_else(|| format!("field {key:?} must be a string"))
}

fn u64_field(obj: &JsonValue, key: &str) -> std::result::Result<u64, String> {
    field(obj, key)?
        .as_u64()
        .ok_or_else(|| format!("field {key:?} must be a non-negative integer"))
}

fn f64_field(obj: &JsonValue, key: &str) -> std::result::Result<f64, String> {
    match field(obj, key)? {
        JsonValue::Number(v) => Ok(*v),
        // number_into emits null for non-finite values; preserve that.
        JsonValue::Null => Ok(f64::NAN),
        _ => Err(format!("field {key:?} must be a number or null")),
    }
}

/// Parses one JSON object into a [`TraceEvent`]; `Ok(None)` for unknown
/// types, `Err` for recognized types with bad fields.
fn parse_event(value: &JsonValue) -> std::result::Result<Option<TraceEvent>, String> {
    if !matches!(value, JsonValue::Object(_)) {
        return Err("event must be a JSON object".to_string());
    }
    let kind = str_field(value, "type")?;
    match kind.as_str() {
        "span" => {
            let parent = match field(value, "parent")? {
                JsonValue::Null => None,
                v => Some(
                    v.as_u64()
                        .ok_or_else(|| "field \"parent\" must be null or an id".to_string())?,
                ),
            };
            let attrs = match value.get("attrs") {
                None => Vec::new(),
                Some(JsonValue::Object(members)) => {
                    let mut attrs = Vec::with_capacity(members.len());
                    for (k, v) in members {
                        let v = match v {
                            JsonValue::Number(n) => *n,
                            JsonValue::Null => f64::NAN,
                            _ => return Err(format!("attr {k:?} must be numeric")),
                        };
                        attrs.push((k.clone(), v));
                    }
                    attrs
                }
                Some(_) => return Err("field \"attrs\" must be an object".to_string()),
            };
            Ok(Some(TraceEvent::Span(SpanEvent {
                name: str_field(value, "name")?,
                id: u64_field(value, "id")?,
                parent,
                thread: u64_field(value, "thread")?,
                start_us: u64_field(value, "start_us")?,
                dur_us: u64_field(value, "dur_us")?,
                attrs,
            })))
        }
        "log" => Ok(Some(TraceEvent::Log {
            component: str_field(value, "component")?,
            message: str_field(value, "message")?,
        })),
        "counter" => Ok(Some(TraceEvent::Counter {
            name: str_field(value, "name")?,
            value: u64_field(value, "value")?,
        })),
        "gauge" => Ok(Some(TraceEvent::Gauge {
            name: str_field(value, "name")?,
            last: f64_field(value, "last")?,
            min: f64_field(value, "min")?,
            max: f64_field(value, "max")?,
        })),
        "hist" => {
            let counts = field(value, "counts")?
                .as_array()
                .ok_or_else(|| "field \"counts\" must be an array".to_string())?
                .iter()
                .map(|v| {
                    v.as_u64()
                        .ok_or_else(|| "bucket counts must be non-negative integers".to_string())
                })
                .collect::<std::result::Result<Vec<u64>, String>>()?;
            Ok(Some(TraceEvent::Hist {
                name: str_field(value, "name")?,
                total: u64_field(value, "total")?,
                mean: f64_field(value, "mean")?,
                max: f64_field(value, "max")?,
                upper: f64_field(value, "upper")?,
                counts,
            }))
        }
        "dropped" => Ok(Some(TraceEvent::Dropped {
            count: u64_field(value, "count")?,
        })),
        _ => Ok(None),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    const SAMPLE: &str = concat!(
        r#"{"type":"span","name":"matmul","id":2,"parent":1,"thread":0,"start_us":10,"dur_us":40,"attrs":{"m":64.0}}"#,
        "\n",
        r#"{"type":"span","name":"convert","id":1,"parent":null,"thread":0,"start_us":0,"dur_us":100}"#,
        "\n",
        r#"{"type":"log","component":"trainer","message":"epoch 0"}"#,
        "\n",
        r#"{"type":"counter","name":"snn.spikes","value":123}"#,
        "\n",
        r#"{"type":"gauge","name":"convert.lambda[0]","last":2.0,"min":1.5,"max":2.5}"#,
        "\n",
        r#"{"type":"hist","name":"snn.firing_rate","total":4,"mean":0.3,"max":0.9,"upper":1.0,"counts":[1,3]}"#,
        "\n",
        r#"{"type":"dropped","count":7,"reason":"TCL_TRACE_MAX_MB"}"#,
        "\n",
    );

    #[test]
    fn parses_every_event_kind() {
        let trace = Trace::parse(SAMPLE).expect("parses");
        assert_eq!(trace.events.len(), 7);
        assert_eq!(trace.spans().count(), 2);
        assert_eq!(trace.dropped(), 7);
        assert_eq!(trace.unknown_types, 0);
        let span = trace.spans().next().expect("span");
        assert_eq!(span.name, "matmul");
        assert_eq!(span.parent, Some(1));
        assert_eq!(span.attrs, vec![("m".to_string(), 64.0)]);
        let root = trace.spans().nth(1).expect("root span");
        assert_eq!(root.parent, None);
        assert!(root.attrs.is_empty());
    }

    #[test]
    fn unknown_types_are_skipped_not_fatal() {
        let text =
            "{\"type\":\"proto_v9\",\"x\":1}\n{\"type\":\"counter\",\"name\":\"c\",\"value\":1}\n";
        let trace = Trace::parse(text).expect("parses");
        assert_eq!(trace.unknown_types, 1);
        assert_eq!(trace.events.len(), 1);
    }

    #[test]
    fn truncation_and_bad_fields_fail_cleanly_with_line_numbers() {
        // Mid-line truncation (what a killed process leaves behind).
        let truncated = "{\"type\":\"counter\",\"name\":\"c\",\"value\":1}\n{\"type\":\"spa";
        match Trace::parse(truncated) {
            Err(ObsError::Parse { line: 2, .. }) => {}
            other => panic!("expected parse error on line 2, got {other:?}"),
        }
        // Recognized type with a missing field.
        let missing = "{\"type\":\"span\",\"name\":\"x\",\"id\":1}";
        match Trace::parse(missing) {
            Err(ObsError::Parse { line: 1, detail }) => {
                assert!(detail.contains("parent"), "{detail}");
            }
            other => panic!("expected parse error, got {other:?}"),
        }
        // Ill-typed field.
        let bad = "{\"type\":\"counter\",\"name\":\"c\",\"value\":-3}";
        assert!(Trace::parse(bad).is_err());
        // Blank lines are fine.
        let blanky = "\n{\"type\":\"counter\",\"name\":\"c\",\"value\":3}\n\n";
        assert_eq!(Trace::parse(blanky).expect("ok").events.len(), 1);
    }
}
