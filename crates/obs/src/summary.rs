//! Per-span-name aggregation: the `tcl-trace summary` table.
//!
//! Quantiles here are *exact* (nearest-rank over the sorted per-name
//! duration list), unlike the bucketed approximations in
//! `tcl_telemetry::FixedHistogram` — post-hoc analysis holds the whole
//! trace in memory, so there is no reason to approximate.

use crate::tree::SpanTree;
use std::collections::BTreeMap;

/// Aggregated statistics for one span name.
#[derive(Debug, Clone, PartialEq)]
pub struct NameStats {
    /// Span name.
    pub name: String,
    /// Number of spans with this name.
    pub count: u64,
    /// Sum of durations (µs). Nested same-name spans each count, so this
    /// can exceed wall time.
    pub total_us: u64,
    /// Sum of self times (µs) — time attributable to this name alone.
    pub self_us: u64,
    /// Median duration (µs, nearest-rank).
    pub p50_us: u64,
    /// 99th-percentile duration (µs, nearest-rank).
    pub p99_us: u64,
    /// Maximum duration (µs).
    pub max_us: u64,
}

/// Nearest-rank quantile over a sorted non-empty slice.
fn rank(sorted: &[u64], q: f64) -> u64 {
    debug_assert!(!sorted.is_empty());
    let n = sorted.len();
    let r = ((q * n as f64).ceil() as usize).clamp(1, n);
    sorted[r - 1]
}

/// Aggregates a span forest into per-name statistics, sorted by self time
/// descending, then name (deterministic for golden tests).
pub fn summarize(tree: &SpanTree) -> Vec<NameStats> {
    let mut durs: BTreeMap<&str, Vec<u64>> = BTreeMap::new();
    let mut selfs: BTreeMap<&str, u64> = BTreeMap::new();
    for node in &tree.nodes {
        durs.entry(&node.span.name)
            .or_default()
            .push(node.span.dur_us);
        *selfs.entry(&node.span.name).or_default() += node.self_us;
    }
    let mut stats: Vec<NameStats> = durs
        .into_iter()
        .map(|(name, mut d)| {
            d.sort_unstable();
            NameStats {
                name: name.to_string(),
                count: d.len() as u64,
                total_us: d.iter().sum(),
                self_us: selfs.get(name).copied().unwrap_or(0),
                p50_us: rank(&d, 0.50),
                p99_us: rank(&d, 0.99),
                max_us: *d.last().unwrap_or(&0),
            }
        })
        .collect();
    stats.sort_by(|a, b| b.self_us.cmp(&a.self_us).then_with(|| a.name.cmp(&b.name)));
    stats
}

/// Renders the summary as an aligned text table.
pub fn render_table(stats: &[NameStats]) -> String {
    let mut out = String::new();
    let name_w = stats
        .iter()
        .map(|s| s.name.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let total_self: u64 = stats.iter().map(|s| s.self_us).sum();
    out.push_str(&format!(
        "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>6}  {:>10}  {:>10}  {:>10}\n",
        "span", "count", "total_us", "self_us", "self%", "p50_us", "p99_us", "max_us",
    ));
    for s in stats {
        let pct = if total_self == 0 {
            0.0
        } else {
            100.0 * s.self_us as f64 / total_self as f64
        };
        out.push_str(&format!(
            "{:<name_w$}  {:>8}  {:>12}  {:>12}  {:>5.1}%  {:>10}  {:>10}  {:>10}\n",
            s.name, s.count, s.total_us, s.self_us, pct, s.p50_us, s.p99_us, s.max_us,
        ));
    }
    out
}

/// Renders the summary as a JSON array (machine-readable, stable field
/// order) for `tcl-trace summary --json` and `tcl-trace diff` inputs.
pub fn render_json(stats: &[NameStats]) -> String {
    let mut out = String::from("[");
    for (i, s) in stats.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"name\":\"");
        tcl_telemetry::json::escape_into(&s.name, &mut out);
        out.push_str(&format!(
            "\",\"count\":{},\"total_us\":{},\"self_us\":{},\"p50_us\":{},\"p99_us\":{},\"max_us\":{}}}",
            s.count, s.total_us, s.self_us, s.p50_us, s.p99_us, s.max_us,
        ));
    }
    out.push_str("\n]\n");
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::Trace;
    use crate::tree::SpanTree;

    fn tree_of(lines: &str) -> SpanTree {
        SpanTree::build(&Trace::parse(lines).expect("parse"))
    }

    #[test]
    fn aggregates_by_name_with_exact_quantiles() {
        let mut text = String::new();
        // 100 "step" spans of durations 1..=100 under one root.
        for i in 1..=100u64 {
            text.push_str(&format!(
                "{{\"type\":\"span\",\"name\":\"step\",\"id\":{},\"parent\":1,\"thread\":0,\"start_us\":{},\"dur_us\":{}}}\n",
                i + 1,
                i * 200,
                i,
            ));
        }
        text.push_str(
            "{\"type\":\"span\",\"name\":\"run\",\"id\":1,\"parent\":null,\"thread\":0,\"start_us\":0,\"dur_us\":30000}\n",
        );
        let stats = summarize(&tree_of(&text));
        assert_eq!(stats.len(), 2);
        // run self = 30000 - sum(1..=100) = 30000 - 5050
        assert_eq!(stats[0].name, "run");
        assert_eq!(stats[0].self_us, 30000 - 5050);
        let step = &stats[1];
        assert_eq!(step.count, 100);
        assert_eq!(step.total_us, 5050);
        assert_eq!(step.self_us, 5050);
        assert_eq!(step.p50_us, 50);
        assert_eq!(step.p99_us, 99);
        assert_eq!(step.max_us, 100);
    }

    #[test]
    fn renders_table_and_json_deterministically() {
        let text = concat!(
            "{\"type\":\"span\",\"name\":\"b\",\"id\":2,\"parent\":1,\"thread\":0,\"start_us\":0,\"dur_us\":30}\n",
            "{\"type\":\"span\",\"name\":\"a\",\"id\":1,\"parent\":null,\"thread\":0,\"start_us\":0,\"dur_us\":100}\n",
        );
        let stats = summarize(&tree_of(text));
        let table = render_table(&stats);
        assert!(table.starts_with("span"));
        assert!(table.contains("a"));
        assert!(table.contains("70")); // a's self time
        let json = render_json(&stats);
        // Round-trips through the telemetry parser.
        let value = tcl_telemetry::json::parse_line(json.trim()).expect("valid json");
        let arr = value.as_array().expect("array");
        assert_eq!(arr.len(), 2);
        assert_eq!(arr[0].get("name").and_then(|v| v.as_str()), Some("a"));
        assert_eq!(arr[0].get("self_us").and_then(|v| v.as_u64()), Some(70));
    }
}
