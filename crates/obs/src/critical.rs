//! Critical path: the root-to-leaf chain with the largest total self time.
//!
//! This answers "what single sequence of work bounded this run" — the
//! chain a perfect parallelization of everything else would still have to
//! wait for. Computed by dynamic programming over the span forest:
//! `best(n) = self(n) + max(best(child))`, ties broken toward the earlier
//! start offset (then smaller id) so the result is deterministic.

use crate::tree::SpanTree;

/// One step on the critical path.
#[derive(Debug, Clone, PartialEq)]
pub struct CriticalStep {
    /// Span name.
    pub name: String,
    /// Span id.
    pub id: u64,
    /// Telemetry thread id.
    pub thread: u64,
    /// Span duration (µs).
    pub dur_us: u64,
    /// Span self time (µs) — this step's contribution to the path total.
    pub self_us: u64,
}

/// The longest self-time chain through a trace.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct CriticalPath {
    /// Steps from root to leaf.
    pub steps: Vec<CriticalStep>,
    /// Sum of step self times (µs).
    pub total_us: u64,
}

/// Computes the critical path of a span forest. Returns an empty path for
/// an empty forest.
pub fn critical_path(tree: &SpanTree) -> CriticalPath {
    let n = tree.nodes.len();
    if n == 0 {
        return CriticalPath::default();
    }
    // best[i] = max total self time of any chain starting at node i;
    // pick[i] = the child continuing that chain. Children always precede
    // parents in trace order (RAII close order), so a single forward pass
    // visits every child before its parent — no recursion, no stack
    // overflow on deep trees.
    let mut best = vec![0u64; n];
    let mut pick: Vec<Option<usize>> = vec![None; n];
    for i in 0..n {
        let node = &tree.nodes[i];
        let mut chain = 0u64;
        let mut chosen: Option<usize> = None;
        for &c in &node.children {
            if c >= i {
                // Out-of-order child (corrupt trace); skip rather than
                // read an uncomputed entry.
                continue;
            }
            let take = match chosen {
                None => true,
                Some(cur) => {
                    let key = (tree.nodes[c].span.start_us, tree.nodes[c].span.id);
                    let cur_key = (tree.nodes[cur].span.start_us, tree.nodes[cur].span.id);
                    best[c] > chain || (best[c] == chain && key < cur_key)
                }
            };
            if take {
                chain = best[c];
                chosen = Some(c);
            }
        }
        best[i] = node.self_us + chain;
        pick[i] = chosen;
    }
    // Best root, same tie-break.
    let mut root = match tree.roots.first() {
        Some(&r) => r,
        None => return CriticalPath::default(),
    };
    for &r in &tree.roots {
        let key = (tree.nodes[r].span.start_us, tree.nodes[r].span.id);
        let root_key = (tree.nodes[root].span.start_us, tree.nodes[root].span.id);
        if best[r] > best[root] || (best[r] == best[root] && key < root_key) {
            root = r;
        }
    }
    let mut steps = Vec::new();
    let mut cursor = Some(root);
    while let Some(i) = cursor {
        let node = &tree.nodes[i];
        steps.push(CriticalStep {
            name: node.span.name.clone(),
            id: node.span.id,
            thread: node.span.thread,
            dur_us: node.span.dur_us,
            self_us: node.self_us,
        });
        cursor = pick[i];
    }
    CriticalPath {
        total_us: best[root],
        steps,
    }
}

/// Renders the path as an indented text report.
pub fn render(path: &CriticalPath) -> String {
    let mut out = format!(
        "critical path: {} us across {} span(s)\n",
        path.total_us,
        path.steps.len()
    );
    for (depth, step) in path.steps.iter().enumerate() {
        let pct = if path.total_us == 0 {
            0.0
        } else {
            100.0 * step.self_us as f64 / path.total_us as f64
        };
        out.push_str(&format!(
            "{:indent$}{} self={}us ({:.1}%) dur={}us thread={} id={}\n",
            "",
            step.name,
            step.self_us,
            pct,
            step.dur_us,
            step.thread,
            step.id,
            indent = depth * 2,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::load::Trace;
    use crate::tree::SpanTree;

    fn tree_of(lines: &str) -> SpanTree {
        SpanTree::build(&Trace::parse(lines).expect("parse"))
    }

    #[test]
    fn follows_the_heavier_branch() {
        // root(self 10) -> a(self 5) -> a1(self 50)
        //              \-> b(self 40)
        let text = concat!(
            "{\"type\":\"span\",\"name\":\"a1\",\"id\":3,\"parent\":2,\"thread\":0,\"start_us\":10,\"dur_us\":50}\n",
            "{\"type\":\"span\",\"name\":\"a\",\"id\":2,\"parent\":1,\"thread\":0,\"start_us\":5,\"dur_us\":55}\n",
            "{\"type\":\"span\",\"name\":\"b\",\"id\":4,\"parent\":1,\"thread\":0,\"start_us\":60,\"dur_us\":40}\n",
            "{\"type\":\"span\",\"name\":\"root\",\"id\":1,\"parent\":null,\"thread\":0,\"start_us\":0,\"dur_us\":105}\n",
        );
        let path = critical_path(&tree_of(text));
        let names: Vec<&str> = path.steps.iter().map(|s| s.name.as_str()).collect();
        assert_eq!(names, vec!["root", "a", "a1"]);
        assert_eq!(path.total_us, 10 + 5 + 50);
        let report = render(&path);
        assert!(report.contains("critical path: 65 us"));
        assert!(report.contains("a1"));
    }

    #[test]
    fn ties_break_toward_earlier_start() {
        let text = concat!(
            "{\"type\":\"span\",\"name\":\"late\",\"id\":3,\"parent\":1,\"thread\":0,\"start_us\":50,\"dur_us\":20}\n",
            "{\"type\":\"span\",\"name\":\"early\",\"id\":2,\"parent\":1,\"thread\":0,\"start_us\":10,\"dur_us\":20}\n",
            "{\"type\":\"span\",\"name\":\"root\",\"id\":1,\"parent\":null,\"thread\":0,\"start_us\":0,\"dur_us\":100}\n",
        );
        let path = critical_path(&tree_of(text));
        assert_eq!(path.steps[1].name, "early");
    }

    #[test]
    fn empty_trace_yields_empty_path() {
        let path = critical_path(&tree_of(""));
        assert!(path.steps.is_empty());
        assert_eq!(path.total_us, 0);
    }
}
