//! `tcl-trace`: post-hoc analysis of `TCL_TRACE` JSONL traces.
//!
//! ```text
//! tcl-trace summary run.jsonl            # per-span-name time table
//! tcl-trace summary --json run.jsonl    # same, machine-readable
//! tcl-trace flame run.jsonl             # folded stacks (stackcollapse)
//! tcl-trace flame --svg run.jsonl      # self-contained SVG flamegraph
//! tcl-trace critical-path run.jsonl     # longest self-time chain
//! tcl-trace diff base.jsonl new.jsonl   # per-span-name deltas
//! ```
//!
//! Exit codes: 0 success; 1 `diff` found a regression; 2 usage, I/O, or
//! parse error.

use std::path::{Path, PathBuf};
use std::process::ExitCode;
use tcl_obs::{critical, diff, flame, summary, ObsError, SpanTree, Trace};

const USAGE: &str = "\
tcl-trace: analyze TCL_TRACE JSONL traces

USAGE:
    tcl-trace summary [--json] <trace.jsonl>
    tcl-trace flame [--svg] <trace.jsonl>
    tcl-trace critical-path <trace.jsonl>
    tcl-trace diff [--threshold <ratio>] [--min-us <us>] <base.jsonl> <new.jsonl>
    tcl-trace --help

SUBCOMMANDS:
    summary        Per-span-name count, total/self time, p50/p99/max.
    flame          Folded stacks (default) or a self-contained SVG
                   flamegraph (--svg), aggregated by call path.
    critical-path  The root-to-leaf chain with the largest total self
                   time: the sequence a perfect parallelization would
                   still wait for.
    diff           Compare two runs per span name. Exits 1 if any name's
                   self time grew by --threshold x or more (default 1.5)
                   over a base of at least --min-us (default 1000), or a
                   new name appeared at --min-us or more.

Traces are produced by running any tcl binary with TCL_TRACE=<path>
(optionally capped via TCL_TRACE_MAX_MB). Exit codes: 0 ok, 1 diff
regression, 2 usage/io/parse error.
";

struct Usage(String);

fn fail<T>(msg: impl Into<String>) -> Result<T, Usage> {
    Err(Usage(msg.into()))
}

fn load_tree(path: &Path) -> Result<(Trace, SpanTree), ObsError> {
    let trace = Trace::load(path)?;
    let tree = SpanTree::build(&trace);
    Ok((trace, tree))
}

fn note_dropped(path: &Path, trace: &Trace) {
    let dropped = trace.dropped();
    if dropped > 0 {
        eprintln!(
            "note: {} is a truncated trace ({dropped} event(s) dropped by TCL_TRACE_MAX_MB); \
             times cover the captured prefix only",
            path.display(),
        );
    }
}

fn run() -> Result<Result<ExitCode, ObsError>, Usage> {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let mut positional: Vec<PathBuf> = Vec::new();
    let mut json = false;
    let mut svg = false;
    let mut threshold = 1.5f64;
    let mut min_us = 1000u64;
    let Some((cmd, rest)) = args.split_first() else {
        return fail("missing subcommand");
    };
    if cmd == "--help" || cmd == "-h" || cmd == "help" {
        print!("{USAGE}");
        return Ok(Ok(ExitCode::SUCCESS));
    }
    let mut it = rest.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--help" | "-h" => {
                print!("{USAGE}");
                return Ok(Ok(ExitCode::SUCCESS));
            }
            "--json" => json = true,
            "--svg" => svg = true,
            "--threshold" => {
                let Some(v) = it.next().and_then(|v| v.parse::<f64>().ok()) else {
                    return fail("--threshold requires a number");
                };
                if !(v.is_finite() && v > 0.0) {
                    return fail("--threshold must be positive and finite");
                }
                threshold = v;
            }
            "--min-us" => {
                let Some(v) = it.next().and_then(|v| v.parse::<u64>().ok()) else {
                    return fail("--min-us requires a non-negative integer");
                };
                min_us = v;
            }
            flag if flag.starts_with('-') => return fail(format!("unknown flag {flag:?}")),
            path => positional.push(PathBuf::from(path)),
        }
    }
    let want = |n: usize| -> Result<(), Usage> {
        if positional.len() == n {
            Ok(())
        } else {
            fail(format!(
                "{cmd} takes {n} trace file(s), got {}",
                positional.len()
            ))
        }
    };
    Ok(match cmd.as_str() {
        "summary" => {
            want(1)?;
            load_tree(&positional[0]).map(|(trace, tree)| {
                note_dropped(&positional[0], &trace);
                let stats = summary::summarize(&tree);
                if json {
                    print!("{}", summary::render_json(&stats));
                } else {
                    print!("{}", summary::render_table(&stats));
                }
                ExitCode::SUCCESS
            })
        }
        "flame" => {
            want(1)?;
            load_tree(&positional[0]).map(|(trace, tree)| {
                note_dropped(&positional[0], &trace);
                if svg {
                    print!("{}", flame::svg(&tree));
                } else {
                    print!("{}", flame::folded(&tree));
                }
                ExitCode::SUCCESS
            })
        }
        "critical-path" => {
            want(1)?;
            load_tree(&positional[0]).map(|(trace, tree)| {
                note_dropped(&positional[0], &trace);
                print!("{}", critical::render(&critical::critical_path(&tree)));
                ExitCode::SUCCESS
            })
        }
        "diff" => {
            want(2)?;
            let run_diff = || -> Result<ExitCode, ObsError> {
                let (base_trace, base_tree) = load_tree(&positional[0])?;
                let (new_trace, new_tree) = load_tree(&positional[1])?;
                note_dropped(&positional[0], &base_trace);
                note_dropped(&positional[1], &new_trace);
                let report = diff::diff_summaries(
                    &summary::summarize(&base_tree),
                    &summary::summarize(&new_tree),
                    threshold,
                    min_us,
                );
                print!("{}", diff::render(&report));
                if report.regressions > 0 {
                    Ok(ExitCode::FAILURE)
                } else {
                    Ok(ExitCode::SUCCESS)
                }
            };
            run_diff()
        }
        other => return fail(format!("unknown subcommand {other:?}")),
    })
}

fn main() -> ExitCode {
    match run() {
        Ok(Ok(code)) => code,
        Ok(Err(e)) => {
            eprintln!("tcl-trace: {e}");
            ExitCode::from(2)
        }
        Err(Usage(msg)) => {
            eprintln!("tcl-trace: {msg}\n");
            eprint!("{USAGE}");
            ExitCode::from(2)
        }
    }
}
