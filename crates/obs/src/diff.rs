//! Run diff: compare two trace summaries span-name by span-name and flag
//! regressions. `tcl-trace diff` exits non-zero when any name regresses,
//! which makes it a one-line CI perf gate:
//!
//! ```text
//! tcl-trace diff baseline.jsonl current.jsonl --threshold 1.5
//! ```

use crate::summary::NameStats;

/// Comparison of one span name across two runs.
#[derive(Debug, Clone, PartialEq)]
pub struct DiffRow {
    /// Span name.
    pub name: String,
    /// Self time in the base run (µs); 0 if the name is new.
    pub base_self_us: u64,
    /// Self time in the new run (µs); 0 if the name disappeared.
    pub new_self_us: u64,
    /// Span count in the base run.
    pub base_count: u64,
    /// Span count in the new run.
    pub new_count: u64,
    /// `new_self / base_self`; infinity for new names with nonzero time.
    pub ratio: f64,
    /// Whether this row trips the regression threshold.
    pub regressed: bool,
}

/// The full comparison.
#[derive(Debug, Clone, Default, PartialEq)]
pub struct DiffReport {
    /// One row per span name present in either run, sorted by the change
    /// in self time (most-regressed first), then name.
    pub rows: Vec<DiffRow>,
    /// Number of regressed rows.
    pub regressions: usize,
    /// Total self time of the base run (µs).
    pub base_total_us: u64,
    /// Total self time of the new run (µs).
    pub new_total_us: u64,
}

/// Compares two summaries.
///
/// A name regresses when `new_self >= threshold * base_self` and the base
/// self time is at least `min_us` (noise floor: a span going from 3 µs to
/// 9 µs is jitter, not a regression). A name absent from the base run
/// regresses when its new self time alone reaches `min_us` — new hot code
/// should not slip past the gate just because there is nothing to compare
/// it against.
pub fn diff_summaries(
    base: &[NameStats],
    new: &[NameStats],
    threshold: f64,
    min_us: u64,
) -> DiffReport {
    let mut names: Vec<&str> = base
        .iter()
        .chain(new.iter())
        .map(|s| s.name.as_str())
        .collect();
    names.sort_unstable();
    names.dedup();
    let find = |set: &[NameStats], name: &str| set.iter().find(|s| s.name == name).cloned();
    let mut rows = Vec::with_capacity(names.len());
    for name in names {
        let b = find(base, name);
        let n = find(new, name);
        let base_self_us = b.as_ref().map_or(0, |s| s.self_us);
        let new_self_us = n.as_ref().map_or(0, |s| s.self_us);
        let ratio = if base_self_us > 0 {
            new_self_us as f64 / base_self_us as f64
        } else if new_self_us > 0 {
            f64::INFINITY
        } else {
            1.0
        };
        let regressed = if b.is_some() {
            base_self_us >= min_us && ratio >= threshold
        } else {
            new_self_us >= min_us
        };
        rows.push(DiffRow {
            name: name.to_string(),
            base_self_us,
            new_self_us,
            base_count: b.as_ref().map_or(0, |s| s.count),
            new_count: n.as_ref().map_or(0, |s| s.count),
            ratio,
            regressed,
        });
    }
    rows.sort_by(|a, b| {
        let delta = |r: &DiffRow| r.new_self_us as i128 - r.base_self_us as i128;
        delta(b).cmp(&delta(a)).then_with(|| a.name.cmp(&b.name))
    });
    DiffReport {
        regressions: rows.iter().filter(|r| r.regressed).count(),
        base_total_us: base.iter().map(|s| s.self_us).sum(),
        new_total_us: new.iter().map(|s| s.self_us).sum(),
        rows,
    }
}

/// Renders the report as an aligned text table; regressed rows are marked
/// with `!!`.
pub fn render(report: &DiffReport) -> String {
    let name_w = report
        .rows
        .iter()
        .map(|r| r.name.len())
        .chain(std::iter::once("span".len()))
        .max()
        .unwrap_or(4);
    let mut out = format!(
        "total self time: {} us -> {} us ({} regression(s))\n",
        report.base_total_us, report.new_total_us, report.regressions,
    );
    out.push_str(&format!(
        "{:<name_w$}  {:>12}  {:>12}  {:>8}  {:>9}  {:>9}\n",
        "span", "base_us", "new_us", "ratio", "base_n", "new_n",
    ));
    for r in &report.rows {
        let flag = if r.regressed { " !!" } else { "" };
        let ratio = if r.ratio.is_finite() {
            format!("{:.2}x", r.ratio)
        } else {
            "new".to_string()
        };
        out.push_str(&format!(
            "{:<name_w$}  {:>12}  {:>12}  {:>8}  {:>9}  {:>9}{flag}\n",
            r.name, r.base_self_us, r.new_self_us, ratio, r.base_count, r.new_count,
        ));
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn stats(name: &str, self_us: u64, count: u64) -> NameStats {
        NameStats {
            name: name.to_string(),
            count,
            total_us: self_us,
            self_us,
            p50_us: self_us / count.max(1),
            p99_us: self_us / count.max(1),
            max_us: self_us / count.max(1),
        }
    }

    #[test]
    fn flags_regressions_above_threshold_and_floor() {
        let base = vec![
            stats("hot", 10_000, 5),
            stats("tiny", 3, 1),
            stats("gone", 500, 1),
        ];
        let new = vec![
            stats("hot", 25_000, 5),
            stats("tiny", 9, 1),
            stats("fresh", 2_000, 1),
        ];
        let report = diff_summaries(&base, &new, 1.5, 100);
        // hot: 2.5x over a 10ms base → regressed.
        // tiny: 3x but under the 100us floor → not regressed.
        // gone: disappeared → improvement, not regression.
        // fresh: new and over the floor → regressed.
        let by_name = |n: &str| {
            report
                .rows
                .iter()
                .find(|r| r.name == n)
                .cloned()
                .expect("row")
        };
        assert!(by_name("hot").regressed);
        assert!(!by_name("tiny").regressed);
        assert!(!by_name("gone").regressed);
        assert!(by_name("fresh").regressed);
        assert!(by_name("fresh").ratio.is_infinite());
        assert_eq!(report.regressions, 2);
        // Sorted by delta: hot (+15000) first.
        assert_eq!(report.rows[0].name, "hot");
        let text = render(&report);
        assert!(text.contains("2 regression(s)"));
        assert!(text.contains("!!"));
        assert!(text.contains("new"));
    }

    #[test]
    fn self_comparison_is_clean() {
        let base = vec![stats("a", 1_000, 2), stats("b", 50, 1)];
        let report = diff_summaries(&base, &base, 1.5, 100);
        assert_eq!(report.regressions, 0);
        assert!(report.rows.iter().all(|r| (r.ratio - 1.0).abs() < 1e-12));
        assert_eq!(report.base_total_us, report.new_total_us);
    }
}
