//! Golden tests over a committed fixture: a real `TCL_TRACE` capture from
//! a quick `table1` run (CIFAR-10 synthetic scale, `TCL_THREADS=2`,
//! `TCL_TRACE_MAX_MB=1` so the capture is a bounded prefix with a
//! `dropped` marker).
//!
//! Analysis output is a pure function of the trace, so the folded stacks
//! and critical path are compared byte-for-byte against committed
//! expectations; the SVG is checked structurally (valid frame count,
//! determinism, escaping) rather than byte-wise so cosmetic renderer
//! tweaks don't require a fixture churn.

use std::path::PathBuf;
use tcl_obs::{critical, flame, summary, SpanTree, Trace};

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(name)
}

fn load_fixture_tree() -> (Trace, SpanTree) {
    let trace = Trace::load(&fixture("fixtures/table1_quick.jsonl")).expect("fixture parses");
    let tree = SpanTree::build(&trace);
    (trace, tree)
}

#[test]
fn fixture_is_a_real_capped_capture() {
    let (trace, tree) = load_fixture_tree();
    // The run was capped at 1 MiB, so the trace must carry the marker and
    // a substantial span population.
    assert!(trace.dropped() > 0, "fixture should be a capped capture");
    assert!(tree.nodes.len() > 1000, "got {} spans", tree.nodes.len());
    assert!(!tree.roots.is_empty());
    // Parent propagation across thread::scope is visible: at least one
    // span's parent lives on a different thread.
    let cross = tree.nodes.iter().any(|n| {
        n.children
            .iter()
            .any(|&c| tree.nodes[c].span.thread != n.span.thread)
    });
    assert!(cross, "expected cross-thread parent/child links");
}

#[test]
fn folded_stacks_match_golden() {
    let (_, tree) = load_fixture_tree();
    let expected = std::fs::read_to_string(fixture("golden/table1_quick.folded")).expect("golden");
    assert_eq!(flame::folded(&tree), expected);
}

#[test]
fn critical_path_matches_golden() {
    let (_, tree) = load_fixture_tree();
    let expected =
        std::fs::read_to_string(fixture("golden/table1_quick.critical")).expect("golden");
    assert_eq!(critical::render(&critical::critical_path(&tree)), expected);
}

#[test]
fn svg_renders_structurally() {
    let (_, tree) = load_fixture_tree();
    let a = flame::svg(&tree);
    let b = flame::svg(&tree);
    assert_eq!(a, b, "SVG must be deterministic");
    assert!(a.starts_with("<svg"));
    assert!(a.trim_end().ends_with("</svg>"));
    // One <rect> per folded path (frames merge by call path).
    let folded_paths = flame::folded(&tree).lines().count();
    let rects = a.matches("<rect").count();
    assert!(
        rects >= folded_paths,
        "{rects} rects for {folded_paths} folded paths"
    );
    assert!(
        a.matches("<title>").count() == rects,
        "every frame has a tooltip"
    );
}

#[test]
fn summary_accounts_for_every_span() {
    let (_, tree) = load_fixture_tree();
    let stats = summary::summarize(&tree);
    let counted: u64 = stats.iter().map(|s| s.count).sum();
    assert_eq!(counted as usize, tree.nodes.len());
    // Self time is conserved: per-name self sums equal the tree total.
    let self_sum: u64 = stats.iter().map(|s| s.self_us).sum();
    assert_eq!(self_sum, tree.total_self_us());
    // The summary JSON round-trips through the telemetry parser.
    let json = summary::render_json(&stats);
    let value = tcl_telemetry::json::parse_line(json.trim()).expect("valid json");
    assert_eq!(
        value.as_array().map(|a| a.len()),
        Some(stats.len()),
        "one JSON object per span name"
    );
}

#[test]
fn diff_against_self_is_clean_and_scaled_copy_regresses() {
    let (_, tree) = load_fixture_tree();
    let stats = summary::summarize(&tree);
    let clean = tcl_obs::diff_summaries(&stats, &stats, 1.5, 1000);
    assert_eq!(clean.regressions, 0);
    // Inject a 2x regression on the hottest span name.
    let mut slowed = stats.clone();
    slowed[0].self_us *= 2;
    let report = tcl_obs::diff_summaries(&stats, &slowed, 1.5, 1000);
    assert!(report.regressions >= 1);
    assert!(
        report.rows[0].regressed,
        "hottest row sorts first and is flagged"
    );
}
