//! Property test: the telemetry *emitter* and the obs *parser* are the
//! same grammar. Events emitted through the real `tcl-telemetry` API
//! (captured via `test_support::with_captured`) must parse back through
//! `Trace::parse` with every value intact — counters exactly, finite
//! floats exactly (shortest-round-trip formatting), non-finite floats as
//! NaN (JSON has no Inf/NaN literals; the emitter writes `null`), and log
//! strings byte-for-byte through escaping, including control characters
//! and multi-byte UTF-8.

use proptest::prelude::*;
use tcl_obs::{Trace, TraceEvent};
use tcl_telemetry::test_support::{reset_metrics, with_captured};

/// What a float should look like after an emit→parse round trip.
fn expect_f64(v: f64) -> f64 {
    if v.is_finite() {
        v
    } else {
        f64::NAN
    }
}

fn same_f64(a: f64, b: f64) -> bool {
    (a.is_nan() && b.is_nan()) || a == b
}

/// Characters the log-message strategy draws from: ASCII, JSON-special,
/// control, and multi-byte UTF-8 (2, 3, and 4 byte sequences).
const PALETTE: [char; 12] = [
    'a', 'Z', '"', '\\', '\n', '\t', '\r', '\u{1}', ' ', 'λ', '€', '𝄞',
];

/// Maps a gauge selector to a possibly non-finite value.
fn gauge_value(base: f64, selector: u32) -> f64 {
    match selector {
        0 => f64::NAN,
        1 => f64::INFINITY,
        2 => f64::NEG_INFINITY,
        _ => base,
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    #[test]
    fn emitted_events_round_trip_through_the_parser(
        counter in 0u64..1_000_000_000,
        gauge_pair in (-1.0e12f64..1.0e12, 0u32..8),
        samples in prop::collection::vec(0.0f64..1.5, 1..24),
        attr in -1.0e9f64..1.0e9,
        msg_indices in prop::collection::vec(0usize..PALETTE.len(), 0..32),
    ) {
        let message: String = msg_indices.iter().map(|&i| PALETTE[i]).collect();
        let (gauge_base, gauge_sel) = gauge_pair;
        let gauge = gauge_value(gauge_base, gauge_sel);
        let (_, lines) = with_captured(|| {
            reset_metrics();
            {
                let _outer = tcl_telemetry::span_with("rt.outer", || vec![("rt_attr", attr)]);
                let _inner = tcl_telemetry::span("rt.inner");
            }
            tcl_telemetry::log("rt", &message);
            tcl_telemetry::counter_add("rt.counter", counter);
            tcl_telemetry::gauge_set("rt.gauge", gauge);
            for &s in &samples {
                tcl_telemetry::hist_record("rt.hist", s, 1.0, 8);
            }
            tcl_telemetry::write_metrics_snapshot();
        });
        let trace = Trace::parse(&lines.join("\n"))
            .unwrap_or_else(|e| panic!("emitted lines must parse: {e}\n{}", lines.join("\n")));
        prop_assert_eq!(trace.unknown_types, 0);

        // Spans: both present, inner parented under outer, attr intact.
        let spans: Vec<_> = trace.spans().collect();
        prop_assert_eq!(spans.len(), 2);
        let inner = spans[0]; // RAII close order: inner first
        let outer = spans[1];
        prop_assert_eq!(inner.name.as_str(), "rt.inner");
        prop_assert_eq!(outer.name.as_str(), "rt.outer");
        prop_assert_eq!(inner.parent, Some(outer.id));
        prop_assert_eq!(outer.attrs.len(), 1);
        prop_assert!(same_f64(outer.attrs[0].1, expect_f64(attr)));

        // Log: the message survives escaping byte-for-byte.
        let log = trace.events.iter().find_map(|e| match e {
            TraceEvent::Log { component, message } if component == "rt" => Some(message.clone()),
            _ => None,
        });
        prop_assert_eq!(log, Some(message));

        // Counter: exact.
        prop_assert!(trace.events.iter().any(|e| matches!(
            e,
            TraceEvent::Counter { name, value }
                if name == "rt.counter" && *value == counter
        )));

        // Gauge: finite exactly, non-finite as NaN.
        let gauge_rt = trace.events.iter().find_map(|e| match e {
            TraceEvent::Gauge { name, last, .. } if name == "rt.gauge" => Some(*last),
            _ => None,
        });
        match gauge_rt {
            Some(last) => prop_assert!(
                same_f64(last, expect_f64(gauge)),
                "gauge {} round-tripped to {}",
                gauge,
                last
            ),
            None => prop_assert!(false, "gauge event missing"),
        }

        // Histogram: bucket counts and totals are integers — exact.
        let hist = trace.events.iter().find_map(|e| match e {
            TraceEvent::Hist { name, total, counts, .. } if name == "rt.hist" => {
                Some((*total, counts.clone()))
            }
            _ => None,
        });
        match hist {
            Some((total, counts)) => {
                prop_assert_eq!(total, samples.len() as u64);
                prop_assert_eq!(counts.iter().sum::<u64>(), samples.len() as u64);
            }
            None => prop_assert!(false, "hist event missing"),
        }
    }
}
