//! Live-exporter integration: run a real SNN engine evaluation with
//! metrics enabled, scrape the exporter over raw TCP, and check that the
//! engine heartbeat gauges come back as valid Prometheus text.

use std::io::{Read, Write};
use std::net::TcpStream;
use std::sync::Arc;
use tcl_snn::{
    Engine, ExitPolicy, IfNeurons, Readout, ResetMode, SimConfig, SpikingLayer, SpikingNetwork,
    SpikingNode, SynapticOp,
};
use tcl_telemetry::test_support::{reset_metrics, with_captured};
use tcl_tensor::SeededRng;

/// A small random two-layer spiking MLP: 12 inputs -> 16 hidden -> 4 out.
fn toy_snn(rng: &mut SeededRng) -> SpikingNetwork {
    let layer = |w: tcl_tensor::Tensor| {
        SpikingNode::Spiking(SpikingLayer::new(
            SynapticOp::Linear {
                weight: w,
                bias: None,
            },
            IfNeurons::new(1.0, ResetMode::Subtract),
        ))
    };
    SpikingNetwork::new(vec![
        layer(rng.uniform_tensor([16, 12], -0.4, 0.6)),
        layer(rng.uniform_tensor([4, 16], -0.4, 0.6)),
    ])
}

fn fetch(addr: std::net::SocketAddr, path: &str) -> (String, String) {
    let mut conn = TcpStream::connect(addr).expect("connect exporter");
    conn.write_all(format!("GET {path} HTTP/1.1\r\nHost: t\r\n\r\n").as_bytes())
        .expect("send request");
    let mut response = String::new();
    conn.read_to_string(&mut response).expect("read response");
    let (head, body) = response
        .split_once("\r\n\r\n")
        .expect("well-formed response");
    (head.to_string(), body.to_string())
}

/// Minimal structural validation of Prometheus text exposition: every
/// non-comment line is `name[{labels}] value`, every family has exactly
/// one `# TYPE`, and every sample's family is declared before use.
fn assert_valid_prometheus(body: &str) {
    let mut declared: Vec<String> = Vec::new();
    for line in body.lines() {
        if line.is_empty() {
            continue;
        }
        if let Some(rest) = line.strip_prefix("# TYPE ") {
            let mut parts = rest.split_whitespace();
            let family = parts.next().expect("family name");
            let kind = parts.next().expect("family kind");
            assert!(
                matches!(kind, "counter" | "gauge" | "histogram"),
                "unknown kind in {line:?}"
            );
            assert!(
                !declared.contains(&family.to_string()),
                "family {family} declared twice"
            );
            declared.push(family.to_string());
            continue;
        }
        assert!(!line.starts_with('#'), "unexpected comment {line:?}");
        let (name_part, value) = line.rsplit_once(' ').expect("sample has value");
        let name = name_part.split('{').next().expect("sample name");
        assert!(
            name.chars().all(|c| c.is_ascii_alphanumeric() || c == '_'),
            "unsanitized name {name:?}"
        );
        assert!(name.starts_with("tcl_"), "missing prefix on {name:?}");
        assert!(
            declared.iter().any(|f| name == *f
                || name.strip_prefix(f.as_str()).is_some_and(|suffix| matches!(
                    suffix,
                    "_bucket" | "_sum" | "_count" | "_min" | "_max"
                ))),
            "sample {name} has no TYPE declaration"
        );
        assert!(
            value == "NaN" || value == "+Inf" || value == "-Inf" || value.parse::<f64>().is_ok(),
            "bad sample value {value:?}"
        );
    }
    assert!(!declared.is_empty(), "no metric families in scrape");
}

#[test]
fn live_engine_run_is_scrapable() {
    // Capture context enables metrics; the registry is process-global, so
    // the exporter sees what the engine writes.
    let ((), _lines) = with_captured(|| {
        reset_metrics();
        let mut rng = SeededRng::new(7);
        let net = toy_snn(&mut rng);
        let images = rng.uniform_tensor([24, 12], 0.0, 1.0);
        let labels: Vec<usize> = (0..24).map(|i| i % 4).collect();
        let sim = SimConfig::new(vec![8, 16], 8, Readout::SpikeCount).expect("valid config");
        let mut engine = Engine::with_threads(2);
        let exporter = tcl_obs::serve("127.0.0.1:0").expect("bind exporter");
        let addr = exporter.addr();

        engine
            .evaluate_shared(
                &Arc::new(net),
                &images,
                &labels,
                &sim,
                ExitPolicy::Adaptive {
                    patience: 2,
                    min_margin: 0.0,
                    min_steps: 2,
                },
            )
            .expect("engine evaluation");

        // /metrics: valid Prometheus carrying the engine heartbeats.
        let (head, body) = fetch(addr, "/metrics");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("text/plain; version=0.0.4"));
        assert_valid_prometheus(&body);
        for gauge in [
            "tcl_engine_steps_per_sec",
            "tcl_engine_early_exit_rate",
            "tcl_engine_active_lanes",
        ] {
            assert!(
                body.contains(&format!("# TYPE {gauge} gauge")),
                "missing {gauge} in:\n{body}"
            );
        }
        assert!(body.contains("tcl_engine_samples 24"));
        assert!(body.contains("# TYPE tcl_snn_firing_rate histogram"));

        // The early-exit rate gauge is a real rate in [0, 1].
        let rate_line = body
            .lines()
            .find(|l| l.starts_with("tcl_engine_early_exit_rate "))
            .expect("rate sample");
        let rate: f64 = rate_line
            .rsplit_once(' ')
            .and_then(|(_, v)| v.parse().ok())
            .expect("numeric rate");
        assert!((0.0..=1.0).contains(&rate), "rate {rate}");

        // /healthz and /summary.
        let (head, body) = fetch(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert_eq!(body, "ok\n");
        let (head, body) = fetch(addr, "/summary");
        assert!(head.starts_with("HTTP/1.1 200"), "{head}");
        assert!(head.contains("application/json"));
        let value = tcl_telemetry::json::parse_line(body.trim()).expect("summary is valid JSON");
        let metrics = value
            .get("metrics")
            .and_then(|m| m.as_array())
            .expect("metrics array");
        assert!(metrics
            .iter()
            .any(|m| m.get("name").and_then(|n| n.as_str()) == Some("engine.steps_per_sec")));

        // Unknown path 404s without tearing the server down.
        let (head, _) = fetch(addr, "/nope");
        assert!(head.starts_with("HTTP/1.1 404"));
        let (head, _) = fetch(addr, "/healthz");
        assert!(head.starts_with("HTTP/1.1 200"));

        exporter.shutdown();
    });
}
