//! Sequential network container.

use crate::error::{NnError, Result};
use crate::layer::{Layer, Mode};
use crate::param::Param;
use serde::{Deserialize, Serialize};
use tcl_tensor::Tensor;

/// A feed-forward network: an ordered sequence of [`Layer`]s.
///
/// Residual topologies are expressed through the composite
/// [`crate::layers::ResidualBlock`] layer, so the top level stays a simple
/// sequence — which is exactly the structure the ANN-to-SNN converter walks.
///
/// # Examples
///
/// ```
/// use tcl_nn::{Layer, Mode, Network};
/// use tcl_nn::layers::{Clip, Linear, Relu};
/// use tcl_tensor::{SeededRng, Tensor};
///
/// let mut rng = SeededRng::new(0);
/// let net = Network::new(vec![
///     Layer::Linear(Linear::new(4, 8, true, &mut rng)?),
///     Layer::Relu(Relu::new()),
///     Layer::Clip(Clip::new(2.0)),
///     Layer::Linear(Linear::new(8, 3, true, &mut rng)?),
/// ]);
/// let mut net = net;
/// let x = rng.uniform_tensor([2, 4], -1.0, 1.0);
/// assert_eq!(net.forward(&x, Mode::Eval)?.dims(), &[2, 3]);
/// # Ok::<(), tcl_nn::NnError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Network {
    layers: Vec<Layer>,
}

impl Network {
    /// Creates a network from an ordered list of layers.
    pub fn new(layers: Vec<Layer>) -> Self {
        Network { layers }
    }

    /// The layers, in forward order.
    pub fn layers(&self) -> &[Layer] {
        &self.layers
    }

    /// Mutable access to the layers (used by the converter's rewrites).
    pub fn layers_mut(&mut self) -> &mut Vec<Layer> {
        &mut self.layers
    }

    /// Consumes the network and returns its layers.
    pub fn into_layers(self) -> Vec<Layer> {
        self.layers
    }

    /// Number of layers.
    pub fn len(&self) -> usize {
        self.layers.len()
    }

    /// Whether the network has no layers.
    pub fn is_empty(&self) -> bool {
        self.layers.is_empty()
    }

    /// Forward pass through all layers.
    ///
    /// # Errors
    ///
    /// Propagates the first layer error encountered, annotated with the
    /// failing layer's index and kind.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        let mut x = input.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            x = layer.forward(&x, mode).map_err(|e| NnError::Graph {
                detail: format!("layer {i} ({}): {e}", layer.kind_name()),
            })?;
        }
        Ok(x)
    }

    /// Forward pass that invokes `observe(layer_index, layer, output)` after
    /// every layer — the hook used to collect activation statistics for
    /// norm-factor estimation and for regenerating the paper's Figure 1.
    ///
    /// # Errors
    ///
    /// As for [`Network::forward`].
    pub fn forward_observed<F>(
        &mut self,
        input: &Tensor,
        mode: Mode,
        mut observe: F,
    ) -> Result<Tensor>
    where
        F: FnMut(usize, &Layer, &Tensor),
    {
        let mut x = input.clone();
        for (i, layer) in self.layers.iter_mut().enumerate() {
            x = layer.forward(&x, mode).map_err(|e| NnError::Graph {
                detail: format!("layer {i} ({}): {e}", layer.kind_name()),
            })?;
            observe(i, layer, &x);
        }
        Ok(x)
    }

    /// Backward pass: pushes `grad_output` back through all layers,
    /// accumulating parameter gradients, and returns the input gradient.
    ///
    /// # Errors
    ///
    /// Returns a graph error if any layer lacks cached forward state.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mut g = grad_output.clone();
        for (i, layer) in self.layers.iter_mut().enumerate().rev() {
            g = layer.backward(&g).map_err(|e| NnError::Graph {
                detail: format!("layer {i} ({}): {e}", layer.kind_name()),
            })?;
        }
        Ok(g)
    }

    /// Visits every trainable parameter in the network.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        for layer in &mut self.layers {
            layer.visit_params(f);
        }
    }

    /// Clears all parameter gradients.
    pub fn zero_grad(&mut self) {
        self.visit_params(&mut |p| p.zero_grad());
    }

    /// Total number of trainable scalars.
    pub fn num_parameters(&mut self) -> usize {
        let mut n = 0;
        self.visit_params(&mut |p| n += p.len());
        n
    }

    /// The trained clipping bounds (λ), in forward order. For residual
    /// blocks this yields `λ_c1` then `λ_out`.
    pub fn clip_lambdas(&self) -> Vec<f32> {
        let mut out = Vec::new();
        for layer in &self.layers {
            match layer {
                Layer::Clip(c) => out.push(c.lambda_value()),
                Layer::Residual(r) => {
                    if let Some(c) = &r.clip1 {
                        out.push(c.lambda_value());
                    }
                    if let Some(c) = &r.clip_out {
                        out.push(c.lambda_value());
                    }
                }
                _ => {}
            }
        }
        out
    }
}

impl FromIterator<Layer> for Network {
    fn from_iter<I: IntoIterator<Item = Layer>>(iter: I) -> Self {
        Network::new(iter.into_iter().collect())
    }
}

impl Extend<Layer> for Network {
    fn extend<I: IntoIterator<Item = Layer>>(&mut self, iter: I) {
        self.layers.extend(iter);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layers::{Clip, Linear, Relu};
    use tcl_tensor::SeededRng;

    fn tiny_net(rng: &mut SeededRng) -> Network {
        Network::new(vec![
            Layer::Linear(Linear::new(3, 5, true, rng).unwrap()),
            Layer::Relu(Relu::new()),
            Layer::Clip(Clip::new(2.0)),
            Layer::Linear(Linear::new(5, 2, true, rng).unwrap()),
        ])
    }

    #[test]
    fn forward_produces_logits() {
        let mut rng = SeededRng::new(0);
        let mut net = tiny_net(&mut rng);
        let x = rng.uniform_tensor([4, 3], -1.0, 1.0);
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[4, 2]);
        assert!(y.is_finite());
    }

    #[test]
    fn backward_after_train_forward_succeeds() {
        let mut rng = SeededRng::new(1);
        let mut net = tiny_net(&mut rng);
        let x = rng.uniform_tensor([2, 3], -1.0, 1.0);
        let y = net.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(y.shape().clone());
        let gi = net.backward(&g).unwrap();
        assert_eq!(gi.dims(), x.dims());
    }

    #[test]
    fn backward_error_names_the_layer() {
        let mut rng = SeededRng::new(2);
        let mut net = tiny_net(&mut rng);
        let err = net.backward(&Tensor::zeros([1, 2])).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("layer 3"), "{msg}");
        assert!(msg.contains("linear"), "{msg}");
    }

    #[test]
    fn zero_grad_clears_all_gradients() {
        let mut rng = SeededRng::new(3);
        let mut net = tiny_net(&mut rng);
        let x = rng.uniform_tensor([2, 3], -1.0, 1.0);
        let y = net.forward(&x, Mode::Train).unwrap();
        net.backward(&Tensor::ones(y.shape().clone())).unwrap();
        let mut total = 0.0;
        net.visit_params(&mut |p| total += p.grad.data().iter().map(|v| v.abs()).sum::<f32>());
        assert!(total > 0.0);
        net.zero_grad();
        total = 0.0;
        net.visit_params(&mut |p| total += p.grad.data().iter().map(|v| v.abs()).sum::<f32>());
        assert_eq!(total, 0.0);
    }

    #[test]
    fn num_parameters_counts_scalars() {
        let mut rng = SeededRng::new(4);
        let mut net = tiny_net(&mut rng);
        // 3*5 + 5 + 1 (λ) + 5*2 + 2 = 33.
        assert_eq!(net.num_parameters(), 33);
    }

    #[test]
    fn clip_lambdas_reports_in_forward_order() {
        let mut rng = SeededRng::new(5);
        let net = tiny_net(&mut rng);
        assert_eq!(net.clip_lambdas(), vec![2.0]);
    }

    #[test]
    fn forward_observed_sees_every_layer() {
        let mut rng = SeededRng::new(6);
        let mut net = tiny_net(&mut rng);
        let x = rng.uniform_tensor([1, 3], 0.0, 1.0);
        let mut seen = Vec::new();
        net.forward_observed(&x, Mode::Eval, |i, layer, out| {
            seen.push((i, layer.kind_name(), out.len()));
        })
        .unwrap();
        assert_eq!(seen.len(), 4);
        assert_eq!(seen[1].1, "relu");
        assert_eq!(seen[3].2, 2);
    }

    #[test]
    fn collect_and_extend() {
        let mut rng = SeededRng::new(7);
        let mut net: Network = vec![Layer::Relu(Relu::new())].into_iter().collect();
        net.extend(vec![Layer::Linear(
            Linear::new(2, 2, false, &mut rng).unwrap(),
        )]);
        assert_eq!(net.len(), 2);
        assert!(!net.is_empty());
    }
}
