//! Training-time image augmentation.
//!
//! The reference CIFAR recipes the paper trains with use random horizontal
//! flips and small translations. Augmentation operates on `[N, C, H, W]`
//! batches just before the forward pass; it never touches evaluation data.

use crate::error::{NnError, Result};
use serde::{Deserialize, Serialize};
use tcl_tensor::{SeededRng, Tensor};

/// Configuration for batch augmentation.
///
/// # Examples
///
/// ```
/// use tcl_nn::{augment_batch, AugmentConfig};
/// use tcl_tensor::{SeededRng, Tensor};
///
/// let cfg = AugmentConfig {
///     horizontal_flip: true,
///     max_shift: 1,
/// };
/// let batch = Tensor::from_fn([2, 1, 4, 4], |i| i as f32);
/// let mut rng = SeededRng::new(0);
/// let out = augment_batch(&batch, &cfg, &mut rng)?;
/// assert_eq!(out.dims(), batch.dims());
/// # Ok::<(), tcl_nn::NnError>(())
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct AugmentConfig {
    /// Flip each image left-right with probability ½.
    pub horizontal_flip: bool,
    /// Translate each image by up to ±`max_shift` pixels in each direction
    /// (zero padding fills the exposed border).
    pub max_shift: usize,
}

impl AugmentConfig {
    /// The standard CIFAR recipe: flips plus ±2-pixel shifts.
    pub fn standard() -> Self {
        AugmentConfig {
            horizontal_flip: true,
            max_shift: 2,
        }
    }
}

/// Applies random flips/shifts to every image of a `[N, C, H, W]` batch.
///
/// Each image draws its own flip and shift; draws are consumed from `rng`
/// in a fixed order, so augmented training runs remain reproducible.
///
/// # Errors
///
/// Returns an error if `batch` is not rank 4.
pub fn augment_batch(
    batch: &Tensor,
    config: &AugmentConfig,
    rng: &mut SeededRng,
) -> Result<Tensor> {
    let (n, c, h, w) = batch.shape().as_nchw().map_err(NnError::from)?;
    let mut out = Tensor::zeros([n, c, h, w]);
    let span = 2 * config.max_shift + 1;
    for ni in 0..n {
        let flip = config.horizontal_flip && rng.uniform(0.0, 1.0) < 0.5;
        let dy = if config.max_shift > 0 {
            rng.below(span) as isize - config.max_shift as isize
        } else {
            0
        };
        let dx = if config.max_shift > 0 {
            rng.below(span) as isize - config.max_shift as isize
        } else {
            0
        };
        for ci in 0..c {
            for y in 0..h {
                let sy = y as isize - dy;
                if sy < 0 || sy >= h as isize {
                    continue; // zero padding
                }
                for x in 0..w {
                    let sx_pre = x as isize - dx;
                    if sx_pre < 0 || sx_pre >= w as isize {
                        continue;
                    }
                    let sx = if flip {
                        w - 1 - sx_pre as usize
                    } else {
                        sx_pre as usize
                    };
                    out.set4(ni, ci, y, x, batch.at4(ni, ci, sy as usize, sx));
                }
            }
        }
    }
    Ok(out)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn img() -> Tensor {
        Tensor::from_fn([1, 1, 3, 3], |i| i as f32)
    }

    #[test]
    fn no_op_config_is_identity() {
        let cfg = AugmentConfig {
            horizontal_flip: false,
            max_shift: 0,
        };
        let mut rng = SeededRng::new(0);
        let x = img();
        let y = augment_batch(&x, &cfg, &mut rng).unwrap();
        assert_eq!(x, y);
    }

    #[test]
    fn flip_reverses_rows_when_it_triggers() {
        let cfg = AugmentConfig {
            horizontal_flip: true,
            max_shift: 0,
        };
        let x = img();
        // Find a seed whose first draw triggers the flip.
        for seed in 0..64 {
            let mut probe = SeededRng::new(seed);
            if probe.uniform(0.0, 1.0) < 0.5 {
                let mut rng = SeededRng::new(seed);
                let y = augment_batch(&x, &cfg, &mut rng).unwrap();
                assert_eq!(y.data(), &[2.0, 1.0, 0.0, 5.0, 4.0, 3.0, 8.0, 7.0, 6.0]);
                return;
            }
        }
        panic!("no flipping seed found in 64 tries");
    }

    #[test]
    fn shifts_zero_pad_the_border() {
        let cfg = AugmentConfig {
            horizontal_flip: false,
            max_shift: 2,
        };
        let x = Tensor::ones([1, 1, 3, 3]);
        let mut rng = SeededRng::new(7);
        let y = augment_batch(&x, &cfg, &mut rng).unwrap();
        // Total mass can only shrink (pixels shifted out are dropped).
        assert!(y.sum() <= x.sum() + 1e-6);
        assert!(y.data().iter().all(|&v| v == 0.0 || v == 1.0));
    }

    #[test]
    fn augmentation_is_reproducible() {
        let cfg = AugmentConfig::standard();
        let x = Tensor::from_fn([4, 2, 5, 5], |i| (i as f32 * 0.37).sin());
        let a = augment_batch(&x, &cfg, &mut SeededRng::new(3)).unwrap();
        let b = augment_batch(&x, &cfg, &mut SeededRng::new(3)).unwrap();
        assert_eq!(a, b);
        let c = augment_batch(&x, &cfg, &mut SeededRng::new(4)).unwrap();
        assert_ne!(a, c);
    }

    #[test]
    fn each_image_draws_independently() {
        let cfg = AugmentConfig {
            horizontal_flip: false,
            max_shift: 1,
        };
        // Two identical images in the batch: with shifts enabled they will
        // usually transform differently.
        let one = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let batch = Tensor::cat_batch(&[one.clone(), one]).unwrap();
        let mut diff = false;
        for seed in 0..16 {
            let y = augment_batch(&batch, &cfg, &mut SeededRng::new(seed)).unwrap();
            if y.batch_item(0) != y.batch_item(1) {
                diff = true;
                break;
            }
        }
        assert!(diff, "independent draws should eventually differ");
    }

    #[test]
    fn non_rank4_input_is_rejected() {
        let cfg = AugmentConfig::standard();
        let x = Tensor::zeros([2, 3]);
        assert!(augment_batch(&x, &cfg, &mut SeededRng::new(0)).is_err());
    }
}
