//! Crash-safe training checkpoints.
//!
//! Training is the expensive leg of the paper's train → convert → simulate
//! pipeline; a crash at epoch 180 of 200 must not cost 180 epochs. This
//! module persists the **full** training state — network parameters *and*
//! optimizer momentum buffers, the shuffle/augment RNG stream, every
//! dropout layer's mask cursor, and the epoch cursor — so an interrupted
//! run restarts **bit-exactly**: N epochs straight and N/2 + resume + N/2
//! produce identical weights at 0 ulp.
//!
//! ## Container format (v2)
//!
//! A checkpoint file is a sectioned little-endian container:
//!
//! ```text
//! magic "TCLK" | version u32 = 2 | section count u32
//! section: tag u8 | payload length u64 | payload CRC32 u32 | payload
//! ```
//!
//! | tag | section  | payload                                              |
//! |-----|----------|------------------------------------------------------|
//! | 1   | META     | config fingerprint u64, completed-epoch cursor u64   |
//! | 2   | NETWORK  | the v2 model codec ([`crate::save_network`])         |
//! | 3   | MOMENTUM | one tensor per parameter, in `visit_params` order    |
//! | 4   | RNG      | the shuffle RNG's four xoshiro256++ state words      |
//! | 5   | REPORT   | per-epoch statistics accumulated so far              |
//!
//! Every section carries its own CRC32 (IEEE), so any single corrupted
//! byte is either detected (CRC/bounds/magic mismatch → structured error)
//! or provably harmless — never a panic, never a silently wrong network.
//!
//! ## Durability
//!
//! [`CheckpointStore::write`] serializes to a `.tmp` sidecar, fsyncs it,
//! and atomically renames it into place, so a crash mid-write can never
//! clobber the previous good snapshot. [`CheckpointStore::load_latest`]
//! walks snapshots newest-first and falls back to the previous one when
//! the newest fails validation.

use crate::error::{NnError, Result};
use crate::io::{
    io_err, load_network, read_tensor, read_u32, read_u64, read_u8, save_network, write_f32,
    write_tensor, write_u32, write_u64, write_u8,
};
use crate::network::Network;
use crate::trainer::{EpochStats, TrainConfig, TrainReport};
use std::fs;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use tcl_tensor::SeededRng;

const MAGIC: &[u8; 4] = b"TCLK";
const VERSION: u32 = 2;

const SEC_META: u8 = 1;
const SEC_NETWORK: u8 = 2;
const SEC_MOMENTUM: u8 = 3;
const SEC_RNG: u8 = 4;
const SEC_REPORT: u8 = 5;

fn ckpt_err(detail: impl Into<String>) -> NnError {
    NnError::Checkpoint {
        detail: detail.into(),
    }
}

// ---------------------------------------------------------------------------
// CRC32 (IEEE 802.3, reflected polynomial 0xEDB88320), table-driven.

const CRC_TABLE: [u32; 256] = {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 {
                (crc >> 1) ^ 0xEDB8_8320
            } else {
                crc >> 1
            };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
};

/// CRC32 (IEEE) of a byte slice — the per-section integrity check of the
/// checkpoint container.
///
/// # Examples
///
/// ```
/// // The classic check value for the ASCII string "123456789".
/// assert_eq!(tcl_nn::checkpoint::crc32(b"123456789"), 0xCBF4_3926);
/// ```
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = 0xFFFF_FFFFu32;
    for &b in bytes {
        crc = (crc >> 8) ^ CRC_TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

fn fnv1a(bytes: &[u8]) -> u64 {
    let mut h = 0xCBF2_9CE4_8422_2325u64;
    for &b in bytes {
        h ^= b as u64;
        h = h.wrapping_mul(0x100_0000_01B3);
    }
    h
}

/// Fingerprint of every [`TrainConfig`] field that affects the *trajectory*
/// of training (batch size, shuffle seed, schedule, optimizer, augment),
/// plus the active SIMD dispatch level.
///
/// The total epoch count and verbosity are deliberately excluded: resuming
/// with a larger `epochs` is how a finished run is extended, and both the
/// shuffle stream and the LR schedule key off the absolute epoch index, so
/// extension stays bit-exact.
///
/// The SIMD level is included because the AVX2 kernels fuse multiply-adds:
/// a run checkpointed under `avx2` and resumed under `scalar` (or on a
/// different host) would silently splice two different float trajectories.
/// `scalar` and `wide` are bitwise identical by construction, so they share
/// one fingerprint component and resume interchangeably.
pub fn config_fingerprint(config: &TrainConfig) -> u64 {
    let simd = match tcl_tensor::simd::current() {
        // One trajectory class: wide is bitwise scalar.
        tcl_tensor::simd::Level::Scalar | tcl_tensor::simd::Level::Wide => "unfused",
        tcl_tensor::simd::Level::Avx2 => "avx2",
    };
    let repr = format!(
        "bs={} seed={} sched={:?} opt={:?} aug={:?} simd={simd}",
        config.batch_size, config.shuffle_seed, config.schedule, config.optimizer, config.augment
    );
    fnv1a(repr.as_bytes())
}

// ---------------------------------------------------------------------------
// The checkpoint payload.

/// A complete training snapshot: everything needed to continue a run
/// bit-exactly from the end of a completed epoch.
#[derive(Debug, Clone)]
pub struct TrainCheckpoint {
    /// Number of fully completed epochs (the resume cursor: training
    /// continues at epoch index `epochs_done`).
    pub epochs_done: usize,
    /// [`config_fingerprint`] of the run that wrote the snapshot.
    pub config_fingerprint: u64,
    /// The network, including parameter values, batch-norm running
    /// statistics, dropout mask cursors, **and** SGD momentum buffers.
    pub network: Network,
    /// Captured state of the shuffle/augment RNG.
    pub rng_state: [u64; 4],
    /// Per-epoch statistics accumulated so far.
    pub report: TrainReport,
}

impl TrainCheckpoint {
    /// Captures a snapshot at the end of a completed epoch.
    pub fn capture(
        net: &Network,
        rng: &SeededRng,
        report: &TrainReport,
        config: &TrainConfig,
        epochs_done: usize,
    ) -> Self {
        TrainCheckpoint {
            epochs_done,
            config_fingerprint: config_fingerprint(config),
            network: net.clone(),
            rng_state: rng.state(),
            report: report.clone(),
        }
    }

    /// Serializes the snapshot into the sectioned v2 container.
    ///
    /// # Errors
    ///
    /// Returns a checkpoint error wrapping any serialization failure.
    pub fn to_bytes(&self) -> Result<Vec<u8>> {
        let mut sections: Vec<(u8, Vec<u8>)> = Vec::new();

        let mut meta = Vec::new();
        write_u64(&mut meta, self.config_fingerprint)?;
        write_u64(&mut meta, self.epochs_done as u64)?;
        sections.push((SEC_META, meta));

        let mut network = Vec::new();
        save_network(&mut network, &self.network)?;
        sections.push((SEC_NETWORK, network));

        let mut momentum = Vec::new();
        let mut buffers: Vec<tcl_tensor::Tensor> = Vec::new();
        let mut net = self.network.clone();
        net.visit_params(&mut |p| buffers.push(p.momentum.clone()));
        write_u32(&mut momentum, buffers.len() as u32)?;
        for t in &buffers {
            write_tensor(&mut momentum, t)?;
        }
        sections.push((SEC_MOMENTUM, momentum));

        let mut rng = Vec::new();
        for w in self.rng_state {
            write_u64(&mut rng, w)?;
        }
        sections.push((SEC_RNG, rng));

        let mut report = Vec::new();
        write_u32(&mut report, self.report.epochs.len() as u32)?;
        for e in &self.report.epochs {
            write_u64(&mut report, e.epoch as u64)?;
            write_f32(&mut report, e.train_loss)?;
            write_f32(&mut report, e.train_accuracy)?;
            match e.eval_accuracy {
                Some(acc) => {
                    write_u8(&mut report, 1)?;
                    write_f32(&mut report, acc)?;
                }
                None => {
                    write_u8(&mut report, 0)?;
                    write_f32(&mut report, 0.0)?;
                }
            }
            write_f32(&mut report, e.learning_rate)?;
        }
        sections.push((SEC_REPORT, report));

        let mut out = Vec::new();
        out.extend_from_slice(MAGIC);
        write_u32(&mut out, VERSION)?;
        write_u32(&mut out, sections.len() as u32)?;
        for (tag, payload) in &sections {
            write_u8(&mut out, *tag)?;
            write_u64(&mut out, payload.len() as u64)?;
            write_u32(&mut out, crc32(payload))?;
            out.extend_from_slice(payload);
        }
        Ok(out)
    }

    /// Parses and validates a v2 container.
    ///
    /// Never panics on malformed input: every defect — truncation, bad
    /// magic, unknown tags, out-of-bounds lengths, CRC mismatches,
    /// duplicate or missing sections — is a structured
    /// [`NnError::Checkpoint`].
    ///
    /// # Errors
    ///
    /// See above.
    pub fn from_bytes(bytes: &[u8]) -> Result<Self> {
        let mut r = bytes;
        let mut magic = [0u8; 4];
        std::io::Read::read_exact(&mut r, &mut magic).map_err(io_err)?;
        if &magic != MAGIC {
            return Err(ckpt_err("bad checkpoint magic"));
        }
        let version = read_u32(&mut r)?;
        if version != VERSION {
            return Err(ckpt_err(format!(
                "unsupported checkpoint version {version}"
            )));
        }
        let count = read_u32(&mut r)? as usize;
        if count > 64 {
            return Err(ckpt_err(format!("implausible section count {count}")));
        }

        let mut meta: Option<(u64, u64)> = None;
        let mut network: Option<Network> = None;
        let mut momentum: Option<Vec<tcl_tensor::Tensor>> = None;
        let mut rng_state: Option<[u64; 4]> = None;
        let mut report: Option<TrainReport> = None;

        for _ in 0..count {
            let tag = read_u8(&mut r)?;
            let len = read_u64(&mut r)? as usize;
            let expected_crc = read_u32(&mut r)?;
            if len > r.len() {
                return Err(ckpt_err(format!(
                    "section {tag} claims {len} bytes but only {} remain",
                    r.len()
                )));
            }
            let (payload, rest) = r.split_at(len);
            r = rest;
            let actual_crc = crc32(payload);
            if actual_crc != expected_crc {
                return Err(ckpt_err(format!(
                    "section {tag} CRC mismatch ({actual_crc:08x} != {expected_crc:08x})"
                )));
            }
            let mut p = payload;
            match tag {
                SEC_META => {
                    if meta.is_some() {
                        return Err(ckpt_err("duplicate META section"));
                    }
                    let fingerprint = read_u64(&mut p)?;
                    let epochs_done = read_u64(&mut p)?;
                    meta = Some((fingerprint, epochs_done));
                }
                SEC_NETWORK => {
                    if network.is_some() {
                        return Err(ckpt_err("duplicate NETWORK section"));
                    }
                    network = Some(load_network(&mut p)?);
                }
                SEC_MOMENTUM => {
                    if momentum.is_some() {
                        return Err(ckpt_err("duplicate MOMENTUM section"));
                    }
                    let n = read_u32(&mut p)? as usize;
                    if n > 100_000 {
                        return Err(ckpt_err(format!("implausible parameter count {n}")));
                    }
                    let mut buffers = Vec::with_capacity(n.min(1024));
                    for _ in 0..n {
                        buffers.push(read_tensor(&mut p)?);
                    }
                    momentum = Some(buffers);
                }
                SEC_RNG => {
                    if rng_state.is_some() {
                        return Err(ckpt_err("duplicate RNG section"));
                    }
                    let mut s = [0u64; 4];
                    for w in &mut s {
                        *w = read_u64(&mut p)?;
                    }
                    rng_state = Some(s);
                }
                SEC_REPORT => {
                    if report.is_some() {
                        return Err(ckpt_err("duplicate REPORT section"));
                    }
                    let n = read_u32(&mut p)? as usize;
                    if n > 1_000_000 {
                        return Err(ckpt_err(format!("implausible epoch count {n}")));
                    }
                    let mut epochs = Vec::with_capacity(n.min(4096));
                    for _ in 0..n {
                        let epoch = read_u64(&mut p)? as usize;
                        let train_loss = crate::io::read_f32(&mut p)?;
                        let train_accuracy = crate::io::read_f32(&mut p)?;
                        let has_eval = read_u8(&mut p)?;
                        let eval_raw = crate::io::read_f32(&mut p)?;
                        let learning_rate = crate::io::read_f32(&mut p)?;
                        let eval_accuracy = match has_eval {
                            0 => None,
                            1 => Some(eval_raw),
                            other => {
                                return Err(ckpt_err(format!("bad eval flag {other}")));
                            }
                        };
                        epochs.push(EpochStats {
                            epoch,
                            train_loss,
                            train_accuracy,
                            eval_accuracy,
                            learning_rate,
                        });
                    }
                    report = Some(TrainReport { epochs });
                }
                other => {
                    return Err(ckpt_err(format!("unknown section tag {other}")));
                }
            }
            if !p.is_empty() {
                return Err(ckpt_err(format!(
                    "section {tag} has {} trailing bytes",
                    p.len()
                )));
            }
        }
        if !r.is_empty() {
            return Err(ckpt_err(format!(
                "{} trailing bytes after sections",
                r.len()
            )));
        }

        let (config_fingerprint, epochs_done) =
            meta.ok_or_else(|| ckpt_err("missing META section"))?;
        let mut network = network.ok_or_else(|| ckpt_err("missing NETWORK section"))?;
        let buffers = momentum.ok_or_else(|| ckpt_err("missing MOMENTUM section"))?;
        let rng_state = rng_state.ok_or_else(|| ckpt_err("missing RNG section"))?;
        let report = report.ok_or_else(|| ckpt_err("missing REPORT section"))?;

        // Install the momentum buffers, validating count and shapes against
        // the deserialized network.
        let mut idx = 0usize;
        let mut mismatch: Option<String> = None;
        network.visit_params(&mut |p| {
            if mismatch.is_some() {
                return;
            }
            match buffers.get(idx) {
                Some(m) if m.shape() == p.value.shape() => {
                    p.momentum = m.clone();
                }
                Some(m) => {
                    mismatch = Some(format!(
                        "momentum buffer {idx} shape {:?} != parameter shape {:?}",
                        m.dims(),
                        p.value.dims()
                    ));
                }
                None => {
                    mismatch = Some(format!("missing momentum buffer {idx}"));
                }
            }
            idx += 1;
        });
        if let Some(detail) = mismatch {
            return Err(ckpt_err(detail));
        }
        if idx != buffers.len() {
            return Err(ckpt_err(format!(
                "{} momentum buffers for {idx} parameters",
                buffers.len()
            )));
        }
        if report.epochs.len() != epochs_done as usize {
            return Err(ckpt_err(format!(
                "report covers {} epochs but cursor says {epochs_done}",
                report.epochs.len()
            )));
        }

        Ok(TrainCheckpoint {
            epochs_done: epochs_done as usize,
            config_fingerprint,
            network,
            rng_state,
            report,
        })
    }
}

// ---------------------------------------------------------------------------
// On-disk store: atomic writes, rotation, newest-valid-first loading.

/// Where and how often training snapshots are taken.
#[derive(Debug, Clone)]
pub struct CheckpointConfig {
    /// Directory holding the run's snapshots (created on first write).
    pub dir: PathBuf,
    /// Snapshot every `every` completed epochs (a final snapshot is always
    /// written when the run completes). Must be nonzero.
    pub every: usize,
    /// How many snapshots to retain; older ones are pruned. At least 2, so
    /// a corrupted newest snapshot always has a fallback.
    pub keep: usize,
}

impl CheckpointConfig {
    /// Snapshots into `dir` every `TCL_CKPT_EVERY` epochs (default 5),
    /// keeping the 2 most recent.
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        CheckpointConfig {
            dir: dir.into(),
            every: every_from_env(),
            keep: 2,
        }
    }

    /// Overrides the snapshot interval.
    ///
    /// # Panics
    ///
    /// Panics if `every == 0`.
    pub fn with_every(mut self, every: usize) -> Self {
        assert!(every > 0, "checkpoint interval must be nonzero");
        self.every = every;
        self
    }

    /// Overrides the retention count (clamped to at least 2).
    pub fn with_keep(mut self, keep: usize) -> Self {
        self.keep = keep.max(2);
        self
    }
}

/// Reads `TCL_CKPT_EVERY` (default 5; invalid or zero values fall back to
/// the default).
pub fn every_from_env() -> usize {
    std::env::var("TCL_CKPT_EVERY")
        .ok()
        .and_then(|v| v.parse::<usize>().ok())
        .filter(|&v| v > 0)
        .unwrap_or(5)
}

/// A directory of rotating snapshots for one training run.
#[derive(Debug, Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
    keep: usize,
}

impl CheckpointStore {
    /// Opens (without touching the filesystem) the store at `config.dir`.
    pub fn new(config: &CheckpointConfig) -> Self {
        CheckpointStore {
            dir: config.dir.clone(),
            keep: config.keep.max(2),
        }
    }

    /// The snapshot path for a given epoch cursor.
    pub fn path_for(&self, epochs_done: usize) -> PathBuf {
        self.dir.join(format!("ckpt-{epochs_done:06}.tclk"))
    }

    /// Writes a snapshot atomically: serialize to `<final>.tmp`, fsync,
    /// rename into place, then prune beyond the retention count. Emits
    /// `ckpt.write_ms` / `ckpt.bytes` / `ckpt.writes` through telemetry.
    ///
    /// # Errors
    ///
    /// Returns a checkpoint error on serialization or I/O failure; a failed
    /// write never corrupts existing snapshots.
    pub fn write(&self, ckpt: &TrainCheckpoint) -> Result<PathBuf> {
        // lint: allow(D1) wall time feeds only the gated ckpt.write_ms
        // gauge; checkpoint bytes are a pure function of trainer state
        let start = std::time::Instant::now();
        let bytes = ckpt.to_bytes()?;
        fs::create_dir_all(&self.dir)
            .map_err(|e| ckpt_err(format!("create {}: {e}", self.dir.display())))?;
        let path = self.path_for(ckpt.epochs_done);
        let tmp = path.with_extension("tclk.tmp");
        {
            let mut f = fs::File::create(&tmp)
                .map_err(|e| ckpt_err(format!("create {}: {e}", tmp.display())))?;
            f.write_all(&bytes)
                .map_err(|e| ckpt_err(format!("write {}: {e}", tmp.display())))?;
            f.sync_all()
                .map_err(|e| ckpt_err(format!("fsync {}: {e}", tmp.display())))?;
        }
        fs::rename(&tmp, &path).map_err(|e| {
            ckpt_err(format!(
                "rename {} -> {}: {e}",
                tmp.display(),
                path.display()
            ))
        })?;
        self.prune();
        if tcl_telemetry::metrics_enabled() {
            tcl_telemetry::counter_add("ckpt.writes", 1);
            tcl_telemetry::counter_add("ckpt.bytes", bytes.len() as u64);
            tcl_telemetry::gauge_set("ckpt.write_ms", start.elapsed().as_secs_f64() * 1e3);
        }
        tcl_telemetry::log(
            "ckpt",
            &format!(
                "wrote {} ({} bytes, epoch {})",
                path.display(),
                bytes.len(),
                ckpt.epochs_done
            ),
        );
        Ok(path)
    }

    /// All snapshots in the store, sorted by epoch cursor ascending.
    pub fn list(&self) -> Vec<(usize, PathBuf)> {
        let mut out = Vec::new();
        let Ok(entries) = fs::read_dir(&self.dir) else {
            return out;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let Some(name) = path.file_name().and_then(|n| n.to_str()) else {
                continue;
            };
            let Some(epoch) = name
                .strip_prefix("ckpt-")
                .and_then(|rest| rest.strip_suffix(".tclk"))
                .and_then(|digits| digits.parse::<usize>().ok())
            else {
                continue;
            };
            out.push((epoch, path));
        }
        out.sort_by_key(|(epoch, _)| *epoch);
        out
    }

    /// Loads the newest snapshot that parses and passes every CRC, walking
    /// backwards through older snapshots when newer ones are corrupt.
    /// Returns `None` when the store holds no valid snapshot at all.
    ///
    /// This is the crash-recovery entry point, so it never propagates a
    /// corruption error — a bad file is logged and skipped.
    pub fn load_latest(&self) -> Option<TrainCheckpoint> {
        for (epoch, path) in self.list().into_iter().rev() {
            match fs::read(&path)
                .map_err(io_err)
                .and_then(|bytes| TrainCheckpoint::from_bytes(&bytes))
            {
                Ok(ckpt) => {
                    if ckpt.epochs_done != epoch {
                        tcl_telemetry::log(
                            "ckpt",
                            &format!(
                                "{}: cursor {} disagrees with filename; skipping",
                                path.display(),
                                ckpt.epochs_done
                            ),
                        );
                        continue;
                    }
                    return Some(ckpt);
                }
                Err(e) => {
                    if tcl_telemetry::metrics_enabled() {
                        tcl_telemetry::counter_add("ckpt.fallbacks", 1);
                    }
                    tcl_telemetry::log(
                        "ckpt",
                        &format!("{} invalid ({e}); trying older snapshot", path.display()),
                    );
                }
            }
        }
        None
    }

    fn prune(&self) {
        let snapshots = self.list();
        if snapshots.len() <= self.keep {
            return;
        }
        for (_, path) in &snapshots[..snapshots.len() - self.keep] {
            // Pruning is best-effort; a leftover snapshot is harmless.
            let _ = fs::remove_file(path);
        }
    }
}

/// Deletes every snapshot (and the directory, if then empty) — used once a
/// run's artifacts are archived elsewhere.
pub fn clear_store(dir: &Path) {
    let store = CheckpointStore {
        dir: dir.to_path_buf(),
        keep: 2,
    };
    for (_, path) in store.list() {
        let _ = fs::remove_file(path);
    }
    let _ = fs::remove_dir(dir);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::layers::{Clip, Dropout, Linear, Relu};
    use crate::Mode;
    use tcl_tensor::{SeededRng, Tensor};

    fn sample_net() -> Network {
        let mut rng = SeededRng::new(3);
        let mut net = Network::new(vec![
            Layer::Linear(Linear::new(4, 8, true, &mut rng).unwrap()),
            Layer::Relu(Relu::new()),
            Layer::Clip(Clip::new(2.0)),
            Layer::Dropout(Dropout::new(0.25, 99).unwrap()),
            Layer::Linear(Linear::new(8, 3, true, &mut rng).unwrap()),
        ]);
        // Give the momentum buffers non-trivial content.
        net.visit_params(&mut |p| {
            for (i, m) in p.momentum.data_mut().iter_mut().enumerate() {
                *m = (i as f32).sin();
            }
        });
        // Advance the dropout cursor.
        let x = Tensor::ones([2, 4]);
        net.forward(&x, Mode::Train).unwrap();
        net
    }

    fn sample_ckpt() -> TrainCheckpoint {
        let net = sample_net();
        let mut rng = SeededRng::new(1234);
        rng.uniform(0.0, 1.0);
        let report = TrainReport {
            epochs: vec![EpochStats {
                epoch: 0,
                train_loss: 0.7,
                train_accuracy: 0.5,
                eval_accuracy: Some(0.45),
                learning_rate: 0.05,
            }],
        };
        let config = crate::TrainConfig::standard(4, 2, 0.05, &[2]).unwrap();
        TrainCheckpoint::capture(&net, &rng, &report, &config, 1)
    }

    #[test]
    fn crc32_matches_reference_vector() {
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn fingerprint_separates_fused_from_unfused_simd_trajectories() {
        use tcl_tensor::simd::{with_level, Level};
        let config = crate::TrainConfig::standard(4, 2, 0.05, &[2]).unwrap();
        let scalar = with_level(Level::Scalar, || config_fingerprint(&config));
        // Wide is bitwise scalar, so resuming across the pair is sound.
        let wide = with_level(Level::Wide, || config_fingerprint(&config));
        assert_eq!(scalar, wide);
        // A fused-FMA trajectory must refuse to resume an unfused one.
        if Level::Avx2.is_available() {
            let avx2 = with_level(Level::Avx2, || config_fingerprint(&config));
            assert_ne!(scalar, avx2);
        }
    }

    #[test]
    fn roundtrip_preserves_everything() {
        let ckpt = sample_ckpt();
        let bytes = ckpt.to_bytes().unwrap();
        let back = TrainCheckpoint::from_bytes(&bytes).unwrap();
        assert_eq!(back.epochs_done, 1);
        assert_eq!(back.config_fingerprint, ckpt.config_fingerprint);
        assert_eq!(back.rng_state, ckpt.rng_state);
        assert_eq!(back.report.epochs.len(), 1);
        assert_eq!(back.report.epochs[0].eval_accuracy, Some(0.45));
        // Momentum buffers survive bitwise.
        let mut orig = ckpt.network.clone();
        let mut rest = back.network.clone();
        let mut orig_mom = Vec::new();
        orig.visit_params(&mut |p| orig_mom.push(p.momentum.clone()));
        let mut i = 0;
        rest.visit_params(&mut |p| {
            let a: Vec<u32> = orig_mom[i].data().iter().map(|v| v.to_bits()).collect();
            let b: Vec<u32> = p.momentum.data().iter().map(|v| v.to_bits()).collect();
            assert_eq!(a, b, "momentum buffer {i}");
            i += 1;
        });
        // Dropout cursor survives.
        if let Layer::Dropout(d) = &back.network.layers()[3] {
            assert_eq!(d.calls(), 1);
            assert_eq!(d.seed(), 99);
        } else {
            panic!("expected dropout");
        }
        // Serialization is deterministic (needed by the corruption proptest).
        assert_eq!(bytes, back.to_bytes().unwrap());
    }

    #[test]
    fn truncation_is_detected() {
        let bytes = sample_ckpt().to_bytes().unwrap();
        for cut in [0, 3, 11, bytes.len() / 2, bytes.len() - 1] {
            let err = TrainCheckpoint::from_bytes(&bytes[..cut]).unwrap_err();
            assert!(
                matches!(err, NnError::Checkpoint { .. } | NnError::Graph { .. }),
                "unexpected error {err}"
            );
        }
    }

    #[test]
    fn payload_corruption_fails_crc() {
        let mut bytes = sample_ckpt().to_bytes().unwrap();
        // Flip a byte deep inside the network section's payload.
        let target = bytes.len() / 2;
        bytes[target] ^= 0xFF;
        let err = TrainCheckpoint::from_bytes(&bytes).unwrap_err();
        assert!(err.to_string().contains("CRC") || err.to_string().contains("checkpoint"));
    }

    #[test]
    fn store_writes_atomically_and_falls_back() {
        let dir = std::env::temp_dir().join(format!("tcl-ckpt-test-{}", std::process::id()));
        clear_store(&dir);
        let config = CheckpointConfig::new(&dir).with_every(1).with_keep(2);
        let store = CheckpointStore::new(&config);

        let mut ckpt = sample_ckpt();
        store.write(&ckpt).unwrap();
        ckpt.epochs_done = 2;
        ckpt.report.epochs.push(EpochStats {
            epoch: 1,
            train_loss: 0.5,
            train_accuracy: 0.6,
            eval_accuracy: None,
            learning_rate: 0.05,
        });
        let newest = store.write(&ckpt).unwrap();
        assert_eq!(store.list().len(), 2);
        // No sidecar left behind.
        assert!(!newest.with_extension("tclk.tmp").exists());

        // Newest wins while valid…
        assert_eq!(store.load_latest().unwrap().epochs_done, 2);

        // …and a corrupted newest falls back to the previous snapshot.
        let mut bytes = fs::read(&newest).unwrap();
        let mid = bytes.len() / 2;
        bytes[mid] ^= 0x55;
        fs::write(&newest, &bytes).unwrap();
        let fallback = store.load_latest().unwrap();
        assert_eq!(fallback.epochs_done, 1);

        // Truncated-to-garbage newest also falls back, never panics.
        fs::write(&newest, b"TCLK").unwrap();
        assert_eq!(store.load_latest().unwrap().epochs_done, 1);

        clear_store(&dir);
    }

    #[test]
    fn retention_prunes_oldest() {
        let dir = std::env::temp_dir().join(format!("tcl-ckpt-prune-{}", std::process::id()));
        clear_store(&dir);
        let config = CheckpointConfig::new(&dir).with_every(1).with_keep(2);
        let store = CheckpointStore::new(&config);
        let mut ckpt = sample_ckpt();
        for cursor in 1..=4 {
            ckpt.epochs_done = cursor;
            ckpt.report.epochs = (0..cursor)
                .map(|e| EpochStats {
                    epoch: e,
                    train_loss: 0.5,
                    train_accuracy: 0.5,
                    eval_accuracy: None,
                    learning_rate: 0.05,
                })
                .collect();
            store.write(&ckpt).unwrap();
        }
        let kept: Vec<usize> = store.list().into_iter().map(|(e, _)| e).collect();
        assert_eq!(kept, vec![3, 4]);
        clear_store(&dir);
    }

    #[test]
    fn fingerprint_tracks_trajectory_fields_only() {
        let base = crate::TrainConfig::standard(10, 32, 0.05, &[5]).unwrap();
        let mut more_epochs = base.clone();
        more_epochs.epochs = 20;
        more_epochs.verbose = true;
        assert_eq!(config_fingerprint(&base), config_fingerprint(&more_epochs));
        let mut other_seed = base.clone();
        other_seed.shuffle_seed = 7;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other_seed));
        let mut other_batch = base.clone();
        other_batch.batch_size = 16;
        assert_ne!(config_fingerprint(&base), config_fingerprint(&other_batch));
    }
}
