//! Stochastic gradient descent with momentum and per-kind weight decay,
//! plus the step learning-rate schedule the paper trains with (Section 6).

use crate::error::{NnError, Result};
use crate::network::Network;
use crate::param::ParamKind;
use serde::{Deserialize, Serialize};

/// Smallest value the clipping bound λ may take after an update.
///
/// A λ that reaches zero silences its layer permanently (the clipped output
/// is identically zero and Eq. 9 routes *all* gradient to λ, none to the
/// activations), so updates clamp λ to this floor.
pub const LAMBDA_FLOOR: f32 = 1e-3;

/// SGD with momentum and decoupled per-kind L2 regularization.
///
/// * `weight_decay` applies to [`ParamKind::Weight`] (the usual L2 on
///   conv/linear weights; biases and batch-norm affine parameters are
///   exempt, matching common practice and the paper's PyTorch recipe).
/// * `lambda_decay` applies to [`ParamKind::Lambda`] — the PACT-style pull
///   on the clipping bound. The paper's TCL needs no explicit λ decay (the
///   clip mask itself provides downward pressure), so it defaults to 0, but
///   the ablation harness exposes it.
///
/// # Examples
///
/// ```
/// use tcl_nn::Sgd;
///
/// let opt = Sgd::new(0.1).with_momentum(0.9).with_weight_decay(5e-4);
/// assert_eq!(opt.learning_rate(), 0.1);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Sgd {
    lr: f32,
    momentum: f32,
    weight_decay: f32,
    lambda_decay: f32,
}

impl Sgd {
    /// Creates plain SGD with the given learning rate (no momentum/decay).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn new(lr: f32) -> Self {
        assert!(lr > 0.0, "learning rate must be positive");
        Sgd {
            lr,
            momentum: 0.0,
            weight_decay: 0.0,
            lambda_decay: 0.0,
        }
    }

    /// Sets the momentum coefficient (classic heavy-ball).
    pub fn with_momentum(mut self, momentum: f32) -> Self {
        self.momentum = momentum;
        self
    }

    /// Sets L2 decay on weights.
    pub fn with_weight_decay(mut self, weight_decay: f32) -> Self {
        self.weight_decay = weight_decay;
        self
    }

    /// Sets L2 decay on clipping bounds (PACT-style; defaults to 0).
    pub fn with_lambda_decay(mut self, lambda_decay: f32) -> Self {
        self.lambda_decay = lambda_decay;
        self
    }

    /// Current learning rate.
    pub fn learning_rate(&self) -> f32 {
        self.lr
    }

    /// Momentum coefficient.
    pub fn momentum(&self) -> f32 {
        self.momentum
    }

    /// L2 decay applied to weights.
    pub fn weight_decay(&self) -> f32 {
        self.weight_decay
    }

    /// L2 decay applied to clipping bounds.
    pub fn lambda_decay(&self) -> f32 {
        self.lambda_decay
    }

    /// Replaces the learning rate (used by schedules).
    ///
    /// # Panics
    ///
    /// Panics if `lr` is not strictly positive.
    pub fn set_learning_rate(&mut self, lr: f32) {
        assert!(lr > 0.0, "learning rate must be positive");
        self.lr = lr;
    }

    /// Applies one SGD step to every parameter of `net` using the gradients
    /// accumulated since the last [`Network::zero_grad`].
    ///
    /// Clipping bounds are clamped to [`LAMBDA_FLOOR`] after the update.
    pub fn step(&self, net: &mut Network) {
        let lr = self.lr;
        let momentum = self.momentum;
        let wd = self.weight_decay;
        let ld = self.lambda_decay;
        net.visit_params(&mut |p| {
            let decay = match p.kind {
                ParamKind::Weight => wd,
                ParamKind::Lambda => ld,
                ParamKind::Bias | ParamKind::Gamma | ParamKind::Beta => 0.0,
            };
            let value = p.value.data_mut();
            let grad = p.grad.data();
            let mom = p.momentum.data_mut();
            for ((v, &g), m) in value.iter_mut().zip(grad).zip(mom.iter_mut()) {
                let g_total = g + decay * *v;
                *m = momentum * *m + g_total;
                *v -= lr * *m;
            }
            if p.kind == ParamKind::Lambda {
                for v in p.value.data_mut() {
                    if *v < LAMBDA_FLOOR {
                        *v = LAMBDA_FLOOR;
                    }
                }
            }
        });
    }
}

/// Step learning-rate schedule: multiply the rate by `gamma` at each
/// milestone epoch.
///
/// The paper scales by 0.1 at epochs [100, 150] for Cifar-10 and
/// [30, 60, 90] for Imagenet (Section 6).
///
/// # Examples
///
/// ```
/// use tcl_nn::StepSchedule;
///
/// let sched = StepSchedule::new(0.1, &[2, 4], 0.1)?;
/// assert_eq!(sched.rate_at(0), 0.1);
/// assert!((sched.rate_at(2) - 0.01).abs() < 1e-9);
/// assert!((sched.rate_at(4) - 0.001).abs() < 1e-9);
/// # Ok::<(), tcl_nn::NnError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct StepSchedule {
    initial: f32,
    milestones: Vec<usize>,
    gamma: f32,
}

impl StepSchedule {
    /// Creates a schedule from the initial rate, milestone epochs, and decay
    /// factor.
    ///
    /// # Errors
    ///
    /// Returns a training error if the initial rate or gamma is not
    /// strictly positive, or milestones are not strictly increasing.
    pub fn new(initial: f32, milestones: &[usize], gamma: f32) -> Result<Self> {
        if initial <= 0.0 || gamma <= 0.0 {
            return Err(NnError::Training {
                detail: "learning rate and gamma must be positive".into(),
            });
        }
        if milestones.windows(2).any(|w| w[0] >= w[1]) {
            return Err(NnError::Training {
                detail: "milestones must be strictly increasing".into(),
            });
        }
        Ok(StepSchedule {
            initial,
            milestones: milestones.to_vec(),
            gamma,
        })
    }

    /// Constant learning rate (no milestones).
    ///
    /// # Errors
    ///
    /// Returns a training error if `rate` is not strictly positive.
    pub fn constant(rate: f32) -> Result<Self> {
        Self::new(rate, &[], 0.1)
    }

    /// Learning rate in effect during `epoch` (0-based).
    pub fn rate_at(&self, epoch: usize) -> f32 {
        let passed = self.milestones.iter().filter(|&&m| epoch >= m).count();
        self.initial * self.gamma.powi(passed as i32)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::{Layer, Mode};
    use crate::layers::{Clip, Linear, Relu};
    use crate::loss::softmax_cross_entropy;
    use tcl_tensor::{SeededRng, Tensor};

    fn toy_problem() -> (Network, Tensor, Vec<usize>) {
        let mut rng = SeededRng::new(0);
        let net = Network::new(vec![
            Layer::Linear(Linear::new(2, 8, true, &mut rng).unwrap()),
            Layer::Relu(Relu::new()),
            Layer::Clip(Clip::new(2.0)),
            Layer::Linear(Linear::new(8, 2, true, &mut rng).unwrap()),
        ]);
        // Linearly separable points.
        let x = Tensor::from_vec([4, 2], vec![1.0, 1.0, 0.8, 1.2, -1.0, -1.0, -0.7, -1.3]).unwrap();
        let labels = vec![0, 0, 1, 1];
        (net, x, labels)
    }

    #[test]
    fn sgd_reduces_loss_on_toy_problem() {
        let (mut net, x, labels) = toy_problem();
        let opt = Sgd::new(0.1).with_momentum(0.9);
        let initial = {
            let logits = net.forward(&x, Mode::Train).unwrap();
            softmax_cross_entropy(&logits, &labels).unwrap().loss
        };
        let mut last = initial;
        for _ in 0..50 {
            net.zero_grad();
            let logits = net.forward(&x, Mode::Train).unwrap();
            let out = softmax_cross_entropy(&logits, &labels).unwrap();
            net.backward(&out.grad).unwrap();
            opt.step(&mut net);
            last = out.loss;
        }
        assert!(last < initial * 0.2, "loss {initial} -> {last}");
    }

    #[test]
    fn weight_decay_shrinks_weights_without_gradient() {
        let mut rng = SeededRng::new(1);
        let mut net = Network::new(vec![Layer::Linear(
            Linear::new(3, 3, true, &mut rng).unwrap(),
        )]);
        let mut before = 0.0;
        net.visit_params(&mut |p| {
            if p.kind == ParamKind::Weight {
                before += p.value.data().iter().map(|v| v * v).sum::<f32>();
            }
        });
        let opt = Sgd::new(0.1).with_weight_decay(0.1);
        net.zero_grad();
        opt.step(&mut net);
        let mut after = 0.0;
        net.visit_params(&mut |p| {
            if p.kind == ParamKind::Weight {
                after += p.value.data().iter().map(|v| v * v).sum::<f32>();
            }
        });
        assert!(after < before);
    }

    #[test]
    fn lambda_decay_applies_only_to_lambda() {
        let mut net = Network::new(vec![Layer::Clip(Clip::new(2.0))]);
        let opt = Sgd::new(0.1).with_lambda_decay(0.5);
        net.zero_grad();
        opt.step(&mut net);
        // λ -= lr * decay * λ = 2.0 - 0.1*0.5*2.0 = 1.9.
        assert!((net.clip_lambdas()[0] - 1.9).abs() < 1e-6);
    }

    #[test]
    fn lambda_is_clamped_at_floor() {
        let mut net = Network::new(vec![Layer::Clip(Clip::new(0.01))]);
        let opt = Sgd::new(10.0).with_lambda_decay(10.0);
        for _ in 0..5 {
            net.zero_grad();
            opt.step(&mut net);
        }
        assert!(net.clip_lambdas()[0] >= LAMBDA_FLOOR);
    }

    #[test]
    fn schedule_decays_at_milestones() {
        let s = StepSchedule::new(1.0, &[10, 20], 0.5).unwrap();
        assert_eq!(s.rate_at(9), 1.0);
        assert_eq!(s.rate_at(10), 0.5);
        assert_eq!(s.rate_at(19), 0.5);
        assert_eq!(s.rate_at(20), 0.25);
        assert_eq!(s.rate_at(100), 0.25);
    }

    #[test]
    fn schedule_validates_arguments() {
        assert!(StepSchedule::new(0.0, &[], 0.1).is_err());
        assert!(StepSchedule::new(0.1, &[5, 5], 0.1).is_err());
        assert!(StepSchedule::new(0.1, &[7, 3], 0.1).is_err());
        assert!(StepSchedule::constant(0.05).is_ok());
    }

    #[test]
    #[should_panic(expected = "learning rate must be positive")]
    fn sgd_rejects_zero_lr() {
        let _ = Sgd::new(0.0);
    }
}
