//! Trainable parameters and their metadata.

use serde::{Deserialize, Serialize};
use tcl_tensor::Tensor;

/// Semantic role of a parameter, used by the optimizer to apply different
/// regularization to different parameter classes.
///
/// The paper's TCL layer introduces a new trainable scalar — the clipping
/// bound `λ` — whose regularization behaviour differs from ordinary weights
/// (PACT-style L2 decay on `λ` pulls the clipping range down, trading ANN
/// accuracy for SNN latency). Tagging parameters lets
/// [`crate::Sgd`] apply `weight_decay` to weights and `lambda_decay` to
/// clipping bounds.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ParamKind {
    /// Convolution or linear weight matrix.
    Weight,
    /// Additive bias vector.
    Bias,
    /// Batch-normalization scale (γ).
    Gamma,
    /// Batch-normalization shift (β).
    Beta,
    /// TCL clipping bound (λ) — Eq. 8 of the paper.
    Lambda,
}

/// A trainable tensor with its gradient accumulator and momentum buffer.
///
/// Layers own their `Param`s; the optimizer visits them through
/// [`crate::Network::visit_params`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Param {
    /// Current value.
    pub value: Tensor,
    /// Gradient accumulated by the most recent backward pass(es).
    pub grad: Tensor,
    /// SGD momentum buffer (same shape as `value`).
    pub momentum: Tensor,
    /// Semantic role (drives per-kind regularization).
    pub kind: ParamKind,
}

impl Param {
    /// Wraps an initial value as a trainable parameter of the given kind.
    pub fn new(value: Tensor, kind: ParamKind) -> Self {
        let grad = Tensor::zeros(value.shape().clone());
        let momentum = Tensor::zeros(value.shape().clone());
        Param {
            value,
            grad,
            momentum,
            kind,
        }
    }

    /// Clears the gradient accumulator.
    pub fn zero_grad(&mut self) {
        self.grad.fill_zero();
    }

    /// Number of scalar elements in the parameter.
    pub fn len(&self) -> usize {
        self.value.len()
    }

    /// Whether the parameter is empty.
    pub fn is_empty(&self) -> bool {
        self.value.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn new_param_has_zeroed_state() {
        let p = Param::new(Tensor::ones([2, 2]), ParamKind::Weight);
        assert_eq!(p.grad.sum(), 0.0);
        assert_eq!(p.momentum.sum(), 0.0);
        assert_eq!(p.len(), 4);
    }

    #[test]
    fn zero_grad_clears_accumulator() {
        let mut p = Param::new(Tensor::ones([3]), ParamKind::Bias);
        p.grad.fill(5.0);
        p.zero_grad();
        assert_eq!(p.grad.sum(), 0.0);
    }

    #[test]
    fn kinds_are_distinguishable() {
        assert_ne!(ParamKind::Weight, ParamKind::Lambda);
        assert_eq!(ParamKind::Lambda, ParamKind::Lambda);
    }
}
