//! Error type for network construction and execution.

use std::error::Error;
use std::fmt;
use tcl_tensor::TensorError;

/// Error raised by layer execution, network construction, or training.
#[derive(Debug, Clone, PartialEq)]
pub enum NnError {
    /// An underlying tensor kernel failed (shape/rank/argument problems).
    Tensor(TensorError),
    /// The network graph is malformed for the requested operation (e.g.
    /// backward before forward, or a residual block without a shortcut where
    /// channel counts change).
    Graph {
        /// Human-readable description of the structural problem.
        detail: String,
    },
    /// A training-time argument is invalid (empty dataset, zero batch size…).
    Training {
        /// Human-readable description of the violation.
        detail: String,
    },
    /// A training checkpoint could not be written, read, or validated
    /// (I/O failure, bad magic, CRC mismatch, config fingerprint drift…).
    Checkpoint {
        /// Human-readable description of the failure.
        detail: String,
    },
}

impl fmt::Display for NnError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            NnError::Tensor(e) => write!(f, "tensor error: {e}"),
            NnError::Graph { detail } => write!(f, "graph error: {detail}"),
            NnError::Training { detail } => write!(f, "training error: {detail}"),
            NnError::Checkpoint { detail } => write!(f, "checkpoint error: {detail}"),
        }
    }
}

impl Error for NnError {
    fn source(&self) -> Option<&(dyn Error + 'static)> {
        match self {
            NnError::Tensor(e) => Some(e),
            _ => None,
        }
    }
}

impl From<TensorError> for NnError {
    fn from(e: TensorError) -> Self {
        NnError::Tensor(e)
    }
}

/// Convenience alias used throughout the crate.
pub type Result<T> = std::result::Result<T, NnError>;

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn tensor_errors_convert() {
        let te = TensorError::RankMismatch {
            expected: 4,
            actual: 2,
        };
        let ne: NnError = te.clone().into();
        assert_eq!(ne, NnError::Tensor(te));
    }

    #[test]
    fn source_chains_to_tensor_error() {
        let ne = NnError::Tensor(TensorError::InvalidArgument { detail: "x".into() });
        assert!(ne.source().is_some());
        let g = NnError::Graph { detail: "y".into() };
        assert!(g.source().is_none());
    }

    #[test]
    fn errors_are_send_sync() {
        fn check<T: Send + Sync>() {}
        check::<NnError>();
    }
}
