//! Compact binary serialization of trained networks.
//!
//! The benchmark harnesses train the same networks for several experiments
//! (Table 1, Figure 1, the ablations); persisting trained models lets each
//! harness reuse them. The format is a small explicit binary codec —
//! little-endian, versioned, no external dependencies — rather than a
//! generic serializer, so files stay stable across crate-internal
//! refactors.
//!
//! Only parameter *values* and structural hyper-parameters are stored;
//! gradients, momentum, and layer caches are reset on load. (Full training
//! state — momentum buffers, RNG streams, the epoch cursor — is the job of
//! [`crate::checkpoint`], which embeds this codec.)
//!
//! ## Versions
//!
//! * **v1** stored dropout layers as their probability only; the mask seed
//!   was silently reset to 0 on load, so a saved-then-loaded network
//!   trained with a different dropout stream than the original.
//! * **v2** (current) persists each dropout layer's seed and call cursor.
//!   v1 files still load — dropout is an inference no-op, so evaluation and
//!   conversion are unaffected — but their dropout layers are tagged
//!   ([`crate::layers::Dropout::has_legacy_seed`]) and the trainer refuses
//!   to resume training through them.

use crate::error::{NnError, Result};
use crate::layer::Layer;
use crate::layers::{
    AvgPool2d, BatchNorm2d, Clip, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu,
    ResidualBlock, Shortcut,
};
use crate::network::Network;
use std::io::{Read, Write};
use tcl_tensor::ops::ConvGeometry;
use tcl_tensor::{Shape, Tensor};

const MAGIC: &[u8; 4] = b"TCLN";
/// Version written by [`save_network`].
const VERSION: u32 = 2;
/// Oldest version [`load_network`] still reads.
const MIN_VERSION: u32 = 1;

pub(crate) fn io_err(e: std::io::Error) -> NnError {
    NnError::Graph {
        detail: format!("model io: {e}"),
    }
}

pub(crate) fn format_err(detail: impl Into<String>) -> NnError {
    NnError::Graph {
        detail: format!("model format: {}", detail.into()),
    }
}

pub(crate) fn write_u32<W: Write>(w: &mut W, v: u32) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

pub(crate) fn write_f32<W: Write>(w: &mut W, v: f32) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

pub(crate) fn write_u8<W: Write>(w: &mut W, v: u8) -> Result<()> {
    w.write_all(&[v]).map_err(io_err)
}

pub(crate) fn write_u64<W: Write>(w: &mut W, v: u64) -> Result<()> {
    w.write_all(&v.to_le_bytes()).map_err(io_err)
}

pub(crate) fn read_u64<R: Read>(r: &mut R) -> Result<u64> {
    let mut b = [0u8; 8];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(u64::from_le_bytes(b))
}

pub(crate) fn read_u32<R: Read>(r: &mut R) -> Result<u32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(u32::from_le_bytes(b))
}

pub(crate) fn read_f32<R: Read>(r: &mut R) -> Result<f32> {
    let mut b = [0u8; 4];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(f32::from_le_bytes(b))
}

pub(crate) fn read_u8<R: Read>(r: &mut R) -> Result<u8> {
    let mut b = [0u8; 1];
    r.read_exact(&mut b).map_err(io_err)?;
    Ok(b[0])
}

pub(crate) fn write_tensor<W: Write>(w: &mut W, t: &Tensor) -> Result<()> {
    write_u32(w, t.shape().rank() as u32)?;
    for &d in t.dims() {
        write_u32(w, d as u32)?;
    }
    for &v in t.data() {
        write_f32(w, v)?;
    }
    Ok(())
}

pub(crate) fn read_tensor<R: Read>(r: &mut R) -> Result<Tensor> {
    let rank = read_u32(r)? as usize;
    if rank > 8 {
        return Err(format_err(format!("implausible tensor rank {rank}")));
    }
    let mut dims = Vec::with_capacity(rank);
    for _ in 0..rank {
        dims.push(read_u32(r)? as usize);
    }
    // Checked product: corrupt dims must yield a format error, not an
    // overflow panic inside `Shape::len`.
    let mut len = 1usize;
    for &d in &dims {
        len = len
            .checked_mul(d)
            .ok_or_else(|| format_err("tensor size overflows"))?;
    }
    if len > 256 * 1024 * 1024 {
        return Err(format_err(format!("implausible tensor size {len}")));
    }
    let shape = Shape::new(dims);
    // Read the payload in bounded chunks: the length field is attacker- or
    // corruption-controlled, so nothing may be reserved up front beyond one
    // chunk (~256 KiB). A lying header then fails at the first short read
    // instead of after a ~1 GiB pre-allocation.
    const CHUNK_ELEMS: usize = 64 * 1024;
    let mut data = Vec::with_capacity(len.min(CHUNK_ELEMS));
    let mut buf = vec![0u8; 4 * len.min(CHUNK_ELEMS)];
    let mut remaining = len;
    while remaining > 0 {
        let n = remaining.min(CHUNK_ELEMS);
        let bytes = &mut buf[..4 * n];
        r.read_exact(bytes).map_err(io_err)?;
        data.extend(
            bytes
                .chunks_exact(4)
                .map(|b| f32::from_le_bytes([b[0], b[1], b[2], b[3]])),
        );
        remaining -= n;
    }
    Ok(Tensor::from_vec(shape, data)?)
}

fn write_opt_tensor<W: Write>(w: &mut W, t: Option<&Tensor>) -> Result<()> {
    match t {
        Some(t) => {
            write_u8(w, 1)?;
            write_tensor(w, t)
        }
        None => write_u8(w, 0),
    }
}

fn read_opt_tensor<R: Read>(r: &mut R) -> Result<Option<Tensor>> {
    Ok(match read_u8(r)? {
        0 => None,
        1 => Some(read_tensor(r)?),
        other => return Err(format_err(format!("bad option tag {other}"))),
    })
}

fn write_conv<W: Write>(w: &mut W, conv: &Conv2d) -> Result<()> {
    write_tensor(w, &conv.weight.value)?;
    write_opt_tensor(w, conv.bias.as_ref().map(|b| &b.value))?;
    write_u32(w, conv.geom.kernel_h as u32)?;
    write_u32(w, conv.geom.kernel_w as u32)?;
    write_u32(w, conv.geom.stride as u32)?;
    write_u32(w, conv.geom.padding as u32)
}

fn read_conv<R: Read>(r: &mut R) -> Result<Conv2d> {
    let weight = read_tensor(r)?;
    let bias = read_opt_tensor(r)?;
    let kh = read_u32(r)? as usize;
    let kw = read_u32(r)? as usize;
    let stride = read_u32(r)? as usize;
    let padding = read_u32(r)? as usize;
    let geom = ConvGeometry::new(kh, kw, stride, padding)?;
    Conv2d::from_parts(weight, bias, geom)
}

fn write_bn<W: Write>(w: &mut W, bn: &BatchNorm2d) -> Result<()> {
    write_tensor(w, &bn.gamma.value)?;
    write_tensor(w, &bn.beta.value)?;
    write_tensor(w, &bn.running_mean)?;
    write_tensor(w, &bn.running_var)?;
    write_f32(w, bn.eps)?;
    write_f32(w, bn.momentum)
}

fn read_bn<R: Read>(r: &mut R) -> Result<BatchNorm2d> {
    let gamma = read_tensor(r)?;
    let beta = read_tensor(r)?;
    let mean = read_tensor(r)?;
    let var = read_tensor(r)?;
    let eps = read_f32(r)?;
    let momentum = read_f32(r)?;
    // All four vectors must agree on the channel count. A corrupt file that
    // shrinks one of them would otherwise build a malformed BatchNorm2d
    // that only fails (with a shape error, far from the load site) on its
    // first forward pass.
    let channels = gamma.len();
    for (name, t) in [
        ("beta", &beta),
        ("running_mean", &mean),
        ("running_var", &var),
    ] {
        if t.len() != channels {
            return Err(format_err(format!(
                "batch-norm {name} length {} != gamma length {channels}",
                t.len()
            )));
        }
    }
    if !eps.is_finite() || eps <= 0.0 {
        return Err(format_err(format!("batch-norm eps {eps} not positive")));
    }
    let mut bn = BatchNorm2d::new(channels)?;
    bn.gamma.value = gamma;
    bn.beta.value = beta;
    bn.running_mean = mean;
    bn.running_var = var;
    bn.eps = eps;
    bn.momentum = momentum;
    Ok(bn)
}

fn write_opt_bn<W: Write>(w: &mut W, bn: Option<&BatchNorm2d>) -> Result<()> {
    match bn {
        Some(bn) => {
            write_u8(w, 1)?;
            write_bn(w, bn)
        }
        None => write_u8(w, 0),
    }
}

fn read_opt_bn<R: Read>(r: &mut R) -> Result<Option<BatchNorm2d>> {
    Ok(match read_u8(r)? {
        0 => None,
        1 => Some(read_bn(r)?),
        other => return Err(format_err(format!("bad option tag {other}"))),
    })
}

fn write_opt_clip<W: Write>(w: &mut W, clip: Option<&Clip>) -> Result<()> {
    match clip {
        Some(c) => {
            write_u8(w, 1)?;
            write_f32(w, c.lambda_value())
        }
        None => write_u8(w, 0),
    }
}

fn read_opt_clip<R: Read>(r: &mut R) -> Result<Option<Clip>> {
    Ok(match read_u8(r)? {
        0 => None,
        1 => {
            let lam = read_f32(r)?;
            if lam <= 0.0 {
                return Err(format_err(format!("non-positive clip bound {lam}")));
            }
            Some(Clip::new(lam))
        }
        other => return Err(format_err(format!("bad option tag {other}"))),
    })
}

/// Writes a network to any [`Write`] sink (a `&mut` reference works too).
///
/// # Errors
///
/// Returns a graph error wrapping any I/O failure.
///
/// # Examples
///
/// ```
/// use tcl_nn::{save_network, load_network, Layer, Network};
/// use tcl_nn::layers::Relu;
///
/// let net = Network::new(vec![Layer::Relu(Relu::new())]);
/// let mut buf = Vec::new();
/// save_network(&mut buf, &net)?;
/// let back = load_network(&mut buf.as_slice())?;
/// assert_eq!(back.len(), 1);
/// # Ok::<(), tcl_nn::NnError>(())
/// ```
pub fn save_network<W: Write>(writer: &mut W, net: &Network) -> Result<()> {
    writer.write_all(MAGIC).map_err(io_err)?;
    write_u32(writer, VERSION)?;
    write_u32(writer, net.len() as u32)?;
    for layer in net.layers() {
        match layer {
            Layer::Conv2d(conv) => {
                write_u8(writer, 0)?;
                write_conv(writer, conv)?;
            }
            Layer::Linear(linear) => {
                write_u8(writer, 1)?;
                write_tensor(writer, &linear.weight.value)?;
                write_opt_tensor(writer, linear.bias.as_ref().map(|b| &b.value))?;
            }
            Layer::BatchNorm2d(bn) => {
                write_u8(writer, 2)?;
                write_bn(writer, bn)?;
            }
            Layer::Relu(_) => write_u8(writer, 3)?,
            Layer::Clip(c) => {
                write_u8(writer, 4)?;
                write_f32(writer, c.lambda_value())?;
            }
            Layer::AvgPool2d(p) => {
                write_u8(writer, 5)?;
                write_u32(writer, p.kernel as u32)?;
                write_u32(writer, p.stride as u32)?;
            }
            Layer::MaxPool2d(p) => {
                write_u8(writer, 6)?;
                write_u32(writer, p.kernel as u32)?;
                write_u32(writer, p.stride as u32)?;
            }
            Layer::GlobalAvgPool(_) => write_u8(writer, 7)?,
            Layer::Flatten(_) => write_u8(writer, 8)?,
            Layer::Dropout(d) => {
                write_u8(writer, 10)?;
                write_f32(writer, d.p)?;
                // v2: persist the mask stream (seed + call cursor) so a
                // reloaded network trains with the same dropout draws.
                write_u64(writer, d.seed())?;
                write_u64(writer, d.calls())?;
            }
            Layer::Residual(block) => {
                write_u8(writer, 9)?;
                write_conv(writer, &block.conv1)?;
                write_opt_bn(writer, block.bn1.as_ref())?;
                write_opt_clip(writer, block.clip1.as_ref())?;
                write_conv(writer, &block.conv2)?;
                write_opt_bn(writer, block.bn2.as_ref())?;
                match &block.shortcut {
                    Shortcut::Identity => write_u8(writer, 0)?,
                    Shortcut::Projection { conv, bn } => {
                        write_u8(writer, 1)?;
                        write_conv(writer, conv)?;
                        write_opt_bn(writer, bn.as_ref())?;
                    }
                }
                write_opt_clip(writer, block.clip_out.as_ref())?;
            }
        }
    }
    Ok(())
}

/// Reads a network previously written by [`save_network`].
///
/// # Errors
///
/// Returns a graph error for I/O failures, a bad magic/version, or a
/// malformed layer record.
pub fn load_network<R: Read>(reader: &mut R) -> Result<Network> {
    let mut magic = [0u8; 4];
    reader.read_exact(&mut magic).map_err(io_err)?;
    if &magic != MAGIC {
        return Err(format_err("bad magic"));
    }
    let version = read_u32(reader)?;
    if !(MIN_VERSION..=VERSION).contains(&version) {
        return Err(format_err(format!("unsupported version {version}")));
    }
    let count = read_u32(reader)? as usize;
    if count > 100_000 {
        return Err(format_err(format!("implausible layer count {count}")));
    }
    let mut layers = Vec::with_capacity(count);
    for _ in 0..count {
        let tag = read_u8(reader)?;
        let layer = match tag {
            0 => Layer::Conv2d(read_conv(reader)?),
            1 => {
                let weight = read_tensor(reader)?;
                let bias = read_opt_tensor(reader)?;
                Layer::Linear(Linear::from_parts(weight, bias)?)
            }
            2 => Layer::BatchNorm2d(read_bn(reader)?),
            3 => Layer::Relu(Relu::new()),
            4 => {
                let lam = read_f32(reader)?;
                if lam <= 0.0 {
                    return Err(format_err(format!("non-positive clip bound {lam}")));
                }
                Layer::Clip(Clip::new(lam))
            }
            5 => {
                let kernel = read_u32(reader)? as usize;
                let stride = read_u32(reader)? as usize;
                Layer::AvgPool2d(AvgPool2d::new(kernel, stride)?)
            }
            6 => {
                let kernel = read_u32(reader)? as usize;
                let stride = read_u32(reader)? as usize;
                Layer::MaxPool2d(MaxPool2d::new(kernel, stride)?)
            }
            7 => Layer::GlobalAvgPool(GlobalAvgPool::new()),
            8 => Layer::Flatten(Flatten::new()),
            9 => {
                let conv1 = read_conv(reader)?;
                let bn1 = read_opt_bn(reader)?;
                let clip1 = read_opt_clip(reader)?;
                let conv2 = read_conv(reader)?;
                let bn2 = read_opt_bn(reader)?;
                let shortcut = match read_u8(reader)? {
                    0 => Shortcut::Identity,
                    1 => {
                        let conv = read_conv(reader)?;
                        let bn = read_opt_bn(reader)?;
                        Shortcut::Projection { conv, bn }
                    }
                    other => return Err(format_err(format!("bad shortcut tag {other}"))),
                };
                let clip_out = read_opt_clip(reader)?;
                Layer::Residual(ResidualBlock::from_parts(
                    conv1, bn1, clip1, conv2, bn2, shortcut, clip_out,
                ))
            }
            10 => {
                let p = read_f32(reader)?;
                if version >= 2 {
                    let seed = read_u64(reader)?;
                    let calls = read_u64(reader)?;
                    Layer::Dropout(Dropout::from_saved(p, seed, calls)?)
                } else {
                    // v1 never stored the seed; tag the layer so the
                    // trainer can refuse to silently resume with a
                    // different mask stream.
                    Layer::Dropout(Dropout::from_legacy_record(p)?)
                }
            }
            other => return Err(format_err(format!("unknown layer tag {other}"))),
        };
        layers.push(layer);
    }
    Ok(Network::new(layers))
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use tcl_tensor::SeededRng;

    fn roundtrip(net: &Network) -> Network {
        let mut buf = Vec::new();
        save_network(&mut buf, net).unwrap();
        load_network(&mut buf.as_slice()).unwrap()
    }

    fn assert_same_function(a: &Network, b: &Network, input: &Tensor) {
        let mut a = a.clone();
        let mut b = b.clone();
        let ya = a.forward(input, Mode::Eval).unwrap();
        let yb = b.forward(input, Mode::Eval).unwrap();
        assert!(ya.max_abs_diff(&yb).unwrap() < 1e-6);
    }

    #[test]
    fn roundtrips_a_conv_classifier() {
        let mut rng = SeededRng::new(0);
        let net = Network::new(vec![
            Layer::Conv2d(Conv2d::new(3, 4, 3, 1, 1, true, &mut rng).unwrap()),
            Layer::BatchNorm2d(BatchNorm2d::new(4).unwrap()),
            Layer::Relu(Relu::new()),
            Layer::Clip(Clip::new(1.7)),
            Layer::AvgPool2d(AvgPool2d::new(2, 2).unwrap()),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(4 * 4 * 4, 5, true, &mut rng).unwrap()),
        ]);
        let back = roundtrip(&net);
        assert_eq!(back.len(), net.len());
        assert_eq!(back.clip_lambdas(), vec![1.7]);
        let x = rng.uniform_tensor([2, 3, 8, 8], -1.0, 1.0);
        assert_same_function(&net, &back, &x);
    }

    #[test]
    fn roundtrips_residual_blocks_of_both_types() {
        let mut rng = SeededRng::new(1);
        let net = Network::new(vec![
            Layer::Conv2d(Conv2d::new(3, 4, 3, 1, 1, false, &mut rng).unwrap()),
            Layer::BatchNorm2d(BatchNorm2d::new(4).unwrap()),
            Layer::Relu(Relu::new()),
            Layer::Residual(ResidualBlock::new(4, 4, 1, true, Some(2.0), &mut rng).unwrap()),
            Layer::Residual(ResidualBlock::new(4, 8, 2, true, Some(2.0), &mut rng).unwrap()),
            Layer::GlobalAvgPool(GlobalAvgPool::new()),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(8, 3, true, &mut rng).unwrap()),
        ]);
        let back = roundtrip(&net);
        let x = rng.uniform_tensor([2, 3, 8, 8], -1.0, 1.0);
        assert_same_function(&net, &back, &x);
    }

    #[test]
    fn roundtrips_maxpool_variant() {
        let mut rng = SeededRng::new(2);
        let net = Network::new(vec![
            Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, true, &mut rng).unwrap()),
            Layer::Relu(Relu::new()),
            Layer::MaxPool2d(MaxPool2d::new(2, 2).unwrap()),
            Layer::Flatten(Flatten::new()),
            Layer::Linear(Linear::new(2 * 2 * 2, 2, true, &mut rng).unwrap()),
        ]);
        let back = roundtrip(&net);
        let x = rng.uniform_tensor([1, 1, 4, 4], -1.0, 1.0);
        assert_same_function(&net, &back, &x);
    }

    #[test]
    fn bad_magic_is_rejected() {
        let buf = b"NOPE\x01\x00\x00\x00\x00\x00\x00\x00".to_vec();
        assert!(load_network(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn truncated_stream_is_rejected() {
        let mut rng = SeededRng::new(3);
        let net = Network::new(vec![Layer::Linear(
            Linear::new(4, 4, true, &mut rng).unwrap(),
        )]);
        let mut buf = Vec::new();
        save_network(&mut buf, &net).unwrap();
        buf.truncate(buf.len() / 2);
        assert!(load_network(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn unknown_layer_tag_is_rejected() {
        let mut buf = Vec::new();
        buf.extend_from_slice(b"TCLN");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(200); // bogus tag
        assert!(load_network(&mut buf.as_slice()).is_err());
    }

    #[test]
    fn dropout_seed_and_cursor_survive_roundtrip() {
        let mut d = Dropout::new(0.4, 0xD00D).unwrap();
        // Advance the mask stream so the cursor is nonzero.
        d.forward(&Tensor::ones([8]), Mode::Train);
        d.forward(&Tensor::ones([8]), Mode::Train);
        let net = Network::new(vec![Layer::Dropout(d)]);
        let back = roundtrip(&net);
        if let Layer::Dropout(b) = &back.layers()[0] {
            assert_eq!(b.seed(), 0xD00D);
            assert_eq!(b.calls(), 2);
            assert!(!b.has_legacy_seed());
        } else {
            panic!("expected dropout layer");
        }
    }

    #[test]
    fn v1_dropout_records_load_as_legacy() {
        // Hand-built v1 file: magic, version 1, one dropout layer (p only).
        let mut buf = Vec::new();
        buf.extend_from_slice(b"TCLN");
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(10);
        buf.extend_from_slice(&0.5f32.to_le_bytes());
        let net = load_network(&mut buf.as_slice()).unwrap();
        if let Layer::Dropout(d) = &net.layers()[0] {
            assert!(d.has_legacy_seed());
            assert_eq!(d.p, 0.5);
        } else {
            panic!("expected dropout layer");
        }
    }

    #[test]
    fn mismatched_batch_norm_lengths_are_rejected() {
        // Serialize a batch-norm whose beta is shorter than gamma.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"TCLN");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(2); // batch-norm tag
        let vec_tensor = |n: usize| {
            let mut b = Vec::new();
            b.extend_from_slice(&1u32.to_le_bytes()); // rank 1
            b.extend_from_slice(&(n as u32).to_le_bytes());
            for _ in 0..n {
                b.extend_from_slice(&1.0f32.to_le_bytes());
            }
            b
        };
        buf.extend_from_slice(&vec_tensor(4)); // gamma
        buf.extend_from_slice(&vec_tensor(3)); // beta: wrong length
        buf.extend_from_slice(&vec_tensor(4)); // running_mean
        buf.extend_from_slice(&vec_tensor(4)); // running_var
        buf.extend_from_slice(&1e-5f32.to_le_bytes());
        buf.extend_from_slice(&0.1f32.to_le_bytes());
        let err = load_network(&mut buf.as_slice()).unwrap_err();
        let msg = err.to_string();
        assert!(msg.contains("beta length 3"), "{msg}");
    }

    #[test]
    fn lying_tensor_header_fails_without_pre_allocating() {
        // A header that claims a near-cap tensor (192M elements ≈ 768 MB)
        // followed by no payload: the chunked reader must fail at the first
        // short read rather than reserving the full claimed size up front.
        let mut buf = Vec::new();
        buf.extend_from_slice(b"TCLN");
        buf.extend_from_slice(&VERSION.to_le_bytes());
        buf.extend_from_slice(&1u32.to_le_bytes());
        buf.push(1); // linear tag → weight tensor first
        buf.extend_from_slice(&2u32.to_le_bytes()); // rank 2
        buf.extend_from_slice(&(16 * 1024u32).to_le_bytes());
        buf.extend_from_slice(&(12 * 1024u32).to_le_bytes());
        // No payload bytes at all.
        let start = std::time::Instant::now();
        assert!(load_network(&mut buf.as_slice()).is_err());
        // Failing fast is the point: reading must not attempt the full
        // claimed payload.
        assert!(start.elapsed().as_secs() < 5);
    }

    #[test]
    fn batch_norm_statistics_survive_roundtrip() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        bn.running_mean.data_mut()[0] = 3.5;
        bn.running_var.data_mut()[1] = 0.25;
        bn.gamma.value.data_mut()[0] = 2.0;
        let net = Network::new(vec![
            Layer::Conv2d(Conv2d::new(2, 2, 1, 1, 0, false, &mut SeededRng::new(4)).unwrap()),
            Layer::BatchNorm2d(bn),
        ]);
        let back = roundtrip(&net);
        if let Layer::BatchNorm2d(b) = &back.layers()[1] {
            assert_eq!(b.running_mean.at(0), 3.5);
            assert_eq!(b.running_var.at(1), 0.25);
            assert_eq!(b.gamma.value.at(0), 2.0);
        } else {
            panic!("expected batch-norm layer");
        }
    }
}
