//! The layer IR: a closed enum over every layer kind.
//!
//! The conversion pipeline in `tcl-core` is a whole-network rewrite — it
//! folds batch-norms into convolutions, extracts trained clipping bounds,
//! and splits residual blocks into spiking NS/OS layers. A closed `enum`
//! makes those rewrites exhaustive `match`es the compiler checks, instead of
//! downcast chains over `dyn` trait objects.

use crate::error::Result;
use crate::layers::{
    AvgPool2d, BatchNorm2d, Clip, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu,
    ResidualBlock,
};
use crate::param::Param;
use serde::{Deserialize, Serialize};
use tcl_tensor::Tensor;

/// Whether a forward pass is part of training (cache intermediates, use
/// batch statistics) or evaluation (no caching, running statistics).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Mode {
    /// Training: layers cache what backward needs; batch-norm uses batch
    /// statistics and updates running averages.
    Train,
    /// Inference: no caching; batch-norm uses running statistics.
    Eval,
}

/// A network layer.
///
/// # Examples
///
/// ```
/// use tcl_nn::{Layer, Mode};
/// use tcl_nn::layers::Relu;
/// use tcl_tensor::Tensor;
///
/// let mut layer = Layer::Relu(Relu::new());
/// let y = layer.forward(&Tensor::from_slice(&[-1.0, 2.0]), Mode::Eval)?;
/// assert_eq!(y.data(), &[0.0, 2.0]);
/// # Ok::<(), tcl_nn::NnError>(())
/// ```
// Variant sizes intentionally differ: a network holds few layers and
// boxing would complicate the converter's pattern matching.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Layer {
    /// 2-D convolution.
    Conv2d(Conv2d),
    /// Fully connected layer.
    Linear(Linear),
    /// Batch normalization.
    BatchNorm2d(BatchNorm2d),
    /// Rectified linear unit.
    Relu(Relu),
    /// Trainable clipping layer (TCL).
    Clip(Clip),
    /// Average pooling.
    AvgPool2d(AvgPool2d),
    /// Max pooling (baseline networks only; not spike-compatible).
    MaxPool2d(MaxPool2d),
    /// Global average pooling.
    GlobalAvgPool(GlobalAvgPool),
    /// Flatten to `[N, features]`.
    Flatten(Flatten),
    /// Inverted dropout (training-time regularizer; identity at inference,
    /// skipped by the converter).
    Dropout(Dropout),
    /// Residual basic block.
    Residual(ResidualBlock),
}

impl Layer {
    /// Forward pass through whichever layer this is.
    ///
    /// # Errors
    ///
    /// Propagates the wrapped layer's shape/graph errors.
    pub fn forward(&mut self, input: &Tensor, mode: Mode) -> Result<Tensor> {
        match self {
            Layer::Conv2d(l) => l.forward(input, mode),
            Layer::Linear(l) => l.forward(input, mode),
            Layer::BatchNorm2d(l) => l.forward(input, mode),
            Layer::Relu(l) => Ok(l.forward(input, mode)),
            Layer::Clip(l) => Ok(l.forward(input, mode)),
            Layer::AvgPool2d(l) => l.forward(input, mode),
            Layer::MaxPool2d(l) => l.forward(input, mode),
            Layer::GlobalAvgPool(l) => l.forward(input, mode),
            Layer::Flatten(l) => l.forward(input, mode),
            Layer::Dropout(l) => Ok(l.forward(input, mode)),
            Layer::Residual(l) => l.forward(input, mode),
        }
    }

    /// Backward pass through whichever layer this is.
    ///
    /// # Errors
    ///
    /// Returns a graph error if the layer has no cached training-mode
    /// forward state.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        match self {
            Layer::Conv2d(l) => l.backward(grad_output),
            Layer::Linear(l) => l.backward(grad_output),
            Layer::BatchNorm2d(l) => l.backward(grad_output),
            Layer::Relu(l) => l.backward(grad_output),
            Layer::Clip(l) => l.backward(grad_output),
            Layer::AvgPool2d(l) => l.backward(grad_output),
            Layer::MaxPool2d(l) => l.backward(grad_output),
            Layer::GlobalAvgPool(l) => l.backward(grad_output),
            Layer::Flatten(l) => l.backward(grad_output),
            Layer::Dropout(l) => l.backward(grad_output),
            Layer::Residual(l) => l.backward(grad_output),
        }
    }

    /// Visits every trainable parameter of the layer.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        match self {
            Layer::Conv2d(l) => l.visit_params(f),
            Layer::Linear(l) => l.visit_params(f),
            Layer::BatchNorm2d(l) => l.visit_params(f),
            Layer::Clip(l) => l.visit_params(f),
            Layer::Residual(l) => l.visit_params(f),
            Layer::Relu(_)
            | Layer::AvgPool2d(_)
            | Layer::MaxPool2d(_)
            | Layer::GlobalAvgPool(_)
            | Layer::Flatten(_)
            | Layer::Dropout(_) => {}
        }
    }

    /// Short lowercase kind name, for diagnostics and logging.
    pub fn kind_name(&self) -> &'static str {
        match self {
            Layer::Conv2d(_) => "conv2d",
            Layer::Linear(_) => "linear",
            Layer::BatchNorm2d(_) => "batchnorm2d",
            Layer::Relu(_) => "relu",
            Layer::Clip(_) => "clip",
            Layer::AvgPool2d(_) => "avgpool2d",
            Layer::MaxPool2d(_) => "maxpool2d",
            Layer::GlobalAvgPool(_) => "globalavgpool",
            Layer::Flatten(_) => "flatten",
            Layer::Dropout(_) => "dropout",
            Layer::Residual(_) => "residual",
        }
    }

    /// Whether this layer is (or contains) a trainable clipping layer.
    pub fn has_clip(&self) -> bool {
        match self {
            Layer::Clip(_) => true,
            Layer::Residual(r) => r.clip1.is_some() || r.clip_out.is_some(),
            _ => false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcl_tensor::SeededRng;

    #[test]
    fn kind_names_are_stable() {
        let mut rng = SeededRng::new(0);
        let layers = [
            Layer::Conv2d(Conv2d::new(1, 1, 3, 1, 1, true, &mut rng).unwrap()),
            Layer::Relu(Relu::new()),
            Layer::Clip(Clip::new(2.0)),
            Layer::Flatten(Flatten::new()),
        ];
        let names: Vec<&str> = layers.iter().map(|l| l.kind_name()).collect();
        assert_eq!(names, vec!["conv2d", "relu", "clip", "flatten"]);
    }

    #[test]
    fn has_clip_inspects_residual_blocks() {
        let mut rng = SeededRng::new(0);
        let with = ResidualBlock::new(2, 2, 1, true, Some(2.0), &mut rng).unwrap();
        let without = ResidualBlock::new(2, 2, 1, true, None, &mut rng).unwrap();
        assert!(Layer::Residual(with).has_clip());
        assert!(!Layer::Residual(without).has_clip());
        assert!(Layer::Clip(Clip::new(1.0)).has_clip());
        assert!(!Layer::Relu(Relu::new()).has_clip());
    }

    #[test]
    fn stateless_layers_have_no_params() {
        let mut layer = Layer::Relu(Relu::new());
        let mut n = 0;
        layer.visit_params(&mut |_| n += 1);
        assert_eq!(n, 0);
        let mut layer = Layer::Clip(Clip::new(1.0));
        layer.visit_params(&mut |_| n += 1);
        assert_eq!(n, 1);
    }
}
