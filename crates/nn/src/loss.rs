//! Loss functions.

use crate::error::{NnError, Result};
use tcl_tensor::ops;
use tcl_tensor::Tensor;

/// Result of a loss evaluation: the scalar loss and the gradient with
/// respect to the logits, ready to feed into [`crate::Network::backward`].
#[derive(Debug, Clone)]
pub struct LossOutput {
    /// Mean loss over the batch.
    pub loss: f32,
    /// `∂loss/∂logits`, shape `[batch, classes]`.
    pub grad: Tensor,
}

/// Softmax cross-entropy over `[batch, classes]` logits with integer labels.
///
/// Computed in log-space (`loss = logsumexp(z) - z[label]`) for numerical
/// stability; the gradient is the classic `softmax(z) - onehot(label)`,
/// scaled by `1/batch`.
///
/// # Errors
///
/// Returns an error if `logits` is not rank 2, `labels` has the wrong
/// length, or any label is out of range.
///
/// # Examples
///
/// ```
/// use tcl_nn::softmax_cross_entropy;
/// use tcl_tensor::Tensor;
///
/// let logits = Tensor::from_vec([1, 3], vec![5.0, -5.0, -5.0])?;
/// let out = softmax_cross_entropy(&logits, &[0])?;
/// assert!(out.loss < 0.01); // confident and correct => tiny loss
/// # Ok::<(), tcl_nn::NnError>(())
/// ```
pub fn softmax_cross_entropy(logits: &Tensor, labels: &[usize]) -> Result<LossOutput> {
    let (batch, classes) = logits.shape().as_matrix()?;
    if labels.len() != batch {
        return Err(NnError::Training {
            detail: format!("{} labels for a batch of {batch}", labels.len()),
        });
    }
    if batch == 0 {
        return Err(NnError::Training {
            detail: "empty batch".into(),
        });
    }
    for (i, &l) in labels.iter().enumerate() {
        if l >= classes {
            return Err(NnError::Training {
                detail: format!("label {l} at row {i} out of range for {classes} classes"),
            });
        }
    }
    let lse = ops::logsumexp_rows(logits)?;
    let probs = ops::softmax_rows(logits)?;
    let inv_batch = 1.0 / batch as f32;
    let mut loss = 0.0f32;
    let mut grad = probs;
    for (r, (&label, lse_r)) in labels.iter().zip(&lse).enumerate() {
        loss += lse_r - logits.at2(r, label);
        let g = &mut grad.data_mut()[r * classes..(r + 1) * classes];
        g[label] -= 1.0;
        for v in g.iter_mut() {
            *v *= inv_batch;
        }
    }
    Ok(LossOutput {
        loss: loss * inv_batch,
        grad,
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcl_tensor::SeededRng;

    #[test]
    fn uniform_logits_give_log_classes() {
        let logits = Tensor::zeros([2, 4]);
        let out = softmax_cross_entropy(&logits, &[0, 3]).unwrap();
        assert!((out.loss - (4.0f32).ln()).abs() < 1e-5);
    }

    #[test]
    fn gradient_rows_sum_to_zero() {
        let mut rng = SeededRng::new(0);
        let logits = rng.uniform_tensor([3, 5], -2.0, 2.0);
        let out = softmax_cross_entropy(&logits, &[1, 4, 0]).unwrap();
        for r in 0..3 {
            let s: f32 = out.grad.data()[r * 5..(r + 1) * 5].iter().sum();
            assert!(s.abs() < 1e-6);
        }
    }

    #[test]
    fn gradient_matches_finite_differences() {
        let mut rng = SeededRng::new(1);
        let logits = rng.uniform_tensor([2, 3], -1.0, 1.0);
        let labels = [2usize, 0];
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        let eps = 1e-3f32;
        for idx in 0..6 {
            let mut p = logits.clone();
            p.data_mut()[idx] += eps;
            let mut m = logits.clone();
            m.data_mut()[idx] -= eps;
            let fp = softmax_cross_entropy(&p, &labels).unwrap().loss;
            let fm = softmax_cross_entropy(&m, &labels).unwrap().loss;
            let fd = (fp - fm) / (2.0 * eps);
            assert!(
                (out.grad.at(idx) - fd).abs() < 1e-3,
                "idx {idx}: {} vs {fd}",
                out.grad.at(idx)
            );
        }
    }

    #[test]
    fn validates_labels() {
        let logits = Tensor::zeros([2, 3]);
        assert!(softmax_cross_entropy(&logits, &[0]).is_err());
        assert!(softmax_cross_entropy(&logits, &[0, 3]).is_err());
    }

    #[test]
    fn loss_decreases_with_confidence_in_correct_class() {
        let weak = Tensor::from_vec([1, 2], vec![0.5, 0.0]).unwrap();
        let strong = Tensor::from_vec([1, 2], vec![5.0, 0.0]).unwrap();
        let lw = softmax_cross_entropy(&weak, &[0]).unwrap().loss;
        let ls = softmax_cross_entropy(&strong, &[0]).unwrap().loss;
        assert!(ls < lw);
    }

    #[test]
    fn empty_batch_is_rejected() {
        let logits = Tensor::zeros([0, 3]);
        assert!(softmax_cross_entropy(&logits, &[]).is_err());
    }
}
