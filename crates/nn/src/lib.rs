//! # tcl-nn
//!
//! A from-scratch, layer-wise backpropagation neural-network framework built
//! for the TCL ANN-to-SNN reproduction (Ho & Chang, DAC 2021).
//!
//! The framework provides exactly what the paper's training recipe needs:
//!
//! * the standard vision layers — [`layers::Conv2d`], [`layers::Linear`],
//!   [`layers::BatchNorm2d`], pooling, flatten, and the composite
//!   [`layers::ResidualBlock`] (He et al. 2016, Section 5 of the paper);
//! * the paper's contribution as a first-class layer: [`layers::Clip`], the
//!   **trainable clipping layer** of Eqs. 8–9, whose trained bound λ becomes
//!   the norm-factor of the ANN-to-SNN data-normalization (Eq. 5);
//! * softmax cross-entropy ([`softmax_cross_entropy`]), SGD with momentum
//!   and per-parameter-kind weight decay ([`Sgd`]), the paper's step
//!   learning-rate schedule ([`StepSchedule`]), and a mini-batch training
//!   loop ([`train`]).
//!
//! Layers are a closed [`Layer`] enum rather than trait objects so the
//! conversion passes in `tcl-core` can rewrite networks with exhaustive
//! pattern matches.
//!
//! ## Example: train a tiny clipped MLP
//!
//! ```
//! use tcl_nn::{layers::{Clip, Linear, Relu}, Layer, Network, TrainConfig, train};
//! use tcl_tensor::{SeededRng, Tensor};
//!
//! let mut rng = SeededRng::new(0);
//! let mut net = Network::new(vec![
//!     Layer::Linear(Linear::new(2, 8, true, &mut rng)?),
//!     Layer::Relu(Relu::new()),
//!     Layer::Clip(Clip::new(2.0)),
//!     Layer::Linear(Linear::new(8, 2, true, &mut rng)?),
//! ]);
//! let x = Tensor::from_vec([4, 2], vec![1.0, 1.0, 0.9, 1.1, -1.0, -1.0, -0.9, -1.1])?;
//! let y = vec![0, 0, 1, 1];
//! let cfg = TrainConfig::standard(5, 2, 0.05, &[])?;
//! let report = train(&mut net, &x, &y, None, &cfg)?;
//! assert_eq!(report.epochs.len(), 5);
//! # Ok::<(), Box<dyn std::error::Error>>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod augment;
pub mod checkpoint;
mod error;
mod io;
mod layer;
pub mod layers;
mod loss;
mod network;
mod optim;
mod param;
mod trainer;

pub use augment::{augment_batch, AugmentConfig};
pub use checkpoint::{config_fingerprint, CheckpointConfig, CheckpointStore, TrainCheckpoint};
pub use error::{NnError, Result};
pub use io::{load_network, save_network};
pub use layer::{Layer, Mode};
pub use loss::{softmax_cross_entropy, LossOutput};
pub use network::Network;
pub use optim::{Sgd, StepSchedule, LAMBDA_FLOOR};
pub use param::{Param, ParamKind};
pub use trainer::{evaluate, select_rows, train, EpochStats, TrainConfig, TrainReport, Trainer};
