//! Mini-batch training loop.

use crate::augment::{augment_batch, AugmentConfig};
use crate::checkpoint::{config_fingerprint, CheckpointConfig, CheckpointStore, TrainCheckpoint};
use crate::error::{NnError, Result};
use crate::layer::{Layer, Mode};
use crate::loss::softmax_cross_entropy;
use crate::network::Network;
use crate::optim::{Sgd, StepSchedule};
use serde::{Deserialize, Serialize};
use tcl_tensor::{ops, par, SeededRng, Shape, Tensor};

/// Configuration for [`train`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainConfig {
    /// Number of passes over the training set.
    pub epochs: usize,
    /// Mini-batch size.
    pub batch_size: usize,
    /// Learning-rate schedule.
    pub schedule: StepSchedule,
    /// Optimizer template (its learning rate is overwritten per epoch from
    /// the schedule).
    pub optimizer: Sgd,
    /// Seed for epoch shuffles.
    pub shuffle_seed: u64,
    /// Print one line per epoch to stdout.
    pub verbose: bool,
    /// Optional train-time image augmentation (rank-4 inputs only).
    pub augment: Option<AugmentConfig>,
}

impl TrainConfig {
    /// A sensible default configuration mirroring the paper's recipe scaled
    /// down: SGD momentum 0.9, weight decay 5e-4, step decay 0.1.
    ///
    /// # Errors
    ///
    /// Returns a training error for invalid schedule arguments.
    pub fn standard(
        epochs: usize,
        batch_size: usize,
        lr: f32,
        milestones: &[usize],
    ) -> Result<Self> {
        Ok(TrainConfig {
            epochs,
            batch_size,
            schedule: StepSchedule::new(lr, milestones, 0.1)?,
            optimizer: Sgd::new(lr).with_momentum(0.9).with_weight_decay(5e-4),
            shuffle_seed: 0x7C31,
            verbose: false,
            augment: None,
        })
    }
}

/// Per-epoch statistics recorded by [`train`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct EpochStats {
    /// Epoch index (0-based).
    pub epoch: usize,
    /// Mean training loss over the epoch.
    pub train_loss: f32,
    /// Training accuracy over the epoch (computed on the fly).
    pub train_accuracy: f32,
    /// Held-out accuracy, when evaluation data was supplied.
    pub eval_accuracy: Option<f32>,
    /// Learning rate in effect.
    pub learning_rate: f32,
}

/// Summary of a full training run.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct TrainReport {
    /// Per-epoch statistics, in order.
    pub epochs: Vec<EpochStats>,
}

impl TrainReport {
    /// Final held-out accuracy, if evaluation data was supplied.
    pub fn final_eval_accuracy(&self) -> Option<f32> {
        self.epochs.last().and_then(|e| e.eval_accuracy)
    }

    /// Final training accuracy.
    pub fn final_train_accuracy(&self) -> f32 {
        self.epochs.last().map_or(0.0, |e| e.train_accuracy)
    }

    /// Best held-out accuracy across epochs.
    pub fn best_eval_accuracy(&self) -> Option<f32> {
        self.epochs
            .iter()
            .filter_map(|e| e.eval_accuracy)
            .fold(None, |acc, v| Some(acc.map_or(v, |a: f32| a.max(v))))
    }
}

/// Gathers the rows of `data` (along the first dimension) selected by
/// `indices` into a new tensor.
///
/// Works for any rank ≥ 1; used for mini-batch extraction.
///
/// # Errors
///
/// Returns an error if `data` is rank 0 or any index is out of bounds.
pub fn select_rows(data: &Tensor, indices: &[usize]) -> Result<Tensor> {
    let dims = data.dims();
    if dims.is_empty() {
        return Err(NnError::Training {
            detail: "cannot batch a rank-0 tensor".into(),
        });
    }
    let n = dims[0];
    let row = data.len() / n.max(1);
    let mut out_dims = dims.to_vec();
    out_dims[0] = indices.len();
    let mut out = Vec::with_capacity(indices.len() * row);
    for &i in indices {
        if i >= n {
            return Err(NnError::Training {
                detail: format!("batch index {i} out of bounds for {n} rows"),
            });
        }
        out.extend_from_slice(&data.data()[i * row..(i + 1) * row]);
    }
    Ok(Tensor::from_vec(Shape::new(out_dims), out)?)
}

/// Forward-passes one evaluation mini-batch, returning its correct count.
fn eval_batch(
    net: &mut Network,
    inputs: &Tensor,
    labels: &[usize],
    start: usize,
    end: usize,
) -> Result<usize> {
    let idx: Vec<usize> = (start..end).collect();
    let x = select_rows(inputs, &idx)?;
    let logits = net.forward(&x, Mode::Eval)?;
    let preds = ops::argmax_rows(&logits)?;
    Ok(preds
        .iter()
        .zip(&labels[start..end])
        .filter(|(p, l)| p == l)
        .count())
}

/// Evaluates classification accuracy of `net` on `(inputs, labels)` in
/// mini-batches of `batch_size` (evaluation mode, no caching).
///
/// Evaluation batches are independent forward passes, so they run in
/// parallel: each worker thread evaluates a contiguous range of batches on
/// its own clone of the network and the correct counts are summed in batch
/// order. The accuracy is identical for every thread count; `TCL_THREADS=1`
/// forces serial execution.
///
/// # Errors
///
/// Returns an error for empty data, mismatched lengths, or layer failures
/// (the earliest failing batch's error with multiple failures).
pub fn evaluate(
    net: &Network,
    inputs: &Tensor,
    labels: &[usize],
    batch_size: usize,
) -> Result<f32> {
    let n = inputs.dims().first().copied().unwrap_or(0);
    if n == 0 || labels.len() != n {
        return Err(NnError::Training {
            detail: format!("evaluate: {n} inputs vs {} labels", labels.len()),
        });
    }
    if batch_size == 0 {
        return Err(NnError::Training {
            detail: "batch size must be nonzero".into(),
        });
    }
    let batch_count = n.div_ceil(batch_size);
    let mut slots: Vec<Option<Result<usize>>> = Vec::with_capacity(batch_count);
    slots.resize_with(batch_count, || None);
    par::par_items_mut(par::current(), &mut slots, 1, 1, 1, |first, run| {
        // One clone per worker run; Mode::Eval forward passes still update
        // per-layer scratch, so each worker needs its own network.
        let mut worker_net = net.clone();
        for (offset, slot) in run.iter_mut().enumerate() {
            let start = (first + offset) * batch_size;
            let end = (start + batch_size).min(n);
            *slot = Some(eval_batch(&mut worker_net, inputs, labels, start, end));
        }
    });
    let mut correct = 0usize;
    for slot in slots {
        // lint: allow(P1) par_items_mut visits every slot exactly once
        correct += slot.expect("evaluate: every batch slot filled")?;
    }
    Ok(correct as f32 / n as f32)
}

/// Rejects resuming *training* through a network whose dropout layers came
/// from a v1 model record: their original seed was never persisted, so the
/// mask stream cannot be reproduced and bit-exact resume is impossible.
fn reject_legacy_dropout(net: &Network) -> Result<()> {
    for layer in net.layers() {
        if let Layer::Dropout(d) = layer {
            if d.has_legacy_seed() {
                return Err(NnError::Checkpoint {
                    detail: "network contains a dropout layer loaded from a v1 model \
                             record (seed not persisted); it can be evaluated and \
                             converted but not resumed for training"
                        .into(),
                });
            }
        }
    }
    Ok(())
}

/// Validates `(inputs, labels, config)` and returns the row count.
fn validate_train_args(inputs: &Tensor, labels: &[usize], config: &TrainConfig) -> Result<usize> {
    let n = inputs.dims().first().copied().unwrap_or(0);
    if n == 0 || labels.len() != n {
        return Err(NnError::Training {
            detail: format!("train: {n} inputs vs {} labels", labels.len()),
        });
    }
    if config.batch_size == 0 || config.epochs == 0 {
        return Err(NnError::Training {
            detail: "epochs and batch size must be nonzero".into(),
        });
    }
    Ok(n)
}

/// Runs one training epoch (shuffle, mini-batch SGD, optional eval) and
/// appends its statistics to `report`.
#[allow(clippy::too_many_arguments)] // one argument per piece of loop state
fn run_epoch(
    net: &mut Network,
    inputs: &Tensor,
    labels: &[usize],
    eval: Option<(&Tensor, &[usize])>,
    config: &TrainConfig,
    optimizer: &mut Sgd,
    rng: &mut SeededRng,
    report: &mut TrainReport,
    epoch: usize,
) -> Result<()> {
    let n = labels.len();
    let _span = tcl_telemetry::span_with("train.epoch", || vec![("epoch", epoch as f64)]);
    // lint: allow(D1) wall time feeds only the gated train.epochs_per_sec
    // heartbeat gauge; training math never depends on it
    let epoch_start = std::time::Instant::now();
    let lr = config.schedule.rate_at(epoch);
    optimizer.set_learning_rate(lr);
    let perm = rng.permutation(n);
    let mut epoch_loss = 0.0f64;
    let mut correct = 0usize;
    let mut batches = 0usize;
    for chunk in perm.chunks(config.batch_size) {
        let mut x = select_rows(inputs, chunk)?;
        if let Some(aug) = &config.augment {
            x = augment_batch(&x, aug, rng)?;
        }
        let y: Vec<usize> = chunk.iter().map(|&i| labels[i]).collect();
        net.zero_grad();
        let logits = net.forward(&x, Mode::Train)?;
        let out = softmax_cross_entropy(&logits, &y)?;
        net.backward(&out.grad)?;
        optimizer.step(net);
        epoch_loss += out.loss as f64;
        batches += 1;
        let preds = ops::argmax_rows(&logits)?;
        correct += preds.iter().zip(&y).filter(|(p, l)| p == l).count();
    }
    let train_loss = (epoch_loss / batches.max(1) as f64) as f32;
    let train_accuracy = correct as f32 / n as f32;
    let eval_accuracy = match eval {
        Some((ex, ey)) => Some(evaluate(net, ex, ey, config.batch_size)?),
        None => None,
    };
    if tcl_telemetry::metrics_enabled() {
        tcl_telemetry::gauge_set("train.loss", f64::from(train_loss));
        tcl_telemetry::gauge_set("train.accuracy", f64::from(train_accuracy));
        if let Some(ea) = eval_accuracy {
            tcl_telemetry::gauge_set("train.eval_accuracy", f64::from(ea));
        }
        // Heartbeat for the live exporter (`TCL_OBS_ADDR`): how fast
        // training is moving right now, refreshed once per epoch.
        let elapsed = epoch_start.elapsed().as_secs_f64();
        if elapsed > 0.0 {
            tcl_telemetry::gauge_set("train.epochs_per_sec", 1.0 / elapsed);
        }
    }
    if config.verbose {
        let line = match eval_accuracy {
            Some(ea) => format!(
                "epoch {epoch:3}  lr {lr:.4}  loss {train_loss:.4}  train-acc {train_accuracy:.4}  eval-acc {ea:.4}"
            ),
            None => format!(
                "epoch {epoch:3}  lr {lr:.4}  loss {train_loss:.4}  train-acc {train_accuracy:.4}"
            ),
        };
        tcl_telemetry::log("trainer", &line);
    }
    report.epochs.push(EpochStats {
        epoch,
        train_loss,
        train_accuracy,
        eval_accuracy,
        learning_rate: lr,
    });
    Ok(())
}

/// Trains `net` on `(inputs, labels)` with softmax cross-entropy.
///
/// When `eval` is supplied, held-out accuracy is computed after every epoch
/// and recorded in the report.
///
/// This is the one-shot entry point; [`Trainer::run_resumable`] adds
/// crash-safe checkpointing on top of the identical epoch loop, so the two
/// produce bit-identical networks for the same configuration.
///
/// # Errors
///
/// Returns an error for empty/mismatched data or layer failures.
pub fn train(
    net: &mut Network,
    inputs: &Tensor,
    labels: &[usize],
    eval: Option<(&Tensor, &[usize])>,
    config: &TrainConfig,
) -> Result<TrainReport> {
    Trainer::new(config.clone()).run(net, inputs, labels, eval)
}

/// Training driver that owns the epoch loop and, optionally, crash-safe
/// checkpointing.
///
/// Without a [`CheckpointConfig`] it behaves exactly like [`train`]. With
/// one, [`Trainer::run_resumable`] snapshots full training state every
/// `every` epochs and transparently restarts from the newest valid snapshot
/// when re-invoked — bit-exactly: `N` epochs straight and `N/2` epochs +
/// crash + resume produce identical weights.
///
/// # Examples
///
/// ```no_run
/// use tcl_nn::{CheckpointConfig, TrainConfig, Trainer};
///
/// let config = TrainConfig::standard(20, 32, 0.05, &[10])?;
/// let trainer = Trainer::new(config)
///     .with_checkpoints(CheckpointConfig::new("run.ckpt").with_every(5));
/// # let _ = trainer;
/// # Ok::<(), tcl_nn::NnError>(())
/// ```
#[derive(Debug, Clone)]
pub struct Trainer {
    config: TrainConfig,
    checkpoint: Option<CheckpointConfig>,
}

impl Trainer {
    /// Creates a driver for `config` with checkpointing disabled.
    pub fn new(config: TrainConfig) -> Self {
        Trainer {
            config,
            checkpoint: None,
        }
    }

    /// Enables crash-safe checkpointing into `checkpoint.dir`.
    pub fn with_checkpoints(mut self, checkpoint: CheckpointConfig) -> Self {
        self.checkpoint = Some(checkpoint);
        self
    }

    /// The training configuration this driver runs.
    pub fn config(&self) -> &TrainConfig {
        &self.config
    }

    /// Trains start-to-finish without reading or writing checkpoints.
    ///
    /// # Errors
    ///
    /// Returns an error for empty/mismatched data, layer failures, or a
    /// network whose dropout state cannot be reproduced (v1 records).
    pub fn run(
        &self,
        net: &mut Network,
        inputs: &Tensor,
        labels: &[usize],
        eval: Option<(&Tensor, &[usize])>,
    ) -> Result<TrainReport> {
        validate_train_args(inputs, labels, &self.config)?;
        reject_legacy_dropout(net)?;
        let mut rng = SeededRng::new(self.config.shuffle_seed);
        let mut optimizer = self.config.optimizer.clone();
        let mut report = TrainReport { epochs: Vec::new() };
        for epoch in 0..self.config.epochs {
            run_epoch(
                net,
                inputs,
                labels,
                eval,
                &self.config,
                &mut optimizer,
                &mut rng,
                &mut report,
                epoch,
            )?;
        }
        Ok(report)
    }

    /// Trains with crash-safe checkpointing: resumes from the newest valid
    /// snapshot in the checkpoint directory (falling back to older ones if
    /// the newest is corrupt) and snapshots every `every` completed epochs
    /// plus once at completion.
    ///
    /// Resume is **bit-exact**: parameters, momentum buffers, the shuffle
    /// RNG stream, and dropout mask cursors are all restored, so the run
    /// continues on the identical trajectory. Telemetry counters
    /// `ckpt.resumes`, `ckpt.writes`, `ckpt.bytes` and gauge
    /// `ckpt.write_ms` track checkpoint activity.
    ///
    /// Calling without a [`CheckpointConfig`] degrades to [`Trainer::run`].
    ///
    /// # Errors
    ///
    /// Returns an error for invalid data, layer failures, checkpoint I/O
    /// failures, or a snapshot whose configuration fingerprint does not
    /// match `config` (training with different hyper-parameters must not
    /// silently continue someone else's run).
    pub fn run_resumable(
        &self,
        net: &mut Network,
        inputs: &Tensor,
        labels: &[usize],
        eval: Option<(&Tensor, &[usize])>,
    ) -> Result<TrainReport> {
        let Some(ckpt_config) = &self.checkpoint else {
            return self.run(net, inputs, labels, eval);
        };
        validate_train_args(inputs, labels, &self.config)?;
        reject_legacy_dropout(net)?;
        let store = CheckpointStore::new(ckpt_config);
        let fingerprint = config_fingerprint(&self.config);

        let mut rng = SeededRng::new(self.config.shuffle_seed);
        let mut optimizer = self.config.optimizer.clone();
        let mut report = TrainReport { epochs: Vec::new() };
        let mut start_epoch = 0usize;

        if let Some(snapshot) = store.load_latest() {
            if snapshot.config_fingerprint != fingerprint {
                return Err(NnError::Checkpoint {
                    detail: format!(
                        "checkpoint in {} was written by a run with different \
                         hyper-parameters (fingerprint {:016x} != {:016x}); \
                         refusing to resume",
                        ckpt_config.dir.display(),
                        snapshot.config_fingerprint,
                        fingerprint
                    ),
                });
            }
            reject_legacy_dropout(&snapshot.network)?;
            *net = snapshot.network;
            rng = SeededRng::from_state(snapshot.rng_state);
            report = snapshot.report;
            start_epoch = snapshot.epochs_done;
            if tcl_telemetry::metrics_enabled() {
                tcl_telemetry::counter_add("ckpt.resumes", 1);
            }
            tcl_telemetry::log(
                "ckpt",
                &format!(
                    "resuming from {} at epoch {start_epoch}/{}",
                    ckpt_config.dir.display(),
                    self.config.epochs
                ),
            );
        }

        for epoch in start_epoch..self.config.epochs {
            run_epoch(
                net,
                inputs,
                labels,
                eval,
                &self.config,
                &mut optimizer,
                &mut rng,
                &mut report,
                epoch,
            )?;
            let done = epoch + 1;
            if done % ckpt_config.every == 0 || done == self.config.epochs {
                let snapshot = TrainCheckpoint::capture(net, &rng, &report, &self.config, done);
                store.write(&snapshot)?;
            }
        }
        Ok(report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::layer::Layer;
    use crate::layers::{Clip, Linear, Relu};

    fn blob_data(seed: u64, n_per_class: usize) -> (Tensor, Vec<usize>) {
        // Two Gaussian blobs in 2-D.
        let mut rng = SeededRng::new(seed);
        let mut xs = Vec::new();
        let mut ys = Vec::new();
        for class in 0..2usize {
            let cx = if class == 0 { 1.5 } else { -1.5 };
            for _ in 0..n_per_class {
                xs.push(cx + 0.4 * rng.normal());
                xs.push(cx + 0.4 * rng.normal());
                ys.push(class);
            }
        }
        (Tensor::from_vec([n_per_class * 2, 2], xs).unwrap(), ys)
    }

    fn mlp(seed: u64) -> Network {
        let mut rng = SeededRng::new(seed);
        Network::new(vec![
            Layer::Linear(Linear::new(2, 16, true, &mut rng).unwrap()),
            Layer::Relu(Relu::new()),
            Layer::Clip(Clip::new(2.0)),
            Layer::Linear(Linear::new(16, 2, true, &mut rng).unwrap()),
        ])
    }

    #[test]
    fn training_solves_linearly_separable_blobs() {
        let (x, y) = blob_data(0, 40);
        let (ex, ey) = blob_data(1, 20);
        let mut net = mlp(2);
        let cfg = TrainConfig::standard(15, 16, 0.05, &[10]).unwrap();
        let report = train(&mut net, &x, &y, Some((&ex, &ey)), &cfg).unwrap();
        let acc = report.final_eval_accuracy().unwrap();
        assert!(acc > 0.95, "eval accuracy {acc}");
        assert_eq!(report.epochs.len(), 15);
    }

    #[test]
    fn select_rows_gathers_in_order() {
        let t = Tensor::from_fn([4, 3], |i| i as f32);
        let s = select_rows(&t, &[2, 0]).unwrap();
        assert_eq!(s.dims(), &[2, 3]);
        assert_eq!(s.data(), &[6.0, 7.0, 8.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn select_rows_validates_indices() {
        let t = Tensor::zeros([2, 2]);
        assert!(select_rows(&t, &[5]).is_err());
    }

    #[test]
    fn select_rows_works_on_rank_4() {
        let t = Tensor::from_fn([3, 2, 2, 2], |i| i as f32);
        let s = select_rows(&t, &[1]).unwrap();
        assert_eq!(s.dims(), &[1, 2, 2, 2]);
        assert_eq!(s.at(0), 8.0);
    }

    #[test]
    fn evaluate_validates_inputs() {
        let net = mlp(3);
        let x = Tensor::zeros([2, 2]);
        assert!(evaluate(&net, &x, &[0], 4).is_err());
        assert!(evaluate(&net, &x, &[0, 1], 0).is_err());
    }

    #[test]
    fn train_validates_config() {
        let (x, y) = blob_data(0, 4);
        let mut net = mlp(4);
        let mut cfg = TrainConfig::standard(0, 4, 0.1, &[]).unwrap();
        assert!(train(&mut net, &x, &y, None, &cfg).is_err());
        cfg.epochs = 1;
        cfg.batch_size = 0;
        assert!(train(&mut net, &x, &y, None, &cfg).is_err());
    }

    #[test]
    fn report_tracks_best_accuracy() {
        let report = TrainReport {
            epochs: vec![
                EpochStats {
                    epoch: 0,
                    train_loss: 1.0,
                    train_accuracy: 0.5,
                    eval_accuracy: Some(0.6),
                    learning_rate: 0.1,
                },
                EpochStats {
                    epoch: 1,
                    train_loss: 0.5,
                    train_accuracy: 0.8,
                    eval_accuracy: Some(0.9),
                    learning_rate: 0.1,
                },
                EpochStats {
                    epoch: 2,
                    train_loss: 0.4,
                    train_accuracy: 0.85,
                    eval_accuracy: Some(0.85),
                    learning_rate: 0.1,
                },
            ],
        };
        assert_eq!(report.best_eval_accuracy(), Some(0.9));
        assert_eq!(report.final_eval_accuracy(), Some(0.85));
        assert_eq!(report.final_train_accuracy(), 0.85);
    }

    #[test]
    fn lambda_moves_during_training() {
        let (x, y) = blob_data(7, 30);
        let mut net = mlp(8);
        let before = net.clip_lambdas()[0];
        let cfg = TrainConfig::standard(5, 10, 0.05, &[]).unwrap();
        train(&mut net, &x, &y, None, &cfg).unwrap();
        let after = net.clip_lambdas()[0];
        assert_ne!(before, after, "λ should be updated by training");
    }
}
