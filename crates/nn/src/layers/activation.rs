//! Activation layers: ReLU and the paper's trainable clipping layer (TCL).

use crate::error::{NnError, Result};
use crate::param::{Param, ParamKind};
use serde::{Deserialize, Serialize};
use tcl_tensor::Tensor;

/// Rectified linear unit: `y = max(0, x)` (Eq. 4 of the paper).
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Relu {
    // Mask of positions where the input was strictly positive.
    mask: Option<Vec<bool>>,
}

impl Relu {
    /// Creates a ReLU layer.
    pub fn new() -> Self {
        Relu { mask: None }
    }

    /// Forward pass; caches the positivity mask when training.
    pub fn forward(&mut self, input: &Tensor, mode: crate::Mode) -> Tensor {
        let out = input.map(|v| v.max(0.0));
        self.mask = match mode {
            crate::Mode::Train => Some(input.data().iter().map(|&v| v > 0.0).collect()),
            crate::Mode::Eval => None,
        };
        out
    }

    /// Backward pass: passes gradient where the input was positive.
    ///
    /// # Errors
    ///
    /// Returns a graph error if called before a training-mode forward pass
    /// or with a gradient of the wrong length.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self.mask.as_ref().ok_or_else(|| NnError::Graph {
            detail: "relu backward called before training-mode forward".into(),
        })?;
        if mask.len() != grad_output.len() {
            return Err(NnError::Graph {
                detail: format!(
                    "relu gradient length {} != cached mask length {}",
                    grad_output.len(),
                    mask.len()
                ),
            });
        }
        let mut out = grad_output.clone();
        for (v, &m) in out.data_mut().iter_mut().zip(mask) {
            if !m {
                *v = 0.0;
            }
        }
        Ok(out)
    }
}

/// The trainable clipping layer — the paper's core contribution (Section 4).
///
/// Forward (Eq. 8): `ā = min(a, λ)` with a single trainable scalar `λ` per
/// layer. Backward (Eq. 9):
///
/// * `∂ā/∂a = 1` below the bound, `0` at or above it;
/// * `∂ā/∂λ = 1` at or above the bound, `0` below it —
///
/// a straight-through estimator identical in spirit to PACT. After training,
/// `λ` *is* the layer's norm-factor for the data-normalization of Eq. 5,
/// which is what couples ANN training to SNN latency.
///
/// The paper initializes `λ` to 2.0 for Cifar-10 and 4.0 for Imagenet
/// (Section 6); [`Clip::new`] takes the initial value explicitly.
///
/// # Examples
///
/// ```
/// use tcl_nn::layers::Clip;
/// use tcl_nn::Mode;
/// use tcl_tensor::Tensor;
///
/// let mut clip = Clip::new(2.0);
/// let x = Tensor::from_slice(&[0.5, 1.9, 2.0, 3.5]);
/// let y = clip.forward(&x, Mode::Eval);
/// assert_eq!(y.data(), &[0.5, 1.9, 2.0, 2.0]);
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Clip {
    /// The trainable clipping bound λ, stored as a one-element tensor.
    pub lambda: Param,
    // Mask of positions that were clipped (input >= λ).
    clipped: Option<Vec<bool>>,
}

impl Clip {
    /// Creates a clipping layer with initial bound `initial_lambda`.
    ///
    /// # Panics
    ///
    /// Panics if `initial_lambda` is not strictly positive — a non-positive
    /// clipping bound zeroes the layer's output permanently.
    pub fn new(initial_lambda: f32) -> Self {
        assert!(
            initial_lambda > 0.0,
            "clipping bound must be strictly positive"
        );
        Clip {
            lambda: Param::new(Tensor::from_slice(&[initial_lambda]), ParamKind::Lambda),
            clipped: None,
        }
    }

    /// Current clipping bound.
    pub fn lambda_value(&self) -> f32 {
        self.lambda.value.at(0)
    }

    /// Forward pass (Eq. 8); caches the clip mask when training.
    pub fn forward(&mut self, input: &Tensor, mode: crate::Mode) -> Tensor {
        let lam = self.lambda_value();
        let out = input.map(|v| v.min(lam));
        self.clipped = match mode {
            crate::Mode::Train => Some(input.data().iter().map(|&v| v >= lam).collect()),
            crate::Mode::Eval => None,
        };
        out
    }

    /// Backward pass (Eq. 9): zeroes gradients at clipped positions and
    /// accumulates their sum into `∂L/∂λ`.
    ///
    /// # Errors
    ///
    /// Returns a graph error if called before a training-mode forward pass
    /// or with a gradient of the wrong length.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self.clipped.as_ref().ok_or_else(|| NnError::Graph {
            detail: "clip backward called before training-mode forward".into(),
        })?;
        if mask.len() != grad_output.len() {
            return Err(NnError::Graph {
                detail: format!(
                    "clip gradient length {} != cached mask length {}",
                    grad_output.len(),
                    mask.len()
                ),
            });
        }
        let mut out = grad_output.clone();
        let mut dlam = 0.0f32;
        for (v, &m) in out.data_mut().iter_mut().zip(mask) {
            if m {
                dlam += *v;
                *v = 0.0;
            }
        }
        self.lambda.grad.data_mut()[0] += dlam;
        Ok(out)
    }

    /// Visits the trainable λ.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.lambda);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    #[test]
    fn relu_zeroes_negative_values() {
        let mut relu = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.0, 2.0]);
        let y = relu.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[0.0, 0.0, 2.0]);
    }

    #[test]
    fn relu_backward_masks_gradient() {
        let mut relu = Relu::new();
        let x = Tensor::from_slice(&[-1.0, 0.5, 0.0]);
        relu.forward(&x, Mode::Train);
        let g = Tensor::from_slice(&[10.0, 20.0, 30.0]);
        let gi = relu.backward(&g).unwrap();
        assert_eq!(gi.data(), &[0.0, 20.0, 0.0]);
    }

    #[test]
    fn clip_bounds_activations_above_lambda() {
        let mut clip = Clip::new(1.5);
        let x = Tensor::from_slice(&[0.0, 1.0, 1.5, 2.0]);
        let y = clip.forward(&x, Mode::Eval);
        assert_eq!(y.data(), &[0.0, 1.0, 1.5, 1.5]);
    }

    #[test]
    fn clip_backward_implements_equation_nine() {
        let mut clip = Clip::new(1.0);
        let x = Tensor::from_slice(&[0.5, 1.0, 2.0, 0.9]);
        clip.forward(&x, Mode::Train);
        let g = Tensor::from_slice(&[1.0, 2.0, 3.0, 4.0]);
        let gi = clip.backward(&g).unwrap();
        // Positions 1 and 2 are at/above λ: input grad zeroed there,
        // λ grad collects 2 + 3 = 5.
        assert_eq!(gi.data(), &[1.0, 0.0, 0.0, 4.0]);
        assert_eq!(clip.lambda.grad.at(0), 5.0);
    }

    #[test]
    fn clip_lambda_gradient_matches_finite_differences() {
        let x = Tensor::from_slice(&[0.2, 0.7, 1.3, 2.9, 0.05, 1.01]);
        let w = [0.3f32, -0.1, 0.5, 0.2, -0.7, 0.9];
        let loss = |lam: f32| -> f32 {
            let mut c = Clip::new(lam);
            let y = c.forward(&x, Mode::Eval);
            y.data().iter().zip(&w).map(|(a, b)| a * b).sum()
        };
        let lam0 = 1.0f32;
        let mut clip = Clip::new(lam0);
        clip.forward(&x, Mode::Train);
        let g = Tensor::from_slice(&w);
        clip.backward(&g).unwrap();
        let eps = 1e-3;
        let fd = (loss(lam0 + eps) - loss(lam0 - eps)) / (2.0 * eps);
        assert!(
            (clip.lambda.grad.at(0) - fd).abs() < 1e-2,
            "analytic {} vs fd {fd}",
            clip.lambda.grad.at(0)
        );
    }

    #[test]
    #[should_panic(expected = "strictly positive")]
    fn clip_rejects_non_positive_lambda() {
        let _ = Clip::new(0.0);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut relu = Relu::new();
        assert!(relu.backward(&Tensor::zeros([3])).is_err());
        let mut clip = Clip::new(1.0);
        assert!(clip.backward(&Tensor::zeros([3])).is_err());
    }

    #[test]
    fn relu_then_clip_is_clamp() {
        let mut relu = Relu::new();
        let mut clip = Clip::new(1.0);
        let x = Tensor::from_slice(&[-3.0, 0.4, 5.0]);
        let y = clip.forward(&relu.forward(&x, Mode::Eval), Mode::Eval);
        assert_eq!(y.data(), &[0.0, 0.4, 1.0]);
    }
}
