//! Concrete layer implementations.

mod activation;
mod batchnorm;
mod conv;
mod dropout;
mod linear;
mod pool;
mod residual;

pub use activation::{Clip, Relu};
pub use batchnorm::BatchNorm2d;
pub use conv::Conv2d;
pub use dropout::Dropout;
pub use linear::Linear;
pub use pool::{AvgPool2d, Flatten, GlobalAvgPool, MaxPool2d};
pub use residual::{ResidualBlock, Shortcut};
