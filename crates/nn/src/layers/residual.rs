//! The residual basic block (He et al. 2016) with optional TCL clipping.
//!
//! Section 5 of the paper distinguishes two block types:
//!
//! * **Type A** — identity shortcut (input and output channel counts match);
//! * **Type B** — projection shortcut (a 1×1 "ConvSh", used when the block
//!   changes channel count or stride).
//!
//! The conversion pass in `tcl-core` turns either into a spiking block with
//! a non-identity spiking layer (NS) and an output spiking layer (OS); for
//! type A it materializes a *virtual* 1×1 convolution with unit weights so
//! both types share the same OS algebra. To make that rewrite possible the
//! block's internals are public.

use crate::error::{NnError, Result};
use crate::layers::activation::{Clip, Relu};
use crate::layers::batchnorm::BatchNorm2d;
use crate::layers::conv::Conv2d;
use crate::param::Param;
use serde::{Deserialize, Serialize};
use tcl_tensor::{SeededRng, Tensor};

/// The shortcut path of a residual block.
#[allow(clippy::large_enum_variant)]
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum Shortcut {
    /// Direct connection (type-A block).
    Identity,
    /// 1×1 projection convolution, optionally batch-normalized (type-B).
    Projection {
        /// The 1×1 shortcut convolution (`ConvSh` in the paper's Figure 3).
        conv: Conv2d,
        /// Optional batch-norm after the projection.
        bn: Option<BatchNorm2d>,
    },
}

impl Shortcut {
    /// Whether this is an identity (type-A) shortcut.
    pub fn is_identity(&self) -> bool {
        matches!(self, Shortcut::Identity)
    }
}

/// A residual basic block:
/// `out = clip(relu(bn2(conv2(clip(relu(bn1(conv1(x)))))) + shortcut(x)))`.
///
/// Clipping layers are optional — baseline (non-TCL) networks omit them.
/// Batch-norms are optional so that the converter can re-express a folded
/// block with the same type.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct ResidualBlock {
    /// First convolution of the non-identity path.
    pub conv1: Conv2d,
    /// Batch-norm after `conv1`.
    pub bn1: Option<BatchNorm2d>,
    relu1: Relu,
    /// TCL clip after the first ReLU (`λ_c1` in Figure 3).
    pub clip1: Option<Clip>,
    /// Second convolution of the non-identity path.
    pub conv2: Conv2d,
    /// Batch-norm after `conv2`.
    pub bn2: Option<BatchNorm2d>,
    /// The shortcut path.
    pub shortcut: Shortcut,
    relu_out: Relu,
    /// TCL clip after the output ReLU (`λ_out` in Figure 3).
    pub clip_out: Option<Clip>,
    cached_input: Option<Tensor>,
}

impl ResidualBlock {
    /// Creates a freshly initialized residual block.
    ///
    /// A projection shortcut is created automatically when `stride != 1` or
    /// `in_channels != out_channels` (the standard ResNet rule); otherwise
    /// the shortcut is the identity.
    ///
    /// `clip_lambda` of `Some(λ₀)` inserts trainable clipping layers after
    /// both ReLUs with that initial bound.
    ///
    /// # Errors
    ///
    /// Returns an error for zero channel counts or stride.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        stride: usize,
        batch_norm: bool,
        clip_lambda: Option<f32>,
        rng: &mut SeededRng,
    ) -> Result<Self> {
        let conv1 = Conv2d::new(in_channels, out_channels, 3, stride, 1, !batch_norm, rng)?;
        let conv2 = Conv2d::new(out_channels, out_channels, 3, 1, 1, !batch_norm, rng)?;
        let shortcut = if stride != 1 || in_channels != out_channels {
            let conv = Conv2d::new(in_channels, out_channels, 1, stride, 0, !batch_norm, rng)?;
            let bn = if batch_norm {
                Some(BatchNorm2d::new(out_channels)?)
            } else {
                None
            };
            Shortcut::Projection { conv, bn }
        } else {
            Shortcut::Identity
        };
        Ok(ResidualBlock {
            conv1,
            bn1: batch_norm
                .then(|| BatchNorm2d::new(out_channels))
                .transpose()?,
            relu1: Relu::new(),
            clip1: clip_lambda.map(Clip::new),
            conv2,
            bn2: batch_norm
                .then(|| BatchNorm2d::new(out_channels))
                .transpose()?,
            shortcut,
            relu_out: Relu::new(),
            clip_out: clip_lambda.map(Clip::new),
            cached_input: None,
        })
    }

    /// Builds a block from explicit components (used by the converter).
    pub fn from_parts(
        conv1: Conv2d,
        bn1: Option<BatchNorm2d>,
        clip1: Option<Clip>,
        conv2: Conv2d,
        bn2: Option<BatchNorm2d>,
        shortcut: Shortcut,
        clip_out: Option<Clip>,
    ) -> Self {
        ResidualBlock {
            conv1,
            bn1,
            relu1: Relu::new(),
            clip1,
            conv2,
            bn2,
            shortcut,
            relu_out: Relu::new(),
            clip_out,
            cached_input: None,
        }
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the constituent layers; in particular an
    /// identity shortcut with mismatched channel counts fails at the final
    /// addition.
    pub fn forward(&mut self, input: &Tensor, mode: crate::Mode) -> Result<Tensor> {
        let mut h = self.conv1.forward(input, mode)?;
        if let Some(bn) = &mut self.bn1 {
            h = bn.forward(&h, mode)?;
        }
        h = self.relu1.forward(&h, mode);
        if let Some(clip) = &mut self.clip1 {
            h = clip.forward(&h, mode);
        }
        h = self.conv2.forward(&h, mode)?;
        if let Some(bn) = &mut self.bn2 {
            h = bn.forward(&h, mode)?;
        }
        let s = match &mut self.shortcut {
            Shortcut::Identity => input.clone(),
            Shortcut::Projection { conv, bn } => {
                let mut s = conv.forward(input, mode)?;
                if let Some(bn) = bn {
                    s = bn.forward(&s, mode)?;
                }
                s
            }
        };
        let mut y = h.add(&s).map_err(|e| NnError::Graph {
            detail: format!(
                "residual add failed ({e}); identity shortcuts require matching shapes"
            ),
        })?;
        y = self.relu_out.forward(&y, mode);
        if let Some(clip) = &mut self.clip_out {
            y = clip.forward(&y, mode);
        }
        self.cached_input = match mode {
            crate::Mode::Train => Some(input.clone()),
            crate::Mode::Eval => None,
        };
        Ok(y)
    }

    /// Backward pass: accumulates gradients in all constituent layers and
    /// returns the gradient with respect to the block input.
    ///
    /// # Errors
    ///
    /// Returns a graph error if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        if self.cached_input.is_none() {
            return Err(NnError::Graph {
                detail: "residual backward called before training-mode forward".into(),
            });
        }
        let mut g = grad_output.clone();
        if let Some(clip) = &mut self.clip_out {
            g = clip.backward(&g)?;
        }
        g = self.relu_out.backward(&g)?;
        // The add fans the gradient out to both paths unchanged.
        let mut g_main = g.clone();
        if let Some(bn) = &mut self.bn2 {
            g_main = bn.backward(&g_main)?;
        }
        g_main = self.conv2.backward(&g_main)?;
        if let Some(clip) = &mut self.clip1 {
            g_main = clip.backward(&g_main)?;
        }
        g_main = self.relu1.backward(&g_main)?;
        if let Some(bn) = &mut self.bn1 {
            g_main = bn.backward(&g_main)?;
        }
        g_main = self.conv1.backward(&g_main)?;
        let g_short = match &mut self.shortcut {
            Shortcut::Identity => g,
            Shortcut::Projection { conv, bn } => {
                let mut gs = g;
                if let Some(bn) = bn {
                    gs = bn.backward(&gs)?;
                }
                conv.backward(&gs)?
            }
        };
        Ok(g_main.add(&g_short)?)
    }

    /// Visits every trainable parameter in the block.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        self.conv1.visit_params(f);
        if let Some(bn) = &mut self.bn1 {
            bn.visit_params(f);
        }
        if let Some(clip) = &mut self.clip1 {
            clip.visit_params(f);
        }
        self.conv2.visit_params(f);
        if let Some(bn) = &mut self.bn2 {
            bn.visit_params(f);
        }
        if let Shortcut::Projection { conv, bn } = &mut self.shortcut {
            conv.visit_params(f);
            if let Some(bn) = bn {
                bn.visit_params(f);
            }
        }
        if let Some(clip) = &mut self.clip_out {
            clip.visit_params(f);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    fn rng() -> SeededRng {
        SeededRng::new(42)
    }

    #[test]
    fn identity_block_preserves_shape() {
        let mut r = rng();
        let mut block = ResidualBlock::new(4, 4, 1, true, Some(2.0), &mut r).unwrap();
        assert!(block.shortcut.is_identity());
        let x = r.uniform_tensor([2, 4, 6, 6], -1.0, 1.0);
        let y = block.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), x.dims());
    }

    #[test]
    fn projection_block_changes_channels_and_stride() {
        let mut r = rng();
        let mut block = ResidualBlock::new(4, 8, 2, true, None, &mut r).unwrap();
        assert!(!block.shortcut.is_identity());
        let x = r.uniform_tensor([1, 4, 6, 6], -1.0, 1.0);
        let y = block.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[1, 8, 3, 3]);
    }

    #[test]
    fn outputs_are_non_negative_and_clipped() {
        let mut r = rng();
        let mut block = ResidualBlock::new(3, 3, 1, true, Some(1.0), &mut r).unwrap();
        let x = r.uniform_tensor([2, 3, 5, 5], -2.0, 2.0);
        let y = block.forward(&x, Mode::Eval).unwrap();
        assert!(y.min() >= 0.0);
        assert!(y.max() <= 1.0 + 1e-6);
    }

    #[test]
    fn backward_matches_finite_differences_on_input() {
        let mut r = rng();
        // No batch-norm: BN's batch coupling makes per-element finite
        // differences noisy; conv gradients are exercised separately.
        let mut block = ResidualBlock::new(2, 2, 1, false, Some(2.0), &mut r).unwrap();
        let x = r.uniform_tensor([1, 2, 4, 4], -1.0, 1.0);
        block.forward(&x, Mode::Train).unwrap();
        let w: Vec<f32> = (0..32).map(|i| ((i % 5) as f32 - 2.0) * 0.3).collect();
        let gout = Tensor::from_vec([1, 2, 4, 4], w.clone()).unwrap();
        let gin = block.backward(&gout).unwrap();
        let mut loss = |xt: &Tensor| -> f32 {
            block
                .forward(xt, Mode::Eval)
                .unwrap()
                .data()
                .iter()
                .zip(&w)
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2f32;
        for idx in [0usize, 9, 21, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&xp) - loss(&xm)) / (2.0 * eps);
            assert!(
                (gin.at(idx) - fd).abs() < 3e-2,
                "idx {idx}: analytic {} vs fd {fd}",
                gin.at(idx)
            );
        }
    }

    #[test]
    fn visit_params_counts_expected_parameters() {
        let mut r = rng();
        // BN block: conv1 w, bn1 (γ, β), clip1 λ, conv2 w, bn2 (γ, β),
        // projection conv w + bn (γ, β), clip_out λ  => 11 params.
        let mut block = ResidualBlock::new(2, 4, 2, true, Some(2.0), &mut r).unwrap();
        let mut count = 0;
        block.visit_params(&mut |_| count += 1);
        assert_eq!(count, 11);
    }

    #[test]
    fn identity_mismatch_is_a_graph_error() {
        let mut r = rng();
        let mut block = ResidualBlock::new(2, 2, 1, false, None, &mut r).unwrap();
        // Force a channel mismatch by swapping conv1 for one with more
        // output channels.
        block.conv1 = Conv2d::new(2, 3, 3, 1, 1, true, &mut r).unwrap();
        block.conv2 = Conv2d::new(3, 3, 3, 1, 1, true, &mut r).unwrap();
        let x = r.uniform_tensor([1, 2, 4, 4], 0.0, 1.0);
        let err = block.forward(&x, Mode::Eval).unwrap_err();
        assert!(matches!(err, NnError::Graph { .. }));
    }
}
