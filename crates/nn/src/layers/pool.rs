//! Pooling layers and the flatten adapter.

use crate::error::{NnError, Result};
use serde::{Deserialize, Serialize};
use tcl_tensor::ops;
use tcl_tensor::{Shape, Tensor};

/// Average pooling layer (spike-compatible; used by convertible networks).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct AvgPool2d {
    /// Pooling window extent.
    pub kernel: usize,
    /// Stride between windows.
    pub stride: usize,
    cached_shape: Option<Shape>,
}

impl AvgPool2d {
    /// Creates an average pooling layer.
    ///
    /// # Errors
    ///
    /// Returns a graph error for zero kernel or stride.
    pub fn new(kernel: usize, stride: usize) -> Result<Self> {
        if kernel == 0 || stride == 0 {
            return Err(NnError::Graph {
                detail: "pooling kernel and stride must be nonzero".into(),
            });
        }
        Ok(AvgPool2d {
            kernel,
            stride,
            cached_shape: None,
        })
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors from the pooling kernel.
    pub fn forward(&mut self, input: &Tensor, mode: crate::Mode) -> Result<Tensor> {
        let out = ops::avg_pool2d(input, self.kernel, self.stride)?;
        self.cached_shape = match mode {
            crate::Mode::Train => Some(input.shape().clone()),
            crate::Mode::Eval => None,
        };
        Ok(out)
    }

    /// Backward pass.
    ///
    /// # Errors
    ///
    /// Returns a graph error if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self.cached_shape.as_ref().ok_or_else(|| NnError::Graph {
            detail: "avg-pool backward called before training-mode forward".into(),
        })?;
        Ok(ops::avg_pool2d_backward(
            shape,
            grad_output,
            self.kernel,
            self.stride,
        )?)
    }
}

/// Max pooling layer.
///
/// Present for the unconstrained ANN baselines; convertible networks use
/// [`AvgPool2d`] because a maximum over spike trains has no spiking
/// implementation (Section 3.1 of the paper).
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct MaxPool2d {
    /// Pooling window extent.
    pub kernel: usize,
    /// Stride between windows.
    pub stride: usize,
    cached: Option<(Shape, Vec<usize>)>,
}

impl MaxPool2d {
    /// Creates a max pooling layer.
    ///
    /// # Errors
    ///
    /// Returns a graph error for zero kernel or stride.
    pub fn new(kernel: usize, stride: usize) -> Result<Self> {
        if kernel == 0 || stride == 0 {
            return Err(NnError::Graph {
                detail: "pooling kernel and stride must be nonzero".into(),
            });
        }
        Ok(MaxPool2d {
            kernel,
            stride,
            cached: None,
        })
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Propagates geometry errors from the pooling kernel.
    pub fn forward(&mut self, input: &Tensor, mode: crate::Mode) -> Result<Tensor> {
        let fwd = ops::max_pool2d(input, self.kernel, self.stride)?;
        self.cached = match mode {
            crate::Mode::Train => Some((input.shape().clone(), fwd.argmax)),
            crate::Mode::Eval => None,
        };
        Ok(fwd.output)
    }

    /// Backward pass.
    ///
    /// # Errors
    ///
    /// Returns a graph error if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let (shape, argmax) = self.cached.as_ref().ok_or_else(|| NnError::Graph {
            detail: "max-pool backward called before training-mode forward".into(),
        })?;
        Ok(ops::max_pool2d_backward(shape, grad_output, argmax)?)
    }
}

/// Global average pooling: collapses each feature map to its mean.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct GlobalAvgPool {
    cached_shape: Option<Shape>,
}

impl GlobalAvgPool {
    /// Creates a global average pooling layer.
    pub fn new() -> Self {
        GlobalAvgPool { cached_shape: None }
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns a rank error for non-rank-4 input.
    pub fn forward(&mut self, input: &Tensor, mode: crate::Mode) -> Result<Tensor> {
        let out = ops::global_avg_pool(input)?;
        self.cached_shape = match mode {
            crate::Mode::Train => Some(input.shape().clone()),
            crate::Mode::Eval => None,
        };
        Ok(out)
    }

    /// Backward pass.
    ///
    /// # Errors
    ///
    /// Returns a graph error if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self.cached_shape.as_ref().ok_or_else(|| NnError::Graph {
            detail: "global-avg-pool backward called before training-mode forward".into(),
        })?;
        Ok(ops::global_avg_pool_backward(shape, grad_output)?)
    }
}

/// Flattens `[N, C, H, W]` activations into `[N, C·H·W]` rows for the
/// classifier head.
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct Flatten {
    cached_shape: Option<Shape>,
}

impl Flatten {
    /// Creates a flatten layer.
    pub fn new() -> Self {
        Flatten { cached_shape: None }
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns a rank error for non-rank-4 input.
    pub fn forward(&mut self, input: &Tensor, mode: crate::Mode) -> Result<Tensor> {
        let (n, c, h, w) = input.shape().as_nchw()?;
        self.cached_shape = match mode {
            crate::Mode::Train => Some(input.shape().clone()),
            crate::Mode::Eval => None,
        };
        Ok(input.reshape([n, c * h * w])?)
    }

    /// Backward pass: restores the cached rank-4 shape.
    ///
    /// # Errors
    ///
    /// Returns a graph error if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let shape = self.cached_shape.as_ref().ok_or_else(|| NnError::Graph {
            detail: "flatten backward called before training-mode forward".into(),
        })?;
        Ok(grad_output.reshape(shape.clone())?)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    #[test]
    fn avg_pool_roundtrip_gradient_mass() {
        let mut pool = AvgPool2d::new(2, 2).unwrap();
        let x = Tensor::from_fn([1, 1, 4, 4], |i| i as f32);
        let y = pool.forward(&x, Mode::Train).unwrap();
        let g = Tensor::ones(y.shape().clone());
        let gi = pool.backward(&g).unwrap();
        assert!((gi.sum() - g.sum()).abs() < 1e-5);
    }

    #[test]
    fn max_pool_forward_and_backward() {
        let mut pool = MaxPool2d::new(2, 2).unwrap();
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 9.0, 3.0, 4.0]).unwrap();
        let y = pool.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.data(), &[9.0]);
        let gi = pool
            .backward(&Tensor::from_vec([1, 1, 1, 1], vec![5.0]).unwrap())
            .unwrap();
        assert_eq!(gi.data(), &[0.0, 5.0, 0.0, 0.0]);
    }

    #[test]
    fn flatten_roundtrip() {
        let mut fl = Flatten::new();
        let x = Tensor::from_fn([2, 3, 2, 2], |i| i as f32);
        let y = fl.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[2, 12]);
        let back = fl.backward(&y).unwrap();
        assert_eq!(back.dims(), x.dims());
        assert_eq!(back.data(), x.data());
    }

    #[test]
    fn global_avg_pool_layer_works() {
        let mut gap = GlobalAvgPool::new();
        let x = Tensor::from_fn([1, 2, 2, 2], |i| i as f32);
        let y = gap.forward(&x, Mode::Train).unwrap();
        assert_eq!(y.dims(), &[1, 2, 1, 1]);
        assert!((y.at(0) - 1.5).abs() < 1e-6);
        let gi = gap
            .backward(&Tensor::from_vec([1, 2, 1, 1], vec![4.0, 8.0]).unwrap())
            .unwrap();
        assert!((gi.sum() - 12.0).abs() < 1e-5);
    }

    #[test]
    fn constructors_validate_arguments() {
        assert!(AvgPool2d::new(0, 1).is_err());
        assert!(AvgPool2d::new(2, 0).is_err());
        assert!(MaxPool2d::new(0, 2).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut a = AvgPool2d::new(2, 2).unwrap();
        assert!(a.backward(&Tensor::zeros([1, 1, 1, 1])).is_err());
        let mut m = MaxPool2d::new(2, 2).unwrap();
        assert!(m.backward(&Tensor::zeros([1, 1, 1, 1])).is_err());
        let mut f = Flatten::new();
        assert!(f.backward(&Tensor::zeros([1, 4])).is_err());
        let mut g = GlobalAvgPool::new();
        assert!(g.backward(&Tensor::zeros([1, 1, 1, 1])).is_err());
    }
}
