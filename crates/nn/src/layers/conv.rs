//! 2-D convolution layer.

use crate::error::{NnError, Result};
use crate::param::{Param, ParamKind};
use serde::{Deserialize, Serialize};
use tcl_tensor::ops::{self, ConvGeometry};
use tcl_tensor::{SeededRng, Tensor};

/// A 2-D convolution layer with optional bias.
///
/// Weights are stored `[out_channels, in_channels, kh, kw]` (OIHW), the same
/// layout as the paper's PyTorch reference, so the conversion equations
/// (Eq. 5, Eq. 7, and the residual algebra of Section 5) transcribe directly.
///
/// # Examples
///
/// ```
/// use tcl_nn::layers::Conv2d;
/// use tcl_nn::Mode;
/// use tcl_tensor::{SeededRng, Tensor};
///
/// let mut rng = SeededRng::new(0);
/// let mut conv = Conv2d::new(3, 8, 3, 1, 1, true, &mut rng)?;
/// let x = rng.uniform_tensor([2, 3, 8, 8], 0.0, 1.0);
/// let y = conv.forward(&x, Mode::Eval)?;
/// assert_eq!(y.dims(), &[2, 8, 8, 8]);
/// # Ok::<(), tcl_nn::NnError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Conv2d {
    /// Kernel weights, `[out_c, in_c, kh, kw]`.
    pub weight: Param,
    /// Optional per-output-channel bias.
    pub bias: Option<Param>,
    /// Kernel/stride/padding geometry.
    pub geom: ConvGeometry,
    cached_input: Option<Tensor>,
}

impl Conv2d {
    /// Creates a Kaiming-initialized convolution.
    ///
    /// # Errors
    ///
    /// Returns an error for a zero kernel/stride (via [`ConvGeometry::new`])
    /// or zero channel counts.
    pub fn new(
        in_channels: usize,
        out_channels: usize,
        kernel: usize,
        stride: usize,
        padding: usize,
        bias: bool,
        rng: &mut SeededRng,
    ) -> Result<Self> {
        if in_channels == 0 || out_channels == 0 {
            return Err(NnError::Graph {
                detail: "channel counts must be nonzero".into(),
            });
        }
        let geom = ConvGeometry::square(kernel, stride, padding)?;
        let fan_in = in_channels * kernel * kernel;
        let weight = rng.kaiming_normal([out_channels, in_channels, kernel, kernel], fan_in);
        let bias = bias.then(|| Param::new(Tensor::zeros([out_channels]), ParamKind::Bias));
        Ok(Conv2d {
            weight: Param::new(weight, ParamKind::Weight),
            bias,
            geom,
            cached_input: None,
        })
    }

    /// Builds a convolution from explicit parts (used by the converter when
    /// folding batch-norm or materializing virtual shortcut convolutions).
    ///
    /// # Errors
    ///
    /// Returns an error if the weight is not rank 4 or disagrees with the
    /// geometry, or the bias length differs from the output channel count.
    pub fn from_parts(weight: Tensor, bias: Option<Tensor>, geom: ConvGeometry) -> Result<Self> {
        let (out_c, _, kh, kw) = weight.shape().as_nchw()?;
        if kh != geom.kernel_h || kw != geom.kernel_w {
            return Err(NnError::Graph {
                detail: format!(
                    "weight kernel {kh}x{kw} disagrees with geometry {}x{}",
                    geom.kernel_h, geom.kernel_w
                ),
            });
        }
        if let Some(b) = &bias {
            if b.len() != out_c {
                return Err(NnError::Graph {
                    detail: format!("bias length {} != out channels {out_c}", b.len()),
                });
            }
        }
        Ok(Conv2d {
            weight: Param::new(weight, ParamKind::Weight),
            bias: bias.map(|b| Param::new(b, ParamKind::Bias)),
            geom,
            cached_input: None,
        })
    }

    /// Number of output channels.
    pub fn out_channels(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Number of input channels.
    pub fn in_channels(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Forward pass; caches the input for backward when `mode` is
    /// [`crate::Mode::Train`].
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the convolution kernel.
    pub fn forward(&mut self, input: &Tensor, mode: crate::Mode) -> Result<Tensor> {
        let out = ops::conv2d(
            input,
            &self.weight.value,
            self.bias.as_ref().map(|b| &b.value),
            self.geom,
        )?;
        self.cached_input = match mode {
            crate::Mode::Train => Some(input.clone()),
            crate::Mode::Eval => None,
        };
        Ok(out)
    }

    /// Backward pass: accumulates weight/bias gradients and returns the input
    /// gradient.
    ///
    /// # Errors
    ///
    /// Returns a graph error if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self.cached_input.as_ref().ok_or_else(|| NnError::Graph {
            detail: "conv2d backward called before training-mode forward".into(),
        })?;
        let grads = ops::conv2d_backward(input, &self.weight.value, grad_output, self.geom)?;
        self.weight.grad.add_assign(&grads.grad_weight)?;
        if let Some(b) = &mut self.bias {
            b.grad.add_assign(&grads.grad_bias)?;
        }
        Ok(grads.grad_input)
    }

    /// Visits every trainable parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    #[test]
    fn rejects_zero_channels() {
        let mut rng = SeededRng::new(0);
        assert!(Conv2d::new(0, 4, 3, 1, 1, true, &mut rng).is_err());
        assert!(Conv2d::new(4, 0, 3, 1, 1, true, &mut rng).is_err());
    }

    #[test]
    fn forward_shape_is_correct() {
        let mut rng = SeededRng::new(1);
        let mut conv = Conv2d::new(2, 5, 3, 2, 1, true, &mut rng).unwrap();
        let x = rng.uniform_tensor([3, 2, 9, 9], -1.0, 1.0);
        let y = conv.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[3, 5, 5, 5]);
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut rng = SeededRng::new(2);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, false, &mut rng).unwrap();
        let g = Tensor::zeros([1, 1, 4, 4]);
        assert!(conv.backward(&g).is_err());
    }

    #[test]
    fn eval_mode_does_not_cache() {
        let mut rng = SeededRng::new(3);
        let mut conv = Conv2d::new(1, 1, 3, 1, 1, false, &mut rng).unwrap();
        let x = rng.uniform_tensor([1, 1, 4, 4], 0.0, 1.0);
        conv.forward(&x, Mode::Eval).unwrap();
        assert!(conv.backward(&Tensor::zeros([1, 1, 4, 4])).is_err());
    }

    #[test]
    fn gradients_accumulate_across_backward_calls() {
        let mut rng = SeededRng::new(4);
        let mut conv = Conv2d::new(1, 1, 1, 1, 0, false, &mut rng).unwrap();
        let x = Tensor::ones([1, 1, 2, 2]);
        let g = Tensor::ones([1, 1, 2, 2]);
        conv.forward(&x, Mode::Train).unwrap();
        conv.backward(&g).unwrap();
        let first = conv.weight.grad.at(0);
        conv.forward(&x, Mode::Train).unwrap();
        conv.backward(&g).unwrap();
        assert!((conv.weight.grad.at(0) - 2.0 * first).abs() < 1e-6);
    }

    #[test]
    fn from_parts_validates_geometry() {
        let w = Tensor::zeros([2, 3, 3, 3]);
        let g5 = ConvGeometry::square(5, 1, 0).unwrap();
        assert!(Conv2d::from_parts(w.clone(), None, g5).is_err());
        let g3 = ConvGeometry::square(3, 1, 1).unwrap();
        assert!(Conv2d::from_parts(w.clone(), Some(Tensor::zeros([5])), g3).is_err());
        assert!(Conv2d::from_parts(w, Some(Tensor::zeros([2])), g3).is_ok());
    }

    #[test]
    fn channel_accessors() {
        let mut rng = SeededRng::new(5);
        let conv = Conv2d::new(3, 7, 3, 1, 1, true, &mut rng).unwrap();
        assert_eq!(conv.in_channels(), 3);
        assert_eq!(conv.out_channels(), 7);
    }
}
