//! Inverted dropout.
//!
//! The reference VGG training recipes the paper builds on regularize the
//! classifier head with dropout. Dropout is a no-op at inference time, so
//! the ANN-to-SNN converter simply skips it — only the *training* dynamics
//! change.

use crate::error::{NnError, Result};
use serde::{Deserialize, Serialize};
use tcl_tensor::{SeededRng, Tensor};

/// Inverted dropout: during training each activation is zeroed with
/// probability `p` and survivors are scaled by `1/(1-p)`, so the expected
/// activation is unchanged and evaluation needs no rescaling.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Dropout {
    /// Drop probability in `[0, 1)`.
    pub p: f32,
    seed: u64,
    calls: u64,
    legacy_seed: bool,
    mask: Option<Vec<bool>>,
}

impl Dropout {
    /// Creates a dropout layer with drop probability `p`.
    ///
    /// The layer derives its per-batch masks deterministically from `seed`
    /// and an internal call counter, so training runs remain reproducible.
    ///
    /// # Errors
    ///
    /// Returns a graph error unless `0 ≤ p < 1`.
    pub fn new(p: f32, seed: u64) -> Result<Self> {
        if !(0.0..1.0).contains(&p) {
            return Err(NnError::Graph {
                detail: format!("dropout probability {p} outside [0, 1)"),
            });
        }
        Ok(Dropout {
            p,
            seed,
            calls: 0,
            legacy_seed: false,
            mask: None,
        })
    }

    /// Rebuilds a layer from persisted state (v2 model files and training
    /// checkpoints), continuing the mask stream exactly where it left off.
    ///
    /// # Errors
    ///
    /// Returns a graph error unless `0 ≤ p < 1`.
    pub fn from_saved(p: f32, seed: u64, calls: u64) -> Result<Self> {
        let mut d = Dropout::new(p, seed)?;
        d.calls = calls;
        Ok(d)
    }

    /// Rebuilds a layer from a v1 model record, which stored only `p`.
    ///
    /// The original seed is unknown, so the layer is tagged: evaluation and
    /// conversion work normally (dropout is an inference no-op), but the
    /// trainer refuses to *resume training* through it — a silently
    /// different mask stream would break reproducibility guarantees.
    ///
    /// # Errors
    ///
    /// Returns a graph error unless `0 ≤ p < 1`.
    pub fn from_legacy_record(p: f32) -> Result<Self> {
        let mut d = Dropout::new(p, 0)?;
        d.legacy_seed = true;
        Ok(d)
    }

    /// Seed the per-batch masks are derived from.
    pub fn seed(&self) -> u64 {
        self.seed
    }

    /// Number of training-mode forward calls made so far (the mask-stream
    /// cursor).
    pub fn calls(&self) -> u64 {
        self.calls
    }

    /// Whether this layer came from a v1 model record whose dropout seed
    /// was not persisted (see [`Dropout::from_legacy_record`]).
    pub fn has_legacy_seed(&self) -> bool {
        self.legacy_seed
    }

    /// Forward pass: identity in evaluation mode, random masking in
    /// training mode.
    pub fn forward(&mut self, input: &Tensor, mode: crate::Mode) -> Tensor {
        match mode {
            crate::Mode::Eval => {
                self.mask = None;
                input.clone()
            }
            crate::Mode::Train => {
                if self.p == 0.0 {
                    self.mask = Some(vec![true; input.len()]);
                    return input.clone();
                }
                let mut rng = SeededRng::new(self.seed.wrapping_add(self.calls));
                self.calls += 1;
                let keep = 1.0 - self.p;
                let scale = 1.0 / keep;
                let mask: Vec<bool> = (0..input.len())
                    .map(|_| rng.uniform(0.0, 1.0) >= self.p)
                    .collect();
                let mut out = input.clone();
                for (v, &m) in out.data_mut().iter_mut().zip(&mask) {
                    *v = if m { *v * scale } else { 0.0 };
                }
                self.mask = Some(mask);
                out
            }
        }
    }

    /// Backward pass: routes gradient through surviving positions with the
    /// same `1/(1-p)` scale.
    ///
    /// # Errors
    ///
    /// Returns a graph error if called before a training-mode forward pass
    /// or with a mismatched gradient length.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let mask = self.mask.as_ref().ok_or_else(|| NnError::Graph {
            detail: "dropout backward called before training-mode forward".into(),
        })?;
        if mask.len() != grad_output.len() {
            return Err(NnError::Graph {
                detail: format!(
                    "dropout gradient length {} != cached mask length {}",
                    grad_output.len(),
                    mask.len()
                ),
            });
        }
        let scale = 1.0 / (1.0 - self.p);
        let mut out = grad_output.clone();
        for (v, &m) in out.data_mut().iter_mut().zip(mask) {
            *v = if m { *v * scale } else { 0.0 };
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    #[test]
    fn eval_mode_is_identity() {
        let mut d = Dropout::new(0.5, 0).unwrap();
        let x = Tensor::from_slice(&[1.0, -2.0, 3.0]);
        assert_eq!(d.forward(&x, Mode::Eval), x);
    }

    #[test]
    fn train_mode_preserves_expected_value() {
        let mut d = Dropout::new(0.3, 1).unwrap();
        let x = Tensor::ones([10_000]);
        let y = d.forward(&x, Mode::Train);
        let mean = y.mean();
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        // Survivors are scaled by exactly 1/(1-p).
        for &v in y.data() {
            assert!(v == 0.0 || (v - 1.0 / 0.7).abs() < 1e-5);
        }
    }

    #[test]
    fn backward_uses_the_same_mask() {
        let mut d = Dropout::new(0.5, 2).unwrap();
        let x = Tensor::ones([64]);
        let y = d.forward(&x, Mode::Train);
        let g = d.backward(&Tensor::ones([64])).unwrap();
        for (a, b) in y.data().iter().zip(g.data()) {
            // Forward zero ⇔ backward zero.
            assert_eq!(*a == 0.0, *b == 0.0);
        }
    }

    #[test]
    fn zero_probability_keeps_everything() {
        let mut d = Dropout::new(0.0, 3).unwrap();
        let x = Tensor::from_slice(&[1.0, 2.0]);
        assert_eq!(d.forward(&x, Mode::Train), x);
        assert_eq!(d.backward(&x).unwrap(), x);
    }

    #[test]
    fn invalid_probability_is_rejected() {
        assert!(Dropout::new(1.0, 0).is_err());
        assert!(Dropout::new(-0.1, 0).is_err());
        assert!(Dropout::new(0.99, 0).is_ok());
    }

    #[test]
    fn masks_differ_across_calls_but_replay_across_layers() {
        let mut a = Dropout::new(0.5, 7).unwrap();
        let x = Tensor::ones([128]);
        let y1 = a.forward(&x, Mode::Train);
        let y2 = a.forward(&x, Mode::Train);
        assert_ne!(y1, y2, "fresh mask per call");
        let mut b = Dropout::new(0.5, 7).unwrap();
        let z1 = b.forward(&x, Mode::Train);
        assert_eq!(y1, z1, "same seed and call index replays the mask");
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut d = Dropout::new(0.5, 0).unwrap();
        assert!(d.backward(&Tensor::ones([4])).is_err());
    }

    #[test]
    fn saved_state_continues_the_mask_stream() {
        let mut a = Dropout::new(0.5, 11).unwrap();
        let x = Tensor::ones([256]);
        let y0 = a.forward(&x, Mode::Train);
        let _ = y0;
        let y1 = a.forward(&x, Mode::Train);
        // Restore from (seed, calls) captured after the first call.
        let mut b = Dropout::from_saved(0.5, 11, 1).unwrap();
        assert_eq!(b.calls(), 1);
        assert_eq!(b.seed(), 11);
        let z1 = b.forward(&x, Mode::Train);
        assert_eq!(y1, z1, "restored layer replays the same mask stream");
    }

    #[test]
    fn legacy_records_are_tagged() {
        let d = Dropout::from_legacy_record(0.3).unwrap();
        assert!(d.has_legacy_seed());
        assert!(!Dropout::new(0.3, 0).unwrap().has_legacy_seed());
        assert!(Dropout::from_legacy_record(1.5).is_err());
    }
}
