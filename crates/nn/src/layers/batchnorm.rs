//! Batch normalization over `[N, C, H, W]` tensors.
//!
//! Batch-norm cannot be expressed with spiking neurons, so the conversion
//! pipeline removes it after training by folding it into the preceding
//! convolution (Eq. 7 of the paper). This layer therefore exposes its
//! per-channel running statistics and affine parameters publicly — the
//! `tcl-core` folding pass reads them directly.

use crate::error::{NnError, Result};
use crate::param::{Param, ParamKind};
use serde::{Deserialize, Serialize};
use tcl_tensor::Tensor;

/// Cached intermediates for the backward pass.
#[derive(Debug, Clone, Serialize, Deserialize)]
struct BnCache {
    xhat: Tensor,
    inv_std: Vec<f32>,
}

/// Per-channel batch normalization for rank-4 activations.
///
/// Training mode normalizes with batch statistics and maintains exponential
/// running averages; evaluation mode uses the running averages. The running
/// variance uses the biased (population) estimator, which is also what the
/// folding equation consumes.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct BatchNorm2d {
    /// Scale (γ), one per channel.
    pub gamma: Param,
    /// Shift (β), one per channel.
    pub beta: Param,
    /// Running mean (µ), one per channel.
    pub running_mean: Tensor,
    /// Running variance (σ²), one per channel.
    pub running_var: Tensor,
    /// Numerical-stability epsilon added to the variance.
    pub eps: f32,
    /// Exponential-average momentum for the running statistics.
    pub momentum: f32,
    cache: Option<BnCache>,
}

impl BatchNorm2d {
    /// Creates a batch-norm layer for `channels` feature maps with γ = 1,
    /// β = 0, running mean 0 and running variance 1.
    ///
    /// # Errors
    ///
    /// Returns a graph error if `channels == 0`.
    pub fn new(channels: usize) -> Result<Self> {
        if channels == 0 {
            return Err(NnError::Graph {
                detail: "batch-norm needs at least one channel".into(),
            });
        }
        Ok(BatchNorm2d {
            gamma: Param::new(Tensor::ones([channels]), ParamKind::Gamma),
            beta: Param::new(Tensor::zeros([channels]), ParamKind::Beta),
            running_mean: Tensor::zeros([channels]),
            running_var: Tensor::ones([channels]),
            eps: 1e-5,
            momentum: 0.1,
            cache: None,
        })
    }

    /// Number of channels.
    pub fn channels(&self) -> usize {
        self.gamma.value.len()
    }

    /// Forward pass.
    ///
    /// # Errors
    ///
    /// Returns an error if the input is not rank 4 or its channel count
    /// disagrees with the layer.
    pub fn forward(&mut self, input: &Tensor, mode: crate::Mode) -> Result<Tensor> {
        let (n, c, h, w) = input.shape().as_nchw()?;
        if c != self.channels() {
            return Err(NnError::Graph {
                detail: format!("batch-norm has {} channels, input has {c}", self.channels()),
            });
        }
        let plane = h * w;
        let m = (n * plane) as f32;
        let mut out = Tensor::zeros(input.shape().clone());
        match mode {
            crate::Mode::Train => {
                let mut xhat = Tensor::zeros(input.shape().clone());
                let mut inv_stds = vec![0.0f32; c];
                for ci in 0..c {
                    // Batch statistics over N, H, W for channel ci.
                    let mut mean = 0.0f32;
                    for ni in 0..n {
                        let base = (ni * c + ci) * plane;
                        mean += input.data()[base..base + plane].iter().sum::<f32>();
                    }
                    mean /= m;
                    let mut var = 0.0f32;
                    for ni in 0..n {
                        let base = (ni * c + ci) * plane;
                        for &v in &input.data()[base..base + plane] {
                            let d = v - mean;
                            var += d * d;
                        }
                    }
                    var /= m;
                    let inv_std = 1.0 / (var + self.eps).sqrt();
                    inv_stds[ci] = inv_std;
                    let g = self.gamma.value.at(ci);
                    let b = self.beta.value.at(ci);
                    for ni in 0..n {
                        let base = (ni * c + ci) * plane;
                        for i in base..base + plane {
                            let xh = (input.data()[i] - mean) * inv_std;
                            xhat.data_mut()[i] = xh;
                            out.data_mut()[i] = g * xh + b;
                        }
                    }
                    let rm = self.running_mean.data_mut();
                    rm[ci] = (1.0 - self.momentum) * rm[ci] + self.momentum * mean;
                    let rv = self.running_var.data_mut();
                    rv[ci] = (1.0 - self.momentum) * rv[ci] + self.momentum * var;
                }
                self.cache = Some(BnCache {
                    xhat,
                    inv_std: inv_stds,
                });
            }
            crate::Mode::Eval => {
                for ci in 0..c {
                    let mean = self.running_mean.at(ci);
                    let inv_std = 1.0 / (self.running_var.at(ci) + self.eps).sqrt();
                    let g = self.gamma.value.at(ci);
                    let b = self.beta.value.at(ci);
                    for ni in 0..n {
                        let base = (ni * c + ci) * plane;
                        for i in base..base + plane {
                            out.data_mut()[i] = g * (input.data()[i] - mean) * inv_std + b;
                        }
                    }
                }
                self.cache = None;
            }
        }
        Ok(out)
    }

    /// Backward pass (training mode only).
    ///
    /// # Errors
    ///
    /// Returns a graph error if called before a training-mode forward pass,
    /// or a shape error if `grad_output` disagrees with the cached batch.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let cache = self.cache.as_ref().ok_or_else(|| NnError::Graph {
            detail: "batch-norm backward called before training-mode forward".into(),
        })?;
        cache.xhat.expect_same_shape(grad_output)?;
        let (n, c, h, w) = grad_output.shape().as_nchw()?;
        let plane = h * w;
        let m = (n * plane) as f32;
        let mut grad_input = Tensor::zeros(grad_output.shape().clone());
        for ci in 0..c {
            let g = self.gamma.value.at(ci);
            let inv_std = cache.inv_std[ci];
            // Accumulate sums needed by the standard BN backward formula.
            let mut sum_dy = 0.0f32;
            let mut sum_dy_xhat = 0.0f32;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    let dy = grad_output.data()[i];
                    sum_dy += dy;
                    sum_dy_xhat += dy * cache.xhat.data()[i];
                }
            }
            self.gamma.grad.data_mut()[ci] += sum_dy_xhat;
            self.beta.grad.data_mut()[ci] += sum_dy;
            let k = g * inv_std / m;
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                for i in base..base + plane {
                    let dy = grad_output.data()[i];
                    let xh = cache.xhat.data()[i];
                    grad_input.data_mut()[i] = k * (m * dy - sum_dy - xh * sum_dy_xhat);
                }
            }
        }
        Ok(grad_input)
    }

    /// Visits every trainable parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.gamma);
        f(&mut self.beta);
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;
    use tcl_tensor::SeededRng;

    #[test]
    fn train_output_is_normalized_per_channel() {
        let mut rng = SeededRng::new(0);
        let mut bn = BatchNorm2d::new(3).unwrap();
        let x = rng.normal_tensor([4, 3, 5, 5], 3.0, 2.0);
        let y = bn.forward(&x, Mode::Train).unwrap();
        let (n, c, h, w) = y.shape().as_nchw().unwrap();
        let plane = h * w;
        for ci in 0..c {
            let mut vals = Vec::new();
            for ni in 0..n {
                let base = (ni * c + ci) * plane;
                vals.extend_from_slice(&y.data()[base..base + plane]);
            }
            let mean: f32 = vals.iter().sum::<f32>() / vals.len() as f32;
            let var: f32 =
                vals.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / vals.len() as f32;
            assert!(mean.abs() < 1e-4, "mean {mean}");
            assert!((var - 1.0).abs() < 1e-2, "var {var}");
        }
    }

    #[test]
    fn running_stats_converge_to_batch_stats() {
        let mut rng = SeededRng::new(1);
        let mut bn = BatchNorm2d::new(2).unwrap();
        // 16*6*6 = 576 samples per channel keeps the empirical variance's
        // sampling error (~sigma^2 * sqrt(2/n) ~= 0.53) well inside the
        // assertion tolerance regardless of the RNG stream.
        let x = rng.normal_tensor([16, 2, 6, 6], 5.0, 3.0);
        for _ in 0..200 {
            bn.forward(&x, Mode::Train).unwrap();
        }
        for ci in 0..2 {
            assert!((bn.running_mean.at(ci) - 5.0).abs() < 0.5);
            assert!((bn.running_var.at(ci) - 9.0).abs() < 2.0);
        }
    }

    #[test]
    fn eval_uses_running_stats() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        bn.running_mean.data_mut()[0] = 2.0;
        bn.running_var.data_mut()[0] = 4.0;
        bn.gamma.value.data_mut()[0] = 3.0;
        bn.beta.value.data_mut()[0] = 1.0;
        let x = Tensor::full([1, 1, 1, 1], 4.0);
        let y = bn.forward(&x, Mode::Eval).unwrap();
        // (4-2)/2 * 3 + 1 = 4 (up to eps).
        assert!((y.at(0) - 4.0).abs() < 1e-2);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = SeededRng::new(2);
        let x = rng.normal_tensor([2, 2, 3, 3], 0.0, 1.0);
        let mut bn = BatchNorm2d::new(2).unwrap();
        bn.gamma.value.data_mut()[0] = 1.5;
        bn.gamma.value.data_mut()[1] = 0.5;
        bn.beta.value.data_mut()[0] = 0.3;
        // Weighted-sum loss so gradients are non-uniform.
        let wvec: Vec<f32> = (0..x.len()).map(|i| ((i % 7) as f32 - 3.0) * 0.2).collect();
        let y = bn.forward(&x, Mode::Train).unwrap();
        let gout = Tensor::from_vec(y.shape().clone(), wvec.clone()).unwrap();
        let gin = bn.backward(&gout).unwrap();
        let loss = |bn: &mut BatchNorm2d, xt: &Tensor| -> f32 {
            bn.forward(xt, Mode::Train)
                .unwrap()
                .data()
                .iter()
                .zip(&wvec)
                .map(|(a, b)| a * b)
                .sum()
        };
        let eps = 1e-2f32;
        for idx in [0usize, 5, 17, 31] {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&mut bn.clone(), &xp) - loss(&mut bn.clone(), &xm)) / (2.0 * eps);
            assert!(
                (gin.at(idx) - fd).abs() < 2e-2,
                "idx {idx}: analytic {} vs fd {fd}",
                gin.at(idx)
            );
        }
        // Gamma/beta gradients.
        for ci in 0..2 {
            let mut p = bn.clone();
            p.gamma.value.data_mut()[ci] += eps;
            let mut mns = bn.clone();
            mns.gamma.value.data_mut()[ci] -= eps;
            let fd = (loss(&mut p, &x) - loss(&mut mns, &x)) / (2.0 * eps);
            assert!((bn.gamma.grad.at(ci) - fd).abs() < 2e-2, "gamma {ci}");
            let mut p = bn.clone();
            p.beta.value.data_mut()[ci] += eps;
            let mut mns = bn.clone();
            mns.beta.value.data_mut()[ci] -= eps;
            let fd = (loss(&mut p, &x) - loss(&mut mns, &x)) / (2.0 * eps);
            assert!((bn.beta.grad.at(ci) - fd).abs() < 2e-2, "beta {ci}");
        }
    }

    #[test]
    fn channel_mismatch_is_rejected() {
        let mut bn = BatchNorm2d::new(2).unwrap();
        let x = Tensor::zeros([1, 3, 2, 2]);
        assert!(bn.forward(&x, Mode::Train).is_err());
    }

    #[test]
    fn backward_before_forward_errors() {
        let mut bn = BatchNorm2d::new(1).unwrap();
        assert!(bn.backward(&Tensor::zeros([1, 1, 2, 2])).is_err());
    }
}
