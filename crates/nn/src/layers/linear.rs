//! Fully connected (linear) layer.

use crate::error::{NnError, Result};
use crate::param::{Param, ParamKind};
use serde::{Deserialize, Serialize};
use tcl_tensor::ops;
use tcl_tensor::{SeededRng, Tensor};

/// A fully connected layer: `y = x Wᵀ + b`.
///
/// Weights are `[out_features, in_features]`, the PyTorch layout, so the
/// data-normalization of Eq. 5 applies row-wise exactly as it does for
/// convolutions.
///
/// # Examples
///
/// ```
/// use tcl_nn::layers::Linear;
/// use tcl_nn::Mode;
/// use tcl_tensor::{SeededRng, Tensor};
///
/// let mut rng = SeededRng::new(0);
/// let mut fc = Linear::new(16, 4, true, &mut rng)?;
/// let x = rng.uniform_tensor([3, 16], -1.0, 1.0);
/// assert_eq!(fc.forward(&x, Mode::Eval)?.dims(), &[3, 4]);
/// # Ok::<(), tcl_nn::NnError>(())
/// ```
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct Linear {
    /// Weight matrix, `[out_features, in_features]`.
    pub weight: Param,
    /// Optional bias, `[out_features]`.
    pub bias: Option<Param>,
    cached_input: Option<Tensor>,
}

impl Linear {
    /// Creates a Kaiming-initialized linear layer.
    ///
    /// # Errors
    ///
    /// Returns a graph error for zero feature counts.
    pub fn new(
        in_features: usize,
        out_features: usize,
        bias: bool,
        rng: &mut SeededRng,
    ) -> Result<Self> {
        if in_features == 0 || out_features == 0 {
            return Err(NnError::Graph {
                detail: "feature counts must be nonzero".into(),
            });
        }
        let weight = rng.kaiming_normal([out_features, in_features], in_features);
        let bias = bias.then(|| Param::new(Tensor::zeros([out_features]), ParamKind::Bias));
        Ok(Linear {
            weight: Param::new(weight, ParamKind::Weight),
            bias,
            cached_input: None,
        })
    }

    /// Builds a linear layer from explicit parts.
    ///
    /// # Errors
    ///
    /// Returns an error if the weight is not rank 2 or the bias length
    /// disagrees with the output feature count.
    pub fn from_parts(weight: Tensor, bias: Option<Tensor>) -> Result<Self> {
        let (out_f, _) = weight.shape().as_matrix()?;
        if let Some(b) = &bias {
            if b.len() != out_f {
                return Err(NnError::Graph {
                    detail: format!("bias length {} != out features {out_f}", b.len()),
                });
            }
        }
        Ok(Linear {
            weight: Param::new(weight, ParamKind::Weight),
            bias: bias.map(|b| Param::new(b, ParamKind::Bias)),
            cached_input: None,
        })
    }

    /// Number of output features.
    pub fn out_features(&self) -> usize {
        self.weight.value.dims()[0]
    }

    /// Number of input features.
    pub fn in_features(&self) -> usize {
        self.weight.value.dims()[1]
    }

    /// Forward pass on a `[batch, in_features]` input.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the matrix product.
    pub fn forward(&mut self, input: &Tensor, mode: crate::Mode) -> Result<Tensor> {
        let mut out = ops::matmul_nt(input, &self.weight.value)?;
        if let Some(b) = &self.bias {
            let (rows, cols) = out.shape().as_matrix()?;
            let bd = b.value.data();
            for r in 0..rows {
                let row = &mut out.data_mut()[r * cols..(r + 1) * cols];
                for (v, &bv) in row.iter_mut().zip(bd) {
                    *v += bv;
                }
            }
        }
        self.cached_input = match mode {
            crate::Mode::Train => Some(input.clone()),
            crate::Mode::Eval => None,
        };
        Ok(out)
    }

    /// Backward pass: accumulates weight/bias gradients, returns the input
    /// gradient.
    ///
    /// # Errors
    ///
    /// Returns a graph error if called before a training-mode forward pass.
    pub fn backward(&mut self, grad_output: &Tensor) -> Result<Tensor> {
        let input = self.cached_input.as_ref().ok_or_else(|| NnError::Graph {
            detail: "linear backward called before training-mode forward".into(),
        })?;
        // dW = dYᵀ X, dX = dY W, db = column sums of dY.
        let dw = ops::matmul_tn(grad_output, input)?;
        self.weight.grad.add_assign(&dw)?;
        if let Some(b) = &mut self.bias {
            let (rows, cols) = grad_output.shape().as_matrix()?;
            let gd = grad_output.data();
            let bg = b.grad.data_mut();
            for r in 0..rows {
                for (g, &v) in bg.iter_mut().zip(&gd[r * cols..(r + 1) * cols]) {
                    *g += v;
                }
            }
        }
        Ok(ops::matmul(grad_output, &self.weight.value)?)
    }

    /// Visits every trainable parameter.
    pub fn visit_params(&mut self, f: &mut dyn FnMut(&mut Param)) {
        f(&mut self.weight);
        if let Some(b) = &mut self.bias {
            f(b);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::Mode;

    #[test]
    fn forward_matches_manual_computation() {
        let w = Tensor::from_vec([2, 3], vec![1.0, 0.0, -1.0, 0.5, 0.5, 0.5]).unwrap();
        let b = Tensor::from_slice(&[1.0, -1.0]);
        let mut fc = Linear::from_parts(w, Some(b)).unwrap();
        let x = Tensor::from_vec([1, 3], vec![2.0, 4.0, 6.0]).unwrap();
        let y = fc.forward(&x, Mode::Eval).unwrap();
        // y0 = 2 - 6 + 1 = -3; y1 = 1 + 2 + 3 - 1 = 5.
        assert_eq!(y.data(), &[-3.0, 5.0]);
    }

    #[test]
    fn backward_matches_finite_differences() {
        let mut rng = SeededRng::new(7);
        let mut fc = Linear::new(4, 3, true, &mut rng).unwrap();
        let x = rng.uniform_tensor([2, 4], -1.0, 1.0);
        let y = fc.forward(&x, Mode::Train).unwrap();
        let gout = Tensor::ones(y.shape().clone());
        let gin = fc.backward(&gout).unwrap();
        let eps = 1e-2f32;
        let w0 = fc.weight.value.clone();
        let b0 = fc.bias.as_ref().unwrap().value.clone();
        let loss = |fc: &mut Linear, xt: &Tensor| fc.forward(xt, Mode::Eval).unwrap().sum();
        for idx in 0..4 {
            let mut xp = x.clone();
            xp.data_mut()[idx] += eps;
            let mut xm = x.clone();
            xm.data_mut()[idx] -= eps;
            let fd = (loss(&mut fc, &xp) - loss(&mut fc, &xm)) / (2.0 * eps);
            assert!((gin.at(idx) - fd).abs() < 1e-2, "input {idx}");
        }
        for idx in [0usize, 5, 11] {
            let mut p = fc.clone();
            p.weight.value.data_mut()[idx] += eps;
            let mut m = fc.clone();
            m.weight.value.data_mut()[idx] -= eps;
            let fd = (loss(&mut p, &x) - loss(&mut m, &x)) / (2.0 * eps);
            assert!((fc.weight.grad.at(idx) - fd).abs() < 1e-2, "weight {idx}");
        }
        for idx in 0..3 {
            let mut p = fc.clone();
            p.bias.as_mut().unwrap().value.data_mut()[idx] += eps;
            let mut m = fc.clone();
            m.bias.as_mut().unwrap().value.data_mut()[idx] -= eps;
            let fd = (loss(&mut p, &x) - loss(&mut m, &x)) / (2.0 * eps);
            assert!(
                (fc.bias.as_ref().unwrap().grad.at(idx) - fd).abs() < 1e-2,
                "bias {idx}"
            );
        }
        // Restore (silence unused warnings for the cloned baselines).
        let _ = (w0, b0);
    }

    #[test]
    fn rejects_zero_features() {
        let mut rng = SeededRng::new(0);
        assert!(Linear::new(0, 3, true, &mut rng).is_err());
        assert!(Linear::new(3, 0, true, &mut rng).is_err());
    }

    #[test]
    fn from_parts_validates_bias_length() {
        let w = Tensor::zeros([2, 3]);
        assert!(Linear::from_parts(w.clone(), Some(Tensor::zeros([3]))).is_err());
        assert!(Linear::from_parts(w, Some(Tensor::zeros([2]))).is_ok());
    }

    #[test]
    fn feature_accessors() {
        let mut rng = SeededRng::new(1);
        let fc = Linear::new(5, 9, false, &mut rng).unwrap();
        assert_eq!(fc.in_features(), 5);
        assert_eq!(fc.out_features(), 9);
    }
}
