//! Crash-safety guarantees of the checkpoint/resume subsystem.
//!
//! The contract under test:
//!
//! 1. **Bit-exact resume** — training N epochs straight and training N/2
//!    epochs, "crashing", and resuming for the remaining N/2 produce
//!    identical networks at 0 ulp (parameters, momentum buffers, dropout
//!    cursors, and per-epoch reports all match).
//! 2. **Corruption fallback** — a corrupted newest snapshot silently falls
//!    back to the previous one; with no valid snapshot at all, training
//!    restarts from scratch. Neither case panics, and both still converge
//!    to the bit-identical straight-run result.
//! 3. **Detection** — any single-byte corruption of a snapshot is either
//!    detected (structured error) or provably harmless (the parsed state is
//!    bit-identical to the original). Never a panic, never a silently
//!    wrong network.

use proptest::prelude::*;
use tcl_nn::layers::{Clip, Dropout, Linear, Relu};
use tcl_nn::{
    config_fingerprint, AugmentConfig, CheckpointConfig, CheckpointStore, Layer, Network, NnError,
    TrainCheckpoint, TrainConfig, TrainReport, Trainer,
};
use tcl_tensor::{SeededRng, Tensor};

fn blob_data(seed: u64, n_per_class: usize) -> (Tensor, Vec<usize>) {
    let mut rng = SeededRng::new(seed);
    let mut xs = Vec::new();
    let mut ys = Vec::new();
    for class in 0..2usize {
        let cx = if class == 0 { 1.5 } else { -1.5 };
        for _ in 0..n_per_class {
            xs.push(cx + 0.4 * rng.normal());
            xs.push(cx + 0.4 * rng.normal());
            ys.push(class);
        }
    }
    (Tensor::from_vec([n_per_class * 2, 2], xs).unwrap(), ys)
}

/// Rank-4 variant of the blob data so augmentation (which requires NCHW
/// inputs) draws from the shared RNG stream during training.
fn image_blob_data(seed: u64, n_per_class: usize) -> (Tensor, Vec<usize>) {
    let (flat, ys) = blob_data(seed, n_per_class);
    let n = ys.len();
    let mut xs = vec![0.0f32; n * 4];
    for i in 0..n {
        // Tile the 2-vector into a 1×2×2 "image".
        xs[i * 4] = flat.data()[i * 2];
        xs[i * 4 + 1] = flat.data()[i * 2 + 1];
        xs[i * 4 + 2] = flat.data()[i * 2];
        xs[i * 4 + 3] = flat.data()[i * 2 + 1];
    }
    (Tensor::from_vec([n, 1, 2, 2], xs).unwrap(), ys)
}

/// Dropout makes resume interesting: its mask stream has its own cursor
/// that must be restored exactly.
fn mlp(seed: u64) -> Network {
    let mut rng = SeededRng::new(seed);
    Network::new(vec![
        Layer::Linear(Linear::new(2, 16, true, &mut rng).unwrap()),
        Layer::Relu(Relu::new()),
        Layer::Clip(Clip::new(2.0)),
        Layer::Dropout(Dropout::new(0.25, 42).unwrap()),
        Layer::Linear(Linear::new(16, 2, true, &mut rng).unwrap()),
    ])
}

fn image_mlp(seed: u64) -> Network {
    let mut rng = SeededRng::new(seed);
    Network::new(vec![
        Layer::Flatten(tcl_nn::layers::Flatten::new()),
        Layer::Linear(Linear::new(4, 16, true, &mut rng).unwrap()),
        Layer::Relu(Relu::new()),
        Layer::Clip(Clip::new(2.0)),
        Layer::Dropout(Dropout::new(0.25, 42).unwrap()),
        Layer::Linear(Linear::new(16, 2, true, &mut rng).unwrap()),
    ])
}

/// Bitwise fingerprint of every parameter value and momentum buffer, plus
/// every dropout layer's mask cursor.
fn bit_state(net: &Network) -> (Vec<u32>, Vec<u32>, Vec<(u64, u64)>) {
    let mut net = net.clone();
    let mut values = Vec::new();
    let mut momenta = Vec::new();
    net.visit_params(&mut |p| {
        values.extend(p.value.data().iter().map(|v| v.to_bits()));
        momenta.extend(p.momentum.data().iter().map(|v| v.to_bits()));
    });
    let mut dropout = Vec::new();
    for layer in net.layers() {
        if let Layer::Dropout(d) = layer {
            dropout.push((d.seed(), d.calls()));
        }
    }
    (values, momenta, dropout)
}

fn reports_bit_equal(a: &TrainReport, b: &TrainReport) {
    assert_eq!(a.epochs.len(), b.epochs.len());
    for (x, y) in a.epochs.iter().zip(&b.epochs) {
        assert_eq!(x.epoch, y.epoch);
        assert_eq!(x.train_loss.to_bits(), y.train_loss.to_bits());
        assert_eq!(x.train_accuracy.to_bits(), y.train_accuracy.to_bits());
        assert_eq!(
            x.eval_accuracy.map(f32::to_bits),
            y.eval_accuracy.map(f32::to_bits)
        );
        assert_eq!(x.learning_rate.to_bits(), y.learning_rate.to_bits());
    }
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    std::env::temp_dir().join(format!("tcl-resume-{tag}-{}", std::process::id()))
}

#[test]
fn kill_and_resume_is_bit_exact() {
    let (x, y) = blob_data(0, 30);
    let (ex, ey) = blob_data(1, 10);
    let mut cfg = TrainConfig::standard(10, 16, 0.05, &[6]).unwrap();
    cfg.shuffle_seed = 0xBEEF;

    // Straight 10-epoch run, no checkpointing at all.
    let mut straight = mlp(3);
    let straight_report = Trainer::new(cfg.clone())
        .run(&mut straight, &x, &y, Some((&ex, &ey)))
        .unwrap();

    // "Crashed" run: 5 epochs with a snapshot at epoch 5, then a fresh
    // process (fresh identically-constructed network) resumes to 10.
    let dir = temp_dir("exact");
    tcl_nn::checkpoint::clear_store(&dir);
    let mut first_cfg = cfg.clone();
    first_cfg.epochs = 5;
    let mut victim = mlp(3);
    Trainer::new(first_cfg)
        .with_checkpoints(CheckpointConfig::new(&dir).with_every(5))
        .run_resumable(&mut victim, &x, &y, Some((&ex, &ey)))
        .unwrap();

    let mut resumed = mlp(3);
    let resumed_report = Trainer::new(cfg)
        .with_checkpoints(CheckpointConfig::new(&dir).with_every(5))
        .run_resumable(&mut resumed, &x, &y, Some((&ex, &ey)))
        .unwrap();

    let (sv, sm, sd) = bit_state(&straight);
    let (rv, rm, rd) = bit_state(&resumed);
    assert_eq!(sv, rv, "parameter values differ after resume");
    assert_eq!(sm, rm, "momentum buffers differ after resume");
    assert_eq!(sd, rd, "dropout cursors differ after resume");
    reports_bit_equal(&straight_report, &resumed_report);

    tcl_nn::checkpoint::clear_store(&dir);
}

#[test]
fn kill_and_resume_is_bit_exact_with_augmentation() {
    // Augmentation draws from the same RNG as the shuffle, so this covers
    // resuming mid-stream of a heavier RNG consumption pattern.
    let (x, y) = image_blob_data(5, 20);
    let mut cfg = TrainConfig::standard(6, 8, 0.05, &[4]).unwrap();
    cfg.augment = Some(AugmentConfig {
        horizontal_flip: true,
        max_shift: 1,
    });

    let mut straight = image_mlp(7);
    Trainer::new(cfg.clone())
        .run(&mut straight, &x, &y, None)
        .unwrap();

    let dir = temp_dir("augment");
    tcl_nn::checkpoint::clear_store(&dir);
    let mut first_cfg = cfg.clone();
    first_cfg.epochs = 3;
    let mut victim = image_mlp(7);
    Trainer::new(first_cfg)
        .with_checkpoints(CheckpointConfig::new(&dir).with_every(3))
        .run_resumable(&mut victim, &x, &y, None)
        .unwrap();
    let mut resumed = image_mlp(7);
    Trainer::new(cfg)
        .with_checkpoints(CheckpointConfig::new(&dir).with_every(3))
        .run_resumable(&mut resumed, &x, &y, None)
        .unwrap();

    let (sv, sm, sd) = bit_state(&straight);
    let (rv, rm, rd) = bit_state(&resumed);
    assert_eq!(sv, rv);
    assert_eq!(sm, rm);
    assert_eq!(sd, rd);

    tcl_nn::checkpoint::clear_store(&dir);
}

#[test]
fn corrupted_newest_snapshot_falls_back_and_still_matches() {
    let (x, y) = blob_data(2, 20);
    let cfg = TrainConfig::standard(8, 8, 0.05, &[5]).unwrap();

    let mut straight = mlp(9);
    Trainer::new(cfg.clone())
        .run(&mut straight, &x, &y, None)
        .unwrap();

    // Snapshot every 2 epochs for 6 epochs, keeping 2 → snapshots at 4, 6.
    let dir = temp_dir("fallback");
    tcl_nn::checkpoint::clear_store(&dir);
    let mut first_cfg = cfg.clone();
    first_cfg.epochs = 6;
    let mut victim = mlp(9);
    Trainer::new(first_cfg)
        .with_checkpoints(CheckpointConfig::new(&dir).with_every(2))
        .run_resumable(&mut victim, &x, &y, None)
        .unwrap();

    // Corrupt the newest snapshot (epoch 6): the resume must fall back to
    // epoch 4 and still reach the bit-identical straight-run result.
    let store = CheckpointStore::new(&CheckpointConfig::new(&dir));
    let snapshots = store.list();
    assert_eq!(
        snapshots.iter().map(|(e, _)| *e).collect::<Vec<_>>(),
        vec![4, 6]
    );
    let newest = &snapshots.last().unwrap().1;
    let mut bytes = std::fs::read(newest).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xA5;
    std::fs::write(newest, &bytes).unwrap();

    let mut resumed = mlp(9);
    Trainer::new(cfg.clone())
        .with_checkpoints(CheckpointConfig::new(&dir).with_every(2))
        .run_resumable(&mut resumed, &x, &y, None)
        .unwrap();
    let (sv, sm, _) = bit_state(&straight);
    let (rv, rm, _) = bit_state(&resumed);
    assert_eq!(sv, rv, "fallback resume must still be bit-exact");
    assert_eq!(sm, rm);

    // Destroy every snapshot: training restarts from scratch and still
    // matches the straight run (the network is reconstructed identically).
    for (_, path) in store.list() {
        std::fs::write(path, b"garbage").unwrap();
    }
    let mut from_scratch = mlp(9);
    Trainer::new(cfg)
        .with_checkpoints(CheckpointConfig::new(&dir).with_every(2))
        .run_resumable(&mut from_scratch, &x, &y, None)
        .unwrap();
    let (fv, _, _) = bit_state(&from_scratch);
    assert_eq!(sv, fv, "scratch restart after total corruption");

    tcl_nn::checkpoint::clear_store(&dir);
}

#[test]
fn mismatched_hyperparameters_refuse_to_resume() {
    let (x, y) = blob_data(4, 10);
    let cfg = TrainConfig::standard(2, 8, 0.05, &[]).unwrap();
    let dir = temp_dir("fingerprint");
    tcl_nn::checkpoint::clear_store(&dir);
    let mut net = mlp(11);
    Trainer::new(cfg.clone())
        .with_checkpoints(CheckpointConfig::new(&dir).with_every(1))
        .run_resumable(&mut net, &x, &y, None)
        .unwrap();

    let mut other = cfg.clone();
    other.shuffle_seed ^= 1;
    assert_ne!(config_fingerprint(&cfg), config_fingerprint(&other));
    let mut net2 = mlp(11);
    let err = Trainer::new(other)
        .with_checkpoints(CheckpointConfig::new(&dir).with_every(1))
        .run_resumable(&mut net2, &x, &y, None)
        .unwrap_err();
    assert!(
        matches!(err, NnError::Checkpoint { .. }),
        "expected checkpoint error, got {err}"
    );

    // Extending the epoch budget is NOT a hyper-parameter change.
    let mut longer = cfg.clone();
    longer.epochs = 4;
    let mut net3 = mlp(11);
    let report = Trainer::new(longer)
        .with_checkpoints(CheckpointConfig::new(&dir).with_every(1))
        .run_resumable(&mut net3, &x, &y, None)
        .unwrap();
    assert_eq!(report.epochs.len(), 4);

    tcl_nn::checkpoint::clear_store(&dir);
}

#[test]
fn legacy_v1_dropout_cannot_resume_training() {
    // A dropout layer loaded from a v1 record has an unknown seed; training
    // through it would silently diverge, so the trainer refuses.
    let mut layers = mlp(13).layers().to_vec();
    layers[3] = Layer::Dropout(Dropout::from_legacy_record(0.25).unwrap());
    let mut net = Network::new(layers);
    let (x, y) = blob_data(6, 10);
    let cfg = TrainConfig::standard(2, 8, 0.05, &[]).unwrap();
    let err = Trainer::new(cfg).run(&mut net, &x, &y, None).unwrap_err();
    assert!(matches!(err, NnError::Checkpoint { .. }), "got {err}");
}

fn reference_checkpoint() -> TrainCheckpoint {
    let (x, y) = blob_data(8, 10);
    let cfg = TrainConfig::standard(2, 8, 0.05, &[]).unwrap();
    let dir = temp_dir("proptest-src");
    tcl_nn::checkpoint::clear_store(&dir);
    let mut net = mlp(17);
    Trainer::new(cfg)
        .with_checkpoints(CheckpointConfig::new(&dir).with_every(2))
        .run_resumable(&mut net, &x, &y, None)
        .unwrap();
    let store = CheckpointStore::new(&CheckpointConfig::new(&dir));
    let ckpt = store.load_latest().expect("run must leave a snapshot");
    tcl_nn::checkpoint::clear_store(&dir);
    ckpt
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Satellite 5: ANY single-byte corruption of a v2 checkpoint either
    /// fails with a structured error or decodes to exactly the original
    /// state — never a panic, never a silently different network.
    #[test]
    fn single_byte_corruption_is_detected_or_harmless(
        pos in 0usize..1_000_000,
        flip in 1usize..256,
    ) {
        let original = reference_checkpoint();
        let bytes = original.to_bytes().unwrap();
        let idx = pos % bytes.len();
        let mut mutated = bytes.clone();
        mutated[idx] ^= flip as u8;

        match TrainCheckpoint::from_bytes(&mutated) {
            Err(_) => {} // detected: structured error, no panic
            Ok(decoded) => {
                // Undetected flips must be semantically invisible.
                prop_assert_eq!(decoded.epochs_done, original.epochs_done);
                prop_assert_eq!(decoded.config_fingerprint, original.config_fingerprint);
                prop_assert_eq!(decoded.rng_state, original.rng_state);
                let (ov, om, od) = bit_state(&original.network);
                let (dv, dm, dd) = bit_state(&decoded.network);
                prop_assert_eq!(ov, dv);
                prop_assert_eq!(om, dm);
                prop_assert_eq!(od, dd);
            }
        }
    }
}
