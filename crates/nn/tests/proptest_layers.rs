//! Property-based tests for layer forward/backward correctness.

use proptest::prelude::*;
use tcl_nn::layers::{Clip, Conv2d, Linear, Relu};
use tcl_nn::{load_network, save_network, softmax_cross_entropy, Layer, Mode, Network, Sgd};
use tcl_tensor::{ops, SeededRng, Tensor};

fn rng_tensor(shape: Vec<usize>, seed: u64, scale: f32) -> Tensor {
    SeededRng::new(seed).uniform_tensor(shape, -scale, scale)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn linear_forward_matches_matmul(
        batch in 1usize..5,
        inf in 1usize..8,
        outf in 1usize..8,
        seed in 0u64..1000,
    ) {
        let mut rng = SeededRng::new(seed);
        let mut fc = Linear::new(inf, outf, true, &mut rng).unwrap();
        let x = rng.uniform_tensor([batch, inf], -1.0, 1.0);
        let y = fc.forward(&x, Mode::Eval).unwrap();
        let manual = ops::matmul_nt(&x, &fc.weight.value).unwrap();
        for r in 0..batch {
            for c in 0..outf {
                let expected = manual.at2(r, c) + fc.bias.as_ref().unwrap().value.at(c);
                prop_assert!((y.at2(r, c) - expected).abs() < 1e-4);
            }
        }
    }

    #[test]
    fn conv_input_gradient_matches_finite_difference(
        cin in 1usize..3,
        cout in 1usize..3,
        hw in 4usize..7,
        stride in 1usize..3,
        seed in 0u64..1000,
    ) {
        let mut rng = SeededRng::new(seed);
        let mut conv = Conv2d::new(cin, cout, 3, stride, 1, true, &mut rng).unwrap();
        let x = rng.uniform_tensor([1, cin, hw, hw], -1.0, 1.0);
        let y = conv.forward(&x, Mode::Train).unwrap();
        let gout = Tensor::ones(y.shape().clone());
        let gin = conv.backward(&gout).unwrap();
        let eps = 1e-2f32;
        let idx = (seed as usize * 7) % x.len();
        let mut xp = x.clone();
        xp.data_mut()[idx] += eps;
        let mut xm = x.clone();
        xm.data_mut()[idx] -= eps;
        let fp = conv.forward(&xp, Mode::Eval).unwrap().sum();
        let fm = conv.forward(&xm, Mode::Eval).unwrap().sum();
        let fd = (fp - fm) / (2.0 * eps);
        prop_assert!((gin.at(idx) - fd).abs() < 2e-2,
            "idx {} analytic {} vs fd {}", idx, gin.at(idx), fd);
    }

    #[test]
    fn relu_clip_composition_is_clamp(
        len in 1usize..64,
        lambda in 0.1f32..5.0,
        seed in 0u64..1000,
    ) {
        let x = rng_tensor(vec![len], seed, 10.0);
        let mut relu = Relu::new();
        let mut clip = Clip::new(lambda);
        let y = clip.forward(&relu.forward(&x, Mode::Eval), Mode::Eval);
        for (i, &v) in x.data().iter().enumerate() {
            prop_assert!((y.at(i) - v.clamp(0.0, lambda)).abs() < 1e-6);
        }
    }

    #[test]
    fn clip_is_idempotent(
        len in 1usize..64,
        lambda in 0.1f32..5.0,
        seed in 0u64..1000,
    ) {
        let x = rng_tensor(vec![len], seed, 10.0);
        let mut clip = Clip::new(lambda);
        let once = clip.forward(&x, Mode::Eval);
        let twice = clip.forward(&once, Mode::Eval);
        prop_assert!(once.max_abs_diff(&twice).unwrap() < 1e-7);
    }

    #[test]
    fn cross_entropy_is_nonnegative_and_grad_sums_to_zero(
        batch in 1usize..6,
        classes in 2usize..8,
        seed in 0u64..1000,
    ) {
        let logits = rng_tensor(vec![batch, classes], seed, 4.0);
        let labels: Vec<usize> = (0..batch).map(|i| (i + seed as usize) % classes).collect();
        let out = softmax_cross_entropy(&logits, &labels).unwrap();
        prop_assert!(out.loss >= 0.0);
        for r in 0..batch {
            let s: f32 = out.grad.data()[r * classes..(r + 1) * classes].iter().sum();
            prop_assert!(s.abs() < 1e-5);
        }
    }

    #[test]
    fn sgd_with_zero_gradient_and_no_decay_is_identity(
        inf in 1usize..6,
        outf in 1usize..6,
        seed in 0u64..1000,
    ) {
        let mut rng = SeededRng::new(seed);
        let mut net = Network::new(vec![Layer::Linear(
            Linear::new(inf, outf, true, &mut rng).unwrap(),
        )]);
        let mut before = Vec::new();
        net.visit_params(&mut |p| before.push(p.value.clone()));
        net.zero_grad();
        Sgd::new(0.5).with_momentum(0.9).step(&mut net);
        let mut after = Vec::new();
        net.visit_params(&mut |p| after.push(p.value.clone()));
        for (b, a) in before.iter().zip(&after) {
            prop_assert_eq!(b, a);
        }
    }

    #[test]
    fn one_sgd_step_on_fixed_batch_reduces_loss(
        seed in 0u64..300,
    ) {
        let mut rng = SeededRng::new(seed);
        let mut net = Network::new(vec![
            Layer::Linear(Linear::new(3, 8, true, &mut rng).unwrap()),
            Layer::Relu(Relu::new()),
            Layer::Linear(Linear::new(8, 2, true, &mut rng).unwrap()),
        ]);
        let x = rng.uniform_tensor([6, 3], -1.0, 1.0);
        let labels: Vec<usize> = (0..6).map(|i| i % 2).collect();
        let logits = net.forward(&x, Mode::Train).unwrap();
        let before = softmax_cross_entropy(&logits, &labels).unwrap();
        net.zero_grad();
        net.forward(&x, Mode::Train).unwrap();
        let out = softmax_cross_entropy(&net.forward(&x, Mode::Train).unwrap(), &labels).unwrap();
        net.backward(&out.grad).unwrap();
        Sgd::new(0.01).step(&mut net);
        let logits_after = net.forward(&x, Mode::Eval).unwrap();
        let after = softmax_cross_entropy(&logits_after, &labels).unwrap();
        // A small gradient step on the same batch cannot increase the loss
        // by much; typically it decreases. Allow tiny numerical slack.
        prop_assert!(after.loss <= before.loss + 1e-3,
            "loss went {} -> {}", before.loss, after.loss);
    }

    #[test]
    fn io_roundtrip_preserves_network_function(
        hidden in 1usize..10,
        lambda in 0.5f32..4.0,
        seed in 0u64..1000,
    ) {
        let mut rng = SeededRng::new(seed);
        let net = Network::new(vec![
            Layer::Linear(Linear::new(4, hidden, true, &mut rng).unwrap()),
            Layer::Relu(Relu::new()),
            Layer::Clip(Clip::new(lambda)),
            Layer::Linear(Linear::new(hidden, 3, true, &mut rng).unwrap()),
        ]);
        let mut buf = Vec::new();
        save_network(&mut buf, &net).unwrap();
        let back = load_network(&mut buf.as_slice()).unwrap();
        let x = rng.uniform_tensor([3, 4], -1.0, 1.0);
        let ya = net.clone().forward(&x, Mode::Eval).unwrap();
        let yb = back.clone().forward(&x, Mode::Eval).unwrap();
        prop_assert!(ya.max_abs_diff(&yb).unwrap() < 1e-6);
    }
}
