//! Edge-case integration tests for the NN framework: optimizer/parameter
//! interplay, batch-norm train/eval consistency, and trainer boundaries.

use tcl_nn::layers::{BatchNorm2d, Clip, Conv2d, Flatten, Linear, Relu};
use tcl_nn::{
    evaluate, softmax_cross_entropy, train, Layer, Mode, Network, ParamKind, Sgd, StepSchedule,
    TrainConfig,
};
use tcl_tensor::{SeededRng, Tensor};

#[test]
fn bn_affine_params_are_exempt_from_weight_decay() {
    let mut net = Network::new(vec![Layer::BatchNorm2d(BatchNorm2d::new(3).unwrap())]);
    let opt = Sgd::new(0.1).with_weight_decay(0.5);
    net.zero_grad();
    opt.step(&mut net);
    // γ must remain exactly 1 (no decay applied).
    net.visit_params(&mut |p| {
        if p.kind == ParamKind::Gamma {
            assert!(p.value.data().iter().all(|&v| v == 1.0));
        }
    });
}

#[test]
fn batchnorm_eval_approximates_train_after_convergence() {
    let mut rng = SeededRng::new(0);
    let mut bn = BatchNorm2d::new(2).unwrap();
    let x = rng.normal_tensor([16, 2, 4, 4], 1.0, 2.0);
    for _ in 0..300 {
        bn.forward(&x, Mode::Train).unwrap();
    }
    let train_out = bn.forward(&x, Mode::Train).unwrap();
    let eval_out = bn.forward(&x, Mode::Eval).unwrap();
    // Running statistics have converged to the (fixed) batch statistics up
    // to the biased/EMA mismatch.
    assert!(
        train_out.max_abs_diff(&eval_out).unwrap() < 0.1,
        "train/eval divergence {}",
        train_out.max_abs_diff(&eval_out).unwrap()
    );
}

#[test]
fn training_a_conv_classifier_on_trivial_data_succeeds() {
    // Images of all ones vs all minus-ones; a conv net must solve this.
    let mut rng = SeededRng::new(1);
    let n = 16;
    let mut images = Tensor::zeros([n, 1, 4, 4]);
    let mut labels = Vec::new();
    for i in 0..n {
        let v = if i % 2 == 0 { 1.0 } else { -1.0 };
        for j in 0..16 {
            images.data_mut()[i * 16 + j] = v;
        }
        labels.push(i % 2);
    }
    let mut net = Network::new(vec![
        Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, true, &mut rng).unwrap()),
        Layer::Relu(Relu::new()),
        Layer::Clip(Clip::new(2.0)),
        Layer::Flatten(Flatten::new()),
        Layer::Linear(Linear::new(32, 2, true, &mut rng).unwrap()),
    ]);
    let cfg = TrainConfig::standard(10, 4, 0.05, &[]).unwrap();
    train(&mut net, &images, &labels, None, &cfg).unwrap();
    let acc = evaluate(&net, &images, &labels, 8).unwrap();
    assert_eq!(acc, 1.0, "trivial task not solved: {acc}");
}

#[test]
fn evaluate_handles_batch_larger_than_dataset() {
    let mut rng = SeededRng::new(2);
    let net = Network::new(vec![Layer::Linear(
        Linear::new(3, 2, true, &mut rng).unwrap(),
    )]);
    let x = rng.uniform_tensor([3, 3], -1.0, 1.0);
    let acc = evaluate(&net, &x, &[0, 1, 0], 100).unwrap();
    assert!((0.0..=1.0).contains(&acc));
}

#[test]
fn schedule_with_no_milestones_is_constant() {
    let s = StepSchedule::constant(0.07).unwrap();
    for epoch in [0, 5, 100, 10_000] {
        assert_eq!(s.rate_at(epoch), 0.07);
    }
}

#[test]
fn loss_gradient_is_zero_for_perfect_one_hot_prediction() {
    // Extremely confident correct logits: gradient ≈ 0.
    let logits = Tensor::from_vec([1, 3], vec![50.0, -50.0, -50.0]).unwrap();
    let out = softmax_cross_entropy(&logits, &[0]).unwrap();
    assert!(out.loss < 1e-6);
    assert!(out.grad.data().iter().all(|v| v.abs() < 1e-6));
}

#[test]
fn single_sample_batches_train_without_panicking() {
    let mut rng = SeededRng::new(3);
    let mut net = Network::new(vec![
        Layer::Linear(Linear::new(2, 4, true, &mut rng).unwrap()),
        Layer::Relu(Relu::new()),
        Layer::Linear(Linear::new(4, 2, true, &mut rng).unwrap()),
    ]);
    let x = rng.uniform_tensor([5, 2], -1.0, 1.0);
    let labels = vec![0, 1, 0, 1, 0];
    let cfg = TrainConfig::standard(2, 1, 0.01, &[]).unwrap();
    let report = train(&mut net, &x, &labels, Some((&x, &labels)), &cfg).unwrap();
    assert_eq!(report.epochs.len(), 2);
    assert!(report.final_eval_accuracy().is_some());
}

#[test]
fn clip_lambda_can_grow_when_clipping_hurts() {
    // A regression target well above the clip bound forces λ upward: the
    // gradient through clipped positions is negative (increase output), so
    // SGD raises λ. (This is the adaptive behaviour Section 4 relies on.)
    let mut net = Network::new(vec![Layer::Clip(Clip::new(1.0))]);
    let x = Tensor::from_vec([1], vec![5.0]).unwrap();
    let opt = Sgd::new(0.05);
    for _ in 0..50 {
        net.zero_grad();
        let y = net.forward(&x, Mode::Train).unwrap();
        // L = (y - 4)², dL/dy = 2(y - 4) — negative while y < 4.
        let grad = Tensor::from_vec([1], vec![2.0 * (y.at(0) - 4.0)]).unwrap();
        net.backward(&grad).unwrap();
        opt.step(&mut net);
    }
    let lam = net.clip_lambdas()[0];
    assert!(lam > 3.5, "λ should have grown toward 4, got {lam}");
}

#[test]
fn momentum_accelerates_along_consistent_gradients() {
    // With a constant gradient, momentum SGD moves farther than plain SGD
    // after a few steps.
    let run = |momentum: f32| -> f32 {
        let mut net = Network::new(vec![Layer::Linear(
            Linear::from_parts(Tensor::from_vec([1, 1], vec![0.0]).unwrap(), None).unwrap(),
        )]);
        let opt = Sgd::new(0.1).with_momentum(momentum);
        for _ in 0..5 {
            net.zero_grad();
            net.visit_params(&mut |p| p.grad.fill(1.0));
            opt.step(&mut net);
        }
        let mut w = 0.0;
        net.visit_params(&mut |p| w = p.value.at(0));
        w
    };
    assert!(
        run(0.9) < run(0.0),
        "momentum should travel farther downhill"
    );
}

#[test]
fn augmented_training_still_learns() {
    use tcl_nn::AugmentConfig;
    // Same trivial task as above, but with flips and shifts enabled; the
    // task is augmentation-invariant, so accuracy must stay perfect.
    let mut rng = SeededRng::new(9);
    let n = 16;
    let mut images = Tensor::zeros([n, 1, 4, 4]);
    let mut labels = Vec::new();
    for i in 0..n {
        let v = if i % 2 == 0 { 1.0 } else { -1.0 };
        for j in 0..16 {
            images.data_mut()[i * 16 + j] = v;
        }
        labels.push(i % 2);
    }
    let mut net = Network::new(vec![
        Layer::Conv2d(Conv2d::new(1, 2, 3, 1, 1, true, &mut rng).unwrap()),
        Layer::Relu(Relu::new()),
        Layer::Flatten(Flatten::new()),
        Layer::Linear(Linear::new(32, 2, true, &mut rng).unwrap()),
    ]);
    let cfg = TrainConfig {
        augment: Some(AugmentConfig {
            horizontal_flip: true,
            max_shift: 1,
        }),
        ..TrainConfig::standard(12, 4, 0.05, &[]).unwrap()
    };
    train(&mut net, &images, &labels, None, &cfg).unwrap();
    let acc = evaluate(&net, &images, &labels, 8).unwrap();
    assert!(acc >= 0.95, "augmented training failed: {acc}");
}

#[test]
fn dropout_networks_reach_parity_on_eval() {
    use tcl_nn::layers::Dropout;
    // Dropout trains stochastically but evaluates deterministically: two
    // eval passes agree exactly.
    let mut rng = SeededRng::new(10);
    let mut net = Network::new(vec![
        Layer::Linear(Linear::new(4, 8, true, &mut rng).unwrap()),
        Layer::Relu(Relu::new()),
        Layer::Dropout(Dropout::new(0.5, 3).unwrap()),
        Layer::Linear(Linear::new(8, 2, true, &mut rng).unwrap()),
    ]);
    let x = rng.uniform_tensor([3, 4], -1.0, 1.0);
    let a = net.forward(&x, Mode::Eval).unwrap();
    let b = net.forward(&x, Mode::Eval).unwrap();
    assert_eq!(a, b);
    // Training passes differ thanks to fresh masks.
    let t1 = net.forward(&x, Mode::Train).unwrap();
    let t2 = net.forward(&x, Mode::Train).unwrap();
    assert_ne!(t1, t2);
}
