//! Architecture builders.
//!
//! Each builder reproduces the topology the paper evaluates (Section 6):
//!
//! * [`cnn6`] — the "4Conv, 2Linear" network;
//! * [`vgg16`] — VGG-16 (13 convolutions + 3 fully connected layers),
//!   pooling adapted to the input size (pools are inserted after stages
//!   while spatial extent permits, so a 16×16 input gets 4 of the 5 pools);
//! * [`resnet18`] / [`resnet34`] — ImageNet-style basic-block ResNets;
//! * [`resnet20`] — the CIFAR-style 3-stage ResNet used by Sengupta et al.
//!
//! Channel counts scale with [`ModelConfig::base_width`]; depth/topology is
//! faithful.

use crate::config::{ModelConfig, Pooling};
use serde::{Deserialize, Serialize};
use tcl_nn::layers::{
    AvgPool2d, BatchNorm2d, Clip, Conv2d, Dropout, Flatten, GlobalAvgPool, Linear, MaxPool2d, Relu,
    ResidualBlock,
};
use tcl_nn::{Layer, Network, NnError, Result};
use tcl_tensor::SeededRng;

/// The architectures evaluated in the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Architecture {
    /// "4Conv, 2Linear" (the paper's small Cifar-10 network).
    Cnn6,
    /// VGG-16.
    Vgg16,
    /// ResNet-18.
    ResNet18,
    /// ResNet-20 (CIFAR-style, used by the Sengupta et al. baseline rows).
    ResNet20,
    /// ResNet-34.
    ResNet34,
}

impl Architecture {
    /// Display name matching the paper's tables.
    pub fn name(&self) -> &'static str {
        match self {
            Architecture::Cnn6 => "4Conv,2Linear",
            Architecture::Vgg16 => "VGG-16",
            Architecture::ResNet18 => "RESNET-18",
            Architecture::ResNet20 => "RESNET-20",
            Architecture::ResNet34 => "RESNET-34",
        }
    }

    /// Builds the architecture with the given configuration.
    ///
    /// # Errors
    ///
    /// Propagates layer-construction errors (zero widths, pooling that does
    /// not fit the input, …).
    pub fn build(&self, cfg: &ModelConfig, rng: &mut SeededRng) -> Result<Network> {
        match self {
            Architecture::Cnn6 => cnn6(cfg, rng),
            Architecture::Vgg16 => vgg16(cfg, rng),
            Architecture::ResNet18 => resnet18(cfg, rng),
            Architecture::ResNet20 => resnet20(cfg, rng),
            Architecture::ResNet34 => resnet34(cfg, rng),
        }
    }
}

impl std::fmt::Display for Architecture {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        f.write_str(self.name())
    }
}

/// Appends `conv → [bn] → relu → [clip]` and returns the new channel count.
fn push_conv_block(
    layers: &mut Vec<Layer>,
    in_c: usize,
    out_c: usize,
    stride: usize,
    cfg: &ModelConfig,
    rng: &mut SeededRng,
) -> Result<usize> {
    // Convolutions keep their bias only when batch-norm is absent (BN's β
    // subsumes it), matching standard practice and keeping BN folding exact.
    layers.push(Layer::Conv2d(Conv2d::new(
        in_c,
        out_c,
        3,
        stride,
        1,
        !cfg.batch_norm,
        rng,
    )?));
    if cfg.batch_norm {
        layers.push(Layer::BatchNorm2d(BatchNorm2d::new(out_c)?));
    }
    layers.push(Layer::Relu(Relu::new()));
    if let Some(lambda) = cfg.clip_lambda {
        layers.push(Layer::Clip(Clip::new(lambda)));
    }
    Ok(out_c)
}

/// Appends the configured 2×2 stride-2 pooling layer.
fn push_pool(layers: &mut Vec<Layer>, cfg: &ModelConfig) -> Result<()> {
    match cfg.pooling {
        Pooling::Avg => layers.push(Layer::AvgPool2d(AvgPool2d::new(2, 2)?)),
        Pooling::Max => layers.push(Layer::MaxPool2d(MaxPool2d::new(2, 2)?)),
    }
    Ok(())
}

/// Appends `linear → relu → [clip] → [dropout]`.
fn push_linear_block(
    layers: &mut Vec<Layer>,
    in_f: usize,
    out_f: usize,
    cfg: &ModelConfig,
    rng: &mut SeededRng,
) -> Result<usize> {
    layers.push(Layer::Linear(Linear::new(in_f, out_f, true, rng)?));
    layers.push(Layer::Relu(Relu::new()));
    if let Some(lambda) = cfg.clip_lambda {
        layers.push(Layer::Clip(Clip::new(lambda)));
    }
    if let Some(p) = cfg.dropout {
        // Derive a per-position seed so every dropout layer masks
        // independently yet deterministically.
        let seed = 0x0D0D_0000 ^ layers.len() as u64;
        layers.push(Layer::Dropout(Dropout::new(p, seed)?));
    }
    Ok(out_f)
}

/// The paper's "4Conv, 2Linear" network: two width-`w` convolutions, pool,
/// two width-`2w` convolutions, pool, then a hidden and an output linear
/// layer.
///
/// # Errors
///
/// Returns an error if the input is too small for two pooling stages.
pub fn cnn6(cfg: &ModelConfig, rng: &mut SeededRng) -> Result<Network> {
    let (in_c, h, w) = cfg.input;
    if h < 4 || w < 4 {
        return Err(NnError::Graph {
            detail: format!("cnn6 needs at least 4x4 input, got {h}x{w}"),
        });
    }
    let w1 = cfg.base_width;
    let w2 = 2 * cfg.base_width;
    let hidden = 16 * cfg.base_width;
    let mut layers = Vec::new();
    let mut c = in_c;
    c = push_conv_block(&mut layers, c, w1, 1, cfg, rng)?;
    c = push_conv_block(&mut layers, c, w1, 1, cfg, rng)?;
    push_pool(&mut layers, cfg)?;
    c = push_conv_block(&mut layers, c, w2, 1, cfg, rng)?;
    c = push_conv_block(&mut layers, c, w2, 1, cfg, rng)?;
    push_pool(&mut layers, cfg)?;
    layers.push(Layer::Flatten(Flatten::new()));
    let feat = c * (h / 4) * (w / 4);
    let f = push_linear_block(&mut layers, feat, hidden, cfg, rng)?;
    layers.push(Layer::Linear(Linear::new(f, cfg.classes, true, rng)?));
    Ok(Network::new(layers))
}

/// VGG-16: stages of [2, 2, 3, 3, 3] convolutions at widths
/// [w, 2w, 4w, 8w, 8w], a 2×2 pool after each stage while the spatial extent
/// allows, then three fully connected layers.
///
/// # Errors
///
/// Returns an error for degenerate inputs.
pub fn vgg16(cfg: &ModelConfig, rng: &mut SeededRng) -> Result<Network> {
    let (in_c, h, w) = cfg.input;
    let wbase = cfg.base_width;
    let stages: [(usize, usize); 5] = [
        (2, wbase),
        (2, 2 * wbase),
        (3, 4 * wbase),
        (3, 8 * wbase),
        (3, 8 * wbase),
    ];
    let mut layers = Vec::new();
    let mut c = in_c;
    let (mut ch, mut cw) = (h, w);
    for (convs, width) in stages {
        for _ in 0..convs {
            c = push_conv_block(&mut layers, c, width, 1, cfg, rng)?;
        }
        if ch >= 2 && cw >= 2 {
            push_pool(&mut layers, cfg)?;
            ch /= 2;
            cw /= 2;
        }
    }
    layers.push(Layer::Flatten(Flatten::new()));
    let hidden = 16 * wbase;
    let mut f = c * ch * cw;
    f = push_linear_block(&mut layers, f, hidden, cfg, rng)?;
    f = push_linear_block(&mut layers, f, hidden, cfg, rng)?;
    layers.push(Layer::Linear(Linear::new(f, cfg.classes, true, rng)?));
    Ok(Network::new(layers))
}

/// Appends a ResNet stage of `blocks` basic blocks, the first at `stride`.
fn push_stage(
    layers: &mut Vec<Layer>,
    in_c: usize,
    out_c: usize,
    blocks: usize,
    stride: usize,
    cfg: &ModelConfig,
    rng: &mut SeededRng,
) -> Result<usize> {
    let mut c = in_c;
    for b in 0..blocks {
        let s = if b == 0 { stride } else { 1 };
        layers.push(Layer::Residual(ResidualBlock::new(
            c,
            out_c,
            s,
            cfg.batch_norm,
            cfg.clip_lambda,
            rng,
        )?));
        c = out_c;
    }
    Ok(c)
}

/// Shared ResNet scaffold: stem conv, the given stages, global average
/// pooling, and a linear classifier.
fn resnet(
    cfg: &ModelConfig,
    stages: &[(usize, usize, usize)], // (blocks, width, stride)
    rng: &mut SeededRng,
) -> Result<Network> {
    let (in_c, _, _) = cfg.input;
    let mut layers = Vec::new();
    let mut c = push_conv_block(&mut layers, in_c, cfg.base_width, 1, cfg, rng)?;
    for &(blocks, width, stride) in stages {
        c = push_stage(&mut layers, c, width, blocks, stride, cfg, rng)?;
    }
    layers.push(Layer::GlobalAvgPool(GlobalAvgPool::new()));
    layers.push(Layer::Flatten(Flatten::new()));
    layers.push(Layer::Linear(Linear::new(c, cfg.classes, true, rng)?));
    Ok(Network::new(layers))
}

/// ResNet-18: stages of [2, 2, 2, 2] basic blocks at widths [w, 2w, 4w, 8w].
///
/// # Errors
///
/// Propagates layer-construction errors.
pub fn resnet18(cfg: &ModelConfig, rng: &mut SeededRng) -> Result<Network> {
    let w = cfg.base_width;
    resnet(
        cfg,
        &[(2, w, 1), (2, 2 * w, 2), (2, 4 * w, 2), (2, 8 * w, 2)],
        rng,
    )
}

/// ResNet-34: stages of [3, 4, 6, 3] basic blocks at widths [w, 2w, 4w, 8w].
///
/// # Errors
///
/// Propagates layer-construction errors.
pub fn resnet34(cfg: &ModelConfig, rng: &mut SeededRng) -> Result<Network> {
    let w = cfg.base_width;
    resnet(
        cfg,
        &[(3, w, 1), (4, 2 * w, 2), (6, 4 * w, 2), (3, 8 * w, 2)],
        rng,
    )
}

/// ResNet-20 (CIFAR-style): three stages of three blocks at widths
/// [w, 2w, 4w].
///
/// # Errors
///
/// Propagates layer-construction errors.
pub fn resnet20(cfg: &ModelConfig, rng: &mut SeededRng) -> Result<Network> {
    let w = cfg.base_width;
    resnet(cfg, &[(3, w, 1), (3, 2 * w, 2), (3, 4 * w, 2)], rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use tcl_nn::Mode;

    fn cfg() -> ModelConfig {
        ModelConfig::new((3, 16, 16), 10)
            .with_base_width(4)
            .with_clip_lambda(Some(2.0))
    }

    fn forward_ok(net: &mut Network, classes: usize) {
        let mut rng = SeededRng::new(99);
        let x = rng.uniform_tensor([2, 3, 16, 16], -1.0, 1.0);
        let y = net.forward(&x, Mode::Eval).unwrap();
        assert_eq!(y.dims(), &[2, classes]);
        assert!(y.is_finite());
    }

    #[test]
    fn cnn6_shape_and_structure() {
        let mut rng = SeededRng::new(0);
        let mut net = cnn6(&cfg(), &mut rng).unwrap();
        forward_ok(&mut net, 10);
        let convs = net
            .layers()
            .iter()
            .filter(|l| l.kind_name() == "conv2d")
            .count();
        let linears = net
            .layers()
            .iter()
            .filter(|l| l.kind_name() == "linear")
            .count();
        assert_eq!(convs, 4, "4Conv");
        assert_eq!(linears, 2, "2Linear");
        // One clip per ReLU: 4 convs + 1 hidden linear.
        assert_eq!(net.clip_lambdas().len(), 5);
    }

    #[test]
    fn vgg16_has_thirteen_convs_and_three_linears() {
        let mut rng = SeededRng::new(1);
        let mut net = vgg16(&cfg(), &mut rng).unwrap();
        forward_ok(&mut net, 10);
        let convs = net
            .layers()
            .iter()
            .filter(|l| l.kind_name() == "conv2d")
            .count();
        let linears = net
            .layers()
            .iter()
            .filter(|l| l.kind_name() == "linear")
            .count();
        assert_eq!(convs, 13);
        assert_eq!(linears, 3);
        // 16x16 input admits 4 of the 5 pools.
        let pools = net
            .layers()
            .iter()
            .filter(|l| l.kind_name() == "avgpool2d")
            .count();
        assert_eq!(pools, 4);
        // 13 convs + 2 hidden linears each carry a clip.
        assert_eq!(net.clip_lambdas().len(), 15);
    }

    #[test]
    fn vgg16_on_32x32_gets_all_five_pools() {
        let mut rng = SeededRng::new(2);
        let c = ModelConfig::new((3, 32, 32), 10).with_base_width(2);
        let net = vgg16(&c, &mut rng).unwrap();
        let pools = net
            .layers()
            .iter()
            .filter(|l| l.kind_name() == "avgpool2d")
            .count();
        assert_eq!(pools, 5);
    }

    #[test]
    fn resnet18_block_count() {
        let mut rng = SeededRng::new(3);
        let mut net = resnet18(&cfg(), &mut rng).unwrap();
        forward_ok(&mut net, 10);
        let blocks = net
            .layers()
            .iter()
            .filter(|l| l.kind_name() == "residual")
            .count();
        assert_eq!(blocks, 8);
    }

    #[test]
    fn resnet34_block_count() {
        let mut rng = SeededRng::new(4);
        let mut net = resnet34(&cfg(), &mut rng).unwrap();
        forward_ok(&mut net, 10);
        let blocks = net
            .layers()
            .iter()
            .filter(|l| l.kind_name() == "residual")
            .count();
        assert_eq!(blocks, 16);
    }

    #[test]
    fn resnet20_block_count() {
        let mut rng = SeededRng::new(5);
        let mut net = resnet20(&cfg(), &mut rng).unwrap();
        forward_ok(&mut net, 10);
        let blocks = net
            .layers()
            .iter()
            .filter(|l| l.kind_name() == "residual")
            .count();
        assert_eq!(blocks, 9);
    }

    #[test]
    fn baseline_networks_have_no_clips() {
        let mut rng = SeededRng::new(6);
        let c = ModelConfig::new((3, 16, 16), 10)
            .with_base_width(4)
            .with_clip_lambda(None);
        for arch in [
            Architecture::Cnn6,
            Architecture::Vgg16,
            Architecture::ResNet18,
        ] {
            let net = arch.build(&c, &mut rng).unwrap();
            assert!(net.clip_lambdas().is_empty(), "{arch}");
        }
    }

    #[test]
    fn max_pooling_variant_builds_and_runs() {
        let mut rng = SeededRng::new(7);
        let c = cfg().with_pooling(Pooling::Max);
        let mut net = cnn6(&c, &mut rng).unwrap();
        forward_ok(&mut net, 10);
        assert!(net.layers().iter().any(|l| l.kind_name() == "maxpool2d"));
    }

    #[test]
    fn architecture_names_match_paper() {
        assert_eq!(Architecture::Cnn6.name(), "4Conv,2Linear");
        assert_eq!(Architecture::Vgg16.to_string(), "VGG-16");
        assert_eq!(Architecture::ResNet34.name(), "RESNET-34");
    }

    #[test]
    fn cnn6_rejects_tiny_inputs() {
        let mut rng = SeededRng::new(8);
        let c = ModelConfig::new((1, 2, 2), 2);
        assert!(cnn6(&c, &mut rng).is_err());
    }

    #[test]
    fn training_mode_backward_works_on_resnet() {
        let mut rng = SeededRng::new(9);
        let c = ModelConfig::new((3, 8, 8), 4)
            .with_base_width(2)
            .with_clip_lambda(Some(2.0));
        let mut net = resnet20(&c, &mut rng).unwrap();
        let x = rng.uniform_tensor([2, 3, 8, 8], -1.0, 1.0);
        let y = net.forward(&x, Mode::Train).unwrap();
        let g = tcl_tensor::Tensor::ones(y.shape().clone());
        let gi = net.backward(&g).unwrap();
        assert_eq!(gi.dims(), x.dims());
    }
}

#[cfg(test)]
mod dropout_tests {
    use super::*;
    use tcl_nn::Mode;

    #[test]
    fn dropout_option_inserts_layers_in_classifier_head_only() {
        let mut rng = SeededRng::new(20);
        let cfg = ModelConfig::new((3, 16, 16), 10)
            .with_base_width(4)
            .with_clip_lambda(Some(2.0))
            .with_dropout(Some(0.5));
        let net = vgg16(&cfg, &mut rng).unwrap();
        let dropouts = net
            .layers()
            .iter()
            .filter(|l| l.kind_name() == "dropout")
            .count();
        // Two hidden classifier blocks → two dropout layers.
        assert_eq!(dropouts, 2);
    }

    #[test]
    fn dropout_model_trains_and_evaluates() {
        let mut rng = SeededRng::new(21);
        let cfg = ModelConfig::new((3, 8, 8), 4)
            .with_base_width(2)
            .with_dropout(Some(0.3));
        let mut net = cnn6(&cfg, &mut rng).unwrap();
        let x = rng.uniform_tensor([4, 3, 8, 8], -1.0, 1.0);
        let y_train = net.forward(&x, Mode::Train).unwrap();
        let g = tcl_tensor::Tensor::ones(y_train.shape().clone());
        net.backward(&g).unwrap();
        let y_eval = net.forward(&x, Mode::Eval).unwrap();
        assert!(y_eval.is_finite());
    }
}
