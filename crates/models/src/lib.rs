//! # tcl-models
//!
//! Architecture builders for the TCL ANN-to-SNN reproduction (Ho & Chang,
//! DAC 2021): the paper's "4Conv, 2Linear" network, VGG-16, and the
//! ResNet-18/20/34 family, all parameterized by a [`ModelConfig`] that
//! controls width scaling, batch normalization, pooling, and — crucially —
//! whether trainable clipping layers (TCL) follow every ReLU.
//!
//! ## Example
//!
//! ```
//! use tcl_models::{Architecture, ModelConfig};
//! use tcl_tensor::SeededRng;
//!
//! let cfg = ModelConfig::new((3, 16, 16), 10)
//!     .with_base_width(4)
//!     .with_clip_lambda(Some(2.0)); // paper's λ₀ for Cifar-10
//! let mut rng = SeededRng::new(0);
//! let net = Architecture::Vgg16.build(&cfg, &mut rng)?;
//! assert_eq!(net.clip_lambdas().len(), 15); // one per ReLU
//! # Ok::<(), tcl_nn::NnError>(())
//! ```

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod build;
mod config;

pub use build::{cnn6, resnet18, resnet20, resnet34, vgg16, Architecture};
pub use config::{ModelConfig, Pooling};
