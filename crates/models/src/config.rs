//! Shared configuration for architecture builders.

use serde::{Deserialize, Serialize};

/// Which spatial down-sampling operator a model uses.
///
/// The conversion pipeline requires average pooling (a max over spike trains
/// has no spiking implementation — Section 3.1 of the paper); max pooling is
/// provided for unconstrained-ANN comparisons only.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pooling {
    /// Average pooling (spike-compatible; the paper's choice).
    Avg,
    /// Max pooling (ANN baseline only; conversion will reject it).
    Max,
}

/// Configuration shared by every architecture builder.
///
/// `base_width` scales all channel counts; the paper's full-width networks
/// correspond to `base_width = 64`, while this reproduction defaults to
/// narrow variants (8–16) that train in minutes on one CPU core. Depth and
/// topology — the properties that stress ANN-to-SNN conversion — are kept
/// faithful to the originals.
///
/// # Examples
///
/// ```
/// use tcl_models::{ModelConfig, Pooling};
///
/// let cfg = ModelConfig::new((3, 16, 16), 10)
///     .with_base_width(8)
///     .with_clip_lambda(Some(2.0));
/// assert_eq!(cfg.classes, 10);
/// assert_eq!(cfg.pooling, Pooling::Avg);
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct ModelConfig {
    /// Input geometry `(channels, height, width)`.
    pub input: (usize, usize, usize),
    /// Number of output classes.
    pub classes: usize,
    /// Channel count of the first stage; later stages scale multiples of it.
    pub base_width: usize,
    /// Insert batch normalization after convolutions.
    pub batch_norm: bool,
    /// `Some(λ₀)` inserts a trainable clipping layer (initial bound λ₀)
    /// after every ReLU — the paper's TCL. `None` builds the unconstrained
    /// baseline ANN used by the max-norm/percentile conversion baselines.
    pub clip_lambda: Option<f32>,
    /// Down-sampling operator.
    pub pooling: Pooling,
    /// `Some(p)` inserts inverted dropout with probability `p` after each
    /// hidden classifier activation (the standard VGG regularizer). The
    /// converter skips dropout (identity at inference).
    pub dropout: Option<f32>,
}

impl ModelConfig {
    /// Creates a configuration with the reproduction defaults: width 8,
    /// batch-norm on, average pooling, no clipping.
    pub fn new(input: (usize, usize, usize), classes: usize) -> Self {
        ModelConfig {
            input,
            classes,
            base_width: 8,
            batch_norm: true,
            clip_lambda: None,
            pooling: Pooling::Avg,
            dropout: None,
        }
    }

    /// Sets the base channel width.
    pub fn with_base_width(mut self, base_width: usize) -> Self {
        self.base_width = base_width;
        self
    }

    /// Enables or disables batch normalization.
    pub fn with_batch_norm(mut self, batch_norm: bool) -> Self {
        self.batch_norm = batch_norm;
        self
    }

    /// Sets the TCL initial clipping bound (`None` disables clipping).
    ///
    /// The paper initializes λ to 2.0 for Cifar-10 and 4.0 for Imagenet
    /// (Section 6).
    pub fn with_clip_lambda(mut self, clip_lambda: Option<f32>) -> Self {
        self.clip_lambda = clip_lambda;
        self
    }

    /// Sets the pooling operator.
    pub fn with_pooling(mut self, pooling: Pooling) -> Self {
        self.pooling = pooling;
        self
    }

    /// Sets classifier-head dropout (`None` disables it).
    pub fn with_dropout(mut self, dropout: Option<f32>) -> Self {
        self.dropout = dropout;
        self
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn builder_chain_sets_fields() {
        let cfg = ModelConfig::new((1, 8, 8), 2)
            .with_base_width(4)
            .with_batch_norm(false)
            .with_clip_lambda(Some(4.0))
            .with_pooling(Pooling::Max);
        assert_eq!(cfg.base_width, 4);
        assert!(!cfg.batch_norm);
        assert_eq!(cfg.clip_lambda, Some(4.0));
        assert_eq!(cfg.pooling, Pooling::Max);
    }

    #[test]
    fn defaults_match_documentation() {
        let cfg = ModelConfig::new((3, 16, 16), 10);
        assert_eq!(cfg.base_width, 8);
        assert!(cfg.batch_norm);
        assert!(cfg.clip_lambda.is_none());
        assert_eq!(cfg.pooling, Pooling::Avg);
    }
}
