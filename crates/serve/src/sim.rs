//! Deterministic network simulation: scripted clients over a
//! [`VirtualClock`].
//!
//! A [`SimNet`] is an in-memory [`Transport`] whose connections follow
//! byte-level scripts pinned to virtual timestamps: "at t=1200µs this
//! client's next 40 bytes become readable", "at t=5000µs it disconnects".
//! Combined with the virtual clock this makes serving scenarios exact
//! replays — open-loop arrival processes, slow-loris dribble, mid-request
//! disconnects, keep-alive conversations — with the response bytes and
//! completion order observable through [`ClientHandle`]s. Scripts are
//! shared with their handle, so a test (or a closed-loop bench client)
//! can append follow-up requests with [`ClientHandle::send_at`] after
//! observing a response. The load-simulation and fault-injection suites
//! are written entirely against this module; nothing here touches real
//! sockets or wall time.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::clock::{Clock, VirtualClock};
use crate::transport::{Connection, Io, Transport};

/// One scripted client action, pinned to an absolute virtual time.
#[derive(Debug, Clone)]
pub enum Chunk {
    /// Bytes that become readable at the given time.
    Bytes(Vec<u8>),
    /// The client disconnects at the given time (mid-request hangup).
    Hangup,
}

type Script = Rc<RefCell<VecDeque<(u64, Chunk)>>>;

/// The client-observable side of a simulated connection.
#[derive(Debug, Default)]
pub struct ClientSide {
    /// Response bytes the server has written so far.
    pub response: Vec<u8>,
    /// Virtual time at which the server closed the connection (response
    /// complete or aborted).
    pub closed_at: Option<u64>,
    /// Global completion index: the n-th connection the server closed.
    /// This is the completion-order fingerprint the determinism suite
    /// compares across runs and thread counts.
    pub completion_index: Option<u64>,
}

/// Shared handle onto a simulated client (the test's view).
#[derive(Debug, Clone)]
pub struct ClientHandle {
    side: Rc<RefCell<ClientSide>>,
    script: Script,
}

impl ClientHandle {
    /// The full response text received so far (all responses, for a
    /// kept-alive connection).
    pub fn response_text(&self) -> String {
        String::from_utf8_lossy(&self.side.borrow().response).into_owned()
    }

    /// The status code of the *first* response, if a status line arrived.
    pub fn status(&self) -> Option<u16> {
        let side = self.side.borrow();
        let text = std::str::from_utf8(&side.response).ok()?;
        let line = text.lines().next()?;
        line.split_whitespace().nth(1)?.parse().ok()
    }

    /// The body of the *first* complete response, as text.
    pub fn body(&self) -> String {
        self.responses()
            .into_iter()
            .next()
            .map(|(_, body)| body)
            .unwrap_or_default()
    }

    /// Every complete `(status, body)` response received so far, in
    /// arrival order — the keep-alive view. Responses are delimited by
    /// `Content-Length`; a trailing partial response is omitted.
    pub fn responses(&self) -> Vec<(u16, String)> {
        split_responses(&self.side.borrow().response)
    }

    /// Status codes of every complete response received so far.
    pub fn statuses(&self) -> Vec<u16> {
        self.responses().into_iter().map(|(s, _)| s).collect()
    }

    /// Appends bytes to this client's script at an absolute virtual time
    /// (closed-loop clients: send the next request after seeing the
    /// previous response). Times must be non-decreasing along the script.
    pub fn send_at(&self, at: u64, bytes: Vec<u8>) {
        self.script
            .borrow_mut()
            .push_back((at, Chunk::Bytes(bytes)));
    }

    /// Appends a hangup to this client's script.
    pub fn hangup_at(&self, at: u64) {
        self.script.borrow_mut().push_back((at, Chunk::Hangup));
    }

    /// When the server closed this connection (virtual µs), if it has.
    pub fn closed_at(&self) -> Option<u64> {
        self.side.borrow().closed_at
    }

    /// This connection's global completion index, if closed.
    pub fn completion_index(&self) -> Option<u64> {
        self.side.borrow().completion_index
    }
}

/// Splits a byte stream of back-to-back HTTP responses into complete
/// `(status, body)` pairs, honoring `Content-Length` (responses the
/// server emits always carry one). A trailing partial response is
/// dropped.
fn split_responses(stream: &[u8]) -> Vec<(u16, String)> {
    let mut out = Vec::new();
    let mut rest = stream;
    while let Some((head_len, term_len)) = find_head_end(rest) {
        let head = String::from_utf8_lossy(&rest[..head_len]);
        let Some(status) = head
            .lines()
            .next()
            .and_then(|l| l.split_whitespace().nth(1))
            .and_then(|s| s.parse::<u16>().ok())
        else {
            break;
        };
        let content_length = head
            .lines()
            .filter_map(|l| l.split_once(':'))
            .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
            .and_then(|(_, v)| v.trim().parse::<usize>().ok())
            .unwrap_or(0);
        let body_start = head_len + term_len;
        if rest.len() < body_start + content_length {
            break; // body still in flight
        }
        let body =
            String::from_utf8_lossy(&rest[body_start..body_start + content_length]).into_owned();
        out.push((status, body));
        rest = &rest[body_start + content_length..];
        if rest.is_empty() {
            break;
        }
    }
    out
}

/// Finds the end of a response head: returns `(head_len, terminator_len)`
/// for the earliest `\r\n\r\n` or `\n\n`.
fn find_head_end(bytes: &[u8]) -> Option<(usize, usize)> {
    for i in 0..bytes.len() {
        if bytes[i..].starts_with(b"\r\n\r\n") {
            return Some((i, 4));
        }
        if bytes[i..].starts_with(b"\n\n") {
            return Some((i, 2));
        }
    }
    None
}

struct SimConn {
    clock: VirtualClock,
    script: Script,
    /// Read offset into the front chunk.
    cursor: usize,
    side: Rc<RefCell<ClientSide>>,
    /// Per-call write cap (simulates a congested client; `usize::MAX`
    /// means unlimited).
    write_limit: usize,
    completions: Rc<RefCell<u64>>,
    closed: bool,
}

impl Connection for SimConn {
    fn poll_read(&mut self, buf: &mut [u8]) -> Io {
        let now = self.clock.now_us();
        let mut script = self.script.borrow_mut();
        let Some((at, chunk)) = script.front() else {
            return Io::WouldBlock;
        };
        if *at > now {
            return Io::WouldBlock;
        }
        match chunk {
            Chunk::Hangup => Io::Closed,
            Chunk::Bytes(bytes) => {
                let remaining = &bytes[self.cursor..];
                let n = remaining.len().min(buf.len());
                buf[..n].copy_from_slice(&remaining[..n]);
                self.cursor += n;
                if self.cursor >= bytes.len() {
                    script.pop_front();
                    self.cursor = 0;
                }
                if n == 0 {
                    // An empty scripted chunk: treat as no progress.
                    script.pop_front();
                    Io::WouldBlock
                } else {
                    Io::Data(n)
                }
            }
        }
    }

    fn poll_write(&mut self, data: &[u8]) -> Io {
        // A hung-up client rejects writes too (once its hangup time has
        // passed): the server sees the disconnect on the write path.
        let now = self.clock.now_us();
        if self
            .script
            .borrow()
            .front()
            .is_some_and(|(at, c)| matches!(c, Chunk::Hangup) && *at <= now)
        {
            return Io::Closed;
        }
        let n = data.len().min(self.write_limit);
        if n == 0 {
            return Io::WouldBlock;
        }
        self.side
            .borrow_mut()
            .response
            .extend_from_slice(&data[..n]);
        Io::Data(n)
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let mut side = self.side.borrow_mut();
        side.closed_at = Some(self.clock.now_us());
        let mut seq = self.completions.borrow_mut();
        side.completion_index = Some(*seq);
        *seq += 1;
    }
}

struct SimNetInner {
    clock: VirtualClock,
    /// Pending connections: (arrival time, admission sequence, conn).
    /// Kept sorted by (arrival, seq) so accepts happen in schedule order.
    arrivals: Vec<(u64, u64, SimConn)>,
    next_seq: u64,
    completions: Rc<RefCell<u64>>,
}

/// A simulated listener; clone handles freely (all clones share state).
#[derive(Clone)]
pub struct SimNet {
    inner: Rc<RefCell<SimNetInner>>,
}

impl SimNet {
    /// A network on the given clock.
    pub fn new(clock: &VirtualClock) -> Self {
        SimNet {
            inner: Rc::new(RefCell::new(SimNetInner {
                clock: clock.clone(),
                arrivals: Vec::new(),
                next_seq: 0,
                completions: Rc::new(RefCell::new(0)),
            })),
        }
    }

    /// Schedules a client that connects at `connect_at` and plays
    /// `script` (each chunk pinned to its own absolute time), returning
    /// the handle the test observes the response through (and can extend
    /// with [`ClientHandle::send_at`]).
    pub fn connect_at(&self, connect_at: u64, script: Vec<(u64, Chunk)>) -> ClientHandle {
        self.connect_throttled(connect_at, script, usize::MAX)
    }

    /// Like [`SimNet::connect_at`] with a per-call write cap, simulating
    /// a client that drains the response slowly.
    pub fn connect_throttled(
        &self,
        connect_at: u64,
        script: Vec<(u64, Chunk)>,
        write_limit: usize,
    ) -> ClientHandle {
        let mut inner = self.inner.borrow_mut();
        let side = Rc::new(RefCell::new(ClientSide::default()));
        let script: Script = Rc::new(RefCell::new(script.into_iter().collect()));
        let conn = SimConn {
            clock: inner.clock.clone(),
            script: Rc::clone(&script),
            cursor: 0,
            side: Rc::clone(&side),
            write_limit,
            completions: Rc::clone(&inner.completions),
            closed: false,
        };
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.arrivals.push((connect_at, seq, conn));
        inner.arrivals.sort_by_key(|(at, seq, _)| (*at, *seq));
        ClientHandle { side, script }
    }

    /// Schedules an ordinary single-shot request: connect and send the
    /// whole request at `at`.
    pub fn request_at(&self, at: u64, request: Vec<u8>) -> ClientHandle {
        self.connect_at(at, vec![(at, Chunk::Bytes(request))])
    }

    /// Connections not yet accepted by the server.
    pub fn pending(&self) -> usize {
        self.inner.borrow().arrivals.len()
    }
}

impl Transport for SimNet {
    fn poll_accept(&mut self) -> Option<Box<dyn Connection>> {
        let mut inner = self.inner.borrow_mut();
        let now = inner.clock.now_us();
        if inner.arrivals.first().is_some_and(|(at, _, _)| *at <= now) {
            let (_, _, conn) = inner.arrivals.remove(0);
            Some(Box::new(conn))
        } else {
            None
        }
    }
}

fn infer_body(sample: &[f32], deadline_us: Option<u64>) -> String {
    let mut body = String::from("{\"sample\":[");
    for (i, v) in sample.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        tcl_telemetry::json::number_into(f64::from(*v), &mut body);
    }
    body.push(']');
    if let Some(d) = deadline_us {
        body.push_str(",\"deadline_us\":");
        body.push_str(&d.to_string());
    }
    body.push('}');
    body
}

/// Builds the HTTP bytes of one single-shot `/infer` request
/// (`Connection: close`: the client hangs up after one answer).
pub fn infer_request(sample: &[f32], deadline_us: Option<u64>) -> Vec<u8> {
    let body = infer_body(sample, deadline_us);
    let mut out = format!(
        "POST /infer HTTP/1.1\r\nHost: sim\r\nConnection: close\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Builds the HTTP bytes of one `/infer` request on a kept-alive
/// connection (no `Connection` header: HTTP/1.1 defaults to keep-alive).
pub fn infer_request_keep_alive(sample: &[f32], deadline_us: Option<u64>) -> Vec<u8> {
    let body = infer_body(sample, deadline_us);
    let mut out = format!(
        "POST /infer HTTP/1.1\r\nHost: sim\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Builds the HTTP bytes of a single-shot GET request
/// (`Connection: close`).
pub fn get_request(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n\r\n").into_bytes()
}

/// Builds the HTTP bytes of a GET request on a kept-alive connection.
pub fn get_request_keep_alive(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: sim\r\n\r\n").into_bytes()
}

/// Concatenates requests into one pipelined byte blob (sent in a single
/// chunk, the requests arrive back-to-back in the server's read buffer).
pub fn pipelined(requests: &[Vec<u8>]) -> Vec<u8> {
    requests.iter().flat_map(|r| r.iter().copied()).collect()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_bytes_become_readable_on_schedule() {
        let clock = VirtualClock::new();
        let mut net = SimNet::new(&clock);
        let _client = net.connect_at(
            100,
            vec![
                (100, Chunk::Bytes(b"hel".to_vec())),
                (300, Chunk::Bytes(b"lo".to_vec())),
            ],
        );
        assert!(net.poll_accept().is_none(), "not connected yet");
        clock.advance(100);
        let mut conn = net.poll_accept().expect("arrival due");
        assert!(net.poll_accept().is_none(), "only one client");
        let mut buf = [0u8; 16];
        assert_eq!(conn.poll_read(&mut buf), Io::Data(3));
        assert_eq!(&buf[..3], b"hel");
        assert_eq!(conn.poll_read(&mut buf), Io::WouldBlock, "chunk 2 not due");
        clock.advance(200);
        assert_eq!(conn.poll_read(&mut buf), Io::Data(2));
        assert_eq!(conn.poll_read(&mut buf), Io::WouldBlock, "script drained");
    }

    #[test]
    fn hangup_surfaces_on_read_and_write() {
        let clock = VirtualClock::new();
        let mut net = SimNet::new(&clock);
        let client = net.connect_at(
            0,
            vec![(0, Chunk::Bytes(b"PARTIAL".to_vec())), (50, Chunk::Hangup)],
        );
        let mut conn = net.poll_accept().expect("due");
        let mut buf = [0u8; 16];
        assert_eq!(conn.poll_read(&mut buf), Io::Data(7));
        assert_eq!(conn.poll_read(&mut buf), Io::WouldBlock, "hangup not due");
        clock.advance(50);
        assert_eq!(conn.poll_read(&mut buf), Io::Closed);
        assert_eq!(conn.poll_write(b"x"), Io::Closed);
        conn.close();
        assert_eq!(client.closed_at(), Some(50));
        assert_eq!(client.completion_index(), Some(0));
    }

    #[test]
    fn writes_land_in_the_client_handle() {
        let clock = VirtualClock::new();
        let mut net = SimNet::new(&clock);
        let client = net.connect_throttled(0, vec![], 4);
        let mut conn = net.poll_accept().expect("due");
        assert_eq!(
            conn.poll_write(b"HTTP/1.1 200 OK"),
            Io::Data(4),
            "throttled"
        );
        assert_eq!(conn.poll_write(b"/1.1 200 OK"), Io::Data(4));
        assert_eq!(client.response_text(), "HTTP/1.1");
    }

    #[test]
    fn accepts_follow_schedule_order_not_insertion_order() {
        let clock = VirtualClock::new();
        let mut net = SimNet::new(&clock);
        let _late = net.connect_at(500, vec![(500, Chunk::Bytes(b"B".to_vec()))]);
        let _early = net.connect_at(100, vec![(100, Chunk::Bytes(b"A".to_vec()))]);
        clock.advance(500);
        let mut first = net.poll_accept().expect("two due");
        let mut buf = [0u8; 1];
        assert_eq!(first.poll_read(&mut buf), Io::Data(1));
        assert_eq!(buf[0], b'A', "earlier arrival accepted first");
        let mut second = net.poll_accept().expect("second due");
        assert_eq!(second.poll_read(&mut buf), Io::Data(1));
        assert_eq!(buf[0], b'B');
    }

    #[test]
    fn request_builders_emit_valid_http() {
        let req = String::from_utf8(infer_request(&[0.5, 1.0], Some(800))).unwrap();
        assert!(req.starts_with("POST /infer HTTP/1.1\r\n"));
        assert!(req.contains("Connection: close\r\n"), "single-shot closes");
        let body = req.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(body, "{\"sample\":[0.5,1.0],\"deadline_us\":800}");
        assert!(req.contains(&format!("Content-Length: {}\r\n", body.len())));
        let ka = String::from_utf8(infer_request_keep_alive(&[0.5], None)).unwrap();
        assert!(!ka.contains("Connection:"), "keep-alive is the 1.1 default");
        let get = String::from_utf8(get_request("/healthz")).unwrap();
        assert_eq!(
            get,
            "GET /healthz HTTP/1.1\r\nHost: sim\r\nConnection: close\r\n\r\n"
        );
        assert_eq!(
            String::from_utf8(get_request_keep_alive("/stats")).unwrap(),
            "GET /stats HTTP/1.1\r\nHost: sim\r\n\r\n"
        );
    }

    #[test]
    fn send_at_extends_a_live_script() {
        let clock = VirtualClock::new();
        let mut net = SimNet::new(&clock);
        let client = net.connect_at(0, vec![(0, Chunk::Bytes(b"one".to_vec()))]);
        let mut conn = net.poll_accept().expect("due");
        let mut buf = [0u8; 16];
        assert_eq!(conn.poll_read(&mut buf), Io::Data(3));
        assert_eq!(conn.poll_read(&mut buf), Io::WouldBlock, "script empty");
        client.send_at(200, b"two".to_vec());
        assert_eq!(conn.poll_read(&mut buf), Io::WouldBlock, "not due yet");
        clock.advance(200);
        assert_eq!(conn.poll_read(&mut buf), Io::Data(3));
        assert_eq!(&buf[..3], b"two");
    }

    #[test]
    fn responses_splits_a_keep_alive_stream() {
        let clock = VirtualClock::new();
        let mut net = SimNet::new(&clock);
        let client = net.connect_at(0, vec![]);
        let mut conn = net.poll_accept().expect("due");
        let stream = b"HTTP/1.1 200 OK\r\nContent-Length: 3\r\n\r\nok\n\
                       HTTP/1.1 429 Too Many Requests\r\nContent-Length: 2\r\n\r\nno\
                       HTTP/1.1 200 OK\r\nContent-Length: 99\r\n\r\npartial";
        assert!(matches!(conn.poll_write(stream), Io::Data(_)));
        assert_eq!(
            client.responses(),
            vec![(200, "ok\n".to_string()), (429, "no".to_string())],
            "trailing partial response omitted"
        );
        assert_eq!(client.statuses(), vec![200, 429]);
        assert_eq!(client.status(), Some(200), "first response");
        assert_eq!(client.body(), "ok\n");
    }
}
