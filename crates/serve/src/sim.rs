//! Deterministic network simulation: scripted clients over a
//! [`VirtualClock`].
//!
//! A [`SimNet`] is an in-memory [`Transport`] whose connections follow
//! byte-level scripts pinned to virtual timestamps: "at t=1200µs this
//! client's next 40 bytes become readable", "at t=5000µs it disconnects".
//! Combined with the virtual clock this makes serving scenarios exact
//! replays — open-loop arrival processes, slow-loris dribble, mid-request
//! disconnects — with the response bytes and completion order observable
//! through [`ClientHandle`]s. The load-simulation and fault-injection
//! suites are written entirely against this module; nothing here touches
//! real sockets or wall time.

use std::cell::RefCell;
use std::collections::VecDeque;
use std::rc::Rc;

use crate::clock::{Clock, VirtualClock};
use crate::transport::{Connection, Io, Transport};

/// One scripted client action, pinned to an absolute virtual time.
#[derive(Debug, Clone)]
pub enum Chunk {
    /// Bytes that become readable at the given time.
    Bytes(Vec<u8>),
    /// The client disconnects at the given time (mid-request hangup).
    Hangup,
}

/// The client-observable side of a simulated connection.
#[derive(Debug, Default)]
pub struct ClientSide {
    /// Response bytes the server has written so far.
    pub response: Vec<u8>,
    /// Virtual time at which the server closed the connection (response
    /// complete or aborted).
    pub closed_at: Option<u64>,
    /// Global completion index: the n-th connection the server closed.
    /// This is the completion-order fingerprint the determinism suite
    /// compares across runs and thread counts.
    pub completion_index: Option<u64>,
}

/// Shared handle onto a simulated client (the test's view).
#[derive(Debug, Clone)]
pub struct ClientHandle {
    side: Rc<RefCell<ClientSide>>,
}

impl ClientHandle {
    /// The full response text received so far.
    pub fn response_text(&self) -> String {
        String::from_utf8_lossy(&self.side.borrow().response).into_owned()
    }

    /// The HTTP status code of the response, if a status line has arrived.
    pub fn status(&self) -> Option<u16> {
        let side = self.side.borrow();
        let text = std::str::from_utf8(&side.response).ok()?;
        let line = text.lines().next()?;
        line.split_whitespace().nth(1)?.parse().ok()
    }

    /// The response body (bytes after the blank line), as text.
    pub fn body(&self) -> String {
        let text = self.response_text();
        match text.find("\r\n\r\n") {
            Some(p) => text[p + 4..].to_string(),
            None => String::new(),
        }
    }

    /// When the server closed this connection (virtual µs), if it has.
    pub fn closed_at(&self) -> Option<u64> {
        self.side.borrow().closed_at
    }

    /// This connection's global completion index, if closed.
    pub fn completion_index(&self) -> Option<u64> {
        self.side.borrow().completion_index
    }
}

struct SimConn {
    clock: VirtualClock,
    script: VecDeque<(u64, Chunk)>,
    /// Read offset into the front chunk.
    cursor: usize,
    side: Rc<RefCell<ClientSide>>,
    /// Per-call write cap (simulates a congested client; `usize::MAX`
    /// means unlimited).
    write_limit: usize,
    completions: Rc<RefCell<u64>>,
    closed: bool,
}

impl Connection for SimConn {
    fn poll_read(&mut self, buf: &mut [u8]) -> Io {
        let now = self.clock.now_us();
        let Some((at, chunk)) = self.script.front() else {
            return Io::WouldBlock;
        };
        if *at > now {
            return Io::WouldBlock;
        }
        match chunk {
            Chunk::Hangup => Io::Closed,
            Chunk::Bytes(bytes) => {
                let remaining = &bytes[self.cursor..];
                let n = remaining.len().min(buf.len());
                buf[..n].copy_from_slice(&remaining[..n]);
                self.cursor += n;
                if self.cursor >= bytes.len() {
                    self.script.pop_front();
                    self.cursor = 0;
                }
                if n == 0 {
                    // An empty scripted chunk: treat as no progress.
                    self.script.pop_front();
                    Io::WouldBlock
                } else {
                    Io::Data(n)
                }
            }
        }
    }

    fn poll_write(&mut self, data: &[u8]) -> Io {
        // A hung-up client rejects writes too (once its hangup time has
        // passed): the server sees the disconnect on the write path.
        let now = self.clock.now_us();
        if self
            .script
            .front()
            .is_some_and(|(at, c)| matches!(c, Chunk::Hangup) && *at <= now)
        {
            return Io::Closed;
        }
        let n = data.len().min(self.write_limit);
        if n == 0 {
            return Io::WouldBlock;
        }
        self.side
            .borrow_mut()
            .response
            .extend_from_slice(&data[..n]);
        Io::Data(n)
    }

    fn close(&mut self) {
        if self.closed {
            return;
        }
        self.closed = true;
        let mut side = self.side.borrow_mut();
        side.closed_at = Some(self.clock.now_us());
        let mut seq = self.completions.borrow_mut();
        side.completion_index = Some(*seq);
        *seq += 1;
    }
}

struct SimNetInner {
    clock: VirtualClock,
    /// Pending connections: (arrival time, admission sequence, conn).
    /// Kept sorted by (arrival, seq) so accepts happen in schedule order.
    arrivals: Vec<(u64, u64, SimConn)>,
    next_seq: u64,
    completions: Rc<RefCell<u64>>,
}

/// A simulated listener; clone handles freely (all clones share state).
#[derive(Clone)]
pub struct SimNet {
    inner: Rc<RefCell<SimNetInner>>,
}

impl SimNet {
    /// A network on the given clock.
    pub fn new(clock: &VirtualClock) -> Self {
        SimNet {
            inner: Rc::new(RefCell::new(SimNetInner {
                clock: clock.clone(),
                arrivals: Vec::new(),
                next_seq: 0,
                completions: Rc::new(RefCell::new(0)),
            })),
        }
    }

    /// Schedules a client that connects at `connect_at` and plays
    /// `script` (each chunk pinned to its own absolute time), returning
    /// the handle the test observes the response through.
    pub fn connect_at(&self, connect_at: u64, script: Vec<(u64, Chunk)>) -> ClientHandle {
        self.connect_throttled(connect_at, script, usize::MAX)
    }

    /// Like [`SimNet::connect_at`] with a per-call write cap, simulating
    /// a client that drains the response slowly.
    pub fn connect_throttled(
        &self,
        connect_at: u64,
        script: Vec<(u64, Chunk)>,
        write_limit: usize,
    ) -> ClientHandle {
        let mut inner = self.inner.borrow_mut();
        let side = Rc::new(RefCell::new(ClientSide::default()));
        let conn = SimConn {
            clock: inner.clock.clone(),
            script: script.into_iter().collect(),
            cursor: 0,
            side: Rc::clone(&side),
            write_limit,
            completions: Rc::clone(&inner.completions),
            closed: false,
        };
        let seq = inner.next_seq;
        inner.next_seq += 1;
        inner.arrivals.push((connect_at, seq, conn));
        inner.arrivals.sort_by_key(|(at, seq, _)| (*at, *seq));
        ClientHandle { side }
    }

    /// Schedules an ordinary single-shot request: connect and send the
    /// whole request at `at`.
    pub fn request_at(&self, at: u64, request: Vec<u8>) -> ClientHandle {
        self.connect_at(at, vec![(at, Chunk::Bytes(request))])
    }

    /// Connections not yet accepted by the server.
    pub fn pending(&self) -> usize {
        self.inner.borrow().arrivals.len()
    }
}

impl Transport for SimNet {
    fn poll_accept(&mut self) -> Option<Box<dyn Connection>> {
        let mut inner = self.inner.borrow_mut();
        let now = inner.clock.now_us();
        if inner.arrivals.first().is_some_and(|(at, _, _)| *at <= now) {
            let (_, _, conn) = inner.arrivals.remove(0);
            Some(Box::new(conn))
        } else {
            None
        }
    }
}

/// Builds the HTTP bytes of one `/infer` request.
pub fn infer_request(sample: &[f32], deadline_us: Option<u64>) -> Vec<u8> {
    let mut body = String::from("{\"sample\":[");
    for (i, v) in sample.iter().enumerate() {
        if i > 0 {
            body.push(',');
        }
        tcl_telemetry::json::number_into(f64::from(*v), &mut body);
    }
    body.push(']');
    if let Some(d) = deadline_us {
        body.push_str(",\"deadline_us\":");
        body.push_str(&d.to_string());
    }
    body.push('}');
    let mut out = format!(
        "POST /infer HTTP/1.1\r\nHost: sim\r\nContent-Length: {}\r\n\r\n",
        body.len()
    )
    .into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

/// Builds the HTTP bytes of a GET request.
pub fn get_request(path: &str) -> Vec<u8> {
    format!("GET {path} HTTP/1.1\r\nHost: sim\r\n\r\n").into_bytes()
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scripted_bytes_become_readable_on_schedule() {
        let clock = VirtualClock::new();
        let mut net = SimNet::new(&clock);
        let _client = net.connect_at(
            100,
            vec![
                (100, Chunk::Bytes(b"hel".to_vec())),
                (300, Chunk::Bytes(b"lo".to_vec())),
            ],
        );
        assert!(net.poll_accept().is_none(), "not connected yet");
        clock.advance(100);
        let mut conn = net.poll_accept().expect("arrival due");
        assert!(net.poll_accept().is_none(), "only one client");
        let mut buf = [0u8; 16];
        assert_eq!(conn.poll_read(&mut buf), Io::Data(3));
        assert_eq!(&buf[..3], b"hel");
        assert_eq!(conn.poll_read(&mut buf), Io::WouldBlock, "chunk 2 not due");
        clock.advance(200);
        assert_eq!(conn.poll_read(&mut buf), Io::Data(2));
        assert_eq!(conn.poll_read(&mut buf), Io::WouldBlock, "script drained");
    }

    #[test]
    fn hangup_surfaces_on_read_and_write() {
        let clock = VirtualClock::new();
        let mut net = SimNet::new(&clock);
        let client = net.connect_at(
            0,
            vec![(0, Chunk::Bytes(b"PARTIAL".to_vec())), (50, Chunk::Hangup)],
        );
        let mut conn = net.poll_accept().expect("due");
        let mut buf = [0u8; 16];
        assert_eq!(conn.poll_read(&mut buf), Io::Data(7));
        assert_eq!(conn.poll_read(&mut buf), Io::WouldBlock, "hangup not due");
        clock.advance(50);
        assert_eq!(conn.poll_read(&mut buf), Io::Closed);
        assert_eq!(conn.poll_write(b"x"), Io::Closed);
        conn.close();
        assert_eq!(client.closed_at(), Some(50));
        assert_eq!(client.completion_index(), Some(0));
    }

    #[test]
    fn writes_land_in_the_client_handle() {
        let clock = VirtualClock::new();
        let mut net = SimNet::new(&clock);
        let client = net.connect_throttled(0, vec![], 4);
        let mut conn = net.poll_accept().expect("due");
        assert_eq!(
            conn.poll_write(b"HTTP/1.1 200 OK"),
            Io::Data(4),
            "throttled"
        );
        assert_eq!(conn.poll_write(b"/1.1 200 OK"), Io::Data(4));
        assert_eq!(client.response_text(), "HTTP/1.1");
    }

    #[test]
    fn accepts_follow_schedule_order_not_insertion_order() {
        let clock = VirtualClock::new();
        let mut net = SimNet::new(&clock);
        let _late = net.connect_at(500, vec![(500, Chunk::Bytes(b"B".to_vec()))]);
        let _early = net.connect_at(100, vec![(100, Chunk::Bytes(b"A".to_vec()))]);
        clock.advance(500);
        let mut first = net.poll_accept().expect("two due");
        let mut buf = [0u8; 1];
        assert_eq!(first.poll_read(&mut buf), Io::Data(1));
        assert_eq!(buf[0], b'A', "earlier arrival accepted first");
        let mut second = net.poll_accept().expect("second due");
        assert_eq!(second.poll_read(&mut buf), Io::Data(1));
        assert_eq!(buf[0], b'B');
    }

    #[test]
    fn request_builders_emit_valid_http() {
        let req = String::from_utf8(infer_request(&[0.5, 1.0], Some(800))).unwrap();
        assert!(req.starts_with("POST /infer HTTP/1.1\r\n"));
        let body = req.split("\r\n\r\n").nth(1).unwrap();
        assert_eq!(body, "{\"sample\":[0.5,1.0],\"deadline_us\":800}");
        assert!(req.contains(&format!("Content-Length: {}\r\n", body.len())));
        let get = String::from_utf8(get_request("/healthz")).unwrap();
        assert_eq!(get, "GET /healthz HTTP/1.1\r\nHost: sim\r\n\r\n");
    }
}
