//! A minimal, incremental HTTP/1.1 request parser and response builder —
//! the hand-rolled dialect the `tcl-obs` metrics exporter speaks, extended
//! with POST bodies for inference requests and with **connection reuse**:
//! the parser consumes exactly one request's bytes per [`Parse::Ready`],
//! keeps any pipelined surplus buffered, and re-arms itself for the next
//! request on the same connection. No TLS, no chunked bodies (rejected
//! with a clear 4xx, never silently treated as length 0).
//!
//! The parser is a push-style state machine: the server feeds it whatever
//! bytes arrived this tick and it answers "need more", "here is the
//! request", or "reject with this status". All limits (header size, body
//! size) are enforced *during* accumulation, so a hostile client can never
//! make the server buffer unbounded data, and a truncated body simply
//! parks the parser in `NeedMore` until the slow-loris deadline fires.
//! Head scanning is incremental — each byte is examined O(1) times no
//! matter how finely a slow-loris client drips its request (the
//! [`RequestParser::scan_work`] counter pins this in a regression test).

/// Maximum bytes of request head (request line + headers) accepted.
pub const MAX_HEAD: usize = 4096;

/// A parsed request, ready for dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET` or `POST` (anything else is rejected at parse time).
    pub method: Method,
    /// Request path with any query string stripped.
    pub path: String,
    /// Request body (empty for GET).
    pub body: Vec<u8>,
    /// Whether the client asked to reuse the connection: `Connection:
    /// keep-alive` or the HTTP/1.1 default; `Connection: close` (or an
    /// `HTTP/1.0` request line without `keep-alive`) turns it off.
    pub keep_alive: bool,
}

/// Supported request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read-only endpoints (`/healthz`, `/stats`).
    Get,
    /// Inference submission (`/infer`).
    Post,
}

/// Parser verdict after consuming the bytes seen so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// The request is incomplete; feed more bytes (or time out).
    NeedMore,
    /// A full request was assembled and its bytes consumed; any pipelined
    /// surplus stays buffered for the next [`RequestParser::poll`].
    Ready(Request),
    /// The request is invalid; respond with this status and close.
    Reject {
        /// HTTP status code to answer with.
        status: u16,
        /// Short human-readable reason for the response body.
        reason: &'static str,
    },
}

/// Incremental request parser: call [`RequestParser::feed`] with each
/// arriving chunk, and [`RequestParser::poll`] (no new bytes) to pull the
/// next pipelined request after finishing a response.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Parsed head, once the blank line has been seen:
    /// (method, path, content-length, body start offset in `buf`,
    /// keep-alive).
    head: Option<(Method, String, usize, usize, bool)>,
    max_body: usize,
    /// Blank-line scan resumes here — never re-examines settled bytes.
    scan_from: usize,
    /// Total head bytes examined by the blank-line scan (regression
    /// metric: must stay linear in the head size under drip-feeding).
    scanned: u64,
}

impl RequestParser {
    /// A parser accepting at most `max_body` body bytes.
    pub fn new(max_body: usize) -> Self {
        RequestParser {
            buf: Vec::new(),
            head: None,
            max_body,
            scan_from: 0,
            scanned: 0,
        }
    }

    /// Total bytes buffered so far (diagnostics; includes any pipelined
    /// surplus belonging to the next request).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Cumulative bytes the head scanner has examined (see module docs).
    pub fn scan_work(&self) -> u64 {
        self.scanned
    }

    /// Consumes one chunk of bytes and returns the current verdict.
    pub fn feed(&mut self, chunk: &[u8]) -> Parse {
        self.buf.extend_from_slice(chunk);
        self.poll()
    }

    /// Re-evaluates the buffered bytes without feeding new ones — the
    /// keep-alive re-arm: after a response is written, `poll` yields the
    /// next pipelined request if it is already fully buffered.
    pub fn poll(&mut self) -> Parse {
        if self.head.is_none() {
            let Some(head_end) = self.scan_blank_line() else {
                return if self.buf.len() > MAX_HEAD {
                    Parse::Reject {
                        status: 431,
                        reason: "request head too large",
                    }
                } else {
                    Parse::NeedMore
                };
            };
            if head_end > MAX_HEAD {
                return Parse::Reject {
                    status: 431,
                    reason: "request head too large",
                };
            }
            match parse_head(&self.buf[..head_end]) {
                Ok((method, path, content_length, keep_alive)) => {
                    if content_length > self.max_body {
                        return Parse::Reject {
                            status: 413,
                            reason: "request body too large",
                        };
                    }
                    self.head = Some((method, path, content_length, head_end, keep_alive));
                }
                Err((status, reason)) => return Parse::Reject { status, reason },
            }
        }
        let Some((method, path, content_length, body_start, keep_alive)) = self.head.as_ref()
        else {
            // Unreachable: the head is assigned directly above on the only
            // path that reaches here.
            return Parse::NeedMore;
        };
        let have = self.buf.len() - body_start;
        if have < *content_length {
            return Parse::NeedMore;
        }
        let request = Request {
            method: *method,
            path: path.clone(),
            body: self.buf[*body_start..*body_start + *content_length].to_vec(),
            keep_alive: *keep_alive,
        };
        // Consume exactly this request's bytes and re-arm: pipelined
        // surplus shifts down and the next poll() parses it from scratch.
        let consumed = *body_start + *content_length;
        self.buf.drain(..consumed);
        self.head = None;
        self.scan_from = 0;
        Parse::Ready(request)
    }

    /// Incremental blank-line scan: examines only bytes at or after
    /// `scan_from`, then parks the cursor three bytes before the end so a
    /// terminator split across chunks is still found. Returns the offset
    /// just past the `\r\n\r\n` (or `\n\n`) terminating the head.
    fn scan_blank_line(&mut self) -> Option<usize> {
        let buf = &self.buf;
        for i in self.scan_from..buf.len() {
            self.scanned += 1;
            if buf[i..].starts_with(b"\r\n\r\n") {
                return Some(i + 4);
            }
            if buf[i..].starts_with(b"\n\n") {
                return Some(i + 2);
            }
        }
        // A terminator may straddle the chunk boundary: resume early
        // enough to re-see up to 3 trailing bytes of a split `\r\n\r\n`.
        self.scan_from = buf.len().saturating_sub(3);
        None
    }
}

type HeadFields = (Method, String, usize, bool);

fn parse_head(head: &[u8]) -> Result<HeadFields, (u16, &'static str)> {
    let text = std::str::from_utf8(head).map_err(|_| (400u16, "non-UTF-8 request head"))?;
    let mut lines = text.lines();
    let request_line = lines.next().ok_or((400, "empty request"))?;
    if request_line.trim().is_empty() {
        return Err((400, "empty request"));
    }
    let mut parts = request_line.split_whitespace();
    let method = match parts.next() {
        Some("GET") => Method::Get,
        Some("POST") => Method::Post,
        _ => return Err((405, "method not allowed")),
    };
    let raw_path = parts.next().ok_or((400, "missing request path"))?;
    let path = raw_path.split('?').next().unwrap_or(raw_path).to_string();
    // HTTP/1.1 defaults to keep-alive; a 1.0 request line must opt in.
    let http10 = parts.next() == Some("HTTP/1.0");
    let mut content_length: Option<usize> = None;
    let mut connection: Option<bool> = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        let name = name.trim();
        let value = value.trim();
        if name.eq_ignore_ascii_case("content-length") {
            let parsed: usize = value.parse().map_err(|_| (400, "bad Content-Length"))?;
            if content_length.is_some_and(|prev| prev != parsed) {
                return Err((400, "conflicting Content-Length"));
            }
            if content_length.is_some() {
                // Even an agreeing duplicate is the request-smuggling
                // shape — reject rather than guess which one a proxy saw.
                return Err((400, "duplicate Content-Length"));
            }
            content_length = Some(parsed);
        } else if name.eq_ignore_ascii_case("transfer-encoding") {
            return Err((400, "Transfer-Encoding not supported"));
        } else if name.eq_ignore_ascii_case("connection") {
            connection = Some(value.eq_ignore_ascii_case("keep-alive"));
        }
    }
    let keep_alive = connection.unwrap_or(!http10);
    let content_length = match (method, content_length) {
        (Method::Get, Some(n)) if n > 0 => {
            // A GET body would sit in the buffer and be misparsed as the
            // next request's head once the connection is reused.
            return Err((400, "GET request must not carry a body"));
        }
        (Method::Get, _) => 0,
        (Method::Post, Some(n)) => n,
        (Method::Post, None) => return Err((411, "Content-Length required")),
    };
    Ok((method, path, content_length, keep_alive))
}

/// Builds a complete HTTP response (status line, headers, body) with
/// `Connection: close`. `retry_after_s` adds a `Retry-After` header
/// (load-shed responses).
pub fn response(status: u16, body: &str, retry_after_s: Option<u64>) -> Vec<u8> {
    response_with(status, body, retry_after_s, false)
}

/// Like [`response`], with an explicit connection disposition: the header
/// advertises `keep-alive` when the server will keep the connection open.
pub fn response_with(
    status: u16,
    body: &str,
    retry_after_s: Option<u64>,
    keep_alive: bool,
) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let content_type = if body.trim_start().starts_with('{') {
        "application/json; charset=utf-8"
    } else {
        "text/plain; charset=utf-8"
    };
    let connection = if keep_alive { "keep-alive" } else { "close" };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: {connection}\r\n",
        body.len(),
    );
    if let Some(s) = retry_after_s {
        head.push_str(&format!("Retry-After: {s}\r\n"));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_all(parser: &mut RequestParser, bytes: &[u8]) -> Parse {
        parser.feed(bytes)
    }

    #[test]
    fn parses_a_post_fed_byte_by_byte() {
        let raw = b"POST /infer HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let mut parser = RequestParser::new(64);
        let mut verdict = Parse::NeedMore;
        for &b in raw.iter() {
            verdict = parser.feed(&[b]);
            if !matches!(verdict, Parse::NeedMore) && b != *raw.last().unwrap() {
                // Only the final byte may complete the request.
                assert_eq!(verdict, Parse::NeedMore);
            }
        }
        match verdict {
            Parse::Ready(req) => {
                assert_eq!(req.method, Method::Post);
                assert_eq!(req.path, "/infer");
                assert_eq!(req.body, b"abcd");
                assert!(req.keep_alive, "HTTP/1.1 defaults to keep-alive");
            }
            other => panic!("expected Ready, got {other:?}"),
        }
        assert_eq!(parser.buffered(), 0, "request bytes fully consumed");
    }

    #[test]
    fn get_strips_query_and_connection_header_is_honored() {
        let mut parser = RequestParser::new(0);
        match feed_all(
            &mut parser,
            b"GET /stats?verbose=1 HTTP/1.1\r\nConnection: close\r\n\r\n",
        ) {
            Parse::Ready(req) => {
                assert_eq!(req.method, Method::Get);
                assert_eq!(req.path, "/stats");
                assert!(req.body.is_empty());
                assert!(!req.keep_alive, "Connection: close honored");
            }
            other => panic!("expected Ready, got {other:?}"),
        }
        let mut parser = RequestParser::new(0);
        match feed_all(
            &mut parser,
            b"GET /healthz HTTP/1.0\r\nConnection: keep-alive\r\n\r\n",
        ) {
            Parse::Ready(req) => assert!(req.keep_alive, "1.0 opts in explicitly"),
            other => panic!("expected Ready, got {other:?}"),
        }
        let mut parser = RequestParser::new(0);
        match feed_all(&mut parser, b"GET /healthz HTTP/1.0\r\n\r\n") {
            Parse::Ready(req) => assert!(!req.keep_alive, "HTTP/1.0 defaults to close"),
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn duplicate_and_conflicting_content_length_are_rejected() {
        // Conflicting values: the classic smuggling vector.
        let mut parser = RequestParser::new(64);
        let verdict = feed_all(
            &mut parser,
            b"POST /infer HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 6\r\n\r\nabcdef",
        );
        assert_eq!(
            verdict,
            Parse::Reject {
                status: 400,
                reason: "conflicting Content-Length"
            }
        );
        // Agreeing duplicates are rejected too — never guess which copy an
        // intermediary honored.
        let mut parser = RequestParser::new(64);
        let verdict = feed_all(
            &mut parser,
            b"POST /infer HTTP/1.1\r\nContent-Length: 4\r\nContent-Length: 4\r\n\r\nabcd",
        );
        assert_eq!(
            verdict,
            Parse::Reject {
                status: 400,
                reason: "duplicate Content-Length"
            }
        );
    }

    #[test]
    fn get_with_a_body_is_rejected_not_buffered() {
        let mut parser = RequestParser::new(64);
        let verdict = feed_all(
            &mut parser,
            b"GET /stats HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello",
        );
        assert_eq!(
            verdict,
            Parse::Reject {
                status: 400,
                reason: "GET request must not carry a body"
            }
        );
        // A zero-length Content-Length on GET stays harmless.
        let mut parser = RequestParser::new(64);
        assert!(matches!(
            feed_all(
                &mut parser,
                b"GET /stats HTTP/1.1\r\nContent-Length: 0\r\n\r\n"
            ),
            Parse::Ready(_)
        ));
    }

    #[test]
    fn transfer_encoding_is_rejected_with_400() {
        let mut parser = RequestParser::new(64);
        let verdict = feed_all(
            &mut parser,
            b"POST /infer HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n0\r\n\r\n",
        );
        assert_eq!(
            verdict,
            Parse::Reject {
                status: 400,
                reason: "Transfer-Encoding not supported"
            }
        );
    }

    #[test]
    fn content_length_tolerates_padding_and_rejects_overflow() {
        // Whitespace-padded value parses.
        let mut parser = RequestParser::new(64);
        match feed_all(
            &mut parser,
            b"POST /infer HTTP/1.1\r\nContent-Length:    4   \r\n\r\nabcd",
        ) {
            Parse::Ready(req) => assert_eq!(req.body, b"abcd"),
            other => panic!("expected Ready, got {other:?}"),
        }
        // A 10+-digit length within usize range is an oversize, not a hang.
        let mut parser = RequestParser::new(64);
        assert_eq!(
            feed_all(
                &mut parser,
                b"POST /infer HTTP/1.1\r\nContent-Length: 4294967296\r\n\r\n",
            ),
            Parse::Reject {
                status: 413,
                reason: "request body too large"
            }
        );
        // A length that overflows the integer type is malformed, not huge.
        let mut parser = RequestParser::new(64);
        assert_eq!(
            feed_all(
                &mut parser,
                b"POST /infer HTTP/1.1\r\nContent-Length: 99999999999999999999999\r\n\r\n",
            ),
            Parse::Reject {
                status: 400,
                reason: "bad Content-Length"
            }
        );
    }

    #[test]
    fn bare_lf_head_terminator_is_accepted() {
        let mut parser = RequestParser::new(64);
        match feed_all(&mut parser, b"GET /healthz HTTP/1.1\nHost: x\n\n") {
            Parse::Ready(req) => assert_eq!(req.path, "/healthz"),
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn pipelined_requests_consume_exactly_and_rearm() {
        let mut parser = RequestParser::new(64);
        // Two requests arriving in a single chunk: the first is returned,
        // the second stays buffered and comes out of the next poll().
        let chunk =
            b"POST /infer HTTP/1.1\r\nContent-Length: 3\r\n\r\nabcGET /stats HTTP/1.1\r\n\r\n";
        match parser.feed(chunk) {
            Parse::Ready(req) => {
                assert_eq!(req.method, Method::Post);
                assert_eq!(req.body, b"abc");
            }
            other => panic!("expected first Ready, got {other:?}"),
        }
        assert!(parser.buffered() > 0, "second request still buffered");
        match parser.poll() {
            Parse::Ready(req) => {
                assert_eq!(req.method, Method::Get);
                assert_eq!(req.path, "/stats");
            }
            other => panic!("expected second Ready, got {other:?}"),
        }
        assert_eq!(parser.buffered(), 0);
        assert_eq!(parser.poll(), Parse::NeedMore, "parser re-armed and idle");
    }

    #[test]
    fn head_scan_is_linear_under_drip_feeding() {
        // A near-MAX_HEAD request dripped one byte at a time: the scan
        // counter must stay linear (each byte examined O(1) times), where
        // the old rescan-from-zero behavior cost ~n²/2 examinations.
        let mut head = b"GET /stats HTTP/1.1\r\nX-Pad: ".to_vec();
        head.extend(std::iter::repeat_n(b'a', 2_000));
        head.extend_from_slice(b"\r\n\r\n");
        let n = head.len() as u64;
        let mut parser = RequestParser::new(64);
        let mut verdict = Parse::NeedMore;
        for &b in &head {
            verdict = parser.feed(&[b]);
        }
        assert!(matches!(verdict, Parse::Ready(_)));
        assert!(
            parser.scan_work() <= 4 * n,
            "scan examined {} bytes for a {n}-byte head (quadratic rescan?)",
            parser.scan_work()
        );
    }

    #[test]
    fn oversized_bodies_and_heads_are_rejected() {
        let mut parser = RequestParser::new(8);
        let verdict = feed_all(
            &mut parser,
            b"POST /infer HTTP/1.1\r\nContent-Length: 9\r\n\r\n",
        );
        assert_eq!(
            verdict,
            Parse::Reject {
                status: 413,
                reason: "request body too large"
            }
        );
        let mut parser = RequestParser::new(8);
        let huge = vec![b'a'; MAX_HEAD + 1];
        assert!(matches!(
            feed_all(&mut parser, &huge),
            Parse::Reject { status: 431, .. }
        ));
    }

    #[test]
    fn bad_requests_get_specific_statuses() {
        let cases: &[(&[u8], u16)] = &[
            (b"PUT /infer HTTP/1.1\r\n\r\n", 405),
            (b"POST /infer HTTP/1.1\r\n\r\n", 411),
            (b"POST /infer HTTP/1.1\r\nContent-Length: x\r\n\r\n", 400),
            (b"\r\n\r\n", 400),
        ];
        for (raw, status) in cases {
            let mut parser = RequestParser::new(64);
            match feed_all(&mut parser, raw) {
                Parse::Reject { status: s, .. } => assert_eq!(s, *status, "{raw:?}"),
                other => panic!("{raw:?}: expected Reject({status}), got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_body_stays_incomplete() {
        let mut parser = RequestParser::new(64);
        let verdict = feed_all(
            &mut parser,
            b"POST /infer HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
        );
        assert_eq!(verdict, Parse::NeedMore);
    }

    #[test]
    fn responses_carry_status_length_and_retry_after() {
        let shed = String::from_utf8(response(429, "{\"error\":\"shed\"}", Some(2))).unwrap();
        assert!(shed.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(shed.contains("Retry-After: 2\r\n"));
        assert!(shed.contains("Content-Length: 16\r\n"));
        assert!(shed.contains("application/json"));
        assert!(shed.contains("Connection: close\r\n"));
        assert!(shed.ends_with("{\"error\":\"shed\"}"));
        let ok = String::from_utf8(response_with(200, "ok\n", None, true)).unwrap();
        assert!(ok.contains("text/plain"));
        assert!(ok.contains("Connection: keep-alive\r\n"));
        assert!(!ok.contains("Retry-After"));
    }
}
