//! A minimal, incremental HTTP/1.0-style request parser and response
//! builder — the same hand-rolled dialect as the `tcl-obs` metrics
//! exporter (one request per connection, `Connection: close`, no TLS, no
//! keep-alive, no chunked bodies), extended with POST bodies for inference
//! requests.
//!
//! The parser is a push-style state machine: the server feeds it whatever
//! bytes arrived this tick and it answers "need more", "here is the
//! request", or "reject with this status". All limits (header size, body
//! size) are enforced *during* accumulation, so a hostile client can never
//! make the server buffer unbounded data, and a truncated body simply
//! parks the parser in `NeedMore` until the slow-loris deadline fires.

/// Maximum bytes of request head (request line + headers) accepted.
pub const MAX_HEAD: usize = 4096;

/// A parsed request, ready for dispatch.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Request {
    /// `GET` or `POST` (anything else is rejected at parse time).
    pub method: Method,
    /// Request path with any query string stripped.
    pub path: String,
    /// Request body (empty for GET).
    pub body: Vec<u8>,
}

/// Supported request methods.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Method {
    /// Read-only endpoints (`/healthz`, `/stats`).
    Get,
    /// Inference submission (`/infer`).
    Post,
}

/// Parser verdict after consuming the bytes seen so far.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum Parse {
    /// The request is incomplete; feed more bytes (or time out).
    NeedMore,
    /// A full request was assembled.
    Ready(Request),
    /// The request is invalid; respond with this status and close.
    Reject {
        /// HTTP status code to answer with.
        status: u16,
        /// Short human-readable reason for the response body.
        reason: &'static str,
    },
}

/// Incremental request parser: call [`RequestParser::feed`] with each chunk.
#[derive(Debug, Default)]
pub struct RequestParser {
    buf: Vec<u8>,
    /// Parsed head, once the blank line has been seen:
    /// (method, path, content-length, body start offset in `buf`).
    head: Option<(Method, String, usize, usize)>,
    max_body: usize,
}

impl RequestParser {
    /// A parser accepting at most `max_body` body bytes.
    pub fn new(max_body: usize) -> Self {
        RequestParser {
            buf: Vec::new(),
            head: None,
            max_body,
        }
    }

    /// Total bytes buffered so far (diagnostics).
    pub fn buffered(&self) -> usize {
        self.buf.len()
    }

    /// Consumes one chunk of bytes and returns the current verdict.
    pub fn feed(&mut self, chunk: &[u8]) -> Parse {
        self.buf.extend_from_slice(chunk);
        if self.head.is_none() {
            let Some(head_end) = find_blank_line(&self.buf) else {
                return if self.buf.len() > MAX_HEAD {
                    Parse::Reject {
                        status: 431,
                        reason: "request head too large",
                    }
                } else {
                    Parse::NeedMore
                };
            };
            if head_end > MAX_HEAD {
                return Parse::Reject {
                    status: 431,
                    reason: "request head too large",
                };
            }
            match parse_head(&self.buf[..head_end]) {
                Ok((method, path, content_length)) => {
                    if content_length > self.max_body {
                        return Parse::Reject {
                            status: 413,
                            reason: "request body too large",
                        };
                    }
                    self.head = Some((method, path, content_length, head_end));
                }
                Err((status, reason)) => return Parse::Reject { status, reason },
            }
        }
        let Some((method, path, content_length, body_start)) = self.head.as_ref() else {
            // Unreachable: the head is assigned directly above on the only
            // path that reaches here.
            return Parse::NeedMore;
        };
        let have = self.buf.len() - body_start;
        if have < *content_length {
            return Parse::NeedMore;
        }
        let body = self.buf[*body_start..*body_start + *content_length].to_vec();
        Parse::Ready(Request {
            method: *method,
            path: path.clone(),
            body,
        })
    }
}

/// Byte offset just past the `\r\n\r\n` (or `\n\n`) terminating the head.
fn find_blank_line(buf: &[u8]) -> Option<usize> {
    buf.windows(4)
        .position(|w| w == b"\r\n\r\n")
        .map(|p| p + 4)
        .or_else(|| buf.windows(2).position(|w| w == b"\n\n").map(|p| p + 2))
}

type HeadFields = (Method, String, usize);

fn parse_head(head: &[u8]) -> Result<HeadFields, (u16, &'static str)> {
    let text = std::str::from_utf8(head).map_err(|_| (400u16, "non-UTF-8 request head"))?;
    let mut lines = text.lines();
    let request_line = lines.next().ok_or((400, "empty request"))?;
    if request_line.trim().is_empty() {
        return Err((400, "empty request"));
    }
    let mut parts = request_line.split_whitespace();
    let method = match parts.next() {
        Some("GET") => Method::Get,
        Some("POST") => Method::Post,
        _ => return Err((405, "method not allowed")),
    };
    let raw_path = parts.next().ok_or((400, "missing request path"))?;
    let path = raw_path.split('?').next().unwrap_or(raw_path).to_string();
    let mut content_length = None;
    for line in lines {
        let Some((name, value)) = line.split_once(':') else {
            continue;
        };
        if name.trim().eq_ignore_ascii_case("content-length") {
            let parsed: usize = value
                .trim()
                .parse()
                .map_err(|_| (400, "bad Content-Length"))?;
            content_length = Some(parsed);
        }
    }
    let content_length = match (method, content_length) {
        (Method::Get, _) => 0,
        (Method::Post, Some(n)) => n,
        (Method::Post, None) => return Err((411, "Content-Length required")),
    };
    Ok((method, path, content_length))
}

/// Builds a complete HTTP response (status line, headers, body).
/// `retry_after_s` adds a `Retry-After` header (load-shed responses).
pub fn response(status: u16, body: &str, retry_after_s: Option<u64>) -> Vec<u8> {
    let reason = match status {
        200 => "OK",
        400 => "Bad Request",
        404 => "Not Found",
        405 => "Method Not Allowed",
        408 => "Request Timeout",
        411 => "Length Required",
        413 => "Payload Too Large",
        422 => "Unprocessable Entity",
        429 => "Too Many Requests",
        431 => "Request Header Fields Too Large",
        500 => "Internal Server Error",
        503 => "Service Unavailable",
        _ => "Error",
    };
    let content_type = if body.trim_start().starts_with('{') {
        "application/json; charset=utf-8"
    } else {
        "text/plain; charset=utf-8"
    };
    let mut head = format!(
        "HTTP/1.1 {status} {reason}\r\nContent-Type: {content_type}\r\nContent-Length: {}\r\nConnection: close\r\n",
        body.len(),
    );
    if let Some(s) = retry_after_s {
        head.push_str(&format!("Retry-After: {s}\r\n"));
    }
    head.push_str("\r\n");
    let mut out = head.into_bytes();
    out.extend_from_slice(body.as_bytes());
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn feed_all(parser: &mut RequestParser, bytes: &[u8]) -> Parse {
        parser.feed(bytes)
    }

    #[test]
    fn parses_a_post_fed_byte_by_byte() {
        let raw = b"POST /infer HTTP/1.1\r\nHost: x\r\nContent-Length: 4\r\n\r\nabcd";
        let mut parser = RequestParser::new(64);
        let mut verdict = Parse::NeedMore;
        for &b in raw.iter() {
            verdict = parser.feed(&[b]);
            if !matches!(verdict, Parse::NeedMore) && b != *raw.last().unwrap() {
                // Only the final byte may complete the request.
                assert_eq!(verdict, Parse::NeedMore);
            }
        }
        match verdict {
            Parse::Ready(req) => {
                assert_eq!(req.method, Method::Post);
                assert_eq!(req.path, "/infer");
                assert_eq!(req.body, b"abcd");
            }
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn get_ignores_content_and_strips_query() {
        let mut parser = RequestParser::new(0);
        match feed_all(&mut parser, b"GET /stats?verbose=1 HTTP/1.1\r\n\r\n") {
            Parse::Ready(req) => {
                assert_eq!(req.method, Method::Get);
                assert_eq!(req.path, "/stats");
                assert!(req.body.is_empty());
            }
            other => panic!("expected Ready, got {other:?}"),
        }
    }

    #[test]
    fn oversized_bodies_and_heads_are_rejected() {
        let mut parser = RequestParser::new(8);
        let verdict = feed_all(
            &mut parser,
            b"POST /infer HTTP/1.1\r\nContent-Length: 9\r\n\r\n",
        );
        assert_eq!(
            verdict,
            Parse::Reject {
                status: 413,
                reason: "request body too large"
            }
        );
        let mut parser = RequestParser::new(8);
        let huge = vec![b'a'; MAX_HEAD + 1];
        assert!(matches!(
            feed_all(&mut parser, &huge),
            Parse::Reject { status: 431, .. }
        ));
    }

    #[test]
    fn bad_requests_get_specific_statuses() {
        let cases: &[(&[u8], u16)] = &[
            (b"PUT /infer HTTP/1.1\r\n\r\n", 405),
            (b"POST /infer HTTP/1.1\r\n\r\n", 411),
            (b"POST /infer HTTP/1.1\r\nContent-Length: x\r\n\r\n", 400),
            (b"\r\n\r\n", 400),
        ];
        for (raw, status) in cases {
            let mut parser = RequestParser::new(64);
            match feed_all(&mut parser, raw) {
                Parse::Reject { status: s, .. } => assert_eq!(s, *status, "{raw:?}"),
                other => panic!("{raw:?}: expected Reject({status}), got {other:?}"),
            }
        }
    }

    #[test]
    fn truncated_body_stays_incomplete() {
        let mut parser = RequestParser::new(64);
        let verdict = feed_all(
            &mut parser,
            b"POST /infer HTTP/1.1\r\nContent-Length: 10\r\n\r\nabc",
        );
        assert_eq!(verdict, Parse::NeedMore);
    }

    #[test]
    fn responses_carry_status_length_and_retry_after() {
        let shed = String::from_utf8(response(429, "{\"error\":\"shed\"}", Some(2))).unwrap();
        assert!(shed.starts_with("HTTP/1.1 429 Too Many Requests\r\n"));
        assert!(shed.contains("Retry-After: 2\r\n"));
        assert!(shed.contains("Content-Length: 16\r\n"));
        assert!(shed.contains("application/json"));
        assert!(shed.ends_with("{\"error\":\"shed\"}"));
        let ok = String::from_utf8(response(200, "ok\n", None)).unwrap();
        assert!(ok.contains("text/plain"));
        assert!(!ok.contains("Retry-After"));
    }
}
