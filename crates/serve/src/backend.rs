//! The inference backend behind the server: a thin trait over
//! [`tcl_snn::LaneEngine`].
//!
//! The server talks to a [`Backend`] rather than the lane engine directly
//! for one reason: crash containment. A backend step can fail (a poisoned
//! network, a killed engine worker, a shape bug), and the serving loop must
//! treat that as a *lane-engine restart*, not a process death — it rebuilds
//! the backend from its factory and re-submits every in-flight request from
//! step zero. The trait boundary is also where the fault-injection suite
//! plugs in a backend that dies on command.

use tcl_snn::{ExitPolicy, LaneEngine, Readout, SpikingNetwork};
use tcl_tensor::{Result, Shape, Tensor};

/// One finished inference: the lane engine's answer for a request.
#[derive(Debug, Clone)]
pub struct Completion {
    /// Backend-assigned lane id (matches the id returned by
    /// [`Backend::submit`]).
    pub lane: u64,
    /// Predicted class.
    pub pred: usize,
    /// Timesteps simulated.
    pub steps: usize,
    /// Whether the lane retired early on margin stability.
    pub early: bool,
    /// Top-1 minus top-2 readout margin at retirement.
    pub margin: f32,
    /// Per-class readout scores at retirement — exposed so equivalence
    /// suites can pin serving results bitwise against batch evaluation.
    pub scores: Vec<f32>,
}

/// A continuous-batching inference backend (see module docs).
pub trait Backend {
    /// Maximum concurrent lanes.
    fn capacity(&self) -> usize;

    /// Currently occupied lanes.
    fn active(&self) -> usize;

    /// Admits one flattened sample with a per-request step budget,
    /// returning its lane id.
    ///
    /// # Errors
    ///
    /// Fails when full or on a shape mismatch.
    fn submit(&mut self, sample: &[f32], budget: usize) -> Result<u64>;

    /// Advances every active lane one timestep.
    ///
    /// # Errors
    ///
    /// A failing step poisons the backend; the server rebuilds it.
    fn step(&mut self) -> Result<Vec<Completion>>;

    /// Shared timestep-loop iterations so far.
    fn engine_steps(&self) -> u64;

    /// Total lane-timesteps simulated (`Σ active lanes` over steps).
    fn lane_steps(&self) -> u64;
}

/// The production backend: a [`LaneEngine`] over a spiking network.
#[derive(Debug)]
pub struct LaneBackend {
    engine: LaneEngine,
    feat_dims: Vec<usize>,
}

impl LaneBackend {
    /// Builds a backend with `capacity` lanes over a clone of `net`.
    ///
    /// # Errors
    ///
    /// Propagates lane-engine construction errors (zero capacity, invalid
    /// policy).
    pub fn new(
        net: &SpikingNetwork,
        capacity: usize,
        feat_dims: &[usize],
        readout: Readout,
        policy: ExitPolicy,
    ) -> Result<Self> {
        Ok(LaneBackend {
            engine: LaneEngine::new(net, capacity, readout, policy)?,
            feat_dims: feat_dims.to_vec(),
        })
    }
}

impl Backend for LaneBackend {
    fn capacity(&self) -> usize {
        self.engine.capacity()
    }

    fn active(&self) -> usize {
        self.engine.active()
    }

    fn submit(&mut self, sample: &[f32], budget: usize) -> Result<u64> {
        let tensor = Tensor::from_vec(Shape::new(self.feat_dims.clone()), sample.to_vec())?;
        Ok(self.engine.submit(&tensor, budget)?.0)
    }

    fn step(&mut self) -> Result<Vec<Completion>> {
        Ok(self
            .engine
            .step()?
            .into_iter()
            .map(|o| Completion {
                lane: o.id.0,
                pred: o.pred,
                steps: o.steps,
                early: o.early,
                margin: o.margin,
                scores: o.scores,
            })
            .collect())
    }

    fn engine_steps(&self) -> u64 {
        self.engine.engine_steps()
    }

    fn lane_steps(&self) -> u64 {
        self.engine.lane_steps()
    }
}
