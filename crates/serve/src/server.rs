//! The serving state machine: request admission, continuous batching,
//! deadlines, load shedding, connection reuse, and drain.
//!
//! One [`Server`] owns a [`Transport`] (where requests come from), a
//! [`Backend`] (the lane engine doing inference), and a [`Clock`] (what
//! time it is). Everything happens inside [`Server::tick`], one scheduling
//! quantum: accept new connections, pump request bytes, admit parsed
//! requests into free lanes (or the bounded queue, or shed them), advance
//! the engine up to `steps_per_tick` timesteps, turn retired lanes into
//! responses, and flush writes. There are no threads and no blocking calls
//! in this file — the driver (the `tcl_serve` binary's socket loop, or a
//! test harness on a [`VirtualClock`](crate::VirtualClock)) decides how
//! often ticks happen and how time advances, which is what makes the whole
//! machine deterministic under simulation.
//!
//! ## Connection reuse
//!
//! The server speaks HTTP/1.1 keep-alive: after a `200` response it
//! consumes exactly the parsed request's bytes, re-arms the incremental
//! parser on the same connection, and parses the next request from any
//! pipelined surplus already buffered. Requests on one connection are
//! processed strictly in arrival order, one in flight at a time — a
//! pipelined request is not even parsed until the previous response has
//! been fully written, so responses can never interleave or reorder (and a
//! pipelined request cannot EDF-jump its own predecessor). Reuse is
//! bounded two ways: `max_requests_per_conn` caps requests per connection
//! (the final response advertises `Connection: close`), and
//! `idle_timeout_us` reaps kept-alive connections with no request bytes.
//! Error responses (any non-200) always close — the parser may be
//! unsynchronized with the client after a malformed request, and guessing
//! is how request smuggling starts.
//!
//! ## Admission and deadlines
//!
//! A request's `deadline_us` is mapped onto the exit policy's currency —
//! timesteps — via `us_per_step`: the lane gets a step budget of
//! `min(deadline_us / us_per_step, max_steps)` and retires unconditionally
//! when the budget is spent, so a deadline bounds simulation work *before*
//! the work starts rather than cancelling it midway. A free lane admits
//! immediately (joining the running timestep loop — continuous batching);
//! otherwise the request waits in a bounded queue ordered
//! **deadline-earliest-first**: the queued request whose absolute deadline
//! expires soonest is admitted first, deadline-less requests rank last,
//! and ties (including all the deadline-less requests among themselves)
//! break FIFO by arrival. A full queue sheds with `429` + `Retry-After`.
//! Queued requests that can no longer finish by their deadline are shed
//! *early*, so every shed answer still arrives before the deadline it
//! failed to meet.
//!
//! ## Faults
//!
//! Client misbehavior (mid-request disconnects, slow-loris dribble,
//! oversized bodies) affects only the offending connection and increments
//! a `serve.faults.*` counter. A keep-alive client that closes between
//! requests is a clean close, not a fault. A failing backend step is
//! survived too: the server rebuilds the backend from its factory and
//! re-submits every in-flight request from step zero.

use std::collections::BTreeMap;

use crate::backend::{Backend, Completion};
use crate::clock::Clock;
use crate::http::{self, Method, Parse, RequestParser};
use crate::transport::{Connection, Io, Transport};
use tcl_snn::ExitPolicy;
use tcl_telemetry::json;
use tcl_tensor::{Result, TensorError};

/// Factory rebuilding the backend after a fatal engine fault.
pub type BackendFactory = Box<dyn FnMut() -> Box<dyn Backend>>;

/// Static configuration of a [`Server`].
#[derive(Debug, Clone)]
pub struct ServeConfig {
    /// Concurrent inference lanes (the backend's batch capacity).
    pub capacity: usize,
    /// Bounded admission queue depth; beyond it requests are shed.
    pub queue_depth: usize,
    /// Per-sample feature dims (without the batch dim); request samples
    /// must flatten to this product.
    pub feat_dims: Vec<usize>,
    /// Exit policy driving per-lane early exit (the same policy
    /// [`tcl_snn::Engine`] uses for batch evaluation).
    pub policy: ExitPolicy,
    /// Step budget cap, and the default budget for deadline-less requests.
    pub max_steps: usize,
    /// Deadline currency conversion: one timestep costs this many
    /// microseconds of budget when mapping `deadline_us` to steps.
    pub us_per_step: u64,
    /// Engine timesteps one tick may run (the scheduling quantum).
    pub steps_per_tick: usize,
    /// Maximum request body bytes.
    pub max_body: usize,
    /// A connection still mid-request after this long is timed out
    /// (slow-loris guard; measured from the current request's first byte,
    /// or from accept for a connection that never sent one).
    pub head_timeout_us: u64,
    /// Maximum simultaneously open connections; beyond it new connections
    /// are answered `503` immediately.
    pub max_conns: usize,
    /// Requests served per connection before the server closes it (the
    /// keep-alive cap; `1` reproduces the close-per-request dialect).
    pub max_requests_per_conn: usize,
    /// A kept-alive connection with no request bytes for this long is
    /// closed silently (idle keep-alive reaping).
    pub idle_timeout_us: u64,
}

impl ServeConfig {
    /// Validates the configuration.
    ///
    /// # Errors
    ///
    /// Returns an error for zero sizes/rates or an invalid exit policy.
    pub fn validate(&self) -> Result<()> {
        self.policy.validate()?;
        let checks: [(&str, bool); 9] = [
            ("capacity", self.capacity >= 1),
            (
                "feat_dims product",
                self.feat_dims.iter().product::<usize>() >= 1,
            ),
            ("max_steps", self.max_steps >= 1),
            ("us_per_step", self.us_per_step >= 1),
            ("steps_per_tick", self.steps_per_tick >= 1),
            ("head_timeout_us", self.head_timeout_us >= 1),
            ("max_conns", self.max_conns >= 1),
            ("max_requests_per_conn", self.max_requests_per_conn >= 1),
            ("idle_timeout_us", self.idle_timeout_us >= 1),
        ];
        for (name, ok) in checks {
            if !ok {
                return Err(TensorError::InvalidArgument {
                    detail: format!("serve config: {name} must be at least 1"),
                });
            }
        }
        Ok(())
    }

    /// Flattened sample length a request must carry.
    pub fn feat_len(&self) -> usize {
        self.feat_dims.iter().product()
    }

    /// Maps a relative deadline to a lane step budget (capped at
    /// `max_steps`; 0 means the deadline is infeasible).
    pub fn budget_for(&self, deadline_us: Option<u64>) -> usize {
        match deadline_us {
            None => self.max_steps,
            Some(d) => usize::try_from(d / self.us_per_step)
                .unwrap_or(self.max_steps)
                .min(self.max_steps),
        }
    }

    /// The fewest timesteps a lane with `budget` can possibly run before
    /// producing an answer (used to shed queued requests that can no
    /// longer meet their deadline).
    fn min_possible_steps(&self, budget: usize) -> usize {
        match self.policy {
            ExitPolicy::Off => budget,
            ExitPolicy::Adaptive {
                patience,
                min_steps,
                ..
            } => patience.max(min_steps).max(1).min(budget),
        }
    }

    /// Advisory `Retry-After` seconds for shed responses.
    fn retry_after_s(&self) -> u64 {
        ((self.max_steps as u64).saturating_mul(self.us_per_step) / 1_000_000).max(1)
    }
}

/// Counters the server maintains regardless of telemetry gating (the
/// `serve.*` telemetry counters mirror these when metrics are enabled).
#[derive(Debug, Default, Clone, PartialEq, Eq)]
pub struct ServeStats {
    /// Well-formed inference requests received.
    pub requests: u64,
    /// Responses fully written (any status).
    pub responses: u64,
    /// Inference answers served (status 200).
    pub completed: u64,
    /// Completions that retired early on margin stability.
    pub early_exits: u64,
    /// Requests shed for load (429/503 answers).
    pub shed: u64,
    /// Completions delivered after their deadline.
    pub deadline_miss: u64,
    /// Requests parsed on a reused (kept-alive) connection.
    pub reused: u64,
    /// Kept-alive connections reaped by the idle timeout.
    pub idle_closed: u64,
    /// Clients that vanished mid-request or mid-response (a keep-alive
    /// client closing between requests is a clean close, not counted).
    pub faults_disconnect: u64,
    /// Connections timed out while dribbling their request.
    pub faults_slowloris: u64,
    /// Requests rejected for oversized head or body.
    pub faults_oversize: u64,
    /// Backend step failures survived by rebuild + re-submit.
    pub faults_engine: u64,
}

/// What one [`Server::tick`] did.
#[derive(Debug, Default, Clone, Copy, PartialEq, Eq)]
pub struct TickReport {
    /// Engine timesteps advanced this tick.
    pub steps: usize,
    /// Responses completed (fully written) this tick.
    pub responses: usize,
}

/// Per-connection lifecycle phase (the parser itself lives in
/// [`ConnEntry`] so it survives across requests on a reused connection).
enum ConnState {
    /// Accumulating (or waiting for) the next request.
    Reading,
    /// Request admitted (queued or in a lane); response not ready yet.
    Waiting,
    /// Flushing a response.
    Writing { buf: Vec<u8>, off: usize },
}

struct ConnEntry {
    io: Box<dyn Connection>,
    state: ConnState,
    /// Incremental parser, re-armed across requests on this connection.
    parser: RequestParser,
    /// When the current in-progress request started accumulating
    /// (slow-loris guard); `None` while the connection is idle between
    /// keep-alive requests.
    req_started: Option<u64>,
    /// Last request-side activity (bytes read or response finished) —
    /// the idle-timeout reference point.
    idle_since: u64,
    /// Responses completed on this connection.
    served: u64,
    /// Close once the in-flight response is fully written.
    close_after: bool,
}

/// One admitted inference request (queued or running).
#[derive(Debug, Clone)]
struct PendingReq {
    req: u64,
    conn: usize,
    sample: Vec<f32>,
    budget: usize,
    /// Absolute deadline, if the client set one.
    deadline: Option<u64>,
    arrived: u64,
}

/// Deadline-earliest-first admission queue: orders by
/// `(absolute deadline, arrival)`, with deadline-less requests ranking
/// last (`u64::MAX`) and FIFO among themselves. Deterministic: the key is
/// a pure function of the request, and `BTreeMap` iteration is ordered.
#[derive(Default)]
struct EdfQueue {
    map: BTreeMap<(u64, u64), PendingReq>,
}

impl EdfQueue {
    fn key(p: &PendingReq) -> (u64, u64) {
        (p.deadline.unwrap_or(u64::MAX), p.req)
    }

    fn len(&self) -> usize {
        self.map.len()
    }

    fn is_empty(&self) -> bool {
        self.map.is_empty()
    }

    fn push(&mut self, p: PendingReq) {
        self.map.insert(Self::key(&p), p);
    }

    /// Removes and returns the most urgent queued request.
    fn pop_earliest(&mut self) -> Option<PendingReq> {
        self.map.pop_first().map(|(_, p)| p)
    }

    /// Removes and returns every queued request matching `hopeless`, in
    /// EDF order.
    fn drain_where(&mut self, mut hopeless: impl FnMut(&PendingReq) -> bool) -> Vec<PendingReq> {
        let keys: Vec<(u64, u64)> = self
            .map
            .iter()
            .filter(|(_, p)| hopeless(p))
            .map(|(k, _)| *k)
            .collect();
        keys.into_iter()
            .filter_map(|k| self.map.remove(&k))
            .collect()
    }
}

/// The continuous-batching inference server (see module docs).
pub struct Server<C: Clock> {
    cfg: ServeConfig,
    clock: C,
    transport: Box<dyn Transport>,
    backend: Box<dyn Backend>,
    make_backend: BackendFactory,
    conns: Vec<Option<ConnEntry>>,
    queue: EdfQueue,
    /// In-flight requests keyed by backend lane id.
    running: BTreeMap<u64, PendingReq>,
    stats: ServeStats,
    req_seq: u64,
    draining: bool,
}

impl<C: Clock> Server<C> {
    /// Builds a server; `make_backend` is called once for the initial
    /// backend and again after every fatal backend fault.
    ///
    /// # Errors
    ///
    /// Returns an error for an invalid configuration or a backend whose
    /// capacity does not match the configured one.
    pub fn new(
        cfg: ServeConfig,
        clock: C,
        transport: Box<dyn Transport>,
        mut make_backend: BackendFactory,
    ) -> Result<Self> {
        cfg.validate()?;
        let backend = make_backend();
        if backend.capacity() != cfg.capacity {
            return Err(TensorError::InvalidArgument {
                detail: format!(
                    "serve config: backend capacity {} != configured capacity {}",
                    backend.capacity(),
                    cfg.capacity
                ),
            });
        }
        Ok(Server {
            cfg,
            clock,
            transport,
            backend,
            make_backend,
            conns: Vec::new(),
            queue: EdfQueue::default(),
            running: BTreeMap::new(),
            stats: ServeStats::default(),
            req_seq: 0,
            draining: false,
        })
    }

    /// Counters so far.
    pub fn stats(&self) -> &ServeStats {
        &self.stats
    }

    /// Shared engine-loop timesteps the backend has run.
    pub fn engine_steps(&self) -> u64 {
        self.backend.engine_steps()
    }

    /// Total lane-timesteps the backend has simulated.
    pub fn lane_steps(&self) -> u64 {
        self.backend.lane_steps()
    }

    /// Lanes currently simulating.
    pub fn lanes_active(&self) -> usize {
        self.backend.active()
    }

    /// Requests waiting for a lane.
    pub fn queue_depth(&self) -> usize {
        self.queue.len()
    }

    /// Stops admitting inference work: every new `/infer` answers `503`
    /// while in-flight requests run to completion, and freshly parsed
    /// requests stop being kept alive. [`Server::idle`] turns true once
    /// the drain is finished.
    pub fn begin_drain(&mut self) {
        self.draining = true;
    }

    /// Whether a drain has been requested.
    pub fn draining(&self) -> bool {
        self.draining
    }

    /// No open connections, no queued work, no running lanes.
    pub fn idle(&self) -> bool {
        self.running.is_empty() && self.queue.is_empty() && self.conns.iter().all(Option::is_none)
    }

    /// Runs one scheduling quantum (see module docs for the exact order).
    pub fn tick(&mut self) -> TickReport {
        let now = self.clock.now_us();
        let _span = tcl_telemetry::span_with("serve.tick", || {
            vec![
                ("now_us", now as f64),
                ("active", self.backend.active() as f64),
                ("queued", self.queue.len() as f64),
            ]
        });
        self.accept(now);
        self.read_pass(now);
        let steps = self.step_pass(now);
        self.shed_hopeless(now);
        let responses = self.write_pass(now);
        self.timeout_pass(now);
        self.publish_gauges();
        TickReport { steps, responses }
    }

    /// Accepts every pending connection; over the `max_conns` cap new
    /// clients get an immediate `503` instead of silently waiting, so the
    /// accept queue never backs up behind slow request handling.
    fn accept(&mut self, now: u64) {
        while let Some(io) = self.transport.poll_accept() {
            let open = self.conns.iter().flatten().count();
            let entry = if open >= self.cfg.max_conns {
                self.stats.shed += 1;
                tcl_telemetry::counter_add("serve.shed", 1);
                ConnEntry {
                    io,
                    state: ConnState::Writing {
                        buf: http::response(
                            503,
                            "{\"error\":\"connection limit\"}",
                            Some(self.cfg.retry_after_s()),
                        ),
                        off: 0,
                    },
                    parser: RequestParser::new(self.cfg.max_body),
                    req_started: None,
                    idle_since: now,
                    served: 0,
                    close_after: true,
                }
            } else {
                ConnEntry {
                    io,
                    state: ConnState::Reading,
                    parser: RequestParser::new(self.cfg.max_body),
                    // A connection that never sends a byte falls under the
                    // slow-loris guard, like a half-sent request.
                    req_started: Some(now),
                    idle_since: now,
                    served: 0,
                    close_after: false,
                }
            };
            self.insert_conn(entry);
        }
    }

    fn insert_conn(&mut self, entry: ConnEntry) -> usize {
        for (i, slot) in self.conns.iter_mut().enumerate() {
            if slot.is_none() {
                *slot = Some(entry);
                return i;
            }
        }
        self.conns.push(Some(entry));
        self.conns.len() - 1
    }

    /// Pumps request bytes on every connection still reading, dispatching
    /// at most one request per connection per tick (pipelined surplus
    /// stays buffered until the previous response is written — the
    /// per-connection ordering guarantee). Reads per connection per tick
    /// are capped so one firehose client cannot starve its neighbours
    /// within a tick.
    fn read_pass(&mut self, now: u64) {
        const READ_CAP: usize = 16 * 1024;
        for idx in 0..self.conns.len() {
            let mut verdict: Option<Parse> = None;
            let mut disconnected = false;
            let mut clean_close = false;
            {
                let Some(entry) = self.conns[idx].as_mut() else {
                    continue;
                };
                if !matches!(entry.state, ConnState::Reading) {
                    continue;
                }
                // A pipelined request may already be fully buffered from a
                // previous read; consume it before touching the socket.
                match entry.parser.poll() {
                    Parse::NeedMore => {
                        let mut budget = READ_CAP;
                        let mut chunk = [0u8; 512];
                        while budget > 0 {
                            match entry.io.poll_read(&mut chunk[..budget.min(512)]) {
                                Io::Data(n) => {
                                    budget -= n;
                                    entry.idle_since = now;
                                    if entry.req_started.is_none() {
                                        entry.req_started = Some(now);
                                    }
                                    match entry.parser.feed(&chunk[..n]) {
                                        Parse::NeedMore => {}
                                        done => {
                                            verdict = Some(done);
                                            break;
                                        }
                                    }
                                }
                                Io::WouldBlock => break,
                                Io::Closed => {
                                    disconnected = true;
                                    // A kept-alive client hanging up with no
                                    // request in progress is a normal end of
                                    // conversation, not a fault.
                                    clean_close = entry.served > 0
                                        && entry.req_started.is_none()
                                        && entry.parser.buffered() == 0;
                                    break;
                                }
                            }
                        }
                    }
                    done => verdict = Some(done),
                }
            }
            if disconnected {
                if !clean_close {
                    self.stats.faults_disconnect += 1;
                    tcl_telemetry::counter_add("serve.faults.disconnect", 1);
                }
                self.drop_conn(idx);
                continue;
            }
            match verdict {
                None => {}
                Some(Parse::Ready(req)) => {
                    if let Some(entry) = self.conns[idx].as_mut() {
                        if entry.served > 0 {
                            self.stats.reused += 1;
                            tcl_telemetry::counter_add("serve.reused", 1);
                        }
                        let at_cap = entry.served + 1 >= self.cfg.max_requests_per_conn as u64;
                        entry.close_after = !req.keep_alive || at_cap || self.draining;
                    }
                    self.dispatch(now, idx, &req);
                }
                Some(Parse::Reject { status, reason }) => {
                    if status == 413 || status == 431 {
                        self.stats.faults_oversize += 1;
                        tcl_telemetry::counter_add("serve.faults.oversize", 1);
                    }
                    self.respond(idx, status, &error_body(reason), None);
                }
                // feed()/poll() only return NeedMore as handled above.
                Some(Parse::NeedMore) => {}
            }
        }
    }

    /// Routes one parsed request.
    fn dispatch(&mut self, now: u64, idx: usize, req: &http::Request) {
        match (req.method, req.path.as_str()) {
            (Method::Get, "/healthz") => self.respond(idx, 200, "ok\n", None),
            (Method::Get, "/stats") => {
                let body = self.stats_json();
                self.respond(idx, 200, &body, None);
            }
            (Method::Post, "/infer") => self.dispatch_infer(now, idx, &req.body),
            _ => self.respond(idx, 404, &error_body("not found"), None),
        }
    }

    fn dispatch_infer(&mut self, now: u64, idx: usize, body: &[u8]) {
        let (sample, deadline_us) = match parse_infer_body(body, self.cfg.feat_len()) {
            Ok(parsed) => parsed,
            Err(reason) => {
                self.respond(idx, 422, &error_body(reason), None);
                return;
            }
        };
        self.stats.requests += 1;
        tcl_telemetry::counter_add("serve.requests", 1);
        if self.draining {
            self.stats.shed += 1;
            tcl_telemetry::counter_add("serve.shed", 1);
            self.respond(
                idx,
                503,
                &error_body("draining"),
                Some(self.cfg.retry_after_s()),
            );
            return;
        }
        let budget = self.cfg.budget_for(deadline_us);
        if budget == 0 {
            self.respond(idx, 422, &error_body("deadline below one timestep"), None);
            return;
        }
        let pending = PendingReq {
            req: self.req_seq,
            conn: idx,
            sample,
            budget,
            deadline: deadline_us.map(|d| now.saturating_add(d)),
            arrived: now,
        };
        self.req_seq += 1;
        if self.queue.is_empty() && self.backend.active() < self.cfg.capacity {
            self.submit(now, pending);
        } else if self.queue.len() < self.cfg.queue_depth {
            if let Some(entry) = self.conns[idx].as_mut() {
                entry.state = ConnState::Waiting;
            }
            self.queue.push(pending);
        } else {
            self.stats.shed += 1;
            tcl_telemetry::counter_add("serve.shed", 1);
            self.respond(
                idx,
                429,
                &error_body("overloaded"),
                Some(self.cfg.retry_after_s()),
            );
        }
    }

    /// Hands one request to the backend; the lane joins the running
    /// timestep loop immediately (this is the continuous-batching moment).
    fn submit(&mut self, _now: u64, pending: PendingReq) {
        let _mark = tcl_telemetry::span_with("serve.admit", || {
            vec![
                ("req", pending.req as f64),
                ("active", self.backend.active() as f64),
            ]
        });
        match self.backend.submit(&pending.sample, pending.budget) {
            Ok(lane) => {
                if let Some(entry) = self.conns[pending.conn].as_mut() {
                    entry.state = ConnState::Waiting;
                }
                self.running.insert(lane, pending);
            }
            Err(e) => {
                tcl_telemetry::log("serve", &format!("submit failed: {e}"));
                self.respond(pending.conn, 500, &error_body("submit failed"), None);
            }
        }
    }

    /// Advances the engine up to `steps_per_tick` timesteps, admitting
    /// queued requests into lanes the moment early exits free them —
    /// admission interleaves with stepping *inside* one tick, so a freed
    /// lane never idles until the next tick.
    fn step_pass(&mut self, now: u64) -> usize {
        let mut steps = 0;
        for _ in 0..self.cfg.steps_per_tick {
            self.admit_from_queue(now);
            if self.backend.active() == 0 {
                break;
            }
            let active = self.backend.active();
            let outcome = {
                let _span =
                    tcl_telemetry::span_with("serve.step", || vec![("active", active as f64)]);
                self.backend.step()
            };
            match outcome {
                Ok(completions) => {
                    steps += 1;
                    for c in completions {
                        self.complete(now, &c);
                    }
                }
                Err(e) => self.engine_fault(&e),
            }
        }
        self.admit_from_queue(now);
        steps
    }

    /// Pops the queue deadline-earliest-first into free lanes: the most
    /// urgent queued request reaches the engine first.
    fn admit_from_queue(&mut self, now: u64) {
        while !self.queue.is_empty() && self.backend.active() < self.cfg.capacity {
            // lint: allow(P1) nonempty checked by the loop condition
            let pending = self.queue.pop_earliest().expect("queue nonempty");
            self.submit(now, pending);
        }
    }

    /// Turns one retired lane into a response.
    fn complete(&mut self, now: u64, c: &Completion) {
        let Some(pending) = self.running.remove(&c.lane) else {
            // A lane the server is not tracking (should be impossible);
            // drop the completion rather than corrupt another request.
            tcl_telemetry::log("serve", &format!("orphan completion for lane {}", c.lane));
            return;
        };
        let _mark = tcl_telemetry::span_with("serve.retire", || {
            vec![
                ("req", pending.req as f64),
                ("steps", c.steps as f64),
                ("early", f64::from(u8::from(c.early))),
            ]
        });
        let latency = now.saturating_sub(pending.arrived);
        if pending.deadline.is_some_and(|d| now > d) {
            self.stats.deadline_miss += 1;
            tcl_telemetry::counter_add("serve.deadline_miss", 1);
        }
        self.stats.completed += 1;
        if c.early {
            self.stats.early_exits += 1;
            tcl_telemetry::counter_add("serve.early_exits", 1);
        }
        let latency_upper = (self.cfg.max_steps as u64 * self.cfg.us_per_step * 4) as f64;
        tcl_telemetry::hist_record("serve.latency_us", latency as f64, latency_upper, 32);
        let mut body = String::with_capacity(96);
        body.push_str("{\"pred\":");
        body.push_str(&c.pred.to_string());
        body.push_str(",\"steps\":");
        body.push_str(&c.steps.to_string());
        body.push_str(",\"early\":");
        body.push_str(if c.early { "true" } else { "false" });
        body.push_str(",\"margin\":");
        json::number_into(f64::from(c.margin), &mut body);
        body.push_str(",\"latency_us\":");
        body.push_str(&latency.to_string());
        body.push('}');
        self.respond(pending.conn, 200, &body, None);
    }

    /// Rebuilds the backend and re-submits every in-flight request from
    /// step zero (deterministic recovery: re-running a request on a fresh
    /// backend reproduces its answer exactly).
    fn engine_fault(&mut self, e: &TensorError) {
        self.stats.faults_engine += 1;
        tcl_telemetry::counter_add("serve.faults.engine", 1);
        tcl_telemetry::log("serve", &format!("backend fault, rebuilding: {e}"));
        self.backend = (self.make_backend)();
        let inflight: Vec<PendingReq> = std::mem::take(&mut self.running).into_values().collect();
        // Re-submit in original arrival order so lane ids (and therefore
        // completion tie-breaks) stay deterministic after recovery.
        let mut inflight = inflight;
        inflight.sort_by_key(|p| p.req);
        for pending in inflight {
            match self.backend.submit(&pending.sample, pending.budget) {
                Ok(lane) => {
                    self.running.insert(lane, pending);
                }
                Err(err) => {
                    tcl_telemetry::log("serve", &format!("re-submit failed: {err}"));
                    self.respond(
                        pending.conn,
                        500,
                        &error_body("backend restart failed"),
                        None,
                    );
                }
            }
        }
    }

    /// Sheds queued requests that can no longer produce an answer by their
    /// deadline, *now*, so the shed response itself still beats the
    /// deadline. The EDF order means the sweep sees the most urgent
    /// (soonest-to-become-hopeless) requests first.
    fn shed_hopeless(&mut self, now: u64) {
        let cfg_us = self.cfg.us_per_step;
        let policy_min = |budget: usize| self.cfg.min_possible_steps(budget);
        let hopeless = self.queue.drain_where(|pending| {
            pending.deadline.is_some_and(|d| {
                let min_run = policy_min(pending.budget) as u64 * cfg_us;
                now.saturating_add(min_run) > d
            })
        });
        for pending in hopeless {
            self.stats.shed += 1;
            tcl_telemetry::counter_add("serve.shed", 1);
            self.respond(
                pending.conn,
                429,
                &error_body("deadline unreachable under load"),
                Some(self.cfg.retry_after_s()),
            );
        }
    }

    /// Flushes pending responses. A fully written response closes the
    /// connection when `close_after` is set (client asked, request cap
    /// reached, error status, or draining); otherwise the connection is
    /// re-armed for its next request — keep-alive.
    fn write_pass(&mut self, now: u64) -> usize {
        let mut finished = 0;
        for idx in 0..self.conns.len() {
            let (done, disconnected) = {
                let Some(entry) = self.conns[idx].as_mut() else {
                    continue;
                };
                let ConnState::Writing { buf, off } = &mut entry.state else {
                    continue;
                };
                let mut disconnected = false;
                while *off < buf.len() {
                    match entry.io.poll_write(&buf[*off..]) {
                        Io::Data(n) => *off += n,
                        Io::WouldBlock => break,
                        Io::Closed => {
                            disconnected = true;
                            break;
                        }
                    }
                }
                (*off >= buf.len() && !disconnected, disconnected)
            };
            if disconnected {
                self.stats.faults_disconnect += 1;
                tcl_telemetry::counter_add("serve.faults.disconnect", 1);
                self.drop_conn(idx);
            } else if done {
                self.stats.responses += 1;
                tcl_telemetry::counter_add("serve.responses", 1);
                finished += 1;
                let close = self.conns[idx]
                    .as_ref()
                    .is_some_and(|entry| entry.close_after);
                if close {
                    self.drop_conn(idx);
                } else if let Some(entry) = self.conns[idx].as_mut() {
                    // Keep-alive re-arm: the parser already holds any
                    // pipelined surplus; the next read_pass polls it.
                    entry.served += 1;
                    entry.state = ConnState::Reading;
                    entry.idle_since = now;
                    entry.req_started = if entry.parser.buffered() > 0 {
                        Some(now)
                    } else {
                        None
                    };
                }
            }
        }
        finished
    }

    /// Times out connections still dribbling their current request
    /// (slow-loris: header or body, the guard does not care which) and
    /// silently reaps kept-alive connections idle past `idle_timeout_us`.
    fn timeout_pass(&mut self, now: u64) {
        enum Timeout {
            SlowLoris,
            Idle,
        }
        for idx in 0..self.conns.len() {
            let timed_out = {
                let Some(entry) = self.conns[idx].as_ref() else {
                    continue;
                };
                if !matches!(entry.state, ConnState::Reading) {
                    continue;
                }
                match entry.req_started {
                    Some(t) if now.saturating_sub(t) >= self.cfg.head_timeout_us => {
                        Some(Timeout::SlowLoris)
                    }
                    None if now.saturating_sub(entry.idle_since) >= self.cfg.idle_timeout_us => {
                        Some(Timeout::Idle)
                    }
                    _ => None,
                }
            };
            match timed_out {
                Some(Timeout::SlowLoris) => {
                    self.stats.faults_slowloris += 1;
                    tcl_telemetry::counter_add("serve.faults.slowloris", 1);
                    self.respond(idx, 408, &error_body("request timeout"), None);
                }
                Some(Timeout::Idle) => {
                    self.stats.idle_closed += 1;
                    tcl_telemetry::counter_add("serve.idle_closed", 1);
                    self.drop_conn(idx);
                }
                None => {}
            }
        }
    }

    fn publish_gauges(&self) {
        tcl_telemetry::gauge_set("serve.lanes_active", self.backend.active() as f64);
        tcl_telemetry::gauge_set("serve.queue_depth", self.queue.len() as f64);
        let denom = self.stats.requests.max(1);
        tcl_telemetry::gauge_set("serve.shed_rate", self.stats.shed as f64 / denom as f64);
    }

    /// Queues a response on a connection (no-op if the client is gone).
    /// Any non-200 status forces the connection closed after the write:
    /// the parser may be unsynchronized with a misbehaving client.
    fn respond(&mut self, idx: usize, status: u16, body: &str, retry_after_s: Option<u64>) {
        if let Some(entry) = self.conns.get_mut(idx).and_then(Option::as_mut) {
            if status != 200 {
                entry.close_after = true;
            }
            entry.state = ConnState::Writing {
                buf: http::response_with(status, body, retry_after_s, !entry.close_after),
                off: 0,
            };
        }
    }

    fn drop_conn(&mut self, idx: usize) {
        if let Some(mut entry) = self.conns.get_mut(idx).and_then(Option::take) {
            entry.io.close();
        }
    }

    /// The `/stats` endpoint body.
    fn stats_json(&self) -> String {
        let s = &self.stats;
        format!(
            "{{\"requests\":{},\"responses\":{},\"completed\":{},\"early_exits\":{},\
             \"shed\":{},\"deadline_miss\":{},\"reused\":{},\"idle_closed\":{},\
             \"faults\":{{\"disconnect\":{},\"slowloris\":{},\"oversize\":{},\"engine\":{}}},\
             \"lanes_active\":{},\"queue_depth\":{},\"engine_steps\":{},\"lane_steps\":{},\
             \"draining\":{}}}",
            s.requests,
            s.responses,
            s.completed,
            s.early_exits,
            s.shed,
            s.deadline_miss,
            s.reused,
            s.idle_closed,
            s.faults_disconnect,
            s.faults_slowloris,
            s.faults_oversize,
            s.faults_engine,
            self.backend.active(),
            self.queue.len(),
            self.backend.engine_steps(),
            self.backend.lane_steps(),
            self.draining,
        )
    }
}

/// A one-line JSON error body.
fn error_body(reason: &str) -> String {
    let mut out = String::with_capacity(reason.len() + 12);
    out.push_str("{\"error\":\"");
    json::escape_into(reason, &mut out);
    out.push_str("\"}");
    out
}

/// Parses an `/infer` body: `{"sample":[...], "deadline_us": 50000}`
/// (single-line JSON; `deadline_us` optional).
fn parse_infer_body(
    body: &[u8],
    feat_len: usize,
) -> std::result::Result<(Vec<f32>, Option<u64>), &'static str> {
    let text = std::str::from_utf8(body).map_err(|_| "body is not UTF-8")?;
    let value = json::parse_line(text.trim()).map_err(|_| "body is not valid JSON")?;
    let sample_json = value
        .get("sample")
        .and_then(|s| s.as_array())
        .ok_or("missing sample array")?;
    if sample_json.len() != feat_len {
        return Err("sample length does not match model input");
    }
    let mut sample = Vec::with_capacity(sample_json.len());
    for v in sample_json {
        let f = v.as_f64().ok_or("sample entries must be numbers")?;
        if !f.is_finite() {
            return Err("sample entries must be finite");
        }
        sample.push(f as f32);
    }
    let deadline_us = match value.get("deadline_us") {
        None => None,
        Some(d) => Some(
            d.as_u64()
                .ok_or("deadline_us must be a non-negative integer")?,
        ),
    };
    Ok((sample, deadline_us))
}

#[cfg(test)]
mod tests {
    use super::*;

    fn test_config(feat: usize, capacity: usize) -> ServeConfig {
        ServeConfig {
            capacity,
            queue_depth: 4,
            feat_dims: vec![feat],
            policy: ExitPolicy::Off,
            max_steps: 16,
            us_per_step: 100,
            steps_per_tick: 4,
            max_body: 4096,
            head_timeout_us: 50_000,
            max_conns: 32,
            max_requests_per_conn: 64,
            idle_timeout_us: 100_000,
        }
    }

    #[test]
    fn config_validation_rejects_zero_fields() {
        let good = test_config(2, 2);
        assert!(good.validate().is_ok());
        for field in [
            "capacity",
            "max_steps",
            "us_per_step",
            "steps_per_tick",
            "max_requests_per_conn",
            "idle_timeout_us",
        ] {
            let mut bad = test_config(2, 2);
            match field {
                "capacity" => bad.capacity = 0,
                "max_steps" => bad.max_steps = 0,
                "us_per_step" => bad.us_per_step = 0,
                "max_requests_per_conn" => bad.max_requests_per_conn = 0,
                "idle_timeout_us" => bad.idle_timeout_us = 0,
                _ => bad.steps_per_tick = 0,
            }
            assert!(bad.validate().is_err(), "{field}");
        }
    }

    #[test]
    fn deadlines_map_to_step_budgets() {
        let cfg = test_config(2, 2);
        assert_eq!(cfg.budget_for(None), 16);
        assert_eq!(cfg.budget_for(Some(1_000)), 10);
        assert_eq!(cfg.budget_for(Some(10_000)), 16, "capped at max_steps");
        assert_eq!(cfg.budget_for(Some(99)), 0, "below one timestep");
    }

    #[test]
    fn edf_queue_orders_by_deadline_then_arrival() {
        let mk = |req: u64, deadline: Option<u64>| PendingReq {
            req,
            conn: 0,
            sample: vec![],
            budget: 1,
            deadline,
            arrived: 0,
        };
        let mut q = EdfQueue::default();
        q.push(mk(0, None));
        q.push(mk(1, Some(9_000)));
        q.push(mk(2, Some(2_000)));
        q.push(mk(3, None));
        q.push(mk(4, Some(2_000)));
        let order: Vec<u64> = std::iter::from_fn(|| q.pop_earliest())
            .map(|p| p.req)
            .collect();
        assert_eq!(
            order,
            vec![2, 4, 1, 0, 3],
            "earliest deadline first, FIFO among ties, deadline-less last"
        );
    }

    #[test]
    fn infer_bodies_parse_and_validate() {
        let ok = parse_infer_body(br#"{"sample":[0.5,1.0],"deadline_us":400}"#, 2);
        assert_eq!(ok, Ok((vec![0.5, 1.0], Some(400))));
        let no_deadline = parse_infer_body(br#"{"sample":[0.5,1.0]}"#, 2);
        assert_eq!(no_deadline, Ok((vec![0.5, 1.0], None)));
        assert!(parse_infer_body(b"not json", 2).is_err());
        assert!(
            parse_infer_body(br#"{"sample":[1.0]}"#, 2).is_err(),
            "short"
        );
        assert!(parse_infer_body(br#"{"sample":[1.0,"x"]}"#, 2).is_err());
        assert!(parse_infer_body(br#"{"deadline_us":4}"#, 2).is_err());
    }
}
