//! # tcl-serve
//!
//! A long-running inference service over the TCL spiking-network stack:
//! HTTP requests in, continuous-batched SNN inference out.
//!
//! The centerpiece is the marriage of two loops. The lane engine
//! ([`tcl_snn::LaneEngine`]) runs an *open* timestep loop whose batch rows
//! ("lanes") retire individually the moment their early-exit margin
//! stabilizes; the [`Server`] runs a request loop that feeds freed lanes
//! from a bounded admission queue. A new request does not wait for the
//! batch to drain — it joins the running loop in a lane an early-exited
//! request just vacated (admission is bitwise-exact: a freshly grown lane
//! simulates as if presented alone). Per-request deadlines are mapped onto
//! the exit policy's step budgets, overload sheds with `429` +
//! `Retry-After`, and a drain finishes in-flight work before shutdown.
//!
//! The crate is **deterministic by construction**: time comes from a
//! [`Clock`] capability (the library ships only the hand-advanced
//! [`VirtualClock`]), bytes come from a [`Transport`] capability (the
//! library ships only the scripted [`sim`] network), and the server core
//! never touches wall clocks, sockets, or threads. Real `Instant`s and
//! `TcpListener`s bind exclusively at the `main()` edge in the
//! `tcl_serve` binary — lint rule D1 enforces the boundary. The same
//! scenario script therefore produces byte-identical responses, shed
//! decisions, and completion orders on every run and every `TCL_THREADS`
//! setting.
//!
//! ## Wire protocol
//!
//! HTTP/1.1 with keep-alive: connections are reused across requests
//! (bounded by `max_requests_per_conn` and an idle timeout), pipelined
//! requests are answered strictly in arrival order, and any non-200
//! response closes the connection. Endpoints:
//!
//! * `POST /infer` with body `{"sample":[...], "deadline_us": 50000}` →
//!   `{"pred":…,"steps":…,"early":…,"margin":…,"latency_us":…}`
//! * `GET /healthz` → `ok`
//! * `GET /stats` → serving counters as JSON
//!
//! See the repository README's "Serving" section for deadline and
//! shedding semantics.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

mod backend;
mod clock;
mod http;
mod server;
pub mod sim;
mod transport;

pub use backend::{Backend, Completion, LaneBackend};
pub use clock::{Clock, VirtualClock};
pub use http::{response, response_with, Method, Parse, Request, RequestParser, MAX_HEAD};
pub use server::{BackendFactory, ServeConfig, ServeStats, Server, TickReport};
pub use transport::{Connection, Io, Transport};
