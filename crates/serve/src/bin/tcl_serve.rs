//! `tcl_serve`: the socket-facing edge of the inference service.
//!
//! This binary is the ONLY place in `tcl-serve` where wall clocks and real
//! sockets exist. It binds a `TcpListener`, wraps it in the [`Transport`]
//! trait, wraps `Instant` in the [`Clock`] trait, and drives the
//! deterministic [`Server`] core in a plain tick loop. Everything
//! interesting — admission, continuous batching, deadlines, shedding,
//! faults — lives in the library and is exercised under the virtual clock;
//! this file only adapts it to the operating system.
//!
//! It serves a small built-in demo network (an identity layer over
//! `TCL_SERVE_FEATURES` inputs, so class `k` is predicted for a sample
//! whose `k`-th feature dominates). Real deployments construct a
//! [`Server`] over a converted network in their own binary.
//!
//! Environment:
//!
//! * `TCL_SERVE_ADDR`  — bind address (default `127.0.0.1:8711`)
//! * `TCL_SERVE_FEATURES` — demo model width/classes (default 4)
//! * `TCL_SERVE_LANES` — concurrent lanes (default 8)
//! * `TCL_SERVE_MAX_STEPS` — step budget cap (default 256)
//! * `TCL_SERVE_TICKS` — exit after N ticks (default: run forever)

use std::io::{Read, Write};
use std::net::{Shutdown, TcpListener, TcpStream};
use std::process::ExitCode;

use tcl_serve::{Backend, Clock, Connection, Io, LaneBackend, ServeConfig, Server, Transport};
use tcl_snn::{
    ExitPolicy, IfNeurons, Readout, ResetMode, SpikingLayer, SpikingNetwork, SpikingNode,
    SynapticOp,
};
use tcl_tensor::Tensor;

/// Wall clock, bound at the `main()` edge only — the one sanctioned
/// wall-clock site in this crate; the library core never sees an Instant.
struct RealClock {
    start: std::time::Instant,
}

impl RealClock {
    fn new() -> Self {
        RealClock {
            start: std::time::Instant::now(),
        }
    }
}

impl Clock for RealClock {
    fn now_us(&self) -> u64 {
        u64::try_from(self.start.elapsed().as_micros()).unwrap_or(u64::MAX)
    }
}

struct TcpTransport {
    listener: TcpListener,
}

impl Transport for TcpTransport {
    fn poll_accept(&mut self) -> Option<Box<dyn Connection>> {
        match self.listener.accept() {
            Ok((stream, _)) => {
                if stream.set_nonblocking(true).is_err() {
                    return None;
                }
                Some(Box::new(TcpConn { stream }))
            }
            Err(_) => None,
        }
    }
}

struct TcpConn {
    stream: TcpStream,
}

impl Connection for TcpConn {
    fn poll_read(&mut self, buf: &mut [u8]) -> Io {
        match self.stream.read(buf) {
            Ok(0) => Io::Closed,
            Ok(n) => Io::Data(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Io::WouldBlock,
            Err(_) => Io::Closed,
        }
    }

    fn poll_write(&mut self, data: &[u8]) -> Io {
        match self.stream.write(data) {
            Ok(0) => Io::Closed,
            Ok(n) => Io::Data(n),
            Err(e) if e.kind() == std::io::ErrorKind::WouldBlock => Io::WouldBlock,
            Err(_) => Io::Closed,
        }
    }

    fn close(&mut self) {
        let _ = self.stream.flush();
        let _ = self.stream.shutdown(Shutdown::Both);
    }
}

/// The demo model: one identity spiking layer, `features` in/out, so the
/// spike-count readout predicts the dominant input feature.
fn demo_network(features: usize) -> Option<SpikingNetwork> {
    let mut weight = vec![0.0f32; features * features];
    for i in 0..features {
        weight[i * features + i] = 1.0;
    }
    let weight = Tensor::from_vec([features, features], weight).ok()?;
    Some(SpikingNetwork::new(vec![SpikingNode::Spiking(
        SpikingLayer::new(
            SynapticOp::Linear { weight, bias: None },
            IfNeurons::new(1.0, ResetMode::Subtract),
        ),
    )]))
}

fn env_usize(name: &str, default: usize) -> usize {
    std::env::var(name)
        .ok()
        .and_then(|v| v.trim().parse().ok())
        .unwrap_or(default)
}

fn usage() {
    println!(
        "tcl_serve: continuous-batching SNN inference server\n\n\
         USAGE: tcl_serve [--help]\n\n\
         Binds TCL_SERVE_ADDR (default 127.0.0.1:8711) and serves:\n\
           POST /infer   {{\"sample\":[...],\"deadline_us\":N}}\n\
           GET  /healthz\n\
           GET  /stats\n\n\
         Env: TCL_SERVE_ADDR, TCL_SERVE_FEATURES, TCL_SERVE_LANES,\n\
              TCL_SERVE_MAX_STEPS, TCL_SERVE_TICKS (exit after N ticks)"
    );
}

fn main() -> ExitCode {
    if std::env::args().any(|a| a == "-h" || a == "--help") {
        usage();
        return ExitCode::SUCCESS;
    }
    let features = env_usize("TCL_SERVE_FEATURES", 4).max(1);
    let lanes = env_usize("TCL_SERVE_LANES", 8).max(1);
    let max_steps = env_usize("TCL_SERVE_MAX_STEPS", 256).max(1);
    let ticks_limit = env_usize("TCL_SERVE_TICKS", 0);
    let addr = std::env::var("TCL_SERVE_ADDR").unwrap_or_else(|_| "127.0.0.1:8711".to_string());
    let Some(net) = demo_network(features) else {
        eprintln!("[tcl-serve] failed to build demo network");
        return ExitCode::FAILURE;
    };
    let cfg = ServeConfig {
        capacity: lanes,
        queue_depth: lanes * 4,
        feat_dims: vec![1, features],
        policy: ExitPolicy::Adaptive {
            patience: 8,
            min_margin: 2.0,
            min_steps: 16,
        },
        max_steps,
        us_per_step: 50,
        steps_per_tick: 64,
        max_body: 64 * 1024,
        head_timeout_us: 2_000_000,
        max_conns: 256,
        max_requests_per_conn: 256,
        idle_timeout_us: 5_000_000,
    };
    let listener = match TcpListener::bind(&addr) {
        Ok(l) => l,
        Err(e) => {
            eprintln!("[tcl-serve] bind {addr}: {e}");
            return ExitCode::FAILURE;
        }
    };
    if let Err(e) = listener.set_nonblocking(true) {
        eprintln!("[tcl-serve] set_nonblocking: {e}");
        return ExitCode::FAILURE;
    }
    let local = listener.local_addr().map(|a| a.to_string());
    let transport = Box::new(TcpTransport { listener });
    let make_backend: tcl_serve::BackendFactory = Box::new(move || {
        let backend = demo_network(features).and_then(|net| {
            LaneBackend::new(
                &net,
                lanes,
                &[1, features],
                Readout::SpikeCount,
                ExitPolicy::Adaptive {
                    patience: 8,
                    min_margin: 2.0,
                    min_steps: 16,
                },
            )
            .ok()
        });
        match backend {
            Some(b) => Box::new(b) as Box<dyn Backend>,
            None => {
                // Construction of the demo backend is infallible in
                // practice (static shapes); a panic here is a code bug.
                unreachable!("demo backend construction cannot fail")
            }
        }
    });
    let mut server = match Server::new(cfg, RealClock::new(), transport, make_backend) {
        Ok(s) => s,
        Err(e) => {
            eprintln!("[tcl-serve] {e}");
            return ExitCode::FAILURE;
        }
    };
    let shown = local.unwrap_or(addr);
    eprintln!(
        "[tcl-serve] listening on http://{shown}/ ({features} features, {lanes} lanes, demo model)"
    );
    let _ = net; // the factory rebuilds its own copy
    let mut ticks = 0usize;
    loop {
        let report = server.tick();
        ticks += 1;
        if ticks_limit > 0 && ticks >= ticks_limit {
            eprintln!("[tcl-serve] tick limit reached, draining");
            server.begin_drain();
            while !server.idle() {
                server.tick();
                // main()-edge pacing sleep; the server core itself never
                // sleeps.
                std::thread::sleep(std::time::Duration::from_millis(1));
            }
            return ExitCode::SUCCESS;
        }
        if report.steps == 0 && report.responses == 0 {
            // Idle: avoid spinning the CPU at 100% between requests
            // (main()-edge pacing sleep; the server core never sleeps).
            std::thread::sleep(std::time::Duration::from_millis(1));
        }
    }
}
