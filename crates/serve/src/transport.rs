//! Byte transport as a capability.
//!
//! The server core speaks to clients through the [`Transport`] /
//! [`Connection`] trait pair instead of `std::net` directly. Both are
//! *non-blocking*: every call returns immediately with either progress or
//! [`Io::WouldBlock`], and the server's tick loop is responsible for coming
//! back later. The library ships only the in-memory simulation transport
//! ([`crate::sim`]); real sockets bind at the `main()` edge in the
//! `tcl_serve` binary. This mirrors the [`Clock`](crate::Clock) split and is
//! what lets the fault-injection suite script byte-level misbehavior —
//! mid-request disconnects, slow-loris dribble, oversized bodies — against
//! the exact state machine production traffic hits.

/// Outcome of one non-blocking I/O attempt.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Io {
    /// `n > 0` bytes were transferred.
    Data(usize),
    /// No progress possible right now; try again next tick.
    WouldBlock,
    /// The peer is gone (EOF, reset, or any unrecoverable error — the
    /// server treats all of them as "stop talking to this connection").
    Closed,
}

/// One bidirectional byte stream to a client.
pub trait Connection {
    /// Reads available bytes into `buf` without blocking.
    fn poll_read(&mut self, buf: &mut [u8]) -> Io;

    /// Writes a prefix of `data` without blocking; [`Io::Data`] reports how
    /// many bytes were accepted.
    fn poll_write(&mut self, data: &[u8]) -> Io;

    /// Closes the connection (response complete or aborted). Idempotent.
    fn close(&mut self);
}

/// A listener producing [`Connection`]s.
pub trait Transport {
    /// Accepts one pending connection, or `None` when no client is waiting.
    /// The server drains this every tick, so the accept queue is never
    /// starved by slow request handling.
    fn poll_accept(&mut self) -> Option<Box<dyn Connection>>;
}
