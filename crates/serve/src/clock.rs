//! Time as a capability.
//!
//! Everything in this crate that needs "now" asks a [`Clock`], and the only
//! clock the library ships is the [`VirtualClock`] — a counter the test (or
//! bench) harness advances by hand. Wall time exists solely in the
//! `tcl_serve` binary, which binds a real-`Instant` clock at the `main()`
//! edge. The payoff is that the entire serving state machine — admission,
//! deadlines, slow-loris timeouts, load shedding, drain — runs under a
//! deterministic clock in tests: the same scenario script produces the same
//! microsecond-stamped outcome on every run and every machine (lint rule D1
//! enforces that no wall clock leaks into the library).

use std::cell::Cell;
use std::rc::Rc;

/// A monotonic microsecond clock.
pub trait Clock {
    /// Microseconds since an arbitrary epoch. Must never decrease.
    fn now_us(&self) -> u64;
}

/// A hand-advanced clock for deterministic simulation.
///
/// Cloning yields a handle onto the same underlying counter, so a harness
/// can keep one handle while the server owns another.
#[derive(Debug, Clone, Default)]
pub struct VirtualClock {
    now: Rc<Cell<u64>>,
}

impl VirtualClock {
    /// A clock at time zero.
    pub fn new() -> Self {
        Self::default()
    }

    /// Advances the clock by `us` microseconds.
    pub fn advance(&self, us: u64) {
        self.now.set(self.now.get() + us);
    }

    /// Jumps the clock to an absolute time (clamped monotonic: a target in
    /// the past leaves the clock where it is).
    pub fn set(&self, us: u64) {
        self.now.set(us.max(self.now.get()));
    }
}

impl Clock for VirtualClock {
    fn now_us(&self) -> u64 {
        self.now.get()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn handles_share_one_counter() {
        let clock = VirtualClock::new();
        let handle = clock.clone();
        assert_eq!(clock.now_us(), 0);
        handle.advance(250);
        assert_eq!(clock.now_us(), 250);
        clock.set(1_000);
        assert_eq!(handle.now_us(), 1_000);
        // set() never rewinds.
        clock.set(500);
        assert_eq!(handle.now_us(), 1_000);
    }
}
