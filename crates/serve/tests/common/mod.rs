//! Shared scaffolding for the serving integration suites: a tiny identity
//! model, server construction helpers, a completion-recording backend, and
//! the virtual-clock drive loop.
//!
//! Every suite builds the same shape of world: a [`SimNet`] of scripted
//! clients, a [`Server`] on a [`VirtualClock`], and a [`LaneBackend`] over
//! an identity spiking network (class `k` is predicted for the sample whose
//! `k`-th feature dominates, so expected answers are readable off the
//! inputs).
#![allow(dead_code)] // each suite uses a different slice of this scaffolding

use std::cell::RefCell;
use std::rc::Rc;

use tcl_serve::sim::SimNet;
use tcl_serve::{
    Backend, BackendFactory, Completion, LaneBackend, ServeConfig, Server, VirtualClock,
};
use tcl_snn::{
    ExitPolicy, IfNeurons, Readout, ResetMode, SpikingLayer, SpikingNetwork, SpikingNode,
    SynapticOp,
};
use tcl_tensor::{Result, Tensor};

/// The adaptive policy every suite shares: early exit on a spike-count
/// margin of 2 held for 4 steps, never before step 6.
pub const ADAPTIVE: ExitPolicy = ExitPolicy::Adaptive {
    patience: 4,
    min_margin: 2.0,
    min_steps: 6,
};

/// One identity spiking layer, `features` in/out: the spike-count readout
/// predicts the dominant input feature.
pub fn identity_net(features: usize) -> SpikingNetwork {
    let mut weight = vec![0.0f32; features * features];
    for i in 0..features {
        weight[i * features + i] = 1.0;
    }
    let weight = Tensor::from_vec([features, features], weight).expect("identity weight");
    SpikingNetwork::new(vec![SpikingNode::Spiking(SpikingLayer::new(
        SynapticOp::Linear { weight, bias: None },
        IfNeurons::new(1.0, ResetMode::Subtract),
    ))])
}

/// Baseline configuration the suites specialize per scenario.
pub fn serve_cfg(features: usize, capacity: usize) -> ServeConfig {
    ServeConfig {
        capacity,
        queue_depth: 8,
        feat_dims: vec![features],
        policy: ADAPTIVE,
        max_steps: 100,
        us_per_step: 100,
        steps_per_tick: 8,
        max_body: 4096,
        head_timeout_us: 50_000,
        max_conns: 64,
        max_requests_per_conn: 64,
        idle_timeout_us: 200_000,
    }
}

/// A factory producing fresh [`LaneBackend`]s over a clone of `net`.
pub fn lane_factory(net: &SpikingNetwork, cfg: &ServeConfig, readout: Readout) -> BackendFactory {
    let net = net.clone();
    let capacity = cfg.capacity;
    let feat_dims = cfg.feat_dims.clone();
    let policy = cfg.policy;
    Box::new(move || {
        Box::new(
            LaneBackend::new(&net, capacity, &feat_dims, readout, policy)
                .expect("lane backend builds"),
        )
    })
}

/// A backend decorator recording every completion (in retirement order)
/// so suites can compare served results bitwise against batch oracles.
pub struct RecordingBackend {
    inner: Box<dyn Backend>,
    log: Rc<RefCell<Vec<Completion>>>,
}

impl RecordingBackend {
    pub fn wrap(inner: Box<dyn Backend>, log: Rc<RefCell<Vec<Completion>>>) -> Box<dyn Backend> {
        Box::new(RecordingBackend { inner, log })
    }
}

impl Backend for RecordingBackend {
    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn active(&self) -> usize {
        self.inner.active()
    }

    fn submit(&mut self, sample: &[f32], budget: usize) -> Result<u64> {
        self.inner.submit(sample, budget)
    }

    fn step(&mut self) -> Result<Vec<Completion>> {
        let completions = self.inner.step()?;
        self.log.borrow_mut().extend(completions.iter().cloned());
        Ok(completions)
    }

    fn engine_steps(&self) -> u64 {
        self.inner.engine_steps()
    }

    fn lane_steps(&self) -> u64 {
        self.inner.lane_steps()
    }
}

/// Ticks the server (advancing the virtual clock by `tick_us` between
/// ticks) until it is idle and no scripted client is still waiting to
/// connect; panics if that takes more than `max_ticks`.
pub fn drive(
    server: &mut Server<VirtualClock>,
    clock: &VirtualClock,
    net: &SimNet,
    tick_us: u64,
    max_ticks: usize,
) -> usize {
    for tick in 0..max_ticks {
        server.tick();
        if server.idle() && net.pending() == 0 {
            return tick + 1;
        }
        clock.advance(tick_us);
    }
    panic!("server failed to go idle within {max_ticks} ticks");
}

/// Pulls one field out of a JSON response body.
pub fn body_field(body: &str, field: &str) -> f64 {
    let value = tcl_telemetry::json::parse_line(body.trim()).expect("response body is JSON");
    value
        .get(field)
        .and_then(|v| v.as_f64())
        .unwrap_or_else(|| panic!("field {field} missing in {body}"))
}

/// Pulls one boolean field out of a JSON response body.
pub fn body_bool(body: &str, field: &str) -> bool {
    let value = tcl_telemetry::json::parse_line(body.trim()).expect("response body is JSON");
    match value.get(field) {
        Some(tcl_telemetry::json::JsonValue::Bool(b)) => *b,
        other => panic!("field {field} not a bool in {body}: {other:?}"),
    }
}

/// Solo oracle: runs one sample alone through a capacity-1 [`tcl_snn::LaneEngine`]
/// and returns its retirement output (the bitwise reference for a lane's
/// trajectory regardless of batchmates).
pub fn solo_lane_output(
    net: &SpikingNetwork,
    sample: &[f32],
    readout: Readout,
    policy: ExitPolicy,
    budget: usize,
) -> tcl_snn::LaneOutput {
    let mut engine = tcl_snn::LaneEngine::new(net, 1, readout, policy).expect("solo engine");
    let tensor = Tensor::from_vec([sample.len()], sample.to_vec()).expect("solo sample");
    engine.submit(&tensor, budget).expect("solo submit");
    loop {
        let mut done = engine.step().expect("solo step");
        if let Some(out) = done.pop() {
            return out;
        }
    }
}
