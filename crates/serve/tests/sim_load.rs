//! Deterministic load simulation: seeded open-loop arrivals on the virtual
//! clock, exercising the acceptance criteria of the serving layer —
//! continuous batching beats back-to-back half-batches, served answers
//! match batch evaluation bitwise, deadlines hold below the admission
//! threshold, sheds beat the deadlines they fail, and the whole scenario is
//! reproducible byte-for-byte across runs (and across `TCL_THREADS`, which
//! the CI stage pins by running this suite under 1 and 4 threads against
//! the same fingerprint constant).

mod common;

use std::cell::RefCell;
use std::rc::Rc;

use common::{
    body_field, drive, identity_net, lane_factory, serve_cfg, solo_lane_output, RecordingBackend,
    ADAPTIVE,
};
use tcl_serve::sim::{infer_request, infer_request_keep_alive, pipelined, SimNet};
use tcl_serve::{Completion, ServeStats, Server, VirtualClock};
use tcl_snn::{Engine, Readout, SimConfig};
use tcl_tensor::{SeededRng, Tensor};

/// Eight 4-feature samples: six confident (dominant feature → early exit)
/// and two ambiguous ties (indices 0 and 5) that ride out their budget.
fn mixed_samples() -> Vec<Vec<f32>> {
    vec![
        vec![0.5, 0.5, 0.1, 0.1],
        vec![0.9, 0.1, 0.05, 0.05],
        vec![0.1, 0.85, 0.1, 0.05],
        vec![0.05, 0.1, 0.8, 0.1],
        vec![0.1, 0.05, 0.1, 0.95],
        vec![0.1, 0.45, 0.45, 0.1],
        vec![0.7, 0.2, 0.1, 0.1],
        vec![0.15, 0.1, 0.2, 0.75],
    ]
}

fn argmax(row: &[f32]) -> usize {
    let mut best = 0;
    for (i, v) in row.iter().enumerate() {
        if *v > row[best] {
            best = i;
        }
    }
    best
}

/// The continuous-batching acceptance test: 2× lane-count requests offered
/// at t=0 must finish in fewer engine timesteps than two half-batches run
/// back-to-back, while every served answer stays bitwise equal to batch
/// evaluation of the same inputs.
#[test]
fn continuous_batching_beats_back_to_back_half_batches() {
    let samples = mixed_samples();
    let labels: Vec<usize> = samples.iter().map(|s| argmax(s)).collect();
    let net = identity_net(4);
    let mut cfg = serve_cfg(4, 4);
    cfg.steps_per_tick = 8;

    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);
    let clients: Vec<_> = samples
        .iter()
        .map(|s| sim.request_at(0, infer_request(s, None)))
        .collect();

    let log: Rc<RefCell<Vec<Completion>>> = Rc::new(RefCell::new(Vec::new()));
    let factory = {
        let mut inner = lane_factory(&net, &cfg, Readout::SpikeCount);
        let log = Rc::clone(&log);
        Box::new(move || RecordingBackend::wrap(inner(), Rc::clone(&log)))
    };
    let mut server = Server::new(cfg.clone(), clock.clone(), Box::new(sim.clone()), factory)
        .expect("server builds");
    drive(&mut server, &clock, &sim, 100, 400);

    // Batch oracle: the same 8 samples through Engine::evaluate under the
    // same policy and readout, single checkpoint at the budget.
    let images = Tensor::from_vec([8, 4], samples.concat()).expect("images");
    let sim_cfg = SimConfig::new(vec![cfg.max_steps], 8, Readout::SpikeCount).expect("sim config");
    let reference = Engine::with_threads(1)
        .evaluate(&net, &images, &labels, &sim_cfg, ADAPTIVE)
        .expect("batch evaluation");

    // Requests arrive (and are admitted) in client order, so lane id ==
    // sample index; check each served answer against the batch oracle.
    assert_eq!(server.stats().completed, 8);
    assert_eq!(server.stats().shed, 0);
    assert_eq!(server.stats().deadline_miss, 0);
    let mut served_correct = 0;
    for (i, client) in clients.iter().enumerate() {
        assert_eq!(client.status(), Some(200), "client {i}");
        let body = client.body();
        let pred = body_field(&body, "pred") as usize;
        let steps = body_field(&body, "steps") as usize;
        assert_eq!(pred, reference.predictions[i], "client {i} prediction");
        assert_eq!(steps, reference.exit_steps[i], "client {i} exit step");
        if pred == labels[i] {
            served_correct += 1;
        }
    }
    let served_accuracy = served_correct as f32 / 8.0;
    assert_eq!(
        served_accuracy, reference.adaptive_accuracy,
        "serving must not change adaptive accuracy"
    );

    // Early-exit flags match, and the two ambiguous samples rode out the
    // full budget while the six confident ones exited early.
    let log = log.borrow();
    assert_eq!(log.len(), 8);
    for c in log.iter() {
        let i = c.lane as usize;
        assert_eq!(c.early, reference.exited[i], "lane {i} early flag");
        // Scores at retirement are bitwise the solo-run trajectory: a
        // lane's arithmetic is untouched by whoever shares the batch.
        let solo = solo_lane_output(
            &net,
            &samples[i],
            Readout::SpikeCount,
            ADAPTIVE,
            cfg.max_steps,
        );
        assert_eq!(c.scores, solo.scores, "lane {i} scores bitwise");
        assert_eq!(c.steps, solo.steps, "lane {i} solo steps");
    }
    assert!(
        !log[log.len() - 1].early,
        "an ambiguous sample retires last"
    );

    // The continuous-batching win: two half-batches back-to-back with
    // ExitPolicy::Off would cost 2 × max_steps engine timesteps; admitting
    // into freed lanes must beat that.
    let two_half_batches = 2 * cfg.max_steps as u64;
    assert!(
        server.engine_steps() < two_half_batches,
        "engine ran {} shared steps, expected fewer than {two_half_batches}",
        server.engine_steps()
    );
    // Lane-steps accounting: exactly the per-sample exit steps, no idle
    // simulation.
    let oracle_lane_steps: u64 = reference.exit_steps.iter().map(|&s| s as u64).sum();
    assert_eq!(server.lane_steps(), oracle_lane_steps);
}

/// One full open-loop scenario: seeded jittered arrivals plus a burst that
/// overruns the queue. Returns the per-client fingerprint
/// (`status@closed_at#completion_index`) and the final counters.
fn open_loop_scenario() -> (String, ServeStats) {
    let net = identity_net(4);
    let mut cfg = serve_cfg(4, 2);
    cfg.queue_depth = 2;
    cfg.max_steps = 40;
    cfg.steps_per_tick = 4;

    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);
    let mut rng = SeededRng::new(0xD1CE);
    let mut clients = Vec::new();
    let mut t = 0u64;
    for i in 0..16u64 {
        t += 100 + rng.below_u64(600);
        let mut sample = [0.1f32; 4];
        sample[rng.below(4)] = 0.7 + rng.uniform(0.0, 0.2);
        let deadline = if i % 4 == 0 { Some(2_500) } else { None };
        clients.push(sim.request_at(t, infer_request(&sample, deadline)));
    }
    // A synchronized burst mid-run: more offered work than lanes + queue.
    for k in 0..6usize {
        let mut sample = [0.1f32; 4];
        sample[k % 4] = 0.8;
        clients.push(sim.request_at(3_000, infer_request(&sample, Some(1_500))));
    }

    let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    drive(&mut server, &clock, &sim, 200, 2_000);

    // No-starvation under EDF: deadline-less requests rank last in the
    // queue but must still all be served — urgency reorders, it never
    // permanently displaces (the burst is finite, so the queue drains).
    for (i, client) in clients.iter().enumerate().take(16) {
        if !(i as u64).is_multiple_of(4) {
            assert_eq!(
                client.status(),
                Some(200),
                "deadline-less client {i} starved under EDF"
            );
        }
    }

    let fingerprint = clients
        .iter()
        .map(|c| {
            format!(
                "{}@{}#{}",
                c.status().unwrap_or(0),
                c.closed_at().unwrap_or(u64::MAX),
                c.completion_index().unwrap_or(u64::MAX),
            )
        })
        .collect::<Vec<_>>()
        .join(";");
    (fingerprint, server.stats().clone())
}

/// The run-to-run (and thread-count-to-thread-count) determinism lock: the
/// scenario's complete outcome — every status, close time, and the global
/// completion order — is pinned to a constant. CI runs this suite under
/// `TCL_THREADS=1` and `TCL_THREADS=4`; both must land on these bytes.
#[test]
fn open_loop_arrivals_are_bitwise_reproducible() {
    let (first, stats_first) = open_loop_scenario();
    let (second, stats_second) = open_loop_scenario();
    assert_eq!(first, second, "same scenario, same bytes");
    assert_eq!(stats_first, stats_second);
    // The scenario must exercise both the happy path and load shedding,
    // or the fingerprint proves less than it claims.
    assert!(stats_first.completed > 0, "no completions: {stats_first:?}");
    assert!(stats_first.shed > 0, "no sheds: {stats_first:?}");
    assert_eq!(
        first, PINNED_FINGERPRINT,
        "completion order diverged from the pinned constant"
    );
}

/// Below the admission threshold every deadline holds: spaced arrivals on
/// idle lanes, generous deadlines, zero misses, zero sheds.
#[test]
fn deadline_misses_are_exactly_zero_below_admission_threshold() {
    let net = identity_net(4);
    let mut cfg = serve_cfg(4, 2);
    cfg.max_steps = 40;
    cfg.steps_per_tick = 4;

    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);
    let samples = mixed_samples();
    let clients: Vec<_> = (0..12u64)
        .map(|i| {
            let arrival = i * 2_000;
            // Confident samples only (no budget-riders) so service time
            // stays far below the deadline.
            let sample = &samples[1 + (i as usize % 4)];
            (
                arrival,
                sim.request_at(arrival, infer_request(sample, Some(50_000))),
            )
        })
        .collect();

    let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    drive(&mut server, &clock, &sim, 200, 2_000);

    assert_eq!(server.stats().deadline_miss, 0, "{:?}", server.stats());
    assert_eq!(server.stats().shed, 0);
    assert_eq!(server.stats().completed, 12);
    for (arrival, client) in &clients {
        assert_eq!(client.status(), Some(200));
        let closed = client.closed_at().expect("closed");
        assert!(
            closed <= arrival + 50_000,
            "response at {closed} vs deadline {}",
            arrival + 50_000
        );
    }
}

/// Overload: one lane, a queue of one, six simultaneous requests with firm
/// deadlines. One is served; every shed answer (queue-full 429s and the
/// hopeless-queue sweep) must land *before* the deadline it failed.
#[test]
fn every_shed_request_is_answered_before_its_deadline() {
    let net = identity_net(4);
    let mut cfg = serve_cfg(4, 1);
    cfg.queue_depth = 1;
    cfg.policy = tcl_snn::ExitPolicy::Off;
    cfg.max_steps = 20;
    cfg.steps_per_tick = 2;

    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);
    let deadline_us = 3_000u64;
    let clients: Vec<_> = (0..6)
        .map(|_| sim.request_at(0, infer_request(&[0.9, 0.1, 0.1, 0.1], Some(deadline_us))))
        .collect();

    let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    drive(&mut server, &clock, &sim, 200, 200);

    let mut served = 0;
    let mut shed = 0;
    for (i, client) in clients.iter().enumerate() {
        let status = client
            .status()
            .unwrap_or_else(|| panic!("client {i} unanswered"));
        let closed = client.closed_at().expect("closed");
        match status {
            200 => {
                served += 1;
                assert!(closed <= deadline_us, "served at {closed}");
            }
            429 => {
                shed += 1;
                assert!(
                    closed < deadline_us,
                    "shed answer at {closed} arrived after the {deadline_us}µs deadline"
                );
                assert!(
                    client.response_text().contains("Retry-After:"),
                    "shed responses advertise Retry-After"
                );
            }
            other => panic!("client {i}: unexpected status {other}"),
        }
    }
    assert_eq!(served, 1, "exactly one lane's worth of work fits");
    assert_eq!(shed, 5);
    assert_eq!(server.stats().shed, 5);
    assert_eq!(server.stats().deadline_miss, 0);
}

/// The keep-alive acceptance criterion: N requests pipelined on ONE
/// connection produce bitwise-identical scores to the same N requests on
/// solo connections — connection reuse changes scheduling, never
/// arithmetic. Pipelined requests are also answered strictly in arrival
/// order on the shared connection.
#[test]
fn pipelined_keep_alive_matches_solo_connections_bitwise() {
    let samples = mixed_samples();
    // Four confident samples with distinct predictions 0..=3.
    let picks: Vec<&Vec<f32>> = vec![&samples[1], &samples[2], &samples[3], &samples[4]];
    let net = identity_net(4);
    let cfg = serve_cfg(4, 2);

    let run = |pipeline: bool| -> (Vec<Completion>, Vec<(u16, String)>, ServeStats) {
        let clock = VirtualClock::new();
        let sim = SimNet::new(&clock);
        let clients = if pipeline {
            // Three kept-alive requests plus a final `Connection: close`
            // on a single connection, all bytes in one chunk.
            let mut reqs: Vec<Vec<u8>> = picks
                .iter()
                .take(3)
                .map(|s| infer_request_keep_alive(s, None))
                .collect();
            reqs.push(infer_request(picks[3], None));
            vec![sim.request_at(0, pipelined(&reqs))]
        } else {
            picks
                .iter()
                .map(|s| sim.request_at(0, infer_request(s, None)))
                .collect()
        };
        let log: Rc<RefCell<Vec<Completion>>> = Rc::new(RefCell::new(Vec::new()));
        let factory = {
            let mut inner = lane_factory(&net, &cfg, Readout::SpikeCount);
            let log = Rc::clone(&log);
            Box::new(move || RecordingBackend::wrap(inner(), Rc::clone(&log)))
        };
        let mut server = Server::new(cfg.clone(), clock.clone(), Box::new(sim.clone()), factory)
            .expect("server builds");
        drive(&mut server, &clock, &sim, 100, 2_000);
        let responses = clients.iter().flat_map(|c| c.responses()).collect();
        let log = log.borrow().clone();
        (log, responses, server.stats().clone())
    };

    let (piped_log, piped_responses, piped_stats) = run(true);
    let (solo_log, solo_responses, solo_stats) = run(false);

    // All eight requests (4 + 4) answered 200, and the pipelined answers
    // arrive in request order: predictions 0, 1, 2, 3 on the one stream.
    assert_eq!(piped_responses.len(), 4);
    assert_eq!(solo_responses.len(), 4);
    for (i, (status, body)) in piped_responses.iter().enumerate() {
        assert_eq!(*status, 200, "pipelined request {i}");
        assert_eq!(
            body_field(body, "pred") as usize,
            i,
            "pipelined answers follow arrival order"
        );
    }
    assert_eq!(piped_stats.completed, 4);
    assert_eq!(piped_stats.reused, 3, "three requests rode a reused conn");
    assert_eq!(solo_stats.reused, 0);

    // Bitwise: pair completions across the two runs by prediction (each
    // sample predicts a distinct class) and compare the score trajectories.
    assert_eq!(piped_log.len(), 4);
    assert_eq!(solo_log.len(), 4);
    for piped in &piped_log {
        let twin = solo_log
            .iter()
            .find(|c| c.pred == piped.pred)
            .expect("same prediction appears in the solo run");
        assert_eq!(piped.scores, twin.scores, "pred {} scores", piped.pred);
        assert_eq!(piped.steps, twin.steps, "pred {} steps", piped.pred);
        assert_eq!(piped.early, twin.early, "pred {} early flag", piped.pred);
    }
}

/// The EDF discriminator: with the single lane busy, a deadline-less
/// request queued *first* must still be overtaken by an urgent request
/// queued *second* — FIFO would serve them in arrival order.
#[test]
fn edf_admission_serves_urgent_queued_requests_first() {
    let net = identity_net(4);
    let mut cfg = serve_cfg(4, 1);
    cfg.queue_depth = 4;
    cfg.policy = tcl_snn::ExitPolicy::Off;
    cfg.max_steps = 20;
    cfg.steps_per_tick = 2;

    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);
    let occupier = sim.request_at(0, infer_request(&[0.9, 0.1, 0.1, 0.1], None));
    let lax = sim.request_at(200, infer_request(&[0.1, 0.85, 0.1, 0.05], None));
    let urgent = sim.request_at(400, infer_request(&[0.05, 0.1, 0.8, 0.1], Some(10_000)));

    let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    drive(&mut server, &clock, &sim, 200, 2_000);

    for (name, client) in [("occupier", &occupier), ("lax", &lax), ("urgent", &urgent)] {
        assert_eq!(client.status(), Some(200), "{name}");
    }
    assert_eq!(server.stats().deadline_miss, 0);
    assert!(
        urgent.completion_index().unwrap() < lax.completion_index().unwrap(),
        "EDF admits the urgent request ahead of the earlier deadline-less one \
         (urgent {:?} vs lax {:?})",
        urgent.completion_index(),
        lax.completion_index()
    );
}

/// The read-only endpoints answer over the simulated transport.
#[test]
fn health_and_stats_endpoints_respond() {
    let net = identity_net(4);
    let cfg = serve_cfg(4, 2);
    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);
    let health = sim.request_at(0, tcl_serve::sim::get_request("/healthz"));
    let infer = sim.request_at(0, infer_request(&[0.9, 0.1, 0.1, 0.1], None));
    let stats = sim.request_at(5_000, tcl_serve::sim::get_request("/stats"));
    let missing = sim.request_at(0, tcl_serve::sim::get_request("/nope"));

    let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    drive(&mut server, &clock, &sim, 200, 200);

    assert_eq!(health.status(), Some(200));
    assert_eq!(health.body(), "ok\n");
    assert_eq!(infer.status(), Some(200));
    assert_eq!(missing.status(), Some(404));
    assert_eq!(stats.status(), Some(200));
    let completed = body_field(&stats.body(), "completed");
    assert_eq!(completed, 1.0, "stats reflect the served inference");
}

/// Hangup scripted after the response: the server must have already closed.
#[test]
fn drain_refuses_new_work_but_finishes_in_flight() {
    let net = identity_net(4);
    let mut cfg = serve_cfg(4, 2);
    cfg.steps_per_tick = 2;
    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);
    let in_flight = sim.request_at(0, infer_request(&[0.5, 0.5, 0.1, 0.1], None));
    let late = sim.request_at(1_000, infer_request(&[0.9, 0.1, 0.1, 0.1], None));

    let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    // Admit the first request, then drain.
    server.tick();
    assert_eq!(server.lanes_active(), 1);
    server.begin_drain();
    drive(&mut server, &clock, &sim, 200, 2_000);

    assert_eq!(in_flight.status(), Some(200), "in-flight work completes");
    assert_eq!(
        late.status(),
        Some(503),
        "new work is refused while draining"
    );
    assert!(
        late.response_text().contains("Retry-After:"),
        "drain refusals advertise Retry-After"
    );
    assert!(server.idle());
}

/// Pinned by the first green run; the assert message prints the actual
/// fingerprint when a change to the serving logic legitimately moves it.
const PINNED_FINGERPRINT: &str = "200@1000#0;200@1000#1;200@1200#2;200@1600#3;200@2000#4;\
    200@2200#5;200@2600#6;200@2800#7;200@3200#11;200@3800#15;200@4600#16;200@5200#17;\
    200@5600#18;200@6000#19;200@6200#20;200@6600#21;200@3200#12;200@3400#13;200@3400#14;\
    429@3000#8;429@3000#9;429@3000#10";
