//! Fault injection under the virtual clock: misbehaving clients
//! (mid-request disconnects, slow-loris dribble, oversized bodies) and a
//! killed engine worker. The contract under every fault is the same — the
//! serving loop never stalls other lanes, never leaks a lane, never drops
//! the accept loop, and each fault increments its `serve.faults.*` counter.

mod common;

use std::cell::Cell;
use std::rc::Rc;

use common::{body_bool, body_field, drive, identity_net, lane_factory, serve_cfg};
use tcl_serve::sim::{get_request_keep_alive, infer_request, pipelined, Chunk, SimNet};
use tcl_serve::{Backend, Completion, Server, VirtualClock};
use tcl_snn::Readout;
use tcl_tensor::{Result, TensorError};

/// A client that vanishes mid-request (and one that vanishes mid-response)
/// must not affect its neighbours or leak server state.
#[test]
fn mid_request_disconnect_leaves_other_lanes_running() {
    let net = identity_net(4);
    let cfg = serve_cfg(4, 2);
    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);

    // A sends half a request then hangs up.
    let full = infer_request(&[0.9, 0.1, 0.1, 0.1], None);
    let half = full[..full.len() / 2].to_vec();
    let vanisher = sim.connect_at(0, vec![(0, Chunk::Bytes(half)), (400, Chunk::Hangup)]);
    // B is a well-behaved concurrent request.
    let normal = sim.request_at(0, infer_request(&[0.1, 0.85, 0.1, 0.05], None));
    // C completes its request but hangs up before the response is written
    // (an ambiguous sample rides out its full budget, so the inference
    // finishes long after the hangup).
    let ghost = sim.connect_at(
        0,
        vec![
            (
                0,
                Chunk::Bytes(infer_request(&[0.1, 0.45, 0.45, 0.1], None)),
            ),
            (200, Chunk::Hangup),
        ],
    );
    // D arrives after both faults: the accept loop must still be alive.
    let late = sim.request_at(5_000, infer_request(&[0.1, 0.05, 0.1, 0.95], None));

    let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    drive(&mut server, &clock, &sim, 200, 2_000);

    assert_eq!(normal.status(), Some(200), "neighbour lane unaffected");
    assert_eq!(body_field(&normal.body(), "pred"), 1.0);
    assert_eq!(late.status(), Some(200), "accept loop survived the faults");
    assert!(
        vanisher.response_text().is_empty(),
        "no response to a ghost"
    );
    assert!(
        ghost.closed_at().is_some(),
        "mid-response hangup is detected and the connection reaped"
    );
    assert_eq!(server.stats().faults_disconnect, 2, "{:?}", server.stats());
    assert_eq!(server.lanes_active(), 0, "no leaked lanes");
    assert!(server.idle());
}

/// A client dribbling its request forever is cut off at the head timeout
/// with a 408 — it cannot hold a connection slot indefinitely.
#[test]
fn slow_loris_is_timed_out_not_served_forever() {
    let net = identity_net(4);
    let mut cfg = serve_cfg(4, 2);
    cfg.head_timeout_us = 2_000;
    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);

    // One header byte every 300µs, never finishing.
    let header = b"POST /infer HTTP/1.1\r\n".to_vec();
    let script: Vec<(u64, Chunk)> = header
        .iter()
        .enumerate()
        .map(|(i, b)| (i as u64 * 300, Chunk::Bytes(vec![*b])))
        .collect();
    let loris = sim.connect_at(0, script);
    let normal = sim.request_at(100, infer_request(&[0.9, 0.1, 0.1, 0.1], None));

    let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    drive(&mut server, &clock, &sim, 200, 2_000);

    assert_eq!(loris.status(), Some(408), "{}", loris.response_text());
    let closed = loris.closed_at().expect("loris connection reaped");
    assert!(
        (2_000..4_000).contains(&closed),
        "cut off near the timeout, got {closed}"
    );
    assert_eq!(
        normal.status(),
        Some(200),
        "dribble never stalls neighbours"
    );
    assert_eq!(server.stats().faults_slowloris, 1);
    assert!(server.idle());
}

/// Oversized bodies (413) and heads (431) are rejected during
/// accumulation — the server never buffers them to completion.
#[test]
fn oversized_requests_are_rejected_early() {
    let net = identity_net(4);
    let mut cfg = serve_cfg(4, 2);
    cfg.max_body = 256;
    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);

    let big_body = sim.request_at(
        0,
        b"POST /infer HTTP/1.1\r\nContent-Length: 10000\r\n\r\n".to_vec(),
    );
    let mut junk = b"GET /stats HTTP/1.1\r\nX-Pad: ".to_vec();
    junk.extend(std::iter::repeat_n(b'a', tcl_serve::MAX_HEAD + 1));
    let big_head = sim.request_at(0, junk);
    let normal = sim.request_at(0, infer_request(&[0.9, 0.1, 0.1, 0.1], None));

    let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    drive(&mut server, &clock, &sim, 200, 2_000);

    assert_eq!(big_body.status(), Some(413));
    assert_eq!(big_head.status(), Some(431));
    assert_eq!(normal.status(), Some(200));
    assert_eq!(server.stats().faults_oversize, 2);
    assert!(server.idle());
}

/// A kept-alive connection that goes quiet between requests is reaped at
/// the idle timeout — silently (no 408, no fault counter), because the
/// client did nothing wrong.
#[test]
fn idle_keep_alive_connection_is_reaped_silently() {
    let net = identity_net(4);
    let mut cfg = serve_cfg(4, 2);
    cfg.idle_timeout_us = 3_000;
    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);
    let client = sim.request_at(0, get_request_keep_alive("/healthz"));

    let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    drive(&mut server, &clock, &sim, 200, 100);

    assert_eq!(client.statuses(), vec![200]);
    assert!(
        client.response_text().contains("Connection: keep-alive"),
        "the 200 advertised keep-alive: {}",
        client.response_text()
    );
    let closed = client.closed_at().expect("idle connection reaped");
    assert!(
        (3_000..6_000).contains(&closed),
        "reaped near the idle timeout, got {closed}"
    );
    assert_eq!(server.stats().idle_closed, 1);
    assert_eq!(server.stats().faults_disconnect, 0, "idle reap is no fault");
    assert_eq!(server.stats().faults_slowloris, 0, "and no 408");
    assert!(server.idle());
}

/// `max_requests_per_conn` bounds reuse: the capping response advertises
/// `Connection: close` and the connection drops, discarding any further
/// pipelined requests.
#[test]
fn request_cap_closes_the_connection() {
    let net = identity_net(4);
    let mut cfg = serve_cfg(4, 2);
    cfg.max_requests_per_conn = 2;
    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);
    let three = pipelined(&[
        get_request_keep_alive("/healthz"),
        get_request_keep_alive("/healthz"),
        get_request_keep_alive("/healthz"),
    ]);
    let client = sim.request_at(0, three);

    let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    drive(&mut server, &clock, &sim, 200, 100);

    assert_eq!(client.statuses(), vec![200, 200], "third request discarded");
    let text = client.response_text();
    assert!(text.contains("Connection: keep-alive"), "first says keep");
    assert!(
        text.contains("Connection: close"),
        "capping response closes"
    );
    let closed = client.closed_at().expect("capped connection closed");
    assert!(closed < 3_000, "closed at the cap, not the idle timeout");
    assert_eq!(server.stats().reused, 1);
    assert!(server.idle());
}

/// A keep-alive client hanging up *between* requests is a clean close —
/// the disconnect fault counter is for clients that vanish mid-request or
/// mid-response.
#[test]
fn keep_alive_hangup_between_requests_is_a_clean_close() {
    let net = identity_net(4);
    let cfg = serve_cfg(4, 2);
    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);
    let client = sim.connect_at(
        0,
        vec![
            (0, Chunk::Bytes(get_request_keep_alive("/healthz"))),
            (2_000, Chunk::Hangup),
        ],
    );

    let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    drive(&mut server, &clock, &sim, 200, 100);

    assert_eq!(client.statuses(), vec![200]);
    assert_eq!(
        server.stats().faults_disconnect,
        0,
        "a polite goodbye is not a fault"
    );
    assert_eq!(server.stats().idle_closed, 0);
    assert!(server.idle());
}

/// Header edge cases through the full server path (not just the parser):
/// a bare-LF head terminator is served, while Transfer-Encoding,
/// duplicate Content-Length, and GET-with-body are all rejected with 400.
#[test]
fn header_edge_cases_through_the_full_server_path() {
    let net = identity_net(4);
    let cfg = serve_cfg(4, 2);
    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);
    let bare_lf = sim.request_at(
        0,
        b"GET /healthz HTTP/1.1\nHost: sim\nConnection: close\n\n".to_vec(),
    );
    let chunked = sim.request_at(
        0,
        b"POST /infer HTTP/1.1\r\nTransfer-Encoding: chunked\r\n\r\n".to_vec(),
    );
    let dup_cl = sim.request_at(
        0,
        b"POST /infer HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc".to_vec(),
    );
    let get_body = sim.request_at(
        0,
        b"GET /healthz HTTP/1.1\r\nContent-Length: 5\r\n\r\nhello".to_vec(),
    );

    let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    drive(&mut server, &clock, &sim, 200, 100);

    assert_eq!(bare_lf.status(), Some(200), "{}", bare_lf.response_text());
    assert_eq!(bare_lf.body(), "ok\n");
    assert_eq!(chunked.status(), Some(400), "{}", chunked.response_text());
    assert!(chunked.body().contains("Transfer-Encoding"));
    assert_eq!(dup_cl.status(), Some(400), "{}", dup_cl.response_text());
    assert!(dup_cl.body().contains("Content-Length"));
    assert_eq!(get_body.status(), Some(400), "{}", get_body.response_text());
    for client in [&chunked, &dup_cl, &get_body] {
        assert!(
            client.response_text().contains("Connection: close"),
            "rejections close the connection"
        );
    }
    assert!(server.idle());
}

/// A backend that fails on command: the shared trigger arms one step
/// failure, simulating a killed engine worker mid-flight.
struct FlakyBackend {
    inner: Box<dyn Backend>,
    fail_at_step: Rc<Cell<Option<u64>>>,
    steps: u64,
}

impl Backend for FlakyBackend {
    fn capacity(&self) -> usize {
        self.inner.capacity()
    }

    fn active(&self) -> usize {
        self.inner.active()
    }

    fn submit(&mut self, sample: &[f32], budget: usize) -> Result<u64> {
        self.inner.submit(sample, budget)
    }

    fn step(&mut self) -> Result<Vec<Completion>> {
        self.steps += 1;
        if self.fail_at_step.get() == Some(self.steps) {
            self.fail_at_step.set(None);
            return Err(TensorError::InvalidArgument {
                detail: "injected: engine worker killed".into(),
            });
        }
        self.inner.step()
    }

    fn engine_steps(&self) -> u64 {
        self.inner.engine_steps()
    }

    fn lane_steps(&self) -> u64 {
        self.inner.lane_steps()
    }
}

/// Runs two concurrent requests, optionally killing the engine mid-flight,
/// and returns (pred, steps, early) per client plus the fault count.
fn run_engine_fault_scenario(fail_at_step: Option<u64>) -> (Vec<(f64, f64, bool)>, u64) {
    let net = identity_net(4);
    let mut cfg = serve_cfg(4, 2);
    cfg.steps_per_tick = 4;
    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);
    let clients = [
        sim.request_at(0, infer_request(&[0.9, 0.1, 0.05, 0.05], None)),
        sim.request_at(0, infer_request(&[0.1, 0.05, 0.1, 0.95], None)),
    ];

    let trigger = Rc::new(Cell::new(fail_at_step));
    let factory = {
        let mut inner = lane_factory(&net, &cfg, Readout::SpikeCount);
        let trigger = Rc::clone(&trigger);
        Box::new(move || -> Box<dyn Backend> {
            Box::new(FlakyBackend {
                inner: inner(),
                fail_at_step: Rc::clone(&trigger),
                steps: 0,
            })
        })
    };
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    drive(&mut server, &clock, &sim, 200, 2_000);

    assert!(server.idle());
    assert_eq!(
        server.lanes_active(),
        0,
        "no lanes leaked across the rebuild"
    );
    let answers = clients
        .iter()
        .map(|c| {
            assert_eq!(c.status(), Some(200), "{}", c.response_text());
            let body = c.body();
            (
                body_field(&body, "pred"),
                body_field(&body, "steps"),
                body_bool(&body, "early"),
            )
        })
        .collect();
    (answers, server.stats().faults_engine)
}

/// Killing the engine mid-flight is survived by rebuild + re-submit, and
/// recovery is deterministic: the answers match a fault-free control run
/// exactly (each lane re-runs from step zero on the fresh backend).
#[test]
fn killed_engine_worker_recovers_with_identical_answers() {
    let (control, control_faults) = run_engine_fault_scenario(None);
    assert_eq!(control_faults, 0);
    // Fail the 4th backend step: both lanes are mid-flight, before exit.
    let (recovered, faults) = run_engine_fault_scenario(Some(4));
    assert_eq!(faults, 1, "exactly one injected fault");
    assert_eq!(
        recovered, control,
        "recovery reproduces the fault-free answers"
    );
    assert_eq!(control[0].0, 0.0, "lane 0 predicts class 0");
    assert_eq!(control[1].0, 3.0, "lane 1 predicts class 3");
}

/// The CI negative control: a request whose body is shorter than its
/// Content-Length answers a 4xx within the virtual-clock timeout — it does
/// not hang the connection or the server.
#[test]
fn truncated_body_answers_4xx_within_timeout() {
    let net = identity_net(4);
    let mut cfg = serve_cfg(4, 2);
    cfg.head_timeout_us = 2_000;
    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);
    let truncated = sim.request_at(
        0,
        b"POST /infer HTTP/1.1\r\nContent-Length: 50\r\n\r\n{\"sample\"".to_vec(),
    );

    let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
    drive(&mut server, &clock, &sim, 200, 30);

    let status = truncated.status().expect("truncated request was answered");
    assert!((400..500).contains(&status), "expected 4xx, got {status}");
    let closed = truncated.closed_at().expect("connection closed");
    assert!(
        closed <= 4_000,
        "answered within the timeout, got {closed}µs"
    );
    assert!(server.idle(), "nothing hangs");
}

/// Each injected fault increments its own `serve.faults.*` telemetry
/// counter (the Prometheus exporter serves these names unchanged).
#[test]
fn fault_counters_reach_the_telemetry_registry() {
    let ((), _lines) = tcl_telemetry::test_support::with_captured(|| {
        tcl_telemetry::test_support::reset_metrics();
        let net = identity_net(4);
        let mut cfg = serve_cfg(4, 2);
        cfg.head_timeout_us = 2_000;
        cfg.max_body = 256;
        let clock = VirtualClock::new();
        let sim = SimNet::new(&clock);
        // One fault of each client-side kind, plus an engine kill.
        let full = infer_request(&[0.9, 0.1, 0.1, 0.1], None);
        let _vanisher = sim.connect_at(
            0,
            vec![(0, Chunk::Bytes(full[..10].to_vec())), (300, Chunk::Hangup)],
        );
        let _loris = sim.connect_at(0, vec![(0, Chunk::Bytes(b"GET /h".to_vec()))]);
        let _big = sim.request_at(
            0,
            b"POST /infer HTTP/1.1\r\nContent-Length: 99999\r\n\r\n".to_vec(),
        );
        let _work = sim.request_at(0, full);

        let trigger = Rc::new(Cell::new(Some(2u64)));
        let factory = {
            let mut inner = lane_factory(&net, &cfg, Readout::SpikeCount);
            let trigger = Rc::clone(&trigger);
            Box::new(move || -> Box<dyn Backend> {
                Box::new(FlakyBackend {
                    inner: inner(),
                    fail_at_step: Rc::clone(&trigger),
                    steps: 0,
                })
            })
        };
        let mut server =
            Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
        drive(&mut server, &clock, &sim, 200, 2_000);

        for (name, expected) in [
            ("serve.faults.disconnect", server.stats().faults_disconnect),
            ("serve.faults.slowloris", server.stats().faults_slowloris),
            ("serve.faults.oversize", server.stats().faults_oversize),
            ("serve.faults.engine", server.stats().faults_engine),
        ] {
            assert!(expected >= 1, "{name}: fault not exercised");
            assert_eq!(
                tcl_telemetry::counter_value(name),
                Some(expected),
                "{name} counter mismatch"
            );
        }
    });
}
