//! Golden continuous-batching trace: a committed capture of one serving
//! tick in which a confident request (B) retires, a queued request (C) is
//! admitted into B's freed lane, and the engine keeps stepping with the
//! long-running request (A) still in flight — lane reuse interleaving two
//! requests within one engine scheduling quantum.
//!
//! Two layers of protection:
//!
//! * **Structural** — the scenario is re-captured live on every run and the
//!   retire→admit→step interleaving is asserted on the span tree, so the
//!   serving loop cannot silently regress to drain-then-refill batching.
//! * **Golden** — the committed fixture's `tcl-obs` summary and critical
//!   path are pinned byte-for-byte, locking the span vocabulary
//!   (`serve.tick` / `serve.admit` / `serve.step` / `serve.retire`) the
//!   trace tooling and dashboards key on. Regenerate with
//!   `TCL_BLESS=1 cargo test -p tcl-serve --test golden_serve`.

mod common;

use std::path::PathBuf;

use common::{drive, identity_net, lane_factory, serve_cfg};
use tcl_obs::{critical, summary, SpanNode, SpanTree, Trace};
use tcl_serve::sim::{infer_request, SimNet};
use tcl_serve::{Server, VirtualClock};
use tcl_snn::Readout;

fn fixture(name: &str) -> PathBuf {
    PathBuf::from(env!("CARGO_MANIFEST_DIR"))
        .join("tests")
        .join(name)
}

/// One tick of continuous batching: A (ambiguous, rides its budget) and B
/// (confident, exits early) admitted together, C queued behind them and
/// admitted mid-tick into B's freed lane. Returns the captured JSONL.
fn capture_scenario() -> Vec<String> {
    let ((), lines) = tcl_telemetry::test_support::with_captured(|| {
        let net = identity_net(4);
        let mut cfg = serve_cfg(4, 2);
        // One tick is enough engine budget to play the whole scenario out.
        cfg.steps_per_tick = 256;
        let clock = VirtualClock::new();
        let sim = SimNet::new(&clock);
        let a = sim.request_at(0, infer_request(&[0.5, 0.5, 0.1, 0.1], None));
        let b = sim.request_at(0, infer_request(&[0.1, 0.85, 0.1, 0.05], None));
        let c = sim.request_at(0, infer_request(&[0.05, 0.1, 0.8, 0.1], None));

        let factory = lane_factory(&net, &cfg, Readout::SpikeCount);
        let mut server =
            Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");
        drive(&mut server, &clock, &sim, 100, 50);
        for (name, client) in [("A", &a), ("B", &b), ("C", &c)] {
            assert_eq!(client.status(), Some(200), "request {name}");
        }
    });
    lines
}

fn attr(node: &SpanNode, key: &str) -> Option<f64> {
    node.span
        .attrs
        .iter()
        .find(|(k, _)| k == key)
        .map(|(_, v)| *v)
}

/// Asserts the continuous-batching interleaving on a span tree: within one
/// `serve.tick`, request 1 retires, request 2 is admitted, and the engine
/// steps again at full occupancy — all before the tick ends.
fn assert_interleaving(tree: &SpanTree) {
    let tick = tree
        .nodes
        .iter()
        .find(|n| {
            n.span.name == "serve.tick"
                && n.children
                    .iter()
                    .any(|&c| tree.nodes[c].span.name == "serve.retire")
        })
        .expect("a tick with retirements");
    // Children are ordered by start time: find retire(req=1), then an
    // admit(req=2) after it, then a step at active=2 after that.
    let children: Vec<&SpanNode> = tick.children.iter().map(|&c| &tree.nodes[c]).collect();
    let retire_b = children
        .iter()
        .position(|n| n.span.name == "serve.retire" && attr(n, "req") == Some(1.0))
        .expect("request 1 (confident) retires inside the tick");
    let admit_c = children
        .iter()
        .skip(retire_b + 1)
        .position(|n| n.span.name == "serve.admit" && attr(n, "req") == Some(2.0))
        .map(|p| retire_b + 1 + p)
        .expect("request 2 admitted after request 1 retired, same tick");
    let resumed = children
        .iter()
        .skip(admit_c + 1)
        .any(|n| n.span.name == "serve.step" && attr(n, "active") == Some(2.0));
    assert!(
        resumed,
        "engine must keep stepping at full occupancy after the mid-tick admit"
    );
    // And the long request (0) is still in flight at that point: its
    // retirement comes after the admit of request 2.
    let retire_a = children
        .iter()
        .position(|n| n.span.name == "serve.retire" && attr(n, "req") == Some(0.0))
        .expect("request 0 retires inside the same tick");
    assert!(
        retire_a > admit_c,
        "request 0 (budget rider) must still be running when request 2 joins"
    );
}

/// The live capture proves lane reuse interleaves two requests within one
/// engine scheduling quantum — on every run, not just in the fixture.
#[test]
fn live_trace_shows_lane_reuse_interleaving() {
    let lines = capture_scenario();
    let trace = Trace::parse(&lines.join("\n")).expect("captured trace parses");
    let tree = SpanTree::build(&trace);
    assert_interleaving(&tree);
}

/// The committed fixture renders to byte-identical summary and critical
/// path, pinning the serving span vocabulary for the trace tooling.
#[test]
fn golden_serve_fixture_renders_stably() {
    if std::env::var("TCL_BLESS").is_ok() {
        let lines = capture_scenario();
        let mut text = lines.join("\n");
        text.push('\n');
        std::fs::write(fixture("fixtures/serve_trace.jsonl"), &text).expect("write fixture");
        let trace = Trace::parse(&text).expect("fresh fixture parses");
        let tree = SpanTree::build(&trace);
        let stats = summary::summarize(&tree);
        std::fs::write(
            fixture("golden/serve_trace.summary"),
            summary::render_table(&stats),
        )
        .expect("write summary golden");
        std::fs::write(
            fixture("golden/serve_trace.critical"),
            critical::render(&critical::critical_path(&tree)),
        )
        .expect("write critical golden");
    }

    let trace = Trace::load(&fixture("fixtures/serve_trace.jsonl")).expect("fixture parses");
    let tree = SpanTree::build(&trace);
    // The fixture itself is a real interleaving capture.
    assert_interleaving(&tree);

    let stats = summary::summarize(&tree);
    let expected_summary =
        std::fs::read_to_string(fixture("golden/serve_trace.summary")).expect("summary golden");
    assert_eq!(summary::render_table(&stats), expected_summary);

    let expected_critical =
        std::fs::read_to_string(fixture("golden/serve_trace.critical")).expect("critical golden");
    assert_eq!(
        critical::render(&critical::critical_path(&tree)),
        expected_critical
    );

    // The span vocabulary the dashboards key on is present.
    for name in ["serve.tick", "serve.admit", "serve.step", "serve.retire"] {
        assert!(
            stats.iter().any(|s| s.name == name),
            "span {name} missing from the fixture summary"
        );
    }
}
