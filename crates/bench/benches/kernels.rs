//! Criterion micro-benchmarks for the numeric substrate: the convolution
//! and matmul kernels that dominate ANN training, the SNN timestep that
//! dominates Table-1 sweeps, and the conversion pass itself.
//!
//! The JSON summary carries a `meta` block (SIMD dispatch level, thread
//! budget, git revision) so recorded numbers state the environment they
//! were measured under; the `*_simd_<level>` rows pin each dispatch level
//! explicitly so per-ISA speedups are visible side by side.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use tcl_core::{Converter, NormStrategy};
use tcl_models::{Architecture, ModelConfig};
use tcl_nn::Mode;
use tcl_snn::{IfNeurons, Readout, ResetMode, SimConfig};
use tcl_tensor::{ops, ops::ConvGeometry, par, simd, Histogram, Parallelism, SeededRng, Tensor};

/// Records the measurement environment into the JSON `meta` block: the
/// dispatch level every non-pinned bench runs at, the thread budget, and
/// the revision the numbers belong to.
fn bench_meta(c: &mut Criterion) {
    c.meta("simd", simd::current().name());
    c.meta("threads", &Parallelism::from_env().threads().to_string());
    let rev = std::process::Command::new("git")
        .args(["rev-parse", "--short", "HEAD"])
        .output()
        .ok()
        .filter(|o| o.status.success())
        .map(|o| String::from_utf8_lossy(&o.stdout).trim().to_string())
        .unwrap_or_else(|| "unknown".to_string());
    c.meta("git_rev", &rev);
}

fn bench_matmul(c: &mut Criterion) {
    let mut rng = SeededRng::new(1);
    let a = rng.uniform_tensor([128, 128], -1.0, 1.0);
    let b = rng.uniform_tensor([128, 128], -1.0, 1.0);
    c.bench_function("matmul_128x128", |bench| {
        bench.iter(|| ops::matmul(&a, &b).unwrap())
    });
}

/// Blocked-vs-naive and serial-vs-parallel at 256³ — the acceptance shape
/// for the cache-blocked kernel rewrite.
fn bench_matmul_kernels(c: &mut Criterion) {
    const N: usize = 256;
    let mut rng = SeededRng::new(9);
    let a: Vec<f32> = (0..N * N).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let b: Vec<f32> = (0..N * N).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let mut out = vec![0.0f32; N * N];
    c.bench_function("matmul_256_naive", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            ops::matmul_into_naive(black_box(&a), black_box(&b), &mut out, N, N, N);
            black_box(out[0])
        })
    });
    let mut out = vec![0.0f32; N * N];
    c.bench_function("matmul_256_sparse_skip", |bench| {
        // The seed's original kernel shape: zero-skip test on every A
        // element with a fully dense A, so the branch only costs. The
        // density gate in `synop` routes this case to the blocked kernel;
        // the row documents why.
        bench.iter(|| {
            out.fill(0.0);
            ops::matmul_into_sparse(black_box(&a), black_box(&b), &mut out, N, N, N);
            black_box(out[0])
        })
    });
    // The sparse kernel in its element: a 10%-density spike raster, below
    // the 1-in-8 routing gate. Compare against matmul_256_blocked_serial
    // (density-independent) to read the win.
    let spikes: Vec<f32> = {
        let mut r = SeededRng::new(11);
        (0..N * N)
            .map(|_| if r.uniform(0.0, 1.0) < 0.1 { 1.0 } else { 0.0 })
            .collect()
    };
    let mut out = vec![0.0f32; N * N];
    c.bench_function("matmul_256_sparse_10pct", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            ops::matmul_into_sparse(black_box(&spikes), black_box(&b), &mut out, N, N, N);
            black_box(out[0])
        })
    });
    let mut out = vec![0.0f32; N * N];
    c.bench_function("matmul_256_blocked_serial", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            ops::matmul_into_with(
                Parallelism::serial(),
                black_box(&a),
                black_box(&b),
                &mut out,
                N,
                N,
                N,
            );
            black_box(out[0])
        })
    });
    let mut out = vec![0.0f32; N * N];
    c.bench_function("matmul_256_blocked_parallel", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            ops::matmul_into_with(
                Parallelism::from_env(),
                black_box(&a),
                black_box(&b),
                &mut out,
                N,
                N,
                N,
            );
            black_box(out[0])
        })
    });
    // One serial row per dispatch level the host offers, so the per-ISA
    // speedup is visible in a single run regardless of TCL_SIMD.
    for level in simd::Level::available() {
        let mut out = vec![0.0f32; N * N];
        c.bench_function(&format!("matmul_256_simd_{}", level.name()), |bench| {
            bench.iter(|| {
                simd::with_level(level, || {
                    out.fill(0.0);
                    ops::matmul_into_with(
                        Parallelism::serial(),
                        black_box(&a),
                        black_box(&b),
                        &mut out,
                        N,
                        N,
                        N,
                    );
                    black_box(out[0])
                })
            })
        });
    }
}

/// The IF membrane update in isolation, per dispatch level: one step over
/// a CNN-6-sized activation bank (batch 4 × 24k neurons).
fn bench_if_step(c: &mut Criterion) {
    let mut rng = SeededRng::new(10);
    let z = rng.uniform_tensor([4, 24_576], -0.3, 1.2);
    for level in simd::Level::available() {
        let mut bank = IfNeurons::new(1.0, ResetMode::Subtract);
        // Prime the membrane state once so every timed step is steady-state.
        bank.step(&z).unwrap();
        c.bench_function(&format!("if_step_98k_simd_{}", level.name()), |bench| {
            bench.iter(|| {
                simd::with_level(level, || {
                    par::with_serial(|| black_box(bank.step(black_box(&z)).unwrap()))
                })
            })
        });
    }
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = SeededRng::new(2);
    let x = rng.uniform_tensor([8, 8, 16, 16], -1.0, 1.0);
    let w = rng.uniform_tensor([16, 8, 3, 3], -1.0, 1.0);
    let bias = rng.uniform_tensor([16], -0.1, 0.1);
    let geom = ConvGeometry::square(3, 1, 1).unwrap();
    c.bench_function("conv2d_im2col_8x8x16x16", |bench| {
        bench.iter(|| ops::conv2d(&x, &w, Some(&bias), geom).unwrap())
    });
    c.bench_function("conv2d_naive_8x8x16x16", |bench| {
        bench.iter(|| ops::conv2d_naive(&x, &w, Some(&bias), geom).unwrap())
    });
    let gout = rng.uniform_tensor([8, 16, 16, 16], -1.0, 1.0);
    c.bench_function("conv2d_backward_8x8x16x16", |bench| {
        bench.iter(|| ops::conv2d_backward(&x, &w, &gout, geom).unwrap())
    });
}

fn bench_ann_forward(c: &mut Criterion) {
    let mut rng = SeededRng::new(3);
    let cfg = ModelConfig::new((3, 16, 16), 10)
        .with_base_width(8)
        .with_clip_lambda(Some(2.0));
    let mut net = Architecture::Vgg16.build(&cfg, &mut rng).unwrap();
    let x = rng.uniform_tensor([4, 3, 16, 16], -1.0, 1.0);
    c.bench_function("vgg16_forward_batch4", |bench| {
        bench.iter(|| net.forward(&x, Mode::Eval).unwrap())
    });
}

fn bench_snn_step(c: &mut Criterion) {
    // Fan-out guard: a batch-4 CNN-6 step (each conv item ≈55k mult-adds)
    // must engage ≥2 workers under a 4-thread budget. This is the geometry
    // whose parallel row once regressed to serial because the per-worker
    // work floor was set too high; fail loudly if the floor creeps back up.
    let min_items = par::min_items_per_worker(55_296);
    assert!(
        Parallelism::new(4).workers_for(4, min_items) >= 2,
        "batch-4 CNN-6 geometry no longer engages multiple workers \
         (min_items_per_worker(55_296) = {min_items}); the par work floor regressed"
    );
    let mut rng = SeededRng::new(4);
    let cfg = ModelConfig::new((3, 16, 16), 10)
        .with_base_width(8)
        .with_clip_lambda(Some(2.0));
    let net = Architecture::Cnn6.build(&cfg, &mut rng).unwrap();
    let calibration = rng.uniform_tensor([16, 3, 16, 16], -1.0, 1.0);
    let conversion = Converter::new(NormStrategy::TrainedClip)
        .convert(&net, &calibration)
        .unwrap();
    let x = rng.uniform_tensor([4, 3, 16, 16], -1.0, 1.0);
    c.bench_function("snn_step_cnn6_batch4", |bench| {
        bench.iter_batched(
            || conversion.snn.clone(),
            |mut snn| {
                for _ in 0..10 {
                    snn.step(&x).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("snn_step_cnn6_batch4_serial", |bench| {
        bench.iter_batched(
            || conversion.snn.clone(),
            |mut snn| {
                par::with_serial(|| {
                    for _ in 0..10 {
                        snn.step(&x).unwrap();
                    }
                })
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_conversion(c: &mut Criterion) {
    let mut rng = SeededRng::new(5);
    let cfg = ModelConfig::new((3, 16, 16), 10)
        .with_base_width(8)
        .with_clip_lambda(Some(2.0));
    let net = Architecture::Vgg16.build(&cfg, &mut rng).unwrap();
    let calibration = rng.uniform_tensor([32, 3, 16, 16], -1.0, 1.0);
    c.bench_function("convert_vgg16_tcl", |bench| {
        bench.iter(|| {
            Converter::new(NormStrategy::TrainedClip)
                .convert(&net, &calibration)
                .unwrap()
        })
    });
}

fn bench_sweep(c: &mut Criterion) {
    let mut rng = SeededRng::new(6);
    let cfg = ModelConfig::new((3, 16, 16), 10)
        .with_base_width(8)
        .with_clip_lambda(Some(2.0));
    let net = Architecture::Cnn6.build(&cfg, &mut rng).unwrap();
    let calibration = rng.uniform_tensor([16, 3, 16, 16], -1.0, 1.0);
    let conversion = Converter::new(NormStrategy::TrainedClip)
        .convert(&net, &calibration)
        .unwrap();
    let images = rng.uniform_tensor([8, 3, 16, 16], -1.0, 1.0);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    let sim = SimConfig::new(vec![25], 8, Readout::SpikeCount).unwrap();
    c.bench_function("snn_sweep_t25_8imgs", |bench| {
        bench.iter_batched(
            || conversion.snn.clone(),
            |snn| tcl_snn::evaluate(&snn, &images, &labels, &sim).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_histogram(c: &mut Criterion) {
    let mut rng = SeededRng::new(7);
    let values: Vec<f32> = (0..65_536).map(|_| rng.uniform(0.0, 4.0)).collect();
    c.bench_function("histogram_record_64k", |bench| {
        bench.iter(|| {
            let mut h = Histogram::new(128, 3.0);
            h.record_all(&values);
            h.quantile(0.999)
        })
    });
}

fn bench_batchnorm_fold(c: &mut Criterion) {
    let mut rng = SeededRng::new(8);
    let cfg = ModelConfig::new((3, 16, 16), 10)
        .with_base_width(8)
        .with_clip_lambda(Some(2.0));
    let mut net = Architecture::ResNet18.build(&cfg, &mut rng).unwrap();
    let x = rng.uniform_tensor([8, 3, 16, 16], -1.0, 1.0);
    net.forward(&x, Mode::Train).unwrap();
    c.bench_function("fold_batch_norm_resnet18", |bench| {
        bench.iter(|| tcl_core::fold_batch_norm(&net).unwrap())
    });
    let _ = Tensor::zeros([1]);
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_meta,
        bench_matmul,
        bench_matmul_kernels,
        bench_if_step,
        bench_conv2d,
        bench_ann_forward,
        bench_snn_step,
        bench_conversion,
        bench_sweep,
        bench_histogram,
        bench_batchnorm_fold
);
criterion_main!(kernels);
