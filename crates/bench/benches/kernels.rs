//! Criterion micro-benchmarks for the numeric substrate: the convolution
//! and matmul kernels that dominate ANN training, the SNN timestep that
//! dominates Table-1 sweeps, and the conversion pass itself.

use criterion::{black_box, criterion_group, criterion_main, BatchSize, Criterion};
use tcl_core::{Converter, NormStrategy};
use tcl_models::{Architecture, ModelConfig};
use tcl_nn::Mode;
use tcl_snn::{Readout, SimConfig};
use tcl_tensor::{ops, ops::ConvGeometry, par, Histogram, Parallelism, SeededRng, Tensor};

fn bench_matmul(c: &mut Criterion) {
    let mut rng = SeededRng::new(1);
    let a = rng.uniform_tensor([128, 128], -1.0, 1.0);
    let b = rng.uniform_tensor([128, 128], -1.0, 1.0);
    c.bench_function("matmul_128x128", |bench| {
        bench.iter(|| ops::matmul(&a, &b).unwrap())
    });
}

/// Blocked-vs-naive and serial-vs-parallel at 256³ — the acceptance shape
/// for the cache-blocked kernel rewrite.
fn bench_matmul_kernels(c: &mut Criterion) {
    const N: usize = 256;
    let mut rng = SeededRng::new(9);
    let a: Vec<f32> = (0..N * N).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let b: Vec<f32> = (0..N * N).map(|_| rng.uniform(-1.0, 1.0)).collect();
    let mut out = vec![0.0f32; N * N];
    c.bench_function("matmul_256_naive", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            ops::matmul_into_naive(black_box(&a), black_box(&b), &mut out, N, N, N);
            black_box(out[0])
        })
    });
    let mut out = vec![0.0f32; N * N];
    c.bench_function("matmul_256_sparse_skip", |bench| {
        // The seed's original kernel: naive loop with a zero-skip test on
        // every A element (here none are zero, so the branch only costs).
        bench.iter(|| {
            out.fill(0.0);
            ops::matmul_into_sparse(black_box(&a), black_box(&b), &mut out, N, N, N);
            black_box(out[0])
        })
    });
    let mut out = vec![0.0f32; N * N];
    c.bench_function("matmul_256_blocked_serial", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            ops::matmul_into_with(
                Parallelism::serial(),
                black_box(&a),
                black_box(&b),
                &mut out,
                N,
                N,
                N,
            );
            black_box(out[0])
        })
    });
    let mut out = vec![0.0f32; N * N];
    c.bench_function("matmul_256_blocked_parallel", |bench| {
        bench.iter(|| {
            out.fill(0.0);
            ops::matmul_into_with(
                Parallelism::from_env(),
                black_box(&a),
                black_box(&b),
                &mut out,
                N,
                N,
                N,
            );
            black_box(out[0])
        })
    });
}

fn bench_conv2d(c: &mut Criterion) {
    let mut rng = SeededRng::new(2);
    let x = rng.uniform_tensor([8, 8, 16, 16], -1.0, 1.0);
    let w = rng.uniform_tensor([16, 8, 3, 3], -1.0, 1.0);
    let bias = rng.uniform_tensor([16], -0.1, 0.1);
    let geom = ConvGeometry::square(3, 1, 1).unwrap();
    c.bench_function("conv2d_im2col_8x8x16x16", |bench| {
        bench.iter(|| ops::conv2d(&x, &w, Some(&bias), geom).unwrap())
    });
    c.bench_function("conv2d_naive_8x8x16x16", |bench| {
        bench.iter(|| ops::conv2d_naive(&x, &w, Some(&bias), geom).unwrap())
    });
    let gout = rng.uniform_tensor([8, 16, 16, 16], -1.0, 1.0);
    c.bench_function("conv2d_backward_8x8x16x16", |bench| {
        bench.iter(|| ops::conv2d_backward(&x, &w, &gout, geom).unwrap())
    });
}

fn bench_ann_forward(c: &mut Criterion) {
    let mut rng = SeededRng::new(3);
    let cfg = ModelConfig::new((3, 16, 16), 10)
        .with_base_width(8)
        .with_clip_lambda(Some(2.0));
    let mut net = Architecture::Vgg16.build(&cfg, &mut rng).unwrap();
    let x = rng.uniform_tensor([4, 3, 16, 16], -1.0, 1.0);
    c.bench_function("vgg16_forward_batch4", |bench| {
        bench.iter(|| net.forward(&x, Mode::Eval).unwrap())
    });
}

fn bench_snn_step(c: &mut Criterion) {
    let mut rng = SeededRng::new(4);
    let cfg = ModelConfig::new((3, 16, 16), 10)
        .with_base_width(8)
        .with_clip_lambda(Some(2.0));
    let net = Architecture::Cnn6.build(&cfg, &mut rng).unwrap();
    let calibration = rng.uniform_tensor([16, 3, 16, 16], -1.0, 1.0);
    let conversion = Converter::new(NormStrategy::TrainedClip)
        .convert(&net, &calibration)
        .unwrap();
    let x = rng.uniform_tensor([4, 3, 16, 16], -1.0, 1.0);
    c.bench_function("snn_step_cnn6_batch4", |bench| {
        bench.iter_batched(
            || conversion.snn.clone(),
            |mut snn| {
                for _ in 0..10 {
                    snn.step(&x).unwrap();
                }
            },
            BatchSize::SmallInput,
        )
    });
    c.bench_function("snn_step_cnn6_batch4_serial", |bench| {
        bench.iter_batched(
            || conversion.snn.clone(),
            |mut snn| {
                par::with_serial(|| {
                    for _ in 0..10 {
                        snn.step(&x).unwrap();
                    }
                })
            },
            BatchSize::SmallInput,
        )
    });
}

fn bench_conversion(c: &mut Criterion) {
    let mut rng = SeededRng::new(5);
    let cfg = ModelConfig::new((3, 16, 16), 10)
        .with_base_width(8)
        .with_clip_lambda(Some(2.0));
    let net = Architecture::Vgg16.build(&cfg, &mut rng).unwrap();
    let calibration = rng.uniform_tensor([32, 3, 16, 16], -1.0, 1.0);
    c.bench_function("convert_vgg16_tcl", |bench| {
        bench.iter(|| {
            Converter::new(NormStrategy::TrainedClip)
                .convert(&net, &calibration)
                .unwrap()
        })
    });
}

fn bench_sweep(c: &mut Criterion) {
    let mut rng = SeededRng::new(6);
    let cfg = ModelConfig::new((3, 16, 16), 10)
        .with_base_width(8)
        .with_clip_lambda(Some(2.0));
    let net = Architecture::Cnn6.build(&cfg, &mut rng).unwrap();
    let calibration = rng.uniform_tensor([16, 3, 16, 16], -1.0, 1.0);
    let conversion = Converter::new(NormStrategy::TrainedClip)
        .convert(&net, &calibration)
        .unwrap();
    let images = rng.uniform_tensor([8, 3, 16, 16], -1.0, 1.0);
    let labels: Vec<usize> = (0..8).map(|i| i % 10).collect();
    let sim = SimConfig::new(vec![25], 8, Readout::SpikeCount).unwrap();
    c.bench_function("snn_sweep_t25_8imgs", |bench| {
        bench.iter_batched(
            || conversion.snn.clone(),
            |snn| tcl_snn::evaluate(&snn, &images, &labels, &sim).unwrap(),
            BatchSize::SmallInput,
        )
    });
}

fn bench_histogram(c: &mut Criterion) {
    let mut rng = SeededRng::new(7);
    let values: Vec<f32> = (0..65_536).map(|_| rng.uniform(0.0, 4.0)).collect();
    c.bench_function("histogram_record_64k", |bench| {
        bench.iter(|| {
            let mut h = Histogram::new(128, 3.0);
            h.record_all(&values);
            h.quantile(0.999)
        })
    });
}

fn bench_batchnorm_fold(c: &mut Criterion) {
    let mut rng = SeededRng::new(8);
    let cfg = ModelConfig::new((3, 16, 16), 10)
        .with_base_width(8)
        .with_clip_lambda(Some(2.0));
    let mut net = Architecture::ResNet18.build(&cfg, &mut rng).unwrap();
    let x = rng.uniform_tensor([8, 3, 16, 16], -1.0, 1.0);
    net.forward(&x, Mode::Train).unwrap();
    c.bench_function("fold_batch_norm_resnet18", |bench| {
        bench.iter(|| tcl_core::fold_batch_norm(&net).unwrap())
    });
    let _ = Tensor::zeros([1]);
}

criterion_group!(
    name = kernels;
    config = Criterion::default().sample_size(20);
    targets = bench_matmul,
        bench_matmul_kernels,
        bench_conv2d,
        bench_ann_forward,
        bench_snn_step,
        bench_conversion,
        bench_sweep,
        bench_histogram,
        bench_batchnorm_fold
);
criterion_main!(kernels);
