//! Shared experiment harness for the table/figure regeneration binaries.
//!
//! Every binary in this crate reproduces one table or figure of the paper
//! (see `DESIGN.md`'s per-experiment index). They share:
//!
//! * a [`Scale`] knob (`TCL_SCALE=quick|standard|full`) that trades runtime
//!   for fidelity without changing the experiment's structure;
//! * the two dataset presets standing in for CIFAR-10 and ImageNet;
//! * a trained-model cache (`TCL_MODEL_DIR`, default `target/tcl-models`)
//!   so Table 1, Figure 1, and the ablations reuse the same checkpoints;
//! * plain-text table formatting and CSV output under `results/`.

#![warn(missing_docs)]
#![forbid(unsafe_code)]

use std::fs;
use std::path::PathBuf;
use tcl_data::{SynthSpec, SynthVision};
use tcl_models::{Architecture, ModelConfig};
use tcl_nn::{load_network, save_network, Network, TrainConfig};
use tcl_tensor::SeededRng;

/// Master seed shared by every harness so experiments are reproducible and
/// mutually consistent.
pub const MASTER_SEED: u64 = 0x0DAC_2021;

/// Experiment size: trades wall-clock for fidelity. The experiment
/// *structure* (architectures, strategies, latency grids) never changes.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum Scale {
    /// Minutes-scale smoke run.
    Quick,
    /// The default; tens of minutes on one core.
    Standard,
    /// Larger datasets and longer training.
    Full,
}

impl Scale {
    /// Reads `TCL_SCALE` (`quick`/`standard`/`full`), defaulting to
    /// [`Scale::Standard`].
    pub fn from_env() -> Self {
        match std::env::var("TCL_SCALE").as_deref() {
            Ok("quick") => Scale::Quick,
            Ok("full") => Scale::Full,
            _ => Scale::Standard,
        }
    }

    /// Dataset size multiplier.
    pub fn data_factor(&self) -> f32 {
        match self {
            Scale::Quick => 0.3,
            Scale::Standard => 1.0,
            Scale::Full => 2.0,
        }
    }

    /// Training epochs.
    pub fn epochs(&self) -> usize {
        match self {
            Scale::Quick => 10,
            Scale::Standard => 30,
            Scale::Full => 60,
        }
    }

    /// Learning-rate milestones (paper-style step schedule scaled down).
    pub fn milestones(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![7],
            Scale::Standard => vec![18, 25],
            Scale::Full => vec![35, 50],
        }
    }

    /// Latency checkpoints for Table-1-style sweeps.
    pub fn checkpoints(&self) -> Vec<usize> {
        match self {
            Scale::Quick => vec![10, 25, 50, 100],
            _ => vec![50, 100, 150, 200, 250],
        }
    }

    /// Number of test images used for SNN latency sweeps. Sweeps cost
    /// `O(test × T × forward)`, so — exactly like the paper's Rueckauer
    /// baseline rows, which report ImageNet numbers "on a subset of 2570
    /// samples" — the harness evaluates SNNs on a test subset at the lower
    /// scales. ANN accuracies are reported on the same subset for a fair
    /// gap comparison.
    pub fn eval_subset(&self) -> usize {
        match self {
            Scale::Quick => 100,
            Scale::Standard => 200,
            Scale::Full => usize::MAX,
        }
    }

    /// Lowercase name (used in cache keys).
    pub fn name(&self) -> &'static str {
        match self {
            Scale::Quick => "quick",
            Scale::Standard => "standard",
            Scale::Full => "full",
        }
    }
}

/// The two evaluation datasets of the paper's Table 1.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum DatasetKind {
    /// CIFAR-10 stand-in.
    Cifar,
    /// ImageNet stand-in (wider activation distributions).
    Imagenet,
}

impl DatasetKind {
    /// Paper's Table 1 heading for this dataset.
    pub fn title(&self) -> &'static str {
        match self {
            DatasetKind::Cifar => "Cifar-10 (synthetic stand-in)",
            DatasetKind::Imagenet => "Imagenet (synthetic stand-in)",
        }
    }

    /// Short name for cache keys and CSV files.
    pub fn name(&self) -> &'static str {
        match self {
            DatasetKind::Cifar => "cifar",
            DatasetKind::Imagenet => "imagenet",
        }
    }

    /// The spec at a given scale.
    pub fn spec(&self, scale: Scale) -> SynthSpec {
        let base = match self {
            DatasetKind::Cifar => SynthSpec::cifar10_like(),
            DatasetKind::Imagenet => SynthSpec::imagenet_like(),
        };
        base.scaled(scale.data_factor())
    }

    /// The paper's initial clipping bound λ₀ (Section 6: 2.0 for Cifar-10,
    /// 4.0 for Imagenet).
    pub fn lambda0(&self) -> f32 {
        match self {
            DatasetKind::Cifar => 2.0,
            DatasetKind::Imagenet => 4.0,
        }
    }

    /// Architectures the paper evaluates on this dataset ("ours" rows).
    pub fn architectures(&self) -> Vec<Architecture> {
        match self {
            DatasetKind::Cifar => vec![
                Architecture::Cnn6,
                Architecture::Vgg16,
                Architecture::ResNet18,
            ],
            DatasetKind::Imagenet => vec![Architecture::Vgg16, Architecture::ResNet34],
        }
    }

    /// Generates the dataset deterministically.
    pub fn generate(&self, scale: Scale) -> SynthVision {
        let seed = match self {
            DatasetKind::Cifar => MASTER_SEED,
            DatasetKind::Imagenet => MASTER_SEED ^ 0x1111_2222,
        };
        SynthVision::generate(&self.spec(scale), seed).expect("valid preset spec")
    }
}

/// Directory for cached trained models.
pub fn model_cache_dir() -> PathBuf {
    std::env::var("TCL_MODEL_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("target/tcl-models"))
}

/// Directory for experiment outputs (CSV files).
pub fn results_dir() -> PathBuf {
    std::env::var("TCL_RESULTS_DIR")
        .map(PathBuf::from)
        .unwrap_or_else(|_| PathBuf::from("results"))
}

/// Trains (or loads from cache) one model.
///
/// The cache key encodes everything that affects the trained weights; rerun
/// with a fresh `TCL_MODEL_DIR` to retrain from scratch.
///
/// Training is crash-safe: full state (parameters, momentum, RNG streams)
/// is checkpointed under `<cache>/<key>.ckpt/` every `TCL_CKPT_EVERY`
/// epochs (default 5), and a killed run resumes bit-exactly from the
/// newest valid snapshot on the next invocation. The checkpoint directory
/// is cleared once the finished model lands in the cache.
///
/// # Panics
///
/// Panics on unrecoverable harness errors (invalid presets, I/O failures) —
/// these binaries are experiment drivers, not library code.
pub fn train_or_load(
    arch: Architecture,
    dataset: DatasetKind,
    data: &SynthVision,
    clip_lambda: Option<f32>,
    scale: Scale,
) -> Network {
    let key = format!(
        "{}-{}-{}-{}-w8-s{}",
        dataset.name(),
        arch.name().to_lowercase().replace([',', ' '], ""),
        match clip_lambda {
            Some(l) => format!("tcl{l}"),
            None => "base".to_string(),
        },
        scale.name(),
        MASTER_SEED,
    );
    let dir = model_cache_dir();
    let path = dir.join(format!("{key}.tcln"));
    if let Ok(mut file) = fs::File::open(&path) {
        if let Ok(net) = load_network(&mut file) {
            tcl_telemetry::log("cache", &format!("loaded {}", path.display()));
            return net;
        }
        tcl_telemetry::log(
            "cache",
            &format!("{} unreadable; retraining", path.display()),
        );
    }
    let (c, h, w) = data.train.image_shape();
    let cfg = ModelConfig::new((c, h, w), data.train.classes())
        .with_base_width(8)
        .with_clip_lambda(clip_lambda);
    let mut rng = SeededRng::new(MASTER_SEED ^ arch.name().len() as u64);
    let mut net = arch
        .build(&cfg, &mut rng)
        .expect("preset architectures build");
    let train_cfg = TrainConfig {
        verbose: true,
        ..TrainConfig::standard(scale.epochs(), 32, 0.05, &scale.milestones())
            .expect("valid schedule")
    };
    tcl_telemetry::log(
        "train",
        &format!(
            "{key}: {} epochs on {} images",
            scale.epochs(),
            data.train.len()
        ),
    );
    let ckpt_dir = dir.join(format!("{key}.ckpt"));
    tcl_core::train_resumable(
        &mut net,
        data.train.images(),
        data.train.labels(),
        Some((data.test.images(), data.test.labels())),
        &train_cfg,
        Some(&ckpt_dir),
    )
    .expect("training succeeds on preset data");
    fs::create_dir_all(&dir).expect("create model cache dir");
    let mut file = fs::File::create(&path).expect("create model cache file");
    save_network(&mut file, &net).expect("serialize trained model");
    tcl_telemetry::log("cache", &format!("saved {}", path.display()));
    // The finished model is cached; its training checkpoints are now stale.
    tcl_nn::checkpoint::clear_store(&ckpt_dir);
    net
}

/// The `--help` text shared by every bench binary.
pub fn help_text(bin: &str, about: &str) -> String {
    format!(
        "{bin} — {about}\n\
         \n\
         usage: {bin} [--resume] [--help]\n\
         \n\
         flags:\n\
         \x20 --resume                       continue an interrupted training run from its\n\
         \x20                                newest valid checkpoint; resume is automatic,\n\
         \x20                                the flag only states the intent explicitly\n\
         \n\
         environment:\n\
         \x20 TCL_SCALE=quick|standard|full  experiment size (default standard)\n\
         \x20 TCL_MODEL_DIR=DIR              trained-model cache (default target/tcl-models)\n\
         \x20 TCL_CKPT_EVERY=N               training checkpoint interval in epochs (default 5)\n\
         \x20 TCL_RESULTS_DIR=DIR            output directory (default results)\n\
         \x20 TCL_TRACE=1|PATH               stream JSONL telemetry to stderr or PATH\n\
         \x20 TCL_METRICS=1                  metrics registry + end-of-run summary\n\
         \x20 TCL_THREADS=N                  worker threads for the compute kernels\n"
    )
}

/// Prints [`help_text`] and returns `true` when the process arguments ask
/// for help (`--help`/`-h`); the binary should then return immediately.
/// Other arguments pass through untouched — some binaries take flags of
/// their own (e.g. `table1 --dataset cifar`).
pub fn help_requested(bin: &str, about: &str) -> bool {
    if std::env::args().skip(1).any(|a| a == "--help" || a == "-h") {
        // Ignore write errors: `--help | grep -q ...` closes the pipe as
        // soon as it matches, and a broken pipe must not become a panic.
        use std::io::Write;
        let _ = writeln!(std::io::stdout(), "{}", help_text(bin, about));
        return true;
    }
    false
}

/// Writes a per-layer conversion diagnostics report under `results/` as
/// `diagnostics_<name>.jsonl` and returns the path.
///
/// # Panics
///
/// Panics on I/O failure (harness context).
pub fn write_diagnostics(name: &str, diag: &tcl_core::ConversionDiagnostics) -> PathBuf {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("diagnostics_{name}.jsonl"));
    diag.write_jsonl(&path).expect("write diagnostics jsonl");
    path
}

/// Renders an aligned text table: `header` then `rows`.
pub fn render_table(header: &[String], rows: &[Vec<String>]) -> String {
    let cols = header.len();
    let mut widths: Vec<usize> = header.iter().map(|h| h.len()).collect();
    for row in rows {
        for (i, cell) in row.iter().enumerate().take(cols) {
            widths[i] = widths[i].max(cell.len());
        }
    }
    let mut out = String::new();
    let fmt_row = |cells: &[String], widths: &[usize]| -> String {
        let mut line = String::new();
        for (i, cell) in cells.iter().enumerate() {
            if i > 0 {
                line.push_str("  ");
            }
            line.push_str(&format!("{:<width$}", cell, width = widths[i]));
        }
        line.trim_end().to_string()
    };
    out.push_str(&fmt_row(header, &widths));
    out.push('\n');
    let total: usize = widths.iter().sum::<usize>() + 2 * (cols - 1);
    out.push_str(&"-".repeat(total));
    out.push('\n');
    for row in rows {
        out.push_str(&fmt_row(row, &widths));
        out.push('\n');
    }
    out
}

/// Writes rows as CSV under `results/` and returns the path.
///
/// # Panics
///
/// Panics on I/O failure (harness context).
pub fn write_csv(name: &str, header: &[String], rows: &[Vec<String>]) -> PathBuf {
    let dir = results_dir();
    fs::create_dir_all(&dir).expect("create results dir");
    let path = dir.join(format!("{name}.csv"));
    let mut text = String::new();
    text.push_str(&header.join(","));
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    fs::write(&path, text).expect("write csv");
    path
}

/// Formats an accuracy as the paper prints them (`92.76%`).
pub fn pct(x: f32) -> String {
    format!("{:.2}%", x * 100.0)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn scale_knobs_are_ordered() {
        assert!(Scale::Quick.epochs() < Scale::Standard.epochs());
        assert!(Scale::Standard.epochs() < Scale::Full.epochs());
        assert!(Scale::Quick.data_factor() < Scale::Full.data_factor());
    }

    #[test]
    fn dataset_presets_match_paper_settings() {
        assert_eq!(DatasetKind::Cifar.lambda0(), 2.0);
        assert_eq!(DatasetKind::Imagenet.lambda0(), 4.0);
        assert_eq!(DatasetKind::Cifar.architectures().len(), 3);
        assert_eq!(DatasetKind::Imagenet.architectures().len(), 2);
    }

    #[test]
    fn table_rendering_aligns_columns() {
        let header = vec!["a".to_string(), "bbbb".to_string()];
        let rows = vec![
            vec!["xxx".to_string(), "y".to_string()],
            vec!["z".to_string(), "wwwww".to_string()],
        ];
        let table = render_table(&header, &rows);
        let lines: Vec<&str> = table.lines().collect();
        assert_eq!(lines.len(), 4);
        assert!(lines[0].starts_with("a    bbbb"));
        assert!(lines[2].starts_with("xxx  y"));
    }

    #[test]
    fn pct_formats_like_the_paper() {
        assert_eq!(pct(0.9276), "92.76%");
        assert_eq!(pct(1.0), "100.00%");
    }

    #[test]
    fn standard_checkpoints_match_table1() {
        assert_eq!(Scale::Standard.checkpoints(), vec![50, 100, 150, 200, 250]);
    }

    #[test]
    fn help_text_names_the_binary_and_knobs() {
        let text = help_text("table1", "regenerates Table 1");
        assert!(text.starts_with("table1 — regenerates Table 1"));
        for knob in [
            "TCL_SCALE",
            "TCL_CKPT_EVERY",
            "TCL_TRACE",
            "TCL_METRICS",
            "TCL_THREADS",
            "--resume",
        ] {
            assert!(text.contains(knob), "missing {knob}");
        }
    }
}
