//! Load-sweep benchmark of the `tcl-serve` continuous-batching service:
//! offered load vs achieved throughput, latency percentiles, and the
//! saturation knee — at fixed accuracy.
//!
//! ```text
//! cargo run --release -p tcl-bench --bin serve_bench
//! ```
//!
//! The sweep drives the *deterministic* serving core (virtual clock +
//! simulated transport, the same substrate as the `tcl-serve` test
//! suites), so queueing behavior — latency growth, queue overflow, the
//! knee — is an exact, reproducible property of the admission policy
//! rather than of the benchmark machine. Wall-clock time is measured
//! per row as well, giving the real engine-side cost of the same work.
//!
//! Offered load is an open-loop arrival process (seeded jitter around the
//! target rate); requests carry no deadlines, so overload shows up as
//! bounded-queue sheds (429) and latency inflation, never as accuracy
//! loss: every completed answer is the same bitwise result batch
//! evaluation would produce, which the accuracy column pins per row.
//!
//! Writes `BENCH_serve.json` at the repo root: one row per offered load
//! plus the saturation-knee row (the first load where the service sheds
//! or p99 latency exceeds 5× the lightest load's p99).

use std::fmt::Write as _;
use std::time::Instant;

use tcl_bench::{help_requested, render_table, Scale};
use tcl_serve::sim::{infer_request, SimNet};
use tcl_serve::{LaneBackend, ServeConfig, Server, VirtualClock};
use tcl_snn::{
    ExitPolicy, IfNeurons, Readout, ResetMode, SpikingLayer, SpikingNetwork, SpikingNode,
    SynapticOp,
};
use tcl_tensor::{SeededRng, Tensor};

const FEATURES: usize = 8;
const LANES: usize = 8;
const SEED: u64 = 0x5E27E;

/// One identity spiking layer: class `k` for the sample whose `k`-th
/// feature dominates, so expected answers are known without training.
fn identity_net() -> SpikingNetwork {
    let mut weight = vec![0.0f32; FEATURES * FEATURES];
    for i in 0..FEATURES {
        weight[i * FEATURES + i] = 1.0;
    }
    let weight = Tensor::from_vec([FEATURES, FEATURES], weight).expect("identity weight");
    SpikingNetwork::new(vec![SpikingNode::Spiking(SpikingLayer::new(
        SynapticOp::Linear { weight, bias: None },
        IfNeurons::new(1.0, ResetMode::Subtract),
    ))])
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        capacity: LANES,
        queue_depth: 2 * LANES,
        feat_dims: vec![FEATURES],
        policy: ExitPolicy::Adaptive {
            patience: 4,
            min_margin: 2.0,
            min_steps: 6,
        },
        max_steps: 100,
        us_per_step: 100,
        steps_per_tick: 1,
        max_body: 4096,
        head_timeout_us: 1_000_000,
        max_conns: 4096,
    }
}

/// The request mix: mostly confident samples (early exit ~10 steps), one
/// in eight a near-tie that rides a long margin climb. Returns (sample,
/// label) for request `i`.
fn sample_for(i: usize, rng: &mut SeededRng) -> (Vec<f32>, usize) {
    let label = rng.below(FEATURES);
    let mut sample = vec![0.05f32; FEATURES];
    if i % 8 == 7 {
        // Near-tie: margin grows slowly, exercising long-running lanes.
        sample[label] = 0.55;
        sample[(label + 1) % FEATURES] = 0.50;
    } else {
        sample[label] = 0.75 + rng.uniform(0.0, 0.2);
    }
    (sample, label)
}

struct LoadRow {
    offered_rps: f64,
    completed: u64,
    shed: u64,
    accuracy: f64,
    p50_us: f64,
    p99_us: f64,
    achieved_rps: f64,
    engine_steps: u64,
    lane_steps: u64,
    wall_ms: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs one offered-load point: `n_req` open-loop arrivals at
/// `offered_rps` against a fresh server; returns the measured row.
fn run_load(offered_rps: f64, n_req: usize) -> LoadRow {
    let cfg = serve_config();
    let net = identity_net();
    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);

    let mut rng = SeededRng::new(SEED);
    let mean_gap_us = 1e6 / offered_rps;
    let mut t = 0f64;
    let mut clients = Vec::with_capacity(n_req);
    let mut labels = Vec::with_capacity(n_req);
    for i in 0..n_req {
        // Jittered open-loop arrivals: uniform in [0.5, 1.5] × mean gap.
        t += mean_gap_us * (0.5 + f64::from(rng.uniform(0.0, 1.0)));
        let (sample, label) = sample_for(i, &mut rng);
        clients.push(sim.request_at(t as u64, infer_request(&sample, None)));
        labels.push(label);
    }

    let factory = {
        let net = net.clone();
        let capacity = cfg.capacity;
        let feat_dims = cfg.feat_dims.clone();
        let policy = cfg.policy;
        Box::new(move || -> Box<dyn tcl_serve::Backend> {
            Box::new(
                LaneBackend::new(&net, capacity, &feat_dims, Readout::SpikeCount, policy)
                    .expect("lane backend"),
            )
        })
    };
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");

    // One engine timestep per 100 virtual µs tick (steps_per_tick ×
    // us_per_step), so the engine's virtual step rate is load-independent
    // and latency resolves at single-step granularity.
    let tick_us = 100;
    let start = Instant::now();
    let mut ticks = 0u64;
    while !(server.idle() && sim.pending() == 0) {
        server.tick();
        clock.advance(tick_us);
        ticks += 1;
        assert!(ticks < 50_000_000, "load sweep failed to drain");
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut latencies = Vec::new();
    let mut correct = 0u64;
    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut last_close = 0u64;
    for (client, label) in clients.iter().zip(&labels) {
        last_close = last_close.max(client.closed_at().unwrap_or(0));
        match client.status() {
            Some(200) => {
                completed += 1;
                let body = tcl_telemetry::json::parse_line(client.body().trim())
                    .expect("response body parses");
                let pred = body
                    .get("pred")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(u64::MAX);
                let latency = body
                    .get("latency_us")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0);
                latencies.push(latency);
                if pred == *label as u64 {
                    correct += 1;
                }
            }
            Some(429) | Some(503) => shed += 1,
            other => panic!("unexpected response status {other:?}"),
        }
    }
    latencies.sort_by(f64::total_cmp);
    let makespan_s = (last_close.max(1) as f64) / 1e6;
    LoadRow {
        offered_rps,
        completed,
        shed,
        accuracy: if completed > 0 {
            correct as f64 / completed as f64
        } else {
            0.0
        },
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        achieved_rps: completed as f64 / makespan_s,
        engine_steps: server.engine_steps(),
        lane_steps: server.lane_steps(),
        wall_ms,
    }
}

fn main() {
    if help_requested(
        "serve_bench",
        "continuous-batching serving load sweep: offered load vs achieved req/s, \
         p50/p99 latency, sheds, and the saturation knee at fixed accuracy \
         (deterministic virtual-clock simulation); writes BENCH_serve.json",
    ) {
        return;
    }
    let scale = Scale::from_env();
    let n_req = match scale {
        Scale::Quick => 150,
        Scale::Standard => 400,
        Scale::Full => 1200,
    };
    let loads: &[f64] = &[250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0];

    println!(
        "== serving load sweep ({} scale: {n_req} requests/row, {LANES} lanes) ==\n",
        scale.name()
    );
    let rows: Vec<LoadRow> = loads.iter().map(|&rps| run_load(rps, n_req)).collect();

    // Saturation knee: the first load that sheds, or whose p99 latency
    // exceeds 5× the lightest load's p99.
    let base_p99 = rows.first().map_or(0.0, |r| r.p99_us);
    let knee = rows
        .iter()
        .position(|r| r.shed > 0 || r.p99_us > 5.0 * base_p99)
        .unwrap_or(rows.len() - 1);

    let header: Vec<String> = [
        "offered_rps",
        "achieved_rps",
        "completed",
        "shed",
        "accuracy",
        "p50_us",
        "p99_us",
        "engine_steps",
        "wall_ms",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                format!("{:.0}{}", r.offered_rps, if i == knee { " *" } else { "" }),
                format!("{:.0}", r.achieved_rps),
                r.completed.to_string(),
                r.shed.to_string(),
                format!("{:.3}", r.accuracy),
                format!("{:.0}", r.p50_us),
                format!("{:.0}", r.p99_us),
                r.engine_steps.to_string(),
                format!("{:.1}", r.wall_ms),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &table));
    println!("* saturation knee");

    // Accuracy is load-invariant by construction (completed answers are
    // the batch-evaluation results); fail loudly if serving ever bends it.
    let acc0 = rows[0].accuracy;
    for r in &rows {
        assert!(
            (r.accuracy - acc0).abs() < 1e-9,
            "accuracy moved under load: {} vs {acc0} at {} rps",
            r.accuracy,
            r.offered_rps
        );
    }

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"workload\": \"identity-{FEATURES} spiking net, {LANES} lanes, adaptive exit \
         (patience 4, margin 2), {n_req} open-loop requests per row ({} scale)\",",
        scale.name(),
    );
    let _ = writeln!(
        json,
        "  \"clock\": \"virtual (deterministic); wall_ms is the real engine cost per row\","
    );
    let _ = writeln!(json, "  \"accuracy_fixed\": {acc0:.4},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"offered_rps\": {:.0}, \"achieved_rps\": {:.1}, \"completed\": {}, \
             \"shed\": {}, \"accuracy\": {:.4}, \"p50_us\": {:.0}, \"p99_us\": {:.0}, \
             \"engine_steps\": {}, \"lane_steps\": {}, \"wall_ms\": {:.1} }}{}",
            r.offered_rps,
            r.achieved_rps,
            r.completed,
            r.shed,
            r.accuracy,
            r.p50_us,
            r.p99_us,
            r.engine_steps,
            r.lane_steps,
            r.wall_ms,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"knee\": {{ \"offered_rps\": {:.0}, \"achieved_rps\": {:.1}, \"p99_us\": {:.0}, \
         \"shed\": {} }}",
        rows[knee].offered_rps, rows[knee].achieved_rps, rows[knee].p99_us, rows[knee].shed,
    );
    let _ = writeln!(json, "}}");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("json: {}", path.display());
}
