//! Load-sweep benchmark of the `tcl-serve` continuous-batching service:
//! offered load vs achieved throughput, latency percentiles, and the
//! saturation knee — at fixed accuracy — plus a keep-alive vs
//! close-per-request comparison and a real-socket soak mode.
//!
//! ```text
//! cargo run --release -p tcl-bench --bin serve_bench          # sweep + comparison, writes BENCH_serve.json
//! cargo run --release -p tcl-bench --bin serve_bench -- --soak  # loopback soak against the real tcl_serve binary
//! ```
//!
//! The sweep and the keep-alive comparison drive the *deterministic*
//! serving core (virtual clock + simulated transport, the same substrate
//! as the `tcl-serve` test suites), so queueing behavior — latency
//! growth, queue overflow, the knee, the reconnect tax — is an exact,
//! reproducible property of the admission policy rather than of the
//! benchmark machine. Wall-clock time is measured per row as well, giving
//! the real engine-side cost of the same work.
//!
//! Offered load in the sweep is an open-loop arrival process (seeded
//! jitter around the target rate); requests carry no deadlines, so
//! overload shows up as bounded-queue sheds (429) and latency inflation,
//! never as accuracy loss: every completed answer is the same bitwise
//! result batch evaluation would produce, which the accuracy column pins
//! per row.
//!
//! The keep-alive comparison is closed-loop at the knee operating point
//! (as many clients as lanes, each sending its next request on seeing the
//! previous answer): one pass reconnecting per request with a modeled
//! handshake gap, one pass reusing a single connection per client. The
//! sustained-rps delta is the reconnect tax keep-alive removes.
//!
//! `--soak` spawns the real `tcl_serve` binary on a loopback socket and
//! replays the same conversation shape over real kept-alive TCP
//! connections (plus a duplicate-Content-Length negative probe and a
//! pipelining probe), comparing achieved p50/p99/shed against a fresh
//! virtual-clock prediction of the identical workload.
//!
//! Writes `BENCH_serve.json` at the repo root: one row per offered load,
//! the saturation-knee row (the first load where the service sheds or p99
//! latency exceeds 5× the lightest load's p99), and the keep-alive
//! comparison. `--soak` writes nothing (its numbers are wall-clock).

use std::fmt::Write as _;
use std::io::{BufRead, BufReader, Read as _, Write as _};
use std::net::TcpStream;
use std::time::{Duration, Instant};

use tcl_bench::{help_requested, render_table, Scale};
use tcl_serve::sim::{infer_request, infer_request_keep_alive, ClientHandle, SimNet};
use tcl_serve::{Clock, LaneBackend, ServeConfig, Server, VirtualClock};
use tcl_snn::{
    ExitPolicy, IfNeurons, Readout, ResetMode, SpikingLayer, SpikingNetwork, SpikingNode,
    SynapticOp,
};
use tcl_tensor::{SeededRng, Tensor};

const FEATURES: usize = 8;
const LANES: usize = 8;
const SEED: u64 = 0x5E27E;
/// Modeled connect handshake (SYN + accept scheduling) charged to every
/// reconnect in the close-per-request pass of the comparison.
const RECONNECT_GAP_US: u64 = 300;

/// One identity spiking layer: class `k` for the sample whose `k`-th
/// feature dominates, so expected answers are known without training.
fn identity_net() -> SpikingNetwork {
    let mut weight = vec![0.0f32; FEATURES * FEATURES];
    for i in 0..FEATURES {
        weight[i * FEATURES + i] = 1.0;
    }
    let weight = Tensor::from_vec([FEATURES, FEATURES], weight).expect("identity weight");
    SpikingNetwork::new(vec![SpikingNode::Spiking(SpikingLayer::new(
        SynapticOp::Linear { weight, bias: None },
        IfNeurons::new(1.0, ResetMode::Subtract),
    ))])
}

fn serve_config() -> ServeConfig {
    ServeConfig {
        capacity: LANES,
        queue_depth: 2 * LANES,
        feat_dims: vec![FEATURES],
        policy: ExitPolicy::Adaptive {
            patience: 4,
            min_margin: 2.0,
            min_steps: 6,
        },
        max_steps: 100,
        us_per_step: 100,
        steps_per_tick: 1,
        max_body: 4096,
        head_timeout_us: 1_000_000,
        max_conns: 4096,
        max_requests_per_conn: 4096,
        idle_timeout_us: 1_000_000,
    }
}

/// Mirrors the `tcl_serve` binary's default demo configuration, so the
/// soak mode's virtual-clock prediction models the process it spawns.
fn binary_config() -> ServeConfig {
    ServeConfig {
        capacity: LANES,
        queue_depth: LANES * 4,
        feat_dims: vec![1, FEATURES],
        policy: ExitPolicy::Adaptive {
            patience: 8,
            min_margin: 2.0,
            min_steps: 16,
        },
        max_steps: 256,
        us_per_step: 50,
        steps_per_tick: 64,
        max_body: 64 * 1024,
        head_timeout_us: 2_000_000,
        max_conns: 256,
        max_requests_per_conn: 256,
        idle_timeout_us: 5_000_000,
    }
}

/// The request mix: mostly confident samples (early exit ~10 steps), one
/// in eight a near-tie that rides a long margin climb. Returns (sample,
/// label) for request `i`.
fn sample_for(i: usize, rng: &mut SeededRng) -> (Vec<f32>, usize) {
    let label = rng.below(FEATURES);
    let mut sample = vec![0.05f32; FEATURES];
    if i % 8 == 7 {
        // Near-tie: margin grows slowly, exercising long-running lanes.
        sample[label] = 0.55;
        sample[(label + 1) % FEATURES] = 0.50;
    } else {
        sample[label] = 0.75 + rng.uniform(0.0, 0.2);
    }
    (sample, label)
}

/// Pre-generated per-client request samples, identical across the
/// comparison passes (and across soak and its prediction) so every mode
/// serves exactly the same work.
fn conversation_samples(clients: usize, per_client: usize) -> Vec<Vec<(Vec<f32>, usize)>> {
    (0..clients)
        .map(|c| {
            let mut rng = SeededRng::new(SEED ^ (c as u64 + 1));
            (0..per_client).map(|r| sample_for(r, &mut rng)).collect()
        })
        .collect()
}

fn lane_backend_factory(cfg: &ServeConfig) -> tcl_serve::BackendFactory {
    let net = identity_net();
    let capacity = cfg.capacity;
    let feat_dims = cfg.feat_dims.clone();
    let policy = cfg.policy;
    Box::new(move || -> Box<dyn tcl_serve::Backend> {
        Box::new(
            LaneBackend::new(&net, capacity, &feat_dims, Readout::SpikeCount, policy)
                .expect("lane backend"),
        )
    })
}

struct LoadRow {
    offered_rps: f64,
    completed: u64,
    shed: u64,
    accuracy: f64,
    p50_us: f64,
    p99_us: f64,
    achieved_rps: f64,
    engine_steps: u64,
    lane_steps: u64,
    wall_ms: f64,
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs one offered-load point: `n_req` open-loop arrivals at
/// `offered_rps` against a fresh server; returns the measured row.
fn run_load(offered_rps: f64, n_req: usize) -> LoadRow {
    let cfg = serve_config();
    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);

    let mut rng = SeededRng::new(SEED);
    let mean_gap_us = 1e6 / offered_rps;
    let mut t = 0f64;
    let mut clients = Vec::with_capacity(n_req);
    let mut labels = Vec::with_capacity(n_req);
    for i in 0..n_req {
        // Jittered open-loop arrivals: uniform in [0.5, 1.5] × mean gap.
        t += mean_gap_us * (0.5 + f64::from(rng.uniform(0.0, 1.0)));
        let (sample, label) = sample_for(i, &mut rng);
        clients.push(sim.request_at(t as u64, infer_request(&sample, None)));
        labels.push(label);
    }

    let factory = lane_backend_factory(&cfg);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");

    // One engine timestep per 100 virtual µs tick (steps_per_tick ×
    // us_per_step), so the engine's virtual step rate is load-independent
    // and latency resolves at single-step granularity.
    let tick_us = 100;
    let start = Instant::now();
    let mut ticks = 0u64;
    while !(server.idle() && sim.pending() == 0) {
        server.tick();
        clock.advance(tick_us);
        ticks += 1;
        assert!(ticks < 50_000_000, "load sweep failed to drain");
    }
    let wall_ms = start.elapsed().as_secs_f64() * 1e3;

    let mut latencies = Vec::new();
    let mut correct = 0u64;
    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut last_close = 0u64;
    for (client, label) in clients.iter().zip(&labels) {
        last_close = last_close.max(client.closed_at().unwrap_or(0));
        match client.status() {
            Some(200) => {
                completed += 1;
                let body = tcl_telemetry::json::parse_line(client.body().trim())
                    .expect("response body parses");
                let pred = body
                    .get("pred")
                    .and_then(|v| v.as_u64())
                    .unwrap_or(u64::MAX);
                let latency = body
                    .get("latency_us")
                    .and_then(|v| v.as_f64())
                    .unwrap_or(0.0);
                latencies.push(latency);
                if pred == *label as u64 {
                    correct += 1;
                }
            }
            Some(429) | Some(503) => shed += 1,
            other => panic!("unexpected response status {other:?}"),
        }
    }
    latencies.sort_by(f64::total_cmp);
    let makespan_s = (last_close.max(1) as f64) / 1e6;
    LoadRow {
        offered_rps,
        completed,
        shed,
        accuracy: if completed > 0 {
            correct as f64 / completed as f64
        } else {
            0.0
        },
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        achieved_rps: completed as f64 / makespan_s,
        engine_steps: server.engine_steps(),
        lane_steps: server.lane_steps(),
        wall_ms,
    }
}

/// One closed-loop conversation pass (keep-alive or close-per-request).
struct ConvRow {
    completed: u64,
    shed: u64,
    reused: u64,
    sustained_rps: f64,
    p50_us: f64,
    p99_us: f64,
    makespan_us: u64,
}

/// Closed-loop conversation on the virtual clock: `clients` simulated
/// clients each send `per_client` requests sequentially, the next request
/// leaving only after the previous answer arrived. With `keep_alive` the
/// whole conversation rides one connection per client (the final request
/// says `Connection: close`); otherwise every request reconnects, paying
/// [`RECONNECT_GAP_US`] — the handshake tax the comparison measures.
fn run_conversation(
    cfg: ServeConfig,
    tick_us: u64,
    keep_alive: bool,
    samples: &[Vec<(Vec<f32>, usize)>],
) -> ConvRow {
    let clients = samples.len();
    let per_client = samples.first().map_or(0, Vec::len);
    let clock = VirtualClock::new();
    let sim = SimNet::new(&clock);

    let request_bytes = |c: usize, r: usize| -> Vec<u8> {
        let (sample, _) = &samples[c][r];
        if keep_alive && r + 1 < per_client {
            infer_request_keep_alive(sample, None)
        } else {
            infer_request(sample, None)
        }
    };

    // Per-client conversation state: every handle opened so far (one for
    // keep-alive, one per request for close mode) and requests sent.
    let mut handles: Vec<Vec<ClientHandle>> = (0..clients)
        .map(|c| vec![sim.request_at(0, request_bytes(c, 0))])
        .collect();
    let mut sent = vec![1usize; clients];

    let factory = lane_backend_factory(&cfg);
    let mut server =
        Server::new(cfg, clock.clone(), Box::new(sim.clone()), factory).expect("server builds");

    let mut ticks = 0u64;
    loop {
        server.tick();
        let now = clock.now_us();
        let mut all_done = true;
        for c in 0..clients {
            let current = handles[c].last().expect("client has a connection");
            if keep_alive {
                if current.closed_at().is_some() {
                    continue; // conversation over (or cut short by an error)
                }
                all_done = false;
                // Send the next request the moment the previous answer is in.
                if current.responses().len() >= sent[c] && sent[c] < per_client {
                    current.send_at(now, request_bytes(c, sent[c]));
                    sent[c] += 1;
                }
            } else if let Some(closed) = current.closed_at() {
                if sent[c] < per_client {
                    all_done = false;
                    let at = now.max(closed) + RECONNECT_GAP_US;
                    let handle = sim.request_at(at, request_bytes(c, sent[c]));
                    handles[c].push(handle);
                    sent[c] += 1;
                }
            } else {
                all_done = false;
            }
        }
        if all_done && server.idle() && sim.pending() == 0 {
            break;
        }
        clock.advance(tick_us);
        ticks += 1;
        assert!(ticks < 50_000_000, "conversation failed to drain");
    }

    let mut latencies = Vec::new();
    let mut completed = 0u64;
    let mut shed = 0u64;
    let mut makespan_us = 0u64;
    for per_client_handles in &handles {
        for handle in per_client_handles {
            makespan_us = makespan_us.max(handle.closed_at().unwrap_or(0));
            for (status, body) in handle.responses() {
                match status {
                    200 => {
                        completed += 1;
                        let body = tcl_telemetry::json::parse_line(body.trim())
                            .expect("response body parses");
                        let latency = body
                            .get("latency_us")
                            .and_then(|v| v.as_f64())
                            .unwrap_or(0.0);
                        latencies.push(latency);
                    }
                    429 | 503 => shed += 1,
                    other => panic!("unexpected response status {other}"),
                }
            }
        }
    }
    latencies.sort_by(f64::total_cmp);
    ConvRow {
        completed,
        shed,
        reused: server.stats().reused,
        sustained_rps: completed as f64 / (makespan_us.max(1) as f64 / 1e6),
        p50_us: percentile(&latencies, 0.50),
        p99_us: percentile(&latencies, 0.99),
        makespan_us,
    }
}

// ---------------------------------------------------------------------------
// Soak mode: the real tcl_serve binary over loopback sockets.
// ---------------------------------------------------------------------------

/// Locates the `tcl_serve` binary next to this one (both land in the same
/// cargo target profile directory).
fn find_tcl_serve() -> Option<std::path::PathBuf> {
    let exe = std::env::current_exe().ok()?;
    let name = if cfg!(windows) {
        "tcl_serve.exe"
    } else {
        "tcl_serve"
    };
    let dir = exe.parent()?;
    [dir.join(name), dir.parent()?.join(name)]
        .into_iter()
        .find(|candidate| candidate.exists())
}

/// Reads exactly one HTTP response from the stream (head + Content-Length
/// body), carrying surplus bytes across calls in `buf`.
fn read_response(stream: &mut TcpStream, buf: &mut Vec<u8>) -> Result<(u16, String), String> {
    let mut chunk = [0u8; 4096];
    loop {
        if let Some((head_len, term_len)) = find_head_end(buf) {
            let head = String::from_utf8_lossy(&buf[..head_len]).into_owned();
            let status: u16 = head
                .lines()
                .next()
                .and_then(|l| l.split_whitespace().nth(1))
                .and_then(|s| s.parse().ok())
                .ok_or_else(|| format!("bad status line in {head:?}"))?;
            let content_length = head
                .lines()
                .filter_map(|l| l.split_once(':'))
                .find(|(k, _)| k.eq_ignore_ascii_case("content-length"))
                .and_then(|(_, v)| v.trim().parse::<usize>().ok())
                .unwrap_or(0);
            let body_start = head_len + term_len;
            while buf.len() < body_start + content_length {
                let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
                if n == 0 {
                    return Err("connection closed mid-body".into());
                }
                buf.extend_from_slice(&chunk[..n]);
            }
            let body =
                String::from_utf8_lossy(&buf[body_start..body_start + content_length]).into_owned();
            buf.drain(..body_start + content_length);
            return Ok((status, body));
        }
        let n = stream.read(&mut chunk).map_err(|e| e.to_string())?;
        if n == 0 {
            return Err("connection closed before response head".into());
        }
        buf.extend_from_slice(&chunk[..n]);
    }
}

fn find_head_end(bytes: &[u8]) -> Option<(usize, usize)> {
    for i in 0..bytes.len() {
        if bytes[i..].starts_with(b"\r\n\r\n") {
            return Some((i, 4));
        }
        if bytes[i..].starts_with(b"\n\n") {
            return Some((i, 2));
        }
    }
    None
}

struct SoakWorker {
    statuses: Vec<u16>,
    latencies_us: Vec<f64>,
    parse_errors: u64,
    late_sheds: u64,
}

/// One soak connection: `per_conn` sequential requests over a single
/// kept-alive TCP stream (the last request closes). Every 4th request
/// carries a generous deadline so the sheds-within-deadline invariant is
/// exercised end to end if the server ever sheds.
fn soak_connection(port: u16, samples: &[(Vec<f32>, usize)]) -> SoakWorker {
    const SOAK_DEADLINE_US: u64 = 500_000;
    let mut worker = SoakWorker {
        statuses: Vec::new(),
        latencies_us: Vec::new(),
        parse_errors: 0,
        late_sheds: 0,
    };
    let mut stream = match TcpStream::connect(("127.0.0.1", port)) {
        Ok(s) => s,
        Err(_) => {
            worker.parse_errors += 1;
            return worker;
        }
    };
    let _ = stream.set_nodelay(true);
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut buf = Vec::new();
    for (r, (sample, _)) in samples.iter().enumerate() {
        let deadline = (r % 4 == 3).then_some(SOAK_DEADLINE_US);
        let req = if r + 1 == samples.len() {
            infer_request(sample, deadline)
        } else {
            infer_request_keep_alive(sample, deadline)
        };
        let start = Instant::now();
        if stream.write_all(&req).is_err() {
            worker.parse_errors += 1;
            break;
        }
        match read_response(&mut stream, &mut buf) {
            Ok((status, _body)) => {
                let elapsed_us = start.elapsed().as_secs_f64() * 1e6;
                worker.statuses.push(status);
                if status == 200 {
                    worker.latencies_us.push(elapsed_us);
                } else if let Some(d) = deadline {
                    // A shed must still answer before the deadline it failed.
                    if elapsed_us >= d as f64 {
                        worker.late_sheds += 1;
                    }
                }
                if status != 200 {
                    break; // non-200 closes the connection
                }
            }
            Err(_) => {
                worker.parse_errors += 1;
                break;
            }
        }
    }
    worker
}

/// The negative probe: duplicate Content-Length must answer 400.
fn soak_duplicate_cl_probe(port: u16) -> Result<u16, String> {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).map_err(|e| e.to_string())?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    stream
        .write_all(b"POST /infer HTTP/1.1\r\nContent-Length: 3\r\nContent-Length: 3\r\n\r\nabc")
        .map_err(|e| e.to_string())?;
    let mut buf = Vec::new();
    read_response(&mut stream, &mut buf).map(|(status, _)| status)
}

/// The pipelining probe: three requests written in one burst must come
/// back as three in-order responses on the same connection.
fn soak_pipeline_probe(port: u16) -> Result<Vec<u16>, String> {
    let mut stream = TcpStream::connect(("127.0.0.1", port)).map_err(|e| e.to_string())?;
    let _ = stream.set_read_timeout(Some(Duration::from_secs(10)));
    let mut burst = Vec::new();
    burst.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: soak\r\n\r\n");
    burst.extend_from_slice(b"GET /stats HTTP/1.1\r\nHost: soak\r\n\r\n");
    burst.extend_from_slice(b"GET /healthz HTTP/1.1\r\nHost: soak\r\nConnection: close\r\n\r\n");
    stream.write_all(&burst).map_err(|e| e.to_string())?;
    let mut buf = Vec::new();
    let mut statuses = Vec::new();
    for _ in 0..3 {
        let (status, _) = read_response(&mut stream, &mut buf)?;
        statuses.push(status);
    }
    Ok(statuses)
}

/// Spawns the real `tcl_serve` binary on an ephemeral loopback port,
/// drives reused connections against it, and compares the achieved
/// numbers with a virtual-clock prediction of the identical workload.
fn run_soak(scale: Scale) {
    let (n_conns, per_conn) = match scale {
        Scale::Quick => (4, 8),
        Scale::Standard => (8, 16),
        Scale::Full => (8, 64),
    };
    let samples = conversation_samples(n_conns, per_conn);

    let bin = find_tcl_serve()
        .expect("tcl_serve binary not found next to serve_bench (build -p tcl-serve first)");
    let mut child = std::process::Command::new(&bin)
        .env("TCL_SERVE_ADDR", "127.0.0.1:0")
        .env("TCL_SERVE_FEATURES", FEATURES.to_string())
        .env("TCL_SERVE_LANES", LANES.to_string())
        .stdout(std::process::Stdio::null())
        .stderr(std::process::Stdio::piped())
        .spawn()
        .expect("spawn tcl_serve");
    let stderr = child.stderr.take().expect("child stderr piped");
    let mut reader = BufReader::new(stderr);
    let mut port = None;
    let wait_until = Instant::now() + Duration::from_secs(10);
    let mut line = String::new();
    while Instant::now() < wait_until {
        line.clear();
        if reader.read_line(&mut line).unwrap_or(0) == 0 {
            break;
        }
        // "[tcl-serve] listening on http://127.0.0.1:PORT/ (...)"
        if let Some(rest) = line.split("http://127.0.0.1:").nth(1) {
            port = rest.split('/').next().and_then(|p| p.parse::<u16>().ok());
            break;
        }
    }
    // Keep draining child stderr so the pipe never backpressures it.
    std::thread::spawn(move || {
        let mut sink = String::new();
        while reader.read_line(&mut sink).map(|n| n > 0).unwrap_or(false) {
            sink.clear();
        }
    });
    let Some(port) = port else {
        let _ = child.kill();
        let _ = child.wait();
        panic!("tcl_serve did not announce a listening port");
    };
    println!("== loopback soak ({} scale: {n_conns} connections × {per_conn} requests, port {port}) ==\n", scale.name());

    let start = Instant::now();
    let workers: Vec<SoakWorker> = std::thread::scope(|scope| {
        let handles: Vec<_> = samples
            .iter()
            .map(|conn_samples| scope.spawn(move || soak_connection(port, conn_samples)))
            .collect();
        handles
            .into_iter()
            .map(|h| h.join().expect("soak worker"))
            .collect()
    });
    let soak_wall_s = start.elapsed().as_secs_f64();

    let dup_status = soak_duplicate_cl_probe(port);
    let pipeline_statuses = soak_pipeline_probe(port);
    let _ = child.kill();
    let _ = child.wait();

    let mut latencies: Vec<f64> = workers
        .iter()
        .flat_map(|w| w.latencies_us.clone())
        .collect();
    latencies.sort_by(f64::total_cmp);
    let completed = latencies.len() as u64;
    let shed = workers
        .iter()
        .flat_map(|w| &w.statuses)
        .filter(|s| **s == 429 || **s == 503)
        .count() as u64;
    let parse_errors: u64 = workers.iter().map(|w| w.parse_errors).sum();
    let late_sheds: u64 = workers.iter().map(|w| w.late_sheds).sum();
    for status in workers.iter().flat_map(|w| &w.statuses) {
        assert!(
            matches!(status, 200 | 429 | 503),
            "soak saw unexpected status {status}"
        );
    }

    // The virtual-clock prediction of the identical workload, on a config
    // mirroring the binary's defaults (50µs steps, adaptive exit 8/2/16)
    // but stepping once per 50µs tick so latency resolves in the deadline
    // currency (one step = us_per_step) instead of collapsing into a
    // single 64-step tick.
    let mut prediction_cfg = binary_config();
    prediction_cfg.steps_per_tick = 1;
    let tick_us = prediction_cfg.us_per_step;
    let predicted = run_conversation(prediction_cfg, tick_us, true, &samples);

    let p50 = percentile(&latencies, 0.50);
    let p99 = percentile(&latencies, 0.99);
    let header: Vec<String> = ["", "completed", "shed", "p50_us", "p99_us"]
        .iter()
        .map(|s| (*s).to_string())
        .collect();
    let table = vec![
        vec![
            "soak (real sockets)".to_string(),
            completed.to_string(),
            shed.to_string(),
            format!("{p50:.0}"),
            format!("{p99:.0}"),
        ],
        vec![
            "virtual prediction".to_string(),
            predicted.completed.to_string(),
            predicted.shed.to_string(),
            format!("{:.0}", predicted.p50_us),
            format!("{:.0}", predicted.p99_us),
        ],
    ];
    println!("{}", render_table(&header, &table));
    println!("soak wall time: {soak_wall_s:.2}s");

    assert_eq!(parse_errors, 0, "soak parse errors");
    println!("soak: parse_errors=0 across {completed} responses on reused connections");
    assert_eq!(late_sheds, 0, "a shed answered after its deadline");
    println!("soak: sheds-within-deadline held ({shed} sheds)");
    assert_eq!(
        completed + shed,
        (n_conns * per_conn) as u64,
        "every request was answered"
    );
    assert_eq!(
        predicted.completed + predicted.shed,
        (n_conns * per_conn) as u64,
        "prediction covers the same request count"
    );
    assert_eq!(
        shed, predicted.shed,
        "real sheds diverged from the virtual-clock prediction"
    );
    // Latency comparison is loose by design: the prediction counts virtual
    // microseconds (one step = exactly us_per_step = 50µs), while the soak
    // counts wall time — real steps cost far less than 50µs, and the
    // binary's 1ms idle-pacing sleep pushes the other way. Same order of
    // magnitude, either direction, is the claim.
    let ratio = (p99 / predicted.p99_us.max(1.0)).max(predicted.p99_us.max(1.0) / p99.max(1.0));
    assert!(
        p99 > 0.0 && predicted.p99_us > 0.0 && ratio < 1000.0,
        "soak p99 {p99:.0}µs implausibly far from predicted {:.0}µs",
        predicted.p99_us
    );
    println!(
        "soak vs prediction: p50 {p50:.0}/{:.0}µs, p99 {p99:.0}/{:.0}µs, shed {shed}/{}",
        predicted.p50_us, predicted.p99_us, predicted.shed
    );

    let dup = dup_status.expect("duplicate-Content-Length probe got a response");
    assert_eq!(dup, 400, "duplicate Content-Length must be rejected");
    println!("soak: duplicate-Content-Length probe -> 400");
    let pipe = pipeline_statuses.expect("pipelining probe got responses");
    assert_eq!(pipe, vec![200, 200, 200], "pipelined responses in order");
    println!("soak: pipelined burst answered in order -> {pipe:?}");
    println!("\nsoak OK");
}

fn main() {
    if help_requested(
        "serve_bench",
        "continuous-batching serving load sweep: offered load vs achieved req/s, \
         p50/p99 latency, sheds, and the saturation knee at fixed accuracy, plus a \
         keep-alive vs close-per-request comparison (deterministic virtual-clock \
         simulation); writes BENCH_serve.json. --soak drives the real tcl_serve \
         binary over loopback sockets instead",
    ) {
        return;
    }
    let scale = Scale::from_env();
    if std::env::args().any(|a| a == "--soak") {
        run_soak(scale);
        return;
    }
    let n_req = match scale {
        Scale::Quick => 150,
        Scale::Standard => 400,
        Scale::Full => 1200,
    };
    let loads: &[f64] = &[250.0, 500.0, 1000.0, 2000.0, 4000.0, 8000.0, 16000.0];

    println!(
        "== serving load sweep ({} scale: {n_req} requests/row, {LANES} lanes) ==\n",
        scale.name()
    );
    let rows: Vec<LoadRow> = loads.iter().map(|&rps| run_load(rps, n_req)).collect();

    // Saturation knee: the first load that sheds, or whose p99 latency
    // exceeds 5× the lightest load's p99.
    let base_p99 = rows.first().map_or(0.0, |r| r.p99_us);
    let knee = rows
        .iter()
        .position(|r| r.shed > 0 || r.p99_us > 5.0 * base_p99)
        .unwrap_or(rows.len() - 1);

    let header: Vec<String> = [
        "offered_rps",
        "achieved_rps",
        "completed",
        "shed",
        "accuracy",
        "p50_us",
        "p99_us",
        "engine_steps",
        "wall_ms",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    let table: Vec<Vec<String>> = rows
        .iter()
        .enumerate()
        .map(|(i, r)| {
            vec![
                format!("{:.0}{}", r.offered_rps, if i == knee { " *" } else { "" }),
                format!("{:.0}", r.achieved_rps),
                r.completed.to_string(),
                r.shed.to_string(),
                format!("{:.3}", r.accuracy),
                format!("{:.0}", r.p50_us),
                format!("{:.0}", r.p99_us),
                r.engine_steps.to_string(),
                format!("{:.1}", r.wall_ms),
            ]
        })
        .collect();
    println!("{}", render_table(&header, &table));
    println!("* saturation knee");

    // Accuracy is load-invariant by construction (completed answers are
    // the batch-evaluation results); fail loudly if serving ever bends it.
    let acc0 = rows[0].accuracy;
    for r in &rows {
        assert!(
            (r.accuracy - acc0).abs() < 1e-9,
            "accuracy moved under load: {} vs {acc0} at {} rps",
            r.accuracy,
            r.offered_rps
        );
    }

    // Keep-alive vs close-per-request, closed-loop at the knee operating
    // point (LANES clients, each waiting for its answer before sending the
    // next request). The delta is the reconnect tax.
    let per_client = (n_req / LANES).max(4);
    let samples = conversation_samples(LANES, per_client);
    let close_row = run_conversation(serve_config(), 100, false, &samples);
    let keep_row = run_conversation(serve_config(), 100, true, &samples);
    println!(
        "\n== keep-alive vs close-per-request ({LANES} closed-loop clients × {per_client} \
         requests, {RECONNECT_GAP_US}µs reconnect gap) ==\n"
    );
    let conv_header: Vec<String> = [
        "mode",
        "completed",
        "shed",
        "reused",
        "sustained_rps",
        "p50_us",
        "p99_us",
        "makespan_ms",
    ]
    .iter()
    .map(|s| (*s).to_string())
    .collect();
    let conv_table: Vec<Vec<String>> = [("close", &close_row), ("keep-alive", &keep_row)]
        .iter()
        .map(|(name, r)| {
            vec![
                (*name).to_string(),
                r.completed.to_string(),
                r.shed.to_string(),
                r.reused.to_string(),
                format!("{:.0}", r.sustained_rps),
                format!("{:.0}", r.p50_us),
                format!("{:.0}", r.p99_us),
                format!("{:.1}", r.makespan_us as f64 / 1e3),
            ]
        })
        .collect();
    println!("{}", render_table(&conv_header, &conv_table));
    let speedup = keep_row.sustained_rps / close_row.sustained_rps.max(1e-9);
    println!("keep-alive sustained-rps speedup: {speedup:.2}x");
    assert!(
        keep_row.sustained_rps > close_row.sustained_rps,
        "keep-alive must sustain more rps than close-per-request \
         ({:.0} vs {:.0})",
        keep_row.sustained_rps,
        close_row.sustained_rps
    );
    assert_eq!(keep_row.completed, close_row.completed, "same served work");
    assert_eq!(
        keep_row.reused,
        (LANES * (per_client - 1)) as u64,
        "every follow-up request rode a reused connection"
    );
    assert_eq!(close_row.reused, 0);

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"workload\": \"identity-{FEATURES} spiking net, {LANES} lanes, adaptive exit \
         (patience 4, margin 2), {n_req} open-loop requests per row ({} scale)\",",
        scale.name(),
    );
    let _ = writeln!(
        json,
        "  \"clock\": \"virtual (deterministic); wall_ms is the real engine cost per row\","
    );
    let _ = writeln!(json, "  \"accuracy_fixed\": {acc0:.4},");
    let _ = writeln!(json, "  \"rows\": [");
    for (i, r) in rows.iter().enumerate() {
        let _ = writeln!(
            json,
            "    {{ \"offered_rps\": {:.0}, \"achieved_rps\": {:.1}, \"completed\": {}, \
             \"shed\": {}, \"accuracy\": {:.4}, \"p50_us\": {:.0}, \"p99_us\": {:.0}, \
             \"engine_steps\": {}, \"lane_steps\": {}, \"wall_ms\": {:.1} }}{}",
            r.offered_rps,
            r.achieved_rps,
            r.completed,
            r.shed,
            r.accuracy,
            r.p50_us,
            r.p99_us,
            r.engine_steps,
            r.lane_steps,
            r.wall_ms,
            if i + 1 == rows.len() { "" } else { "," },
        );
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(
        json,
        "  \"knee\": {{ \"offered_rps\": {:.0}, \"achieved_rps\": {:.1}, \"p99_us\": {:.0}, \
         \"shed\": {} }},",
        rows[knee].offered_rps, rows[knee].achieved_rps, rows[knee].p99_us, rows[knee].shed,
    );
    let _ = writeln!(
        json,
        "  \"keepalive_comparison\": {{ \"clients\": {LANES}, \"requests_per_client\": \
         {per_client}, \"reconnect_gap_us\": {RECONNECT_GAP_US}, \"close\": {{ \
         \"sustained_rps\": {:.1}, \"p50_us\": {:.0}, \"p99_us\": {:.0}, \"makespan_ms\": \
         {:.1} }}, \"keepalive\": {{ \"sustained_rps\": {:.1}, \"p50_us\": {:.0}, \
         \"p99_us\": {:.0}, \"makespan_ms\": {:.1}, \"reused\": {} }}, \
         \"sustained_speedup\": {speedup:.3} }}",
        close_row.sustained_rps,
        close_row.p50_us,
        close_row.p99_us,
        close_row.makespan_us as f64 / 1e3,
        keep_row.sustained_rps,
        keep_row.p50_us,
        keep_row.p99_us,
        keep_row.makespan_us as f64 / 1e3,
        keep_row.reused,
    );
    let _ = writeln!(json, "}}");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_serve.json");
    std::fs::write(&path, json).expect("write BENCH_serve.json");
    println!("json: {}", path.display());
}
