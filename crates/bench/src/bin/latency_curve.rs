//! **Ablation A** — the accuracy/latency trade-off curve behind the paper's
//! motivation (Sections 1 and 7): dense accuracy-vs-T sweeps for all three
//! norm-factor strategies on the same trained networks, plus the firing
//! rate (an energy proxy) at each strategy's operating point. The sweeps
//! run on one persistent [`tcl_snn::Engine`]; the `tcl early-exit` row adds
//! the anytime view of the same curve, with the mean per-sample exit step
//! in the `exit T` column.
//!
//! ```text
//! cargo run --release -p tcl-bench --bin latency_curve
//! ```
//!
//! Output: one curve table per architecture plus
//! `results/latency_curve_<arch>.csv`.

use tcl_bench::{help_requested, pct, render_table, train_or_load, write_csv, DatasetKind, Scale};
use tcl_core::{convert_and_evaluate_with, Converter, NormStrategy};
use tcl_models::Architecture;
use tcl_snn::{Engine, ExitPolicy, Readout, SimConfig};

fn main() {
    if help_requested(
        "latency_curve",
        "dense accuracy-vs-T sweeps for every norm-factor strategy (ablation A)",
    ) {
        return;
    }
    let scale = Scale::from_env();
    let dataset = DatasetKind::Cifar;
    let checkpoints: Vec<usize> = match scale {
        Scale::Quick => vec![1, 2, 5, 10, 20, 40, 80],
        _ => vec![1, 2, 5, 10, 15, 20, 30, 50, 75, 100, 150, 200, 250, 300],
    };
    println!(
        "== latency-accuracy trade-off (scale: {}) ==\n",
        scale.name()
    );
    let data = dataset.generate(scale);
    // One persistent engine across both architectures and all strategies.
    let mut engine = Engine::new();
    let early_exit = ExitPolicy::Adaptive {
        patience: 8,
        min_margin: 2.0,
        min_steps: (checkpoints.last().expect("nonempty") / 4).max(2),
    };
    for arch in [Architecture::Cnn6, Architecture::Vgg16] {
        let tcl_net = train_or_load(arch, dataset, &data, Some(dataset.lambda0()), scale);
        let base_net = train_or_load(arch, dataset, &data, None, scale);
        let calibration = data.train.take(200);
        let eval_set = data.test.take(scale.eval_subset());
        let sim = SimConfig::new(checkpoints.clone(), 50, Readout::SpikeCount)
            .expect("valid checkpoints");
        let mut header = vec!["Method".to_string(), "ANN".to_string()];
        header.extend(checkpoints.iter().map(|t| format!("T={t}")));
        header.push("rate".to_string());
        header.push("exit T".to_string());
        let mut rows = Vec::new();
        for (label, strategy, policy) in [
            ("tcl", NormStrategy::TrainedClip, ExitPolicy::Off),
            ("tcl early-exit", NormStrategy::TrainedClip, early_exit),
            ("max-norm", NormStrategy::MaxActivation, ExitPolicy::Off),
            ("p99.9", NormStrategy::percentile_999(), ExitPolicy::Off),
            ("spike-norm", NormStrategy::SpikeNorm, ExitPolicy::Off),
        ] {
            let mut net = if strategy == NormStrategy::TrainedClip {
                tcl_net.clone()
            } else {
                base_net.clone()
            };
            let report = convert_and_evaluate_with(
                &mut engine,
                &mut net,
                calibration.images(),
                eval_set.images(),
                eval_set.labels(),
                &Converter::new(strategy),
                &sim,
                policy,
            )
            .expect("conversion succeeds");
            let mut row = vec![label.to_string(), pct(report.ann_accuracy)];
            row.extend(report.result.sweep.accuracies.iter().map(|(_, a)| pct(*a)));
            row.push(format!("{:.4}", report.result.sweep.mean_firing_rate));
            if policy.is_adaptive() {
                row.push(format!("{:.1}", report.result.mean_exit_step));
                eprintln!(
                    "[exit] {} / {label}: mean exit T {:.1}, {} steps saved",
                    arch.name(),
                    report.result.mean_exit_step,
                    report.result.saved_steps
                );
            } else {
                row.push("-".to_string());
            }
            rows.push(row);
        }
        println!("--- {} ---", arch.name());
        println!("{}", render_table(&header, &rows));
        let csv = write_csv(
            &format!(
                "latency_curve_{}",
                arch.name().to_lowercase().replace([',', ' '], "")
            ),
            &header,
            &rows,
        );
        println!("csv: {}\n", csv.display());
    }
    tcl_telemetry::emit_summary();
}
