//! **Ablation E** — PACT-style L2 decay on the clipping bound λ.
//!
//! TCL's gradient (Eq. 9) already pushes λ down whenever clipped positions
//! carry positive gradient, but PACT (the quantization technique TCL
//! descends from) additionally regularizes λ with weight decay. This
//! harness sweeps the decay coefficient: stronger decay → smaller trained
//! λ → higher firing rates → better accuracy at tiny T, at some ANN
//! accuracy cost once the decay overwhelms the task gradient.
//!
//! ```text
//! cargo run --release -p tcl-bench --bin lambda_decay
//! ```

use tcl_bench::{help_requested, pct, render_table, write_csv, DatasetKind, Scale, MASTER_SEED};
use tcl_core::{convert_and_evaluate, Converter, NormStrategy};
use tcl_models::{Architecture, ModelConfig};
use tcl_nn::{train, Sgd, StepSchedule, TrainConfig};
use tcl_snn::{Readout, SimConfig};
use tcl_tensor::SeededRng;

fn main() {
    if help_requested(
        "lambda_decay",
        "L2 decay pressure on the trained clipping bounds (ablation E)",
    ) {
        return;
    }
    let scale = Scale::from_env();
    let dataset = DatasetKind::Cifar;
    println!(
        "== λ weight-decay (PACT-style) ablation (scale: {}) ==\n",
        scale.name()
    );
    let data = dataset.generate(scale);
    let (c, h, w) = data.train.image_shape();
    let (t_lo, t_hi) = match scale {
        Scale::Quick => (10, 50),
        _ => (15, 100),
    };
    let header: Vec<String> = [
        "λ decay",
        "mean trained λ",
        "ANN",
        &format!("SNN T={t_lo}"),
        &format!("SNN T={t_hi}"),
        "firing rate",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for decay in [0.0f32, 1e-4, 1e-3, 1e-2] {
        let cfg = ModelConfig::new((c, h, w), data.train.classes())
            .with_base_width(8)
            .with_clip_lambda(Some(dataset.lambda0()));
        let mut rng = SeededRng::new(MASTER_SEED);
        let mut net = Architecture::Cnn6.build(&cfg, &mut rng).expect("build");
        let train_cfg = TrainConfig {
            epochs: scale.epochs(),
            batch_size: 32,
            schedule: StepSchedule::new(0.05, &scale.milestones(), 0.1).expect("schedule"),
            optimizer: Sgd::new(0.05)
                .with_momentum(0.9)
                .with_weight_decay(5e-4)
                .with_lambda_decay(decay),
            shuffle_seed: MASTER_SEED,
            verbose: false,
            augment: None,
        };
        train(
            &mut net,
            data.train.images(),
            data.train.labels(),
            None,
            &train_cfg,
        )
        .expect("train");
        let lambdas = net.clip_lambdas();
        let mean_lambda = lambdas.iter().sum::<f32>() / lambdas.len() as f32;
        let sim = SimConfig::new(vec![t_lo, t_hi], 50, Readout::SpikeCount).expect("sim");
        let eval_set = data.test.take(scale.eval_subset());
        let report = convert_and_evaluate(
            &mut net,
            data.train.take(200).images(),
            eval_set.images(),
            eval_set.labels(),
            &Converter::new(NormStrategy::TrainedClip),
            &sim,
        )
        .expect("convert");
        eprintln!("[done] decay={decay}");
        rows.push(vec![
            format!("{decay}"),
            format!("{mean_lambda:.3}"),
            pct(report.ann_accuracy),
            pct(report.sweep.accuracy_at(t_lo).unwrap_or(0.0)),
            pct(report.sweep.accuracy_at(t_hi).unwrap_or(0.0)),
            format!("{:.4}", report.sweep.mean_firing_rate),
        ]);
    }
    println!("{}", render_table(&header, &rows));
    let csv = write_csv("lambda_decay", &header, &rows);
    println!("csv: {}", csv.display());
    tcl_telemetry::emit_summary();
}
