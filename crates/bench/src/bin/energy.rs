//! **Ablation D** — the energy argument of the paper's introduction:
//! "SNNs have event-driven behaviors, delivering significantly lower power
//! dissipation."
//!
//! We quantify the standard proxy: **synaptic operations**. An ANN
//! inference costs a fixed number of multiply-accumulates (MACs); an SNN
//! costs one accumulate per *spike* per synapse, so its cost scales with
//! the measured firing rates and the latency budget T:
//!
//! ```text
//! ops_SNN(T) ≈ Σ_layers  dense_MACs(layer) × input_density(layer) × T
//! ```
//!
//! where `input_density` is the measured fraction of nonzero inputs per
//! timestep (1.0 for the real-coded first layer; the residual block's
//! internal NS→OS traffic is approximated by the block's input density).
//! The crossover T where the SNN stops being cheaper is exactly the
//! latency/energy trade-off TCL's low norm-factors improve.
//!
//! A second table reports synops *measured* by the engine's `snn.synops`
//! telemetry counter on the TCL conversion, fixed-T vs per-sample early
//! exit — the early-exit saving column is the energy the margin-stability
//! criterion recovers on top of sparsity.
//!
//! ```text
//! cargo run --release -p tcl-bench --bin energy
//! ```

use tcl_bench::{help_requested, pct, render_table, train_or_load, write_csv, DatasetKind, Scale};
use tcl_core::{Converter, NormStrategy};
use tcl_models::Architecture;
use tcl_snn::{Engine, ExitPolicy, Readout, SimConfig, SpikingNetwork, SpikingNode, SynapticOp};
use tcl_tensor::Tensor;

/// Dense MACs for one application of a synaptic operator on `input`.
fn dense_macs(op: &SynapticOp, input: &Tensor) -> u64 {
    match op {
        SynapticOp::Conv { weight, geom, .. } => {
            let (_, c, h, w) = input.shape().as_nchw().expect("conv input is rank 4");
            let (oh, ow) = geom.output_hw(h, w).expect("geometry fits");
            let out_c = weight.dims()[0];
            (oh * ow * out_c * c * geom.kernel_h * geom.kernel_w) as u64
        }
        SynapticOp::Linear { weight, .. } => weight.len() as u64,
    }
}

fn density(x: &Tensor) -> f64 {
    if x.is_empty() {
        return 0.0;
    }
    x.data().iter().filter(|&&v| v != 0.0).count() as f64 / x.len() as f64
}

/// Steps the SNN for `t_steps` on one stimulus, accumulating estimated
/// synaptic operations, and returns (ops, per-inference ANN-equivalent
/// dense MACs).
fn measure_ops(net: &mut SpikingNetwork, input: &Tensor, t_steps: usize) -> (f64, u64) {
    net.reset();
    let mut ops = 0.0f64;
    let mut dense_total = 0u64;
    for step in 0..t_steps {
        let mut x = input.clone();
        for node in net.nodes_mut() {
            match node {
                SpikingNode::Spiking(layer) => {
                    let d = density(&x);
                    let macs = dense_macs(&layer.op, &x);
                    ops += macs as f64 * d;
                    if step == 0 {
                        dense_total += macs;
                    }
                    x = layer.step(&x).expect("step");
                }
                SpikingNode::Residual(block) => {
                    let d = density(&x);
                    let ns_macs = dense_macs(&block.ns_op, &x);
                    let sh_macs = dense_macs(&block.os_shortcut, &x);
                    // NS output feeds os_main; approximate its density by
                    // the block input density (documented estimate).
                    let y = block.step(&x).expect("step");
                    let main_macs = dense_macs(&block.os_main, &y);
                    ops += (ns_macs + sh_macs + main_macs) as f64 * d;
                    if step == 0 {
                        dense_total += ns_macs + sh_macs + main_macs;
                    }
                    x = y;
                }
                other => {
                    x = other.step(&x).expect("step");
                }
            }
        }
    }
    (ops, dense_total)
}

fn main() {
    if help_requested(
        "energy",
        "synaptic-operation counts as an energy proxy (ablation D)",
    ) {
        return;
    }
    // The measured-synops section below reads the `snn.synops` counter the
    // kernels maintain; enable metrics before the first telemetry call
    // initializes the flag from the environment.
    std::env::set_var("TCL_METRICS", "1");
    let scale = Scale::from_env();
    let dataset = DatasetKind::Cifar;
    println!(
        "== synaptic-operation (energy proxy) analysis (scale: {}) ==\n",
        scale.name()
    );
    let data = dataset.generate(scale);
    let t_grid: Vec<usize> = match scale {
        Scale::Quick => vec![10, 25, 50],
        _ => vec![25, 50, 100, 150, 250],
    };
    let header: Vec<String> = {
        let mut h = vec![
            "Network".to_string(),
            "Method".to_string(),
            "ANN MACs".to_string(),
        ];
        h.extend(t_grid.iter().map(|t| format!("ops ratio @T={t}")));
        h
    };
    let mut rows = Vec::new();
    let mut engine = Engine::new();
    let mut measured: Vec<Vec<String>> = Vec::new();
    for arch in [Architecture::Cnn6, Architecture::Vgg16] {
        let tcl_net = train_or_load(arch, dataset, &data, Some(dataset.lambda0()), scale);
        let base_net = train_or_load(arch, dataset, &data, None, scale);
        let calibration = data.train.take(150);
        // Average over a handful of test stimuli.
        let probe = data.test.take(8);
        for (label, strategy) in [
            ("tcl", NormStrategy::TrainedClip),
            ("max-norm", NormStrategy::MaxActivation),
        ] {
            let source = if strategy == NormStrategy::TrainedClip {
                &tcl_net
            } else {
                &base_net
            };
            let conversion = Converter::new(strategy)
                .convert(source, calibration.images())
                .expect("conversion");
            let mut row = vec![arch.name().to_string(), label.to_string()];
            let mut macs_cell = String::new();
            let mut ratios = Vec::new();
            for &t in &t_grid {
                let mut total_ops = 0.0;
                let mut dense = 0u64;
                for i in 0..probe.len() {
                    let x = probe.images().batch_item(i);
                    let mut snn = conversion.snn.clone();
                    let (ops, d) = measure_ops(&mut snn, &x, t);
                    total_ops += ops;
                    dense = d;
                }
                let mean_ops = total_ops / probe.len() as f64;
                if macs_cell.is_empty() {
                    macs_cell = format!("{dense}");
                }
                ratios.push(format!("{:.2}x", mean_ops / dense as f64));
            }
            row.push(macs_cell);
            row.extend(ratios);
            eprintln!("[done] {} / {label}", arch.name());
            rows.push(row);
        }

        // The estimate above is static; the engine also *measures* synaptic
        // operations (nonzero-driven weight touches, via the `snn.synops`
        // counter) and shows what per-sample early exit saves on top.
        let conversion = Converter::new(NormStrategy::TrainedClip)
            .convert(&tcl_net, calibration.images())
            .expect("tcl conversion");
        let eval_set = data.test.take(32);
        let max_t = *t_grid.last().expect("nonempty grid");
        let sim = SimConfig::new(vec![max_t], 16, Readout::SpikeCount).expect("valid config");
        let synops_of = |engine: &mut Engine, policy| {
            let before = tcl_telemetry::counter_value("snn.synops").unwrap_or(0);
            let r = engine
                .evaluate(
                    &conversion.snn,
                    eval_set.images(),
                    eval_set.labels(),
                    &sim,
                    policy,
                )
                .expect("engine evaluation");
            let after = tcl_telemetry::counter_value("snn.synops").unwrap_or(0);
            (r, after - before)
        };
        let (fixed, fixed_ops) = synops_of(&mut engine, ExitPolicy::Off);
        let policy = ExitPolicy::Adaptive {
            patience: 6,
            min_margin: 2.0,
            min_steps: (max_t / 5).max(2),
        };
        let (adaptive, adaptive_ops) = synops_of(&mut engine, policy);
        let saved = 1.0 - adaptive_ops as f64 / fixed_ops.max(1) as f64;
        measured.push(vec![
            arch.name().to_string(),
            format!("{fixed_ops}"),
            pct(fixed.sweep.final_accuracy()),
            format!("{adaptive_ops}"),
            pct(adaptive.adaptive_accuracy),
            format!("{:.1}", adaptive.mean_exit_step),
            format!("{:.1}%", saved * 100.0),
        ]);
    }
    println!("{}", render_table(&header, &rows));
    println!(
        "measured synops through the engine @T={} (32 samples, tcl conversion):",
        t_grid.last().expect("nonempty grid")
    );
    let measured_header: Vec<String> = [
        "Network",
        "fixed synops",
        "fixed acc",
        "early-exit synops",
        "early-exit acc",
        "mean exit T",
        "saved",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    println!("{}", render_table(&measured_header, &measured));
    println!(
        "ops ratio < 1x means the SNN performs fewer synaptic operations than\n\
         one dense ANN inference; TCL's tighter λ raises firing rates, so it\n\
         reaches a target accuracy at smaller T (see table1/latency_curve) at\n\
         a comparable per-step cost.\n"
    );
    let csv = write_csv("energy", &header, &rows);
    println!("csv: {}", csv.display());
    tcl_telemetry::emit_summary();
}
