//! Regenerates **Figure 1** of the paper: the distribution of ANN
//! activations in the 2nd layer of VGG-16 over the whole test set, for the
//! original (unclipped) network and the TCL-trained (clipped) network,
//! plotted in log scale — together with the norm-factor markers the figure
//! discusses (the layer maximum, the 99.9th percentile, and the trained λ).
//!
//! ```text
//! cargo run --release -p tcl-bench --bin figure1
//! ```
//!
//! Output: an ASCII log-density plot, the marker values, both ANN
//! accuracies (the paper's caption reports 92.64% vs 92.93%), and
//! `results/figure1.csv` with the raw histogram series.

use tcl_bench::{
    help_requested, pct, train_or_load, write_csv, write_diagnostics, DatasetKind, Scale,
};
use tcl_core::{
    collect_activation_stats, collect_site_histogram, diagnose_conversion, fold_batch_norm,
    Converter, NormStrategy,
};
use tcl_models::Architecture;
use tcl_nn::evaluate;
use tcl_snn::{Engine, ExitPolicy, Readout, SimConfig};
use tcl_tensor::Histogram;

/// The activation site the paper plots: the 2nd convolution's output.
const SITE: usize = 1;
const BINS: usize = 48;

fn ascii_log_plot(label: &str, hist: &Histogram) {
    println!(
        "  {label} (log-scale counts, {} values):",
        hist.total_count()
    );
    let max_log = hist
        .counts()
        .iter()
        .map(|&c| (c as f64 + 1.0).ln())
        .fold(0.0f64, f64::max);
    for (i, &c) in hist.counts().iter().enumerate() {
        if i % 2 == 1 {
            continue; // halve the rows to keep the plot compact
        }
        let log = (c as f64 + 1.0).ln();
        let width = if max_log > 0.0 {
            ((log / max_log) * 60.0).round() as usize
        } else {
            0
        };
        println!(
            "  {:>6.3} | {:<60} {}",
            hist.bin_center(i),
            "#".repeat(width),
            c
        );
    }
}

fn main() {
    if help_requested(
        "figure1",
        "activation distribution of the 2nd VGG-16 layer with norm-factor \
         markers (paper Figure 1)",
    ) {
        return;
    }
    let scale = Scale::from_env();
    println!("== Figure 1 reproduction (scale: {}) ==", scale.name());
    println!("activation distribution of the 2nd VGG-16 layer, original vs clipped\n");
    let dataset = DatasetKind::Cifar;
    let data = dataset.generate(scale);

    let original = train_or_load(Architecture::Vgg16, dataset, &data, None, scale);
    let clipped = train_or_load(
        Architecture::Vgg16,
        dataset,
        &data,
        Some(dataset.lambda0()),
        scale,
    );

    let acc_original =
        evaluate(&original, data.test.images(), data.test.labels(), 50).expect("ann eval");
    let acc_clipped =
        evaluate(&clipped, data.test.images(), data.test.labels(), 50).expect("ann eval");
    println!(
        "ANN accuracies: original {} | clipped {}  (paper: 92.64% vs 92.93%)\n",
        pct(acc_original),
        pct(acc_clipped)
    );

    // Histograms over the entire test set, on the BN-folded networks (the
    // form the conversion actually normalizes).
    let mut folded_original = fold_batch_norm(&original).expect("fold");
    let mut folded_clipped = fold_batch_norm(&clipped).expect("fold");
    let hist_original =
        collect_site_histogram(&mut folded_original, data.test.images(), 50, SITE, BINS)
            .expect("histogram");
    let hist_clipped =
        collect_site_histogram(&mut folded_clipped, data.test.images(), 50, SITE, BINS)
            .expect("histogram");

    // Norm-factor markers.
    let mut stats =
        collect_activation_stats(&mut folded_original, data.test.images(), 50).expect("stats");
    let max_act = stats[SITE].max();
    let p999 = stats[SITE].quantile(0.999);
    let trained_lambda = clipped.clip_lambdas()[SITE];
    println!("norm-factor markers for this layer:");
    println!("  max activation (Diehl'15 norm-factor):   {max_act:.4}");
    println!("  99.9th percentile (Rueckauer'17):        {p999:.4}");
    println!("  trained clipping bound λ (TCL, ours):    {trained_lambda:.4}\n");

    ascii_log_plot("original (no clipping)", &hist_original);
    println!();
    ascii_log_plot("with trainable clipping", &hist_clipped);

    // CSV: bin centers on the original histogram's scale; the clipped
    // histogram has its own (smaller) scale, so emit both axes.
    let header = vec![
        "bin_center_original".to_string(),
        "count_original".to_string(),
        "bin_center_clipped".to_string(),
        "count_clipped".to_string(),
    ];
    let rows: Vec<Vec<String>> = (0..BINS)
        .map(|i| {
            vec![
                format!("{:.5}", hist_original.bin_center(i)),
                hist_original.counts()[i].to_string(),
                format!("{:.5}", hist_clipped.bin_center(i)),
                hist_clipped.counts()[i].to_string(),
            ]
        })
        .collect();
    let csv = write_csv("figure1", &header, &rows);
    println!("\ncsv: {}", csv.display());
    println!(
        "markers: max={max_act:.4} p99.9={p999:.4} lambda={trained_lambda:.4} \
         ann_original={acc_original:.4} ann_clipped={acc_clipped:.4}"
    );

    // Per-layer conversion diagnostics for the clipped network: the figure
    // argues TCL's tight λ keeps the rate-coding residual small, so record
    // it per site at a short and a long latency window.
    let conversion = Converter::new(NormStrategy::TrainedClip)
        .convert(&clipped, data.train.take(200).images())
        .expect("tcl conversion succeeds on the clipped network");
    let stimulus = data.test.take(4);
    let diag = diagnose_conversion(&clipped, &conversion, stimulus.images(), &[32, 256])
        .expect("diagnostics on the converted network");
    let path = write_diagnostics("figure1", &diag);
    println!(
        "diagnostics: {} (mean residual {:.4} @T=32 -> {:.4} @T=256)",
        path.display(),
        diag.mean_residual(0).unwrap_or(0.0),
        diag.mean_residual(1).unwrap_or(0.0)
    );

    // The same tight-λ story through the inference engine: a tight clipping
    // bound makes the top-1 margin stabilize early, so per-sample early
    // exit retires most samples well before the full latency budget.
    let eval_set = data.test.take(scale.eval_subset());
    let sim = SimConfig::new(scale.checkpoints(), 50, Readout::SpikeCount).expect("valid config");
    let mut engine = Engine::new();
    let fixed = engine
        .evaluate(
            &conversion.snn,
            eval_set.images(),
            eval_set.labels(),
            &sim,
            ExitPolicy::Off,
        )
        .expect("fixed-T sweep");
    let adaptive = engine
        .evaluate(
            &conversion.snn,
            eval_set.images(),
            eval_set.labels(),
            &sim,
            ExitPolicy::Adaptive {
                patience: 8,
                min_margin: 2.0,
                min_steps: sim.checkpoints.last().expect("nonempty checkpoints") / 4,
            },
        )
        .expect("early-exit sweep");
    let exits = adaptive.exited.iter().filter(|&&e| e).count();
    println!(
        "engine: fixed T={} accuracy {} | early-exit accuracy {} \
         (mean exit T {:.1}, {}/{} retired early, {} steps saved)",
        sim.checkpoints.last().expect("nonempty checkpoints"),
        pct(fixed.sweep.final_accuracy()),
        pct(adaptive.adaptive_accuracy),
        adaptive.mean_exit_step,
        exits,
        adaptive.exited.len(),
        adaptive.saved_steps
    );
    tcl_telemetry::emit_summary();
}
