//! Measures the cost of the observability stack itself: what tracing,
//! metrics, and the live HTTP exporter add to a fixed engine workload,
//! plus the per-call cost of *disabled* telemetry (the price every
//! production run pays) and the latency of a `/metrics` scrape.
//!
//! ```text
//! cargo run --release -p tcl-bench --bin obs_bench
//! ```
//!
//! Telemetry gating flags (`TCL_TRACE`, `TCL_METRICS`, `TCL_OBS_ADDR`) are
//! read once per process and latched, so each configuration runs in a
//! fresh subprocess: the parent re-execs itself with `--phase off|trace|
//! metrics|exporter` and a scrubbed environment, each child prints one
//! JSON result line, and the parent folds them into `BENCH_obs.json` at
//! the repo root.
//!
//! The headline claim this bench guards: with no observability env vars
//! set, the stack is off-path — disabled span/counter calls cost
//! nanoseconds and the exporter does not exist. The exporter itself is
//! measured against the metrics-only phase (both run with `TCL_METRICS=1`;
//! the only difference is the attached server), so its reported overhead
//! isolates the serving thread + scrapes rather than the cost of the
//! metrics registry — that cost is what the metrics phase reports.

use std::fmt::Write as _;
use std::io::{Read as _, Write as _};
use std::sync::Arc;
use std::time::Instant;
use tcl_bench::{help_requested, train_or_load, DatasetKind, Scale};
use tcl_core::{Converter, NormStrategy};
use tcl_models::Architecture;
use tcl_snn::{Engine, ExitPolicy, Readout, SimConfig};

const RESULT_MARKER: &str = "OBS_BENCH_RESULT ";
const EVAL_REPEATS: usize = 3;
const SCRAPES: usize = 50;

/// The engine workload every phase runs: convert the cached CNN-6 and
/// evaluate it `EVAL_REPEATS` times on the shared engine. Returns the
/// timed wall milliseconds (excludes data generation, training/loading,
/// conversion, and pool warmup).
fn workload(scale: Scale) -> f64 {
    let dataset = DatasetKind::Cifar;
    let data = dataset.generate(scale);
    let net = train_or_load(
        Architecture::Cnn6,
        dataset,
        &data,
        Some(dataset.lambda0()),
        scale,
    );
    let calibration = data.train.take(200);
    let eval_set = data.test.take(scale.eval_subset().min(128));
    let sim = SimConfig::new(vec![16, 32], 25, Readout::SpikeCount).expect("valid config");
    let conversion = Converter::new(NormStrategy::TrainedClip)
        .convert(&net, calibration.images())
        .expect("tcl conversion");
    let snn = Arc::new(conversion.snn);
    let mut engine = Engine::new();
    let warmup = SimConfig::new(vec![4], 25, Readout::SpikeCount).expect("valid config");
    engine
        .evaluate_shared(
            &snn,
            eval_set.images(),
            eval_set.labels(),
            &warmup,
            ExitPolicy::Off,
        )
        .expect("warmup");
    let start = Instant::now();
    for _ in 0..EVAL_REPEATS {
        engine
            .evaluate_shared(
                &snn,
                eval_set.images(),
                eval_set.labels(),
                &sim,
                ExitPolicy::Off,
            )
            .expect("engine evaluation");
    }
    start.elapsed().as_secs_f64() * 1e3
}

/// ns/op of telemetry calls on the disabled path (the cost baked into
/// every untelemetered run). Only meaningful in the `off` phase, where the
/// gating flags latched false.
fn micro_disabled() -> (f64, f64) {
    const ITERS: u64 = 1_000_000;
    let start = Instant::now();
    for _ in 0..ITERS {
        let _guard = tcl_telemetry::span("bench.disabled");
    }
    let span_ns = start.elapsed().as_secs_f64() * 1e9 / ITERS as f64;
    let start = Instant::now();
    for i in 0..ITERS {
        tcl_telemetry::counter_add("bench.disabled", i & 1);
    }
    let counter_ns = start.elapsed().as_secs_f64() * 1e9 / ITERS as f64;
    (span_ns, counter_ns)
}

/// Scrape `/metrics` once, returning microseconds to a complete response.
fn scrape_us(addr: std::net::SocketAddr) -> f64 {
    let start = Instant::now();
    let mut conn = std::net::TcpStream::connect(addr).expect("connect exporter");
    conn.write_all(b"GET /metrics HTTP/1.1\r\nHost: bench\r\n\r\n")
        .expect("write request");
    let mut body = String::new();
    conn.read_to_string(&mut body).expect("read response");
    assert!(body.starts_with("HTTP/1.1 200"), "scrape failed: {body}");
    start.elapsed().as_secs_f64() * 1e6
}

fn percentile(sorted: &[f64], q: f64) -> f64 {
    if sorted.is_empty() {
        return 0.0;
    }
    let rank = ((q * sorted.len() as f64).ceil() as usize).clamp(1, sorted.len());
    sorted[rank - 1]
}

/// Runs one phase in-process and prints the marker line the parent parses.
fn run_phase(phase: &str, scale: Scale) {
    let mut extra = String::new();
    match phase {
        "off" => {
            let (span_ns, counter_ns) = micro_disabled();
            let _ = write!(
                extra,
                ",\"disabled_span_ns\":{span_ns:.2},\"disabled_counter_ns\":{counter_ns:.2}"
            );
        }
        "trace" | "metrics" | "exporter" => {}
        other => {
            eprintln!("unknown phase {other:?}");
            std::process::exit(2);
        }
    }
    // The exporter phase serves scrapes concurrently with the workload.
    let exporter = (phase == "exporter")
        .then(|| tcl_obs::serve("127.0.0.1:0").expect("bind exporter on loopback"));
    let wall_ms = workload(scale);
    if let Some(exporter) = &exporter {
        let mut lat: Vec<f64> = (0..SCRAPES).map(|_| scrape_us(exporter.addr())).collect();
        lat.sort_by(f64::total_cmp);
        let _ = write!(
            extra,
            ",\"scrapes\":{SCRAPES},\"scrape_p50_us\":{:.1},\"scrape_p99_us\":{:.1}",
            percentile(&lat, 0.50),
            percentile(&lat, 0.99),
        );
    }
    if phase == "trace" {
        tcl_telemetry::flush();
        if let Ok(path) = std::env::var("TCL_TRACE") {
            if let Ok(meta) = std::fs::metadata(&path) {
                let _ = write!(extra, ",\"trace_bytes\":{}", meta.len());
            }
        }
    }
    println!("{RESULT_MARKER}{{\"name\":\"{phase}\",\"wall_ms\":{wall_ms:.1}{extra}}}");
}

/// Re-execs this binary for `phase` with a scrubbed telemetry environment
/// plus `env`, and returns the child's parsed result line.
fn spawn_phase(phase: &str, env: &[(&str, String)]) -> tcl_telemetry::json::JsonValue {
    let exe = std::env::current_exe().expect("current exe");
    let mut cmd = std::process::Command::new(exe);
    cmd.arg("--phase").arg(phase);
    for var in [
        "TCL_TRACE",
        "TCL_METRICS",
        "TCL_OBS_ADDR",
        "TCL_TRACE_MAX_MB",
    ] {
        cmd.env_remove(var);
    }
    for (k, v) in env {
        cmd.env(k, v);
    }
    let out = cmd.output().expect("spawn phase subprocess");
    if !out.status.success() {
        eprintln!("{}", String::from_utf8_lossy(&out.stderr));
        panic!("phase {phase} failed with {:?}", out.status);
    }
    let stdout = String::from_utf8_lossy(&out.stdout);
    let line = stdout
        .lines()
        .find_map(|l| l.strip_prefix(RESULT_MARKER))
        .unwrap_or_else(|| panic!("phase {phase} printed no result line:\n{stdout}"));
    tcl_telemetry::json::parse_line(line).expect("phase result parses")
}

fn f64_of(v: &tcl_telemetry::json::JsonValue, key: &str) -> f64 {
    v.get(key).and_then(|x| x.as_f64()).unwrap_or(0.0)
}

fn main() {
    if help_requested(
        "obs_bench",
        "observability overhead: tracing off/on and live exporter attached \
         (wall-clock deltas, disabled-path ns/op, /metrics scrape latency); \
         writes BENCH_obs.json",
    ) {
        return;
    }
    let scale = Scale::from_env();
    let args: Vec<String> = std::env::args().collect();
    if let Some(i) = args.iter().position(|a| a == "--phase") {
        let phase = args.get(i + 1).map(String::as_str).unwrap_or("");
        run_phase(phase, scale);
        return;
    }

    println!("== observability overhead (scale: {}) ==\n", scale.name());
    let trace_path = std::env::temp_dir().join("tcl_obs_bench_trace.jsonl");
    let _ = std::fs::remove_file(&trace_path);
    println!("phase 1/4: telemetry off (baseline + disabled-path micro)");
    let off = spawn_phase("off", &[]);
    println!("phase 2/4: TCL_TRACE + TCL_METRICS on");
    let trace = spawn_phase(
        "trace",
        &[
            ("TCL_TRACE", trace_path.display().to_string()),
            ("TCL_METRICS", "1".to_string()),
        ],
    );
    println!("phase 3/4: TCL_METRICS only (exporter control)");
    let metrics = spawn_phase("metrics", &[("TCL_METRICS", "1".to_string())]);
    println!("phase 4/4: metrics + live exporter, {SCRAPES} scrapes");
    let exporter = spawn_phase("exporter", &[("TCL_METRICS", "1".to_string())]);
    let _ = std::fs::remove_file(&trace_path);

    let off_ms = f64_of(&off, "wall_ms");
    let trace_ms = f64_of(&trace, "wall_ms");
    let metrics_ms = f64_of(&metrics, "wall_ms");
    let exporter_ms = f64_of(&exporter, "wall_ms");
    let pct = |ms: f64, base: f64| {
        if base > 0.0 {
            100.0 * (ms - base) / base
        } else {
            0.0
        }
    };
    let trace_pct = pct(trace_ms, off_ms);
    let metrics_pct = pct(metrics_ms, off_ms);
    // The exporter phase differs from the metrics phase only by the
    // attached server, so this delta is the exporter's own cost.
    let exporter_pct = pct(exporter_ms, metrics_ms);

    println!("\nbaseline      {off_ms:9.1} ms  (engine workload, telemetry off)");
    println!("tracing on    {trace_ms:9.1} ms  ({trace_pct:+.2}% vs off)");
    println!("metrics on    {metrics_ms:9.1} ms  ({metrics_pct:+.2}% vs off)");
    println!("exporter      {exporter_ms:9.1} ms  ({exporter_pct:+.2}% vs metrics-only)");
    println!(
        "disabled span {:.2} ns/op, disabled counter {:.2} ns/op",
        f64_of(&off, "disabled_span_ns"),
        f64_of(&off, "disabled_counter_ns"),
    );
    println!(
        "scrape latency p50 {:.1} us, p99 {:.1} us over {} scrapes",
        f64_of(&exporter, "scrape_p50_us"),
        f64_of(&exporter, "scrape_p99_us"),
        SCRAPES,
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"workload\": \"cifar_synth cnn6 ({} scale, {EVAL_REPEATS}x engine evaluate, fixed T=32)\",",
        scale.name(),
    );
    let _ = writeln!(json, "  \"baseline\": {{ \"wall_ms\": {off_ms:.1} }},");
    let _ = writeln!(
        json,
        "  \"tracing\": {{ \"wall_ms\": {trace_ms:.1}, \"overhead_pct\": {trace_pct:.2}, \"trace_bytes\": {} }},",
        f64_of(&trace, "trace_bytes") as u64,
    );
    let _ = writeln!(
        json,
        "  \"metrics\": {{ \"wall_ms\": {metrics_ms:.1}, \"overhead_pct\": {metrics_pct:.2} }},",
    );
    let _ = writeln!(
        json,
        "  \"exporter\": {{ \"wall_ms\": {exporter_ms:.1}, \"overhead_pct_vs_metrics\": {exporter_pct:.2}, \
         \"scrapes\": {SCRAPES}, \"scrape_p50_us\": {:.1}, \"scrape_p99_us\": {:.1} }},",
        f64_of(&exporter, "scrape_p50_us"),
        f64_of(&exporter, "scrape_p99_us"),
    );
    let _ = writeln!(
        json,
        "  \"disabled_path\": {{ \"span_ns\": {:.2}, \"counter_ns\": {:.2} }},",
        f64_of(&off, "disabled_span_ns"),
        f64_of(&off, "disabled_counter_ns"),
    );
    let _ = writeln!(
        json,
        "  \"off_path_claim\": \"exporter overhead {} 1% of metrics-only wall time\"",
        // Signed: a negative delta is run noise and still means "no cost".
        if exporter_pct < 1.0 { "<" } else { ">=" },
    );
    let _ = writeln!(json, "}}");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_obs.json");
    std::fs::write(&path, json).expect("write BENCH_obs.json");
    println!("json: {}", path.display());
}
