//! Benchmarks the persistent inference engine: fixed-T sweeps vs per-sample
//! early exit on the Table-1 mini workload (TCL-trained CNN-6), measuring
//! wall-clock time, measured synaptic operations (the `snn.synops` telemetry
//! counter), and the mean number of simulated timesteps per sample.
//!
//! ```text
//! cargo run --release -p tcl-bench --bin engine_bench
//! ```
//!
//! Output: a candidate table on stdout and `BENCH_engine.json` at the repo
//! root. The JSON records the fixed-T=256 reference, every early-exit
//! policy candidate, and the selected operating point (the candidate that
//! saves the most steps while staying within 0.2% of the fixed accuracy).

use std::fmt::Write as _;
use std::sync::Arc;
use std::time::Instant;
use tcl_bench::{help_requested, pct, render_table, train_or_load, DatasetKind, Scale};
use tcl_core::{Converter, NormStrategy};
use tcl_models::Architecture;
use tcl_snn::{Engine, EngineResult, ExitPolicy, Readout, SimConfig};

const CHECKPOINTS: [usize; 4] = [32, 64, 128, 256];

/// One timed engine evaluation: result + wall-clock + measured synops.
struct Run {
    name: &'static str,
    policy: ExitPolicy,
    result: EngineResult,
    wall_ms: f64,
    synops: u64,
}

fn policy_json(policy: ExitPolicy) -> String {
    match policy {
        ExitPolicy::Off => "{ \"mode\": \"off\" }".to_string(),
        ExitPolicy::Adaptive {
            patience,
            min_margin,
            min_steps,
        } => format!(
            "{{ \"mode\": \"adaptive\", \"patience\": {patience}, \
             \"min_margin\": {min_margin:.1}, \"min_steps\": {min_steps} }}"
        ),
    }
}

fn run_json(run: &Run, max_t: usize) -> String {
    let exits = run.result.exited.iter().filter(|&&e| e).count();
    let mut s = String::new();
    let _ = writeln!(s, "    {{");
    let _ = writeln!(s, "      \"name\": \"{}\",", run.name);
    let _ = writeln!(s, "      \"policy\": {},", policy_json(run.policy));
    let _ = writeln!(
        s,
        "      \"accuracy\": {:.4},",
        if run.policy.is_adaptive() {
            run.result.adaptive_accuracy
        } else {
            run.result.sweep.final_accuracy()
        }
    );
    let _ = writeln!(
        s,
        "      \"mean_exit_step\": {:.2},",
        run.result.mean_exit_step
    );
    let _ = writeln!(
        s,
        "      \"early_exits\": {exits}, \"samples\": {},",
        run.result.exited.len()
    );
    let _ = writeln!(s, "      \"saved_steps\": {},", run.result.saved_steps);
    let _ = writeln!(
        s,
        "      \"step_reduction\": {:.4},",
        1.0 - run.result.mean_exit_step as f64 / max_t as f64
    );
    let _ = writeln!(s, "      \"wall_ms\": {:.1},", run.wall_ms);
    let _ = writeln!(s, "      \"synops\": {}", run.synops);
    let _ = write!(s, "    }}");
    s
}

fn main() {
    // The synops comparison reads the `snn.synops` counter; enable metrics
    // before the first telemetry call initializes the flag from the
    // environment.
    std::env::set_var("TCL_METRICS", "1");
    if help_requested(
        "engine_bench",
        "fixed-T vs early-exit engine comparison (wall-clock, synops, \
         mean exit step); writes BENCH_engine.json",
    ) {
        return;
    }
    let scale = Scale::from_env();
    // Live metrics endpoint while the bench is in flight (TCL_OBS_ADDR
    // opt-in); shut down on drop at the end of main.
    let _exporter = tcl_obs::serve_from_env();
    let dataset = DatasetKind::Cifar;
    let max_t = *CHECKPOINTS.last().expect("nonempty checkpoints");
    println!(
        "== engine benchmark: fixed T={max_t} vs early exit (scale: {}) ==\n",
        scale.name()
    );
    let data = dataset.generate(scale);
    let net = train_or_load(
        Architecture::Cnn6,
        dataset,
        &data,
        Some(dataset.lambda0()),
        scale,
    );
    let calibration = data.train.take(200);
    let eval_set = data.test.take(scale.eval_subset());
    let sim = SimConfig::new(CHECKPOINTS.to_vec(), 50, Readout::SpikeCount).expect("valid config");
    let ann_accuracy = tcl_nn::evaluate(&net, eval_set.images(), eval_set.labels(), sim.batch_size)
        .expect("ann evaluation");
    let conversion = Converter::new(NormStrategy::TrainedClip)
        .convert(&net, calibration.images())
        .expect("tcl conversion");
    let snn = Arc::new(conversion.snn);

    let mut engine = Engine::new();
    // Warm the pool once (spawns workers, clones per-worker replicas) so the
    // timed runs measure steady-state inference, not setup.
    let warmup = SimConfig::new(vec![4], 50, Readout::SpikeCount).expect("valid config");
    engine
        .evaluate_shared(
            &snn,
            eval_set.images(),
            eval_set.labels(),
            &warmup,
            ExitPolicy::Off,
        )
        .expect("warmup");

    let timed = |engine: &mut Engine, name: &'static str, policy: ExitPolicy| -> Run {
        let before = tcl_telemetry::counter_value("snn.synops").unwrap_or(0);
        let start = Instant::now();
        let result = engine
            .evaluate_shared(&snn, eval_set.images(), eval_set.labels(), &sim, policy)
            .expect("engine evaluation");
        let wall_ms = start.elapsed().as_secs_f64() * 1e3;
        let synops = tcl_telemetry::counter_value("snn.synops").unwrap_or(0) - before;
        eprintln!("[run] {name}: {wall_ms:.0} ms, {synops} synops");
        Run {
            name,
            policy,
            result,
            wall_ms,
            synops,
        }
    };

    let fixed = timed(&mut engine, "fixed", ExitPolicy::Off);
    let candidates: Vec<Run> = [
        ("aggressive", 4, 2.0, 16),
        ("balanced", 8, 2.0, 32),
        ("conservative", 16, 4.0, 32),
        ("cautious", 32, 4.0, 64),
    ]
    .into_iter()
    .map(|(name, patience, min_margin, min_steps)| {
        timed(
            &mut engine,
            name,
            ExitPolicy::Adaptive {
                patience,
                min_margin,
                min_steps,
            },
        )
    })
    .collect();

    let fixed_acc = fixed.result.sweep.final_accuracy();
    let header: Vec<String> = [
        "policy",
        "accuracy",
        "Δacc",
        "exit T",
        "step red.",
        "wall ms",
        "synops",
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = vec![vec![
        "fixed".to_string(),
        pct(fixed_acc),
        "-".to_string(),
        format!("{max_t}"),
        "-".to_string(),
        format!("{:.0}", fixed.wall_ms),
        format!("{}", fixed.synops),
    ]];
    for run in &candidates {
        rows.push(vec![
            run.name.to_string(),
            pct(run.result.adaptive_accuracy),
            format!(
                "{:+.2}%",
                (run.result.adaptive_accuracy - fixed_acc) * 100.0
            ),
            format!("{:.1}", run.result.mean_exit_step),
            format!(
                "{:.1}%",
                (1.0 - run.result.mean_exit_step as f64 / max_t as f64) * 100.0
            ),
            format!("{:.0}", run.wall_ms),
            format!("{}", run.synops),
        ]);
    }
    println!("{}", render_table(&header, &rows));

    // Operating point: most steps saved among candidates within 0.2% of the
    // fixed-T accuracy; if none qualifies, the closest-accuracy candidate.
    let within: Vec<&Run> = candidates
        .iter()
        .filter(|r| (r.result.adaptive_accuracy - fixed_acc).abs() <= 2e-3 + 1e-6)
        .collect();
    let selected = within
        .iter()
        .copied()
        .max_by_key(|r| r.result.saved_steps)
        .or_else(|| {
            candidates.iter().min_by(|a, b| {
                let da = (a.result.adaptive_accuracy - fixed_acc).abs();
                let db = (b.result.adaptive_accuracy - fixed_acc).abs();
                da.total_cmp(&db)
            })
        })
        .expect("at least one candidate");
    let delta = selected.result.adaptive_accuracy - fixed_acc;
    let step_reduction = 1.0 - selected.result.mean_exit_step as f64 / max_t as f64;
    let synops_reduction = 1.0 - selected.synops as f64 / fixed.synops.max(1) as f64;
    let speedup = fixed.wall_ms / selected.wall_ms.max(1e-9);
    println!(
        "selected: {} (Δacc {:+.2}%, step reduction {:.1}%, synops reduction {:.1}%, \
         {:.2}x wall-clock)",
        selected.name,
        delta * 100.0,
        step_reduction * 100.0,
        synops_reduction * 100.0,
        speedup
    );
    let ok = delta.abs() <= 2e-3 + 1e-6 && step_reduction >= 0.25;
    println!(
        "acceptance (|Δacc| <= 0.2% and step reduction >= 25%): {}",
        if ok { "PASS" } else { "FAIL" }
    );

    let mut json = String::new();
    let _ = writeln!(json, "{{");
    let _ = writeln!(
        json,
        "  \"workload\": \"cifar_synth cnn6 ({} scale, {} samples, checkpoints {:?})\",",
        scale.name(),
        eval_set.len(),
        CHECKPOINTS
    );
    let _ = writeln!(json, "  \"threads\": {},", engine.threads());
    let _ = writeln!(json, "  \"ann_accuracy\": {ann_accuracy:.4},");
    let _ = writeln!(
        json,
        "  \"fixed\": {},",
        run_json(&fixed, max_t).trim_start()
    );
    let _ = writeln!(json, "  \"candidates\": [");
    for (i, run) in candidates.iter().enumerate() {
        let comma = if i + 1 < candidates.len() { "," } else { "" };
        let _ = writeln!(json, "{}{comma}", run_json(run, max_t));
    }
    let _ = writeln!(json, "  ],");
    let _ = writeln!(json, "  \"selected\": {{");
    let _ = writeln!(json, "    \"name\": \"{}\",", selected.name);
    let _ = writeln!(json, "    \"accuracy_delta\": {delta:.4},");
    let _ = writeln!(json, "    \"step_reduction\": {step_reduction:.4},");
    let _ = writeln!(json, "    \"synops_reduction\": {synops_reduction:.4},");
    let _ = writeln!(json, "    \"wall_clock_speedup\": {speedup:.2},");
    let _ = writeln!(
        json,
        "    \"acceptance\": \"{}\"",
        if ok { "pass" } else { "fail" }
    );
    let _ = writeln!(json, "  }}");
    let _ = writeln!(json, "}}");
    let path = std::path::Path::new(env!("CARGO_MANIFEST_DIR")).join("../../BENCH_engine.json");
    std::fs::write(&path, json).expect("write BENCH_engine.json");
    println!("json: {}", path.display());
    tcl_telemetry::emit_summary();
}
