//! **Ablation B** — sensitivity to the initial clipping bound λ₀
//! (Section 6 sets λ₀ = 2.0 for Cifar-10 and 4.0 for Imagenet without
//! justification; this harness maps the neighbourhood).
//!
//! For each λ₀ the "4Conv, 2Linear" network is trained from scratch; we
//! report the final trained λ range, the ANN accuracy, and the SNN
//! accuracy at two latency budgets.
//!
//! ```text
//! cargo run --release -p tcl-bench --bin lambda_init
//! ```

use tcl_bench::{help_requested, pct, render_table, write_csv, DatasetKind, Scale, MASTER_SEED};
use tcl_core::{convert_and_evaluate, Converter, NormStrategy};
use tcl_models::{Architecture, ModelConfig};
use tcl_nn::{train, TrainConfig};
use tcl_snn::{Readout, SimConfig};
use tcl_tensor::SeededRng;

fn main() {
    if help_requested(
        "lambda_init",
        "sensitivity to the initial clipping bound lambda0 (ablation B)",
    ) {
        return;
    }
    let scale = Scale::from_env();
    let dataset = DatasetKind::Cifar;
    println!("== λ₀ sensitivity ablation (scale: {}) ==\n", scale.name());
    let data = dataset.generate(scale);
    let (c, h, w) = data.train.image_shape();
    let (t_lo, t_hi) = match scale {
        Scale::Quick => (25, 100),
        _ => (50, 200),
    };
    let header: Vec<String> = [
        "lambda0",
        "trained λ min",
        "trained λ max",
        "ANN",
        &format!("SNN T={t_lo}"),
        &format!("SNN T={t_hi}"),
    ]
    .iter()
    .map(|s| s.to_string())
    .collect();
    let mut rows = Vec::new();
    for lambda0 in [0.5f32, 1.0, 2.0, 4.0, 8.0] {
        let cfg = ModelConfig::new((c, h, w), data.train.classes())
            .with_base_width(8)
            .with_clip_lambda(Some(lambda0));
        let mut rng = SeededRng::new(MASTER_SEED);
        let mut net = Architecture::Cnn6.build(&cfg, &mut rng).expect("build");
        let train_cfg =
            TrainConfig::standard(scale.epochs(), 32, 0.05, &scale.milestones()).expect("config");
        train(
            &mut net,
            data.train.images(),
            data.train.labels(),
            None,
            &train_cfg,
        )
        .expect("train");
        let lambdas = net.clip_lambdas();
        let lam_min = lambdas.iter().copied().fold(f32::INFINITY, f32::min);
        let lam_max = lambdas.iter().copied().fold(0.0f32, f32::max);
        let sim = SimConfig::new(vec![t_lo, t_hi], 50, Readout::SpikeCount).expect("sim");
        let report = convert_and_evaluate(
            &mut net,
            data.train.take(200).images(),
            data.test.take(scale.eval_subset()).images(),
            data.test.take(scale.eval_subset()).labels(),
            &Converter::new(NormStrategy::TrainedClip),
            &sim,
        )
        .expect("convert");
        eprintln!("[done] λ₀={lambda0}");
        rows.push(vec![
            format!("{lambda0}"),
            format!("{lam_min:.3}"),
            format!("{lam_max:.3}"),
            pct(report.ann_accuracy),
            pct(report.sweep.accuracy_at(t_lo).unwrap_or(0.0)),
            pct(report.sweep.accuracy_at(t_hi).unwrap_or(0.0)),
        ]);
    }
    println!("{}", render_table(&header, &rows));
    let csv = write_csv("lambda_init", &header, &rows);
    println!("csv: {}", csv.display());
    tcl_telemetry::emit_summary();
}
