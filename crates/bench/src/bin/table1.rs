//! Regenerates **Table 1** of the paper: ANN vs SNN accuracy across
//! latency budgets, for every network/dataset pair the paper evaluates,
//! with the three norm-factor strategies:
//!
//! * `tcl` — this paper (trained clipping bounds), on the TCL-trained ANN;
//! * `max-norm` — Diehl et al. 2015 baseline, on the unconstrained ANN;
//! * `p99.9%` — Rueckauer et al. 2017 baseline, on the unconstrained ANN.
//!
//! Every sweep runs on the persistent [`tcl_snn::Engine`], and the TCL
//! conversion gets an extra **early-exit** row (per-sample margin-stability
//! retirement) whose `exit T` column reports the mean number of timesteps
//! actually simulated per sample.
//!
//! ```text
//! cargo run --release -p tcl-bench --bin table1 [-- --dataset cifar|imagenet|all]
//! TCL_SCALE=quick|standard|full  controls experiment size.
//! ```
//!
//! Output: one aligned table per dataset block (mirroring the paper's
//! layout) plus `results/table1_<dataset>.csv`.

use tcl_bench::{
    help_requested, pct, render_table, train_or_load, write_csv, write_diagnostics, DatasetKind,
    Scale,
};
use tcl_core::{convert_and_evaluate_with, diagnose_conversion, Converter, NormStrategy};
use tcl_snn::{Engine, ExitPolicy, Readout, SimConfig};

fn main() {
    if help_requested(
        "table1",
        "ANN vs SNN accuracy across latency budgets (paper Table 1); \
         also accepts `--dataset cifar|imagenet|all`",
    ) {
        return;
    }
    let args: Vec<String> = std::env::args().collect();
    let dataset_arg = args
        .iter()
        .position(|a| a == "--dataset")
        .and_then(|i| args.get(i + 1))
        .map(String::as_str)
        .unwrap_or("all");
    let datasets: Vec<DatasetKind> = match dataset_arg {
        "cifar" => vec![DatasetKind::Cifar],
        "imagenet" => vec![DatasetKind::Imagenet],
        "all" => vec![DatasetKind::Cifar, DatasetKind::Imagenet],
        other => {
            eprintln!("unknown dataset {other:?}; use cifar|imagenet|all");
            std::process::exit(2);
        }
    };
    let scale = Scale::from_env();
    let checkpoints = scale.checkpoints();
    // Live metrics endpoint while the run is in flight (TCL_OBS_ADDR
    // opt-in); shut down on drop at the end of main.
    let _exporter = tcl_obs::serve_from_env();
    println!("== Table 1 reproduction (scale: {}) ==", scale.name());
    println!("strategies: tcl (ours) vs max-norm (Diehl'15) vs p99.9% (Rueckauer'17)\n");

    // One persistent engine for every conversion in the run: the worker pool
    // and per-worker network replicas survive across strategies and
    // architectures instead of being rebuilt per evaluate call.
    let mut engine = Engine::new();
    // The extra adaptive row: retire a sample once its top-1 margin has been
    // stable for `patience` consecutive steps, but give the rate code at
    // least a quarter of the budget to converge first.
    let early_exit = ExitPolicy::Adaptive {
        patience: 8,
        min_margin: 2.0,
        min_steps: checkpoints[0].max(checkpoints.last().expect("nonempty") / 4),
    };

    for dataset in datasets {
        let data = dataset.generate(scale);
        println!(
            "--- {} | {} train / {} test / {} classes ---",
            dataset.title(),
            data.train.len(),
            data.test.len(),
            data.train.classes()
        );
        let mut header = vec![
            "Network".to_string(),
            "Method".to_string(),
            "ANN".to_string(),
        ];
        header.extend(checkpoints.iter().map(|t| format!("T={t}")));
        header.push("exit T".to_string());
        let mut rows: Vec<Vec<String>> = Vec::new();
        for arch in dataset.architectures() {
            let tcl_net = train_or_load(arch, dataset, &data, Some(dataset.lambda0()), scale);
            let base_net = train_or_load(arch, dataset, &data, None, scale);
            let calibration = data.train.take(200);
            let eval_set = data.test.take(scale.eval_subset());
            let sim = SimConfig::new(checkpoints.clone(), 50, Readout::SpikeCount)
                .expect("valid checkpoints");
            let cases: Vec<(&str, NormStrategy, ExitPolicy)> = vec![
                ("Ours (TCL)", NormStrategy::TrainedClip, ExitPolicy::Off),
                (
                    "Ours (TCL) early-exit",
                    NormStrategy::TrainedClip,
                    early_exit,
                ),
                (
                    "Diehl'15 max-norm",
                    NormStrategy::MaxActivation,
                    ExitPolicy::Off,
                ),
                (
                    "Rueckauer'17 p99.9",
                    NormStrategy::percentile_999(),
                    ExitPolicy::Off,
                ),
            ];
            for (label, strategy, policy) in cases {
                let mut net = if strategy == NormStrategy::TrainedClip {
                    tcl_net.clone()
                } else {
                    base_net.clone()
                };
                let report = convert_and_evaluate_with(
                    &mut engine,
                    &mut net,
                    calibration.images(),
                    eval_set.images(),
                    eval_set.labels(),
                    &Converter::new(strategy),
                    &sim,
                    policy,
                )
                .expect("conversion succeeds on preset networks");
                let mut row = vec![
                    arch.name().to_string(),
                    label.to_string(),
                    pct(report.ann_accuracy),
                ];
                row.extend(
                    report
                        .result
                        .sweep
                        .accuracies
                        .iter()
                        .map(|(_, acc)| pct(*acc)),
                );
                if policy.is_adaptive() {
                    let exits = report.result.exited.iter().filter(|&&e| e).count();
                    row.push(format!("{:.1}", report.result.mean_exit_step));
                    eprintln!(
                        "[exit] {} / {}: {exits}/{} samples retired early, mean exit T {:.1}, \
                         {} simulated steps saved",
                        arch.name(),
                        label,
                        report.result.exited.len(),
                        report.result.mean_exit_step,
                        report.result.saved_steps
                    );
                } else {
                    row.push("-".to_string());
                }
                eprintln!(
                    "[done] {} / {} (firing rate {:.4})",
                    arch.name(),
                    label,
                    report.result.sweep.mean_firing_rate
                );
                rows.push(row);
            }

            // Per-layer conversion diagnostics for the TCL conversion: how
            // well each IF bank's firing rate tracks the clipped ANN
            // activation at the largest latency budgets.
            let conversion = Converter::new(NormStrategy::TrainedClip)
                .convert(&tcl_net, calibration.images())
                .expect("tcl conversion succeeds on preset networks");
            let stimulus = data.test.take(4);
            let windows: Vec<usize> = checkpoints.iter().rev().take(2).rev().copied().collect();
            let diag = diagnose_conversion(&tcl_net, &conversion, stimulus.images(), &windows)
                .expect("diagnostics on the converted network");
            let name = format!(
                "table1_{}_{}",
                dataset.name(),
                arch.name().to_lowercase().replace([',', ' '], "")
            );
            let path = write_diagnostics(&name, &diag);
            eprintln!(
                "[diag] {} mean residual @T={}: {:.4} ({})",
                arch.name(),
                windows.last().expect("nonempty windows"),
                diag.mean_residual(windows.len() - 1).unwrap_or(0.0),
                path.display()
            );
        }
        println!("{}", render_table(&header, &rows));
        let csv = write_csv(&format!("table1_{}", dataset.name()), &header, &rows);
        println!("csv: {}\n", csv.display());
    }
    tcl_telemetry::emit_summary();
}
