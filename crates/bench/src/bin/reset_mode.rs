//! **Ablation C** — reset-by-subtraction vs reset-to-zero (Section 2).
//!
//! The paper adopts reset-by-subtraction because reset-to-zero "suffers
//! from considerable information loss" (citing Rueckauer et al. 2017); this
//! harness quantifies that loss on the same converted network.
//!
//! ```text
//! cargo run --release -p tcl-bench --bin reset_mode
//! ```

use tcl_bench::{help_requested, pct, render_table, train_or_load, write_csv, DatasetKind, Scale};
use tcl_core::{convert_and_evaluate, Converter, NormStrategy};
use tcl_models::Architecture;
use tcl_snn::{Readout, ResetMode, SimConfig};

fn main() {
    if help_requested(
        "reset_mode",
        "reset-by-subtraction vs reset-to-zero neurons (ablation C)",
    ) {
        return;
    }
    let scale = Scale::from_env();
    let dataset = DatasetKind::Cifar;
    println!("== reset-mode ablation (scale: {}) ==\n", scale.name());
    let data = dataset.generate(scale);
    let net = train_or_load(
        Architecture::Cnn6,
        dataset,
        &data,
        Some(dataset.lambda0()),
        scale,
    );
    let checkpoints = scale.checkpoints();
    let mut header = vec!["Reset mode".to_string(), "ANN".to_string()];
    header.extend(checkpoints.iter().map(|t| format!("T={t}")));
    header.push("rate".to_string());
    let mut rows = Vec::new();
    for (label, mode) in [
        ("subtract (paper)", ResetMode::Subtract),
        ("to-zero", ResetMode::Zero),
    ] {
        let mut net = net.clone();
        let sim = SimConfig::new(checkpoints.clone(), 50, Readout::SpikeCount).expect("sim");
        let report = convert_and_evaluate(
            &mut net,
            data.train.take(200).images(),
            data.test.take(scale.eval_subset()).images(),
            data.test.take(scale.eval_subset()).labels(),
            &Converter::new(NormStrategy::TrainedClip).with_reset_mode(mode),
            &sim,
        )
        .expect("convert");
        let mut row = vec![label.to_string(), pct(report.ann_accuracy)];
        row.extend(report.sweep.accuracies.iter().map(|(_, a)| pct(*a)));
        row.push(format!("{:.4}", report.sweep.mean_firing_rate));
        rows.push(row);
    }
    println!("{}", render_table(&header, &rows));
    let csv = write_csv("reset_mode", &header, &rows);
    println!("csv: {}", csv.display());
    tcl_telemetry::emit_summary();
}
