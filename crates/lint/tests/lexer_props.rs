//! Lexer totality and span-consistency properties.
//!
//! The analyzer's findings are only as trustworthy as its token spans, so
//! the lexer promises: it never panics on any input, and its tokens are
//! non-empty, strictly ordered, in-bounds, gap-separated only by ASCII
//! whitespace, with line/col derivable from the byte offset. Checked on
//! arbitrary byte soup, on adversarial string/comment fragments, and on
//! every `.rs` file in this repository.

use proptest::prelude::*;
use tcl_lint::lexer::{lex, Tok};

/// Asserts the span-consistency contract for `toks` over `src`.
fn assert_span_consistent(src: &str, toks: &[Tok]) {
    let bytes = src.as_bytes();
    let mut prev_end = 0usize;
    for t in toks {
        assert!(t.start < t.end, "empty token {t:?}");
        assert!(t.end <= src.len(), "token past EOF {t:?}");
        assert!(t.start >= prev_end, "overlapping tokens at {t:?}");
        for &b in &bytes[prev_end..t.start] {
            assert!(
                b.is_ascii_whitespace(),
                "non-whitespace byte {b:#x} in gap before {t:?}"
            );
        }
        let line = 1 + bytes[..t.start].iter().filter(|&&b| b == b'\n').count() as u32;
        assert_eq!(t.line, line, "line mismatch for {t:?}");
        let line_start = bytes[..t.start]
            .iter()
            .rposition(|&b| b == b'\n')
            .map_or(0, |p| p + 1);
        assert_eq!(
            t.col as usize,
            t.start - line_start + 1,
            "col mismatch for {t:?}"
        );
        prev_end = t.end;
    }
    for &b in &bytes[prev_end..] {
        assert!(b.is_ascii_whitespace(), "non-whitespace tail byte {b:#x}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup: the lexer must neither panic nor produce
    /// inconsistent spans (lossy UTF-8 conversion mirrors how the binary
    /// reads files).
    #[test]
    fn lexer_is_total_and_span_consistent_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255, 0..512),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let toks = lex(&src);
        assert_span_consistent(&src, &toks);
    }

    /// Adversarial soup biased toward lexer state machinery: quotes,
    /// hashes, slashes, stars, backslashes, newlines.
    #[test]
    fn lexer_survives_delimiter_soup(
        picks in prop::collection::vec(0usize..12, 0..256),
    ) {
        const ATOMS: [&str; 12] = [
            "\"", "'", "#", "r", "b", "/", "*", "\\", "\n", "r#\"", "/*", "ident",
        ];
        let src: String = picks.iter().map(|&p| ATOMS[p]).collect();
        let toks = lex(&src);
        assert_span_consistent(&src, &toks);
    }
}

/// Every `.rs` file in the repository lexes with consistent spans — the
/// exact corpus the analyzer runs on in CI, vendored stubs and test code
/// included.
#[test]
fn lexer_is_span_consistent_on_every_repo_rs_file() {
    let root = repo_root();
    let mut stack = vec![root.clone()];
    let mut seen = 0usize;
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != ".git" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let bytes =
                    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
                let src = String::from_utf8_lossy(&bytes).into_owned();
                let toks = lex(&src);
                assert_span_consistent(&src, &toks);
                seen += 1;
            }
        }
    }
    assert!(
        seen > 100,
        "expected to lex the whole repo, saw {seen} files"
    );
}

/// Spot-checks that tricky real constructs produce the intended kinds.
#[test]
fn lexer_classifies_tricky_constructs() {
    use tcl_lint::lexer::TokKind;
    let kinds = |src: &str| lex(src).iter().map(|t| t.kind).collect::<Vec<_>>();
    assert_eq!(kinds("'a"), [TokKind::Lifetime]);
    assert_eq!(kinds("'a'"), [TokKind::Char]);
    assert_eq!(kinds(r"'\''"), [TokKind::Char]);
    assert_eq!(kinds(r##"br#"x"#"##), [TokKind::Str]);
    assert_eq!(kinds("r#fn "), [TokKind::Ident]);
    assert_eq!(kinds("1.5e-3"), [TokKind::Num]);
    assert_eq!(
        kinds("1..4"),
        [
            TokKind::Num,
            TokKind::Punct(b'.'),
            TokKind::Punct(b'.'),
            TokKind::Num
        ]
    );
    assert_eq!(kinds("/* /* deep */ */"), [TokKind::BlockComment]);
    assert_eq!(kinds("// to eol"), [TokKind::LineComment]);
}

fn repo_root() -> std::path::PathBuf {
    // crates/lint -> crates -> repo root.
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap_or(manifest)
}
