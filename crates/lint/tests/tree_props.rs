//! Brace-tree totality and span-consistency properties.
//!
//! The G1 dominator analysis and test-region detection are only as
//! trustworthy as the block tree underneath them, so `tree::build`
//! promises: it never panics on any token stream, and its structure is
//! consistent — every block's open brace precedes its close, children
//! nest strictly inside their parents in source order, every code token
//! maps to exactly one innermost block whose span contains it, every
//! ancestor chain terminates at ROOT, and item spans are well-formed.
//! Checked on arbitrary byte soup, on brace-biased delimiter soup, and on
//! every `.rs` file in this repository.

use proptest::prelude::*;
use tcl_lint::lexer::{lex, Tok};
use tcl_lint::tree::{build, BlockKind, Tree, ROOT};

fn code_tokens(src: &str) -> Vec<Tok> {
    lex(src).into_iter().filter(|t| !t.is_comment()).collect()
}

/// Asserts the tree-consistency contract for `t` over `code`.
fn assert_tree_consistent(code: &[Tok], t: &Tree) {
    assert!(!t.blocks.is_empty(), "root block missing");
    let root = &t.blocks[ROOT];
    assert_eq!(root.kind, BlockKind::Root);
    assert_eq!(root.close, code.len());

    for (id, b) in t.blocks.iter().enumerate() {
        if id == ROOT {
            continue;
        }
        // Open strictly precedes close; both sides in bounds (close ==
        // code.len() marks an unterminated block).
        assert!(b.open < b.close, "block {id} open !< close: {b:?}");
        assert!(b.open < code.len(), "block {id} open out of bounds");
        assert!(b.close <= code.len(), "block {id} close out of bounds");
        // Parent links point upward and nest: a child's span sits strictly
        // inside its parent's.
        assert!(b.parent < id, "block {id} parent not earlier: {b:?}");
        let p = &t.blocks[b.parent];
        if b.parent != ROOT {
            assert!(
                p.open < b.open && b.close <= p.close,
                "block {id} not nested in parent: {b:?} in {p:?}"
            );
        }
        assert!(
            t.blocks[b.parent].children.contains(&id),
            "block {id} missing from parent's children"
        );
        // Children appear in source order.
        let mut prev = b.open;
        for &c in &b.children {
            assert!(t.blocks[c].open > prev, "children out of order in {id}");
            prev = t.blocks[c].open;
        }
        // IfThen conditions are well-formed ranges ending at the brace.
        if b.kind == BlockKind::IfThen {
            assert!(b.cond.0 <= b.cond.1, "bad cond range {b:?}");
            assert_eq!(b.cond.1, b.open, "cond must end at the open brace");
        }
    }

    // Every code token's innermost block contains it, and the ancestor
    // chain walks to ROOT without cycling.
    for ci in 0..code.len() {
        let inner = t.innermost(ci);
        assert!(inner < t.blocks.len(), "innermost out of range");
        let b = &t.blocks[inner];
        if inner != ROOT {
            assert!(
                b.open <= ci && ci <= b.close,
                "token {ci} outside its innermost block {inner}: {b:?}"
            );
        }
        let chain = t.ancestor_chain(inner);
        assert_eq!(chain.last(), Some(&ROOT), "chain must end at ROOT");
        assert!(chain.len() <= t.blocks.len(), "chain longer than tree");
    }

    // Item spans are well-formed and keyword-anchored.
    for it in &t.items {
        assert!(it.start <= it.kw, "item starts after its keyword: {it:?}");
        assert!(it.kw < it.end, "item keyword outside span: {it:?}");
        assert!(it.end <= code.len(), "item end out of bounds: {it:?}");
        if let Some(body) = it.body {
            assert!(body < t.blocks.len(), "item body out of range: {it:?}");
        }
    }

    // Attribute spans are ordered and in bounds.
    for a in &t.attrs {
        assert!(a.start <= a.close, "attr close before start: {a:?}");
        assert!(a.start < code.len(), "attr start out of bounds: {a:?}");
    }
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(512))]

    /// Arbitrary byte soup: the tree builder must neither panic nor
    /// produce inconsistent structure.
    #[test]
    fn tree_is_total_and_consistent_on_arbitrary_bytes(
        bytes in prop::collection::vec(0u8..=255, 0..512),
    ) {
        let src = String::from_utf8_lossy(&bytes).into_owned();
        let code = code_tokens(&src);
        let t = build(&src, &code);
        assert_tree_consistent(&code, &t);
    }

    /// Adversarial soup biased toward tree machinery: braces, item
    /// keywords, attributes, semicolons, header punctuation.
    #[test]
    fn tree_survives_structure_soup(
        picks in prop::collection::vec(0usize..16, 0..256),
    ) {
        const ATOMS: [&str; 16] = [
            "{", "}", ";", "(", ")", "[", "]", ",", "#", "!", "if ", "else ",
            "fn ", "use ", "mod ", "x ",
        ];
        let src: String = picks.iter().map(|&p| ATOMS[p]).collect();
        let code = code_tokens(&src);
        let t = build(&src, &code);
        assert_tree_consistent(&code, &t);
    }
}

/// Every `.rs` file in the repository parses into a consistent tree — the
/// exact corpus the analyzer runs on in CI, vendored stubs and test code
/// included.
#[test]
fn tree_is_consistent_on_every_repo_rs_file() {
    let root = repo_root();
    let mut stack = vec![root.clone()];
    let mut seen = 0usize;
    while let Some(dir) = stack.pop() {
        let Ok(entries) = std::fs::read_dir(&dir) else {
            continue;
        };
        for entry in entries.flatten() {
            let path = entry.path();
            let name = entry.file_name();
            let name = name.to_string_lossy();
            if path.is_dir() {
                if name != "target" && name != ".git" {
                    stack.push(path);
                }
            } else if name.ends_with(".rs") {
                let bytes =
                    std::fs::read(&path).unwrap_or_else(|e| panic!("read {}: {e}", path.display()));
                let src = String::from_utf8_lossy(&bytes).into_owned();
                let code = code_tokens(&src);
                let t = build(&src, &code);
                assert_tree_consistent(&code, &t);
                seen += 1;
            }
        }
    }
    assert!(
        seen > 100,
        "expected to parse the whole repo, saw {seen} files"
    );
}

/// Balanced sources close every block they open (no `close == len`
/// sentinel blocks left behind).
#[test]
fn balanced_source_closes_every_block() {
    let src = "fn a() { if x { y(); } else { z(); } } mod m { fn b() {} }";
    let code = code_tokens(src);
    let t = build(src, &code);
    for (id, b) in t.blocks.iter().enumerate() {
        if id != ROOT {
            assert!(
                b.close < code.len(),
                "unclosed block in balanced src: {b:?}"
            );
        }
    }
}

fn repo_root() -> std::path::PathBuf {
    // crates/lint -> crates -> repo root.
    let manifest = std::path::PathBuf::from(env!("CARGO_MANIFEST_DIR"));
    manifest
        .parent()
        .and_then(std::path::Path::parent)
        .map(std::path::Path::to_path_buf)
        .unwrap_or(manifest)
}
