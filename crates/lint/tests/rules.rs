//! Per-rule unit tests: each rule fires on a minimal positive case, stays
//! quiet on the equivalent clean code, and is silenced by a reasoned
//! `// lint: allow(RULE) …` pragma.

use tcl_lint::{check_crate_root, check_file, explain, Finding};

/// Lints `text` as `crates/<krate>/src/demo.rs`.
fn lint(krate: &str, text: &str) -> Vec<Finding> {
    check_file(&format!("crates/{krate}/src/demo.rs"), text, krate)
}

fn rules(findings: &[Finding]) -> Vec<&'static str> {
    findings.iter().map(|f| f.rule).collect()
}

// ---------------------------------------------------------------- D-series

#[test]
fn d1_flags_wall_clock_in_deterministic_crates() {
    let src = "fn f() { let t = std::time::Instant::now(); }";
    assert_eq!(rules(&lint("tensor", src)), ["D1"]);
    let src = "fn f() { let t = SystemTime::now(); }";
    assert_eq!(rules(&lint("core", src)), ["D1"]);
    // telemetry owns timing: out of D scope.
    assert!(lint("telemetry", src).is_empty());
}

#[test]
fn d1_covers_the_serving_crate_and_blocking_sleeps() {
    // The serving library must take time through an injected Clock; both a
    // wall-clock read and a pacing sleep are determinism leaks there.
    let src = "fn f() { let t = std::time::Instant::now(); }";
    assert_eq!(rules(&lint("serve", src)), ["D1"]);
    let src = "fn f() { std::thread::sleep(Duration::from_millis(1)); }";
    assert_eq!(rules(&lint("serve", src)), ["D1"]);
    let src = "fn f() { thread::sleep(Duration::from_millis(1)); }";
    assert_eq!(rules(&lint("snn", src)), ["D1"]);
    // `sleep` without the `thread::` path (e.g. a method named sleep) and
    // unrelated `thread` idents stay clean.
    assert!(lint("serve", "fn f(s: &Sim) { s.sleep(3); }").is_empty());
    assert!(lint("serve", "fn f() { let thread = 1; }").is_empty());
    // The obs exporter legitimately sleeps between scrapes: out of scope.
    let src = "fn f() { std::thread::sleep(Duration::from_millis(1)); }";
    assert!(lint("obs", src).is_empty());
}

#[test]
fn d1_pragma_with_reason_suppresses() {
    let src =
        "fn f() {\n    // lint: allow(D1) feeds only a gated gauge\n    let t = Instant::now();\n}";
    assert!(lint("tensor", src).is_empty());
    // Reason is mandatory.
    let src = "fn f() {\n    // lint: allow(D1)\n    let t = Instant::now();\n}";
    assert_eq!(rules(&lint("tensor", src)), ["D1"]);
}

#[test]
fn d2_flags_ambient_rng() {
    assert_eq!(
        rules(&lint("nn", "fn f() { let mut r = thread_rng(); }")),
        ["D2"]
    );
    assert_eq!(
        rules(&lint("snn", "fn f() { let x: f32 = rand::random(); }")),
        ["D2"]
    );
    assert_eq!(
        rules(&lint(
            "data",
            "fn f() { let r = SmallRng::from_entropy(); }"
        )),
        ["D2"]
    );
    // SeededRng is the sanctioned path.
    assert!(lint("nn", "fn f() { let mut r = SeededRng::new(7); }").is_empty());
}

#[test]
fn d3_flags_hash_order_containers() {
    let src =
        "use std::collections::HashMap;\nfn f() { let m: HashMap<u32, u32> = HashMap::new(); }";
    let found = lint("models", src);
    assert!(
        found.iter().all(|f| f.rule == "D3") && found.len() == 3,
        "{found:?}"
    );
    assert!(lint("models", "use std::collections::BTreeMap;").is_empty());
}

#[test]
fn d_series_ignores_test_code() {
    let src = "#[cfg(test)]\nmod tests {\n    fn f() { let t = Instant::now(); let m = HashSet::new(); }\n}";
    assert!(lint("tensor", src).is_empty());
}

// ---------------------------------------------------------------- P-series

#[test]
fn p1_flags_unwrap_and_expect_calls() {
    assert_eq!(
        rules(&lint("core", "fn f(x: Option<u32>) -> u32 { x.unwrap() }")),
        ["P1"]
    );
    assert_eq!(
        rules(&lint(
            "core",
            "fn f(x: Option<u32>) -> u32 { x.expect(\"set\") }"
        )),
        ["P1"]
    );
    // Not a method call: different identifiers, or idents in strings.
    assert!(lint("core", "fn f(t: &Tensor) { t.expect_same_shape(u).ok(); }").is_empty());
    assert!(lint("core", "fn f() -> &'static str { \".unwrap()\" }").is_empty());
    // unwrap_or and friends are fine.
    assert!(lint("core", "fn f(x: Option<u32>) -> u32 { x.unwrap_or(0) }").is_empty());
}

#[test]
fn p1_exempts_tests_and_bench() {
    let src = "#[test]\nfn t() { Some(1).unwrap(); }";
    assert!(lint("core", src).is_empty());
    let src = "#[cfg(test)]\nmod tests {\n    fn helper() { Some(1).unwrap(); }\n}";
    assert!(lint("core", src).is_empty());
    // The bench crate's binaries may unwrap CLI args.
    assert!(lint("bench", "fn main() { args().next().unwrap(); }").is_empty());
}

#[test]
fn p1_pragma_names_the_invariant() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lint: allow(P1) set on the line above\n    x.unwrap()\n}";
    assert!(lint("core", src).is_empty());
}

#[test]
fn p2_flags_panic_macros() {
    assert_eq!(rules(&lint("nn", "fn f() { panic!(\"boom\"); }")), ["P2"]);
    assert_eq!(rules(&lint("nn", "fn f() { todo!() }")), ["P2"]);
    assert_eq!(rules(&lint("nn", "fn f() { unimplemented!() }")), ["P2"]);
    // assert! carries documented contracts and is allowed.
    assert!(lint(
        "nn",
        "fn f(x: u32) { assert!(x > 0, \"x must be positive\"); }"
    )
    .is_empty());
    // Mentioning panic! in comments or strings is not a use.
    assert!(lint(
        "nn",
        "// panic! lives here\nfn f() -> &'static str { \"panic!\" }"
    )
    .is_empty());
}

// ---------------------------------------------------------------- C-series

#[test]
fn c1_requires_ordering_justification() {
    let src = "fn f(a: &AtomicUsize) { a.fetch_add(1, Ordering::Relaxed); }";
    assert_eq!(rules(&lint("snn", src)), ["C1"]);
    // Same-line justification.
    let src = "fn f(a: &AtomicUsize) { a.load(Ordering::Acquire); // ordering: pairs with the Release store in g\n}";
    assert!(lint("snn", src).is_empty());
    // Preceding-line justification.
    let src = "fn f(a: &AtomicUsize) {\n    // ordering: counter, only the total matters\n    a.fetch_add(1, Ordering::Relaxed);\n}";
    assert!(lint("snn", src).is_empty());
}

#[test]
fn c1_applies_inside_test_code_too() {
    let src =
        "#[cfg(test)]\nmod tests {\n    fn t(a: &AtomicU64) { a.store(1, Ordering::SeqCst); }\n}";
    assert_eq!(rules(&lint("tensor", src)), ["C1"]);
}

#[test]
fn c1_ignores_cmp_ordering() {
    let src = "fn f(a: u32, b: u32) -> Ordering { a.cmp(&b).then(Ordering::Equal) }";
    assert!(lint("core", src).is_empty());
}

#[test]
fn c2_forbids_static_mut() {
    assert_eq!(
        rules(&lint("telemetry", "static mut COUNTER: u64 = 0;")),
        ["C2"]
    );
    assert!(lint(
        "telemetry",
        "static COUNTER: AtomicU64 = AtomicU64::new(0);"
    )
    .is_empty());
}

#[test]
fn c3_requires_forbid_unsafe_in_crate_root() {
    assert!(check_crate_root(
        "crates/x/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}"
    )
    .is_none());
    let found = check_crate_root("crates/x/src/lib.rs", "pub fn f() {}");
    assert_eq!(found.map(|f| f.rule), Some("C3"));
    // Mentions in comments don't count: the attribute must be real code.
    let found = check_crate_root(
        "crates/x/src/lib.rs",
        "// #![forbid(unsafe_code)]\npub fn f() {}",
    );
    assert_eq!(found.map(|f| f.rule), Some("C3"));
}

#[test]
fn c3_simd_crate_root_requires_deny_unsafe_op_in_unsafe_fn() {
    // The unsafe island cannot forbid unsafe_code; it must deny
    // unsafe_op_in_unsafe_fn instead.
    assert!(check_crate_root(
        "crates/simd/src/lib.rs",
        "#![deny(unsafe_op_in_unsafe_fn)]\npub fn f() {}"
    )
    .is_none());
    // forbid(unsafe_code) alone does not satisfy the simd-root requirement
    // (the crate could not compile with it anyway).
    let found = check_crate_root(
        "crates/simd/src/lib.rs",
        "#![forbid(unsafe_code)]\npub fn f() {}",
    );
    assert_eq!(found.as_ref().map(|f| f.rule), Some("C3"));
    assert!(
        found.is_some_and(|f| f.message.contains("unsafe_op_in_unsafe_fn")),
        "message should name the required attribute"
    );
    // Other crates do not get the simd exemption.
    let found = check_crate_root(
        "crates/tensor/src/lib.rs",
        "#![deny(unsafe_op_in_unsafe_fn)]\npub fn f() {}",
    );
    assert_eq!(found.map(|f| f.rule), Some("C3"));
}

// ---------------------------------------------------------------- S-series

#[test]
fn s1_flags_intrinsics_outside_simd() {
    // One import line trips both the arch-path and the _mm-ident probes.
    let src = "use core::arch::x86_64::_mm256_add_ps;";
    assert_eq!(rules(&lint("tensor", src)), ["S1", "S1"]);
    let src = "use std::arch::x86_64::_mm256_setzero_ps;";
    assert_eq!(rules(&lint("snn", src)), ["S1", "S1"]);
    // Unrelated `arch` identifiers (e.g. a model architecture) stay quiet.
    assert!(lint("models", "fn f(arch: Architecture) { arch.build(); }").is_empty());
    assert!(lint("models", "use crate::arch::Cnn6;").is_empty());
}

#[test]
fn s1_flags_unsafe_and_feature_detection_outside_simd() {
    let src = "fn f(p: *const f32) -> f32 { unsafe { *p } }";
    assert_eq!(rules(&lint("tensor", src)), ["S1"]);
    let src = "fn f() -> bool { is_x86_feature_detected!(\"avx2\") }";
    assert_eq!(rules(&lint("core", src)), ["S1"]);
    // Mentions in strings and comments are not uses.
    let src = "// unsafe is confined to crates/simd\nfn f() -> &'static str { \"unsafe\" }";
    assert!(lint("tensor", src).is_empty());
}

#[test]
fn s1_applies_inside_test_code_too() {
    let src = "#[cfg(test)]\nmod tests {\n    fn t(p: *const f32) -> f32 { unsafe { *p } }\n}";
    assert_eq!(rules(&lint("tensor", src)), ["S1"]);
}

#[test]
fn s1_exempts_the_simd_crate_itself() {
    let src = "use core::arch::x86_64::_mm256_add_ps;\n\
               fn f() -> bool { is_x86_feature_detected!(\"avx2\") }\n\
               fn g(p: *const f32) -> f32 { unsafe { *p } }";
    assert!(lint("simd", src).is_empty());
}

#[test]
fn s1_pragma_with_reason_suppresses() {
    let src = "fn f(p: *const f32) -> f32 {\n    // lint: allow(S1) demo of the escape hatch\n    unsafe { *p }\n}";
    assert!(lint("tensor", src).is_empty());
}

// ---------------------------------------------------------------- G-series

/// Lints `text` as the par.rs hot file.
fn lint_hot(text: &str) -> Vec<Finding> {
    check_file("crates/tensor/src/par.rs", text, "tensor")
}

#[test]
fn g1_requires_gated_emission_on_hot_paths() {
    let src = "fn worker() { telemetry::counter_add(\"par.items\", 1); }";
    assert_eq!(rules(&lint_hot(src)), ["G1"]);
    let src = "fn worker() { if telemetry::metrics_enabled() { telemetry::counter_add(\"par.items\", 1); } }";
    assert!(lint_hot(src).is_empty());
    // A negated check does not dominate the emission.
    let src = "fn worker() { if !telemetry::metrics_enabled() { telemetry::hist_record(\"x\", 1.0, 1.0, 2); } }";
    assert_eq!(rules(&lint_hot(src)), ["G1"]);
}

#[test]
fn g1_exempts_self_gating_spans_and_cold_files() {
    // span_with defers attrs to a closure and gates internally.
    let src = "fn worker() { let _s = telemetry::span_with(\"par.worker\", || vec![]); }";
    assert!(lint_hot(src).is_empty());
    // Same emission in a non-hot file is not G1's business.
    let src = "fn report() { telemetry::counter_add(\"convert.sites\", 1); }";
    assert!(lint("core", src).is_empty());
}

#[test]
fn g1_dominator_rejects_disjunctive_and_negated_gates() {
    // `||` means the then-branch can run with telemetry disabled — the
    // flat v1 matcher accepted any gate call on the if-line (the
    // false-negative class this PR closes).
    let src = "fn worker(x: bool) { if x || !telemetry::metrics_enabled() { telemetry::counter_add(\"n\", 1); } }";
    assert_eq!(rules(&lint_hot(src)), ["G1"]);
    let src = "fn worker(x: bool) { if x || telemetry::metrics_enabled() { telemetry::counter_add(\"n\", 1); } }";
    assert_eq!(rules(&lint_hot(src)), ["G1"]);
    // Conjunction still guarantees the gate held.
    let src = "fn worker(x: bool) { if x && telemetry::metrics_enabled() { telemetry::counter_add(\"n\", 1); } }";
    assert!(lint_hot(src).is_empty());
}

#[test]
fn g1_dominator_accepts_early_return_guards() {
    // The early-return idiom dominates everything after it.
    let src = "fn worker() {\n    if !telemetry::metrics_enabled() {\n        return;\n    }\n    telemetry::counter_add(\"n\", 1);\n}";
    assert!(lint_hot(src).is_empty());
    // `continue` and `break` terminate loop bodies the same way.
    let src = "fn worker(xs: &[u32]) {\n    for _x in xs {\n        if !telemetry::trace_enabled() {\n            continue;\n        }\n        telemetry::counter_add(\"n\", 1);\n    }\n}";
    assert!(lint_hot(src).is_empty());
    // A guard that does not diverge guards nothing.
    let src = "fn worker() {\n    if !telemetry::metrics_enabled() {\n        let _x = 1;\n    }\n    telemetry::counter_add(\"n\", 1);\n}";
    assert_eq!(rules(&lint_hot(src)), ["G1"]);
    // A guard weakened by `&&` can fall through with telemetry off.
    let src = "fn worker(x: bool) {\n    if !telemetry::metrics_enabled() && x {\n        return;\n    }\n    telemetry::counter_add(\"n\", 1);\n}";
    assert_eq!(rules(&lint_hot(src)), ["G1"]);
}

#[test]
fn g1_dominator_tracks_block_structure_not_lines() {
    // A sibling gate that already closed does not dominate what follows —
    // the v1 line matcher could be fooled by this shape.
    let src = "fn worker() {\n    if telemetry::metrics_enabled() {\n        let _x = 1;\n    }\n    telemetry::counter_add(\"n\", 1);\n}";
    assert_eq!(rules(&lint_hot(src)), ["G1"]);
    // An outer gate dominates arbitrarily nested emission.
    let src = "fn worker(xs: &[u32]) {\n    if telemetry::metrics_enabled() {\n        for _x in xs {\n            if true {\n                telemetry::counter_add(\"n\", 1);\n            }\n        }\n    }\n}";
    assert!(lint_hot(src).is_empty());
    // The else-branch runs exactly when the gate is false.
    let src = "fn worker() {\n    if telemetry::metrics_enabled() {\n        let _x = 1;\n    } else {\n        telemetry::counter_add(\"n\", 1);\n    }\n}";
    assert_eq!(rules(&lint_hot(src)), ["G1"]);
}

// ---------------------------------------------------------------- A-series

#[test]
fn a1_flags_use_of_crates_outside_the_dag() {
    // tensor sits near the bottom of the layering DAG: reaching up to
    // tcl-core is a layering violation even if someone edits Cargo.toml.
    let src = "use tcl_core::Pipeline;";
    assert_eq!(rules(&lint("tensor", src)), ["A1"]);
    // Allowed edge (tensor -> simd) and self-imports stay quiet.
    assert!(lint("tensor", "use tcl_simd::gebp_4x16;").is_empty());
    assert!(lint("tensor", "use tcl_tensor::Tensor;").is_empty());
    // Non-workspace heads are cargo's problem, not A1's.
    assert!(lint("tensor", "use std::fmt;\nuse serde::ser::Map;").is_empty());
}

#[test]
fn a1_allows_dev_reach_down_only_in_test_code() {
    // obs may see snn from tests (dev-dependency) but not from library code.
    let src = "#[cfg(test)]\nmod tests {\n    use tcl_snn::SpikingNetwork;\n}";
    assert!(lint("obs", src).is_empty());
    let src = "use tcl_snn::SpikingNetwork;";
    assert_eq!(rules(&lint("obs", src)), ["A1"]);
}

#[test]
fn a3_confines_ambient_capabilities_to_bin_edges() {
    // Network types, thread spawning, and subprocesses in library code.
    let src = "fn f(a: &str) { let l = TcpListener::bind(a); }";
    assert_eq!(rules(&lint("serve", src)), ["A3"]);
    let src = "fn f() { std::thread::spawn(|| {}); }";
    assert_eq!(rules(&lint("core", src)), ["A3"]);
    let src = "fn f() { let c = std::process::Command::new(\"ls\"); }";
    assert_eq!(rules(&lint("data", src)), ["A3"]);
    // The same code at a main()-edge file is the program's business.
    let src = "fn main() { let l = TcpListener::bind(\"0:0\"); std::thread::spawn(|| {}); }";
    assert!(check_file("crates/serve/src/bin/tcl_serve.rs", src, "serve").is_empty());
    assert!(check_file("crates/lint/src/main.rs", src, "lint").is_empty());
}

#[test]
fn a3_exempts_granted_islands_scoped_spawns_and_tests() {
    // Granted capability islands (DESIGN.md §11).
    let src = "fn serve_loop(a: &str) { let l = TcpListener::bind(a); }";
    assert!(check_file("crates/obs/src/export.rs", src, "obs").is_empty());
    let src = "fn pool() { std::thread::Builder::new().spawn(|| {}); }";
    assert!(check_file("crates/snn/src/engine.rs", src, "snn").is_empty());
    // Scoped fan-out joins deterministically: `scope.spawn` is sanctioned.
    let src = "fn f() { std::thread::scope(|s| { s.spawn(|| {}); }); }";
    assert!(lint("tensor", src).is_empty());
    // Tests may bind loopback sockets freely.
    let src =
        "#[cfg(test)]\nmod tests {\n    fn t() { let l = TcpListener::bind(\"127.0.0.1:0\"); }\n}";
    assert!(lint("serve", src).is_empty());
}

// ---------------------------------------------------------------- F-series

#[test]
fn f1_flags_partial_cmp_everywhere_including_bench() {
    let src = "fn f(a: f32, b: f32) -> Ordering { a.partial_cmp(&b).unwrap() }";
    let found = lint("bench", src);
    assert_eq!(rules(&found), ["F1"], "bench is F1 scope (P-exempt only)");
    let src = "fn f(v: &mut [f32]) { v.sort_by(|a, b| a.partial_cmp(b).unwrap()); }";
    assert!(rules(&lint("tensor", src)).contains(&"F1"));
    // total_cmp is the sanctioned comparator.
    let src = "fn f(v: &mut [f32]) { v.sort_by(|a, b| a.total_cmp(b)); }";
    assert!(lint("tensor", src).is_empty());
    // Test code is exempt.
    let src = "#[test]\nfn t() { assert!(1.0f32.partial_cmp(&2.0).is_some()); }";
    assert!(lint("tensor", src).is_empty());
}

#[test]
fn f2_confines_transcendentals_to_the_vecmath_module() {
    let src = "fn f(x: f32) -> f32 { x.exp() }";
    assert_eq!(rules(&lint("nn", src)), ["F2"]);
    let src = "fn f(x: f32) -> f32 { f32::tanh(x) }";
    assert_eq!(rules(&lint("snn", src)), ["F2"]);
    // IEEE-exact operations are fine anywhere.
    assert!(lint(
        "nn",
        "fn f(x: f32) -> f32 { x.sqrt() + x.mul_add(2.0, 1.0) }"
    )
    .is_empty());
    // The sanctioned vec-math module and bench are exempt.
    let src = "pub fn vexp(x: f32) -> f32 { x.exp() }";
    assert!(check_file("crates/simd/src/vecmath.rs", src, "simd").is_empty());
    assert!(lint("bench", "fn f(x: f64) -> f64 { x.exp() }").is_empty());
    // telemetry::log is a logging call, not a logarithm.
    assert!(lint("snn", "fn f() { telemetry::log(\"x\", \"y\"); }").is_empty());
    // A reasoned pragma keeps a frozen-reference site.
    let src = "fn f(x: f32) -> f32 {\n    // lint: allow(F2) goldens pin this site\n    x.exp()\n}";
    assert!(lint("nn", src).is_empty());
}

#[test]
fn f3_flags_unexplained_narrowing_casts_in_kernel_code() {
    let src = "fn f(x: usize) -> f32 { x as f32 }";
    assert_eq!(rules(&lint("simd", src)), ["F3"]);
    let src = "fn f(x: u64) -> u32 { x as u32 }";
    assert_eq!(rules(&lint("simd", src)), ["F3"]);
    // Widening and usize casts are not narrowing.
    assert!(lint("simd", "fn f(x: u8) -> usize { x as usize }").is_empty());
    // Kernel-only: other crates cast with ordinary judgement.
    assert!(lint("tensor", "fn f(x: usize) -> f32 { x as f32 }").is_empty());
    // Test code and reasoned pragmas are exempt.
    let src = "#[cfg(test)]\nmod tests {\n    fn t(x: usize) -> f32 { x as f32 }\n}";
    assert!(lint("simd", src).is_empty());
    let src = "fn f(x: usize) -> f32 {\n    // lint: allow(F3) lane count <= 64 fits exactly\n    x as f32\n}";
    assert!(lint("simd", src).is_empty());
}

// ---------------------------------------------------------------- U-series

#[test]
fn u1_flags_dead_suppressions() {
    // The code under this pragma panics no more; the allow is dead weight.
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lint: allow(P1) was an unwrap once\n    x.unwrap_or(0)\n}";
    assert_eq!(rules(&lint("core", src)), ["U1"]);
    // A live pragma is not flagged.
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lint: allow(P1) protected by the Some above\n    x.unwrap()\n}";
    assert!(lint("core", src).is_empty());
    // Unknown rule ids are not audited (doc placeholders, future rules).
    let src = "fn f() {}\n// lint: allow(RULE) placeholder in prose\n";
    assert!(lint("core", src).is_empty());
}

#[test]
fn u1_is_not_suppressible() {
    let src = "fn f(x: Option<u32>) -> u32 {\n    // lint: allow(U1) trying to silence the auditor\n    // lint: allow(P1) was an unwrap once\n    x.unwrap_or(0)\n}";
    let found = lint("core", src);
    // The dead P1 pragma is still reported, and the U1 pragma itself is
    // dead too (U1 never consults pragmas).
    assert_eq!(rules(&found), ["U1", "U1"]);
}

// ------------------------------------------------------------ infrastructure

#[test]
fn findings_carry_position_and_render_stably() {
    let src = "fn f() {\n    let t = Instant::now();\n}";
    let found = lint("tensor", src);
    assert_eq!(found.len(), 1);
    assert_eq!((found[0].line, found[0].col), (2, 13));
    assert_eq!(found[0].path, "crates/tensor/src/demo.rs");
    assert!(found[0]
        .render()
        .starts_with("crates/tensor/src/demo.rs:2:13 [D1] "));
}

#[test]
fn one_pragma_can_allow_multiple_rules() {
    let src = "fn f() {\n    // lint: allow(D1, P1) demo of a shared justification\n    let t = Instant::now().elapsed().as_secs().checked_sub(1).unwrap();\n}";
    assert!(lint("tensor", src).is_empty());
}

#[test]
fn pragma_for_a_different_rule_does_not_leak() {
    // The P1 pragma neither suppresses the D1 finding nor counts as used —
    // the suppression auditor flags it as dead in the same pass.
    let src =
        "fn f() {\n    // lint: allow(P1) wrong series entirely\n    let t = Instant::now();\n}";
    let found = lint("tensor", src);
    assert_eq!(rules(&found), ["U1", "D1"]);
}

#[test]
fn raw_strings_and_nested_comments_do_not_confuse_the_matcher() {
    let src = r##"fn f() -> String {
    /* outer /* nested panic!() */ still comment */
    let s = r#"Instant::now() and .unwrap() and Ordering::Relaxed"#;
    s.to_string()
}"##;
    assert!(lint("tensor", src).is_empty());
}

#[test]
fn every_rule_id_has_an_explanation() {
    for rule in [
        "A1", "A2", "A3", "D1", "D2", "D3", "F1", "F2", "F3", "P1", "P2", "C1", "C2", "C3", "G1",
        "S1", "U1",
    ] {
        let text = explain(rule).unwrap_or_else(|| panic!("missing --explain {rule}"));
        assert!(text.len() > 40, "{rule} explanation too thin");
    }
}
