//! Workspace model: the crate-dependency graph and the layering policy.
//!
//! Parses every `crates/*/Cargo.toml` (line-oriented — the workspace pins
//! all manifests to the simple `name = { workspace = true }` form, and the
//! parser tolerates anything line-shaped beyond that) into a crate graph,
//! then checks it against the explicit allowed-edges DAG below: every
//! manifest edge must be listed (rule **A1**) and the realized graph must
//! be acyclic (rule **A2**). `tcl-lint --deps` renders the same graph as
//! text or Graphviz DOT for CI artifacts.
//!
//! The DAG is the architecture: leaves (`tcl-telemetry`, `tcl-simd`,
//! `tcl-lint`) depend on nothing, the numerics stack layers
//! tensor → nn/snn/data → models → core, the service layer (`tcl-obs`,
//! `tcl-serve`) sits beside it, and only `tcl-bench` may see everything.
//! Adding an edge is a deliberate act: extend [`ALLOWED_DEPS`] in the same
//! PR and justify it in DESIGN.md §11.

use std::fs;
use std::path::Path;

use crate::rules::Finding;
use crate::{io_err, workspace_crates, LintError};

/// Allowed `[dependencies]` edges, keyed by crate *directory* name; values
/// are dependency *package* names (workspace crates and vendored externals
/// alike). Order: leaves first, integration layers last.
pub const ALLOWED_DEPS: &[(&str, &[&str])] = &[
    ("telemetry", &[]),
    ("simd", &[]),
    ("lint", &[]),
    ("tensor", &["tcl-simd", "tcl-telemetry", "rand", "serde"]),
    ("nn", &["tcl-tensor", "tcl-telemetry", "serde"]),
    ("data", &["tcl-tensor", "serde"]),
    ("snn", &["tcl-tensor", "tcl-telemetry", "serde"]),
    ("models", &["tcl-tensor", "tcl-nn", "serde"]),
    (
        "core",
        &[
            "tcl-tensor",
            "tcl-telemetry",
            "tcl-nn",
            "tcl-snn",
            "tcl-data",
            "serde",
        ],
    ),
    ("obs", &["tcl-telemetry"]),
    ("serve", &["tcl-tensor", "tcl-snn", "tcl-telemetry"]),
    (
        "bench",
        &[
            "tcl-tensor",
            "tcl-telemetry",
            "tcl-nn",
            "tcl-data",
            "tcl-models",
            "tcl-snn",
            "tcl-core",
            "tcl-obs",
            "tcl-serve",
            "serde",
        ],
    ),
];

/// Extra `[dev-dependencies]` edges beyond [`ALLOWED_DEPS`], keyed by crate
/// directory. Test-only reach-down (e.g. `tcl-obs` replaying real engine
/// traces) is fine; it never ships in the library graph.
pub const ALLOWED_DEV_EXTRAS: &[(&str, &[&str])] = &[
    ("core", &["tcl-models"]),
    ("obs", &["tcl-tensor", "tcl-snn"]),
    ("serve", &["tcl-obs"]),
];

/// Dev-only externals every crate may use (vendored test/bench harnesses).
pub const GLOBAL_DEV_DEPS: &[&str] = &["proptest", "criterion"];

/// Is `package` an allowed dependency of the crate in directory `dir`?
/// `dev` widens the check to the dev-dependency allowances.
pub fn allowed_dep(dir: &str, package: &str, dev: bool) -> bool {
    let in_table = |table: &[(&str, &[&str])]| {
        table
            .iter()
            .find(|(d, _)| *d == dir)
            .is_some_and(|(_, deps)| deps.contains(&package))
    };
    in_table(ALLOWED_DEPS)
        || (dev && (in_table(ALLOWED_DEV_EXTRAS) || GLOBAL_DEV_DEPS.contains(&package)))
}

/// The crate-directory names the DAG covers.
pub fn known_dirs() -> Vec<&'static str> {
    ALLOWED_DEPS.iter().map(|(d, _)| *d).collect()
}

/// One `[dependencies]` / `[dev-dependencies]` entry.
#[derive(Debug, Clone)]
pub struct DepEdge {
    /// Dependency package name as written in the manifest.
    pub name: String,
    /// 1-based manifest line of the entry.
    pub line: u32,
    /// From `[dev-dependencies]`.
    pub dev: bool,
}

/// One parsed crate manifest.
#[derive(Debug, Clone)]
pub struct CrateManifest {
    /// Directory name under `crates/`.
    pub dir: String,
    /// `[package] name`.
    pub package: String,
    /// Workspace-relative manifest path for diagnostics.
    pub manifest_path: String,
    pub deps: Vec<DepEdge>,
}

/// Parses one manifest. Line-oriented: tracks `[section]` headers, reads
/// `name = …` entries in `[package]`, `[dependencies]`, and
/// `[dev-dependencies]`. Never fails on malformed input — unknown shapes
/// are skipped (the A-rules then flag whatever edges *were* readable).
pub fn parse_manifest(dir: &str, manifest_path: &str, text: &str) -> CrateManifest {
    #[derive(PartialEq)]
    enum Section {
        Package,
        Deps,
        DevDeps,
        Other,
    }
    let mut section = Section::Other;
    let mut package = String::new();
    let mut deps = Vec::new();
    for (i, raw) in text.lines().enumerate() {
        let line = raw.trim();
        if line.starts_with('[') {
            section = match line {
                "[package]" => Section::Package,
                "[dependencies]" => Section::Deps,
                "[dev-dependencies]" => Section::DevDeps,
                _ => Section::Other,
            };
            continue;
        }
        let Some((key, value)) = line.split_once('=') else {
            continue;
        };
        let key = key.trim();
        match section {
            Section::Package if key == "name" => {
                package = value.trim().trim_matches('"').to_string();
            }
            Section::Deps | Section::DevDeps if !key.is_empty() && !key.starts_with('#') => {
                // `rand = { workspace = true }` or `rand.workspace = true`.
                let name = key.split('.').next().unwrap_or(key).trim();
                deps.push(DepEdge {
                    name: name.to_string(),
                    line: (i + 1) as u32,
                    dev: section == Section::DevDeps,
                });
            }
            _ => {}
        }
    }
    CrateManifest {
        dir: dir.to_string(),
        package: if package.is_empty() {
            dir.to_string()
        } else {
            package
        },
        manifest_path: manifest_path.to_string(),
        deps,
    }
}

/// Loads every workspace crate's manifest, sorted by directory name.
pub fn load(root: &Path) -> Result<Vec<CrateManifest>, LintError> {
    let mut out = Vec::new();
    for (dir, path) in workspace_crates(root)? {
        let manifest = path.join("Cargo.toml");
        let text = fs::read_to_string(&manifest).map_err(io_err(&manifest))?;
        let rel = format!("crates/{dir}/Cargo.toml");
        out.push(parse_manifest(&dir, &rel, &text));
    }
    Ok(out)
}

/// Checks the manifest graph: A1 (every edge must be in the allowed-edges
/// tables) and A2 (the realized workspace graph must be acyclic).
pub fn check(manifests: &[CrateManifest]) -> Vec<Finding> {
    let mut findings = Vec::new();
    for m in manifests {
        for d in &m.deps {
            if !allowed_dep(&m.dir, &d.name, d.dev) {
                let kind = if d.dev {
                    "dev-dependency"
                } else {
                    "dependency"
                };
                findings.push(Finding {
                    path: m.manifest_path.clone(),
                    line: d.line,
                    col: 1,
                    rule: "A1",
                    message: format!(
                        "{kind} `{}` of crate `{}` is not in the allowed-edges \
                         DAG (DESIGN.md §11); extend ALLOWED_DEPS deliberately \
                         or remove the edge",
                        d.name, m.package
                    ),
                });
            }
        }
    }

    // A2: cycle detection over workspace-internal edges (dev edges
    // included — a dev cycle still deadlocks `cargo build --tests`).
    let idx_of = |pkg: &str| manifests.iter().position(|m| m.package == pkg);
    // 0 = unvisited, 1 = on stack, 2 = done.
    let mut state = vec![0u8; manifests.len()];
    for start in 0..manifests.len() {
        if state[start] != 0 {
            continue;
        }
        // Iterative DFS: (node, next-edge cursor) stack.
        let mut stack: Vec<(usize, usize)> = vec![(start, 0)];
        state[start] = 1;
        while let Some(&(node, cursor)) = stack.last() {
            let edges = &manifests[node].deps;
            if cursor >= edges.len() {
                state[node] = 2;
                stack.pop();
                continue;
            }
            if let Some(top) = stack.last_mut() {
                top.1 += 1;
            }
            let e = &edges[cursor];
            let Some(next) = idx_of(&e.name) else {
                continue; // external (vendored) dep
            };
            if state[next] == 1 {
                // Back edge: report the cycle at this manifest line.
                let cycle: Vec<&str> = stack
                    .iter()
                    .skip_while(|(n, _)| *n != next)
                    .map(|(n, _)| manifests[*n].package.as_str())
                    .collect();
                findings.push(Finding {
                    path: manifests[node].manifest_path.clone(),
                    line: e.line,
                    col: 1,
                    rule: "A2",
                    message: format!("dependency cycle: {} -> {}", cycle.join(" -> "), e.name),
                });
            } else if state[next] == 0 {
                state[next] = 1;
                stack.push((next, 0));
            }
        }
    }
    findings
}

/// Renders the crate graph as Graphviz DOT (dev edges dashed). Stable
/// output: nodes and edges follow manifest order.
pub fn render_dot(manifests: &[CrateManifest]) -> String {
    let mut out = String::from(
        "digraph tcl_workspace {\n    rankdir=BT;\n    node [shape=box, fontname=\"monospace\"];\n",
    );
    for m in manifests {
        out.push_str(&format!("    \"{}\";\n", m.package));
    }
    for m in manifests {
        for d in &m.deps {
            let style = if d.dev { " [style=dashed]" } else { "" };
            out.push_str(&format!(
                "    \"{}\" -> \"{}\"{};\n",
                m.package, d.name, style
            ));
        }
    }
    out.push_str("}\n");
    out
}

/// Renders the crate graph as indented text, one crate per stanza.
pub fn render_text(manifests: &[CrateManifest]) -> String {
    let mut out = String::new();
    for m in manifests {
        out.push_str(&format!("{} ({})\n", m.package, m.dir));
        for d in &m.deps {
            let marker = if d.dev { "dev -> " } else { "-> " };
            out.push_str(&format!("    {marker}{}\n", d.name));
        }
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    fn manifest(dir: &str, pkg: &str, deps: &[(&str, bool)]) -> CrateManifest {
        CrateManifest {
            dir: dir.to_string(),
            package: pkg.to_string(),
            manifest_path: format!("crates/{dir}/Cargo.toml"),
            deps: deps
                .iter()
                .enumerate()
                .map(|(i, (n, dev))| DepEdge {
                    name: n.to_string(),
                    line: (i + 1) as u32,
                    dev: *dev,
                })
                .collect(),
        }
    }

    #[test]
    fn parses_workspace_style_manifest() {
        let text = "[package]\nname = \"tcl-tensor\"\n\n[dependencies]\nrand = { workspace = true }\ntcl-simd = { workspace = true }\n\n[dev-dependencies]\nproptest = { workspace = true }\n";
        let m = parse_manifest("tensor", "crates/tensor/Cargo.toml", text);
        assert_eq!(m.package, "tcl-tensor");
        let names: Vec<(&str, bool)> = m.deps.iter().map(|d| (d.name.as_str(), d.dev)).collect();
        assert_eq!(
            names,
            vec![("rand", false), ("tcl-simd", false), ("proptest", true)]
        );
        assert_eq!(m.deps[0].line, 5);
    }

    #[test]
    fn allowed_edges_pass_and_rogue_edges_fail() {
        let good = manifest("nn", "tcl-nn", &[("tcl-tensor", false), ("proptest", true)]);
        assert!(check(&[good]).is_empty());
        let bad = manifest("tensor", "tcl-tensor", &[("tcl-core", false)]);
        let f = check(&[bad]);
        assert_eq!(f.len(), 1);
        assert_eq!(f[0].rule, "A1");
        assert!(f[0].message.contains("tcl-core"));
    }

    #[test]
    fn dev_reach_down_is_allowed_but_library_reach_down_is_not() {
        let dev = manifest("obs", "tcl-obs", &[("tcl-snn", true)]);
        assert!(check(&[dev]).is_empty());
        let lib = manifest("obs", "tcl-obs", &[("tcl-snn", false)]);
        assert_eq!(check(&[lib]).len(), 1);
    }

    #[test]
    fn detects_cycles() {
        let a = manifest("telemetry", "tcl-telemetry", &[("tcl-tensor", false)]);
        let b = manifest("tensor", "tcl-tensor", &[("tcl-telemetry", false)]);
        let f = check(&[a, b]);
        assert!(
            f.iter().any(|f| f.rule == "A2"),
            "cycle not detected: {f:?}"
        );
    }

    #[test]
    fn dot_output_contains_edges_and_dev_style() {
        let m = vec![
            manifest(
                "tensor",
                "tcl-tensor",
                &[("tcl-simd", false), ("proptest", true)],
            ),
            manifest("simd", "tcl-simd", &[]),
        ];
        let dot = render_dot(&m);
        assert!(dot.contains("\"tcl-tensor\" -> \"tcl-simd\";"));
        assert!(dot.contains("\"tcl-tensor\" -> \"proptest\" [style=dashed];"));
    }

    #[test]
    fn real_workspace_graph_is_clean() {
        let root = Path::new(env!("CARGO_MANIFEST_DIR"))
            .parent()
            .and_then(|p| p.parent())
            .map(|p| p.to_path_buf());
        let Some(root) = root else {
            return;
        };
        let manifests = match load(&root) {
            Ok(m) => m,
            Err(_) => return,
        };
        assert_eq!(manifests.len(), known_dirs().len());
        let findings = check(&manifests);
        assert!(
            findings.is_empty(),
            "workspace graph violations: {findings:?}"
        );
    }
}
