//! The rule engine: repo-specific invariants expressed over the token
//! stream produced by [`crate::lexer`].
//!
//! Five rule series (see `--explain` or `DESIGN.md` §11):
//!
//! * **D — determinism.** Wall-clock reads, ambient RNG, and hash-order
//!   containers are banned from the numeric crates; a single stray source
//!   of nondeterminism silently invalidates every golden snapshot and the
//!   bitwise parallel==serial contract.
//! * **P — panic policy.** Library non-test code must not `unwrap`/
//!   `expect`/`panic!`/`todo!`/`unimplemented!`; recoverable failures flow
//!   through `Error` returns, and genuinely unreachable states carry a
//!   pragma explaining the invariant that protects them.
//! * **C — concurrency audit.** Every atomic `Ordering::…` use carries an
//!   adjacent `// ordering:` justification; `static mut` is forbidden; each
//!   crate root declares `#![forbid(unsafe_code)]`.
//! * **G — telemetry gating.** Eager metric emission inside the hot-path
//!   files (par workers, neuron step) must sit under a `metrics_enabled()`
//!   / `trace_enabled()` fast-path check so disabled telemetry stays at one
//!   relaxed atomic load.
//! * **S — SIMD confinement.** CPU intrinsics (`core::arch`/`std::arch`,
//!   `_mm*`, `is_x86_feature_detected!`) and the `unsafe` keyword live only
//!   in `crates/simd` — the one sanctioned unsafe island. Its crate root
//!   must carry `#![deny(unsafe_op_in_unsafe_fn)]`; every other crate root
//!   keeps `#![forbid(unsafe_code)]`.
//!
//! Suppression is per-site: `// lint: allow(RULE) reason` on the same line
//! or the directly preceding comment lines, with a mandatory reason.

use crate::lexer::{lex, Tok, TokKind};

/// One diagnostic: where, which rule, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    /// The human-readable `file:line:col [RULE] message` form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{} [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Crates whose non-test code must be deterministic (D-series scope).
/// Timing belongs to `telemetry`/`bench`; randomness flows through
/// `SeededRng`/`SmallRng`.
const D_SCOPE: &[&str] = &["tensor", "nn", "snn", "core", "data", "models", "serve"];

/// Crates exempt from the panic policy (P-series): `bench` binaries may
/// unwrap CLI arguments and I/O at top level.
const P_EXEMPT: &[&str] = &["bench"];

/// Hot-path files where eager telemetry emission must be gated (G-series).
const HOT_FILES: &[&str] = &[
    "crates/tensor/src/par.rs",
    "crates/snn/src/neuron.rs",
    "crates/snn/src/engine.rs",
];

/// Telemetry functions that emit eagerly (pay allocation/formatting cost
/// even when sinks are off unless the caller gates them). `span`/`span_with`
/// are exempt: they gate internally and defer attribute construction to a
/// closure that never runs when tracing is off.
const EAGER_EMITTERS: &[&str] = &[
    "counter_add",
    "gauge_set",
    "gauge_set_indexed",
    "hist_record",
    "log",
];

/// Atomic memory-ordering variants audited by C1.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "SeqCst", "AcqRel"];

/// A lexed source file plus the per-line/region indexes the rules query.
pub struct SourceFile {
    pub path: String,
    pub text: String,
    toks: Vec<Tok>,
    /// Indices into `toks` of non-comment tokens, in order.
    code: Vec<usize>,
    /// Per 1-based line: does any non-comment token start on it?
    line_has_code: Vec<bool>,
    /// Per 1-based line: comment texts starting on it.
    line_comments: Vec<Vec<(usize, usize)>>,
    /// Byte ranges of `#[test]` / `#[cfg(test)]`-guarded items.
    test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    pub fn parse(path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        let text = text.into();
        let toks = lex(&text);
        let code: Vec<usize> = (0..toks.len()).filter(|&i| !toks[i].is_comment()).collect();
        let max_line = toks.last().map_or(0, |t| t.line as usize);
        let mut line_has_code = vec![false; max_line + 2];
        let mut line_comments: Vec<Vec<(usize, usize)>> = vec![Vec::new(); max_line + 2];
        for t in &toks {
            let l = t.line as usize;
            if t.is_comment() {
                line_comments[l].push((t.start, t.end));
            } else {
                line_has_code[l] = true;
            }
        }
        let mut file = SourceFile {
            path: path.into(),
            text,
            toks,
            code,
            line_has_code,
            line_comments,
            test_regions: Vec::new(),
        };
        file.test_regions = find_test_regions(&file);
        file
    }

    /// The `c`-th code (non-comment) token, if any.
    fn ct(&self, c: usize) -> Option<&Tok> {
        self.code.get(c).map(|&i| &self.toks[i])
    }

    /// Text of the `c`-th code token.
    fn ctext(&self, c: usize) -> &str {
        self.ct(c).map_or("", |t| t.text(&self.text))
    }

    fn is_ident(&self, c: usize, name: &str) -> bool {
        self.ct(c)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(&self.text) == name)
    }

    fn is_punct(&self, c: usize, p: u8) -> bool {
        self.ct(c).is_some_and(|t| t.kind == TokKind::Punct(p))
    }

    /// `::` at code positions `c`, `c+1`.
    fn is_path_sep(&self, c: usize) -> bool {
        self.is_punct(c, b':') && self.is_punct(c + 1, b':')
    }

    fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| (s..e).contains(&offset))
    }

    /// Comments attached to `line`: on the line itself, or on a run of
    /// directly preceding comment-only lines.
    fn adjacent_comments(&self, line: u32) -> impl Iterator<Item = &str> {
        let mut lines = vec![line as usize];
        let mut l = line as usize;
        while l > 1 {
            l -= 1;
            let comment_only = !self.line_has_code.get(l).copied().unwrap_or(false)
                && !self.line_comments.get(l).is_none_or(Vec::is_empty);
            if !comment_only {
                break;
            }
            lines.push(l);
        }
        lines.into_iter().flat_map(|l| {
            self.line_comments
                .get(l)
                .map(Vec::as_slice)
                .unwrap_or(&[])
                .iter()
                .map(|&(s, e)| self.text.get(s..e).unwrap_or(""))
        })
    }

    /// Is the finding at `line` suppressed by a `// lint: allow(RULE) reason`
    /// pragma on the same line or the preceding comment block?
    pub fn pragma_allows(&self, rule: &str, line: u32) -> bool {
        self.adjacent_comments(line)
            .any(|c| pragma_allows_in(c, rule))
    }

    /// Does `line` carry (or directly follow) a comment containing `marker`?
    fn has_adjacent_marker(&self, marker: &str, line: u32) -> bool {
        self.adjacent_comments(line).any(|c| c.contains(marker))
    }
}

/// Parses one comment for `lint: allow(R1, R2) reason`; the reason is
/// mandatory — an allow without a stated justification does not count.
fn pragma_allows_in(comment: &str, rule: &str) -> bool {
    let Some(at) = comment.find("lint:") else {
        return false;
    };
    let after = comment[at + 5..].trim_start();
    let Some(rest) = after.strip_prefix("allow(") else {
        return false;
    };
    let Some(close) = rest.find(')') else {
        return false;
    };
    let reason_ok = !rest[close + 1..].trim().is_empty();
    reason_ok && rest[..close].split(',').any(|r| r.trim() == rule)
}

/// Locates items guarded by a test attribute: `#[test]`, `#[cfg(test)]`,
/// `#[cfg(any(test, …))]`. Returns byte ranges covering attribute through
/// the end of the item body (`{…}` block or terminating `;`).
fn find_test_regions(file: &SourceFile) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut c = 0usize;
    while let Some(t) = file.ct(c) {
        if t.kind != TokKind::Punct(b'#') || !file.is_punct(c + 1, b'[') {
            c += 1;
            continue;
        }
        let attr_start = t.start;
        // Scan the bracket group, looking for the ident `test`.
        let mut depth = 0usize;
        let mut is_test_attr = false;
        let mut k = c + 1;
        let attr_end_code = loop {
            let Some(tok) = file.ct(k) else {
                break k;
            };
            match tok.kind {
                TokKind::Punct(b'[') => depth += 1,
                TokKind::Punct(b']') => {
                    depth = depth.saturating_sub(1);
                    if depth == 0 {
                        break k + 1;
                    }
                }
                TokKind::Ident if tok.text(&file.text) == "test" => is_test_attr = true,
                _ => {}
            }
            k += 1;
        };
        if !is_test_attr {
            c = attr_end_code;
            continue;
        }
        // Find the guarded item's body: first `{` at delimiter depth 0
        // (matching through its close brace), or a bare `;`.
        let mut k = attr_end_code;
        let mut depth = 0usize;
        let end = loop {
            let Some(tok) = file.ct(k) else {
                break file.text.len();
            };
            match tok.kind {
                TokKind::Punct(b'(' | b'[') => depth += 1,
                TokKind::Punct(b')' | b']') => depth = depth.saturating_sub(1),
                TokKind::Punct(b';') if depth == 0 => break tok.end,
                TokKind::Punct(b'{') if depth == 0 => {
                    break matching_brace_end(file, k).unwrap_or(file.text.len());
                }
                _ => {}
            }
            k += 1;
        };
        regions.push((attr_start, end));
        // Continue scanning *after* the region so nested attrs inside a
        // test mod don't re-trigger (harmless either way, ranges overlap).
        c = attr_end_code;
    }
    regions
}

/// Given the code index of an opening `{`, returns the byte end of its
/// matching `}` (EOF-tolerant: `None` if unbalanced).
fn matching_brace_end(file: &SourceFile, open: usize) -> Option<usize> {
    let mut depth = 0usize;
    let mut k = open;
    while let Some(tok) = file.ct(k) {
        match tok.kind {
            TokKind::Punct(b'{') => depth += 1,
            TokKind::Punct(b'}') => {
                depth -= 1;
                if depth == 0 {
                    return Some(tok.end);
                }
            }
            _ => {}
        }
        k += 1;
    }
    None
}

/// Lints one file belonging to crate `krate` (the directory name under
/// `crates/`). `path` must be workspace-relative with `/` separators.
pub fn check_file(path: &str, text: &str, krate: &str) -> Vec<Finding> {
    let file = SourceFile::parse(path, text);
    let mut out = Vec::new();
    let d_applies = D_SCOPE.contains(&krate);
    let p_applies = !P_EXEMPT.contains(&krate);
    let s_applies = krate != "simd";
    let hot = HOT_FILES.iter().any(|h| file.path.ends_with(h));
    let gated = if hot {
        gated_regions(&file)
    } else {
        Vec::new()
    };

    let emit =
        |file: &SourceFile, t: &Tok, rule: &'static str, msg: String, out: &mut Vec<Finding>| {
            if !file.pragma_allows(rule, t.line) {
                out.push(Finding {
                    path: file.path.clone(),
                    line: t.line,
                    col: t.col,
                    rule,
                    message: msg,
                });
            }
        };

    for c in 0..file.code.len() {
        let Some(t) = file.ct(c) else { break };
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(&file.text);
        let in_test = file.in_test_region(t.start);

        // ---- D-series: determinism ----
        if d_applies && !in_test {
            if (name == "SystemTime" || name == "Instant")
                && file.is_path_sep(c + 1)
                && file.is_ident(c + 3, "now")
            {
                emit(
                    &file,
                    t,
                    "D1",
                    format!(
                        "wall-clock read `{name}::now` in deterministic crate `{krate}`; \
                         timing belongs to telemetry/bench"
                    ),
                    &mut out,
                );
            }
            if name == "thread" && file.is_path_sep(c + 1) && file.is_ident(c + 3, "sleep") {
                emit(
                    &file,
                    t,
                    "D1",
                    format!(
                        "blocking `thread::sleep` in deterministic crate `{krate}`; \
                         time must flow through an injected Clock (main()-edge only)"
                    ),
                    &mut out,
                );
            }
            if name == "thread_rng" || name == "from_entropy" {
                emit(
                    &file,
                    t,
                    "D2",
                    format!(
                        "ambient RNG `{name}` in deterministic crate `{krate}`; \
                         randomness must flow through SeededRng/SmallRng"
                    ),
                    &mut out,
                );
            }
            if name == "rand" && file.is_path_sep(c + 1) && file.is_ident(c + 3, "random") {
                emit(
                    &file,
                    t,
                    "D2",
                    format!("ambient RNG `rand::random` in deterministic crate `{krate}`"),
                    &mut out,
                );
            }
            if name == "HashMap" || name == "HashSet" {
                emit(
                    &file,
                    t,
                    "D3",
                    format!(
                        "hash-order container `{name}` in deterministic crate `{krate}`; \
                         iteration order is nondeterministic — use BTreeMap/BTreeSet/Vec"
                    ),
                    &mut out,
                );
            }
        }

        // ---- P-series: panic policy ----
        if p_applies && !in_test {
            if (name == "unwrap" || name == "expect")
                && c > 0
                && file.is_punct(c - 1, b'.')
                && file.is_punct(c + 1, b'(')
            {
                emit(
                    &file,
                    t,
                    "P1",
                    format!(
                        "`.{name}()` in library non-test code; return an Error or carry \
                         a `// lint: allow(P1) reason` pragma naming the invariant"
                    ),
                    &mut out,
                );
            }
            if (name == "panic" || name == "todo" || name == "unimplemented")
                && file.is_punct(c + 1, b'!')
            {
                emit(
                    &file,
                    t,
                    "P2",
                    format!("`{name}!` in library non-test code; library failures are Errors"),
                    &mut out,
                );
            }
        }

        // ---- C-series: concurrency audit (test code included) ----
        if name == "Ordering"
            && file.is_path_sep(c + 1)
            && file
                .ct(c + 3)
                .is_some_and(|v| ORDERINGS.contains(&v.text(&file.text)))
            && !file.has_adjacent_marker("ordering:", t.line)
        {
            emit(
                &file,
                t,
                "C1",
                format!(
                    "atomic `Ordering::{}` without an adjacent `// ordering:` \
                     justification comment",
                    file.ctext(c + 3)
                ),
                &mut out,
            );
        }
        if name == "static" && file.is_ident(c + 1, "mut") {
            emit(
                &file,
                t,
                "C2",
                "`static mut` is forbidden; use atomics, OnceLock, or thread_local".to_string(),
                &mut out,
            );
        }

        // ---- S-series: SIMD/unsafe confinement (test code included) ----
        if s_applies {
            if name == "arch" && c >= 3 && file.is_path_sep(c - 2) {
                let root = file.ctext(c - 3);
                if root == "core" || root == "std" {
                    emit(
                        &file,
                        t,
                        "S1",
                        format!(
                            "CPU intrinsics module `{root}::arch` outside `crates/simd`; \
                             all intrinsics live behind the tcl-simd dispatch layer"
                        ),
                        &mut out,
                    );
                }
            }
            if name.starts_with("_mm") {
                emit(
                    &file,
                    t,
                    "S1",
                    format!(
                        "SIMD intrinsic `{name}` outside `crates/simd`; call a \
                         tcl-simd kernel instead"
                    ),
                    &mut out,
                );
            }
            if name == "is_x86_feature_detected" {
                emit(
                    &file,
                    t,
                    "S1",
                    "ISA feature detection outside `crates/simd`; dispatch decisions \
                     are tcl-simd's alone (`tcl_simd::current()`)"
                        .to_string(),
                    &mut out,
                );
            }
            if name == "unsafe" {
                emit(
                    &file,
                    t,
                    "S1",
                    format!(
                        "`unsafe` outside `crates/simd` (crate `{krate}`); the rest of \
                         the workspace stays `#![forbid(unsafe_code)]`"
                    ),
                    &mut out,
                );
            }
        }

        // ---- G-series: telemetry gating on hot paths ----
        if hot
            && !in_test
            && EAGER_EMITTERS.contains(&name)
            && file.is_punct(c + 1, b'(')
            && !gated.iter().any(|&(s, e)| (s..e).contains(&t.start))
        {
            emit(
                &file,
                t,
                "G1",
                format!(
                    "eager telemetry emission `{name}(…)` on a hot path outside a \
                     metrics_enabled()/trace_enabled() fast-path check"
                ),
                &mut out,
            );
        }
    }
    out
}

/// C3 check for a crate root: `lib.rs` must carry `#![forbid(unsafe_code)]`.
///
/// Exception: `crates/simd` is the workspace's one sanctioned unsafe island
/// (CPU intrinsics require it), so it cannot forbid `unsafe_code`; its root
/// must instead carry `#![deny(unsafe_op_in_unsafe_fn)]`, which forces every
/// pointer dereference inside an `unsafe fn` to be re-justified in an inner
/// `unsafe {}` block.
pub fn check_crate_root(path: &str, text: &str) -> Option<Finding> {
    let file = SourceFile::parse(path, text);
    let (attr, lint_name) = if path.ends_with("crates/simd/src/lib.rs") {
        ("deny", "unsafe_op_in_unsafe_fn")
    } else {
        ("forbid", "unsafe_code")
    };
    let mut c = 0usize;
    while file.ct(c).is_some() {
        if file.is_punct(c, b'#')
            && file.is_punct(c + 1, b'!')
            && file.is_punct(c + 2, b'[')
            && file.is_ident(c + 3, attr)
            && file.is_punct(c + 4, b'(')
            && file.is_ident(c + 5, lint_name)
        {
            return None;
        }
        c += 1;
    }
    Some(Finding {
        path: path.to_string(),
        line: 1,
        col: 1,
        rule: "C3",
        message: format!("crate root is missing `#![{attr}({lint_name})]`"),
    })
}

/// Byte ranges of `{…}` blocks whose `if` condition contains a telemetry
/// fast-path check (`metrics_enabled` / `trace_enabled`, not negated).
fn gated_regions(file: &SourceFile) -> Vec<(usize, usize)> {
    let mut regions = Vec::new();
    let mut c = 0usize;
    while let Some(t) = file.ct(c) {
        if !(t.kind == TokKind::Ident && t.text(&file.text) == "if") {
            c += 1;
            continue;
        }
        // Collect the condition: tokens up to the `{` at delimiter depth 0.
        let mut depth = 0usize;
        let mut k = c + 1;
        let mut has_check = false;
        let negated = file.is_punct(c + 1, b'!');
        let open = loop {
            let Some(tok) = file.ct(k) else {
                break None;
            };
            match tok.kind {
                TokKind::Punct(b'(' | b'[') => depth += 1,
                TokKind::Punct(b')' | b']') => depth = depth.saturating_sub(1),
                TokKind::Punct(b'{') if depth == 0 => break Some(k),
                TokKind::Ident => {
                    let name = tok.text(&file.text);
                    if name == "metrics_enabled" || name == "trace_enabled" {
                        has_check = true;
                    }
                }
                _ => {}
            }
            k += 1;
        };
        if let Some(open) = open {
            if has_check && !negated {
                if let Some(end) = matching_brace_end(file, open) {
                    let start = file.ct(open).map_or(0, |t| t.start);
                    regions.push((start, end));
                }
            }
            c = open + 1;
        } else {
            c = k + 1;
        }
    }
    regions
}

/// Rule identifiers with their `--explain` texts.
pub const RULES: &[(&str, &str)] = &[
    (
        "D1",
        "Wall-clock reads (SystemTime::now, Instant::now) and blocking sleeps \
         (thread::sleep) are banned from the deterministic crates (tensor, nn, snn, \
         core, data, models, serve) outside test code. Results must be a pure function \
         of inputs + seeds so golden snapshots, the bitwise parallel==serial contract, \
         and the virtual-clock serving simulations hold; timing lives in \
         telemetry/bench, and the serving library takes time through an injected Clock \
         (real Instant only at the tcl_serve main() edge). Timing that only feeds gated \
         telemetry, or a main()-edge clock binding, may carry a \
         `// lint: allow(D1) reason` pragma.",
    ),
    (
        "D2",
        "Ambient randomness (thread_rng, rand::random, from_entropy) is banned from the \
         deterministic crates. All randomness flows through SeededRng/SmallRng so every \
         run replays bit-exactly from its seed — the property the checkpoint/resume and \
         engine-equivalence suites assert.",
    ),
    (
        "D3",
        "std::collections::HashMap/HashSet are banned from the deterministic crates: \
         their iteration order varies run to run (RandomState), which silently breaks \
         golden snapshots when anything numeric is derived from iteration. Use \
         BTreeMap/BTreeSet or a Vec.",
    ),
    (
        "P1",
        ".unwrap()/.expect() are forbidden in library non-test code. Recoverable \
         failures return Errors; genuinely unreachable states carry \
         `// lint: allow(P1) <invariant>` naming the invariant that protects them, so \
         every residual panic site is enumerable and justified.",
    ),
    (
        "P2",
        "panic!/todo!/unimplemented! are forbidden in library non-test code; library \
         failures are Errors. assert!/debug_assert! remain available for documented \
         programmer-error contracts.",
    ),
    (
        "C1",
        "Every atomic Ordering::{Relaxed,Acquire,Release,SeqCst,AcqRel} use must carry \
         an adjacent `// ordering:` comment justifying why that ordering is sufficient \
         (what the atomic synchronizes, or why no synchronization is needed). Applies \
         to test code too — the audit is about every ordering decision being written \
         down.",
    ),
    (
        "C2",
        "`static mut` is forbidden everywhere: it is wildly unsafe under threads and \
         unnecessary given atomics, OnceLock, and thread_local.",
    ),
    (
        "C3",
        "Every crate root must declare #![forbid(unsafe_code)]. forbid (not deny) means \
         no inner allow can sneak unsafe back in; the whole workspace stays safe Rust. \
         Sole exception: crates/simd — the sanctioned unsafe island — whose root must \
         instead declare #![deny(unsafe_op_in_unsafe_fn)].",
    ),
    (
        "S1",
        "CPU intrinsics (core::arch/std::arch paths, _mm* identifiers, \
         is_x86_feature_detected!) and the `unsafe` keyword are confined to \
         crates/simd, the one crate allowed to hold them. Everything else reaches \
         vector code through the safe tcl-simd kernel API (gebp_4x16, axpy, if_step, \
         gather_rows) under runtime dispatch, so the unsafe audit surface stays one \
         small crate. Applies to test code too.",
    ),
    (
        "G1",
        "On hot-path files (tcl_tensor::par workers, IfNeurons::step), eager telemetry \
         emission (counter_add, gauge_set, gauge_set_indexed, hist_record, log) must be \
         dominated by an `if metrics_enabled()/trace_enabled()` fast-path check so \
         disabled telemetry costs one relaxed atomic load. span/span_with are exempt: \
         they gate internally and defer attribute construction to a closure.",
    ),
];

/// The explanation for `rule`, if it exists.
pub fn explain(rule: &str) -> Option<&'static str> {
    RULES
        .iter()
        .find(|(r, _)| *r == rule)
        .map(|&(_, text)| text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_requires_reason_and_matching_rule() {
        assert!(pragma_allows_in(
            "// lint: allow(P1) batch validated above",
            "P1"
        ));
        assert!(pragma_allows_in(
            "// lint: allow(P1, D1) shared reason",
            "D1"
        ));
        assert!(
            !pragma_allows_in("// lint: allow(P1)", "P1"),
            "reason required"
        );
        assert!(!pragma_allows_in("// lint: allow(P1) reason", "P2"));
        assert!(!pragma_allows_in("// allow(P1) reason", "P1"));
    }

    #[test]
    fn explain_covers_every_rule() {
        for (rule, _) in RULES {
            assert!(explain(rule).is_some());
        }
        assert!(explain("Z9").is_none());
    }
}
