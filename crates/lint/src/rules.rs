//! The rule engine: repo-specific invariants expressed over the token
//! stream produced by [`crate::lexer`] and the block/item structure from
//! [`crate::tree`].
//!
//! Eight rule series (see `--explain` or `DESIGN.md` §11):
//!
//! * **A — architecture/layering.** The 12-crate workspace follows an
//!   explicit allowed-edges DAG ([`crate::workspace`]): manifest edges
//!   outside it (A1), dependency cycles (A2), and ambient capabilities —
//!   `std::net` types, `thread::spawn`/`Builder`, `process::Command` —
//!   outside `main()`-edge files or granted capability islands (A3).
//! * **D — determinism.** Wall-clock reads, ambient RNG, and hash-order
//!   containers are banned from the numeric crates; a single stray source
//!   of nondeterminism silently invalidates every golden snapshot and the
//!   bitwise parallel==serial contract.
//! * **F — float determinism.** Raw float comparators (`partial_cmp`
//!   instead of `total_cmp`, F1), libm-backed transcendentals whose last
//!   bit varies across libm versions (F2), and unexplained `as` narrowing
//!   in kernel code (F3) are exactly the operations that break bit-exact
//!   replay across toolchains.
//! * **P — panic policy.** Library non-test code must not `unwrap`/
//!   `expect`/`panic!`/`todo!`/`unimplemented!`; recoverable failures flow
//!   through `Error` returns, and genuinely unreachable states carry a
//!   pragma explaining the invariant that protects them.
//! * **C — concurrency audit.** Every atomic `Ordering::…` use carries an
//!   adjacent `// ordering:` justification; `static mut` is forbidden; each
//!   crate root declares `#![forbid(unsafe_code)]`.
//! * **G — telemetry gating.** Eager metric emission inside the hot-path
//!   files must be *dominated* by a `metrics_enabled()`/`trace_enabled()`
//!   fast-path check — an enclosing non-negated `if`, or an earlier
//!   early-return guard — so disabled telemetry stays at one relaxed
//!   atomic load. Checked on the block tree, not by line adjacency.
//! * **S — SIMD confinement.** CPU intrinsics (`core::arch`/`std::arch`,
//!   `_mm*`, `is_x86_feature_detected!`) and the `unsafe` keyword live only
//!   in `crates/simd` — the one sanctioned unsafe island. Its crate root
//!   must carry `#![deny(unsafe_op_in_unsafe_fn)]`; every other crate root
//!   keeps `#![forbid(unsafe_code)]`.
//! * **U — suppression audit.** A `// lint: allow(RULE) reason` pragma that
//!   no longer suppresses anything is itself a finding (U1): dead pragmas
//!   silently widen the allowed surface when code moves underneath them.
//!
//! Suppression is per-site: `// lint: allow(RULE) reason` on the same line
//! or the directly preceding comment lines, with a mandatory reason. U1 is
//! not suppressible.

use crate::lexer::{lex, Tok, TokKind};
use crate::tree::{self, BlockKind, Tree};
use crate::workspace;

/// One diagnostic: where, which rule, and what went wrong.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Finding {
    /// Workspace-relative path with forward slashes.
    pub path: String,
    pub line: u32,
    pub col: u32,
    pub rule: &'static str,
    pub message: String,
}

impl Finding {
    /// The human-readable `file:line:col [RULE] message` form.
    pub fn render(&self) -> String {
        format!(
            "{}:{}:{} [{}] {}",
            self.path, self.line, self.col, self.rule, self.message
        )
    }
}

/// Crates whose non-test, non-`main()`-edge code must not read wall clocks
/// (D1). Timing belongs to `telemetry`/`obs`/`bench`; the serving library
/// takes time through an injected Clock.
const D1_SCOPE: &[&str] = &[
    "tensor", "nn", "snn", "core", "data", "models", "serve", "simd", "lint",
];

/// Crates exempt from the ambient-RNG and hash-order rules (D2/D3):
/// `bench` harnesses may shuffle however they like — their output is
/// human-read tables, not golden snapshots.
const D23_EXEMPT: &[&str] = &["bench"];

/// Crates exempt from the panic policy (P-series): `bench` binaries may
/// unwrap CLI arguments and I/O at top level.
const P_EXEMPT: &[&str] = &["bench"];

/// Crates exempt from the transcendental confinement (F2): bench
/// harnesses compute display statistics, not replayed numerics.
const F2_EXEMPT: &[&str] = &["bench"];

/// Files where libm-backed transcendentals are sanctioned: the (future)
/// tcl-simd vector-math module that will own polynomial replacements.
const F2_SANCTIONED: &[&str] = &["crates/simd/src/vecmath.rs"];

/// Hot-path files where eager telemetry emission must be gated (G-series).
const HOT_FILES: &[&str] = &[
    "crates/tensor/src/par.rs",
    "crates/snn/src/neuron.rs",
    "crates/snn/src/engine.rs",
];

/// Capability islands exempt from A3: files that legitimately own sockets
/// or spawn threads, each backed by a stated invariant.
const A3_GRANTS: &[(&str, &str)] = &[
    (
        "crates/obs/src/export.rs",
        "the metrics exporter owns the workspace's one listener socket and serving thread",
    ),
    (
        "crates/snn/src/engine.rs",
        "the engine worker pool spawns named threads that are deterministically joined \
         before results are read",
    ),
];

/// Telemetry functions that emit eagerly (pay allocation/formatting cost
/// even when sinks are off unless the caller gates them). `span`/`span_with`
/// are exempt: they gate internally and defer attribute construction to a
/// closure that never runs when tracing is off.
const EAGER_EMITTERS: &[&str] = &[
    "counter_add",
    "gauge_set",
    "gauge_set_indexed",
    "hist_record",
    "log",
];

/// Telemetry fast-path checks a G1 gate may test.
const GATE_CHECKS: &[&str] = &["metrics_enabled", "trace_enabled"];

/// Atomic memory-ordering variants audited by C1.
const ORDERINGS: &[&str] = &["Relaxed", "Acquire", "Release", "SeqCst", "AcqRel"];

/// libm-backed `f32`/`f64` methods whose last bit varies across libm
/// versions and platforms (F2). IEEE-exact operations (`sqrt`, `powi`,
/// `recip`, `mul_add`, `abs`, rounding) are deliberately absent.
const TRANSCENDENTALS: &[&str] = &[
    "acos", "acosh", "asin", "asinh", "atan", "atan2", "atanh", "cbrt", "cos", "cosh", "exp",
    "exp2", "exp_m1", "hypot", "ln", "ln_1p", "log10", "log2", "powf", "sin", "sinh", "tan",
    "tanh",
];

/// Narrowing `as` targets F3 audits in kernel code.
const NARROW_TARGETS: &[&str] = &["u8", "i8", "u16", "i16", "u32", "i32", "f32"];

/// `std::net` capability types A3 confines to `main()`-edge files.
const NET_TYPES: &[&str] = &["TcpListener", "TcpStream", "UdpSocket"];

/// Is `path` a `main()`-edge file — a binary entry point where wall clocks,
/// sockets, and thread spawning are the program's business?
pub fn is_bin_edge(path: &str) -> bool {
    path.contains("/src/bin/") || path.ends_with("src/main.rs")
}

/// A lexed + tree-parsed source file with the per-line indexes rules query.
pub struct SourceFile {
    pub path: String,
    pub text: String,
    /// Non-comment tokens, in order (indices here == tree token indices).
    ctoks: Vec<Tok>,
    /// Comment tokens, in order.
    comments: Vec<Tok>,
    /// Block/item structure over `ctoks`.
    pub tree: Tree,
    /// Per 1-based line: does any non-comment token start on it?
    line_has_code: Vec<bool>,
    /// Per 1-based line: comment byte spans starting on it.
    line_comments: Vec<Vec<(usize, usize)>>,
    /// Byte ranges of `#[test]` / `#[cfg(test)]`-guarded items.
    test_regions: Vec<(usize, usize)>,
}

impl SourceFile {
    pub fn parse(path: impl Into<String>, text: impl Into<String>) -> SourceFile {
        let text = text.into();
        let toks = lex(&text);
        let (mut ctoks, mut comments) = (Vec::new(), Vec::new());
        for t in toks {
            if t.is_comment() {
                comments.push(t);
            } else {
                ctoks.push(t);
            }
        }
        let tree = tree::build(&text, &ctoks);
        let max_line = ctoks
            .last()
            .map_or(0, |t| t.line as usize)
            .max(comments.last().map_or(0, |t| t.line as usize));
        let mut line_has_code = vec![false; max_line + 2];
        let mut line_comments: Vec<Vec<(usize, usize)>> = vec![Vec::new(); max_line + 2];
        for t in &ctoks {
            line_has_code[t.line as usize] = true;
        }
        for t in &comments {
            line_comments[t.line as usize].push((t.start, t.end));
        }
        // Test regions: byte spans of items carrying a test attribute.
        let mut test_regions = Vec::new();
        for it in &tree.items {
            if !it.has_test_attr {
                continue;
            }
            let (Some(first), Some(last)) =
                (ctoks.get(it.start), ctoks.get(it.end.wrapping_sub(1)))
            else {
                continue;
            };
            if first.start < last.end {
                test_regions.push((first.start, last.end));
            }
        }
        SourceFile {
            path: path.into(),
            text,
            ctoks,
            comments,
            tree,
            line_has_code,
            line_comments,
            test_regions,
        }
    }

    /// The `c`-th code (non-comment) token, if any.
    fn ct(&self, c: usize) -> Option<&Tok> {
        self.ctoks.get(c)
    }

    /// Text of the `c`-th code token.
    fn ctext(&self, c: usize) -> &str {
        self.ct(c).map_or("", |t| t.text(&self.text))
    }

    fn is_ident(&self, c: usize, name: &str) -> bool {
        self.ct(c)
            .is_some_and(|t| t.kind == TokKind::Ident && t.text(&self.text) == name)
    }

    fn is_punct(&self, c: usize, p: u8) -> bool {
        self.ct(c).is_some_and(|t| t.kind == TokKind::Punct(p))
    }

    /// `::` at code positions `c`, `c+1`.
    fn is_path_sep(&self, c: usize) -> bool {
        self.is_punct(c, b':') && self.is_punct(c + 1, b':')
    }

    fn in_test_region(&self, offset: usize) -> bool {
        self.test_regions
            .iter()
            .any(|&(s, e)| (s..e).contains(&offset))
    }

    /// Comment byte spans attached to `line`: on the line itself, or on a
    /// run of directly preceding comment-only lines.
    fn adjacent_comment_spans(&self, line: u32) -> Vec<(usize, usize)> {
        let mut lines = vec![line as usize];
        let mut l = line as usize;
        while l > 1 {
            l -= 1;
            let comment_only = !self.line_has_code.get(l).copied().unwrap_or(false)
                && !self.line_comments.get(l).is_none_or(Vec::is_empty);
            if !comment_only {
                break;
            }
            lines.push(l);
        }
        lines
            .into_iter()
            .flat_map(|l| {
                self.line_comments
                    .get(l)
                    .map(Vec::as_slice)
                    .unwrap_or(&[])
                    .iter()
                    .copied()
            })
            .collect()
    }

    /// Does `line` carry (or directly follow) a comment containing `marker`?
    fn has_adjacent_marker(&self, marker: &str, line: u32) -> bool {
        self.adjacent_comment_spans(line)
            .into_iter()
            .any(|(s, e)| self.text.get(s..e).unwrap_or("").contains(marker))
    }
}

/// One `// lint: allow(R1, R2) reason` pragma instance, with per-rule
/// used-flags maintained by the suppression check so U1 can report the
/// rules that never fired.
struct Pragma {
    line: u32,
    col: u32,
    /// Byte span of the carrying comment.
    span: (usize, usize),
    /// `(rule id, fired at least once)`.
    rules: Vec<(String, bool)>,
}

/// Parses one comment for `lint: allow(R1, R2) reason`; the reason is
/// mandatory — an allow without a stated justification does not count.
fn parse_pragma(comment: &str) -> Option<Vec<String>> {
    let at = comment.find("lint:")?;
    let after = comment[at + 5..].trim_start();
    let rest = after.strip_prefix("allow(")?;
    let close = rest.find(')')?;
    if rest[close + 1..].trim().is_empty() {
        return None;
    }
    Some(
        rest[..close]
            .split(',')
            .map(|r| r.trim().to_string())
            .filter(|r| !r.is_empty())
            .collect(),
    )
}

fn collect_pragmas(file: &SourceFile) -> Vec<Pragma> {
    let mut out = Vec::new();
    for t in &file.comments {
        let Some(rules) = parse_pragma(t.text(&file.text)) else {
            continue;
        };
        out.push(Pragma {
            line: t.line,
            col: t.col,
            span: (t.start, t.end),
            rules: rules.into_iter().map(|r| (r, false)).collect(),
        });
    }
    out
}

/// Is the finding `rule` at `line` suppressed by an adjacent pragma?
/// Marks every matching pragma rule as used (so U1 stays quiet about it).
fn pragma_allows(file: &SourceFile, pragmas: &mut [Pragma], rule: &str, line: u32) -> bool {
    let spans = file.adjacent_comment_spans(line);
    let mut allowed = false;
    for p in pragmas.iter_mut() {
        if !spans.contains(&p.span) {
            continue;
        }
        for (r, used) in p.rules.iter_mut() {
            if r == rule {
                *used = true;
                allowed = true;
            }
        }
    }
    allowed
}

/// Is the G1 gate identifier at `g` (a `GATE_CHECKS` member) negated?
/// Walks back across `path::segments` to the head, then looks for `!`.
/// (`a != enabled()` is safe: `!=` lexes as `!` `=`, so the token directly
/// before the path head is `=`.)
fn gate_negated(file: &SourceFile, lo: usize, g: usize) -> bool {
    let mut j = g;
    while j >= lo + 3
        && file.is_path_sep(j - 2)
        && file.ct(j - 3).is_some_and(|t| t.kind == TokKind::Ident)
    {
        j -= 3;
    }
    j > lo && file.is_punct(j - 1, b'!')
}

/// Scans the condition range for a gate check; returns `(index, negated)`
/// of the first one found.
fn find_gate(file: &SourceFile, cond: (usize, usize)) -> Option<(usize, bool)> {
    for g in cond.0..cond.1 {
        if GATE_CHECKS.iter().any(|c| file.is_ident(g, c)) {
            return Some((g, gate_negated(file, cond.0, g)));
        }
    }
    None
}

/// Is the binary operator `op op` (`||` or `&&`) present at paren depth 0
/// within the range? Closure pipes inside call parens sit at depth > 0.
fn has_toplevel_op(file: &SourceFile, cond: (usize, usize), op: u8) -> bool {
    let mut depth = 0usize;
    for k in cond.0..cond.1 {
        match file.ct(k).map(|t| t.kind) {
            Some(TokKind::Punct(b'(')) | Some(TokKind::Punct(b'[')) => depth += 1,
            Some(TokKind::Punct(b')')) | Some(TokKind::Punct(b']')) => {
                depth = depth.saturating_sub(1)
            }
            Some(TokKind::Punct(p))
                if p == op && depth == 0 && file.is_punct(k + 1, op) && k + 1 < cond.1 =>
            {
                return true;
            }
            _ => {}
        }
    }
    false
}

/// A *positive gate*: the `if` condition contains a non-negated
/// `metrics_enabled()`/`trace_enabled()` and no top-level `||` (which
/// would open a path into the block with telemetry disabled).
fn is_positive_gate(file: &SourceFile, cond: (usize, usize)) -> bool {
    matches!(find_gate(file, cond), Some((_, false))) && !has_toplevel_op(file, cond, b'|')
}

/// An *early-return guard*: `if !enabled() { return/continue/break; }`.
/// The condition must contain a negated gate and no top-level `&&` (which
/// would let the disabled case fall through); the then-block must
/// terminate at its own level.
fn is_guard_block(file: &SourceFile, t: &Tree, block: usize) -> bool {
    let Some(b) = t.blocks.get(block) else {
        return false;
    };
    if b.kind != BlockKind::IfThen
        || !matches!(find_gate(file, b.cond), Some((_, true)))
        || has_toplevel_op(file, b.cond, b'&')
    {
        return false;
    }
    let (lo, hi) = (b.open.saturating_add(1), b.close.min(file.ctoks.len()));
    (lo..hi).any(|k| {
        t.innermost(k) == block
            && ["return", "continue", "break"]
                .iter()
                .any(|kw| file.is_ident(k, kw))
    })
}

/// Dominator analysis for G1: is the emitter at code token `ci` dominated
/// by a telemetry gate — an enclosing positive `if`, or an early-return
/// guard that completed before `ci` in some enclosing block?
fn dominated_by_gate(file: &SourceFile, t: &Tree, ci: usize) -> bool {
    for &b in &t.ancestor_chain(t.innermost(ci)) {
        let Some(blk) = t.blocks.get(b) else { continue };
        if blk.kind == BlockKind::IfThen && is_positive_gate(file, blk.cond) {
            return true;
        }
        for &ch in &blk.children {
            let Some(c) = t.blocks.get(ch) else { continue };
            if c.close < ci && is_guard_block(file, t, ch) {
                return true;
            }
        }
    }
    false
}

/// Lints one file belonging to crate `krate` (the directory name under
/// `crates/`). `path` must be workspace-relative with `/` separators.
pub fn check_file(path: &str, text: &str, krate: &str) -> Vec<Finding> {
    let file = SourceFile::parse(path, text);
    let mut pragmas = collect_pragmas(&file);
    let mut out = Vec::new();
    let bin_edge = is_bin_edge(path);
    let d1_applies = D1_SCOPE.contains(&krate) && !bin_edge;
    let d23_applies = !D23_EXEMPT.contains(&krate);
    let p_applies = !P_EXEMPT.contains(&krate);
    let s_applies = krate != "simd";
    let f2_applies =
        !F2_EXEMPT.contains(&krate) && !F2_SANCTIONED.iter().any(|s| path.ends_with(s));
    let a3_applies = !bin_edge && !A3_GRANTS.iter().any(|(f, _)| path.ends_with(f));
    let hot = HOT_FILES.iter().any(|h| file.path.ends_with(h));

    let emit = |file: &SourceFile,
                pragmas: &mut [Pragma],
                t: &Tok,
                rule: &'static str,
                msg: String,
                out: &mut Vec<Finding>| {
        if !pragma_allows(file, pragmas, rule, t.line) {
            out.push(Finding {
                path: file.path.clone(),
                line: t.line,
                col: t.col,
                rule,
                message: msg,
            });
        }
    };

    // ---- A1 (file half): `use tcl_*` heads must be allowed DAG edges ----
    let own_package = format!("tcl-{krate}");
    for it in &file.tree.items {
        if file.ctext(it.kw) != "use" {
            continue;
        }
        let Some(head_tok) = file.ct(it.kw + 1) else {
            continue;
        };
        let head = head_tok.text(&file.text);
        let Some(rest) = head.strip_prefix("tcl_") else {
            continue;
        };
        let package = format!("tcl-{}", rest.replace('_', "-"));
        let dev = file.in_test_region(head_tok.start);
        if package != own_package && !workspace::allowed_dep(krate, &package, dev) {
            let t = *head_tok;
            emit(
                &file,
                &mut pragmas,
                &t,
                "A1",
                format!(
                    "`use {head}` reaches outside crate `{own_package}`'s allowed \
                     dependencies; the layering DAG (DESIGN.md §11) has no \
                     {own_package} -> {package} edge"
                ),
                &mut out,
            );
        }
    }

    for c in 0..file.ctoks.len() {
        let Some(&t) = file.ct(c) else { break };
        if t.kind != TokKind::Ident {
            continue;
        }
        let name = t.text(&file.text);
        let in_test = file.in_test_region(t.start);

        // ---- A3: ambient capabilities confined to main()-edge files ----
        if a3_applies && !in_test {
            let is_net_type = NET_TYPES.contains(&name);
            let after_path =
                |head: &str| c >= 3 && file.is_path_sep(c - 2) && file.is_ident(c - 3, head);
            let is_spawn = (name == "spawn" || name == "Builder") && after_path("thread");
            let is_cmd = name == "Command" && after_path("process");
            if is_net_type || is_spawn || is_cmd {
                let what = if is_net_type {
                    format!("network type `{name}`")
                } else if is_cmd {
                    "`process::Command`".to_string()
                } else {
                    format!("`thread::{name}`")
                };
                emit(
                    &file,
                    &mut pragmas,
                    &t,
                    "A3",
                    format!(
                        "{what} outside a main()-edge file; ambient capabilities live \
                         at binary entry points or in granted islands (DESIGN.md §11)"
                    ),
                    &mut out,
                );
            }
        }

        // ---- D-series: determinism ----
        if d1_applies && !in_test {
            if (name == "SystemTime" || name == "Instant")
                && file.is_path_sep(c + 1)
                && file.is_ident(c + 3, "now")
            {
                emit(
                    &file,
                    &mut pragmas,
                    &t,
                    "D1",
                    format!(
                        "wall-clock read `{name}::now` in deterministic crate `{krate}`; \
                         timing belongs to telemetry/bench or an injected Clock"
                    ),
                    &mut out,
                );
            }
            if name == "thread" && file.is_path_sep(c + 1) && file.is_ident(c + 3, "sleep") {
                emit(
                    &file,
                    &mut pragmas,
                    &t,
                    "D1",
                    format!(
                        "blocking `thread::sleep` in deterministic crate `{krate}`; \
                         time must flow through an injected Clock (main()-edge only)"
                    ),
                    &mut out,
                );
            }
        }
        if d23_applies && !in_test {
            if name == "thread_rng" || name == "from_entropy" {
                emit(
                    &file,
                    &mut pragmas,
                    &t,
                    "D2",
                    format!(
                        "ambient RNG `{name}` in deterministic crate `{krate}`; \
                         randomness must flow through SeededRng/SmallRng"
                    ),
                    &mut out,
                );
            }
            if name == "rand" && file.is_path_sep(c + 1) && file.is_ident(c + 3, "random") {
                emit(
                    &file,
                    &mut pragmas,
                    &t,
                    "D2",
                    format!("ambient RNG `rand::random` in deterministic crate `{krate}`"),
                    &mut out,
                );
            }
            if name == "HashMap" || name == "HashSet" {
                emit(
                    &file,
                    &mut pragmas,
                    &t,
                    "D3",
                    format!(
                        "hash-order container `{name}` in deterministic crate `{krate}`; \
                         iteration order is nondeterministic — use BTreeMap/BTreeSet/Vec"
                    ),
                    &mut out,
                );
            }
        }

        // ---- F-series: float determinism ----
        if !in_test {
            if name == "partial_cmp"
                && (c > 0 && file.is_punct(c - 1, b'.') || c >= 2 && file.is_path_sep(c - 2))
            {
                emit(
                    &file,
                    &mut pragmas,
                    &t,
                    "F1",
                    "raw float comparator `partial_cmp`; use `total_cmp` — it is total \
                     over NaN and bit-stable across platforms"
                        .to_string(),
                    &mut out,
                );
            }
            if f2_applies
                && TRANSCENDENTALS.contains(&name)
                && file.is_punct(c + 1, b'(')
                && (c > 0 && file.is_punct(c - 1, b'.') || c >= 2 && file.is_path_sep(c - 2))
            {
                emit(
                    &file,
                    &mut pragmas,
                    &t,
                    "F2",
                    format!(
                        "libm transcendental `.{name}()` outside the sanctioned vec-math \
                         module; its last bit varies across libm versions, breaking \
                         bit-exact replay — confine it or carry a reasoned pragma"
                    ),
                    &mut out,
                );
            }
            if krate == "simd"
                && name == "as"
                && file
                    .ct(c + 1)
                    .is_some_and(|n| NARROW_TARGETS.contains(&n.text(&file.text)))
            {
                emit(
                    &file,
                    &mut pragmas,
                    &t,
                    "F3",
                    format!(
                        "narrowing cast `as {}` in kernel code without a reasoned pragma; \
                         silent truncation/rounding in kernels is how bit-exactness dies",
                        file.ctext(c + 1)
                    ),
                    &mut out,
                );
            }
        }

        // ---- P-series: panic policy ----
        if p_applies && !in_test {
            if (name == "unwrap" || name == "expect")
                && c > 0
                && file.is_punct(c - 1, b'.')
                && file.is_punct(c + 1, b'(')
            {
                emit(
                    &file,
                    &mut pragmas,
                    &t,
                    "P1",
                    format!(
                        "`.{name}()` in library non-test code; return an Error or carry \
                         a `// lint: allow(P1) reason` pragma naming the invariant"
                    ),
                    &mut out,
                );
            }
            if (name == "panic" || name == "todo" || name == "unimplemented")
                && file.is_punct(c + 1, b'!')
            {
                emit(
                    &file,
                    &mut pragmas,
                    &t,
                    "P2",
                    format!("`{name}!` in library non-test code; library failures are Errors"),
                    &mut out,
                );
            }
        }

        // ---- C-series: concurrency audit (test code included) ----
        if name == "Ordering"
            && file.is_path_sep(c + 1)
            && file
                .ct(c + 3)
                .is_some_and(|v| ORDERINGS.contains(&v.text(&file.text)))
            && !file.has_adjacent_marker("ordering:", t.line)
        {
            emit(
                &file,
                &mut pragmas,
                &t,
                "C1",
                format!(
                    "atomic `Ordering::{}` without an adjacent `// ordering:` \
                     justification comment",
                    file.ctext(c + 3)
                ),
                &mut out,
            );
        }
        if name == "static" && file.is_ident(c + 1, "mut") {
            emit(
                &file,
                &mut pragmas,
                &t,
                "C2",
                "`static mut` is forbidden; use atomics, OnceLock, or thread_local".to_string(),
                &mut out,
            );
        }

        // ---- S-series: SIMD/unsafe confinement (test code included) ----
        if s_applies {
            if name == "arch" && c >= 3 && file.is_path_sep(c - 2) {
                let root = file.ctext(c - 3);
                if root == "core" || root == "std" {
                    emit(
                        &file,
                        &mut pragmas,
                        &t,
                        "S1",
                        format!(
                            "CPU intrinsics module `{root}::arch` outside `crates/simd`; \
                             all intrinsics live behind the tcl-simd dispatch layer"
                        ),
                        &mut out,
                    );
                }
            }
            if name.starts_with("_mm") {
                emit(
                    &file,
                    &mut pragmas,
                    &t,
                    "S1",
                    format!(
                        "SIMD intrinsic `{name}` outside `crates/simd`; call a \
                         tcl-simd kernel instead"
                    ),
                    &mut out,
                );
            }
            if name == "is_x86_feature_detected" {
                emit(
                    &file,
                    &mut pragmas,
                    &t,
                    "S1",
                    "ISA feature detection outside `crates/simd`; dispatch decisions \
                     are tcl-simd's alone (`tcl_simd::current()`)"
                        .to_string(),
                    &mut out,
                );
            }
            if name == "unsafe" {
                emit(
                    &file,
                    &mut pragmas,
                    &t,
                    "S1",
                    format!(
                        "`unsafe` outside `crates/simd` (crate `{krate}`); the rest of \
                         the workspace stays `#![forbid(unsafe_code)]`"
                    ),
                    &mut out,
                );
            }
        }

        // ---- G-series: telemetry gating on hot paths ----
        if hot
            && !in_test
            && EAGER_EMITTERS.contains(&name)
            && file.is_punct(c + 1, b'(')
            && !dominated_by_gate(&file, &file.tree, c)
        {
            emit(
                &file,
                &mut pragmas,
                &t,
                "G1",
                format!(
                    "eager telemetry emission `{name}(…)` on a hot path is not dominated \
                     by a metrics_enabled()/trace_enabled() fast-path check (enclosing \
                     non-negated `if`, or an earlier `if !enabled() {{ return; }}` guard)"
                ),
                &mut out,
            );
        }
    }

    // ---- U1: dead suppressions (never themselves suppressible) ----
    for p in &pragmas {
        for (rule, used) in &p.rules {
            let known = RULES.iter().any(|(r, _)| r == rule);
            if known && !used {
                out.push(Finding {
                    path: file.path.clone(),
                    line: p.line,
                    col: p.col,
                    rule: "U1",
                    message: format!(
                        "suppression `lint: allow({rule})` no longer fires — the code it \
                         excused has moved or the rule no longer applies here; delete \
                         the dead pragma"
                    ),
                });
            }
        }
    }
    // Deterministic per-file order (U1 findings are appended post-scan).
    out.sort_by(|a, b| (a.line, a.col, a.rule).cmp(&(b.line, b.col, b.rule)));
    out
}

/// C3 check for a crate root: `lib.rs` must carry `#![forbid(unsafe_code)]`.
///
/// Exception: `crates/simd` is the workspace's one sanctioned unsafe island
/// (CPU intrinsics require it), so it cannot forbid `unsafe_code`; its root
/// must instead carry `#![deny(unsafe_op_in_unsafe_fn)]`, which forces every
/// pointer dereference inside an `unsafe fn` to be re-justified in an inner
/// `unsafe {}` block.
pub fn check_crate_root(path: &str, text: &str) -> Option<Finding> {
    let file = SourceFile::parse(path, text);
    let (attr, lint_name) = if path.ends_with("crates/simd/src/lib.rs") {
        ("deny", "unsafe_op_in_unsafe_fn")
    } else {
        ("forbid", "unsafe_code")
    };
    let mut c = 0usize;
    while file.ct(c).is_some() {
        if file.is_punct(c, b'#')
            && file.is_punct(c + 1, b'!')
            && file.is_punct(c + 2, b'[')
            && file.is_ident(c + 3, attr)
            && file.is_punct(c + 4, b'(')
            && file.is_ident(c + 5, lint_name)
        {
            return None;
        }
        c += 1;
    }
    Some(Finding {
        path: path.to_string(),
        line: 1,
        col: 1,
        rule: "C3",
        message: format!("crate root is missing `#![{attr}({lint_name})]`"),
    })
}

/// Rule identifiers with their `--explain` texts.
pub const RULES: &[(&str, &str)] = &[
    (
        "A1",
        "The 12-crate workspace follows an explicit allowed-edges DAG (tcl_lint::\
         workspace::ALLOWED_DEPS; rendered by `tcl-lint --deps`). Every Cargo.toml \
         dependency edge and every top-level `use tcl_*` import must be listed. \
         Adding an edge is a deliberate architectural act: extend the table in the \
         same PR and justify it in DESIGN.md §11. Dev-dependency reach-down for \
         tests is separately allowed (ALLOWED_DEV_EXTRAS).",
    ),
    (
        "A2",
        "The realized crate graph must be acyclic (dev edges included — a dev cycle \
         still wedges `cargo build --tests`). Reported on the manifest line that \
         closes the cycle.",
    ),
    (
        "A3",
        "Ambient capabilities — std::net types (TcpListener/TcpStream/UdpSocket), \
         thread::spawn / thread::Builder, process::Command — are confined to \
         main()-edge files (src/bin/*, src/main.rs) and explicitly granted \
         capability islands (obs::export's listener thread, snn::engine's joined \
         worker pool). Library code must take I/O and concurrency through injected \
         traits (Clock, Transport) or the sanctioned pools, so the deterministic \
         simulation story (virtual clocks, loopback transports) holds everywhere. \
         Scoped `std::thread::scope` fan-out is allowed: it joins deterministically \
         before results are read.",
    ),
    (
        "D1",
        "Wall-clock reads (SystemTime::now, Instant::now) and blocking sleeps \
         (thread::sleep) are banned from the deterministic crates (tensor, nn, snn, \
         core, data, models, serve, simd, lint) outside test code and main()-edge \
         files (src/bin/*, src/main.rs — inferred from the path, not a hardcoded \
         list). Results must be a pure function of inputs + seeds so golden \
         snapshots, the bitwise parallel==serial contract, and the virtual-clock \
         serving simulations hold; timing lives in telemetry/obs/bench, and the \
         serving library takes time through an injected Clock. Timing that only \
         feeds gated telemetry may carry a `// lint: allow(D1) reason` pragma.",
    ),
    (
        "D2",
        "Ambient randomness (thread_rng, rand::random, from_entropy) is banned from \
         every crate except bench. All randomness flows through SeededRng/SmallRng \
         so every run replays bit-exactly from its seed — the property the \
         checkpoint/resume and engine-equivalence suites assert.",
    ),
    (
        "D3",
        "std::collections::HashMap/HashSet are banned from every crate except bench: \
         their iteration order varies run to run (RandomState), which silently breaks \
         golden snapshots when anything numeric is derived from iteration. Use \
         BTreeMap/BTreeSet or a Vec.",
    ),
    (
        "F1",
        "partial_cmp (and float comparators built on it) is forbidden: it is partial \
         over NaN, so sorts panic or silently reorder depending on data. f32::total_cmp \
         implements the IEEE 754 totalOrder predicate — total, deterministic, and \
         bit-stable across platforms. Applies everywhere, bench included: leaderboard \
         sorts feed the paper's tables.",
    ),
    (
        "F2",
        "libm-backed transcendentals (exp, ln, sin, cos, tanh, powf, …) are confined \
         to the sanctioned vec-math module (crates/simd/src/vecmath.rs): their last \
         bit varies across libm versions and platforms, which breaks bit-exact replay \
         of checkpoints and golden outputs. IEEE-exact ops (sqrt, powi, mul_add) are \
         fine anywhere. Sites with a frozen-reference story (e.g. the Box–Muller \
         normal sampler behind a fixed seed) carry a `// lint: allow(F2) reason` \
         pragma. bench is exempt (display statistics, not replayed numerics).",
    ),
    (
        "F3",
        "`as` narrowing casts (to u8/i8/u16/i16/u32/i32/f32) in crates/simd kernel \
         code must carry a reasoned pragma: silent truncation or rounding inside a \
         kernel is invisible at the API boundary and is exactly how bit-exactness \
         between scalar and SIMD paths dies. Use try_from / explicit rounding, or \
         state why the value fits.",
    ),
    (
        "P1",
        ".unwrap()/.expect() are forbidden in library non-test code. Recoverable \
         failures return Errors; genuinely unreachable states carry \
         `// lint: allow(P1) <invariant>` naming the invariant that protects them, so \
         every residual panic site is enumerable and justified.",
    ),
    (
        "P2",
        "panic!/todo!/unimplemented! are forbidden in library non-test code; library \
         failures are Errors. assert!/debug_assert! remain available for documented \
         programmer-error contracts.",
    ),
    (
        "C1",
        "Every atomic Ordering::{Relaxed,Acquire,Release,SeqCst,AcqRel} use must carry \
         an adjacent `// ordering:` comment justifying why that ordering is sufficient \
         (what the atomic synchronizes, or why no synchronization is needed). Applies \
         to test code too — the audit is about every ordering decision being written \
         down.",
    ),
    (
        "C2",
        "`static mut` is forbidden everywhere: it is wildly unsafe under threads and \
         unnecessary given atomics, OnceLock, and thread_local.",
    ),
    (
        "C3",
        "Every crate root must declare #![forbid(unsafe_code)]. forbid (not deny) means \
         no inner allow can sneak unsafe back in; the whole workspace stays safe Rust. \
         Sole exception: crates/simd — the sanctioned unsafe island — whose root must \
         instead declare #![deny(unsafe_op_in_unsafe_fn)].",
    ),
    (
        "S1",
        "CPU intrinsics (core::arch/std::arch paths, _mm* identifiers, \
         is_x86_feature_detected!) and the `unsafe` keyword are confined to \
         crates/simd, the one crate allowed to hold them. Everything else reaches \
         vector code through the safe tcl-simd kernel API (gebp_4x16, axpy, if_step, \
         gather_rows) under runtime dispatch, so the unsafe audit surface stays one \
         small crate. Applies to test code too.",
    ),
    (
        "G1",
        "On hot-path files (tcl_tensor::par workers, IfNeurons::step, the SNN engine), \
         eager telemetry emission (counter_add, gauge_set, gauge_set_indexed, \
         hist_record, log) must be *dominated* by a metrics_enabled()/trace_enabled() \
         fast-path check, judged on the block tree: an enclosing `if` whose condition \
         tests the gate non-negated with no top-level `||`, or an earlier \
         `if !enabled() { return; }` guard in an enclosing block. A gate in a sibling \
         block does not count — that was the false-negative class of the old \
         line-adjacency heuristic. span/span_with are exempt: they gate internally.",
    ),
    (
        "U1",
        "A `// lint: allow(RULE) reason` pragma whose rule never fires on the lines it \
         covers is dead: the code it excused moved or the rule's scope changed, and a \
         stale allow silently widens the permitted surface for whatever lands there \
         next. Delete it (or move it to the site it was meant for). U1 itself cannot \
         be suppressed.",
    ),
];

/// The explanation for `rule`, if it exists.
pub fn explain(rule: &str) -> Option<&'static str> {
    RULES
        .iter()
        .find(|(r, _)| *r == rule)
        .map(|&(_, text)| text)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn pragma_requires_reason_and_lists_rules() {
        assert_eq!(
            parse_pragma("// lint: allow(P1) batch validated above"),
            Some(vec!["P1".to_string()])
        );
        assert_eq!(
            parse_pragma("// lint: allow(P1, D1) shared reason"),
            Some(vec!["P1".to_string(), "D1".to_string()])
        );
        assert_eq!(parse_pragma("// lint: allow(P1)"), None, "reason required");
        assert_eq!(parse_pragma("// allow(P1) reason"), None);
    }

    #[test]
    fn explain_covers_every_rule() {
        for (rule, _) in RULES {
            assert!(explain(rule).is_some());
        }
        assert!(explain("Z9").is_none());
    }

    #[test]
    fn bin_edge_paths_are_detected() {
        assert!(is_bin_edge("crates/serve/src/bin/tcl_serve.rs"));
        assert!(is_bin_edge("crates/lint/src/main.rs"));
        assert!(!is_bin_edge("crates/serve/src/server.rs"));
        assert!(!is_bin_edge("crates/obs/src/binary.rs"));
    }
}
