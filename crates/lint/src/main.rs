//! `tcl-lint` CLI: walk the workspace, report invariant violations, exit
//! non-zero on any finding so CI can gate on it.

#![forbid(unsafe_code)]

use std::path::PathBuf;
use std::process::ExitCode;

use tcl_lint::{explain, render_json, run, workspace, RULES};

const USAGE: &str = "\
tcl-lint: workspace-aware static analyzer for the TCL repo

USAGE:
    cargo run -p tcl-lint [--] [OPTIONS]

OPTIONS:
    --format <text|json|dot>  Output format (default: text, one
                              `file:line:col [RULE] message` per finding;
                              dot is valid only with --deps)
    --deps                 Print the crate-dependency graph (text, or
                           Graphviz DOT with --format dot) and exit
    --explain <RULE>       Print what a rule enforces and why, then exit
    --self-check           Lint only the tcl-lint crate itself
    --root <DIR>           Workspace root (default: discovered from cwd)
    --list-rules           Print the rule IDs with one-line summaries
    -h, --help             This help

EXIT STATUS: 0 clean, 1 findings reported, 2 usage or I/O error.

Rules: A1-A3 architecture/layering, D1-D3 determinism, F1-F3 float
determinism, P1-P2 panic policy, C1-C3 concurrency audit, G1 telemetry
gating, S1 SIMD confinement, U1 suppression audit. Suppress a site with
`// lint: allow(RULE) reason` (same line or directly above; the reason
is mandatory; U1 is not suppressible).";

#[derive(PartialEq, Clone, Copy)]
enum Format {
    Text,
    Json,
    Dot,
}

struct Opts {
    format: Format,
    deps: bool,
    self_check: bool,
    root: Option<PathBuf>,
    explain: Option<String>,
    list_rules: bool,
}

fn parse_args(args: &[String]) -> Result<Opts, String> {
    let mut opts = Opts {
        format: Format::Text,
        deps: false,
        self_check: false,
        root: None,
        explain: None,
        list_rules: false,
    };
    let mut it = args.iter();
    while let Some(arg) = it.next() {
        match arg.as_str() {
            "--format" => match it.next().map(String::as_str) {
                Some("json") => opts.format = Format::Json,
                Some("text") => opts.format = Format::Text,
                Some("dot") => opts.format = Format::Dot,
                other => return Err(format!("--format expects text|json|dot, got {other:?}")),
            },
            "--deps" => opts.deps = true,
            "--explain" => match it.next() {
                Some(rule) => opts.explain = Some(rule.clone()),
                None => return Err("--explain expects a rule id (e.g. D1)".to_string()),
            },
            "--root" => match it.next() {
                Some(dir) => opts.root = Some(PathBuf::from(dir)),
                None => return Err("--root expects a directory".to_string()),
            },
            "--self-check" => opts.self_check = true,
            "--list-rules" => opts.list_rules = true,
            "-h" | "--help" => return Err(String::new()),
            other => return Err(format!("unknown argument {other:?}")),
        }
    }
    Ok(opts)
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().skip(1).collect();
    let opts = match parse_args(&args) {
        Ok(opts) => opts,
        Err(msg) if msg.is_empty() => {
            println!("{USAGE}");
            return ExitCode::SUCCESS;
        }
        Err(msg) => {
            eprintln!("tcl-lint: {msg}\n\n{USAGE}");
            return ExitCode::from(2);
        }
    };

    if opts.list_rules {
        for (rule, text) in RULES {
            // Cut at the first sentence boundary, not the first '.', so
            // summaries like P1's ".unwrap()/.expect() ..." survive intact.
            let first = text
                .split_once(". ")
                .map_or_else(|| text.trim_end_matches('.'), |(s, _)| s);
            println!("{rule}  {first}.");
        }
        return ExitCode::SUCCESS;
    }
    if let Some(rule) = &opts.explain {
        return match explain(rule) {
            Some(text) => {
                println!("{rule}: {text}");
                ExitCode::SUCCESS
            }
            None => {
                eprintln!(
                    "tcl-lint: unknown rule {rule:?}; known rules: {}",
                    RULES.iter().map(|&(r, _)| r).collect::<Vec<_>>().join(", ")
                );
                ExitCode::from(2)
            }
        };
    }

    let start = match &opts.root {
        Some(dir) => dir.clone(),
        None => std::env::current_dir().unwrap_or_else(|_| PathBuf::from(".")),
    };
    let root = match tcl_lint::find_workspace_root(&start) {
        Ok(root) => root,
        Err(err) => {
            eprintln!("tcl-lint: {err}");
            return ExitCode::from(2);
        }
    };
    if opts.deps {
        let manifests = match workspace::load(&root) {
            Ok(m) => m,
            Err(err) => {
                eprintln!("tcl-lint: {err}");
                return ExitCode::from(2);
            }
        };
        match opts.format {
            Format::Dot => print!("{}", workspace::render_dot(&manifests)),
            _ => print!("{}", workspace::render_text(&manifests)),
        }
        return ExitCode::SUCCESS;
    }
    if opts.format == Format::Dot {
        eprintln!("tcl-lint: --format dot is only valid with --deps\n\n{USAGE}");
        return ExitCode::from(2);
    }
    let only = opts.self_check.then_some("lint");
    let started = std::time::Instant::now();
    let report = match run(&root, only) {
        Ok(report) => report,
        Err(err) => {
            eprintln!("tcl-lint: {err}");
            return ExitCode::from(2);
        }
    };
    if opts.format == Format::Json {
        println!("{}", render_json(&report.findings));
    } else {
        for f in &report.findings {
            println!("{}", f.render());
        }
        eprintln!(
            "tcl-lint: {} finding(s) in {} file(s) across {} crate(s) ({} ms)",
            report.findings.len(),
            report.files_scanned,
            report.crates_scanned,
            started.elapsed().as_millis()
        );
    }
    if report.findings.is_empty() {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
