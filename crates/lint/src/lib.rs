//! `tcl-lint` — a workspace-aware static analyzer for the TCL repo.
//!
//! Enforces the invariants the repo's correctness story rests on but that
//! no off-the-shelf tool (clippy included) can express: bitwise
//! parallel==serial determinism, the library panic policy, the atomic
//! memory-ordering audit, near-zero-cost gated telemetry, and the
//! confinement of intrinsics/`unsafe` to `crates/simd`. See
//! [`rules`] for the rule series and `DESIGN.md` §11 for the rationale.
//!
//! Built per the vendor-everything policy: a from-scratch lexer
//! ([`lexer`]) and token matcher over `std` only — no external
//! dependencies. The binary (`cargo run -p tcl-lint`) walks every
//! workspace crate under `crates/`, prints findings as
//! `file:line:col [RULE] message` (or JSON with `--format json`), and
//! exits non-zero on any finding so `ci.sh` can gate on it.

#![forbid(unsafe_code)]

pub mod lexer;
pub mod rules;
pub mod tree;
pub mod workspace;

use std::fmt;
use std::fs;
use std::path::{Path, PathBuf};

pub use rules::{check_crate_root, check_file, explain, Finding, RULES};

/// Errors from workspace discovery and file I/O.
#[derive(Debug)]
pub enum LintError {
    /// No ancestor of the start directory holds a `[workspace]` Cargo.toml.
    NoWorkspace { start: PathBuf },
    /// Reading a file or directory failed.
    Io { path: PathBuf, err: std::io::Error },
}

impl fmt::Display for LintError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            LintError::NoWorkspace { start } => write!(
                f,
                "no workspace root ([workspace] in Cargo.toml) found above {}",
                start.display()
            ),
            LintError::Io { path, err } => write!(f, "{}: {err}", path.display()),
        }
    }
}

pub(crate) fn io_err(path: &Path) -> impl FnOnce(std::io::Error) -> LintError + '_ {
    move |err| LintError::Io {
        path: path.to_path_buf(),
        err,
    }
}

/// Walks upward from `start` to the first directory whose `Cargo.toml`
/// declares `[workspace]`.
pub fn find_workspace_root(start: &Path) -> Result<PathBuf, LintError> {
    let mut dir = Some(start);
    while let Some(d) = dir {
        let manifest = d.join("Cargo.toml");
        if let Ok(text) = fs::read_to_string(&manifest) {
            if text.contains("[workspace]") {
                return Ok(d.to_path_buf());
            }
        }
        dir = d.parent();
    }
    Err(LintError::NoWorkspace {
        start: start.to_path_buf(),
    })
}

/// Workspace crates: `(dir_name, absolute_path)` for each subdirectory of
/// `crates/` holding a `Cargo.toml`, sorted by name for deterministic
/// output order.
pub fn workspace_crates(root: &Path) -> Result<Vec<(String, PathBuf)>, LintError> {
    let crates_dir = root.join("crates");
    let mut out = Vec::new();
    let entries = fs::read_dir(&crates_dir).map_err(io_err(&crates_dir))?;
    for entry in entries {
        let entry = entry.map_err(io_err(&crates_dir))?;
        let path = entry.path();
        if path.is_dir() && path.join("Cargo.toml").is_file() {
            let name = entry.file_name().to_string_lossy().into_owned();
            out.push((name, path));
        }
    }
    out.sort();
    Ok(out)
}

/// All `.rs` files under `dir`, recursively, sorted for determinism.
pub fn rust_files(dir: &Path) -> Result<Vec<PathBuf>, LintError> {
    let mut out = Vec::new();
    let mut stack = vec![dir.to_path_buf()];
    while let Some(d) = stack.pop() {
        let entries = match fs::read_dir(&d) {
            Ok(e) => e,
            Err(err) => {
                if d == dir {
                    return Err(LintError::Io { path: d, err });
                }
                continue;
            }
        };
        for entry in entries {
            let entry = entry.map_err(io_err(&d))?;
            let path = entry.path();
            if path.is_dir() {
                stack.push(path);
            } else if path.extension().is_some_and(|e| e == "rs") {
                out.push(path);
            }
        }
    }
    out.sort();
    Ok(out)
}

/// `path` relative to `root`, `/`-separated, for stable diagnostics.
fn rel_path(root: &Path, path: &Path) -> String {
    let rel = path.strip_prefix(root).unwrap_or(path);
    rel.to_string_lossy().replace('\\', "/")
}

/// Summary of one analyzer run.
pub struct Report {
    pub findings: Vec<Finding>,
    pub files_scanned: usize,
    pub crates_scanned: usize,
}

/// Lints the workspace at `root`. `only_crate` restricts the run to one
/// crate directory name (`--self-check` passes `"lint"`).
///
/// Scope: each crate's `src/` tree. Test code (`#[cfg(test)]` items and
/// `#[test]` functions) is exempt from the D/P/G series but not from the
/// C- or S-series audits; `tests/`, `benches/`, and `examples/` directories
/// are not walked at all — the invariants guard library code.
pub fn run(root: &Path, only_crate: Option<&str>) -> Result<Report, LintError> {
    let mut findings = Vec::new();
    let mut files_scanned = 0usize;
    let mut crates_scanned = 0usize;
    for (krate, dir) in workspace_crates(root)? {
        if only_crate.is_some_and(|o| o != krate) {
            continue;
        }
        crates_scanned += 1;
        let src = dir.join("src");
        let lib_rs = src.join("lib.rs");
        if lib_rs.is_file() {
            let text = fs::read(&lib_rs).map_err(io_err(&lib_rs))?;
            let text = String::from_utf8_lossy(&text);
            if let Some(f) = check_crate_root(&rel_path(root, &lib_rs), &text) {
                findings.push(f);
            }
        }
        for path in rust_files(&src)? {
            let bytes = fs::read(&path).map_err(io_err(&path))?;
            let text = String::from_utf8_lossy(&bytes);
            files_scanned += 1;
            findings.extend(check_file(&rel_path(root, &path), &text, &krate));
        }
    }
    // Workspace-level A-rules (manifest DAG + cycles) on full runs only:
    // a --self-check scoped to one crate has no graph to judge.
    if only_crate.is_none() {
        let manifests = workspace::load(root)?;
        findings.extend(workspace::check(&manifests));
    }
    findings.sort_by(|a, b| {
        (a.path.as_str(), a.line, a.col, a.rule).cmp(&(b.path.as_str(), b.line, b.col, b.rule))
    });
    Ok(Report {
        findings,
        files_scanned,
        crates_scanned,
    })
}

/// Escapes `s` into a JSON string body (quotes not included).
fn json_escape_into(s: &str, out: &mut String) {
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                out.push_str("\\u");
                let v = c as u32;
                for shift in [12u32, 8, 4, 0] {
                    let digit = (v >> shift) & 0xF;
                    out.push(char::from_digit(digit, 16).unwrap_or('0'));
                }
            }
            c => out.push(c),
        }
    }
}

/// Renders findings as a machine-readable JSON array (stable key order).
pub fn render_json(findings: &[Finding]) -> String {
    let mut out = String::from("[");
    for (i, f) in findings.iter().enumerate() {
        if i > 0 {
            out.push(',');
        }
        out.push_str("\n  {\"file\":\"");
        json_escape_into(&f.path, &mut out);
        out.push_str("\",\"line\":");
        out.push_str(&f.line.to_string());
        out.push_str(",\"col\":");
        out.push_str(&f.col.to_string());
        out.push_str(",\"rule\":\"");
        json_escape_into(f.rule, &mut out);
        out.push_str("\",\"message\":\"");
        json_escape_into(&f.message, &mut out);
        out.push_str("\"}");
    }
    out.push_str(if findings.is_empty() { "]" } else { "\n]" });
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn json_rendering_escapes_and_orders_keys() {
        let findings = vec![Finding {
            path: "crates/x/src/a \"b\".rs".to_string(),
            line: 3,
            col: 7,
            rule: "P1",
            message: "uses `.unwrap()`\nbadly".to_string(),
        }];
        let json = render_json(&findings);
        assert!(json.contains("\"file\":\"crates/x/src/a \\\"b\\\".rs\""));
        assert!(json.contains("\"line\":3,\"col\":7,\"rule\":\"P1\""));
        assert!(json.contains("\\n"));
        assert_eq!(render_json(&[]), "[]");
    }
}
