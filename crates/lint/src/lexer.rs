//! A hand-rolled Rust lexer: comment-, string-, and raw-string-aware.
//!
//! The lexer is deliberately small and forgiving: it never panics on any
//! byte sequence (proptested in `tests/lexer_props.rs`), and it guarantees
//! **span consistency** — tokens are non-empty, strictly ordered,
//! non-overlapping, in-bounds, and the gaps between them contain only ASCII
//! whitespace. Rules operate on these tokens; they never re-scan raw text,
//! so string literals and comments can never masquerade as code (the classic
//! failure mode of grep-based lint rules).
//!
//! Byte-oriented on purpose: non-ASCII bytes are treated as identifier
//! characters, which keeps every index a valid byte offset without any
//! UTF-8 boundary arithmetic. Columns are 1-based byte columns.

/// Token classification. Just enough resolution for the rule matchers.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum TokKind {
    /// Identifier or keyword (also raw identifiers like `r#fn`).
    Ident,
    /// Numeric literal (integers, floats, any radix, with suffixes).
    Num,
    /// String literal: `"…"`, `b"…"`, `r"…"`, `r#"…"#`, `br##"…"##`.
    Str,
    /// Character or byte literal: `'a'`, `'\n'`, `b'x'`.
    Char,
    /// Lifetime: `'a`, `'static`.
    Lifetime,
    /// `// …` (text includes the slashes, excludes the newline).
    LineComment,
    /// `/* … */`, nesting-aware (text includes the delimiters).
    BlockComment,
    /// A single punctuation byte (`::` is two `Punct(b':')` tokens).
    Punct(u8),
}

/// One lexed token with its byte span and start position.
#[derive(Debug, Clone, Copy)]
pub struct Tok {
    pub kind: TokKind,
    /// Byte offset of the first byte, inclusive.
    pub start: usize,
    /// Byte offset one past the last byte, exclusive.
    pub end: usize,
    /// 1-based line of the first byte.
    pub line: u32,
    /// 1-based byte column of the first byte.
    pub col: u32,
}

impl Tok {
    /// The token's text within its source.
    pub fn text<'a>(&self, src: &'a str) -> &'a str {
        src.get(self.start..self.end).unwrap_or("")
    }

    pub fn is_comment(&self) -> bool {
        matches!(self.kind, TokKind::LineComment | TokKind::BlockComment)
    }
}

/// `true` for bytes that may start an identifier (non-ASCII included).
fn ident_start(b: u8) -> bool {
    b == b'_' || b.is_ascii_alphabetic() || b >= 0x80
}

/// `true` for bytes that may continue an identifier.
fn ident_continue(b: u8) -> bool {
    ident_start(b) || b.is_ascii_digit()
}

struct Lexer<'a> {
    b: &'a [u8],
    i: usize,
    line: u32,
    line_start: usize,
}

impl<'a> Lexer<'a> {
    fn peek(&self, ahead: usize) -> Option<u8> {
        self.b.get(self.i + ahead).copied()
    }

    /// Consumes one byte, maintaining the line accounting.
    fn bump(&mut self) {
        if self.b.get(self.i) == Some(&b'\n') {
            self.line += 1;
            self.line_start = self.i + 1;
        }
        self.i += 1;
    }

    fn bump_n(&mut self, n: usize) {
        for _ in 0..n {
            self.bump();
        }
    }

    /// Consumes until `stop` returns true or EOF; leaves `i` at the stop byte.
    fn bump_while(&mut self, mut keep: impl FnMut(u8) -> bool) {
        while let Some(c) = self.peek(0) {
            if !keep(c) {
                break;
            }
            self.bump();
        }
    }

    /// Consumes a double-quoted string body (opening quote already consumed),
    /// honouring backslash escapes. Unterminated strings run to EOF.
    fn string_body(&mut self) {
        while let Some(c) = self.peek(0) {
            self.bump();
            match c {
                b'\\' if self.peek(0).is_some() => {
                    self.bump();
                }
                b'"' => break,
                _ => {}
            }
        }
    }

    /// Consumes a raw-string body: `hashes` `#` bytes followed by `"` have
    /// already been consumed; scans to `"` followed by `hashes` `#`s.
    fn raw_string_body(&mut self, hashes: usize) {
        while let Some(c) = self.peek(0) {
            if c == b'"' {
                let closes = (1..=hashes).all(|k| self.peek(k) == Some(b'#'));
                if closes {
                    self.bump_n(1 + hashes);
                    return;
                }
            }
            self.bump();
        }
    }

    /// At `r` (`skip` == 0) or `br` (`skip` == 1): is this a raw string, and
    /// with how many hashes?
    fn raw_string_hashes(&self, skip: usize) -> Option<usize> {
        let mut k = skip + 1;
        while self.peek(k) == Some(b'#') {
            k += 1;
        }
        (self.peek(k) == Some(b'"')).then_some(k - skip - 1)
    }

    /// Consumes a `'`-introduced token: lifetime or char literal. The opening
    /// quote has **not** been consumed yet.
    fn quote_token(&mut self) -> TokKind {
        self.bump(); // '
        match self.peek(0) {
            Some(b'\\') => {
                self.bump();
                if self.peek(0).is_some() {
                    self.bump();
                }
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                TokKind::Char
            }
            Some(c) if ident_start(c) => {
                // `'a'` is a char; `'a` (no closing quote after the ident
                // run) is a lifetime.
                let mut k = 1;
                while self.peek(k).is_some_and(ident_continue) {
                    k += 1;
                }
                if self.peek(k) == Some(b'\'') {
                    self.bump_n(k + 1);
                    TokKind::Char
                } else {
                    self.bump_while(ident_continue);
                    TokKind::Lifetime
                }
            }
            Some(_) => {
                // `'('`-style char of a single non-ident byte, or stray `'`.
                self.bump();
                if self.peek(0) == Some(b'\'') {
                    self.bump();
                }
                TokKind::Char
            }
            None => TokKind::Char,
        }
    }

    /// Consumes a numeric literal starting at an ASCII digit.
    fn number(&mut self) {
        self.bump_while(ident_continue);
        // Fractional part: `.` only if followed by a digit (so `1..4` and
        // `1.method()` lex as Num Punct …).
        if self.peek(0) == Some(b'.') && self.peek(1).is_some_and(|c| c.is_ascii_digit()) {
            self.bump();
            self.bump_while(ident_continue);
        }
        // Signed exponent: `1e-5`, `2.5E+3`. The `e` was consumed as an
        // ident-continue byte above.
        if self.peek(0).is_some_and(|c| c == b'+' || c == b'-')
            && self
                .b
                .get(self.i.wrapping_sub(1))
                .is_some_and(|c| *c == b'e' || *c == b'E')
            && self.peek(1).is_some_and(|c| c.is_ascii_digit())
        {
            self.bump();
            self.bump_while(ident_continue);
        }
    }
}

/// Lexes `src` into a token stream. Total: never panics, any input.
pub fn lex(src: &str) -> Vec<Tok> {
    let mut lx = Lexer {
        b: src.as_bytes(),
        i: 0,
        line: 1,
        line_start: 0,
    };
    let mut toks = Vec::new();
    while let Some(c) = lx.peek(0) {
        if c == b'\n' || c.is_ascii_whitespace() {
            lx.bump();
            continue;
        }
        let (start, line) = (lx.i, lx.line);
        let col = (start - lx.line_start + 1) as u32;
        let kind = match c {
            b'/' if lx.peek(1) == Some(b'/') => {
                lx.bump_while(|c| c != b'\n');
                TokKind::LineComment
            }
            b'/' if lx.peek(1) == Some(b'*') => {
                lx.bump_n(2);
                let mut depth = 1usize;
                while depth > 0 {
                    match (lx.peek(0), lx.peek(1)) {
                        (Some(b'/'), Some(b'*')) => {
                            depth += 1;
                            lx.bump_n(2);
                        }
                        (Some(b'*'), Some(b'/')) => {
                            depth -= 1;
                            lx.bump_n(2);
                        }
                        (Some(_), _) => lx.bump(),
                        (None, _) => break,
                    }
                }
                TokKind::BlockComment
            }
            b'"' => {
                lx.bump();
                lx.string_body();
                TokKind::Str
            }
            b'r' => {
                if let Some(h) = lx.raw_string_hashes(0) {
                    lx.bump_n(h + 2); // r, hashes, "
                    lx.raw_string_body(h);
                    TokKind::Str
                } else if lx.peek(1) == Some(b'#') && lx.peek(2).is_some_and(ident_start) {
                    lx.bump_n(2); // raw identifier r#…
                    lx.bump_while(ident_continue);
                    TokKind::Ident
                } else {
                    lx.bump_while(ident_continue);
                    TokKind::Ident
                }
            }
            b'b' if lx.peek(1) == Some(b'"') => {
                lx.bump_n(2);
                lx.string_body();
                TokKind::Str
            }
            b'b' if lx.peek(1) == Some(b'\'') => {
                lx.bump();
                lx.quote_token()
            }
            b'b' if lx.peek(1) == Some(b'r') && lx.raw_string_hashes(1).is_some() => {
                let h = lx.raw_string_hashes(1).unwrap_or(0);
                lx.bump_n(h + 3); // b, r, hashes, "
                lx.raw_string_body(h);
                TokKind::Str
            }
            b'\'' => lx.quote_token(),
            _ if ident_start(c) => {
                lx.bump_while(ident_continue);
                TokKind::Ident
            }
            _ if c.is_ascii_digit() => {
                lx.number();
                TokKind::Num
            }
            _ => {
                lx.bump();
                TokKind::Punct(c)
            }
        };
        // Totality guard: every arm consumes at least one byte, but if a
        // future edit breaks that, skip the byte rather than loop forever.
        if lx.i == start {
            lx.bump();
            continue;
        }
        toks.push(Tok {
            kind,
            start,
            end: lx.i,
            line,
            col,
        });
    }
    toks
}
