//! A brace-tree and item parser on top of the total lexer.
//!
//! The tree gives rules *structure*: which block encloses a token, what kind
//! of header opened that block (`if` / `else` / `fn` / other), where items
//! (`fn`, `mod`, `impl`, …) begin and end, and which attributes attach to
//! them. It is deliberately not a Rust parser — it only tracks brace
//! nesting, headers, and item boundaries — but like the lexer it is total:
//! `build` never panics on any token stream (proptested in
//! `tests/tree_props.rs`) and its spans are consistent (every block's open
//! brace precedes its close, children nest strictly inside parents, and
//! every code token maps to exactly one innermost block).
//!
//! Known conservative misparse: a struct pattern in an `if let` header
//! (`if let Point { x, .. } = p {`) opens a block at the pattern's `{`.
//! Rules built on the tree therefore err toward flagging, never toward
//! silence.

use crate::lexer::{Tok, TokKind};

/// Index of the synthetic root block in [`Tree::blocks`].
pub const ROOT: usize = 0;

/// What kind of header introduced a block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub enum BlockKind {
    /// The whole-file root (no braces).
    Root,
    /// The then-block of an `if` (including `else if`); `cond` holds the
    /// condition's token range.
    IfThen,
    /// A plain `else { … }` block.
    Else,
    /// A function body (`fn name(…) { … }`).
    Fn,
    /// Everything else: `match`/`loop`/`while`/`for` bodies, bare blocks,
    /// struct literals, closures, `impl`/`mod`/`trait` bodies, …
    Other,
}

/// One brace-delimited block. All indices are into the code-token slice
/// passed to [`build`].
#[derive(Debug, Clone)]
pub struct Block {
    /// Parent block index ([`ROOT`]'s parent is itself).
    pub parent: usize,
    /// Direct child blocks, in source order.
    pub children: Vec<usize>,
    /// Token index of the opening `{` (`usize::MAX` for the root).
    pub open: usize,
    /// Token index of the matching `}`; `code.len()` when unterminated
    /// (and for the root).
    pub close: usize,
    pub kind: BlockKind,
    /// For [`BlockKind::IfThen`]: the half-open token range of the
    /// condition (everything after the `if` keyword up to the `{`).
    /// `(0, 0)` otherwise.
    pub cond: (usize, usize),
}

/// One `#[…]` or `#![…]` attribute.
#[derive(Debug, Clone)]
pub struct Attr {
    /// Token index of the `#`.
    pub start: usize,
    /// Token index of the closing `]` (or the last token at EOF when
    /// unterminated).
    pub close: usize,
    /// `true` for inner attributes (`#![…]`).
    pub inner: bool,
    /// `true` when the attribute marks test code: contains the ident
    /// `test` not wrapped in `not(…)` — `#[test]`, `#[cfg(test)]`.
    pub has_test: bool,
}

/// One item: a keyword-introduced declaration plus its attached outer
/// attributes and body block.
#[derive(Debug, Clone)]
pub struct Item {
    /// Token index where the item starts (first attached attribute's `#`,
    /// or the keyword itself).
    pub start: usize,
    /// Token index one past the item's last token (`;` or body `}`).
    pub end: usize,
    /// Token index of the introducing keyword (`fn`, `mod`, `use`, …).
    pub kw: usize,
    /// Any attached attribute satisfies [`Attr::has_test`].
    pub has_test_attr: bool,
    /// Body block index, when the item ends in a brace block.
    pub body: Option<usize>,
}

/// The parsed structure of one file's code tokens.
pub struct Tree {
    /// `blocks[ROOT]` is the synthetic whole-file block.
    pub blocks: Vec<Block>,
    /// Outer and inner attributes, in source order.
    pub attrs: Vec<Attr>,
    /// Items across all nesting levels, in source order of their keyword.
    pub items: Vec<Item>,
    /// Innermost enclosing block for each code token.
    block_of: Vec<usize>,
}

impl Tree {
    /// The innermost block containing code token `ci` (ROOT when out of
    /// range).
    pub fn innermost(&self, ci: usize) -> usize {
        self.block_of.get(ci).copied().unwrap_or(ROOT)
    }

    /// Walks `block` and its ancestors up to and including ROOT.
    pub fn ancestor_chain(&self, mut block: usize) -> Vec<usize> {
        let mut chain = Vec::new();
        // The chain cannot exceed the block count: parents strictly
        // decrease in index except for ROOT's self-loop.
        while block < self.blocks.len() {
            chain.push(block);
            if block == ROOT {
                break;
            }
            let parent = self.blocks[block].parent;
            if parent >= block {
                break;
            }
            block = parent;
        }
        chain
    }
}

/// Keywords that introduce an item at block level.
const ITEM_KEYWORDS: &[&str] = &[
    "fn",
    "struct",
    "enum",
    "union",
    "trait",
    "impl",
    "mod",
    "use",
    "const",
    "static",
    "type",
    "macro_rules",
];

fn is_punct(code: &[Tok], ci: usize, b: u8) -> bool {
    code.get(ci).is_some_and(|t| t.kind == TokKind::Punct(b))
}

fn ident_text<'a>(code: &[Tok], ci: usize, src: &'a str) -> Option<&'a str> {
    let t = code.get(ci)?;
    (t.kind == TokKind::Ident).then(|| t.text(src))
}

/// Classifies the header of the block opened by the `{` at `open`.
///
/// The header is collected by scanning backward from the brace across
/// balanced `(…)`/`[…]` groups, stopping at `{`, `}`, `;`, or a `,`/`(`/`[`
/// at reverse depth 0 (so closure bodies in call arguments and match-arm
/// bodies get the short header they deserve).
fn classify_header(src: &str, code: &[Tok], open: usize) -> (BlockKind, (usize, usize)) {
    let mut depth = 0usize;
    let mut start = open; // header occupies start..open
    let mut j = open;
    while j > 0 {
        j -= 1;
        match code[j].kind {
            TokKind::Punct(b')') | TokKind::Punct(b']') => depth += 1,
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => {
                if depth == 0 {
                    break;
                }
                depth -= 1;
            }
            TokKind::Punct(b',') if depth == 0 => break,
            TokKind::Punct(b'{') | TokKind::Punct(b'}') | TokKind::Punct(b';') => break,
            _ => {}
        }
        start = j;
    }
    // Last `if` at paren depth 0 wins: `else if c` and `let x = if c` are
    // both IfThen with cond = tokens after that `if`.
    let mut pdepth = 0usize;
    let mut last_if = None;
    for (k, tok) in code.iter().enumerate().take(open).skip(start) {
        match tok.kind {
            TokKind::Punct(b'(') | TokKind::Punct(b'[') => pdepth += 1,
            TokKind::Punct(b')') | TokKind::Punct(b']') => pdepth = pdepth.saturating_sub(1),
            TokKind::Ident if pdepth == 0 && tok.text(src) == "if" => last_if = Some(k),
            _ => {}
        }
    }
    if let Some(k) = last_if {
        return (BlockKind::IfThen, (k + 1, open));
    }
    if open > start && ident_text(code, open - 1, src) == Some("else") {
        return (BlockKind::Else, (0, 0));
    }
    if (start..open).any(|k| ident_text(code, k, src) == Some("fn")) {
        return (BlockKind::Fn, (0, 0));
    }
    (BlockKind::Other, (0, 0))
}

/// Scans the attribute starting at the `#` at `ci`; returns it plus the
/// token index to resume at, or `None` if this `#` opens no attribute.
fn scan_attr(src: &str, code: &[Tok], ci: usize) -> Option<(Attr, usize)> {
    let inner = is_punct(code, ci + 1, b'!');
    let lb = if inner { ci + 2 } else { ci + 1 };
    if !is_punct(code, lb, b'[') {
        return None;
    }
    let mut depth = 0usize;
    let mut j = lb;
    let mut has_test = false;
    let close;
    loop {
        match code.get(j).map(|t| t.kind) {
            Some(TokKind::Punct(b'[')) => depth += 1,
            Some(TokKind::Punct(b']')) => {
                depth -= 1;
                if depth == 0 {
                    close = j;
                    break;
                }
            }
            Some(TokKind::Ident) => {
                if code[j].text(src) == "test" {
                    // `cfg(not(test))` is not test code.
                    let negated = j >= 2
                        && is_punct(code, j - 1, b'(')
                        && ident_text(code, j - 2, src) == Some("not");
                    has_test |= !negated;
                }
            }
            Some(_) => {}
            None => {
                close = j.saturating_sub(1);
                break;
            }
        }
        j += 1;
    }
    Some((
        Attr {
            start: ci,
            close,
            inner,
            has_test,
        },
        close + 1,
    ))
}

/// Builds the brace tree, attribute list, and item list for one file.
/// `code` must be the comment-free token stream (comments confuse no one
/// here, but excluding them keeps adjacency meaningful for headers).
pub fn build(src: &str, code: &[Tok]) -> Tree {
    let mut blocks = vec![Block {
        parent: ROOT,
        children: Vec::new(),
        open: usize::MAX,
        close: code.len(),
        kind: BlockKind::Root,
        cond: (0, 0),
    }];
    let mut block_of = vec![ROOT; code.len()];
    let mut stack = vec![ROOT];
    for ci in 0..code.len() {
        match code[ci].kind {
            TokKind::Punct(b'{') => {
                let parent = *stack.last().unwrap_or(&ROOT);
                let (kind, cond) = classify_header(src, code, ci);
                let id = blocks.len();
                blocks.push(Block {
                    parent,
                    children: Vec::new(),
                    open: ci,
                    close: code.len(),
                    kind,
                    cond,
                });
                blocks[parent].children.push(id);
                block_of[ci] = id;
                stack.push(id);
            }
            TokKind::Punct(b'}') => {
                // A stray `}` (stack at root) stays attributed to ROOT.
                if stack.len() > 1 {
                    let id = stack.pop().unwrap_or(ROOT);
                    blocks[id].close = ci;
                    block_of[ci] = id;
                }
            }
            _ => {
                block_of[ci] = *stack.last().unwrap_or(&ROOT);
            }
        }
    }

    let mut attrs = Vec::new();
    let mut items = Vec::new();
    // Items are scanned per block level: a worklist of block ids, each
    // scanned across its direct tokens with child-block interiors skipped.
    let mut work = vec![ROOT];
    let mut widx = 0usize;
    while widx < work.len() {
        let b = work[widx];
        widx += 1;
        let (mut ci, end) = if b == ROOT {
            (0, code.len())
        } else {
            (blocks[b].open + 1, blocks[b].close)
        };
        for &c in &blocks[b].children.clone() {
            work.push(c);
        }
        let mut pending: Vec<usize> = Vec::new(); // attr indices awaiting an item
        while ci < end {
            let owner = block_of.get(ci).copied().unwrap_or(b);
            if owner != b {
                // A child block at statement level: jump past its interior.
                // An attr-attached bare block (`#[cfg(test)] { … }`) still
                // counts as a test region, so record it as a keyword-less
                // item.
                let skip_to = blocks
                    .get(owner)
                    .map(|c| c.close.saturating_add(1))
                    .unwrap_or(ci + 1);
                if !pending.is_empty() {
                    let start = pending
                        .first()
                        .and_then(|&a| attrs.get(a).map(|a: &Attr| a.start))
                        .unwrap_or(ci);
                    let has_test_attr = pending
                        .iter()
                        .any(|&a| attrs.get(a).is_some_and(|a: &Attr| a.has_test));
                    items.push(Item {
                        start,
                        end: skip_to.min(code.len()),
                        kw: ci,
                        has_test_attr,
                        body: Some(owner),
                    });
                    pending.clear();
                }
                ci = if skip_to > ci { skip_to } else { ci + 1 };
                continue;
            }
            if is_punct(code, ci, b'#') {
                if let Some((attr, next)) = scan_attr(src, code, ci) {
                    if attr.inner {
                        // Inner attributes attach to the enclosing scope,
                        // not the next item.
                        attrs.push(attr);
                    } else {
                        attrs.push(attr);
                        pending.push(attrs.len() - 1);
                    }
                    ci = if next > ci { next } else { ci + 1 };
                    continue;
                }
            }
            let kw_text = ident_text(code, ci, src);
            if kw_text.is_some_and(|t| ITEM_KEYWORDS.contains(&t)) {
                let kw = ci;
                let is_use = kw_text == Some("use");
                let start = pending
                    .first()
                    .and_then(|&a| attrs.get(a).map(|a: &Attr| a.start))
                    .unwrap_or(kw);
                let has_test_attr = pending
                    .iter()
                    .any(|&a| attrs.get(a).is_some_and(|a: &Attr| a.has_test));
                pending.clear();
                // Scan forward for the item's end: a `;` at bracket depth 0,
                // or the first body block (`use` skips its brace groups and
                // always ends at `;`).
                let mut depth = 0usize;
                let mut j = kw + 1;
                let mut body = None;
                let item_end;
                loop {
                    if j >= end {
                        item_end = j.min(code.len());
                        break;
                    }
                    match code[j].kind {
                        TokKind::Punct(b'(') | TokKind::Punct(b'[') => depth += 1,
                        TokKind::Punct(b')') | TokKind::Punct(b']') => {
                            depth = depth.saturating_sub(1)
                        }
                        TokKind::Punct(b';') if depth == 0 => {
                            item_end = j + 1;
                            break;
                        }
                        TokKind::Punct(b'{') => {
                            let child = block_of.get(j).copied().unwrap_or(b);
                            let skip_to = blocks
                                .get(child)
                                .map(|c| c.close.saturating_add(1))
                                .unwrap_or(j + 1);
                            if is_use {
                                j = if skip_to > j { skip_to } else { j + 1 };
                                continue;
                            }
                            body = Some(child);
                            item_end = skip_to.min(code.len());
                            break;
                        }
                        _ => {}
                    }
                    j += 1;
                }
                items.push(Item {
                    start,
                    end: item_end,
                    kw,
                    has_test_attr,
                    body,
                });
                ci = if item_end > ci { item_end } else { ci + 1 };
                continue;
            }
            // Any other token breaks attr attachment: `#[allow(…)] let …`
            // attaches to no item we track.
            pending.clear();
            ci += 1;
        }
    }
    items.sort_by_key(|it| it.kw);

    Tree {
        blocks,
        attrs,
        items,
        block_of,
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::lexer::lex;

    fn tree_of(src: &str) -> (Vec<Tok>, Tree) {
        let code: Vec<Tok> = lex(src).into_iter().filter(|t| !t.is_comment()).collect();
        let t = build(src, &code);
        (code, t)
    }

    #[test]
    fn classifies_if_else_fn_blocks() {
        let src = "fn main() { if a && b { x(); } else if c { y(); } else { z(); } }";
        let (_, t) = tree_of(src);
        let kinds: Vec<BlockKind> = t.blocks[1..].iter().map(|b| b.kind).collect();
        assert_eq!(
            kinds,
            vec![
                BlockKind::Fn,
                BlockKind::IfThen,
                BlockKind::IfThen,
                BlockKind::Else
            ]
        );
    }

    #[test]
    fn if_cond_span_covers_condition_tokens() {
        let src = "fn f() { if telemetry::metrics_enabled() { emit(); } }";
        let (code, t) = tree_of(src);
        let ifb = t
            .blocks
            .iter()
            .find(|b| b.kind == BlockKind::IfThen)
            .expect("if block");
        let cond_texts: Vec<&str> = (ifb.cond.0..ifb.cond.1)
            .map(|ci| code[ci].text(src))
            .collect();
        assert_eq!(
            cond_texts,
            vec!["telemetry", ":", ":", "metrics_enabled", "(", ")"]
        );
    }

    #[test]
    fn closure_and_match_arm_blocks_are_other() {
        let src = "fn f() { run(|| { a(); }); match x { Y => { b(); } } }";
        let (_, t) = tree_of(src);
        let others = t
            .blocks
            .iter()
            .filter(|b| b.kind == BlockKind::Other)
            .count();
        // closure body, match body, arm body
        assert_eq!(others, 3);
    }

    #[test]
    fn items_attach_test_attrs_and_bodies() {
        let src = "#[cfg(test)]\nmod tests {\n    #[test]\n    fn t() { x(); }\n}\nfn lib() {}\n";
        let (code, t) = tree_of(src);
        let m = t
            .items
            .iter()
            .find(|it| code[it.kw].text(src) == "mod")
            .expect("mod item");
        assert!(m.has_test_attr);
        assert!(m.body.is_some());
        let lib = t
            .items
            .iter()
            .find(|it| {
                code[it.kw].text(src) == "fn"
                    && code.get(it.kw + 1).map(|t| t.text(src)) == Some("lib")
            })
            .expect("lib fn");
        assert!(!lib.has_test_attr);
    }

    #[test]
    fn cfg_not_test_is_not_a_test_region() {
        let src = "#[cfg(not(test))]\nfn live() {}\n";
        let (_, t) = tree_of(src);
        assert!(t.items.iter().all(|it| !it.has_test_attr));
        assert!(t.attrs.iter().all(|a| !a.has_test));
    }

    #[test]
    fn use_items_skip_brace_groups() {
        let src = "use std::{fs, io};\nfn after() {}\n";
        let (code, t) = tree_of(src);
        let u = t
            .items
            .iter()
            .find(|it| code[it.kw].text(src) == "use")
            .expect("use item");
        assert!(u.body.is_none());
        assert_eq!(code[u.end - 1].text(src), ";");
        assert!(t.items.iter().any(|it| code[it.kw].text(src) == "fn"));
    }

    #[test]
    fn unbalanced_braces_do_not_panic() {
        for src in ["}}}{{{", "fn f() {", "}", "{", "fn f() { if x { }"] {
            let (_, t) = tree_of(src);
            assert!(!t.blocks.is_empty());
        }
    }

    #[test]
    fn ancestor_chain_terminates_at_root() {
        let src = "fn f() { if a { if b { emit(); } } }";
        let (code, t) = tree_of(src);
        let emit_ci = (0..code.len())
            .find(|&ci| code[ci].text(src) == "emit")
            .expect("emit token");
        let chain = t.ancestor_chain(t.innermost(emit_ci));
        assert_eq!(chain.last(), Some(&ROOT));
        assert_eq!(chain.len(), 4); // if b, if a, fn, root
    }
}
