//! Synaptic operators: the weighted connections between spiking layers.

use serde::{Deserialize, Serialize};
use tcl_tensor::ops::{self, ConvGeometry};
use tcl_tensor::{Result, Tensor, TensorError};

/// A linear synaptic operator applied to spike (or analog, for the first
/// layer) tensors each timestep — the `Σ W·Θ + b` of Eq. 1.
///
/// Biases are injected as a constant current every step, which is why the
/// data-normalization of Eq. 5 divides them by the layer's own norm-factor.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub enum SynapticOp {
    /// Convolutional connectivity.
    Conv {
        /// Kernel, `[out_c, in_c, kh, kw]`.
        weight: Tensor,
        /// Optional per-channel bias current.
        bias: Option<Tensor>,
        /// Convolution geometry.
        geom: ConvGeometry,
    },
    /// Fully connected connectivity.
    Linear {
        /// Weight matrix, `[out_f, in_f]`.
        weight: Tensor,
        /// Optional bias current.
        bias: Option<Tensor>,
    },
}

/// Computes `input @ weightᵀ` for a fully connected synapse, routing mostly
/// zero spike matrices through the sparse-row kernel.
///
/// Both paths pay one weight transpose; the sparse kernel then skips zero
/// input entries (a spike raster is mostly zeros), while the dense blocked
/// kernel wins once average activity is high. The crossover sits at ~12.5%
/// activity: both kernels now run SIMD row updates, but the dense kernel's
/// packed register tiles still move roughly twice the useful flops per
/// cycle, so the skip must eliminate well over half the rows to pay for
/// its strided access. (The old ~25% gate dated from a scalar saxpy
/// kernel and made the sparse path a wash against the vectorized dense
/// tile.) Results agree within per-element rounding: both kernels
/// accumulate each output element in ascending input order, and the
/// zero-skip drops exact zeros only, which is safe because converted
/// weights are finite — but the dense tile may fuse multiply-adds at the
/// AVX2 dispatch level while the sparse path rounds each step, so the two
/// paths are bitwise identical only under `TCL_SIMD=scalar` (or `wide`).
fn linear_current(input: &Tensor, weight: &Tensor) -> Result<Tensor> {
    let (rows, in_f) = input.shape().as_matrix()?;
    let (out_f, wk) = weight.shape().as_matrix()?;
    if wk != in_f {
        return Err(TensorError::MatmulDimMismatch {
            left_cols: in_f,
            right_rows: wk,
        });
    }
    let nonzero = input.data().iter().filter(|&&v| v != 0.0).count();
    if nonzero * 8 >= rows * in_f {
        return ops::matmul_nt(input, weight);
    }
    if tcl_telemetry::metrics_enabled() {
        tcl_telemetry::counter_add("snn.zero_skips", ((rows * in_f - nonzero) * out_f) as u64);
    }
    let mut weight_t = vec![0.0f32; in_f * out_f];
    ops::transpose_into(weight.data(), &mut weight_t, out_f, in_f);
    let mut out = Tensor::zeros([rows, out_f]);
    ops::matmul_into_sparse(input.data(), &weight_t, out.data_mut(), rows, in_f, out_f);
    Ok(out)
}

impl SynapticOp {
    /// Applies the operator to an input tensor.
    ///
    /// # Errors
    ///
    /// Propagates shape errors from the underlying kernel.
    pub fn apply(&self, input: &Tensor) -> Result<Tensor> {
        if tcl_telemetry::metrics_enabled() {
            tcl_telemetry::counter_add("snn.synops", self.synop_estimate(input));
        }
        match self {
            SynapticOp::Conv { weight, bias, geom } => {
                ops::conv2d(input, weight, bias.as_ref(), *geom)
            }
            SynapticOp::Linear { weight, bias } => {
                let mut out = linear_current(input, weight)?;
                if let Some(b) = bias {
                    let (rows, cols) = out.shape().as_matrix()?;
                    if b.len() != cols {
                        return Err(TensorError::LengthMismatch {
                            expected: cols,
                            actual: b.len(),
                        });
                    }
                    for r in 0..rows {
                        for (v, &bv) in out.data_mut()[r * cols..(r + 1) * cols]
                            .iter_mut()
                            .zip(b.data())
                        {
                            *v += bv;
                        }
                    }
                }
                Ok(out)
            }
        }
    }

    /// Estimated synaptic operations for one application of this operator
    /// to `input` — one weight application per nonzero input entry (spike or
    /// analog current), the event-driven energy proxy the paper's Section 4
    /// comparisons assume. Convolutions use the per-input fan-out
    /// `out_c·kh·kw` and ignore border truncation.
    ///
    /// This is the quantity `apply` accumulates into the `snn.synops`
    /// telemetry counter; it is public so the engine can report per-sample
    /// synop savings without a metrics sink attached.
    pub fn synop_estimate(&self, input: &Tensor) -> u64 {
        let nonzero = input.data().iter().filter(|&&v| v != 0.0).count();
        let fanout = match self {
            SynapticOp::Conv { weight, .. } => {
                weight.len() / weight.dims().get(1).copied().unwrap_or(1).max(1)
            }
            SynapticOp::Linear { weight, .. } => {
                weight.shape().as_matrix().map_or(0, |(out_f, _)| out_f)
            }
        };
        (nonzero * fanout) as u64
    }

    /// Number of synaptic weights (a cost/energy proxy).
    pub fn weight_count(&self) -> usize {
        match self {
            SynapticOp::Conv { weight, .. } | SynapticOp::Linear { weight, .. } => weight.len(),
        }
    }

    /// Scales all weights in place (used by conversion tests).
    pub fn scale_weights(&mut self, factor: f32) {
        match self {
            SynapticOp::Conv { weight, .. } | SynapticOp::Linear { weight, .. } => {
                weight.scale_inplace(factor);
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn linear_op_applies_weight_and_bias() {
        let op = SynapticOp::Linear {
            weight: Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 2.0]).unwrap(),
            bias: Some(Tensor::from_slice(&[0.5, -0.5])),
        };
        let x = Tensor::from_vec([1, 2], vec![3.0, 4.0]).unwrap();
        let y = op.apply(&x).unwrap();
        assert_eq!(y.data(), &[3.5, 7.5]);
    }

    #[test]
    fn conv_op_applies_geometry() {
        let op = SynapticOp::Conv {
            weight: Tensor::ones([1, 1, 2, 2]),
            bias: None,
            geom: ConvGeometry::square(2, 2, 0).unwrap(),
        };
        let x = Tensor::from_fn([1, 1, 2, 2], |i| i as f32);
        let y = op.apply(&x).unwrap();
        assert_eq!(y.data(), &[6.0]);
    }

    #[test]
    fn linear_bias_length_is_validated() {
        let op = SynapticOp::Linear {
            weight: Tensor::zeros([2, 2]),
            bias: Some(Tensor::zeros([3])),
        };
        assert!(op.apply(&Tensor::zeros([1, 2])).is_err());
    }

    #[test]
    fn synop_estimate_counts_nonzero_driven_weights() {
        let linear = SynapticOp::Linear {
            weight: Tensor::ones([3, 4]),
            bias: None,
        };
        let x = Tensor::from_vec([1, 4], vec![1.0, 0.0, 0.5, 0.0]).unwrap();
        assert_eq!(linear.synop_estimate(&x), 6); // 2 nonzeros × 3 outputs
        let conv = SynapticOp::Conv {
            weight: Tensor::ones([2, 1, 2, 2]),
            bias: None,
            geom: ConvGeometry::square(2, 1, 0).unwrap(),
        };
        let x = Tensor::from_vec([1, 1, 2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap();
        assert_eq!(conv.synop_estimate(&x), 16); // 2 nonzeros × (2·2·2)
    }

    #[test]
    fn weight_count_and_scaling() {
        let mut op = SynapticOp::Linear {
            weight: Tensor::ones([2, 3]),
            bias: None,
        };
        assert_eq!(op.weight_count(), 6);
        op.scale_weights(0.5);
        let y = op.apply(&Tensor::ones([1, 3])).unwrap();
        assert_eq!(y.data(), &[1.5, 1.5]);
    }
}
