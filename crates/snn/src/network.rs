//! The spiking network container.

use crate::node::SpikingNode;
use serde::{Deserialize, Serialize};
use tcl_tensor::{Result, Tensor, TensorError};

/// A feed-forward spiking network produced by ANN-to-SNN conversion.
///
/// The first node receives the **analog** stimulus unchanged every timestep
/// ("real coding", Section 3.1): the input image acts as a constant input
/// current rather than being converted to a Poisson spike train, exactly as
/// in Rueckauer et al. 2017 and the paper.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SpikingNetwork {
    nodes: Vec<SpikingNode>,
}

impl SpikingNetwork {
    /// Creates a network from nodes in forward order.
    pub fn new(nodes: Vec<SpikingNode>) -> Self {
        SpikingNetwork { nodes }
    }

    /// The nodes, in forward order.
    pub fn nodes(&self) -> &[SpikingNode] {
        &self.nodes
    }

    /// Mutable access to the nodes, for harnesses that drive the network
    /// node-by-node (e.g. to measure per-layer spike traffic).
    pub fn nodes_mut(&mut self) -> &mut [SpikingNode] {
        &mut self.nodes
    }

    /// Number of nodes.
    pub fn len(&self) -> usize {
        self.nodes.len()
    }

    /// Whether the network has no nodes.
    pub fn is_empty(&self) -> bool {
        self.nodes.is_empty()
    }

    /// Resets all neuron state (call between stimulus presentations).
    pub fn reset(&mut self) {
        for node in &mut self.nodes {
            node.reset();
        }
    }

    /// Advances the whole network one timestep with the analog stimulus
    /// `input`, returning the output layer's spikes.
    ///
    /// # Errors
    ///
    /// Propagates shape errors, annotated with the failing node.
    pub fn step(&mut self, input: &Tensor) -> Result<Tensor> {
        let mut x = input.clone();
        for (i, node) in self.nodes.iter_mut().enumerate() {
            x = node.step(&x).map_err(|e| TensorError::InvalidArgument {
                detail: format!("node {i} ({}): {e}", node.kind_name()),
            })?;
        }
        Ok(x)
    }

    /// Compacts every neuron bank's batch dimension to the rows listed in
    /// `keep` (indices into the current leading dimension, in order).
    ///
    /// This is the primitive behind the inference engine's early-exit lane
    /// compaction: retiring a sample drops its membrane row from every bank
    /// so the remaining samples simulate in a smaller batch. Because every
    /// kernel computes batch items independently, the surviving samples'
    /// trajectories are bit-for-bit unchanged by the compaction.
    ///
    /// # Errors
    ///
    /// Returns an error if any index is out of range for a shaped bank.
    pub fn retain_rows(&mut self, keep: &[usize]) -> Result<()> {
        for (i, node) in self.nodes.iter_mut().enumerate() {
            node.retain_rows(keep)
                .map_err(|e| TensorError::InvalidArgument {
                    detail: format!("node {i} ({}): {e}", node.kind_name()),
                })?;
        }
        Ok(())
    }

    /// Appends `extra` fresh (zero-state) rows to every neuron bank's batch
    /// dimension — the admission dual of [`SpikingNetwork::retain_rows`].
    ///
    /// A zero membrane row is bit-for-bit the state a reset bank adopts on
    /// its first step, so a grown lane simulates exactly as if it had been
    /// presented alone from step one; existing rows are untouched. This is
    /// the primitive behind the lane engine's continuous batching: new
    /// requests join the running timestep loop in lanes freed by early
    /// exit, without restarting the batch.
    pub fn grow_rows(&mut self, extra: usize) {
        for node in &mut self.nodes {
            node.grow_rows(extra);
        }
    }

    /// The final node's membrane potentials (used by the membrane readout),
    /// if the final node has neurons and at least one step has run.
    pub fn output_potential(&self) -> Option<&Tensor> {
        match self.nodes.last()? {
            SpikingNode::Spiking(l) => l.neurons.potential(),
            SpikingNode::Residual(b) => b.os_neurons.potential(),
            _ => None,
        }
    }

    /// The final node's firing threshold, if it has neurons.
    pub fn output_threshold(&self) -> Option<f32> {
        match self.nodes.last()? {
            SpikingNode::Spiking(l) => Some(l.neurons.threshold()),
            SpikingNode::Residual(b) => Some(b.os_neurons.threshold()),
            _ => None,
        }
    }

    /// Per-node spike counts since the last reset.
    pub fn spikes_per_node(&self) -> Vec<u64> {
        self.nodes.iter().map(SpikingNode::spikes_emitted).collect()
    }

    /// Per-node neuron counts (0 for stateless nodes or before shaping).
    pub fn neurons_per_node(&self) -> Vec<usize> {
        self.nodes.iter().map(SpikingNode::neuron_count).collect()
    }

    /// Total spikes since the last reset.
    pub fn total_spikes(&self) -> u64 {
        self.spikes_per_node().iter().sum()
    }

    /// Spike counts per IF bank, flattened in node order (residual blocks
    /// contribute two banks, NS then OS; stateless nodes contribute none).
    /// This ordering matches the conversion's activation-site order, so bank
    /// `i` corresponds to norm-factor `λ_i` — the mapping the per-layer
    /// conversion diagnostics depend on.
    pub fn spikes_per_bank(&self) -> Vec<u64> {
        self.nodes
            .iter()
            .flat_map(SpikingNode::spikes_per_bank)
            .collect()
    }

    /// Neuron counts per IF bank, in the same flattened bank order as
    /// [`SpikingNetwork::spikes_per_bank`].
    pub fn neurons_per_bank(&self) -> Vec<usize> {
        self.nodes
            .iter()
            .flat_map(SpikingNode::neurons_per_bank)
            .collect()
    }
}

impl FromIterator<SpikingNode> for SpikingNetwork {
    fn from_iter<I: IntoIterator<Item = SpikingNode>>(iter: I) -> Self {
        SpikingNetwork::new(iter.into_iter().collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron::{IfNeurons, ResetMode};
    use crate::node::SpikingLayer;
    use crate::synop::SynapticOp;

    fn two_layer_net() -> SpikingNetwork {
        // Layer 1: identity 2→2; layer 2: sums both inputs into one output.
        let l1 = SpikingLayer::new(
            SynapticOp::Linear {
                weight: Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap(),
                bias: None,
            },
            IfNeurons::new(1.0, ResetMode::Subtract),
        );
        let l2 = SpikingLayer::new(
            SynapticOp::Linear {
                weight: Tensor::from_vec([1, 2], vec![0.5, 0.5]).unwrap(),
                bias: None,
            },
            IfNeurons::new(1.0, ResetMode::Subtract),
        );
        SpikingNetwork::new(vec![SpikingNode::Spiking(l1), SpikingNode::Spiking(l2)])
    }

    #[test]
    fn step_propagates_through_all_nodes() {
        let mut net = two_layer_net();
        let x = Tensor::from_vec([1, 2], vec![0.8, 0.8]).unwrap();
        let mut count = 0.0;
        for _ in 0..100 {
            count += net.step(&x).unwrap().at(0);
        }
        // Layer 1 fires at rate ~0.8 on both neurons; layer 2 input ≈ 0.8.
        assert!((count - 80.0).abs() <= 3.0, "count {count}");
    }

    #[test]
    fn reset_between_presentations_clears_state() {
        let mut net = two_layer_net();
        let x = Tensor::from_vec([1, 2], vec![0.9, 0.9]).unwrap();
        for _ in 0..10 {
            net.step(&x).unwrap();
        }
        assert!(net.total_spikes() > 0);
        net.reset();
        assert_eq!(net.total_spikes(), 0);
        assert!(net.output_potential().is_none());
    }

    #[test]
    fn output_accessors_describe_final_layer() {
        let mut net = two_layer_net();
        assert_eq!(net.output_threshold(), Some(1.0));
        let x = Tensor::from_vec([1, 2], vec![0.5, 0.5]).unwrap();
        net.step(&x).unwrap();
        assert_eq!(net.output_potential().unwrap().dims(), &[1, 1]);
    }

    #[test]
    fn step_error_names_the_node() {
        let mut net = two_layer_net();
        let bad = Tensor::from_vec([1, 3], vec![0.0; 3]).unwrap();
        let err = net.step(&bad).unwrap_err();
        assert!(err.to_string().contains("node 0"), "{err}");
    }

    #[test]
    fn retain_rows_preserves_surviving_samples_bitwise() {
        // Run a 3-sample batch; in a clone, compact to samples {0, 2} after
        // step 2 and check the survivors' outputs match the full batch's.
        let x3 = Tensor::from_vec([3, 2], vec![0.8, 0.3, 0.1, 0.9, 0.6, 0.6]).unwrap();
        let x2 = Tensor::from_vec([2, 2], vec![0.8, 0.3, 0.6, 0.6]).unwrap();
        let mut full = two_layer_net();
        let mut compact = two_layer_net();
        for _ in 0..2 {
            full.step(&x3).unwrap();
            compact.step(&x3).unwrap();
        }
        compact.retain_rows(&[0, 2]).unwrap();
        for _ in 0..4 {
            let yf = full.step(&x3).unwrap();
            let yc = compact.step(&x2).unwrap();
            assert_eq!(yc.at(0), yf.at(0));
            assert_eq!(yc.at(1), yf.at(2));
        }
        assert_eq!(compact.output_potential().unwrap().dims(), &[2, 1]);
        // Out-of-range rows are rejected and name the failing node.
        let err = compact.retain_rows(&[5]).unwrap_err();
        assert!(err.to_string().contains("node 0"), "{err}");
        // Before any step there is no state, so compaction is a no-op.
        let mut fresh = two_layer_net();
        fresh.retain_rows(&[7]).unwrap();
    }

    #[test]
    fn grow_rows_admits_lanes_bitwise_identical_to_solo_runs() {
        // Run sample A alone for 3 steps, then grow a lane for sample B and
        // run both; B's outputs must match a network that only ever saw B,
        // and A's trajectory must be undisturbed by the admission.
        let xa = Tensor::from_vec([1, 2], vec![0.8, 0.3]).unwrap();
        let xb = Tensor::from_vec([1, 2], vec![0.1, 0.9]).unwrap();
        let xab = Tensor::from_vec([2, 2], vec![0.8, 0.3, 0.1, 0.9]).unwrap();
        let mut shared = two_layer_net();
        let mut solo_a = two_layer_net();
        let mut solo_b = two_layer_net();
        for _ in 0..3 {
            let ys = shared.step(&xa).unwrap();
            let ya = solo_a.step(&xa).unwrap();
            assert_eq!(ys.data(), ya.data());
        }
        shared.grow_rows(1);
        for _ in 0..5 {
            let ys = shared.step(&xab).unwrap();
            let ya = solo_a.step(&xa).unwrap();
            let yb = solo_b.step(&xb).unwrap();
            assert_eq!(ys.at(0), ya.at(0));
            assert_eq!(ys.at(1), yb.at(0));
        }
        // Growing before any step is a no-op (the first step shapes banks).
        let mut fresh = two_layer_net();
        fresh.grow_rows(4);
        assert_eq!(fresh.neurons_per_node(), vec![0, 0]);
    }

    #[test]
    fn spike_accounting_is_per_node() {
        let mut net = two_layer_net();
        let x = Tensor::from_vec([1, 2], vec![1.0, 1.0]).unwrap();
        for _ in 0..5 {
            net.step(&x).unwrap();
        }
        let per_node = net.spikes_per_node();
        assert_eq!(per_node.len(), 2);
        assert_eq!(per_node[0], 10); // 2 neurons × 5 steps at saturation
        assert_eq!(per_node[1], 5);
        assert_eq!(net.neurons_per_node(), vec![2, 1]);
    }
}
