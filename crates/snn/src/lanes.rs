//! Lane-oriented submit/poll inference: the continuous-batching substrate.
//!
//! [`Engine`](crate::Engine) is a *batch-call* API: one call sweeps a whole
//! dataset and returns when every sample finished. A serving workload is the
//! opposite shape — requests arrive one at a time, at unpredictable moments,
//! and each wants an answer as soon as *its own* evidence is stable, not when
//! the batch is done. [`LaneEngine`] closes that gap by exposing the engine's
//! early-exit machinery as an open timestep loop:
//!
//! * [`LaneEngine::submit`] admits one sample into a free **lane** (a row of
//!   the running batch). Admission appends a zero membrane row to every
//!   neuron bank ([`SpikingNetwork::grow_rows`]) — bit-for-bit the state of a
//!   freshly reset network — so a lane admitted at global step 512 simulates
//!   exactly as if it had been presented alone at step 1.
//! * [`LaneEngine::step`] advances every active lane one timestep and returns
//!   the lanes that **retired** this step: either their readout margin has
//!   been stable for `patience` steps (early exit, same rule as
//!   [`ExitPolicy::Adaptive`]) or they exhausted their per-lane step budget
//!   (the deadline mapped onto the exit policy by the caller).
//! * Retired lanes are compacted out ([`SpikingNetwork::retain_rows`]), so
//!   freed capacity is immediately available to the next `submit` — this is
//!   what makes continuous batching pay: early-exited rows hand their lane to
//!   a waiting request mid-loop instead of idling until the batch drains.
//!
//! Because every kernel computes batch rows independently (the invariant the
//! engine's compaction already relies on), a lane's trajectory — scores,
//! margins, exit step — is bitwise identical whatever its batchmates are.
//! The `lane_engine_matches_batch_engine` test pins this against
//! [`Engine::evaluate`], and the serving crate's simulation suite pins it
//! across staggered admission orders.

use crate::engine::{top2, ExitPolicy};
use crate::network::SpikingNetwork;
use crate::sim::Readout;
use tcl_tensor::{Result, Shape, Tensor, TensorError};

/// Identifier of a submitted sample, unique within one [`LaneEngine`].
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub struct LaneId(pub u64);

/// A retired lane: the answer for one submitted sample.
#[derive(Debug, Clone)]
pub struct LaneOutput {
    /// The id returned by [`LaneEngine::submit`].
    pub id: LaneId,
    /// Predicted class (argmax of `scores`, first index wins ties).
    pub pred: usize,
    /// Timesteps this lane simulated before retiring.
    pub steps: usize,
    /// `true` if the lane retired on margin stability before its budget;
    /// `false` if it ran its full step budget.
    pub early: bool,
    /// Top-1 minus top-2 readout score gap at retirement.
    pub margin: f32,
    /// Per-class readout scores at retirement (spike counts or integrated
    /// membrane current, per the configured [`Readout`]).
    pub scores: Vec<f32>,
}

/// One active lane's bookkeeping (indexes into the compacted batch are
/// implicit: `lanes[p]` owns batch row `p`).
#[derive(Debug, Clone)]
struct Lane {
    id: LaneId,
    /// Timesteps simulated so far for this lane.
    age: usize,
    /// Retire unconditionally once `age` reaches this.
    budget: usize,
    /// Top-1 class at the last scored step.
    last_top: usize,
    /// Consecutive steps the margin has been stable.
    stable: usize,
}

/// A continuous-batching inference session over one spiking network (see
/// the module docs).
///
/// Single-threaded by design: the serving loop owns it and drives it from
/// one thread; kernel-level fan-out inside [`SpikingNetwork::step`] still
/// engages the process thread pool (`TCL_THREADS`) with bitwise-identical
/// results for every worker count.
#[derive(Debug, Clone)]
pub struct LaneEngine {
    net: SpikingNetwork,
    readout: Readout,
    policy: ExitPolicy,
    capacity: usize,
    lanes: Vec<Lane>,
    /// Active stimulus rows, row-major (`lanes.len()` rows).
    x: Vec<f32>,
    /// Per-sample feature dims (without the batch dim); set by first submit.
    feat_dims: Option<Vec<usize>>,
    /// Accumulated output spike counts, `lanes.len() × classes` row-major.
    counts: Vec<f32>,
    /// Output classes; 0 until the first step discovers the output width.
    classes: usize,
    next_id: u64,
    engine_steps: u64,
    lane_steps: u64,
}

impl LaneEngine {
    /// Creates a session over a clone of `net` with room for `capacity`
    /// concurrent lanes.
    ///
    /// # Errors
    ///
    /// Returns an error for zero capacity or an invalid policy.
    pub fn new(
        net: &SpikingNetwork,
        capacity: usize,
        readout: Readout,
        policy: ExitPolicy,
    ) -> Result<Self> {
        policy.validate()?;
        if capacity == 0 {
            return Err(TensorError::InvalidArgument {
                detail: "lane engine: capacity must be at least 1".into(),
            });
        }
        let mut net = net.clone();
        net.reset();
        Ok(LaneEngine {
            net,
            readout,
            policy,
            capacity,
            lanes: Vec::new(),
            x: Vec::new(),
            feat_dims: None,
            counts: Vec::new(),
            classes: 0,
            next_id: 0,
            engine_steps: 0,
            lane_steps: 0,
        })
    }

    /// Maximum concurrent lanes.
    pub fn capacity(&self) -> usize {
        self.capacity
    }

    /// Currently occupied lanes.
    pub fn active(&self) -> usize {
        self.lanes.len()
    }

    /// Lanes available for [`LaneEngine::submit`] right now.
    pub fn free_lanes(&self) -> usize {
        self.capacity - self.lanes.len()
    }

    /// Timesteps the shared loop has advanced (each may serve many lanes).
    pub fn engine_steps(&self) -> u64 {
        self.engine_steps
    }

    /// Total lane-timesteps simulated: `Σ active-lanes` over all steps.
    /// This is the work measure continuous batching minimizes — compare it
    /// to `batch_rows × max_t` for the equivalent fixed back-to-back sweeps.
    pub fn lane_steps(&self) -> u64 {
        self.lane_steps
    }

    /// Admits one sample into a free lane.
    ///
    /// `sample` carries a single presentation without the batch dimension
    /// (e.g. `[features]` or `[c, h, w]`) or with a unit one (`[1, ...]`).
    /// `budget` is the lane's maximum timesteps — the deadline, expressed in
    /// the exit policy's currency; the lane retires unconditionally when it
    /// has simulated `budget` steps.
    ///
    /// # Errors
    ///
    /// Returns an error when every lane is occupied, on a zero budget, or on
    /// a shape mismatch with previously admitted samples.
    pub fn submit(&mut self, sample: &Tensor, budget: usize) -> Result<LaneId> {
        if self.lanes.len() >= self.capacity {
            return Err(TensorError::InvalidArgument {
                detail: format!("lane engine: all {} lanes occupied", self.capacity),
            });
        }
        if budget == 0 {
            return Err(TensorError::InvalidArgument {
                detail: "lane engine: step budget must be at least 1".into(),
            });
        }
        let dims: Vec<usize> = match sample.dims() {
            [1, rest @ ..] if !rest.is_empty() => rest.to_vec(),
            dims => dims.to_vec(),
        };
        match &self.feat_dims {
            None => self.feat_dims = Some(dims),
            Some(expected) if *expected == dims => {}
            Some(expected) => {
                return Err(TensorError::InvalidArgument {
                    detail: format!(
                        "lane engine: sample dims {dims:?} do not match session dims {expected:?}"
                    ),
                });
            }
        }
        // Admission: one stimulus row, one zero membrane row per bank, one
        // zero count row (when the output width is already known).
        self.x.extend_from_slice(sample.data());
        self.net.grow_rows(1);
        if self.classes > 0 {
            self.counts.resize(self.counts.len() + self.classes, 0.0);
        }
        let id = LaneId(self.next_id);
        self.next_id += 1;
        self.lanes.push(Lane {
            id,
            age: 0,
            budget,
            last_top: 0,
            stable: 0,
        });
        Ok(id)
    }

    /// Advances every active lane one timestep; returns the lanes that
    /// retired this step (possibly empty). A no-op returning `[]` when no
    /// lane is active.
    ///
    /// # Errors
    ///
    /// Propagates network shape errors. On error the session should be
    /// considered poisoned (the serving layer rebuilds it and re-submits).
    pub fn step(&mut self) -> Result<Vec<LaneOutput>> {
        if self.lanes.is_empty() {
            return Ok(Vec::new());
        }
        let active = self.lanes.len();
        // lint: allow(P1) feat_dims is set by the first submit, and lanes
        // is nonempty here, so at least one submit has run
        let feat = self.feat_dims.as_ref().expect("set by first submit");
        let mut dims = Vec::with_capacity(feat.len() + 1);
        dims.push(active);
        dims.extend_from_slice(feat);
        let stimulus = Tensor::from_vec(Shape::new(dims), self.x.clone())?;
        let spikes = self.net.step(&stimulus)?;
        let (_, classes) = spikes.shape().as_matrix()?;
        if self.classes == 0 {
            self.classes = classes;
            self.counts = vec![0.0; active * classes];
        }
        for (c, s) in self.counts.iter_mut().zip(spikes.data()) {
            *c += s;
        }
        self.engine_steps += 1;
        self.lane_steps += active as u64;

        let (adaptive, patience, min_margin, min_steps) = match self.policy {
            ExitPolicy::Off => (false, 0, 0.0, 0),
            ExitPolicy::Adaptive {
                patience,
                min_margin,
                min_steps,
            } => (true, patience, min_margin, min_steps),
        };
        // Score every step under the adaptive policy (the margin machinery
        // needs it); under Off only when some lane completes its budget.
        let budget_due = self.lanes.iter().any(|l| l.age + 1 >= l.budget);
        let scores = if adaptive || budget_due {
            Some(self.scores())
        } else {
            None
        };
        let mut retired = Vec::new();
        let mut keep = Vec::with_capacity(active);
        for (p, lane) in self.lanes.iter_mut().enumerate() {
            lane.age += 1;
            let t = lane.age;
            if let Some(scores) = &scores {
                let row = &scores[p * classes..(p + 1) * classes];
                let (top, margin) = top2(row);
                // Same stability update as the batch engine's adaptive path:
                // the streak continues only while the argmax holds and the
                // margin clears the bar.
                if margin >= min_margin && top == lane.last_top && lane.stable > 0 {
                    lane.stable += 1;
                } else if margin >= min_margin {
                    lane.stable = 1;
                } else {
                    lane.stable = 0;
                }
                lane.last_top = top;
            }
            let early = adaptive && t >= min_steps && t < lane.budget && lane.stable >= patience;
            let done = early || t >= lane.budget;
            if done {
                // lint: allow(P1) done implies budget_due or an adaptive
                // retirement, both of which force scores to be computed
                let scores = scores.as_ref().expect("scored on retirement steps");
                let row = scores[p * classes..(p + 1) * classes].to_vec();
                let (pred, margin) = top2(&row);
                retired.push(LaneOutput {
                    id: lane.id,
                    pred,
                    steps: t,
                    early,
                    margin,
                    scores: row,
                });
            } else {
                keep.push(p);
            }
        }
        if retired.len() != active - keep.len() {
            // Defensive: the two partitions above must agree.
            return Err(TensorError::InvalidArgument {
                detail: "lane engine: retirement bookkeeping diverged".into(),
            });
        }
        if !retired.is_empty() {
            self.compact(&keep)?;
        }
        Ok(retired)
    }

    /// Readout scores for all active lanes, `active × classes` row-major.
    /// Elementwise identical to the batch engine's `readout_scores`
    /// (`counts` for spike-count readout, `counts·V_thr + V` for membrane).
    fn scores(&self) -> Vec<f32> {
        match self.readout {
            Readout::SpikeCount => self.counts.clone(),
            Readout::Membrane => {
                let thr = self.net.output_threshold().unwrap_or(1.0);
                let mut s: Vec<f32> = self.counts.iter().map(|c| c * thr).collect();
                if let Some(v) = self.net.output_potential() {
                    for (si, vi) in s.iter_mut().zip(v.data()) {
                        *si += vi;
                    }
                }
                s
            }
        }
    }

    /// Drops retired rows from the network, the stimulus, the counts, and
    /// the lane table (batch row `p` stays aligned with `lanes[p]`).
    fn compact(&mut self, keep: &[usize]) -> Result<()> {
        self.net.retain_rows(keep)?;
        // lint: allow(P1) feat_dims is set before any lane can retire
        let row = self.feat_dims.as_ref().expect("set by first submit");
        let row: usize = row.iter().product();
        let mut x = Vec::with_capacity(keep.len() * row);
        for &p in keep {
            x.extend_from_slice(&self.x[p * row..(p + 1) * row]);
        }
        self.x = x;
        let mut counts = Vec::with_capacity(keep.len() * self.classes);
        for &p in keep {
            counts.extend_from_slice(&self.counts[p * self.classes..(p + 1) * self.classes]);
        }
        self.counts = counts;
        let mut lanes = Vec::with_capacity(keep.len());
        for &p in keep {
            lanes.push(self.lanes[p].clone());
        }
        self.lanes = lanes;
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::engine::Engine;
    use crate::neuron::{IfNeurons, ResetMode};
    use crate::node::{SpikingLayer, SpikingNode};
    use crate::sim::SimConfig;
    use crate::synop::SynapticOp;

    fn copy_net() -> SpikingNetwork {
        SpikingNetwork::new(vec![SpikingNode::Spiking(SpikingLayer::new(
            SynapticOp::Linear {
                weight: Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap(),
                bias: None,
            },
            IfNeurons::new(1.0, ResetMode::Subtract),
        ))])
    }

    fn toy_data() -> (Tensor, Vec<usize>) {
        let images =
            Tensor::from_vec([4, 2], vec![0.9, 0.1, 0.8, 0.3, 0.2, 0.7, 0.05, 0.6]).unwrap();
        (images, vec![0, 0, 1, 1])
    }

    fn row(images: &Tensor, i: usize) -> Tensor {
        let cols = images.dims()[1];
        Tensor::from_vec([cols], images.data()[i * cols..(i + 1) * cols].to_vec()).unwrap()
    }

    /// Serial oracle: one sample alone on a fresh network for `t` steps,
    /// returning the spike-count readout scores.
    fn solo_scores(net: &SpikingNetwork, sample: &Tensor, t: usize) -> Vec<f32> {
        let mut net = net.clone();
        net.reset();
        let cols = sample.len();
        let x = Tensor::from_vec([1, cols], sample.data().to_vec()).unwrap();
        let mut counts: Option<Tensor> = None;
        for _ in 0..t {
            let s = net.step(&x).unwrap();
            match &mut counts {
                Some(c) => c.add_assign(&s).unwrap(),
                None => counts = Some(s),
            }
        }
        counts.unwrap().into_vec()
    }

    fn drain(engine: &mut LaneEngine) -> Vec<LaneOutput> {
        let mut out = Vec::new();
        while engine.active() > 0 {
            out.extend(engine.step().unwrap());
        }
        out
    }

    #[test]
    fn lane_engine_matches_batch_engine() {
        let net = copy_net();
        let (x, y) = toy_data();
        let max_t = 100;
        let policy = ExitPolicy::Adaptive {
            patience: 5,
            min_margin: 3.0,
            min_steps: 10,
        };
        let cfg = SimConfig::new(vec![max_t], 4, Readout::SpikeCount).unwrap();
        let mut batch = Engine::with_threads(1);
        let reference = batch.evaluate(&net, &x, &y, &cfg, policy).unwrap();

        let mut lanes = LaneEngine::new(&net, 4, Readout::SpikeCount, policy).unwrap();
        let ids: Vec<LaneId> = (0..4)
            .map(|i| lanes.submit(&row(&x, i), max_t).unwrap())
            .collect();
        let mut outputs = drain(&mut lanes);
        outputs.sort_by_key(|o| o.id);
        assert_eq!(outputs.len(), 4);
        for (i, out) in outputs.iter().enumerate() {
            assert_eq!(out.id, ids[i]);
            assert_eq!(out.pred, reference.predictions[i], "sample {i}");
            assert_eq!(out.steps, reference.exit_steps[i], "sample {i}");
            assert_eq!(out.early, reference.exited[i], "sample {i}");
        }
        // The shared loop ran to the slowest lane; total lane work matches
        // the batch engine's per-sample exit steps exactly.
        let expected_lane_steps: u64 = reference.exit_steps.iter().map(|&s| s as u64).sum();
        assert_eq!(lanes.lane_steps(), expected_lane_steps);
        assert_eq!(
            lanes.engine_steps(),
            *reference.exit_steps.iter().max().unwrap() as u64
        );
    }

    #[test]
    fn staggered_admission_is_bitwise_equal_to_solo_runs() {
        // Sample B joins 7 steps after A; both must produce exactly the
        // scores a solo presentation would.
        let net = copy_net();
        let (x, _) = toy_data();
        let policy = ExitPolicy::Off;
        let mut lanes = LaneEngine::new(&net, 2, Readout::SpikeCount, policy).unwrap();
        lanes.submit(&row(&x, 0), 20).unwrap();
        let mut outputs = Vec::new();
        for _ in 0..7 {
            outputs.extend(lanes.step().unwrap());
        }
        lanes.submit(&row(&x, 2), 20).unwrap();
        outputs.extend(drain(&mut lanes));
        outputs.sort_by_key(|o| o.id);
        assert_eq!(outputs.len(), 2);
        assert_eq!(outputs[0].scores, solo_scores(&net, &row(&x, 0), 20));
        assert_eq!(outputs[1].scores, solo_scores(&net, &row(&x, 2), 20));
        assert!(!outputs[0].early && !outputs[1].early);
        assert_eq!(outputs[0].steps, 20);
        assert_eq!(outputs[1].steps, 20);
        // B was admitted into the running loop: the shared loop is shorter
        // than two back-to-back presentations.
        assert_eq!(lanes.engine_steps(), 27);
        assert_eq!(lanes.lane_steps(), 40);
    }

    #[test]
    fn freed_lanes_are_reusable_and_budgets_are_per_lane() {
        let net = copy_net();
        let (x, _) = toy_data();
        let mut lanes = LaneEngine::new(&net, 1, Readout::SpikeCount, ExitPolicy::Off).unwrap();
        lanes.submit(&row(&x, 0), 5).unwrap();
        // Capacity exhausted while the lane runs.
        assert!(lanes.submit(&row(&x, 1), 5).is_err());
        let mut retired = Vec::new();
        for _ in 0..5 {
            retired.extend(lanes.step().unwrap());
        }
        assert_eq!(retired.len(), 1);
        assert_eq!(retired[0].steps, 5);
        assert_eq!(lanes.free_lanes(), 1);
        // The freed lane admits a new sample with its own budget.
        lanes.submit(&row(&x, 1), 3).unwrap();
        let second = drain(&mut lanes);
        assert_eq!(second.len(), 1);
        assert_eq!(second[0].steps, 3);
        assert_eq!(second[0].id, LaneId(1));
    }

    #[test]
    fn membrane_readout_scores_match_solo_membrane_oracle() {
        let net = copy_net();
        let (x, _) = toy_data();
        let mut lanes = LaneEngine::new(&net, 2, Readout::Membrane, ExitPolicy::Off).unwrap();
        lanes.submit(&row(&x, 1), 6).unwrap();
        lanes.submit(&row(&x, 3), 6).unwrap();
        let mut outputs = drain(&mut lanes);
        outputs.sort_by_key(|o| o.id);
        // Membrane oracle: counts·thr + V after t steps, solo.
        for (i, sample) in [1usize, 3].iter().enumerate() {
            let mut solo = net.clone();
            solo.reset();
            let xs = Tensor::from_vec([1, 2], row(&x, *sample).data().to_vec()).unwrap();
            let mut counts: Option<Tensor> = None;
            for _ in 0..6 {
                let s = solo.step(&xs).unwrap();
                match &mut counts {
                    Some(c) => c.add_assign(&s).unwrap(),
                    None => counts = Some(s),
                }
            }
            let thr = solo.output_threshold().unwrap();
            let mut expected = counts.unwrap().scale(thr);
            expected
                .add_assign(solo.output_potential().unwrap())
                .unwrap();
            assert_eq!(outputs[i].scores, expected.into_vec(), "sample {sample}");
        }
    }

    #[test]
    fn invalid_sessions_and_submissions_are_rejected() {
        let net = copy_net();
        assert!(LaneEngine::new(&net, 0, Readout::SpikeCount, ExitPolicy::Off).is_err());
        let bad_policy = ExitPolicy::Adaptive {
            patience: 0,
            min_margin: 1.0,
            min_steps: 0,
        };
        assert!(LaneEngine::new(&net, 2, Readout::SpikeCount, bad_policy).is_err());
        let mut lanes = LaneEngine::new(&net, 2, Readout::SpikeCount, ExitPolicy::Off).unwrap();
        let sample = Tensor::from_vec([2], vec![0.5, 0.5]).unwrap();
        assert!(lanes.submit(&sample, 0).is_err(), "zero budget");
        lanes.submit(&sample, 4).unwrap();
        let mismatched = Tensor::from_vec([3], vec![0.5; 3]).unwrap();
        assert!(lanes.submit(&mismatched, 4).is_err(), "shape mismatch");
        // Stepping an idle engine is a no-op.
        let mut idle = LaneEngine::new(&net, 1, Readout::SpikeCount, ExitPolicy::Off).unwrap();
        assert!(idle.step().unwrap().is_empty());
        assert_eq!(idle.engine_steps(), 0);
    }

    #[test]
    fn adaptive_lanes_exit_early_and_report_margins() {
        let net = copy_net();
        let (x, _) = toy_data();
        let policy = ExitPolicy::Adaptive {
            patience: 5,
            min_margin: 3.0,
            min_steps: 10,
        };
        let mut lanes = LaneEngine::new(&net, 4, Readout::SpikeCount, policy).unwrap();
        for i in 0..4 {
            lanes.submit(&row(&x, i), 100).unwrap();
        }
        let outputs = drain(&mut lanes);
        assert_eq!(outputs.len(), 4);
        assert!(outputs.iter().any(|o| o.early), "{outputs:?}");
        for o in &outputs {
            if o.early {
                assert!((10..100).contains(&o.steps), "{o:?}");
                assert!(o.margin >= 3.0, "{o:?}");
            }
        }
        // Early exit saved lane work vs running all four to the budget.
        assert!(lanes.lane_steps() < 4 * 100);
    }
}
