//! Batched SNN evaluation with latency checkpoints.

use crate::engine::{Engine, ExitPolicy};
use crate::network::SpikingNetwork;
use serde::{Deserialize, Serialize};
use tcl_tensor::{par, Result, Tensor, TensorError};

/// How class scores are read out of the output layer.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Default, Serialize, Deserialize)]
pub enum Readout {
    /// Count output spikes and take the argmax (the paper's choice,
    /// Section 3.1: "we simply count the number of spiking signals and take
    /// the maximum").
    #[default]
    SpikeCount,
    /// Total integrated current of the output neurons
    /// (`V + V_thr · spike_count` under reset-by-subtraction): a smoother
    /// readout common in conversion toolkits, provided for ablation.
    Membrane,
}

/// How the analog stimulus is injected into the first layer.
#[derive(Debug, Clone, Copy, PartialEq, Default, Serialize, Deserialize)]
pub enum InputCoding {
    /// "Real coding" (Section 3.1, the paper's choice): the analog image is
    /// applied as a constant input current at every timestep.
    #[default]
    Analog,
    /// Stochastic rate coding in the style of Sengupta et al. 2019: each
    /// pixel emits a signed unit impulse with probability proportional to
    /// its magnitude (clamped to 1). Noisier, hence slower to converge —
    /// provided for the classical-input-scheme comparison.
    Poisson {
        /// Seed for the per-step Bernoulli draws (per-batch derived).
        seed: u64,
    },
}

/// Configuration for [`evaluate`].
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SimConfig {
    /// Latency checkpoints (in timesteps) at which accuracy is recorded;
    /// simulation runs to the largest value. Must be nonempty, sorted, and
    /// nonzero.
    pub checkpoints: Vec<usize>,
    /// Mini-batch size for stimulus presentation.
    pub batch_size: usize,
    /// Output readout rule.
    pub readout: Readout,
    /// Input injection scheme (defaults to [`InputCoding::Analog`]).
    pub input_coding: InputCoding,
}

impl SimConfig {
    /// Creates a configuration, validating the checkpoint list.
    ///
    /// # Errors
    ///
    /// Returns an error if `checkpoints` is empty, unsorted, or contains 0,
    /// or if `batch_size` is 0.
    pub fn new(checkpoints: Vec<usize>, batch_size: usize, readout: Readout) -> Result<Self> {
        let config = SimConfig {
            checkpoints,
            batch_size,
            readout,
            input_coding: InputCoding::Analog,
        };
        config.validate()?;
        Ok(config)
    }

    /// Checks the invariants [`SimConfig::new`] establishes. All fields are
    /// public (so configs can be literal-constructed and deserialized), which
    /// means a config can reach [`evaluate`] without ever passing through
    /// `new` — the evaluators therefore re-validate instead of panicking on
    /// an empty or unsorted checkpoint list.
    ///
    /// # Errors
    ///
    /// Returns an error if `checkpoints` is empty, unsorted, or contains 0,
    /// or if `batch_size` is 0.
    pub fn validate(&self) -> Result<()> {
        if self.checkpoints.is_empty() {
            return Err(TensorError::InvalidArgument {
                detail: "at least one checkpoint required".into(),
            });
        }
        if self.checkpoints[0] == 0 || self.checkpoints.windows(2).any(|w| w[0] >= w[1]) {
            return Err(TensorError::InvalidArgument {
                detail: "checkpoints must be strictly increasing and nonzero".into(),
            });
        }
        if self.batch_size == 0 {
            return Err(TensorError::InvalidArgument {
                detail: "batch size must be nonzero".into(),
            });
        }
        Ok(())
    }

    /// Switches the input injection scheme.
    pub fn with_input_coding(mut self, input_coding: InputCoding) -> Self {
        self.input_coding = input_coding;
        self
    }

    /// The paper's Table 1 latency grid: T ∈ {50, 100, 150, 200, 250}.
    ///
    /// # Errors
    ///
    /// Never fails in practice; kept fallible for API uniformity.
    pub fn table1(batch_size: usize) -> Result<Self> {
        Self::new(
            vec![50, 100, 150, 200, 250],
            batch_size,
            Readout::SpikeCount,
        )
    }
}

/// Accuracy at each latency checkpoint, plus spike-activity statistics.
#[derive(Debug, Clone, Serialize, Deserialize)]
pub struct SweepResult {
    /// `(timesteps, accuracy)` pairs in checkpoint order.
    pub accuracies: Vec<(usize, f32)>,
    /// Average spikes emitted per neuron per timestep (activity/energy
    /// proxy), averaged over all presentations.
    pub mean_firing_rate: f32,
    /// Total spikes across the run.
    pub total_spikes: u64,
    /// Number of samples evaluated.
    pub samples: usize,
}

impl SweepResult {
    /// Accuracy at latency `t`, if `t` was a checkpoint.
    pub fn accuracy_at(&self, t: usize) -> Option<f32> {
        self.accuracies
            .iter()
            .find(|(ct, _)| *ct == t)
            .map(|(_, a)| *a)
    }

    /// The last (largest-latency) accuracy.
    pub fn final_accuracy(&self) -> f32 {
        self.accuracies.last().map_or(0.0, |(_, a)| *a)
    }
}

/// Evaluates SNN classification accuracy over a latency sweep.
///
/// For every mini-batch the network is reset, the analog stimulus is
/// presented for `max(checkpoints)` timesteps, output spikes are
/// accumulated, and predictions are recorded at each checkpoint.
///
/// Mini-batches are independent presentations (the network is reset between
/// them), so they run in parallel: this is a one-shot wrapper over the
/// persistent [`Engine`] with early exit off, and each engine worker
/// simulates batches on its own clone of the network with the per-batch
/// tallies folded in batch order. The result is bitwise identical to a
/// serial sweep for every thread count; set `TCL_THREADS=1` to force serial
/// execution. Callers evaluating the same network repeatedly should hold an
/// [`Engine`] and use [`Engine::evaluate_shared`] to keep the per-worker
/// replicas across calls.
///
/// # Errors
///
/// Returns an error for invalid configuration, empty/mismatched data, or
/// network shape failures. With multiple failing batches, the error of the
/// earliest batch is returned.
///
/// # Examples
///
/// See the crate-level example, which builds a one-layer network and runs a
/// sweep.
pub fn evaluate(
    net: &SpikingNetwork,
    images: &Tensor,
    labels: &[usize],
    config: &SimConfig,
) -> Result<SweepResult> {
    let n = images.dims().first().copied().unwrap_or(0);
    let max_t = config.checkpoints.last().copied().unwrap_or(0);
    let batch_count = n.div_ceil(config.batch_size.max(1));
    let _span = tcl_telemetry::span_with("snn.evaluate", || {
        vec![
            ("samples", n as f64),
            ("max_t", max_t as f64),
            ("batches", batch_count as f64),
        ]
    });
    let mut engine = Engine::with_threads(par::current().threads());
    engine
        .evaluate(net, images, labels, config, ExitPolicy::Off)
        .map(|r| r.sweep)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::neuron::{IfNeurons, ResetMode};
    use crate::node::{SpikingLayer, SpikingNode};
    use crate::synop::SynapticOp;

    /// A 2-class "network" whose weights copy the input features, so the
    /// larger feature wins once enough spikes accumulate.
    fn copy_net() -> SpikingNetwork {
        SpikingNetwork::new(vec![SpikingNode::Spiking(SpikingLayer::new(
            SynapticOp::Linear {
                weight: Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap(),
                bias: None,
            },
            IfNeurons::new(1.0, ResetMode::Subtract),
        ))])
    }

    fn toy_data() -> (Tensor, Vec<usize>) {
        // Feature 0 dominant → class 0; feature 1 dominant → class 1.
        let images =
            Tensor::from_vec([4, 2], vec![0.9, 0.1, 0.8, 0.3, 0.2, 0.7, 0.05, 0.6]).unwrap();
        (images, vec![0, 0, 1, 1])
    }

    #[test]
    fn accuracy_improves_with_latency_and_reaches_one() {
        let net = copy_net();
        let (x, y) = toy_data();
        let cfg = SimConfig::new(vec![2, 50], 2, Readout::SpikeCount).unwrap();
        let result = evaluate(&net, &x, &y, &cfg).unwrap();
        let early = result.accuracy_at(2).unwrap();
        let late = result.accuracy_at(50).unwrap();
        assert!(late >= early);
        assert_eq!(late, 1.0, "{result:?}");
        assert_eq!(result.samples, 4);
        assert!(result.total_spikes > 0);
        assert!(result.mean_firing_rate > 0.0 && result.mean_firing_rate <= 1.0);
    }

    #[test]
    fn membrane_readout_is_accurate_even_at_t1() {
        let net = copy_net();
        let (x, y) = toy_data();
        let cfg = SimConfig::new(vec![1], 4, Readout::Membrane).unwrap();
        let result = evaluate(&net, &x, &y, &cfg).unwrap();
        // After one step the membrane equals the analog input exactly.
        assert_eq!(result.final_accuracy(), 1.0);
    }

    #[test]
    fn config_validation_rejects_bad_checkpoints() {
        assert!(SimConfig::new(vec![], 1, Readout::SpikeCount).is_err());
        assert!(SimConfig::new(vec![0, 5], 1, Readout::SpikeCount).is_err());
        assert!(SimConfig::new(vec![5, 5], 1, Readout::SpikeCount).is_err());
        assert!(SimConfig::new(vec![5, 3], 1, Readout::SpikeCount).is_err());
        assert!(SimConfig::new(vec![5], 0, Readout::SpikeCount).is_err());
        assert!(SimConfig::table1(8).is_ok());
    }

    #[test]
    fn evaluate_validates_data() {
        let net = copy_net();
        let cfg = SimConfig::new(vec![5], 2, Readout::SpikeCount).unwrap();
        let x = Tensor::zeros([2, 2]);
        assert!(evaluate(&net, &x, &[0], &cfg).is_err());
        let empty = Tensor::zeros([0, 2]);
        assert!(evaluate(&net, &empty, &[], &cfg).is_err());
    }

    #[test]
    fn batching_does_not_change_results() {
        let (x, y) = toy_data();
        let cfg_b1 = SimConfig::new(vec![30], 1, Readout::SpikeCount).unwrap();
        let cfg_b4 = SimConfig::new(vec![30], 4, Readout::SpikeCount).unwrap();
        let r1 = evaluate(&copy_net(), &x, &y, &cfg_b1).unwrap();
        let r4 = evaluate(&copy_net(), &x, &y, &cfg_b4).unwrap();
        assert_eq!(r1.accuracies, r4.accuracies);
        assert_eq!(r1.total_spikes, r4.total_spikes);
    }
}

#[cfg(test)]
mod input_coding_tests {
    use super::*;
    use crate::neuron::{IfNeurons, ResetMode};
    use crate::node::{SpikingLayer, SpikingNode};
    use crate::synop::SynapticOp;

    fn identity_net() -> SpikingNetwork {
        SpikingNetwork::new(vec![SpikingNode::Spiking(SpikingLayer::new(
            SynapticOp::Linear {
                weight: Tensor::from_vec([2, 2], vec![1.0, 0.0, 0.0, 1.0]).unwrap(),
                bias: None,
            },
            IfNeurons::new(1.0, ResetMode::Subtract),
        ))])
    }

    fn toy() -> (Tensor, Vec<usize>) {
        (
            Tensor::from_vec([4, 2], vec![0.9, 0.1, 0.8, 0.2, 0.1, 0.9, 0.2, 0.8]).unwrap(),
            vec![0, 0, 1, 1],
        )
    }

    #[test]
    fn poisson_coding_reaches_analog_accuracy_with_enough_time() {
        let (x, y) = toy();
        let cfg = SimConfig::new(vec![400], 4, Readout::SpikeCount)
            .unwrap()
            .with_input_coding(InputCoding::Poisson { seed: 7 });
        let result = evaluate(&identity_net(), &x, &y, &cfg).unwrap();
        assert_eq!(result.final_accuracy(), 1.0, "{result:?}");
    }

    #[test]
    fn poisson_runs_are_reproducible() {
        let (x, y) = toy();
        let cfg = SimConfig::new(vec![50], 2, Readout::SpikeCount)
            .unwrap()
            .with_input_coding(InputCoding::Poisson { seed: 3 });
        let a = evaluate(&identity_net(), &x, &y, &cfg).unwrap();
        let b = evaluate(&identity_net(), &x, &y, &cfg).unwrap();
        assert_eq!(a.accuracies, b.accuracies);
        assert_eq!(a.total_spikes, b.total_spikes);
    }

    #[test]
    fn analog_converges_no_slower_than_poisson_on_short_budgets() {
        // At identical tiny T, deterministic analog input is at least as
        // accurate as the stochastic code (in expectation; the fixed seeds
        // here make it deterministic for the test).
        let (x, y) = toy();
        let analog_cfg = SimConfig::new(vec![10], 4, Readout::SpikeCount).unwrap();
        let poisson_cfg = SimConfig::new(vec![10], 4, Readout::SpikeCount)
            .unwrap()
            .with_input_coding(InputCoding::Poisson { seed: 11 });
        let analog = evaluate(&identity_net(), &x, &y, &analog_cfg).unwrap();
        let poisson = evaluate(&identity_net(), &x, &y, &poisson_cfg).unwrap();
        assert!(analog.final_accuracy() >= poisson.final_accuracy() - 0.25);
    }

    #[test]
    fn default_coding_is_analog() {
        let cfg = SimConfig::table1(8).unwrap();
        assert_eq!(cfg.input_coding, InputCoding::Analog);
    }
}
